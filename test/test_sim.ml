(* Unit and property tests for the discrete-event simulation engine. *)

open Sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Time *)

let test_time_units () =
  check_int "us" 1_000 (Time.us 1);
  check_int "ms" 1_000_000 (Time.ms 1);
  check_int "sec" 1_000_000_000 (Time.sec 1);
  check_int "of_ms_f" 1_500_000 (Time.of_ms_f 1.5);
  check_int "of_us_f" 2_500 (Time.of_us_f 2.5);
  Alcotest.(check (float 1e-9)) "to_ms_f" 1.5 (Time.to_ms_f (Time.of_ms_f 1.5));
  check_int "add" 30 (Time.add 10 20);
  check_int "diff" 15 (Time.diff 25 10)

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_basic () =
  let h = Heap.create ~cmp:Int.compare in
  check_bool "empty" true (Heap.is_empty h);
  Heap.push h 5;
  Heap.push h 1;
  Heap.push h 3;
  check_int "length" 3 (Heap.length h);
  Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek h);
  Alcotest.(check (option int)) "pop1" (Some 1) (Heap.pop h);
  Alcotest.(check (option int)) "pop2" (Some 3) (Heap.pop h);
  Alcotest.(check (option int)) "pop3" (Some 5) (Heap.pop h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare xs)

let prop_heap_interleaved =
  QCheck.Test.make ~name:"heap correct under interleaved push/pop" ~count:200
    QCheck.(list (option int))
    (fun ops ->
      let h = Heap.create ~cmp:Int.compare in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some x ->
              Heap.push h x;
              model := List.sort Int.compare (x :: !model);
              true
          | None -> (
              match (Heap.pop h, !model) with
              | None, [] -> true
              | Some x, m :: rest ->
                  model := rest;
                  x = m
              | None, _ :: _ | Some _, [] -> false))
        ops)

(* Popped elements must become unreachable: the event queue holds
   closures, and a pop that leaves a stale reference in the backing
   array pins every captured value until the slot happens to be
   overwritten.  Weak pointers observe collection directly. *)
(* The pops live in [@inline never] helpers so the popped element is
   not kept reachable by a stack slot of the test function itself
   when the Gc runs. *)
let[@inline never] heap_pop_expecting h want =
  match Heap.pop h with
  | Some (k, _) when k = want -> ()
  | Some (k, _) -> Alcotest.failf "popped %d, want %d" k want
  | None -> Alcotest.fail "empty heap"

let[@inline never] heap_drain h =
  while not (Heap.is_empty h) do
    ignore (Heap.pop h)
  done

let[@inline never] heap_fill h weak n tag =
  for k = 0 to n - 1 do
    let elt = (k, Bytes.make 64 tag) in
    Weak.set weak k (Some elt);
    Heap.push h elt
  done

let test_heap_pop_releases () =
  let h = Heap.create ~cmp:(fun (a, _) (b, _) -> Int.compare a b) in
  let n = 8 in
  let weak = Weak.create n in
  heap_fill h weak n 'x';
  let alive () =
    let count = ref 0 in
    for k = 0 to n - 1 do
      if Weak.check weak k then incr count
    done;
    !count
  in
  (* pop the minimum: it must be collectable while the rest live *)
  heap_pop_expecting h 0;
  Gc.full_major ();
  check_int "only the popped element was collected" (n - 1) (alive ());
  (* drain: every element must be collectable once the heap is empty *)
  heap_drain h;
  Gc.full_major ();
  check_int "all collected after drain" 0 (alive ());
  (* same through clear *)
  heap_fill h weak n 'y';
  Heap.clear h;
  Gc.full_major ();
  check_int "all collected after clear" 0 (alive ())

(* ------------------------------------------------------------------ *)
(* Engine basics *)

let test_clock_advances () =
  let result =
    Sim.exec (fun () ->
        let t0 = Sim.now () in
        Sim.sleep (Time.ms 5);
        let t1 = Sim.now () in
        Time.diff t1 t0)
  in
  check_int "slept 5ms" (Time.ms 5) result

let test_spawn_ordering () =
  let order = ref [] in
  let eng = Engine.create () in
  let _ =
    Engine.spawn eng "a" (fun () -> order := "a" :: !order)
  in
  let _ =
    Engine.spawn eng "b" (fun () -> order := "b" :: !order)
  in
  Engine.run eng;
  Alcotest.(check (list string)) "spawn order preserved" [ "a"; "b" ]
    (List.rev !order)

let test_same_instant_fifo () =
  (* Events scheduled at the same instant run in scheduling order. *)
  let order = ref [] in
  let eng = Engine.create () in
  Engine.at eng (Time.ms 1) (fun () -> order := 1 :: !order);
  Engine.at eng (Time.ms 1) (fun () -> order := 2 :: !order);
  Engine.at eng (Time.ms 1) (fun () -> order := 3 :: !order);
  Engine.run eng;
  Alcotest.(check (list int)) "fifo at same time" [ 1; 2; 3 ] (List.rev !order)

let test_run_until () =
  let fired = ref false in
  let eng = Engine.create () in
  Engine.at eng (Time.ms 10) (fun () -> fired := true);
  Engine.run ~until:(Time.ms 5) eng;
  check_bool "not yet fired" false !fired;
  check_int "clock stopped at until" (Time.ms 5) (Engine.now eng);
  Engine.run eng;
  check_bool "fired later" true !fired

let test_determinism () =
  let trace seed =
    let log = ref [] in
    let eng = Engine.create ~seed () in
    for i = 1 to 5 do
      let delay = Time.us (Rng.int (Engine.rng eng) 1000) in
      Engine.at eng delay (fun () -> log := (i, delay) :: !log)
    done;
    Engine.run eng;
    !log
  in
  Alcotest.(check bool) "same seed, same trace" true (trace 7 = trace 7);
  Alcotest.(check bool)
    "different seed, different trace" true
    (trace 7 <> trace 8)

let test_nested_spawn_and_self () =
  let result =
    Sim.exec (fun () ->
        let child_pid = Ivar.create () in
        let p =
          Sim.spawn "child" (fun () -> Ivar.fill child_pid (Sim.self ()))
        in
        let reported = Ivar.read child_pid in
        (p, reported))
  in
  check_bool "self matches spawn pid" true (fst result = snd result)

let test_exec_deadlock_detected () =
  let deadlocks =
    try
      Sim.exec (fun () ->
          let (iv : unit Ivar.t) = Ivar.create () in
          Ivar.read iv);
      false
    with Failure _ -> true
  in
  check_bool "deadlock raises" true deadlocks

(* ------------------------------------------------------------------ *)
(* Kill *)

let test_kill_sleeping () =
  let eng = Engine.create () in
  let woke = ref false in
  let pid =
    Engine.spawn eng "sleeper" (fun () ->
        Sim.sleep (Time.sec 10);
        woke := true)
  in
  Engine.at eng (Time.ms 1) (fun () -> Engine.kill eng pid);
  Engine.run eng;
  check_bool "never woke" false !woke;
  check_bool "not alive" false (Engine.alive eng pid);
  check_int "killed promptly, clock did not run to 10s" (Time.ms 1)
    (Engine.now eng)

let test_kill_group () =
  let eng = Engine.create () in
  let survivors = ref [] in
  let mk group name =
    Engine.spawn eng ~group name (fun () ->
        Sim.sleep (Time.ms 10);
        survivors := name :: !survivors)
  in
  let _a = mk 1 "a" and _b = mk 1 "b" and _c = mk 2 "c" in
  Engine.at eng (Time.ms 1) (fun () -> Engine.kill_group eng 1);
  Engine.run eng;
  Alcotest.(check (list string)) "only group 2 survives" [ "c" ] !survivors

let test_spawn_inherits_group () =
  let eng = Engine.create () in
  let child_ran = ref false in
  let _parent =
    Engine.spawn eng ~group:9 "parent" (fun () ->
        let _ =
          Sim.spawn "child" (fun () ->
              Sim.sleep (Time.ms 10);
              child_ran := true)
        in
        ())
  in
  Engine.at eng (Time.ms 1) (fun () -> Engine.kill_group eng 9);
  Engine.run eng;
  check_bool "child inherited group and was killed" false !child_ran

let test_killed_not_resumed_by_waker () =
  (* A waker arriving after kill must not resurrect the process. *)
  let eng = Engine.create () in
  let resumed = ref false in
  let iv = Ivar.create () in
  let pid =
    Engine.spawn eng "reader" (fun () ->
        let () = Ivar.read iv in
        resumed := true)
  in
  Engine.at eng (Time.ms 1) (fun () -> Engine.kill eng pid);
  Engine.at eng (Time.ms 2) (fun () -> Ivar.fill iv ());
  Engine.run eng;
  check_bool "not resumed" false !resumed

let test_mutex_handoff_skips_dead_waiter () =
  (* A holds the mutex; B queues then dies; when A unlocks, the lock
     must not be stranded on the dead B — C gets it. *)
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let m = Mutex.create () in
      Mutex.lock m;
      let b =
        Engine.spawn eng "b" (fun () ->
            Mutex.lock m;
            Alcotest.fail "dead waiter must not get the lock")
      in
      let c_got = ref false in
      let _c =
        Engine.spawn eng "c" (fun () ->
            Mutex.lock m;
            c_got := true;
            Mutex.unlock m)
      in
      Sim.sleep (Time.ms 1);
      Engine.kill eng b;
      Sim.sleep (Time.ms 1);
      Mutex.unlock m;
      Sim.sleep (Time.ms 1);
      check_bool "c acquired after dead b skipped" true !c_got;
      check_bool "free afterwards" false (Mutex.locked m))

let test_semaphore_release_skips_dead_waiter () =
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let s = Semaphore.create 0 in
      let b = Engine.spawn eng "b" (fun () -> Semaphore.acquire s) in
      Sim.sleep (Time.ms 1);
      Engine.kill eng b;
      Sim.sleep (Time.ms 1);
      Semaphore.release s;
      (* the dead waiter must not swallow the count *)
      check_int "count restored" 1 (Semaphore.count s))

let test_rwlock_grant_skips_dead_waiter () =
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let l = Rwlock.create () in
      Rwlock.lock_write l;
      let b = Engine.spawn eng "b" (fun () -> Rwlock.lock_write l) in
      let c_got = ref false in
      let _c =
        Engine.spawn eng "c" (fun () ->
            Rwlock.lock_read l;
            c_got := true)
      in
      Sim.sleep (Time.ms 1);
      Engine.kill eng b;
      Rwlock.unlock_write l;
      Sim.sleep (Time.ms 1);
      check_bool "reader granted past dead writer" true !c_got)

let test_on_terminate () =
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let log = ref [] in
      (* normal completion *)
      let a = Engine.spawn eng "a" (fun () -> Sim.sleep (Time.ms 1)) in
      Engine.on_terminate eng a (fun () -> log := "a" :: !log);
      (* killed *)
      let b = Engine.spawn eng "b" (fun () -> Sim.sleep (Time.sec 10)) in
      Engine.on_terminate eng b (fun () -> log := "b" :: !log);
      Sim.sleep (Time.ms 2);
      check_bool "a reported" true (List.mem "a" !log);
      check_bool "b not yet" false (List.mem "b" !log);
      Engine.kill eng b;
      Sim.sleep (Time.ms 1);
      check_bool "b reported after kill" true (List.mem "b" !log);
      (* already-finished process: callback runs immediately *)
      Engine.on_terminate eng a (fun () -> log := "late" :: !log);
      check_bool "late callback immediate" true (List.mem "late" !log))

(* ------------------------------------------------------------------ *)
(* Ivar *)

let test_ivar_fill_then_read () =
  let v =
    Sim.exec (fun () ->
        let iv = Ivar.create () in
        Ivar.fill iv 42;
        Ivar.read iv)
  in
  check_int "read full" 42 v

let test_ivar_read_blocks () =
  let v =
    Sim.exec (fun () ->
        let iv = Ivar.create () in
        let _ =
          Sim.spawn "filler" (fun () ->
              Sim.sleep (Time.ms 3);
              Ivar.fill iv 7)
        in
        let x = Ivar.read iv in
        (x, Sim.now ()))
  in
  check_int "value" 7 (fst v);
  check_int "waited 3ms" (Time.ms 3) (snd v)

let test_ivar_multiple_readers () =
  let total =
    Sim.exec (fun () ->
        let iv = Ivar.create () in
        let acc = ref 0 in
        let done_ = Semaphore.create 0 in
        for _ = 1 to 3 do
          ignore
            (Sim.spawn "reader" (fun () ->
                 acc := !acc + Ivar.read iv;
                 Semaphore.release done_))
        done;
        Sim.sleep (Time.ms 1);
        Ivar.fill iv 5;
        for _ = 1 to 3 do
          Semaphore.acquire done_
        done;
        !acc)
  in
  check_int "all readers woken" 15 total

let test_ivar_double_fill () =
  let raised =
    Sim.exec (fun () ->
        let iv = Ivar.create () in
        Ivar.fill iv 1;
        check_bool "try_fill on full" false (Ivar.try_fill iv 2);
        try
          Ivar.fill iv 3;
          false
        with Invalid_argument _ -> true)
  in
  check_bool "double fill raises" true raised

(* ------------------------------------------------------------------ *)
(* Mailbox *)

let test_mailbox_fifo () =
  let received =
    Sim.exec (fun () ->
        let mb = Mailbox.create "mb" in
        Mailbox.send mb 1;
        Mailbox.send mb 2;
        Mailbox.send mb 3;
        let a = Mailbox.recv mb in
        let b = Mailbox.recv mb in
        let c = Mailbox.recv mb in
        [ a; b; c ])
  in
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] received

let test_mailbox_blocking_recv () =
  let v =
    Sim.exec (fun () ->
        let mb = Mailbox.create "mb" in
        let _ =
          Sim.spawn "sender" (fun () ->
              Sim.sleep (Time.ms 2);
              Mailbox.send mb 99)
        in
        Mailbox.recv mb)
  in
  check_int "received" 99 v

let test_mailbox_timeout_expires () =
  let r =
    Sim.exec (fun () ->
        let mb : int Mailbox.t = Mailbox.create "mb" in
        let v = Mailbox.recv_timeout mb (Time.ms 5) in
        (v, Sim.now ()))
  in
  Alcotest.(check (option int)) "timed out" None (fst r);
  check_int "waited exactly timeout" (Time.ms 5) (snd r)

let test_mailbox_timeout_delivers () =
  let r =
    Sim.exec (fun () ->
        let mb = Mailbox.create "mb" in
        let _ =
          Sim.spawn "sender" (fun () ->
              Sim.sleep (Time.ms 2);
              Mailbox.send mb 1)
        in
        Mailbox.recv_timeout mb (Time.ms 5))
  in
  Alcotest.(check (option int)) "delivered" (Some 1) r

let test_mailbox_value_not_lost_on_timeout () =
  (* If the receiver times out, a later send must stay in the queue. *)
  let r =
    Sim.exec (fun () ->
        let mb = Mailbox.create "mb" in
        let first = Mailbox.recv_timeout mb (Time.ms 1) in
        Mailbox.send mb 8;
        let second = Mailbox.try_recv mb in
        (first, second))
  in
  Alcotest.(check (option int)) "timed out first" None (fst r);
  Alcotest.(check (option int)) "value kept" (Some 8) (snd r)

let test_mailbox_waiters_bounded () =
  (* Regression: a timed-out receiver used to leave its waiter queued
     forever, so a poll loop grew the queue without bound. *)
  let max_seen, after, late =
    Sim.exec (fun () ->
        let mb = Mailbox.create "mb" in
        let max_seen = ref 0 in
        for _ = 1 to 50 do
          assert (Mailbox.recv_timeout mb (Time.us 100) = None);
          max_seen := max !max_seen (Mailbox.waiters mb)
        done;
        let after = Mailbox.waiters mb in
        (* A fresh receiver must still get woken by a send: the purge
           must only discard dead waiters, never live ones. *)
        let got = ref None in
        ignore
          (Sim.spawn "late" (fun () -> got := Some (Mailbox.recv mb)));
        Sim.yield ();
        Mailbox.send mb 99;
        Sim.sleep (Time.us 1);
        (!max_seen, after, !got))
  in
  Alcotest.(check bool) "queue stays bounded" true (max_seen <= 1);
  check_int "no waiters after timeouts" 0 after;
  Alcotest.(check (option int)) "live receiver still served" (Some 99) late

let test_mailbox_receivers_fifo () =
  let order =
    Sim.exec (fun () ->
        let mb = Mailbox.create "mb" in
        let log = ref [] in
        let done_ = Semaphore.create 0 in
        let reader name =
          ignore
            (Sim.spawn name (fun () ->
                 let v = Mailbox.recv mb in
                 log := (name, v) :: !log;
                 Semaphore.release done_))
        in
        reader "r1";
        Sim.yield ();
        reader "r2";
        Sim.sleep (Time.ms 1);
        Mailbox.send mb 10;
        Mailbox.send mb 20;
        Semaphore.acquire done_;
        Semaphore.acquire done_;
        List.rev !log)
  in
  Alcotest.(check (list (pair string int)))
    "receivers served in arrival order"
    [ ("r1", 10); ("r2", 20) ]
    order

(* ------------------------------------------------------------------ *)
(* Semaphore / Mutex / Condition *)

let test_semaphore_counts () =
  Sim.exec (fun () ->
      let s = Semaphore.create 2 in
      Semaphore.acquire s;
      Semaphore.acquire s;
      check_int "exhausted" 0 (Semaphore.count s);
      check_bool "try fails at zero" false (Semaphore.try_acquire s);
      Semaphore.release s;
      check_bool "try succeeds" true (Semaphore.try_acquire s))

let test_semaphore_blocks_and_wakes () =
  let waited =
    Sim.exec (fun () ->
        let s = Semaphore.create 0 in
        let _ =
          Sim.spawn "releaser" (fun () ->
              Sim.sleep (Time.ms 4);
              Semaphore.release s)
        in
        Semaphore.acquire s;
        Sim.now ())
  in
  check_int "woken at release time" (Time.ms 4) waited

let test_mutex_mutual_exclusion () =
  let max_inside =
    Sim.exec (fun () ->
        let m = Mutex.create () in
        let inside = ref 0 in
        let peak = ref 0 in
        let done_ = Semaphore.create 0 in
        for i = 1 to 4 do
          ignore
            (Sim.spawn (Printf.sprintf "p%d" i) (fun () ->
                 Mutex.with_lock m (fun () ->
                     incr inside;
                     peak := max !peak !inside;
                     Sim.sleep (Time.ms 1);
                     decr inside);
                 Semaphore.release done_))
        done;
        for _ = 1 to 4 do
          Semaphore.acquire done_
        done;
        !peak)
  in
  check_int "never two holders" 1 max_inside

let test_mutex_exception_releases () =
  Sim.exec (fun () ->
      let m = Mutex.create () in
      (try Mutex.with_lock m (fun () -> failwith "boom")
       with Failure _ -> ());
      check_bool "released after exception" false (Mutex.locked m))

let test_condition_signal () =
  let v =
    Sim.exec (fun () ->
        let m = Mutex.create () in
        let c = Condition.create () in
        let ready = ref false in
        let _ =
          Sim.spawn "signaler" (fun () ->
              Sim.sleep (Time.ms 2);
              Mutex.with_lock m (fun () ->
                  ready := true;
                  Condition.signal c))
        in
        Mutex.lock m;
        while not !ready do
          Condition.wait c m
        done;
        Mutex.unlock m;
        Sim.now ())
  in
  check_int "woken by signal" (Time.ms 2) v

let test_condition_broadcast () =
  let n =
    Sim.exec (fun () ->
        let m = Mutex.create () in
        let c = Condition.create () in
        let woken = ref 0 in
        let done_ = Semaphore.create 0 in
        for _ = 1 to 3 do
          ignore
            (Sim.spawn "waiter" (fun () ->
                 Mutex.lock m;
                 Condition.wait c m;
                 incr woken;
                 Mutex.unlock m;
                 Semaphore.release done_))
        done;
        Sim.sleep (Time.ms 1);
        Mutex.with_lock m (fun () -> Condition.broadcast c);
        for _ = 1 to 3 do
          Semaphore.acquire done_
        done;
        !woken)
  in
  check_int "all woken" 3 n

(* ------------------------------------------------------------------ *)
(* Rwlock *)

let test_rwlock_shared_readers () =
  Sim.exec (fun () ->
      let l = Rwlock.create () in
      Rwlock.lock_read l;
      Rwlock.lock_read l;
      (match Rwlock.holders l with
      | `Readers 2 -> ()
      | _ -> Alcotest.fail "expected two readers");
      check_bool "writer blocked" false (Rwlock.try_lock_write l);
      Rwlock.unlock_read l;
      Rwlock.unlock_read l;
      check_bool "writer acquires when free" true (Rwlock.try_lock_write l))

let test_rwlock_writer_excludes () =
  Sim.exec (fun () ->
      let l = Rwlock.create () in
      Rwlock.lock_write l;
      check_bool "no second writer" false (Rwlock.try_lock_write l);
      check_bool "no reader under writer" false (Rwlock.try_lock_read l);
      Rwlock.unlock_write l)

let test_rwlock_fifo_no_starvation () =
  (* reader holds; writer queues; a later reader must wait behind the
     writer (FIFO), so the writer is not starved. *)
  let order =
    Sim.exec (fun () ->
        let l = Rwlock.create () in
        let log = ref [] in
        let done_ = Semaphore.create 0 in
        Rwlock.lock_read l;
        ignore
          (Sim.spawn "writer" (fun () ->
               Rwlock.lock_write l;
               log := "w" :: !log;
               Rwlock.unlock_write l;
               Semaphore.release done_));
        Sim.yield ();
        ignore
          (Sim.spawn "late-reader" (fun () ->
               Rwlock.lock_read l;
               log := "r" :: !log;
               Rwlock.unlock_read l;
               Semaphore.release done_));
        Sim.sleep (Time.ms 1);
        Rwlock.unlock_read l;
        Semaphore.acquire done_;
        Semaphore.acquire done_;
        List.rev !log)
  in
  Alcotest.(check (list string)) "writer before late reader" [ "w"; "r" ] order

let prop_rwlock_invariant =
  (* Under random operations, never a writer with readers or two
     writers. *)
  QCheck.Test.make ~name:"rwlock safety under random schedules" ~count:60
    QCheck.(pair small_nat (small_list (pair bool small_nat)))
    (fun (seed, plan) ->
      let violation = ref false in
      let ignore_pid (_ : Engine.pid) = () in
      (try
         Sim.exec ~seed (fun () ->
             let l = Rwlock.create () in
             let readers = ref 0 in
             let writers = ref 0 in
             let live = ref (List.length plan) in
             let done_ = Semaphore.create 0 in
             let check () =
               if !writers > 1 || (!writers = 1 && !readers > 0) then
                 violation := true
             in
             List.iter
               (fun (is_writer, delay) ->
                 ignore_pid
                   (Sim.spawn "op" (fun () ->
                        Sim.sleep (Time.us delay);
                        if is_writer then begin
                          Rwlock.lock_write l;
                          incr writers;
                          check ();
                          Sim.sleep (Time.us 10);
                          decr writers;
                          Rwlock.unlock_write l
                        end
                        else begin
                          Rwlock.lock_read l;
                          incr readers;
                          check ();
                          Sim.sleep (Time.us 10);
                          decr readers;
                          Rwlock.unlock_read l
                        end;
                        Semaphore.release done_)))
               plan;
             for _ = 1 to !live do
               Semaphore.acquire done_
             done)
       with Failure _ -> ());
      not !violation)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_summary () =
  let s = Stats.series "t" in
  List.iter (Stats.add s) [ 4.0; 1.0; 3.0; 2.0 ];
  check_int "n" 4 (Stats.n s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min_v s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.max_v s);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile s 0.0);
  Alcotest.(check (float 1e-9)) "p100" 4.0 (Stats.percentile s 100.0);
  Alcotest.(check (float 1e-9)) "p50" 2.5 (Stats.percentile s 50.0)

let test_stats_empty_series () =
  (* An empty series must summarise to finite values: [infinity] /
     [neg_infinity] leak into reports as invalid JSON. *)
  let s = Stats.series "empty" in
  check_int "n" 0 (Stats.n s);
  Alcotest.(check (float 0.0)) "mean" 0.0 (Stats.mean s);
  Alcotest.(check (float 0.0)) "min" 0.0 (Stats.min_v s);
  Alcotest.(check (float 0.0)) "max" 0.0 (Stats.max_v s)

let test_stats_empty_percentile () =
  (* regression: percentile on an empty series used to index into a
     zero-length array; it must return 0.0 like the other summaries *)
  let s = Stats.series "empty" in
  Alcotest.(check (float 0.0)) "p50 empty" 0.0 (Stats.percentile s 50.0);
  Alcotest.(check (float 0.0)) "p0 empty" 0.0 (Stats.percentile s 0.0);
  Alcotest.(check (float 0.0)) "p100 empty" 0.0 (Stats.percentile s 100.0);
  Alcotest.check_raises "out of range still rejected"
    (Invalid_argument "Stats.percentile: bad percentile") (fun () ->
      ignore (Stats.percentile s 150.0))

let test_hist_exact_aggregates () =
  let h = Stats.hist "h" in
  List.iter (Stats.hadd h) [ 4.0; 1.0; 3.0; 2.0 ];
  check_int "n" 4 (Stats.hist_n h);
  Alcotest.(check (float 1e-9)) "sum exact" 10.0 (Stats.hist_total h);
  Alcotest.(check (float 1e-9)) "mean exact" 2.5 (Stats.hist_mean h);
  Alcotest.(check (float 1e-9)) "min exact" 1.0 (Stats.hist_min h);
  Alcotest.(check (float 1e-9)) "max exact" 4.0 (Stats.hist_max h);
  (* p0/p100 clamp to the exact extrema, not bucket representatives *)
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.hist_percentile h 0.0);
  Alcotest.(check (float 1e-9)) "p100" 4.0 (Stats.hist_percentile h 100.0);
  (* empty histogram summarises to finite zeros like an empty series *)
  let e = Stats.hist "e" in
  check_int "empty n" 0 (Stats.hist_n e);
  Alcotest.(check (float 0.0)) "empty mean" 0.0 (Stats.hist_mean e);
  Alcotest.(check (float 0.0)) "empty p99" 0.0 (Stats.hist_percentile e 99.0)

let test_hist_accuracy_10k () =
  (* the acceptance bound: at 10k samples of a long-tailed latency
     shape, streaming percentiles stay within 1% relative error of
     the exact sorted-array percentiles *)
  let n = 10_000 in
  let x = ref 123456789 in
  let next () =
    x := ((!x * 1103515245) + 12345) land 0x3FFFFFFF;
    let u = float_of_int !x /. float_of_int 0x40000000 in
    (* inverse-CDF exponential, scaled into a ms-like range, plus a
       floor so samples sit well inside the bucket range *)
    0.05 +. (-.log (1.0 -. (u *. 0.9999)) *. 12.0)
  in
  let vals = Array.init n (fun _ -> next ()) in
  let s = Stats.series "exact" in
  let h = Stats.hist "stream" in
  Array.iter
    (fun v ->
      Stats.add s v;
      Stats.hadd h v)
    vals;
  List.iter
    (fun p ->
      let exact = Stats.percentile s p in
      let approx = Stats.hist_percentile h p in
      let rel = Float.abs (approx -. exact) /. exact in
      if rel > 0.01 then
        Alcotest.failf "p%.0f: hist %.6f vs exact %.6f (rel err %.4f > 1%%)" p
          approx exact rel)
    [ 50.0; 90.0; 95.0; 99.0; 99.9 ];
  Alcotest.(check (float 1e-9))
    "mean stays exact" (Stats.mean s) (Stats.hist_mean h)

let test_stats_counter () =
  let c = Stats.counter "c" in
  Stats.incr c;
  Stats.incr_by c 4;
  check_int "value" 5 (Stats.value c)

let prop_stats_mean_bounds =
  QCheck.Test.make ~name:"mean within min..max" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Stats.series "p" in
      List.iter (Stats.add s) xs;
      Stats.mean s >= Stats.min_v s -. 1e-9
      && Stats.mean s <= Stats.max_v s +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_record () =
  let tr = Trace.create () in
  Trace.record tr (Time.ms 1) "send" "a";
  Trace.record tr (Time.ms 2) "recv" "b";
  check_int "count" 2 (Trace.count tr ());
  check_int "by tag" 1 (Trace.count tr ~tag:"send" ());
  Trace.set_enabled tr false;
  Trace.record tr (Time.ms 3) "send" "c";
  check_int "disabled drops" 2 (Trace.count tr ());
  Trace.clear tr;
  check_int "cleared" 0 (Trace.count tr ())

let test_trace_growable () =
  (* the store is a growable array: recording far past the initial
     capacity keeps every entry, in order *)
  let tr = Trace.create () in
  for i = 1 to 10_000 do
    Trace.record tr (Time.us i) "e" (string_of_int i)
  done;
  check_int "all kept" 10_000 (Trace.count tr ());
  let seen = ref 0 in
  Trace.iter tr (fun e ->
      incr seen;
      if int_of_string e.Trace.detail <> !seen then
        Alcotest.failf "entry %d out of order: %s" !seen e.Trace.detail);
  check_int "iter visits all" 10_000 !seen

let test_trace_capacity_ring () =
  (* with [capacity] set the trace is a ring: only the most recent
     [capacity] entries survive, still in chronological order *)
  let tr = Trace.create ~capacity:100 () in
  for i = 1 to 1000 do
    Trace.record tr (Time.us i) "e" (string_of_int i)
  done;
  check_int "bounded" 100 (Trace.count tr ());
  let ds = List.map (fun e -> int_of_string e.Trace.detail) (Trace.entries tr) in
  Alcotest.(check int) "oldest kept entry" 901 (List.hd ds);
  Alcotest.(check int) "newest entry" 1000 (List.nth ds 99);
  Alcotest.(check (list int)) "chronological" (List.init 100 (fun i -> 901 + i)) ds;
  Trace.clear tr;
  check_int "clear resets" 0 (Trace.count tr ());
  Trace.record tr (Time.us 1) "e" "after";
  check_int "usable after clear" 1 (Trace.count tr ())

(* ------------------------------------------------------------------ *)
(* Fanout *)

let test_fanout_order_and_concurrency () =
  let elapsed, results =
    Sim.exec (fun () ->
        let t0 = Sim.now () in
        let rs =
          Fanout.map [ 30; 10; 20 ] ~f:(fun d ->
              Sim.sleep (Time.ms d);
              d * 2)
        in
        (Time.diff (Sim.now ()) t0, rs))
  in
  Alcotest.(check (list int)) "results in input order" [ 60; 20; 40 ] results;
  check_int "elapsed = slowest worker, not the sum" (Time.ms 30) elapsed

let test_fanout_empty_and_singleton () =
  Alcotest.(check (list int))
    "empty" []
    (Sim.exec (fun () -> Fanout.map [] ~f:(fun x -> x)));
  let t, r =
    Sim.exec (fun () ->
        let t0 = Sim.now () in
        let r = Fanout.map [ 7 ] ~f:(fun x -> x + 1) in
        (Time.diff (Sim.now ()) t0, r))
  in
  Alcotest.(check (list int)) "singleton result" [ 8 ] r;
  check_int "singleton runs inline, no scheduling round trip" 0 t

exception Boom

let test_fanout_exception_propagates () =
  let raised =
    try
      ignore
        (Sim.exec (fun () ->
             Fanout.map [ 1; 2; 3 ] ~f:(fun d ->
                 Sim.sleep (Time.ms d);
                 if d = 2 then raise Boom;
                 d)));
      false
    with Boom -> true
  in
  check_bool "worker exception re-raised at the join" true raised

let test_fanout_iter_waits_for_all () =
  let hits =
    Sim.exec (fun () ->
        let hits = ref 0 in
        Fanout.iter [ 5; 1; 3 ] ~f:(fun d ->
            Sim.sleep (Time.ms d);
            incr hits);
        !hits)
  in
  check_int "every worker ran before iter returned" 3 hits

(* ------------------------------------------------------------------ *)
(* Stats on large series (the sorted cache must stay correct across
   interleaved adds and reads) *)

let test_stats_large_series_regression () =
  let n = 10_000 in
  (* deterministic pseudo-random samples; no global Random state *)
  let x = ref 123456789 in
  let next () =
    x := ((!x * 1103515245) + 12345) land 0x3FFFFFFF;
    float_of_int !x /. 1e6
  in
  let vals = Array.init n (fun _ -> next ()) in
  let s = Stats.series "big" in
  Array.iter (Stats.add s) vals;
  let sorted = Array.copy vals in
  Array.sort compare sorted;
  check_int "n" n (Stats.n s);
  Alcotest.(check (float 1e-9)) "min" sorted.(0) (Stats.min_v s);
  Alcotest.(check (float 1e-9)) "max" sorted.(n - 1) (Stats.max_v s);
  Alcotest.(check (float 1e-9)) "p0 = min" sorted.(0) (Stats.percentile s 0.0);
  Alcotest.(check (float 1e-9))
    "p100 = max"
    sorted.(n - 1)
    (Stats.percentile s 100.0);
  let p50 = Stats.percentile s 50.0 in
  check_bool "median between the two middle samples" true
    (p50 >= sorted.((n / 2) - 1) && p50 <= sorted.(n / 2));
  check_bool "percentiles monotone" true
    (Stats.percentile s 25.0 <= p50 && p50 <= Stats.percentile s 75.0);
  let mean = Array.fold_left ( +. ) 0.0 vals /. float_of_int n in
  Alcotest.(check (float 1e-6)) "mean" mean (Stats.mean s);
  (* sample standard deviation (n - 1), matching the library *)
  let var =
    Array.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.0)) 0.0 vals
    /. float_of_int (n - 1)
  in
  Alcotest.(check (float 1e-4)) "stddev" (sqrt var) (Stats.stddev s);
  (* the cached sorted view must be invalidated by a later add *)
  Stats.add s 1.0e9;
  Alcotest.(check (float 1e-9)) "max after add" 1.0e9 (Stats.max_v s);
  Alcotest.(check (float 1e-9))
    "p100 after add" 1.0e9 (Stats.percentile s 100.0);
  check_int "n after add" (n + 1) (Stats.n s)

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "sim"
    [
      ( "time",
        [ Alcotest.test_case "units and arithmetic" `Quick test_time_units ] );
      ( "heap",
        [
          Alcotest.test_case "basic order" `Quick test_heap_basic;
          Alcotest.test_case "pop releases references" `Quick
            test_heap_pop_releases;
        ] );
      qsuite "heap-props" [ prop_heap_sorted; prop_heap_interleaved ];
      ( "engine",
        [
          Alcotest.test_case "clock advances on sleep" `Quick
            test_clock_advances;
          Alcotest.test_case "spawn order" `Quick test_spawn_ordering;
          Alcotest.test_case "same-instant fifo" `Quick test_same_instant_fifo;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "nested spawn and self" `Quick
            test_nested_spawn_and_self;
          Alcotest.test_case "deadlock detection" `Quick
            test_exec_deadlock_detected;
        ] );
      ( "kill",
        [
          Alcotest.test_case "kill sleeping process" `Quick test_kill_sleeping;
          Alcotest.test_case "kill group" `Quick test_kill_group;
          Alcotest.test_case "spawn inherits group" `Quick
            test_spawn_inherits_group;
          Alcotest.test_case "waker cannot resurrect" `Quick
            test_killed_not_resumed_by_waker;
          Alcotest.test_case "mutex handoff skips dead waiter" `Quick
            test_mutex_handoff_skips_dead_waiter;
          Alcotest.test_case "semaphore skips dead waiter" `Quick
            test_semaphore_release_skips_dead_waiter;
          Alcotest.test_case "rwlock skips dead waiter" `Quick
            test_rwlock_grant_skips_dead_waiter;
          Alcotest.test_case "on_terminate" `Quick test_on_terminate;
        ] );
      ( "ivar",
        [
          Alcotest.test_case "fill then read" `Quick test_ivar_fill_then_read;
          Alcotest.test_case "read blocks until fill" `Quick
            test_ivar_read_blocks;
          Alcotest.test_case "multiple readers" `Quick
            test_ivar_multiple_readers;
          Alcotest.test_case "double fill" `Quick test_ivar_double_fill;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "fifo" `Quick test_mailbox_fifo;
          Alcotest.test_case "blocking recv" `Quick test_mailbox_blocking_recv;
          Alcotest.test_case "timeout expires" `Quick
            test_mailbox_timeout_expires;
          Alcotest.test_case "timeout delivers" `Quick
            test_mailbox_timeout_delivers;
          Alcotest.test_case "value kept after timeout" `Quick
            test_mailbox_value_not_lost_on_timeout;
          Alcotest.test_case "receivers fifo" `Quick
            test_mailbox_receivers_fifo;
          Alcotest.test_case "waiter queue bounded" `Quick
            test_mailbox_waiters_bounded;
        ] );
      ( "semaphore",
        [
          Alcotest.test_case "counts" `Quick test_semaphore_counts;
          Alcotest.test_case "blocks and wakes" `Quick
            test_semaphore_blocks_and_wakes;
        ] );
      ( "mutex",
        [
          Alcotest.test_case "mutual exclusion" `Quick
            test_mutex_mutual_exclusion;
          Alcotest.test_case "exception releases" `Quick
            test_mutex_exception_releases;
        ] );
      ( "condition",
        [
          Alcotest.test_case "signal" `Quick test_condition_signal;
          Alcotest.test_case "broadcast" `Quick test_condition_broadcast;
        ] );
      ( "rwlock",
        [
          Alcotest.test_case "shared readers" `Quick test_rwlock_shared_readers;
          Alcotest.test_case "writer excludes" `Quick
            test_rwlock_writer_excludes;
          Alcotest.test_case "fifo prevents writer starvation" `Quick
            test_rwlock_fifo_no_starvation;
        ] );
      qsuite "rwlock-props" [ prop_rwlock_invariant ];
      ( "fanout",
        [
          Alcotest.test_case "order and concurrency" `Quick
            test_fanout_order_and_concurrency;
          Alcotest.test_case "empty and singleton" `Quick
            test_fanout_empty_and_singleton;
          Alcotest.test_case "exception propagates" `Quick
            test_fanout_exception_propagates;
          Alcotest.test_case "iter waits for all" `Quick
            test_fanout_iter_waits_for_all;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "empty series" `Quick test_stats_empty_series;
          Alcotest.test_case "empty percentile" `Quick
            test_stats_empty_percentile;
          Alcotest.test_case "counter" `Quick test_stats_counter;
          Alcotest.test_case "large series regression" `Quick
            test_stats_large_series_regression;
          Alcotest.test_case "hist exact aggregates" `Quick
            test_hist_exact_aggregates;
          Alcotest.test_case "hist accuracy at 10k" `Quick
            test_hist_accuracy_10k;
        ] );
      qsuite "stats-props" [ prop_stats_mean_bounds ];
      ( "trace",
        [
          Alcotest.test_case "record" `Quick test_trace_record;
          Alcotest.test_case "growable" `Quick test_trace_growable;
          Alcotest.test_case "capacity ring" `Quick test_trace_capacity_ring;
        ] );
    ]
