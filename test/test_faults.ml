(* The deterministic fault-injection harness: every named scenario
   must satisfy its recovery invariants, and a (scenario, seed) pair
   must reproduce the identical outcome. *)

open Experiments

let test_scenario name () =
  let o = Faults.run name in
  Alcotest.(check (list string))
    (name ^ " invariants hold")
    [] o.Faults.violations

let test_deterministic () =
  List.iter
    (fun name ->
      let a = Faults.run ~seed:7 name in
      let b = Faults.run ~seed:7 name in
      Alcotest.(check string)
        (name ^ " reproducible from seed")
        (Faults.summary a) (Faults.summary b))
    Faults.scenarios

let test_unknown_scenario () =
  Alcotest.check_raises "unknown name"
    (Invalid_argument "Faults.run: unknown scenario \"no-such\"") (fun () ->
      ignore (Faults.run "no-such"))

let () =
  Alcotest.run "faults"
    [
      ( "scenarios",
        List.map
          (fun n -> Alcotest.test_case n `Quick (test_scenario n))
          Faults.scenarios );
      ( "determinism",
        [
          Alcotest.test_case "same seed, same outcome" `Quick
            test_deterministic;
          Alcotest.test_case "unknown scenario" `Quick test_unknown_scenario;
        ] );
    ]
