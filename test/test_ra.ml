(* Tests for the Ra kernel model: sysnames, virtual spaces, CPU
   scheduling costs, and the MMU fault paths. *)

open Sim
open Ra

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Sysname *)

let test_sysname_uniqueness () =
  let g = Sysname.make_gen ~node:3 in
  let a = Sysname.fresh g and b = Sysname.fresh g in
  check_bool "distinct" false (Sysname.equal a b);
  let g7 = Sysname.make_gen ~node:7 in
  let c = Sysname.fresh g7 in
  check_bool "cross-node distinct" false (Sysname.equal a c);
  check_bool "well-known stable" true
    (Sysname.equal (Sysname.well_known 4) (Sysname.well_known 4))

let test_sysname_table () =
  let g = Sysname.make_gen ~node:1 in
  let tbl = Sysname.Table.create 4 in
  let a = Sysname.fresh g in
  Sysname.Table.replace tbl a 42;
  Alcotest.(check (option int)) "found" (Some 42) (Sysname.Table.find_opt tbl a);
  let b = Sysname.fresh g in
  Alcotest.(check (option int)) "absent" None (Sysname.Table.find_opt tbl b)

let prop_sysname_all_distinct =
  QCheck.Test.make ~name:"generated sysnames pairwise distinct" ~count:50
    QCheck.(int_range 1 200)
    (fun n ->
      let g = Sysname.make_gen ~node:9 in
      let names = List.init n (fun _ -> Sysname.fresh g) in
      let tbl = Sysname.Table.create n in
      List.for_all
        (fun s ->
          if Sysname.Table.mem tbl s then false
          else begin
            Sysname.Table.replace tbl s ();
            true
          end)
        names)

(* ------------------------------------------------------------------ *)
(* Page *)

let test_page_math () =
  check_int "size" 8192 Page.size;
  check_int "index 0" 0 (Page.index_of 100);
  check_int "index 1" 1 (Page.index_of 8192);
  check_int "count empty" 1 (Page.count_for 0);
  check_int "count exact" 1 (Page.count_for 8192);
  check_int "count spill" 2 (Page.count_for 8193)

(* ------------------------------------------------------------------ *)
(* Virtual space *)

let seg_gen = Sysname.make_gen ~node:0

let test_vspace_map_translate () =
  let vs = Virtual_space.create () in
  let s1 = Sysname.fresh seg_gen and s2 = Sysname.fresh seg_gen in
  Virtual_space.map vs ~base:0 ~len:(2 * Page.size) ~prot:Virtual_space.Read_only s1;
  (* a hole, then s2 *)
  Virtual_space.map vs ~base:(4 * Page.size) ~len:Page.size
    ~prot:Virtual_space.Read_write s2;
  (match Virtual_space.translate vs 100 with
  | Some (m, off) ->
      check_bool "s1" true (Sysname.equal m.Virtual_space.seg s1);
      check_int "offset" 100 off
  | None -> Alcotest.fail "unmapped");
  (match Virtual_space.translate vs ((4 * Page.size) + 7) with
  | Some (m, off) ->
      check_bool "s2" true (Sysname.equal m.Virtual_space.seg s2);
      check_int "offset in s2" 7 off
  | None -> Alcotest.fail "unmapped");
  check_bool "hole" true (Virtual_space.translate vs (3 * Page.size) = None);
  check_int "segments" 2 (List.length (Virtual_space.segments vs))

let test_vspace_seg_off () =
  let vs = Virtual_space.create () in
  let s = Sysname.fresh seg_gen in
  Virtual_space.map vs ~base:Page.size ~len:Page.size ~seg_off:(2 * Page.size)
    ~prot:Virtual_space.Read_write s;
  match Virtual_space.translate vs (Page.size + 5) with
  | Some (_, off) -> check_int "window offset" ((2 * Page.size) + 5) off
  | None -> Alcotest.fail "unmapped"

let test_vspace_overlap_rejected () =
  let vs = Virtual_space.create () in
  let s = Sysname.fresh seg_gen in
  Virtual_space.map vs ~base:0 ~len:(2 * Page.size) ~prot:Virtual_space.Read_write s;
  let raised =
    try
      Virtual_space.map vs ~base:Page.size ~len:Page.size
        ~prot:Virtual_space.Read_write s;
      false
    with Invalid_argument _ -> true
  in
  check_bool "overlap rejected" true raised;
  let misaligned =
    try
      Virtual_space.map vs ~base:(3 * Page.size) ~len:100
        ~prot:Virtual_space.Read_write s;
      false
    with Invalid_argument _ -> true
  in
  check_bool "misaligned rejected" true misaligned

let test_vspace_unmap () =
  let vs = Virtual_space.create () in
  let s = Sysname.fresh seg_gen in
  Virtual_space.map vs ~base:0 ~len:Page.size ~prot:Virtual_space.Read_write s;
  Virtual_space.unmap vs ~base:0;
  check_bool "gone" true (Virtual_space.translate vs 0 = None);
  check_bool "unmap missing raises" true
    (try
       Virtual_space.unmap vs ~base:0;
       false
     with Not_found -> true)

let prop_vspace_translate_consistent =
  QCheck.Test.make ~name:"translate agrees with mapping arithmetic" ~count:100
    QCheck.(pair (int_range 0 20) (int_range 0 200_000))
    (fun (npages_minus, probe) ->
      let vs = Virtual_space.create () in
      let s = Sysname.fresh seg_gen in
      let npages = 1 + npages_minus in
      Virtual_space.map vs ~base:Page.size ~len:(npages * Page.size)
        ~prot:Virtual_space.Read_write s;
      match Virtual_space.translate vs probe with
      | Some (_, off) ->
          probe >= Page.size
          && probe < Page.size + (npages * Page.size)
          && off = probe - Page.size
      | None -> probe < Page.size || probe >= Page.size + (npages * Page.size))

(* ------------------------------------------------------------------ *)
(* CPU *)

let test_cpu_context_switch_accounting () =
  let switches, elapsed =
    Sim.exec (fun () ->
        let cpu = Cpu.create ~context_switch:(Time.us 140) () in
        (* entity 1 runs twice in a row: one switch total (cold start);
           then entity 2: second switch *)
        Cpu.consume cpu ~key:1 (Time.us 100);
        Cpu.consume cpu ~key:1 (Time.us 100);
        Cpu.consume cpu ~key:2 (Time.us 100);
        (Cpu.switches cpu, Sim.now ()))
  in
  check_int "two switches" 2 switches;
  check_int "time = 3 work + 2 cs" (Time.us (300 + 280)) elapsed

let test_cpu_serializes () =
  let elapsed =
    Sim.exec (fun () ->
        let cpu = Cpu.create ~context_switch:0 () in
        let done_ = Semaphore.create 0 in
        for i = 1 to 3 do
          ignore
            (Sim.spawn (Printf.sprintf "w%d" i) (fun () ->
                 Cpu.consume cpu ~key:i (Time.ms 1);
                 Semaphore.release done_))
        done;
        for _ = 1 to 3 do
          Semaphore.acquire done_
        done;
        Sim.now ())
  in
  check_int "three 1ms jobs serialize" (Time.ms 3) elapsed

(* ------------------------------------------------------------------ *)
(* MMU *)

(* A fake partition over an in-memory page table, counting fetches. *)
let fake_partition () =
  let pages : (Sysname.t * int, bytes) Hashtbl.t = Hashtbl.create 16 in
  let fetches = ref 0 in
  let partition =
    {
      Partition.name = "fake";
      fetch =
        (fun ~seg ~page ~mode:_ ->
          incr fetches;
          match Hashtbl.find_opt pages (seg, page) with
          | Some b -> Partition.Data (Bytes.copy b)
          | None -> Partition.Zeroed);
      writeback = (fun ~seg ~page data -> Hashtbl.replace pages (seg, page) data);
    }
  in
  (partition, pages, fetches)

let with_mmu f =
  Sim.exec (fun () ->
      let params = Params.default in
      let cpu = Cpu.create ~context_switch:params.Params.context_switch () in
      let mmu = Mmu.create ~params ~cpu () in
      let partition, pages, fetches = fake_partition () in
      Mmu.set_resolver mmu (fun _ -> partition);
      let vs = Virtual_space.create () in
      let seg = Sysname.fresh seg_gen in
      Virtual_space.map vs ~base:0 ~len:(4 * Page.size)
        ~prot:Virtual_space.Read_write seg;
      (* absorb the cold-start context switch so fault timing is pure *)
      Cpu.consume cpu ~key:(Sim.self ()) 0;
      f mmu vs seg pages fetches)

let test_mmu_zero_fill_fault_cost () =
  let elapsed =
    with_mmu (fun mmu vs _seg _pages _fetches ->
        let t0 = Sim.now () in
        let b = Mmu.read mmu vs ~addr:0 ~len:8 in
        check_bool "zeroed" true (Bytes.for_all (fun c -> c = '\000') b);
        Time.diff (Sim.now ()) t0)
  in
  (* paper: 1.5 ms for a zero-filled 8K page *)
  check_int "fault_trap + zero_fill" (Time.us 1500) elapsed

let test_mmu_data_fault_cost () =
  let elapsed =
    with_mmu (fun mmu vs seg pages _fetches ->
        let page = Bytes.make Page.size 'x' in
        Hashtbl.replace pages (seg, 0) page;
        let t0 = Sim.now () in
        let b = Mmu.read mmu vs ~addr:0 ~len:4 in
        Alcotest.(check string) "data" "xxxx" (Bytes.to_string b);
        Time.diff (Sim.now ()) t0)
  in
  (* paper: 0.629 ms for a non-zero-filled 8K page *)
  check_int "fault_trap + copy" (Time.us 629) elapsed

let test_mmu_resident_access_free () =
  let second =
    with_mmu (fun mmu vs _seg _pages _fetches ->
        ignore (Mmu.read mmu vs ~addr:0 ~len:8);
        let t0 = Sim.now () in
        ignore (Mmu.read mmu vs ~addr:16 ~len:8);
        Time.diff (Sim.now ()) t0)
  in
  check_int "no cost once resident" 0 second

let test_mmu_read_your_writes () =
  with_mmu (fun mmu vs _seg _pages _fetches ->
      Mmu.write mmu vs ~addr:100 (Bytes.of_string "hello");
      let b = Mmu.read mmu vs ~addr:100 ~len:5 in
      Alcotest.(check string) "readback" "hello" (Bytes.to_string b))

let test_mmu_cross_page_access () =
  with_mmu (fun mmu vs _seg _pages fetches ->
      let data = Bytes.make 100 'z' in
      Mmu.write mmu vs ~addr:(Page.size - 50) data;
      check_int "two pages faulted" 2 !fetches;
      let b = Mmu.read mmu vs ~addr:(Page.size - 50) ~len:100 in
      Alcotest.(check string) "spans boundary" (Bytes.to_string data)
        (Bytes.to_string b))

let test_mmu_write_marks_dirty_and_upgrade () =
  with_mmu (fun mmu vs seg _pages _fetches ->
      ignore (Mmu.read mmu vs ~addr:0 ~len:1);
      check_bool "read mode" true (Mmu.resident mmu seg 0 = Some Partition.Read);
      check_int "no dirty yet" 0 (List.length (Mmu.dirty_pages mmu seg));
      Mmu.write mmu vs ~addr:0 (Bytes.of_string "a");
      check_bool "write mode" true (Mmu.resident mmu seg 0 = Some Partition.Write);
      check_int "one upgrade" 1 (Mmu.upgrades mmu);
      check_int "dirty" 1 (List.length (Mmu.dirty_pages mmu seg)))

let test_mmu_segv_and_protection () =
  with_mmu (fun mmu vs seg _pages _fetches ->
      let segv =
        try
          ignore (Mmu.read mmu vs ~addr:(10 * Page.size) ~len:1);
          false
        with Mmu.Segv _ -> true
      in
      check_bool "segv on hole" true segv;
      let ro = Virtual_space.create () in
      Virtual_space.map ro ~base:0 ~len:Page.size ~prot:Virtual_space.Read_only
        seg;
      let prot =
        try
          Mmu.write mmu ro ~addr:0 (Bytes.of_string "x");
          false
        with Mmu.Write_protect _ -> true
      in
      check_bool "write protect" true prot)

let test_mmu_invalidate_returns_dirty () =
  with_mmu (fun mmu vs seg _pages _fetches ->
      Mmu.write mmu vs ~addr:0 (Bytes.of_string "dirty!");
      (match Mmu.invalidate mmu seg 0 with
      | Some data ->
          Alcotest.(check string) "dirty data" "dirty!"
            (Bytes.to_string (Bytes.sub data 0 6))
      | None -> Alcotest.fail "expected dirty data");
      check_bool "frame gone" true (Mmu.resident mmu seg 0 = None);
      (* clean frame invalidation returns nothing *)
      ignore (Mmu.read mmu vs ~addr:0 ~len:1);
      check_bool "clean invalidate" true (Mmu.invalidate mmu seg 0 = None))

let test_mmu_downgrade () =
  with_mmu (fun mmu vs seg _pages _fetches ->
      Mmu.write mmu vs ~addr:0 (Bytes.of_string "w");
      (match Mmu.downgrade mmu seg 0 with
      | Some _ -> ()
      | None -> Alcotest.fail "dirty page should surface");
      check_bool "now read mode" true
        (Mmu.resident mmu seg 0 = Some Partition.Read);
      check_int "no longer dirty" 0 (List.length (Mmu.dirty_pages mmu seg)))

let test_mmu_concurrent_faults_single_fetch () =
  with_mmu (fun mmu vs _seg _pages fetches ->
      let done_ = Semaphore.create 0 in
      for _ = 1 to 3 do
        ignore
          (Sim.spawn "reader" (fun () ->
               ignore (Mmu.read mmu vs ~addr:0 ~len:1);
               Semaphore.release done_))
      done;
      for _ = 1 to 3 do
        Semaphore.acquire done_
      done;
      check_int "one partition fetch" 1 !fetches)

let test_mmu_clear_drops_everything () =
  with_mmu (fun mmu vs seg _pages _fetches ->
      Mmu.write mmu vs ~addr:0 (Bytes.of_string "gone");
      Mmu.clear mmu;
      check_bool "not resident" true (Mmu.resident mmu seg 0 = None);
      check_int "dirty lost (crash semantics)" 0
        (List.length (Mmu.dirty_pages mmu seg)))

let with_small_mmu ~max_frames f =
  Sim.exec (fun () ->
      let params = Params.default in
      let cpu = Cpu.create ~context_switch:params.Params.context_switch () in
      let mmu = Mmu.create ~max_frames ~params ~cpu () in
      let partition, pages, fetches = fake_partition () in
      Mmu.set_resolver mmu (fun _ -> partition);
      let vs = Virtual_space.create () in
      let seg = Sysname.fresh seg_gen in
      Virtual_space.map vs ~base:0 ~len:(8 * Page.size)
        ~prot:Virtual_space.Read_write seg;
      Cpu.consume cpu ~key:(Sim.self ()) 0;
      f mmu vs seg pages fetches)

let test_mmu_eviction_lru () =
  with_small_mmu ~max_frames:3 (fun mmu vs seg _pages fetches ->
      (* fill the three frames: pages 0,1,2 *)
      for p = 0 to 2 do
        ignore (Mmu.read mmu vs ~addr:(p * Page.size) ~len:1)
      done;
      check_int "three resident" 3 (Mmu.resident_frames mmu);
      (* reuse page 0 so page 1 becomes the LRU, then fault page 3 *)
      ignore (Mmu.read mmu vs ~addr:0 ~len:1);
      ignore (Mmu.read mmu vs ~addr:(3 * Page.size) ~len:1);
      check_int "still three resident" 3 (Mmu.resident_frames mmu);
      check_int "one eviction" 1 (Mmu.evictions mmu);
      check_bool "page 1 (lru) evicted" true (Mmu.resident mmu seg 1 = None);
      check_bool "page 0 kept" true (Mmu.resident mmu seg 0 <> None);
      (* the evicted page refetches on demand *)
      let before = !fetches in
      ignore (Mmu.read mmu vs ~addr:Page.size ~len:1);
      check_int "refetched" (before + 1) !fetches)

let test_mmu_eviction_writes_back_dirty () =
  with_small_mmu ~max_frames:2 (fun mmu vs seg pages _fetches ->
      Mmu.write mmu vs ~addr:0 (Bytes.of_string "persist-me");
      ignore (Mmu.read mmu vs ~addr:Page.size ~len:1);
      ignore (Mmu.read mmu vs ~addr:(2 * Page.size) ~len:1);
      (* page 0 was dirty and LRU: its bytes must be in the partition *)
      check_bool "dirty page written back" true
        (match Hashtbl.find_opt pages (seg, 0) with
        | Some b -> Bytes.to_string (Bytes.sub b 0 10) = "persist-me"
        | None -> false);
      (* and reading it again returns the written data *)
      Alcotest.(check string)
        "roundtrip after eviction" "persist-me"
        (Bytes.to_string (Mmu.read mmu vs ~addr:0 ~len:10)))

(* Drive a node well past its frame budget with a mix of clean and
   dirty frames: every dirty victim must reach the partition, clean
   victims must not trigger writebacks, and the eviction counter must
   account for every displaced frame. *)
let test_mmu_eviction_mixed_clean_dirty () =
  with_small_mmu ~max_frames:4 (fun mmu vs seg pages _fetches ->
      Mmu.write mmu vs ~addr:0 (Bytes.of_string "dirty-0");
      Mmu.write mmu vs ~addr:Page.size (Bytes.of_string "dirty-1");
      ignore (Mmu.read mmu vs ~addr:(2 * Page.size) ~len:1);
      ignore (Mmu.read mmu vs ~addr:(3 * Page.size) ~len:1);
      check_int "at budget, no evictions yet" 0 (Mmu.evictions mmu);
      (* pages 4..7 displace 0..3 in LRU order *)
      for p = 4 to 7 do
        ignore (Mmu.read mmu vs ~addr:(p * Page.size) ~len:1)
      done;
      check_int "every displaced frame counted" 4 (Mmu.evictions mmu);
      check_int "still at the frame budget" 4 (Mmu.resident_frames mmu);
      for p = 0 to 3 do
        check_bool
          (Printf.sprintf "page %d evicted" p)
          true
          (Mmu.resident mmu seg p = None)
      done;
      (* dirty victims were written back, not dropped *)
      let stored p want =
        match Hashtbl.find_opt pages (seg, p) with
        | Some b -> Bytes.to_string (Bytes.sub b 0 (String.length want)) = want
        | None -> false
      in
      check_bool "dirty page 0 written back" true (stored 0 "dirty-0");
      check_bool "dirty page 1 written back" true (stored 1 "dirty-1");
      (* clean victims never touched the partition *)
      check_bool "clean page 2 not written back" true
        (Hashtbl.find_opt pages (seg, 2) = None);
      check_bool "clean page 3 not written back" true
        (Hashtbl.find_opt pages (seg, 3) = None);
      (* the written-back data survives a refetch *)
      Alcotest.(check string)
        "roundtrip after eviction" "dirty-0"
        (Bytes.to_string (Mmu.read mmu vs ~addr:0 ~len:7)))

let test_mmu_install_read () =
  with_small_mmu ~max_frames:2 (fun mmu vs seg _pages fetches ->
      let img = Bytes.make Page.size 'p' in
      check_bool "installs into a free frame" true
        (Mmu.install_read mmu seg 0 img = Mmu.Installed);
      check_bool "resident read-mode" true
        (Mmu.resident mmu seg 0 = Some Partition.Read);
      check_int "one prefetch" 1 (Mmu.prefetches mmu);
      (* a resident page declines as Retained: the copy (and its
         copyset registration) stays live *)
      check_bool "no second install on a resident page" true
        (Mmu.install_read mmu seg 0 img = Mmu.Retained);
      (* the installed copy serves reads without any fetch *)
      Alcotest.(check string)
        "contents visible" "pppp"
        (Bytes.to_string (Mmu.read mmu vs ~addr:0 ~len:4));
      check_int "no fetch issued" 0 !fetches;
      check_bool "clean, not dirty" true (Mmu.dirty_pages mmu seg = []);
      (* at the frame budget, speculation must not evict *)
      ignore (Mmu.read mmu vs ~addr:Page.size ~len:1);
      check_int "budget full" 2 (Mmu.resident_frames mmu);
      (* the budget decline keeps nothing, so the caller must release
         its registration *)
      check_bool "install refused at budget" true
        (Mmu.install_read mmu seg 2 img = Mmu.No_copy);
      check_int "nothing evicted for speculation" 0 (Mmu.evictions mmu))

(* ------------------------------------------------------------------ *)
(* Node and isiba *)

let test_node_crash_kills_processes () =
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let ether = Net.Ethernet.create eng () in
      let node = Node.create ether ~id:5 ~kind:Node.Compute () in
      let ran = ref false in
      let _isiba =
        Isiba.spawn node ~stack:Isiba.User "worker" (fun () ->
            Sim.sleep (Time.ms 100);
            ran := true)
      in
      Sim.sleep (Time.ms 1);
      Node.crash node;
      Sim.sleep (Time.ms 200);
      check_bool "worker died with node" false !ran;
      check_bool "node marked dead" false node.Node.alive)

let test_isiba_compute_charges_cpu () =
  let elapsed =
    Sim.exec (fun () ->
        let eng = Sim.engine () in
        let ether = Net.Ethernet.create eng () in
        let node = Node.create ether ~id:6 ~kind:Node.Compute () in
        let t0 = Sim.now () in
        Isiba.compute node (Time.ms 2);
        Time.diff (Sim.now ()) t0)
  in
  (* 2ms work + cold context switch *)
  check_int "work plus switch" (Time.ms 2 + Time.us 140) elapsed

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "ra"
    [
      ( "sysname",
        [
          Alcotest.test_case "uniqueness" `Quick test_sysname_uniqueness;
          Alcotest.test_case "table" `Quick test_sysname_table;
        ] );
      qsuite "sysname-props" [ prop_sysname_all_distinct ];
      ("page", [ Alcotest.test_case "math" `Quick test_page_math ]);
      ( "vspace",
        [
          Alcotest.test_case "map and translate" `Quick
            test_vspace_map_translate;
          Alcotest.test_case "segment offset windows" `Quick
            test_vspace_seg_off;
          Alcotest.test_case "overlap and alignment" `Quick
            test_vspace_overlap_rejected;
          Alcotest.test_case "unmap" `Quick test_vspace_unmap;
        ] );
      qsuite "vspace-props" [ prop_vspace_translate_consistent ];
      ( "cpu",
        [
          Alcotest.test_case "context switch accounting" `Quick
            test_cpu_context_switch_accounting;
          Alcotest.test_case "serializes" `Quick test_cpu_serializes;
        ] );
      ( "mmu",
        [
          Alcotest.test_case "zero-fill fault cost (paper 1.5ms)" `Quick
            test_mmu_zero_fill_fault_cost;
          Alcotest.test_case "data fault cost (paper 0.629ms)" `Quick
            test_mmu_data_fault_cost;
          Alcotest.test_case "resident access free" `Quick
            test_mmu_resident_access_free;
          Alcotest.test_case "read your writes" `Quick
            test_mmu_read_your_writes;
          Alcotest.test_case "cross-page access" `Quick
            test_mmu_cross_page_access;
          Alcotest.test_case "dirty and upgrade" `Quick
            test_mmu_write_marks_dirty_and_upgrade;
          Alcotest.test_case "segv and protection" `Quick
            test_mmu_segv_and_protection;
          Alcotest.test_case "invalidate returns dirty" `Quick
            test_mmu_invalidate_returns_dirty;
          Alcotest.test_case "downgrade" `Quick test_mmu_downgrade;
          Alcotest.test_case "concurrent faults fetch once" `Quick
            test_mmu_concurrent_faults_single_fetch;
          Alcotest.test_case "clear drops everything" `Quick
            test_mmu_clear_drops_everything;
          Alcotest.test_case "lru eviction" `Quick test_mmu_eviction_lru;
          Alcotest.test_case "eviction writes back dirty" `Quick
            test_mmu_eviction_writes_back_dirty;
          Alcotest.test_case "eviction mixed clean/dirty" `Quick
            test_mmu_eviction_mixed_clean_dirty;
          Alcotest.test_case "install_read prefetch copies" `Quick
            test_mmu_install_read;
        ] );
      ( "node",
        [
          Alcotest.test_case "crash kills processes" `Quick
            test_node_crash_kills_processes;
          Alcotest.test_case "isiba compute charges cpu" `Quick
            test_isiba_compute_charges_cpu;
        ] );
    ]
