(* Tests for the RaTP transport: transactions, fragmentation,
   retransmission, duplicate suppression, and the FTP/NFS
   comparators. *)

open Sim
open Ratp

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let echo_service = 7

type Packet.body += Echo of string | Blob of int

let with_pair ?(config = Endpoint.default_config) f =
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let ether = Net.Ethernet.create eng () in
      let a = Endpoint.create ether ~addr:1 () in
      let b = Endpoint.create ether ~addr:2 ~config () in
      f ether a b)

let serve_echo ?(delay = 0) b =
  Endpoint.serve b ~service:echo_service (fun ~src:_ body ->
      if delay > 0 then Sim.sleep delay;
      match body with
      | Echo s -> (Echo (s ^ "!"), String.length s + 1)
      | Blob n -> (Blob n, n)
      | _ -> (Echo "?", 1))

(* ------------------------------------------------------------------ *)
(* Packet math *)

let test_nfrags () =
  check_int "zero" 1 (Packet.nfrags_of ~frag_payload:1400 0);
  check_int "one byte" 1 (Packet.nfrags_of ~frag_payload:1400 1);
  check_int "exact" 1 (Packet.nfrags_of ~frag_payload:1400 1400);
  check_int "one more" 2 (Packet.nfrags_of ~frag_payload:1400 1401);
  check_int "8k" 6 (Packet.nfrags_of ~frag_payload:1400 8192)

let prop_frag_sizes_sum =
  QCheck.Test.make ~name:"fragment sizes sum to total" ~count:200
    QCheck.(pair (int_range 1 4000) (int_range 0 20_000))
    (fun (frag_payload, total_size) ->
      let n = Packet.nfrags_of ~frag_payload total_size in
      let sum = ref 0 in
      for i = 0 to n - 1 do
        let b = Packet.frag_bytes ~frag_payload ~total_size i in
        if b < 0 || b > frag_payload then raise Exit;
        sum := !sum + b
      done;
      !sum = max 0 total_size)

(* ------------------------------------------------------------------ *)
(* Transactions *)

let test_simple_call () =
  let reply =
    with_pair (fun _ether a b ->
        serve_echo b;
        Endpoint.call a ~dst:2 ~service:echo_service ~size:5 (Echo "hello"))
  in
  match reply with
  | Ok (Echo s) -> Alcotest.(check string) "echoed" "hello!" s
  | Ok _ -> Alcotest.fail "wrong body"
  | Error Endpoint.Timeout -> Alcotest.fail "timed out"

let test_null_rtt_calibration () =
  (* A null transaction should land near the paper's 4.8 ms. *)
  let elapsed =
    with_pair (fun _ether a b ->
        serve_echo b;
        let t0 = Sim.now () in
        (match Endpoint.call a ~dst:2 ~service:echo_service ~size:32 (Echo "x") with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "timeout");
        Time.to_ms_f (Time.diff (Sim.now ()) t0))
  in
  check_bool
    (Printf.sprintf "rtt %.2fms within [3.5, 6.5]" elapsed)
    true
    (elapsed >= 3.5 && elapsed <= 6.5)

let test_concurrent_calls () =
  let n_ok =
    with_pair (fun _ether a b ->
        serve_echo b;
        let done_ = Semaphore.create 0 in
        let oks = ref 0 in
        for i = 1 to 10 do
          ignore
            (Sim.spawn "caller" (fun () ->
                 let body = Echo (string_of_int i) in
                 (match
                    Endpoint.call a ~dst:2 ~service:echo_service ~size:8 body
                  with
                 | Ok (Echo s) when s = string_of_int i ^ "!" -> incr oks
                 | Ok _ | Error _ -> ());
                 Semaphore.release done_))
        done;
        for _ = 1 to 10 do
          Semaphore.acquire done_
        done;
        !oks)
  in
  check_int "all ten distinct transactions succeed" 10 n_ok

let test_large_message_fragments () =
  let frames =
    with_pair (fun ether a b ->
        serve_echo b;
        let before = Net.Ethernet.frames_sent ether in
        (match Endpoint.call a ~dst:2 ~service:echo_service ~size:8192 (Blob 8192) with
        | Ok (Blob 8192) -> ()
        | Ok _ -> Alcotest.fail "wrong reply"
        | Error _ -> Alcotest.fail "timeout");
        (* let the asynchronous ack reach the wire *)
        Sim.sleep (Time.ms 5);
        Net.Ethernet.frames_sent ether - before)
  in
  (* 6 request fragments + 6 reply fragments + 1 ack *)
  check_int "fragment count on the wire" 13 frames

let test_loss_recovered () =
  let retrans =
    with_pair (fun ether a b ->
        serve_echo b;
        Net.Fault.set_drop_probability (Net.Ethernet.fault ether) 0.25;
        for _ = 1 to 5 do
          match Endpoint.call a ~dst:2 ~service:echo_service ~size:64 (Echo "x") with
          | Ok (Echo "x!") -> ()
          | Ok _ -> Alcotest.fail "corrupt reply"
          | Error _ -> Alcotest.fail "gave up despite retries"
        done;
        Net.Fault.set_drop_probability (Net.Ethernet.fault ether) 0.0;
        Endpoint.retransmissions a)
  in
  check_bool "some retransmissions happened" true (retrans > 0)

let test_timeout_when_unreachable () =
  let r =
    with_pair (fun ether a _b ->
        Net.Ethernet.detach ether 2;
        let t0 = Sim.now () in
        let r = Endpoint.call a ~dst:2 ~service:echo_service ~size:8 (Echo "x") in
        (r, Time.diff (Sim.now ()) t0))
  in
  (match fst r with
  | Error Endpoint.Timeout -> ()
  | Ok _ -> Alcotest.fail "should have timed out");
  (* 8 attempts with 50ms doubling backoff = 12.75 s of waiting *)
  check_bool "waited through full backoff" true (snd r >= Time.ms 12_000)

let test_unknown_service_times_out () =
  let r =
    with_pair (fun _ether a _b ->
        Endpoint.call a ~dst:2 ~service:99 ~size:8 (Echo "x"))
  in
  match r with
  | Error Endpoint.Timeout -> ()
  | Ok _ -> Alcotest.fail "no handler should mean no reply"

let test_at_most_once_under_loss () =
  (* Drop many frames; the handler must still run exactly once per
     transaction (duplicate requests are served from the reply
     cache). *)
  let executions, calls =
    with_pair (fun ether a b ->
        let count = ref 0 in
        Endpoint.serve b ~service:echo_service (fun ~src:_ body ->
            incr count;
            (body, 16));
        Net.Fault.set_drop_probability (Net.Ethernet.fault ether) 0.4;
        let ok = ref 0 in
        for _ = 1 to 8 do
          match Endpoint.call a ~dst:2 ~service:echo_service ~size:16 (Echo "x") with
          | Ok _ -> incr ok
          | Error _ -> ()
        done;
        Net.Fault.set_drop_probability (Net.Ethernet.fault ether) 0.0;
        (!count, !ok))
  in
  check_bool "every successful call executed exactly once" true
    (executions >= calls);
  (* executions can exceed calls only for transactions that timed out
     client-side after the handler ran; successful ones are not
     re-executed.  With the reply cache, executions never exceeds the
     number of distinct transactions. *)
  check_bool "handler never ran more than once per transaction" true
    (executions <= 8)

let test_slow_handler_single_execution () =
  (* Handler slower than the first retry interval: the client
     retransmits, the server must not start a second execution. *)
  let executions =
    with_pair (fun _ether a b ->
        let count = ref 0 in
        Endpoint.serve b ~service:echo_service (fun ~src:_ body ->
            incr count;
            Sim.sleep (Time.ms 300);
            (body, 8));
        (match Endpoint.call a ~dst:2 ~service:echo_service ~size:8 (Echo "x") with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "slow handler should still reply");
        !count)
  in
  check_int "one execution despite retransmits" 1 executions

let test_server_crash_times_out () =
  let r =
    Sim.exec (fun () ->
        let eng = Sim.engine () in
        let ether = Net.Ethernet.create eng () in
        let a = Endpoint.create ether ~addr:1 () in
        let b = Endpoint.create ether ~addr:2 ~group:2 () in
        Endpoint.serve b ~service:echo_service (fun ~src:_ body ->
            Sim.sleep (Time.ms 100);
            (body, 8));
        (* crash the server 10ms into the handler *)
        ignore
          (Sim.spawn "killer" (fun () ->
               Sim.sleep (Time.ms 10);
               Net.Ethernet.detach ether 2;
               Engine.kill_group eng 2));
        Endpoint.call a ~dst:2 ~service:echo_service ~size:8 (Echo "x"))
  in
  match r with
  | Error Endpoint.Timeout -> ()
  | Ok _ -> Alcotest.fail "crashed server must not reply"

let test_restart_single_rx_loop () =
  (* Regression: [restart] used to spawn a fresh rx loop while the old
     one kept running, so every restart added a duplicate reader
     racing for packets. *)
  let rx_loops, reply =
    with_pair (fun _ether a b ->
        serve_echo b;
        Endpoint.restart b;
        Endpoint.restart b;
        let rx_loops =
          Engine.procs (Sim.engine ())
          |> List.filter (fun (_, name) -> name = "ratp-rx-2")
          |> List.length
        in
        (rx_loops, Endpoint.call a ~dst:2 ~service:echo_service ~size:5 (Echo "hi")))
  in
  check_int "one rx loop after two restarts" 1 rx_loops;
  match reply with
  | Ok (Echo "hi!") -> ()
  | Ok _ | Error _ -> Alcotest.fail "call after restart failed"

let test_selective_fragment_loss () =
  (* A 4000-byte request fragments into three frames; the middle one
     is dropped on its first two transmissions.  The call must
     complete via retransmission, executing the handler once. *)
  let reply, retrans, executions, drops =
    with_pair (fun ether a b ->
        let count = ref 0 in
        Endpoint.serve b ~service:echo_service (fun ~src:_ body ->
            incr count;
            (body, 16));
        let dropped = ref 0 in
        Net.Fault.set_filter (Net.Ethernet.fault ether)
          (fun ~src:_ ~dst:_ frame ->
            match frame.Net.Frame.payload with
            | Packet.Ratp { Packet.kind = Request; frag = 1; _ }
              when !dropped < 2 ->
                incr dropped;
                false
            | _ -> true);
        let r =
          Endpoint.call a ~dst:2 ~service:echo_service ~size:4000 (Blob 16)
        in
        ( r,
          Endpoint.retransmissions a,
          !count,
          Net.Fault.drops (Net.Ethernet.fault ether) ))
  in
  (match reply with
  | Ok (Blob 16) -> ()
  | Ok _ | Error _ -> Alcotest.fail "fragment loss not recovered");
  check_int "two retransmissions" 2 retrans;
  check_int "handler executed once" 1 executions;
  check_int "two frames dropped" 2 drops

let test_busy_does_not_burn_attempts () =
  (* A slow handler makes the server answer retransmissions with
     Busy.  Busy probes must not count against the give-up budget:
     with max_attempts = 3 and a 20 ms initial retry the raw budget is
     20+40+80 = 140 ms, well short of the 200 ms handler, so this call
     only succeeds if Busy resets the attempt clock. *)
  let reply, retrans, txns =
    Sim.exec (fun () ->
        let eng = Sim.engine () in
        let ether = Net.Ethernet.create eng () in
        let config =
          {
            Endpoint.default_config with
            retry_initial = Time.ms 20;
            max_attempts = 3;
          }
        in
        let a = Endpoint.create ether ~addr:1 ~config () in
        let b = Endpoint.create ether ~addr:2 () in
        Endpoint.serve b ~service:echo_service (fun ~src:_ body ->
            Sim.sleep (Time.ms 200);
            (body, 8));
        let r = Endpoint.call a ~dst:2 ~service:echo_service ~size:8 (Echo "x") in
        (r, Endpoint.retransmissions a, Endpoint.transactions a))
  in
  (match reply with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "Busy probes must not burn attempts");
  check_bool "probes recorded as retransmissions" true (retrans >= 3);
  check_int "still a single transaction" 1 txns

(* ------------------------------------------------------------------ *)
(* Selective retransmission and adaptive RTO *)

(* The fast interconnect used by Experiments.Transport: a 64 K burst
   finishes in a few ms, well inside the 50 ms retry timer, so the
   retry path reacts to loss rather than to its own wire time. *)
let fast_ether_config =
  {
    Net.Ethernet.default_config with
    bandwidth_bps = 100_000_000;
    send_cost_per_frame = Time.us 80;
    recv_cost_per_frame = Time.us 80;
    cost_per_byte_ns = 5;
  }

let with_fast_pair ~config f =
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let ether = Net.Ethernet.create eng ~config:fast_ether_config () in
      let a = Endpoint.create ether ~addr:1 ~config () in
      let b = Endpoint.create ether ~addr:2 ~config () in
      f ether a b)

let transfer_retrans_bytes ~selective =
  let config =
    {
      Endpoint.default_config with
      selective_retransmit = selective;
      max_attempts = 12;
    }
  in
  with_fast_pair ~config (fun ether a b ->
      serve_echo b;
      Net.Fault.set_drop_probability (Net.Ethernet.fault ether) 0.05;
      (match Endpoint.call a ~dst:2 ~service:echo_service ~size:65536 (Blob 65536) with
      | Ok (Blob 65536) -> ()
      | Ok _ -> Alcotest.fail "corrupt echo"
      | Error _ -> Alcotest.fail "64K transfer gave up at 5% loss");
      Endpoint.retransmitted_bytes a + Endpoint.retransmitted_bytes b)

let test_selective_saves_bytes () =
  (* The PR's acceptance pin: at 5% loss a 64K transfer must resend
     at least 5x fewer payload bytes with selective retransmission
     than with the legacy full burst. *)
  let full = transfer_retrans_bytes ~selective:false in
  let selective = transfer_retrans_bytes ~selective:true in
  check_bool "full-burst path resends something" true (full > 0);
  check_bool
    (Printf.sprintf "selective %dB vs full %dB: >= 5x saving" selective full)
    true
    (selective * 5 <= full)

let kind_tag = function
  | Packet.Request -> "req"
  | Packet.Reply -> "rep"
  | Packet.Ack -> "ack"
  | Packet.Busy -> "busy"
  | Packet.Probe -> "probe"
  | Packet.Nack -> "nack"

(* Every RaTP frame on the wire, as "time src>dst kind frag/nfrags
   size", recorded through a pass-through fault filter. *)
let tap_frames ether log =
  (* runs at frame-delivery time, outside any process: ask the engine
     for the clock rather than the current process *)
  let eng = Net.Ethernet.engine ether in
  Net.Fault.set_filter (Net.Ethernet.fault ether) (fun ~src ~dst frame ->
      (match frame.Net.Frame.payload with
      | Packet.Ratp pkt ->
          Buffer.add_string log
            (Printf.sprintf "%d %d>%d %s %d/%d %d\n" (Engine.now eng) src dst
               (kind_tag pkt.Packet.kind) pkt.frag pkt.nfrags pkt.total_size)
      | _ -> ());
      true)

let lossfree_trace ~selective =
  let config =
    { Endpoint.default_config with selective_retransmit = selective }
  in
  with_pair ~config (fun ether a b ->
      serve_echo b;
      let log = Buffer.create 1024 in
      tap_frames ether log;
      List.iter
        (fun size ->
          match Endpoint.call a ~dst:2 ~service:echo_service ~size (Blob size) with
          | Ok _ -> ()
          | Error _ -> Alcotest.fail "loss-free call timed out")
        [ 8; 1400; 4000; 8192 ];
      Sim.sleep (Time.ms 20);
      Buffer.contents log)

let test_lossfree_trace_identical () =
  (* With no loss the selective machinery must be invisible: the
     packet stream is bit-identical whether the flag is on or off,
     which is what keeps the T1-T3 calibration untouched. *)
  let on = lossfree_trace ~selective:true in
  let off = lossfree_trace ~selective:false in
  check_bool "trace is non-trivial" true (String.length on > 100);
  Alcotest.(check string) "identical packet traces" off on

let test_busy_carries_no_payload () =
  (* Regression: Busy replies used to echo the full request body back
     at the client; they must ship an empty body and zero size. *)
  let busy_frames, bad_busy =
    with_pair (fun ether a b ->
        Endpoint.serve b ~service:echo_service (fun ~src:_ body ->
            Sim.sleep (Time.ms 200);
            (body, 8));
        let busy_frames = ref 0 and bad_busy = ref 0 in
        Net.Fault.set_filter (Net.Ethernet.fault ether)
          (fun ~src:_ ~dst:_ frame ->
            (match frame.Net.Frame.payload with
            | Packet.Ratp { Packet.kind = Busy; total_size; body; _ } ->
                incr busy_frames;
                if total_size <> 0 || body <> Packet.Empty then incr bad_busy
            | _ -> ());
            true);
        (match Endpoint.call a ~dst:2 ~service:echo_service ~size:4000 (Blob 4000) with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "slow handler should still reply");
        (!busy_frames, !bad_busy))
  in
  check_bool "server sent at least one Busy" true (busy_frames > 0);
  check_int "every Busy was empty" 0 bad_busy

let test_abandoned_burst_reaped () =
  (* An Accumulating entry for a burst the client stopped retrying
     must not pin the server table forever: it is reaped once it has
     been idle for server_cache_ttl. *)
  let during, after =
    let config =
      {
        Endpoint.default_config with
        max_attempts = 1;
        server_cache_ttl = Time.ms 200;
      }
    in
    with_fast_pair ~config (fun ether a b ->
        serve_echo b;
        (* the last request fragment never arrives, so the server
           accumulates forever and the client gives up after its
           single attempt *)
        Net.Fault.set_filter (Net.Ethernet.fault ether)
          (fun ~src:_ ~dst:_ frame ->
            match frame.Net.Frame.payload with
            | Packet.Ratp { Packet.kind = Request; frag = 2; _ } -> false
            | _ -> true);
        (match Endpoint.call a ~dst:2 ~service:echo_service ~size:4000 (Blob 4000) with
        | Error Endpoint.Timeout -> ()
        | Ok _ -> Alcotest.fail "truncated burst must time out");
        let during = Endpoint.server_cache_size b in
        Sim.sleep (Time.ms 700);
        (during, Endpoint.server_cache_size b))
  in
  check_int "partial burst held while fresh" 1 during;
  check_int "partial burst reaped after ttl" 0 after

let test_duplicate_reply_after_ack () =
  (* Every server-to-client frame is duplicated: the reply burst and
     its duplicates race the client's Ack.  Late duplicates must be
     ignored (the transaction is gone on both ends), not corrupt the
     next transaction or re-run the handler. *)
  let executions, oks =
    with_pair (fun ether a b ->
        let count = ref 0 in
        Endpoint.serve b ~service:echo_service (fun ~src:_ body ->
            incr count;
            (body, 4000));
        Net.Fault.set_link (Net.Ethernet.fault ether) 2 1
          { Net.Fault.pristine with dup = 1.0 };
        let oks = ref 0 in
        for _ = 1 to 3 do
          match Endpoint.call a ~dst:2 ~service:echo_service ~size:16 (Blob 16) with
          | Ok _ -> incr oks
          | Error _ -> ()
        done;
        Sim.sleep (Time.ms 50);
        (!count, !oks))
  in
  check_int "all calls succeed through duplication" 3 oks;
  check_int "handler ran once per transaction" 3 executions

let test_restart_keeps_sequence_space () =
  (* A restarted client must not reuse transaction ids: a reused tid
     would hit the server's duplicate-suppression cache and be served
     a stale reply instead of executing.  Acks are dropped so the
     server's cached replies stay alive across the restart. *)
  let executions, oks, cached_before, cached_after =
    with_pair (fun ether a b ->
        let count = ref 0 in
        Endpoint.serve b ~service:echo_service (fun ~src:_ _ ->
            incr count;
            (Echo (string_of_int !count), 8));
        Net.Fault.set_filter (Net.Ethernet.fault ether)
          (fun ~src:_ ~dst:_ frame ->
            match frame.Net.Frame.payload with
            | Packet.Ratp { Packet.kind = Ack; _ } -> false
            | _ -> true);
        let oks = ref 0 in
        (match Endpoint.call a ~dst:2 ~service:echo_service ~size:8 (Echo "x") with
        | Ok (Echo "1") -> incr oks
        | Ok _ | Error _ -> ());
        let cached_before = Endpoint.server_cache_size b in
        Endpoint.restart a;
        (match Endpoint.call a ~dst:2 ~service:echo_service ~size:8 (Echo "x") with
        | Ok (Echo "2") -> incr oks
        | Ok (Echo _) -> Alcotest.fail "stale cached reply: tid was reused"
        | Ok _ | Error _ -> ());
        (* a restarted *server* forgets its transaction cache *)
        Endpoint.restart b;
        (!count, !oks, cached_before, Endpoint.server_cache_size b))
  in
  check_int "both calls executed" 2 executions;
  check_int "both calls succeeded" 2 oks;
  check_bool "un-acked reply was cached" true (cached_before >= 1);
  check_int "server restart clears the cache" 0 cached_after

let test_selective_under_reorder_and_dup () =
  (* Selective retransmission must stay correct when the network
     reorders and duplicates as well as drops: every call completes,
     every handler runs exactly once. *)
  let executions, oks, nacks =
    let config =
      { Endpoint.default_config with max_attempts = 12 }
    in
    with_fast_pair ~config (fun ether a b ->
        let count = ref 0 in
        Endpoint.serve b ~service:echo_service (fun ~src:_ body ->
            incr count;
            (body, 8192));
        let profile =
          {
            Net.Fault.pristine with
            drop = 0.05;
            dup = 0.2;
            reorder = 0.3;
            reorder_by = Time.ms 5;
          }
        in
        Net.Fault.set_link_both (Net.Ethernet.fault ether) 1 2 profile;
        let oks = ref 0 in
        for _ = 1 to 10 do
          match
            Endpoint.call a ~dst:2 ~service:echo_service ~size:8192 (Blob 8192)
          with
          | Ok (Blob 8192) -> incr oks
          | Ok _ -> Alcotest.fail "corrupt reply under reorder+dup"
          | Error _ -> Alcotest.fail "call gave up under recoverable faults"
        done;
        (!count, !oks, Endpoint.nacks_sent b))
  in
  check_int "all calls completed" 10 oks;
  check_int "at-most-once held" 10 executions;
  check_bool "selective path was exercised" true (nacks > 0)

let test_adaptive_rto_and_karn () =
  let config =
    { Endpoint.default_config with adaptive_rto = true; max_attempts = 12 }
  in
  with_fast_pair ~config (fun ether a b ->
      serve_echo b;
      let rto_of e =
        match Endpoint.peer_stats e with
        | [ { Endpoint.peer = 2; rto_ms; _ } ] -> rto_ms
        | _ -> Alcotest.fail "expected stats for exactly peer 2"
      in
      for _ = 1 to 5 do
        match Endpoint.call a ~dst:2 ~service:echo_service ~size:64 (Echo "x") with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "loss-free call timed out"
      done;
      let settled = rto_of a in
      (* sub-ms RTT on the fast wire: the estimate must undercut the
         50 ms fixed timer but stay above the 2 ms clamp *)
      check_bool
        (Printf.sprintf "adapted rto %.2fms below fixed 50ms" settled)
        true
        (settled < 50.0 && settled >= 2.0);
      (* Karn's rule: a transaction that retransmitted contributes no
         sample, so the estimate is unchanged afterwards *)
      let dropped = ref false in
      Net.Fault.set_filter (Net.Ethernet.fault ether)
        (fun ~src:_ ~dst:_ frame ->
          match frame.Net.Frame.payload with
          | Packet.Ratp { Packet.kind = Request; _ } when not !dropped ->
              dropped := true;
              false
          | _ -> true);
      (match Endpoint.call a ~dst:2 ~service:echo_service ~size:64 (Echo "y") with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "retried call timed out");
      check_bool "first transmission was dropped" true !dropped;
      Alcotest.(check (float 0.0))
        "Karn: no sample from a retransmitted transaction" settled (rto_of a);
      check_bool "the retry was recorded" true (Endpoint.retransmissions a > 0))

(* ------------------------------------------------------------------ *)
(* Comparators: the paper's 8K transfer comparison *)

let measure f =
  let t0 = Sim.now () in
  f ();
  Time.to_ms_f (Time.diff (Sim.now ()) t0)

let test_transfer_comparison () =
  let ratp_ms, ftp_ms, nfs_ms =
    Sim.exec (fun () ->
        let eng = Sim.engine () in
        let ether = Net.Ethernet.create eng () in
        let a = Endpoint.create ether ~addr:1 () in
        let b = Endpoint.create ether ~addr:2 () in
        Endpoint.serve b ~service:echo_service (fun ~src:_ _ -> (Blob 8192, 8192));
        Ftp_sim.start_server ether ~addr:3 ();
        let ftp = Ftp_sim.client ether ~addr:4 () in
        Nfs_sim.start_server ether ~addr:5 ();
        let nfs = Nfs_sim.client ether ~addr:6 () in
        let ratp_ms =
          measure (fun () ->
              match
                Endpoint.call a ~dst:2 ~service:echo_service ~size:32 (Echo "get")
              with
              | Ok (Blob 8192) -> ()
              | Ok _ | Error _ -> Alcotest.fail "ratp transfer failed")
        in
        let ftp_ms = measure (fun () -> Ftp_sim.fetch ftp ~server:3 ~bytes:8192) in
        let nfs_ms = measure (fun () -> Nfs_sim.fetch nfs ~server:5 ~bytes:8192) in
        (ratp_ms, ftp_ms, nfs_ms))
  in
  (* Paper: RaTP 11.9ms, NFS 50ms, FTP 70ms.  Check the ordering and
     rough factors rather than exact values. *)
  check_bool
    (Printf.sprintf "ratp (%.1f) < nfs (%.1f)" ratp_ms nfs_ms)
    true (ratp_ms < nfs_ms);
  check_bool
    (Printf.sprintf "nfs (%.1f) < ftp (%.1f)" nfs_ms ftp_ms)
    true (nfs_ms < ftp_ms);
  check_bool
    (Printf.sprintf "ftp/ratp factor %.1f in [3, 12]" (ftp_ms /. ratp_ms))
    true
    (ftp_ms /. ratp_ms >= 3.0 && ftp_ms /. ratp_ms <= 12.0);
  check_bool
    (Printf.sprintf "ratp 8k %.1fms within [8, 16]" ratp_ms)
    true
    (ratp_ms >= 8.0 && ratp_ms <= 16.0)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "ratp"
    [
      ( "packet",
        [ Alcotest.test_case "nfrags" `Quick test_nfrags ] );
      qsuite "packet-props" [ prop_frag_sizes_sum ];
      ( "transaction",
        [
          Alcotest.test_case "simple call" `Quick test_simple_call;
          Alcotest.test_case "null rtt calibration" `Quick
            test_null_rtt_calibration;
          Alcotest.test_case "concurrent calls" `Quick test_concurrent_calls;
          Alcotest.test_case "large message fragments" `Quick
            test_large_message_fragments;
        ] );
      ( "reliability",
        [
          Alcotest.test_case "loss recovered" `Quick test_loss_recovered;
          Alcotest.test_case "timeout when unreachable" `Quick
            test_timeout_when_unreachable;
          Alcotest.test_case "unknown service" `Quick
            test_unknown_service_times_out;
          Alcotest.test_case "at-most-once under loss" `Quick
            test_at_most_once_under_loss;
          Alcotest.test_case "slow handler single execution" `Quick
            test_slow_handler_single_execution;
          Alcotest.test_case "server crash times out" `Quick
            test_server_crash_times_out;
          Alcotest.test_case "restart keeps a single rx loop" `Quick
            test_restart_single_rx_loop;
          Alcotest.test_case "selective fragment loss" `Quick
            test_selective_fragment_loss;
          Alcotest.test_case "busy does not burn attempts" `Quick
            test_busy_does_not_burn_attempts;
        ] );
      ( "selective-retransmit",
        [
          Alcotest.test_case "64K at 5% loss: 5x fewer bytes resent" `Quick
            test_selective_saves_bytes;
          Alcotest.test_case "loss-free trace identical on/off" `Quick
            test_lossfree_trace_identical;
          Alcotest.test_case "busy carries no payload" `Quick
            test_busy_carries_no_payload;
          Alcotest.test_case "abandoned burst reaped" `Quick
            test_abandoned_burst_reaped;
          Alcotest.test_case "duplicate reply after ack" `Quick
            test_duplicate_reply_after_ack;
          Alcotest.test_case "restart keeps sequence space" `Quick
            test_restart_keeps_sequence_space;
          Alcotest.test_case "selective under reorder+dup" `Quick
            test_selective_under_reorder_and_dup;
          Alcotest.test_case "adaptive rto and karn's rule" `Quick
            test_adaptive_rto_and_karn;
        ] );
      ( "comparators",
        [
          Alcotest.test_case "ratp vs ftp vs nfs 8k transfer" `Quick
            test_transfer_comparison;
        ] );
    ]
