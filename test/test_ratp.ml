(* Tests for the RaTP transport: transactions, fragmentation,
   retransmission, duplicate suppression, and the FTP/NFS
   comparators. *)

open Sim
open Ratp

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let echo_service = 7

type Packet.body += Echo of string | Blob of int

let with_pair ?(config = Endpoint.default_config) f =
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let ether = Net.Ethernet.create eng () in
      let a = Endpoint.create ether ~addr:1 () in
      let b = Endpoint.create ether ~addr:2 ~config () in
      f ether a b)

let serve_echo ?(delay = 0) b =
  Endpoint.serve b ~service:echo_service (fun ~src:_ body ->
      if delay > 0 then Sim.sleep delay;
      match body with
      | Echo s -> (Echo (s ^ "!"), String.length s + 1)
      | Blob n -> (Blob n, n)
      | _ -> (Echo "?", 1))

(* ------------------------------------------------------------------ *)
(* Packet math *)

let test_nfrags () =
  check_int "zero" 1 (Packet.nfrags_of ~frag_payload:1400 0);
  check_int "one byte" 1 (Packet.nfrags_of ~frag_payload:1400 1);
  check_int "exact" 1 (Packet.nfrags_of ~frag_payload:1400 1400);
  check_int "one more" 2 (Packet.nfrags_of ~frag_payload:1400 1401);
  check_int "8k" 6 (Packet.nfrags_of ~frag_payload:1400 8192)

let prop_frag_sizes_sum =
  QCheck.Test.make ~name:"fragment sizes sum to total" ~count:200
    QCheck.(pair (int_range 1 4000) (int_range 0 20_000))
    (fun (frag_payload, total_size) ->
      let n = Packet.nfrags_of ~frag_payload total_size in
      let sum = ref 0 in
      for i = 0 to n - 1 do
        let b = Packet.frag_bytes ~frag_payload ~total_size i in
        if b < 0 || b > frag_payload then raise Exit;
        sum := !sum + b
      done;
      !sum = max 0 total_size)

(* ------------------------------------------------------------------ *)
(* Transactions *)

let test_simple_call () =
  let reply =
    with_pair (fun _ether a b ->
        serve_echo b;
        Endpoint.call a ~dst:2 ~service:echo_service ~size:5 (Echo "hello"))
  in
  match reply with
  | Ok (Echo s) -> Alcotest.(check string) "echoed" "hello!" s
  | Ok _ -> Alcotest.fail "wrong body"
  | Error Endpoint.Timeout -> Alcotest.fail "timed out"

let test_null_rtt_calibration () =
  (* A null transaction should land near the paper's 4.8 ms. *)
  let elapsed =
    with_pair (fun _ether a b ->
        serve_echo b;
        let t0 = Sim.now () in
        (match Endpoint.call a ~dst:2 ~service:echo_service ~size:32 (Echo "x") with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "timeout");
        Time.to_ms_f (Time.diff (Sim.now ()) t0))
  in
  check_bool
    (Printf.sprintf "rtt %.2fms within [3.5, 6.5]" elapsed)
    true
    (elapsed >= 3.5 && elapsed <= 6.5)

let test_concurrent_calls () =
  let n_ok =
    with_pair (fun _ether a b ->
        serve_echo b;
        let done_ = Semaphore.create 0 in
        let oks = ref 0 in
        for i = 1 to 10 do
          ignore
            (Sim.spawn "caller" (fun () ->
                 let body = Echo (string_of_int i) in
                 (match
                    Endpoint.call a ~dst:2 ~service:echo_service ~size:8 body
                  with
                 | Ok (Echo s) when s = string_of_int i ^ "!" -> incr oks
                 | Ok _ | Error _ -> ());
                 Semaphore.release done_))
        done;
        for _ = 1 to 10 do
          Semaphore.acquire done_
        done;
        !oks)
  in
  check_int "all ten distinct transactions succeed" 10 n_ok

let test_large_message_fragments () =
  let frames =
    with_pair (fun ether a b ->
        serve_echo b;
        let before = Net.Ethernet.frames_sent ether in
        (match Endpoint.call a ~dst:2 ~service:echo_service ~size:8192 (Blob 8192) with
        | Ok (Blob 8192) -> ()
        | Ok _ -> Alcotest.fail "wrong reply"
        | Error _ -> Alcotest.fail "timeout");
        (* let the asynchronous ack reach the wire *)
        Sim.sleep (Time.ms 5);
        Net.Ethernet.frames_sent ether - before)
  in
  (* 6 request fragments + 6 reply fragments + 1 ack *)
  check_int "fragment count on the wire" 13 frames

let test_loss_recovered () =
  let retrans =
    with_pair (fun ether a b ->
        serve_echo b;
        Net.Fault.set_drop_probability (Net.Ethernet.fault ether) 0.25;
        for _ = 1 to 5 do
          match Endpoint.call a ~dst:2 ~service:echo_service ~size:64 (Echo "x") with
          | Ok (Echo "x!") -> ()
          | Ok _ -> Alcotest.fail "corrupt reply"
          | Error _ -> Alcotest.fail "gave up despite retries"
        done;
        Net.Fault.set_drop_probability (Net.Ethernet.fault ether) 0.0;
        Endpoint.retransmissions a)
  in
  check_bool "some retransmissions happened" true (retrans > 0)

let test_timeout_when_unreachable () =
  let r =
    with_pair (fun ether a _b ->
        Net.Ethernet.detach ether 2;
        let t0 = Sim.now () in
        let r = Endpoint.call a ~dst:2 ~service:echo_service ~size:8 (Echo "x") in
        (r, Time.diff (Sim.now ()) t0))
  in
  (match fst r with
  | Error Endpoint.Timeout -> ()
  | Ok _ -> Alcotest.fail "should have timed out");
  (* 8 attempts with 50ms doubling backoff = 12.75 s of waiting *)
  check_bool "waited through full backoff" true (snd r >= Time.ms 12_000)

let test_unknown_service_times_out () =
  let r =
    with_pair (fun _ether a _b ->
        Endpoint.call a ~dst:2 ~service:99 ~size:8 (Echo "x"))
  in
  match r with
  | Error Endpoint.Timeout -> ()
  | Ok _ -> Alcotest.fail "no handler should mean no reply"

let test_at_most_once_under_loss () =
  (* Drop many frames; the handler must still run exactly once per
     transaction (duplicate requests are served from the reply
     cache). *)
  let executions, calls =
    with_pair (fun ether a b ->
        let count = ref 0 in
        Endpoint.serve b ~service:echo_service (fun ~src:_ body ->
            incr count;
            (body, 16));
        Net.Fault.set_drop_probability (Net.Ethernet.fault ether) 0.4;
        let ok = ref 0 in
        for _ = 1 to 8 do
          match Endpoint.call a ~dst:2 ~service:echo_service ~size:16 (Echo "x") with
          | Ok _ -> incr ok
          | Error _ -> ()
        done;
        Net.Fault.set_drop_probability (Net.Ethernet.fault ether) 0.0;
        (!count, !ok))
  in
  check_bool "every successful call executed exactly once" true
    (executions >= calls);
  (* executions can exceed calls only for transactions that timed out
     client-side after the handler ran; successful ones are not
     re-executed.  With the reply cache, executions never exceeds the
     number of distinct transactions. *)
  check_bool "handler never ran more than once per transaction" true
    (executions <= 8)

let test_slow_handler_single_execution () =
  (* Handler slower than the first retry interval: the client
     retransmits, the server must not start a second execution. *)
  let executions =
    with_pair (fun _ether a b ->
        let count = ref 0 in
        Endpoint.serve b ~service:echo_service (fun ~src:_ body ->
            incr count;
            Sim.sleep (Time.ms 300);
            (body, 8));
        (match Endpoint.call a ~dst:2 ~service:echo_service ~size:8 (Echo "x") with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "slow handler should still reply");
        !count)
  in
  check_int "one execution despite retransmits" 1 executions

let test_server_crash_times_out () =
  let r =
    Sim.exec (fun () ->
        let eng = Sim.engine () in
        let ether = Net.Ethernet.create eng () in
        let a = Endpoint.create ether ~addr:1 () in
        let b = Endpoint.create ether ~addr:2 ~group:2 () in
        Endpoint.serve b ~service:echo_service (fun ~src:_ body ->
            Sim.sleep (Time.ms 100);
            (body, 8));
        (* crash the server 10ms into the handler *)
        ignore
          (Sim.spawn "killer" (fun () ->
               Sim.sleep (Time.ms 10);
               Net.Ethernet.detach ether 2;
               Engine.kill_group eng 2));
        Endpoint.call a ~dst:2 ~service:echo_service ~size:8 (Echo "x"))
  in
  match r with
  | Error Endpoint.Timeout -> ()
  | Ok _ -> Alcotest.fail "crashed server must not reply"

let test_restart_single_rx_loop () =
  (* Regression: [restart] used to spawn a fresh rx loop while the old
     one kept running, so every restart added a duplicate reader
     racing for packets. *)
  let rx_loops, reply =
    with_pair (fun _ether a b ->
        serve_echo b;
        Endpoint.restart b;
        Endpoint.restart b;
        let rx_loops =
          Engine.procs (Sim.engine ())
          |> List.filter (fun (_, name) -> name = "ratp-rx-2")
          |> List.length
        in
        (rx_loops, Endpoint.call a ~dst:2 ~service:echo_service ~size:5 (Echo "hi")))
  in
  check_int "one rx loop after two restarts" 1 rx_loops;
  match reply with
  | Ok (Echo "hi!") -> ()
  | Ok _ | Error _ -> Alcotest.fail "call after restart failed"

let test_selective_fragment_loss () =
  (* A 4000-byte request fragments into three frames; the middle one
     is dropped on its first two transmissions.  The call must
     complete via retransmission, executing the handler once. *)
  let reply, retrans, executions, drops =
    with_pair (fun ether a b ->
        let count = ref 0 in
        Endpoint.serve b ~service:echo_service (fun ~src:_ body ->
            incr count;
            (body, 16));
        let dropped = ref 0 in
        Net.Fault.set_filter (Net.Ethernet.fault ether)
          (fun ~src:_ ~dst:_ frame ->
            match frame.Net.Frame.payload with
            | Packet.Ratp { Packet.kind = Request; frag = 1; _ }
              when !dropped < 2 ->
                incr dropped;
                false
            | _ -> true);
        let r =
          Endpoint.call a ~dst:2 ~service:echo_service ~size:4000 (Blob 16)
        in
        ( r,
          Endpoint.retransmissions a,
          !count,
          Net.Fault.drops (Net.Ethernet.fault ether) ))
  in
  (match reply with
  | Ok (Blob 16) -> ()
  | Ok _ | Error _ -> Alcotest.fail "fragment loss not recovered");
  check_int "two retransmissions" 2 retrans;
  check_int "handler executed once" 1 executions;
  check_int "two frames dropped" 2 drops

let test_busy_does_not_burn_attempts () =
  (* A slow handler makes the server answer retransmissions with
     Busy.  Busy probes must not count against the give-up budget:
     with max_attempts = 3 and a 20 ms initial retry the raw budget is
     20+40+80 = 140 ms, well short of the 200 ms handler, so this call
     only succeeds if Busy resets the attempt clock. *)
  let reply, retrans, txns =
    Sim.exec (fun () ->
        let eng = Sim.engine () in
        let ether = Net.Ethernet.create eng () in
        let config =
          {
            Endpoint.default_config with
            retry_initial = Time.ms 20;
            max_attempts = 3;
          }
        in
        let a = Endpoint.create ether ~addr:1 ~config () in
        let b = Endpoint.create ether ~addr:2 () in
        Endpoint.serve b ~service:echo_service (fun ~src:_ body ->
            Sim.sleep (Time.ms 200);
            (body, 8));
        let r = Endpoint.call a ~dst:2 ~service:echo_service ~size:8 (Echo "x") in
        (r, Endpoint.retransmissions a, Endpoint.transactions a))
  in
  (match reply with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "Busy probes must not burn attempts");
  check_bool "probes recorded as retransmissions" true (retrans >= 3);
  check_int "still a single transaction" 1 txns

(* ------------------------------------------------------------------ *)
(* Comparators: the paper's 8K transfer comparison *)

let measure f =
  let t0 = Sim.now () in
  f ();
  Time.to_ms_f (Time.diff (Sim.now ()) t0)

let test_transfer_comparison () =
  let ratp_ms, ftp_ms, nfs_ms =
    Sim.exec (fun () ->
        let eng = Sim.engine () in
        let ether = Net.Ethernet.create eng () in
        let a = Endpoint.create ether ~addr:1 () in
        let b = Endpoint.create ether ~addr:2 () in
        Endpoint.serve b ~service:echo_service (fun ~src:_ _ -> (Blob 8192, 8192));
        Ftp_sim.start_server ether ~addr:3 ();
        let ftp = Ftp_sim.client ether ~addr:4 () in
        Nfs_sim.start_server ether ~addr:5 ();
        let nfs = Nfs_sim.client ether ~addr:6 () in
        let ratp_ms =
          measure (fun () ->
              match
                Endpoint.call a ~dst:2 ~service:echo_service ~size:32 (Echo "get")
              with
              | Ok (Blob 8192) -> ()
              | Ok _ | Error _ -> Alcotest.fail "ratp transfer failed")
        in
        let ftp_ms = measure (fun () -> Ftp_sim.fetch ftp ~server:3 ~bytes:8192) in
        let nfs_ms = measure (fun () -> Nfs_sim.fetch nfs ~server:5 ~bytes:8192) in
        (ratp_ms, ftp_ms, nfs_ms))
  in
  (* Paper: RaTP 11.9ms, NFS 50ms, FTP 70ms.  Check the ordering and
     rough factors rather than exact values. *)
  check_bool
    (Printf.sprintf "ratp (%.1f) < nfs (%.1f)" ratp_ms nfs_ms)
    true (ratp_ms < nfs_ms);
  check_bool
    (Printf.sprintf "nfs (%.1f) < ftp (%.1f)" nfs_ms ftp_ms)
    true (nfs_ms < ftp_ms);
  check_bool
    (Printf.sprintf "ftp/ratp factor %.1f in [3, 12]" (ftp_ms /. ratp_ms))
    true
    (ftp_ms /. ratp_ms >= 3.0 && ftp_ms /. ratp_ms <= 12.0);
  check_bool
    (Printf.sprintf "ratp 8k %.1fms within [8, 16]" ratp_ms)
    true
    (ratp_ms >= 8.0 && ratp_ms <= 16.0)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "ratp"
    [
      ( "packet",
        [ Alcotest.test_case "nfrags" `Quick test_nfrags ] );
      qsuite "packet-props" [ prop_frag_sizes_sum ];
      ( "transaction",
        [
          Alcotest.test_case "simple call" `Quick test_simple_call;
          Alcotest.test_case "null rtt calibration" `Quick
            test_null_rtt_calibration;
          Alcotest.test_case "concurrent calls" `Quick test_concurrent_calls;
          Alcotest.test_case "large message fragments" `Quick
            test_large_message_fragments;
        ] );
      ( "reliability",
        [
          Alcotest.test_case "loss recovered" `Quick test_loss_recovered;
          Alcotest.test_case "timeout when unreachable" `Quick
            test_timeout_when_unreachable;
          Alcotest.test_case "unknown service" `Quick
            test_unknown_service_times_out;
          Alcotest.test_case "at-most-once under loss" `Quick
            test_at_most_once_under_loss;
          Alcotest.test_case "slow handler single execution" `Quick
            test_slow_handler_single_execution;
          Alcotest.test_case "server crash times out" `Quick
            test_server_crash_times_out;
          Alcotest.test_case "restart keeps a single rx loop" `Quick
            test_restart_single_rx_loop;
          Alcotest.test_case "selective fragment loss" `Quick
            test_selective_fragment_loss;
          Alcotest.test_case "busy does not burn attempts" `Quick
            test_busy_does_not_burn_attempts;
        ] );
      ( "comparators",
        [
          Alcotest.test_case "ratp vs ftp vs nfs 8k transfer" `Quick
            test_transfer_comparison;
        ] );
    ]
