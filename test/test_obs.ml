(* The observability layer: span trees are deterministic, tracing
   never perturbs the simulation it observes, registries snapshot to
   valid JSON, and the exports validate themselves. *)

open Obs

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Tracer mechanics *)

let test_span_nesting () =
  let tr = Tracer.create () in
  Tracer.install tr;
  Fun.protect ~finally:Tracer.uninstall (fun () ->
      Sim.exec (fun () ->
          Tracer.with_span "outer" (fun () ->
              Sim.sleep (Sim.Time.ms 2);
              Tracer.with_span "inner" (fun () -> Sim.sleep (Sim.Time.ms 1)));
          Tracer.with_span "next" (fun () -> ())));
  check_int "three spans" 3 (Tracer.span_count tr);
  let outer = Tracer.get tr 0 and inner = Tracer.get tr 1 in
  let next = Tracer.get tr 2 in
  check_str "outer name" "outer" outer.Tracer.name;
  check_int "outer is a root" (-1) outer.Tracer.parent;
  check_int "inner's parent is outer" outer.Tracer.id inner.Tracer.parent;
  check_int "same trace" outer.Tracer.trace inner.Tracer.trace;
  Alcotest.(check bool)
    "sibling root starts a fresh trace" true
    (next.Tracer.trace <> outer.Tracer.trace);
  Alcotest.(check (float 1e-9))
    "outer duration" 3.0 (Tracer.duration_ms outer);
  Alcotest.(check (float 1e-9)) "inner duration" 1.0 (Tracer.duration_ms inner)

let test_disabled_tracing_is_a_noop () =
  (* no tracer installed: with_span must run the thunk and record
     nothing anywhere *)
  Alcotest.(check bool) "off" false (Tracer.on ());
  let r = Sim.exec (fun () -> Tracer.with_span "ghost" (fun () -> 41 + 1)) in
  check_int "thunk ran" 42 r

let test_span_survives_exception () =
  let tr = Tracer.create () in
  Tracer.install tr;
  Fun.protect ~finally:Tracer.uninstall (fun () ->
      Sim.exec (fun () ->
          (try
             Tracer.with_span "outer" (fun () ->
                 Tracer.with_span "boom" (fun () -> failwith "x"))
           with Failure _ -> ());
          (* the pid binding must have been restored: a new root *)
          Tracer.with_span "after" (fun () -> ())));
  check_int "spans all finished" 3 (Tracer.span_count tr);
  let after = Tracer.get tr 2 in
  check_int "binding restored, new root" (-1) after.Tracer.parent

(* ------------------------------------------------------------------ *)
(* Stage classification and export validation *)

let test_stage_classification () =
  let is name st = Export.stage_of name = st in
  Alcotest.(check bool) "rpc" true (is "rpc" Export.Transport);
  Alcotest.(check bool) "dsm.fetch" true (is "dsm.fetch" Export.Fault);
  Alcotest.(check bool) "serve.get" true (is "serve.get" Export.Fault);
  Alcotest.(check bool) "2pc.commit" true (is "2pc.commit" Export.Commit);
  Alcotest.(check bool) "serve.prepare" true (is "serve.prepare" Export.Commit);
  Alcotest.(check bool) "txn.lock" true (is "txn.lock" Export.Commit);
  Alcotest.(check bool) "request" true (is "request" Export.Other);
  Alcotest.(check bool) "invoke" true (is "invoke" Export.Other)

let test_json_parser () =
  (match Export.parse {|{"a": [1, 2.5, "s\n", true, null], "b": {}}|} with
  | Ok (Export.Obj fields) ->
      check_int "two members" 2 (List.length fields);
      (match List.assoc "a" fields with
      | Export.Arr items -> check_int "array arity" 5 (List.length items)
      | _ -> Alcotest.fail "a is not an array")
  | Ok _ -> Alcotest.fail "not an object"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Export.parse "{\"a\": }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted malformed JSON");
  (match Export.parse "{} trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted trailing garbage")

let test_validate_chrome_rejects () =
  (match Export.validate_chrome {|{"traceEvents": []}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted an empty trace");
  match Export.validate_chrome {|{"no": "events"}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a trace without traceEvents"

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry_snapshot () =
  let c = Sim.Stats.counter "hits" in
  Sim.Stats.incr_by c 7;
  let h = Sim.Stats.hist "lat" in
  List.iter (Sim.Stats.hadd h) [ 1.0; 2.0; 3.0 ];
  let r = Registry.create "node-0" in
  Registry.register r "cache/hits" (Registry.Counter c);
  Registry.register r "cache/lat" (Registry.Hist h);
  let json = Registry.snapshot_json [ r ] in
  (match Export.parse json with
  | Ok (Export.Arr [ Export.Obj fields ]) ->
      (match List.assoc "node" fields with
      | Export.Str s -> check_str "label" "node-0" s
      | _ -> Alcotest.fail "node is not a string")
  | Ok _ -> Alcotest.fail "snapshot is not a one-object array"
  | Error e -> Alcotest.failf "snapshot does not parse: %s" e);
  Alcotest.(check (list (pair string int)))
    "totals roll counters up"
    [ ("cache/hits", 7) ]
    (Registry.totals [ r ])

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_dsm_mode_metrics_exported () =
  (* the relaxed-consistency DSM counters surface in the per-node
     registries (and hence obs_metrics.json): a one-scope release
     workload and a two-client commutative merge leave exact
     dsm/mode/* totals behind *)
  let totals, json =
    Sim.exec ~seed:5 (fun () ->
        let eng = Sim.engine () in
        let sys = Clouds.boot eng ~compute:2 ~data:1 ~workstations:0 () in
        let cl = sys.Clouds.cluster in
        let server = cl.Clouds.Cluster.servers.(0) in
        let data_node = cl.Clouds.Cluster.data_nodes.(0) in
        let mk mode =
          let seg = Ra.Sysname.fresh data_node.Ra.Node.names in
          Store.Segment_store.create_segment
            (Dsm.Dsm_server.store server)
            seg ~size:Ra.Page.size;
          Clouds.Cluster.add_segment cl seg data_node.Ra.Node.id;
          Clouds.Cluster.set_consistency cl seg mode;
          seg
        in
        let vsp seg =
          let vs = Ra.Virtual_space.create () in
          Ra.Virtual_space.map vs ~base:0 ~len:Ra.Page.size
            ~prot:Ra.Virtual_space.Read_write seg;
          vs
        in
        let put n vs v =
          let b = Bytes.create 8 in
          Bytes.set_int64_le b 0 (Int64.of_int v);
          Ra.Mmu.write n.Ra.Node.mmu vs ~addr:0 b
        in
        let get n vs =
          Bytes.get_int64_le (Ra.Mmu.read n.Ra.Node.mmu vs ~addr:0 ~len:8) 0
        in
        let n0 = cl.Clouds.Cluster.compute_nodes.(0)
        and n1 = cl.Clouds.Cluster.compute_nodes.(1) in
        let c0 = cl.Clouds.Cluster.clients.(0)
        and c1 = cl.Clouds.Cluster.clients.(1) in
        (* release: a reader holds a copy, so the writer's fault defers
           one per-copy invalidation and the flush sends one burst *)
        let rel = mk Ra.Partition.Release in
        let rvs = vsp rel in
        ignore (get n1 rvs);
        put n0 rvs 41;
        Dsm.Dsm_client.flush_segment c0 rel;
        (* commutative: both clients write blind, each flush ships one
           merge delta that the home applies *)
        let com = mk (Ra.Partition.Commutative Ra.Partition.Add) in
        let cvs = vsp com in
        put n0 cvs 1;
        put n1 cvs 2;
        Dsm.Dsm_client.flush_segment c0 com;
        Dsm.Dsm_client.flush_segment c1 com;
        let regs = Clouds.Telemetry.registries ~om:sys.Clouds.om cl in
        (Registry.totals regs, Registry.snapshot_json regs))
  in
  let total path =
    match List.assoc_opt path totals with Some n -> n | None -> -1
  in
  check_int "one deferred per-copy invalidation" 1
    (total "dsm/mode/deferred_invals");
  check_int "one release flush burst" 1 (total "dsm/mode/release_flush_bursts");
  check_int "both merge deltas applied at the home" 2
    (total "dsm/mode/merges_applied");
  check_int "one merge rpc per client flush" 2 (total "dsm/mode/merge_rpcs");
  Alcotest.(check bool)
    "copy_releases counter registered" true
    (List.mem_assoc "dsm/mode/copy_releases" totals);
  (* the flush-batch histogram has no integer total but must appear in
     the JSON snapshot, which itself must parse *)
  Alcotest.(check bool)
    "flush-batch histogram exported" true
    (contains json "dsm/mode/release_flush_batch");
  match Export.parse json with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "registry snapshot does not parse: %s" e

(* ------------------------------------------------------------------ *)
(* End-to-end: traced load cells *)

let smoke = List.hd Experiments.Load.smoke_cells

let test_tracing_does_not_perturb () =
  (* acceptance: with tracing off the metrics are what they always
     were — so a traced run must report the exact same simulated
     numbers as an untraced run of the same cell and seed *)
  let bare = Experiments.Load.run_cell ~seed:7 smoke in
  let tr = Tracer.create () in
  Tracer.install tr;
  let traced =
    Fun.protect ~finally:Tracer.uninstall (fun () ->
        Experiments.Load.run_cell ~seed:7 smoke)
  in
  let open Experiments.Load in
  check_int "completed" bare.completed traced.completed;
  check_int "misses" bare.misses traced.misses;
  check_int "retries" bare.retries traced.retries;
  Alcotest.(check (float 0.0)) "p50 identical" bare.p50_ms traced.p50_ms;
  Alcotest.(check (float 0.0)) "p95 identical" bare.p95_ms traced.p95_ms;
  Alcotest.(check (float 0.0)) "p99 identical" bare.p99_ms traced.p99_ms;
  Alcotest.(check (float 0.0)) "mean identical" bare.mean_ms traced.mean_ms;
  Alcotest.(check (float 0.0)) "sim_ms identical" bare.sim_ms traced.sim_ms;
  Alcotest.(check bool) "spans were recorded" true (Tracer.span_count tr > 0)

let test_trace_determinism_mid_cell () =
  (* same seed, same cell => byte-identical span tree (ids, parents,
     names, timestamps) and registry snapshot across two runs *)
  let r1 = Experiments.Trace_run.run () in
  let r2 = Experiments.Trace_run.run () in
  check_int "span count" (Tracer.span_count r1.Experiments.Trace_run.tracer)
    (Tracer.span_count r2.Experiments.Trace_run.tracer);
  check_str "chrome export identical" r1.Experiments.Trace_run.chrome
    r2.Experiments.Trace_run.chrome;
  check_str "registry snapshot identical"
    r1.Experiments.Trace_run.registries_json
    r2.Experiments.Trace_run.registries_json;
  check_str "critical-path report identical" r1.Experiments.Trace_run.report
    r2.Experiments.Trace_run.report;
  (* and the export round-trips through our own validator *)
  match Export.validate_chrome r1.Experiments.Trace_run.chrome with
  | Ok events ->
      check_int "one event per span" (Tracer.span_count r1.Experiments.Trace_run.tracer) events
  | Error e -> Alcotest.failf "chrome export invalid: %s" e

let test_summary_decomposes_p99 () =
  let r = Experiments.Trace_run.run ~cell:smoke () in
  let s = r.Experiments.Trace_run.summary in
  check_int "every request became a trace" smoke.Experiments.Load.invocations
    s.Export.traces;
  match s.Export.p99 with
  | None -> Alcotest.fail "no p99 trace"
  | Some t ->
      (* the stage breakdown is a cost decomposition, not a
         wall-clock partition: concurrent fan-out children can sum
         past the root duration, but every stage is non-negative and
         the decomposition is non-trivial *)
      let st = t.Export.st in
      Alcotest.(check bool)
        "stages non-negative" true
        (st.Export.transport_ms >= 0.0
        && st.Export.fault_ms >= 0.0
        && st.Export.commit_ms >= 0.0
        && st.Export.other_ms >= 0.0);
      let parts =
        st.Export.transport_ms +. st.Export.fault_ms +. st.Export.commit_ms
        +. st.Export.other_ms
      in
      Alcotest.(check bool)
        "decomposition is non-trivial" true
        (parts > 0.0 && t.Export.total_ms > 0.0)

let () =
  Alcotest.run "obs"
    [
      ( "tracer",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_disabled_tracing_is_a_noop;
          Alcotest.test_case "exception safety" `Quick
            test_span_survives_exception;
        ] );
      ( "export",
        [
          Alcotest.test_case "stage classification" `Quick
            test_stage_classification;
          Alcotest.test_case "json parser" `Quick test_json_parser;
          Alcotest.test_case "chrome validation rejects" `Quick
            test_validate_chrome_rejects;
        ] );
      ( "registry",
        [
          Alcotest.test_case "snapshot and totals" `Quick test_registry_snapshot;
          Alcotest.test_case "dsm mode counters exported" `Quick
            test_dsm_mode_metrics_exported;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "tracing does not perturb" `Quick
            test_tracing_does_not_perturb;
          Alcotest.test_case "mid-cell trace determinism" `Quick
            test_trace_determinism_mid_cell;
          Alcotest.test_case "p99 stage decomposition" `Quick
            test_summary_decomposes_p99;
        ] );
    ]
