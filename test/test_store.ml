(* Tests for data-server stable storage: disk timing, segment store,
   write-ahead log and directory. *)

open Sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let seg_gen = Ra.Sysname.make_gen ~node:0

(* ------------------------------------------------------------------ *)
(* Disk *)

let test_disk_timing () =
  let elapsed =
    Sim.exec (fun () ->
        let cfg = { Store.Disk.seek = Time.ms 10; transfer_per_8k = Time.ms 2; rot = Time.ms 4 } in
        let d = Store.Disk.create ~config:cfg "d" in
        let t0 = Sim.now () in
        Store.Disk.write d ~bytes:8192;
        Time.diff (Sim.now ()) t0)
  in
  check_int "seek + transfer" (Time.ms 12) elapsed

let test_disk_serializes () =
  let elapsed =
    Sim.exec (fun () ->
        let cfg = { Store.Disk.seek = Time.ms 10; transfer_per_8k = Time.ms 2; rot = Time.ms 4 } in
        let d = Store.Disk.create ~config:cfg "d" in
        let done_ = Semaphore.create 0 in
        for _ = 1 to 2 do
          ignore
            (Sim.spawn "io" (fun () ->
                 Store.Disk.write d ~bytes:8192;
                 Semaphore.release done_))
        done;
        Semaphore.acquire done_;
        Semaphore.acquire done_;
        Sim.now ())
  in
  check_int "two writes serialize" (Time.ms 24) elapsed;
  ()

let test_disk_append_tail () =
  Sim.exec (fun () ->
      let cfg =
        { Store.Disk.seek = Time.ms 10; transfer_per_8k = Time.ms 2; rot = Time.ms 4 }
      in
      let d = Store.Disk.create ~config:cfg "d" in
      let time f =
        let t0 = Sim.now () in
        f ();
        Time.diff (Sim.now ()) t0
      in
      (* cold head: the first append pays a full seek to the log zone *)
      check_int "first append seeks" (Time.ms 12)
        (time (fun () -> Store.Disk.append d ~bytes:8192));
      (* head parked at the tail: the next append pays rotation only *)
      check_int "tail append skips the seek" (Time.ms 6)
        (time (fun () -> Store.Disk.append d ~bytes:8192));
      (* any read/write moves the head away again *)
      check_int "write seeks" (Time.ms 12)
        (time (fun () -> Store.Disk.write d ~bytes:8192));
      check_int "append after write seeks" (Time.ms 12)
        (time (fun () -> Store.Disk.append d ~bytes:8192));
      check_int "ops counted" 4 (Store.Disk.ops d))

(* ------------------------------------------------------------------ *)
(* Segment store *)

let test_segment_lifecycle () =
  let s = Store.Segment_store.create "s" in
  let seg = Ra.Sysname.fresh seg_gen in
  check_bool "absent" false (Store.Segment_store.exists s seg);
  Store.Segment_store.create_segment s seg ~size:(2 * Ra.Page.size);
  check_bool "present" true (Store.Segment_store.exists s seg);
  check_int "size" (2 * Ra.Page.size) (Store.Segment_store.size s seg);
  check_bool "duplicate create rejected" true
    (try
       Store.Segment_store.create_segment s seg ~size:1;
       false
     with Invalid_argument _ -> true);
  Store.Segment_store.delete_segment s seg;
  check_bool "deleted" false (Store.Segment_store.exists s seg)

let test_segment_pages () =
  let s = Store.Segment_store.create "s" in
  let seg = Ra.Sysname.fresh seg_gen in
  Store.Segment_store.create_segment s seg ~size:Ra.Page.size;
  (match Store.Segment_store.read_page s seg 0 with
  | Ra.Partition.Zeroed -> ()
  | Ra.Partition.Data _ -> Alcotest.fail "untouched page should be zeroed");
  let page = Bytes.make Ra.Page.size 'p' in
  Store.Segment_store.write_page s seg 0 page;
  (match Store.Segment_store.read_page s seg 0 with
  | Ra.Partition.Data d ->
      check_bool "roundtrip" true (Bytes.equal d page);
      (* mutation of the returned buffer must not alias the store *)
      Bytes.set d 0 'q';
      (match Store.Segment_store.read_page s seg 0 with
      | Ra.Partition.Data d2 -> check_bool "no aliasing" true (Bytes.get d2 0 = 'p')
      | Ra.Partition.Zeroed -> Alcotest.fail "lost page")
  | Ra.Partition.Zeroed -> Alcotest.fail "wrote page");
  let missing = Ra.Sysname.fresh seg_gen in
  check_bool "missing segment raises" true
    (try
       ignore (Store.Segment_store.read_page s missing 0);
       false
     with Ra.Partition.No_segment _ -> true)

let test_local_partition () =
  Sim.exec (fun () ->
      let s = Store.Segment_store.create "s" in
      let seg = Ra.Sysname.fresh seg_gen in
      Store.Segment_store.create_segment s seg ~size:Ra.Page.size;
      let p = Store.Segment_store.local_partition s in
      (match p.Ra.Partition.fetch ~seg ~page:0 ~mode:Ra.Partition.Read with
      | Ra.Partition.Zeroed -> ()
      | Ra.Partition.Data _ -> Alcotest.fail "expected zeroed");
      p.Ra.Partition.writeback ~seg ~page:0 (Bytes.make Ra.Page.size 'w');
      match p.Ra.Partition.fetch ~seg ~page:0 ~mode:Ra.Partition.Read with
      | Ra.Partition.Data d -> check_bool "written" true (Bytes.get d 0 = 'w')
      | Ra.Partition.Zeroed -> Alcotest.fail "expected data")

(* ------------------------------------------------------------------ *)
(* WAL *)

let page_of_char c = Bytes.make Ra.Page.size c

let test_wal_recover_committed () =
  Sim.exec (fun () ->
      let disk = Store.Disk.create "d" in
      let wal = Store.Wal.create disk in
      let s = Store.Segment_store.create "s" in
      let seg = Ra.Sysname.fresh seg_gen in
      Store.Segment_store.create_segment s seg ~size:Ra.Page.size;
      Store.Wal.append wal
        (Store.Wal.Prepared
           { txn = (1, 1); writes = [ (seg, 0, page_of_char 'a') ]; undo = [] });
      Store.Wal.append wal (Store.Wal.Committed (1, 1));
      (* an undecided transaction, must be presumed aborted *)
      Store.Wal.append wal
        (Store.Wal.Prepared
           { txn = (1, 2); writes = [ (seg, 0, page_of_char 'b') ]; undo = [] });
      let applied = ref [] in
      let (_ : Store.Wal.prep list) =
        Store.Wal.recover wal s ~decide:(fun _ -> `Abort) ~applied
      in
      Alcotest.(check (list (pair int int))) "applied" [ (1, 1) ] !applied;
      (match Store.Segment_store.read_page s seg 0 with
      | Ra.Partition.Data d -> check_bool "committed applied" true (Bytes.get d 0 = 'a')
      | Ra.Partition.Zeroed -> Alcotest.fail "not applied");
      (* the undecided txn now has an abort marker *)
      let aborted =
        List.exists
          (function Store.Wal.Aborted (1, 2) -> true | _ -> false)
          (Store.Wal.records wal)
      in
      check_bool "presumed abort logged" true aborted)

let test_wal_costs_disk_time () =
  let elapsed =
    Sim.exec (fun () ->
        let cfg = { Store.Disk.seek = Time.ms 10; transfer_per_8k = Time.ms 2; rot = Time.ms 4 } in
        let disk = Store.Disk.create ~config:cfg "d" in
        let wal = Store.Wal.create disk in
        let t0 = Sim.now () in
        Store.Wal.append wal (Store.Wal.Committed (1, 1));
        Time.diff (Sim.now ()) t0)
  in
  check_bool "durable append costs time" true (elapsed >= Time.ms 10)

let test_wal_truncate () =
  Sim.exec (fun () ->
      let disk = Store.Disk.create "d" in
      let wal = Store.Wal.create disk in
      Store.Wal.append wal (Store.Wal.Committed (1, 1));
      Store.Wal.truncate wal;
      check_int "empty" 0 (List.length (Store.Wal.records wal)))

let test_wal_recover_twice_applies_once () =
  Sim.exec (fun () ->
      let disk = Store.Disk.create "d" in
      let wal = Store.Wal.create disk in
      let s = Store.Segment_store.create "s" in
      let seg = Ra.Sysname.fresh seg_gen in
      Store.Segment_store.create_segment s seg ~size:Ra.Page.size;
      Store.Wal.append wal
        (Store.Wal.Prepared
           { txn = (1, 1); writes = [ (seg, 0, page_of_char 'a') ]; undo = [] });
      Store.Wal.append wal (Store.Wal.Committed (1, 1));
      let applied = ref [] in
      let (_ : Store.Wal.prep list) =
        Store.Wal.recover wal s ~decide:(fun _ -> `Abort) ~applied
      in
      Alcotest.(check (list (pair int int))) "first replay" [ (1, 1) ] !applied;
      (* the page now carries the commit's LSN, so a second replay of
         the same log must not apply (or count) anything *)
      let applied = ref [] in
      let (_ : Store.Wal.prep list) =
        Store.Wal.recover wal s ~decide:(fun _ -> `Abort) ~applied
      in
      Alcotest.(check (list (pair int int))) "second replay idle" [] !applied)

let test_wal_keep_in_doubt () =
  Sim.exec (fun () ->
      let disk = Store.Disk.create "d" in
      let wal = Store.Wal.create disk in
      let s = Store.Segment_store.create "s" in
      let seg = Ra.Sysname.fresh seg_gen in
      Store.Segment_store.create_segment s seg ~size:Ra.Page.size;
      Store.Wal.append wal
        (Store.Wal.Prepared
           { txn = (2, 7); writes = [ (seg, 0, page_of_char 'k') ]; undo = [] });
      let applied = ref [] in
      let in_doubt =
        Store.Wal.recover wal s ~decide:(fun _ -> `Keep) ~applied
      in
      (* [`Keep]: the coordinator is alive but undecided, so the
         participant keeps its promise — nothing applied, nothing
         aborted, and the prepare comes back for re-installation *)
      Alcotest.(check (list (pair int int))) "nothing applied" [] !applied;
      (match in_doubt with
      | [ p ] ->
          check_bool "prepare survives" true (p.Store.Wal.txn = (2, 7))
      | l -> Alcotest.failf "expected one in-doubt prep, got %d" (List.length l));
      (match Store.Segment_store.read_page s seg 0 with
      | Ra.Partition.Zeroed -> ()
      | Ra.Partition.Data _ -> Alcotest.fail "in-doubt write leaked");
      check_bool "no abort marker" true
        (not
           (List.exists
              (function Store.Wal.Aborted (2, 7) -> true | _ -> false)
              (Store.Wal.records wal))))

let test_wal_group_commit_batches () =
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let cfg =
        { Store.Disk.seek = Time.ms 10; transfer_per_8k = Time.ms 2; rot = Time.ms 4 }
      in
      let disk = Store.Disk.create ~config:cfg "d" in
      let wal =
        Store.Wal.create
          ~group_commit:{ Store.Wal.window = Time.ms 2; max_batch = 64 }
          ~spawn:(fun name f -> ignore (Sim.Engine.spawn eng name f))
          disk
      in
      let done_ = Semaphore.create 0 in
      for i = 1 to 4 do
        ignore
          (Sim.spawn "committer" (fun () ->
               Store.Wal.append wal (Store.Wal.Committed (1, i));
               Semaphore.release done_))
      done;
      for _ = 1 to 4 do
        Semaphore.acquire done_
      done;
      (* four concurrent appends ride one group flush: a single disk
         positioning delay, all four records durable *)
      check_int "one flush" 1 (Store.Wal.flushes wal);
      check_int "one disk op" 1 (Store.Disk.ops disk);
      check_int "all durable" 4 (Store.Wal.flushed_lsn wal))

let test_wal_undo_crash_window () =
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let disk = Store.Disk.create "d" in
      let wal =
        Store.Wal.create
          ~group_commit:{ Store.Wal.window = Time.ms 5; max_batch = 64 }
          ~spawn:(fun name f -> ignore (Sim.Engine.spawn eng name f))
          disk
      in
      let s = Store.Segment_store.create "s" in
      let seg = Ra.Sysname.fresh seg_gen in
      Store.Segment_store.create_segment s seg ~size:Ra.Page.size;
      (* the before-image is sparse: logged trimmed, restored padded *)
      let before = Bytes.make Ra.Page.size '\000' in
      Bytes.blit_string "old" 0 before 0 3;
      Store.Segment_store.write_page s seg 0 before;
      Store.Wal.append wal
        (Store.Wal.Prepared
           {
             txn = (1, 1);
             writes = [ (seg, 0, page_of_char 'n') ];
             undo = [ (seg, 0, Some (Store.Wal.trim_image before)) ];
           });
      (* pipelined commit: record in the buffer, page applied, locks
         released — then the crash beats the flush *)
      let lsn = Store.Wal.enqueue wal (Store.Wal.Committed (1, 1)) in
      Store.Segment_store.write_page s seg 0 (page_of_char 'n') ~lsn;
      let applied = ref [] in
      let (_ : Store.Wal.prep list) =
        Store.Wal.recover wal s ~decide:(fun _ -> `Abort) ~applied
      in
      (* the commit record was volatile, the coordinator says abort:
         the crash-window apply must be undone from the before-image *)
      Alcotest.(check (list (pair int int))) "nothing redone" [] !applied;
      (match Store.Segment_store.read_page s seg 0 with
      | Ra.Partition.Data d ->
          check_int "full page restored" Ra.Page.size (Bytes.length d);
          check_bool "before-image back" true
            (Bytes.sub_string d 0 3 = "old" && Bytes.get d 3 = '\000')
      | Ra.Partition.Zeroed -> Alcotest.fail "page lost");
      check_bool "abort logged" true
        (List.exists
           (function Store.Wal.Aborted (1, 1) -> true | _ -> false)
           (Store.Wal.records wal)))

let test_wal_trim_image () =
  let sparse = Bytes.make Ra.Page.size '\000' in
  Bytes.blit_string "payload" 0 sparse 0 7;
  check_int "sparse page trims to its payload" 7
    (Bytes.length (Store.Wal.trim_image sparse));
  check_int "all-zero page trims to nothing" 0
    (Bytes.length (Store.Wal.trim_image (Bytes.make Ra.Page.size '\000')));
  let full = Bytes.make Ra.Page.size 'x' in
  check_int "dense page keeps every byte" Ra.Page.size
    (Bytes.length (Store.Wal.trim_image full))

(* ------------------------------------------------------------------ *)
(* Directory *)

let test_directory () =
  let d = Store.Directory.create () in
  let obj = Ra.Sysname.fresh seg_gen in
  let code = Ra.Sysname.fresh seg_gen in
  let desc =
    {
      Store.Directory.class_name = "rectangle";
      home = 1;
      entries = [ { Store.Directory.role = "code"; seg = code; size = 8192 } ];
    }
  in
  check_bool "empty" true (Store.Directory.lookup d obj = None);
  Store.Directory.register d obj desc;
  (match Store.Directory.lookup d obj with
  | Some found ->
      Alcotest.(check string) "class" "rectangle" found.Store.Directory.class_name
  | None -> Alcotest.fail "registered but not found");
  check_int "listed" 1 (List.length (Store.Directory.objects d));
  check_bool "bytes positive" true (Store.Directory.descriptor_bytes desc > 64);
  Store.Directory.remove d obj;
  check_bool "removed" true (Store.Directory.lookup d obj = None)

let () =
  Alcotest.run "store"
    [
      ( "disk",
        [
          Alcotest.test_case "timing" `Quick test_disk_timing;
          Alcotest.test_case "serializes" `Quick test_disk_serializes;
          Alcotest.test_case "append tracks the log tail" `Quick
            test_disk_append_tail;
        ] );
      ( "segments",
        [
          Alcotest.test_case "lifecycle" `Quick test_segment_lifecycle;
          Alcotest.test_case "pages" `Quick test_segment_pages;
          Alcotest.test_case "local partition" `Quick test_local_partition;
        ] );
      ( "wal",
        [
          Alcotest.test_case "recover committed only" `Quick
            test_wal_recover_committed;
          Alcotest.test_case "append costs disk time" `Quick
            test_wal_costs_disk_time;
          Alcotest.test_case "truncate" `Quick test_wal_truncate;
          Alcotest.test_case "replay is idempotent" `Quick
            test_wal_recover_twice_applies_once;
          Alcotest.test_case "keep leaves in doubt" `Quick
            test_wal_keep_in_doubt;
          Alcotest.test_case "group commit batches" `Quick
            test_wal_group_commit_batches;
          Alcotest.test_case "crash-window undo" `Quick
            test_wal_undo_crash_window;
          Alcotest.test_case "before-image trim" `Quick test_wal_trim_image;
        ] );
      ("directory", [ Alcotest.test_case "crud" `Quick test_directory ]);
    ]
