(* Tests for the simulated Ethernet, NICs and fault injection. *)

open Sim
open Net

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A config with zero host costs and gaps so latency arithmetic in
   tests is exact. *)
let bare_config =
  {
    Ethernet.bandwidth_bps = 8_000_000;
    (* 1 byte = 1 us on the wire *)
    propagation = Time.us 5;
    frame_gap = 0;
    mtu_payload = 1482;
    send_cost_per_frame = 0;
    recv_cost_per_frame = 0;
    cost_per_byte_ns = 0;
  }

let with_net ?(config = bare_config) f =
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let ether = Ethernet.create eng ~config () in
      f ether)

let test_frame_make () =
  let f = Frame.make ~src:1 ~dst:(Frame.Unicast 2) ~payload_bytes:100 (Frame.Raw "x") in
  check_int "bytes includes header" (100 + Frame.header_bytes) f.Frame.bytes;
  let small = Frame.make ~src:1 ~dst:Frame.Broadcast ~payload_bytes:0 (Frame.Raw "") in
  check_int "minimum frame size" 64 small.Frame.bytes

let test_wire_time () =
  (* 1000 bytes at 8 Mbit/s = 1 ms *)
  check_int "wire time" (Time.ms 1) (Ethernet.wire_time bare_config 1000);
  let cfg = { bare_config with frame_gap = Time.us 10 } in
  check_int "gap added" (Time.ms 1 + Time.us 10) (Ethernet.wire_time cfg 1000)

let test_unicast_delivery () =
  let elapsed =
    with_net (fun ether ->
        let _n1 = Ethernet.attach ether 1 in
        let n2 = Ethernet.attach ether 2 in
        let t0 = Sim.now () in
        let f =
          Frame.make ~src:1 ~dst:(Frame.Unicast 2) ~payload_bytes:(1000 - Frame.header_bytes)
            (Frame.Raw "hello")
        in
        Ethernet.transmit ether f;
        let g = Nic.recv n2 in
        check_bool "payload intact"
          true
          (match g.Frame.payload with Frame.Raw s -> s = "hello" | _ -> false);
        Time.diff (Sim.now ()) t0)
  in
  (* 1000 bytes wire (1ms) + 5us propagation *)
  check_int "latency = wire + propagation" (Time.ms 1 + Time.us 5) elapsed

let test_broadcast () =
  with_net (fun ether ->
      let _n1 = Ethernet.attach ether 1 in
      let n2 = Ethernet.attach ether 2 in
      let n3 = Ethernet.attach ether 3 in
      let f = Frame.make ~src:1 ~dst:Frame.Broadcast ~payload_bytes:10 (Frame.Raw "b") in
      Ethernet.transmit ether f;
      Sim.sleep (Time.ms 1);
      check_bool "n2 got it" true (Nic.try_recv n2 <> None);
      check_bool "n3 got it" true (Nic.try_recv n3 <> None);
      match Ethernet.nic ether 1 with
      | Some n1 -> check_bool "sender did not" true (Nic.try_recv n1 = None)
      | None -> Alcotest.fail "nic 1 missing")

let test_drop_all () =
  with_net (fun ether ->
      let _n1 = Ethernet.attach ether 1 in
      let n2 = Ethernet.attach ether 2 in
      Fault.set_drop_probability (Ethernet.fault ether) 1.0;
      let f = Frame.make ~src:1 ~dst:(Frame.Unicast 2) ~payload_bytes:10 (Frame.Raw "x") in
      Ethernet.transmit ether f;
      Sim.sleep (Time.ms 1);
      check_bool "dropped" true (Nic.try_recv n2 = None);
      check_int "drop counted" 1 (Fault.drops (Ethernet.fault ether)))

let test_cut_and_heal () =
  with_net (fun ether ->
      let _n1 = Ethernet.attach ether 1 in
      let n2 = Ethernet.attach ether 2 in
      let fault = Ethernet.fault ether in
      Fault.cut fault 1 2;
      let send () =
        Ethernet.transmit ether
          (Frame.make ~src:1 ~dst:(Frame.Unicast 2) ~payload_bytes:10 (Frame.Raw "x"));
        Sim.sleep (Time.ms 1)
      in
      send ();
      check_bool "cut drops" true (Nic.try_recv n2 = None);
      (* the reverse direction still works *)
      Ethernet.transmit ether
        (Frame.make ~src:2 ~dst:(Frame.Unicast 1) ~payload_bytes:10 (Frame.Raw "y"));
      Sim.sleep (Time.ms 1);
      (match Ethernet.nic ether 1 with
      | Some n1 -> check_bool "reverse direction open" true (Nic.try_recv n1 <> None)
      | None -> Alcotest.fail "nic 1 missing");
      Fault.heal fault 1 2;
      send ();
      check_bool "healed delivers" true (Nic.try_recv n2 <> None))

let test_detach () =
  with_net (fun ether ->
      let _n1 = Ethernet.attach ether 1 in
      let n2 = Ethernet.attach ether 2 in
      Ethernet.detach ether 2;
      Ethernet.transmit ether
        (Frame.make ~src:1 ~dst:(Frame.Unicast 2) ~payload_bytes:10 (Frame.Raw "x"));
      Sim.sleep (Time.ms 1);
      check_bool "detached drops" true (Nic.try_recv n2 = None);
      Ethernet.reattach ether 2;
      Ethernet.transmit ether
        (Frame.make ~src:1 ~dst:(Frame.Unicast 2) ~payload_bytes:10 (Frame.Raw "x"));
      Sim.sleep (Time.ms 1);
      check_bool "reattached delivers" true (Nic.try_recv n2 <> None))

let test_duplication () =
  with_net (fun ether ->
      let _n1 = Ethernet.attach ether 1 in
      let n2 = Ethernet.attach ether 2 in
      let fault = Ethernet.fault ether in
      Fault.set_link fault 1 2 { Fault.pristine with dup = 1.0 };
      Ethernet.transmit ether
        (Frame.make ~src:1 ~dst:(Frame.Unicast 2) ~payload_bytes:10 (Frame.Raw "x"));
      Sim.sleep (Time.ms 1);
      check_bool "first copy" true (Nic.try_recv n2 <> None);
      check_bool "second copy" true (Nic.try_recv n2 <> None);
      check_bool "no third copy" true (Nic.try_recv n2 = None);
      check_int "duplicate counted" 1 (Fault.duplicates fault))

let test_delay_jitter () =
  (* With delay = 1 ms every frame is held back somewhere in (0, 1ms]
     beyond the fault-free arrival time. *)
  let fault_free, jittered =
    with_net (fun ether ->
        let _n1 = Ethernet.attach ether 1 in
        let n2 = Ethernet.attach ether 2 in
        let one_trip () =
          let t0 = Sim.now () in
          Ethernet.transmit ether
            (Frame.make ~src:1 ~dst:(Frame.Unicast 2) ~payload_bytes:10
               (Frame.Raw "x"));
          ignore (Nic.recv n2);
          Time.diff (Sim.now ()) t0
        in
        let base = one_trip () in
        Fault.set_link (Ethernet.fault ether) 1 2
          { Fault.pristine with delay = Time.ms 1 };
        (base, one_trip ()))
  in
  check_bool "jitter adds delay" true (jittered > fault_free);
  check_bool "jitter bounded" true (jittered <= fault_free + Time.ms 1)

let test_partition_for () =
  with_net (fun ether ->
      let n1 = Ethernet.attach ether 1 in
      let n2 = Ethernet.attach ether 2 in
      let fault = Ethernet.fault ether in
      Fault.partition_for fault 1 2 (Time.ms 10);
      let send src dst =
        Ethernet.transmit ether
          (Frame.make ~src ~dst:(Frame.Unicast dst) ~payload_bytes:10 (Frame.Raw "x"));
        Sim.sleep (Time.ms 1)
      in
      send 1 2;
      send 2 1;
      check_bool "cut 1->2" true (Nic.try_recv n2 = None);
      check_bool "cut 2->1" true (Nic.try_recv n1 = None);
      Sim.sleep (Time.ms 10);
      send 1 2;
      send 2 1;
      check_bool "healed 1->2" true (Nic.try_recv n2 <> None);
      check_bool "healed 2->1" true (Nic.try_recv n1 <> None))

let test_filter () =
  with_net (fun ether ->
      let _n1 = Ethernet.attach ether 1 in
      let n2 = Ethernet.attach ether 2 in
      let fault = Ethernet.fault ether in
      Fault.set_filter fault (fun ~src:_ ~dst:_ f ->
          match f.Frame.payload with Frame.Raw "bad" -> false | _ -> true);
      let send tag =
        Ethernet.transmit ether
          (Frame.make ~src:1 ~dst:(Frame.Unicast 2) ~payload_bytes:10 (Frame.Raw tag));
        Sim.sleep (Time.ms 1)
      in
      send "bad";
      check_bool "filtered out" true (Nic.try_recv n2 = None);
      check_int "filter drop counted" 1 (Fault.drops fault);
      send "good";
      check_bool "others pass" true (Nic.try_recv n2 <> None);
      Fault.clear_filter fault;
      send "bad";
      check_bool "cleared filter delivers" true (Nic.try_recv n2 <> None))

let test_bus_serializes () =
  (* Two senders transmitting 1000-byte frames at once: the second
     frame arrives a full wire-time after the first. *)
  let arrivals =
    with_net (fun ether ->
        let _n1 = Ethernet.attach ether 1 in
        let _n2 = Ethernet.attach ether 2 in
        let n3 = Ethernet.attach ether 3 in
        let send src =
          ignore
            (Sim.spawn "sender" (fun () ->
                 Ethernet.transmit ether
                   (Frame.make ~src ~dst:(Frame.Unicast 3)
                      ~payload_bytes:(1000 - Frame.header_bytes) (Frame.Raw "x"))))
        in
        send 1;
        send 2;
        let a = Nic.recv n3 in
        let t1 = Sim.now () in
        let b = Nic.recv n3 in
        let t2 = Sim.now () in
        ignore a;
        ignore b;
        (t1, t2))
  in
  let t1, t2 = arrivals in
  check_int "first at wire+prop" (Time.ms 1 + Time.us 5) t1;
  check_int "second a wire-time later" (Time.ms 2 + Time.us 5) t2

let test_mtu_enforced () =
  with_net (fun ether ->
      let _n1 = Ethernet.attach ether 1 in
      let oversized =
        Frame.make ~src:1 ~dst:Frame.Broadcast ~payload_bytes:2000 (Frame.Raw "x")
      in
      let raised =
        try
          Ethernet.transmit ether oversized;
          false
        with Invalid_argument _ -> true
      in
      check_bool "mtu enforced" true raised)

let test_recv_cost_charged () =
  let config = { bare_config with recv_cost_per_frame = Time.us 100 } in
  let elapsed =
    with_net ~config (fun ether ->
        let _n1 = Ethernet.attach ether 1 in
        let n2 = Ethernet.attach ether 2 in
        Ethernet.transmit ether
          (Frame.make ~src:1 ~dst:(Frame.Unicast 2) ~payload_bytes:(1000 - Frame.header_bytes)
             (Frame.Raw "x"));
        let t0 = Sim.now () in
        ignore (Nic.recv n2);
        Time.diff (Sim.now ()) t0)
  in
  (* frame already waiting after transmit returns? transmit returns
     after wire time; delivery is +propagation, so recv waits 5us then
     charges 100us. *)
  check_int "propagation + recv cost" (Time.us 105) elapsed

let test_attach_twice_rejected () =
  with_net (fun ether ->
      let _ = Ethernet.attach ether 1 in
      let raised =
        try
          ignore (Ethernet.attach ether 1);
          false
        with Invalid_argument _ -> true
      in
      check_bool "duplicate attach rejected" true raised)

let test_counters () =
  with_net (fun ether ->
      let _n1 = Ethernet.attach ether 1 in
      let _n2 = Ethernet.attach ether 2 in
      let f = Frame.make ~src:1 ~dst:(Frame.Unicast 2) ~payload_bytes:100 (Frame.Raw "x") in
      Ethernet.transmit ether f;
      Ethernet.transmit ether f;
      check_int "frames" 2 (Ethernet.frames_sent ether);
      check_int "bytes" (2 * f.Frame.bytes) (Ethernet.bytes_sent ether))

let prop_wire_time_monotonic =
  QCheck.Test.make ~name:"wire time monotonic in size" ~count:100
    QCheck.(pair (int_range 0 10_000) (int_range 0 10_000))
    (fun (a, b) ->
      let wa = Ethernet.wire_time bare_config a
      and wb = Ethernet.wire_time bare_config b in
      if a <= b then wa <= wb else wa >= wb)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "net"
    [
      ( "frame",
        [ Alcotest.test_case "sizes" `Quick test_frame_make ] );
      ( "ethernet",
        [
          Alcotest.test_case "wire time" `Quick test_wire_time;
          Alcotest.test_case "unicast delivery and latency" `Quick
            test_unicast_delivery;
          Alcotest.test_case "broadcast" `Quick test_broadcast;
          Alcotest.test_case "bus serializes" `Quick test_bus_serializes;
          Alcotest.test_case "mtu enforced" `Quick test_mtu_enforced;
          Alcotest.test_case "recv cost charged" `Quick test_recv_cost_charged;
          Alcotest.test_case "duplicate attach rejected" `Quick
            test_attach_twice_rejected;
          Alcotest.test_case "counters" `Quick test_counters;
        ] );
      ( "fault",
        [
          Alcotest.test_case "drop all" `Quick test_drop_all;
          Alcotest.test_case "cut and heal" `Quick test_cut_and_heal;
          Alcotest.test_case "detach and reattach" `Quick test_detach;
          Alcotest.test_case "duplication" `Quick test_duplication;
          Alcotest.test_case "delay jitter" `Quick test_delay_jitter;
          Alcotest.test_case "timed partition" `Quick test_partition_for;
          Alcotest.test_case "payload filter" `Quick test_filter;
        ] );
      qsuite "props" [ prop_wire_time_monotonic ];
    ]
