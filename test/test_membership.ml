(* Tests for heartbeat membership: the monitor's status machine and
   epoch discipline, failure-API strictness, view-driven recovery of
   DSM server suspicion and client location caches, and the
   kill-k-of-n reheal invariants of the membership experiment. *)

open Sim
module M = Membership.Monitor
module Cl = Clouds.Cluster
module Exp = Experiments.Membership

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let status_t : M.status Alcotest.testable =
  Alcotest.testable
    (fun ppf s ->
      Format.pp_print_string ppf
        (match s with M.Alive -> "alive" | M.Suspect -> "suspect" | M.Dead -> "dead"))
    ( = )

let fast_ratp =
  {
    Ratp.Endpoint.default_config with
    retry_initial = Time.ms 20;
    max_attempts = 3;
  }

(* Same tight detection bounds the membership experiment uses: beats
   every 10 ms, suspicion after 30 ms of silence, death after 80 ms. *)
let mon_config =
  { M.period = Time.ms 10; suspect_after = Time.ms 30; dead_after = Time.ms 80 }

(* ------------------------------------------------------------------ *)
(* Monitor state machine *)

(* A bare monitor over raw nodes: crash silences the heartbeat sender
   (it is not killed), the sweep escalates Alive -> Suspect -> Dead,
   and a restart's resumed beats rejoin the member. *)
let test_monitor_lifecycle () =
  Sim.exec ~seed:7 (fun () ->
      let eng = Sim.engine () in
      let ether = Net.Ethernet.create eng () in
      let host =
        Ra.Node.create ether ~id:3 ~kind:Ra.Node.Compute
          ~ratp_config:fast_ratp ()
      in
      let n1 =
        Ra.Node.create ether ~id:1 ~kind:Ra.Node.Data ~ratp_config:fast_ratp ()
      in
      let n2 =
        Ra.Node.create ether ~id:2 ~kind:Ra.Node.Data ~ratp_config:fast_ratp ()
      in
      let mon = M.create ~config:mon_config host in
      M.watch mon n1;
      M.watch mon n2;
      Fun.protect ~finally:(fun () -> M.stop mon) @@ fun () ->
      Sim.sleep (Time.ms 50);
      Alcotest.check status_t "n1 alive" M.Alive (M.status_of mon 1);
      Alcotest.check status_t "n2 alive" M.Alive (M.status_of mon 2);
      check_int "healthy cluster stays at epoch 0" 0 (M.epoch mon);
      check_bool "heartbeats flowing" true (M.heartbeats mon > 0);
      Ra.Node.crash n1;
      Sim.sleep (Time.ms 50);
      Alcotest.check status_t "silence raises suspicion" M.Suspect
        (M.status_of mon 1);
      check_bool "suspects stay usable" true (M.usable mon 1);
      check_bool "suspects are not dead" false (M.is_dead mon 1);
      Sim.sleep (Time.ms 60);
      Alcotest.check status_t "prolonged silence condemns" M.Dead
        (M.status_of mon 1);
      check_bool "dead nodes are unusable" false (M.usable mon 1);
      check_bool "death instant recorded" true (M.last_death mon 1 <> None);
      check_int "two transitions, two epochs" 2 (M.epoch mon);
      Alcotest.check status_t "bystander unaffected" M.Alive (M.status_of mon 2);
      Ra.Node.restart n1;
      Sim.sleep (Time.ms 30);
      Alcotest.check status_t "resumed beats rejoin the member" M.Alive
        (M.status_of mon 1);
      check_int "rejoin announces a fresh epoch" 3 (M.epoch mon);
      check_int "transitions match epochs" 3 (M.transitions mon);
      check_bool "death instant survives the rejoin" true
        (M.last_death mon 1 <> None))

(* Subscribers see every epoch bump, synchronously and in order, with
   the member's new status in the delivered view. *)
let test_monitor_subscribers () =
  Sim.exec ~seed:13 (fun () ->
      let eng = Sim.engine () in
      let ether = Net.Ethernet.create eng () in
      let host =
        Ra.Node.create ether ~id:2 ~kind:Ra.Node.Compute
          ~ratp_config:fast_ratp ()
      in
      let n1 =
        Ra.Node.create ether ~id:1 ~kind:Ra.Node.Data ~ratp_config:fast_ratp ()
      in
      let mon = M.create ~config:mon_config host in
      M.watch mon n1;
      Fun.protect ~finally:(fun () -> M.stop mon) @@ fun () ->
      let log = ref [] in
      M.subscribe mon (fun v ->
          let s =
            match List.find_opt (fun m -> m.M.addr = 1) v.M.members with
            | Some m -> m.M.status
            | None -> Alcotest.fail "watched member missing from view"
          in
          log := (v.M.epoch, s) :: !log);
      Sim.sleep (Time.ms 20);
      Ra.Node.crash n1;
      Sim.sleep (Time.ms 120);
      Alcotest.(check (list (pair int status_t)))
        "suspect then dead, one epoch each"
        [ (1, M.Suspect); (2, M.Dead) ]
        (List.rev !log))

(* The whole detection timeline is a pure function of the seed. *)
let test_monitor_determinism () =
  let run () =
    Sim.exec ~seed:11 (fun () ->
        let eng = Sim.engine () in
        let ether = Net.Ethernet.create eng () in
        let host =
          Ra.Node.create ether ~id:3 ~kind:Ra.Node.Compute
            ~ratp_config:fast_ratp ()
        in
        let n1 =
          Ra.Node.create ether ~id:1 ~kind:Ra.Node.Data ~ratp_config:fast_ratp
            ()
        in
        let mon = M.create ~config:mon_config host in
        M.watch mon n1;
        Fun.protect ~finally:(fun () -> M.stop mon) @@ fun () ->
        Sim.sleep (Time.ms 40);
        Ra.Node.crash n1;
        Sim.sleep (Time.ms 120);
        let death =
          match M.last_death mon 1 with
          | Some t -> Time.to_ms_f (Time.diff t Time.zero)
          | None -> -1.0
        in
        (M.epoch mon, M.heartbeats mon, M.transitions mon, death))
  in
  let a = run () and b = run () in
  Alcotest.(check (pair (pair int int) (pair int (float 0.0))))
    "same seed, same timeline"
    (let e, h, tr, d = a in
     ((e, h), (tr, d)))
    (let e, h, tr, d = b in
     ((e, h), (tr, d)))

(* ------------------------------------------------------------------ *)
(* Failure API strictness *)

let test_crash_now_unknown () =
  Alcotest.check_raises "crash_now rejects unknown nodes"
    (Invalid_argument "Failure.crash_now: unknown node") (fun () ->
      Sim.exec ~seed:3 (fun () ->
          let eng = Sim.engine () in
          let sys =
            Clouds.boot eng ~ratp_config:fast_ratp ~compute:1 ~data:1
              ~workstations:0 ()
          in
          Pet.Failure.crash_now sys.Clouds.cluster 99))

(* [restart_at] resolves its target when the callback fires, exactly
   like [crash_at] — a typo'd address must raise, not silently no-op. *)
let test_restart_at_unknown_raises_at_fire_time () =
  Alcotest.check_raises "restart_at rejects unknown nodes at fire time"
    (Invalid_argument "Failure.restart_at: unknown node") (fun () ->
      Sim.exec ~seed:3 (fun () ->
          let eng = Sim.engine () in
          let sys =
            Clouds.boot eng ~ratp_config:fast_ratp ~compute:1 ~data:1
              ~workstations:0 ()
          in
          Pet.Failure.restart_at sys.Clouds.cluster 99 (Time.ms 10);
          Sim.sleep (Time.ms 50)))

(* ------------------------------------------------------------------ *)
(* View-driven DSM recovery *)

(* Regression: a DSM server used to suspect a client forever after one
   invalidation timeout, so a recovered machine never saw coherence
   traffic again.  With membership running, the rejoin view must clear
   the suspicion without the recovered client sending the server a
   single request. *)
let test_sticky_suspect_cleared_by_view () =
  Sim.exec ~seed:5 (fun () ->
      let eng = Sim.engine () in
      let sys =
        Clouds.boot eng ~ratp_config:fast_ratp ~compute:3 ~data:1
          ~workstations:0 ()
      in
      let cl = sys.Clouds.cluster in
      let mon = Cl.start_membership cl ~config:mon_config () in
      Fun.protect ~finally:(fun () -> Cl.stop_membership cl) @@ fun () ->
      let server = cl.Cl.servers.(0) in
      let seg = Ra.Sysname.fresh cl.Cl.data_nodes.(0).Ra.Node.names in
      Store.Segment_store.create_segment
        (Dsm.Dsm_server.store server)
        seg ~size:Ra.Page.size;
      Cl.add_segment cl seg 1;
      let vs = Ra.Virtual_space.create () in
      Ra.Virtual_space.map vs ~base:0 ~len:Ra.Page.size
        ~prot:Ra.Virtual_space.Read_write seg;
      (* the monitor lives on compute_nodes.(0); use the other two *)
      let reader = cl.Cl.compute_nodes.(1) in
      let writer = cl.Cl.compute_nodes.(2) in
      ignore (Ra.Mmu.read reader.Ra.Node.mmu vs ~addr:0 ~len:4);
      Ra.Node.crash reader;
      (* the write's invalidation fan-out to the dead reader times out
         and marks it suspect *)
      Ra.Mmu.write writer.Ra.Node.mmu vs ~addr:0 (Bytes.of_string "new!");
      check_bool "timed-out invalidation suspects the reader" true
        (List.mem reader.Ra.Node.id (Dsm.Dsm_server.suspected server));
      Ra.Node.restart reader;
      Sim.sleep (Time.ms 60);
      Alcotest.check status_t "monitor sees the rejoin" M.Alive
        (M.status_of mon reader.Ra.Node.id);
      Alcotest.(check (list int))
        "rejoin view clears the suspicion, no request needed" []
        (Dsm.Dsm_server.suspected server);
      (* coherence flows again: the crash wiped the reader's MMU, so
         this refaults through the server it was suspected by *)
      Alcotest.(check string) "recovered reader sees the write" "new!"
        (Bytes.to_string (Ra.Mmu.read reader.Ra.Node.mmu vs ~addr:0 ~len:4)))

(* A dead primary's cached locations are evicted by the view change
   and the very next fault resolves to the surviving backup — no RaTP
   retry ladder is burned rediscovering the failure. *)
let test_failover_evicts_stale_locations () =
  Sim.exec ~seed:9 (fun () ->
      let eng = Sim.engine () in
      let sys =
        Clouds.boot eng ~ratp_config:fast_ratp ~replication:2 ~compute:2
          ~data:2 ~workstations:0 ()
      in
      let cl = sys.Clouds.cluster in
      let mon = Cl.start_membership cl ~config:mon_config () in
      Fun.protect ~finally:(fun () -> Cl.stop_membership cl) @@ fun () ->
      let repl = Clouds.Replicator.install cl mon in
      let seg = Ra.Sysname.fresh cl.Cl.data_nodes.(0).Ra.Node.names in
      let targets = Cl.replica_targets cl ~primary:1 in
      List.iter
        (fun a ->
          match Cl.server_at cl a with
          | Some srv ->
              Store.Segment_store.create_segment
                (Dsm.Dsm_server.store srv)
                seg ~size:Ra.Page.size
          | None -> ())
        targets;
      Cl.set_replicas cl seg targets;
      let node = cl.Cl.compute_nodes.(1) in
      let client = cl.Cl.clients.(1) in
      let vs = Ra.Virtual_space.create () in
      Ra.Virtual_space.map vs ~base:0 ~len:Ra.Page.size
        ~prot:Ra.Virtual_space.Read_write seg;
      Ra.Mmu.write node.Ra.Node.mmu vs ~addr:0 (Bytes.of_string "live");
      Dsm.Dsm_client.flush_segment client seg;
      (* the acknowledged flush is already mirrored on the backup *)
      (match
         Store.Segment_store.read_page
           (Dsm.Dsm_server.store cl.Cl.servers.(1))
           seg 0
       with
      | Ra.Partition.Data b ->
          Alcotest.(check string)
            "backup mirrors the committed write" "live"
            (Bytes.sub_string b 0 4)
      | Ra.Partition.Zeroed -> Alcotest.fail "backup page never mirrored");
      let ev0 = Dsm.Dsm_client.location_evictions client in
      Ra.Node.crash cl.Cl.data_nodes.(0);
      Sim.sleep (Time.ms 150);
      check_bool "primary condemned" true (M.is_dead mon 1);
      check_bool "dead node's locations evicted eagerly" true
        (Dsm.Dsm_client.location_evictions client > ev0);
      check_int "segment failed over to the backup" 2 (Cl.locate_segment cl seg);
      Dsm.Dsm_client.drop_segment client seg;
      let t0 = Sim.now () in
      Alcotest.(check string) "backup serves the committed data" "live"
        (Bytes.to_string (Ra.Mmu.read node.Ra.Node.mmu vs ~addr:0 ~len:4));
      let ms = Time.to_ms_f (Time.diff (Sim.now ()) t0) in
      check_bool "failover read needs no timeout rediscovery" true (ms < 60.0);
      Clouds.Replicator.quiesce repl)

(* ------------------------------------------------------------------ *)
(* Kill k of n: reheal invariants *)

let run_single_arm arm ~ops =
  match Exp.run ~arms:[ arm ] ~ops () with
  | [ o ] -> o
  | _ -> Alcotest.fail "expected exactly one outcome"

(* Kill 1 of 3 data servers under replication 2: every acknowledged
   write survives on every current replica, the dead server's copies
   are re-created on a healthy peer, and the client-visible stall is
   bounded by detection plus one transport ladder. *)
let test_kill_one_of_three_reheals () =
  let o =
    run_single_arm { Exp.replication = 2; kills = 1; restart = false } ~ops:24
  in
  Alcotest.(check (list string)) "no invariant violations" [] o.Exp.violations;
  check_int "zero lost committed writes" 0 o.Exp.lost_writes;
  check_int "zero lost segments" 0 o.Exp.lost_segments;
  check_int "no operation exhausted its retries" 0 o.Exp.failed;
  check_int "every operation acknowledged" o.Exp.ops o.Exp.oks;
  check_bool "reheal copied the lost replica" true (o.Exp.pages_copied >= 16);
  check_bool "detection inside the configured window" true
    (o.Exp.detect_ms > 0.0 && o.Exp.detect_ms < 120.0);
  check_bool "unavailability bounded" true
    (o.Exp.unavail_ms > 0.0 && o.Exp.unavail_ms < 600.0);
  check_bool "reheal completed after detection" true
    (o.Exp.reheal_ms >= o.Exp.detect_ms);
  check_bool "view advanced through suspect and dead" true
    (o.Exp.final_epoch >= 2)

(* Replication 1 with a restarting victim: the stable store survives
   the crash, so the replicator re-adopts the segment instead of
   declaring it lost, and no acknowledged write disappears. *)
let test_restart_readopts_lost_segment () =
  let o =
    run_single_arm { Exp.replication = 1; kills = 1; restart = true } ~ops:24
  in
  Alcotest.(check (list string)) "no invariant violations" [] o.Exp.violations;
  check_bool "victim was restarted" true o.Exp.restarted;
  check_int "segment re-adopted, not lost" 0 o.Exp.lost_segments;
  check_int "zero lost committed writes" 0 o.Exp.lost_writes;
  check_int "no operation exhausted its retries" 0 o.Exp.failed

(* Same (arm, seed) pair, same trace — byte for byte. *)
let test_reheal_determinism () =
  let go () = Exp.run ~arms:Exp.quick_arms ~ops:24 () |> List.map Exp.summary in
  Alcotest.(check (list string)) "reheal traces reproduce" (go ()) (go ())

let () =
  Alcotest.run "membership"
    [
      ( "monitor",
        [
          Alcotest.test_case "lifecycle" `Quick test_monitor_lifecycle;
          Alcotest.test_case "subscribers" `Quick test_monitor_subscribers;
          Alcotest.test_case "determinism" `Quick test_monitor_determinism;
        ] );
      ( "failure-api",
        [
          Alcotest.test_case "crash_now unknown" `Quick test_crash_now_unknown;
          Alcotest.test_case "restart_at unknown fires" `Quick
            test_restart_at_unknown_raises_at_fire_time;
        ] );
      ( "dsm-views",
        [
          Alcotest.test_case "sticky suspect cleared" `Quick
            test_sticky_suspect_cleared_by_view;
          Alcotest.test_case "failover evicts locations" `Quick
            test_failover_evicts_stale_locations;
        ] );
      ( "reheal",
        [
          Alcotest.test_case "kill 1 of 3" `Quick test_kill_one_of_three_reheals;
          Alcotest.test_case "restart readopts" `Quick
            test_restart_readopts_lost_segment;
          Alcotest.test_case "determinism" `Quick test_reheal_determinism;
        ] );
    ]
