(* Acceptance tests for the group-commit / ARIES WAL pipeline:
   the A/B throughput ratio, the kill-mid-commit recovery scenario,
   and seed determinism of both. *)

module C = Experiments.Commit

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The headline acceptance: the same write-heavy 64-session load,
   identical durability (acks only after the commit record is on
   disk), must sustain at least 5x the commits per second with the
   group-commit daemon on. *)
let test_group_commit_speedup () =
  match C.run () with
  | [ off; on ] ->
      check_bool "off arm forces each record" true (off.C.wal_flushes = 0);
      check_bool "on arm batches" true (on.C.mean_batch > 2.0);
      check_int "same commits off" (64 * 12) off.C.committed;
      check_int "same commits on" (64 * 12) on.C.committed;
      let ratio = on.C.throughput /. off.C.throughput in
      if ratio < 5.0 then
        Alcotest.failf
          "group commit speedup %.2fx < 5x (off %.0f/s, on %.0f/s)" ratio
          off.C.throughput on.C.throughput
  | points -> Alcotest.failf "expected 2 smoke cells, got %d" (List.length points)

(* Kill a data server mid-workload (after at least one fuzzy
   checkpoint has truncated the log), restart it through ARIES
   replay: every acknowledged commit survives, nothing unacknowledged
   materializes. *)
let test_crash_recovery () =
  let o = C.run_crash () in
  if o.C.violations <> [] then
    Alcotest.failf "crash recovery violated invariants: %s"
      (String.concat "; " o.C.violations);
  check_int "no committed write lost" 0 o.C.lost;
  check_int "no ghost write" 0 o.C.ghosts;
  check_bool "a fuzzy checkpoint was cut" true (o.C.checkpoints >= 1);
  check_bool "the log was truncated" true (o.C.log_truncated >= 1);
  check_int "every session finished" (o.C.sessions * o.C.deposits_per_session)
    o.C.acked

let test_crash_recovery_deterministic () =
  let a = C.run_crash ~seed:7 () in
  let b = C.run_crash ~seed:7 () in
  Alcotest.(check string)
    "same seed, same outcome" (C.crash_summary a) (C.crash_summary b)

let () =
  Alcotest.run "commit"
    [
      ( "pipeline",
        [
          Alcotest.test_case "group commit >= 5x" `Quick
            test_group_commit_speedup;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "kill mid-commit" `Quick test_crash_recovery;
          Alcotest.test_case "deterministic" `Quick
            test_crash_recovery_deterministic;
        ] );
    ]
