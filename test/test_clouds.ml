(* Tests for the Clouds object-thread layer: values, object memory,
   persistent heap, object lifecycle, invocation (local, nested,
   remote), threads, terminals and the name server. *)

open Sim
open Clouds

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* The paper's §2.4 example. *)
let rectangle =
  Obj_class.define ~name:"rectangle"
    [
      Obj_class.entry "size" (fun ctx arg ->
          let x, y = Value.to_pair arg in
          Memory.set_int ctx.Ctx.mem 0 (Value.to_int x);
          Memory.set_int ctx.Ctx.mem 8 (Value.to_int y);
          Value.Unit);
      Obj_class.entry "area" (fun ctx _ ->
          Value.Int
            (Memory.get_int ctx.Ctx.mem 0 * Memory.get_int ctx.Ctx.mem 8));
    ]

let with_system ?(compute = 2) ?(data = 1) ?(workstations = 1) f =
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let sys = Clouds.boot eng ~compute ~data ~workstations () in
      f sys)

(* ------------------------------------------------------------------ *)
(* Values *)

let value_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                return Value.Unit;
                map (fun b -> Value.Bool b) bool;
                map (fun i -> Value.Int i) int;
                map (fun f -> Value.Float f) (float_bound_exclusive 1e9);
                map (fun s -> Value.Str s) (string_size (0 -- 20));
              ]
          else
            oneof
              [
                map (fun i -> Value.Int i) int;
                map2 (fun a b -> Value.Pair (a, b)) (self (n / 2)) (self (n / 2));
                map (fun l -> Value.List l) (list_size (0 -- 4) (self (n / 3)));
              ])
        n)

let arbitrary_value = QCheck.make ~print:(Format.asprintf "%a" Value.pp) value_gen

let prop_value_roundtrip =
  QCheck.Test.make ~name:"value codec roundtrip" ~count:300 arbitrary_value
    (fun v -> Value.equal v (Value.decode (Value.encode v)))

let prop_value_size_matches =
  QCheck.Test.make ~name:"declared size = encoded size" ~count:300
    arbitrary_value (fun v -> Value.size v = Bytes.length (Value.encode v))

let test_value_accessors () =
  check_int "int" 42 (Value.to_int (Value.Int 42));
  Alcotest.(check string) "str" "x" (Value.to_string (Value.Str "x"));
  check_bool "wrong ctor raises" true
    (try
       ignore (Value.to_int Value.Unit);
       false
     with Invalid_argument _ -> true);
  let g = Ra.Sysname.make_gen ~node:4 in
  let s = Ra.Sysname.fresh g in
  check_bool "sysname roundtrip" true
    (Ra.Sysname.equal s (Value.to_sysname (Value.of_sysname s)))

(* ------------------------------------------------------------------ *)
(* Object memory + persistent heap (through a real object) *)

let memory_probe =
  Obj_class.define ~name:"memprobe" ~heap_pages:2 ~vheap_pages:1
    [
      Obj_class.entry "rw" (fun ctx _ ->
          let m = ctx.Ctx.mem in
          Memory.set_int m 0 123;
          Memory.set_string m 8 "hello";
          Memory.set_value m 64 (Value.List [ Value.Int 1; Value.Str "two" ]);
          check_int "int back" 123 (Memory.get_int m 0);
          Alcotest.(check string) "string back" "hello" (Memory.get_string m 8);
          check_bool "value back" true
            (Value.equal
               (Value.List [ Value.Int 1; Value.Str "two" ])
               (Memory.get_value m 64));
          Memory.set_int m ~region:Memory.Volatile 0 7;
          check_int "volatile back" 7
            (Memory.get_int m ~region:Memory.Volatile 0);
          Value.Unit);
      Obj_class.entry "bounds" (fun ctx _ ->
          let m = ctx.Ctx.mem in
          let raised =
            try
              Memory.set_int m (Memory.region_size m Memory.Data) 1;
              false
            with Invalid_argument _ -> true
          in
          Value.Bool raised);
      Obj_class.entry "heap_alloc" (fun ctx arg ->
          let off = Pheap.alloc (ctx.Ctx.pheap ()) (Value.to_int arg) in
          Value.Int off);
      Obj_class.entry "heap_free" (fun ctx arg ->
          Pheap.free (ctx.Ctx.pheap ()) (Value.to_int arg);
          Value.Unit);
      Obj_class.entry "heap_live" (fun ctx _ ->
          Value.Int (Pheap.allocated_bytes (ctx.Ctx.pheap ())));
      Obj_class.entry "vheap_get" (fun ctx _ ->
          Value.Int (Memory.get_int ctx.Ctx.mem ~region:Memory.Volatile 0));
      Obj_class.entry "vheap_set" (fun ctx arg ->
          Memory.set_int ctx.Ctx.mem ~region:Memory.Volatile 0
            (Value.to_int arg);
          Value.Unit);
    ]

let direct_invoke sys ?(node = sys.cluster.Cluster.compute_nodes.(0))
    ?(thread_id = 0) obj entry arg =
  Object_manager.invoke sys.om ~node ~thread_id ~origin:None ~txn:None ~obj
    ~entry arg

let test_object_memory () =
  with_system (fun sys ->
      Cluster.register_class sys.cluster memory_probe;
      let obj = Object_manager.create_object sys.om ~class_name:"memprobe" Value.Unit in
      ignore (direct_invoke sys obj "rw" Value.Unit);
      check_bool "bounds enforced" true
        (Value.to_bool (direct_invoke sys obj "bounds" Value.Unit)))

let test_pheap_alloc_free_reuse () =
  with_system (fun sys ->
      Cluster.register_class sys.cluster memory_probe;
      let obj = Object_manager.create_object sys.om ~class_name:"memprobe" Value.Unit in
      let a = Value.to_int (direct_invoke sys obj "heap_alloc" (Value.Int 100)) in
      let b = Value.to_int (direct_invoke sys obj "heap_alloc" (Value.Int 100)) in
      check_bool "distinct blocks" true (a <> b);
      check_int "live bytes" 200
        (Value.to_int (direct_invoke sys obj "heap_live" Value.Unit));
      ignore (direct_invoke sys obj "heap_free" (Value.Int a));
      check_int "live after free" 100
        (Value.to_int (direct_invoke sys obj "heap_live" Value.Unit));
      let c = Value.to_int (direct_invoke sys obj "heap_alloc" (Value.Int 80)) in
      check_int "freed block reused" a c)

let test_pheap_exhaustion () =
  with_system (fun sys ->
      Cluster.register_class sys.cluster memory_probe;
      let obj = Object_manager.create_object sys.om ~class_name:"memprobe" Value.Unit in
      let raised =
        try
          ignore (direct_invoke sys obj "heap_alloc" (Value.Int (3 * 8192)));
          false
        with Out_of_memory -> true
      in
      check_bool "out of memory" true raised)

let test_volatile_heap_not_shared_across_nodes () =
  with_system (fun sys ->
      Cluster.register_class sys.cluster memory_probe;
      let obj = Object_manager.create_object sys.om ~class_name:"memprobe" Value.Unit in
      let n0 = sys.cluster.Cluster.compute_nodes.(0) in
      let n1 = sys.cluster.Cluster.compute_nodes.(1) in
      ignore (direct_invoke sys ~node:n0 obj "vheap_set" (Value.Int 99));
      check_int "visible on same node" 99
        (Value.to_int (direct_invoke sys ~node:n0 obj "vheap_get" Value.Unit));
      check_int "fresh on other node (volatile)" 0
        (Value.to_int (direct_invoke sys ~node:n1 obj "vheap_get" Value.Unit)))

(* ------------------------------------------------------------------ *)
(* Object lifecycle and invocation *)

let test_rectangle_paper_example () =
  with_system (fun sys ->
      Cluster.register_class sys.cluster rectangle;
      let rect = Object_manager.create_object sys.om ~class_name:"rectangle" Value.Unit in
      ignore (direct_invoke sys rect "size" (Value.Pair (Value.Int 5, Value.Int 10)));
      (* the paper's example prints 50 *)
      check_int "area" 50 (Value.to_int (direct_invoke sys rect "area" Value.Unit)))

let test_persistence_across_nodes () =
  with_system (fun sys ->
      Cluster.register_class sys.cluster rectangle;
      let rect = Object_manager.create_object sys.om ~class_name:"rectangle" Value.Unit in
      let n0 = sys.cluster.Cluster.compute_nodes.(0) in
      let n1 = sys.cluster.Cluster.compute_nodes.(1) in
      ignore
        (direct_invoke sys ~node:n0 rect "size"
           (Value.Pair (Value.Int 6, Value.Int 7)));
      (* the object logically resides everywhere: another compute
         server sees the same persistent data through DSM *)
      check_int "area on other node" 42
        (Value.to_int (direct_invoke sys ~node:n1 rect "area" Value.Unit)))

let test_two_instances_are_independent () =
  with_system (fun sys ->
      Cluster.register_class sys.cluster rectangle;
      let r1 = Object_manager.create_object sys.om ~class_name:"rectangle" Value.Unit in
      let r2 = Object_manager.create_object sys.om ~class_name:"rectangle" Value.Unit in
      ignore (direct_invoke sys r1 "size" (Value.Pair (Value.Int 2, Value.Int 3)));
      ignore (direct_invoke sys r2 "size" (Value.Pair (Value.Int 10, Value.Int 10)));
      check_int "r1" 6 (Value.to_int (direct_invoke sys r1 "area" Value.Unit));
      check_int "r2" 100 (Value.to_int (direct_invoke sys r2 "area" Value.Unit)))

let test_constructor_runs () =
  with_system (fun sys ->
      let cls =
        Obj_class.define ~name:"counter"
          ~constructor:(fun ctx arg ->
            Memory.set_int ctx.Ctx.mem 0 (Value.to_int arg))
          [
            Obj_class.entry "get" (fun ctx _ ->
                Value.Int (Memory.get_int ctx.Ctx.mem 0));
          ]
      in
      Cluster.register_class sys.cluster cls;
      let obj = Object_manager.create_object sys.om ~class_name:"counter" (Value.Int 17) in
      check_int "constructor initialized" 17
        (Value.to_int (direct_invoke sys obj "get" Value.Unit)))

let test_errors () =
  with_system (fun sys ->
      Cluster.register_class sys.cluster rectangle;
      let rect = Object_manager.create_object sys.om ~class_name:"rectangle" Value.Unit in
      check_bool "no such entry" true
        (try
           ignore (direct_invoke sys rect "perimeter" Value.Unit);
           false
         with Object_manager.No_entry _ -> true);
      check_bool "no such class" true
        (try
           ignore
             (Object_manager.create_object sys.om ~class_name:"nonesuch" Value.Unit);
           false
         with Object_manager.No_class _ -> true);
      let bogus = Ra.Sysname.fresh (Ra.Sysname.make_gen ~node:77) in
      check_bool "no such object" true
        (try
           ignore (direct_invoke sys bogus "area" Value.Unit);
           false
         with Object_manager.No_object _ -> true))

let test_delete_object () =
  with_system (fun sys ->
      Cluster.register_class sys.cluster rectangle;
      let rect = Object_manager.create_object sys.om ~class_name:"rectangle" Value.Unit in
      ignore (direct_invoke sys rect "size" (Value.Pair (Value.Int 1, Value.Int 1)));
      Object_manager.delete_object sys.om rect;
      check_bool "deleted object gone" true
        (try
           ignore (direct_invoke sys rect "area" Value.Unit);
           false
         with Object_manager.No_object _ -> true))

let test_nested_invocation () =
  with_system (fun sys ->
      Cluster.register_class sys.cluster rectangle;
      let doubler =
        Obj_class.define ~name:"doubler"
          [
            Obj_class.entry "double_area" (fun ctx arg ->
                let rect = Value.to_sysname arg in
                let area =
                  Value.to_int (ctx.Ctx.invoke ~obj:rect ~entry:"area" Value.Unit)
                in
                Value.Int (2 * area));
          ]
      in
      Cluster.register_class sys.cluster doubler;
      let rect = Object_manager.create_object sys.om ~class_name:"rectangle" Value.Unit in
      let dbl = Object_manager.create_object sys.om ~class_name:"doubler" Value.Unit in
      ignore (direct_invoke sys rect "size" (Value.Pair (Value.Int 3, Value.Int 4)));
      check_int "nested invocation" 24
        (Value.to_int
           (direct_invoke sys dbl "double_area" (Value.of_sysname rect))))

let test_remote_invocation () =
  with_system (fun sys ->
      Cluster.register_class sys.cluster rectangle;
      let rect = Object_manager.create_object sys.om ~class_name:"rectangle" Value.Unit in
      let n0 = sys.cluster.Cluster.compute_nodes.(0) in
      let n1 = sys.cluster.Cluster.compute_nodes.(1) in
      ignore
        (direct_invoke sys ~node:n0 rect "size"
           (Value.Pair (Value.Int 8, Value.Int 8)));
      let v =
        Object_manager.invoke_remote sys.om ~from:n0 ~target:n1.Ra.Node.id
          ~thread_id:1 ~origin:None ~txn:None ~obj:rect ~entry:"area" Value.Unit
      in
      check_int "remote result" 64 (Value.to_int v);
      (* a remote failure surfaces as Invoke_error *)
      check_bool "remote error" true
        (try
           ignore
             (Object_manager.invoke_remote sys.om ~from:n0 ~target:n1.Ra.Node.id
                ~thread_id:1 ~origin:None ~txn:None ~obj:rect
                ~entry:"nonesuch" Value.Unit);
           false
         with Ctx.Invoke_error _ -> true))

let test_same_node_bypass () =
  with_system (fun sys ->
      Cluster.register_class sys.cluster rectangle;
      let rect = Object_manager.create_object sys.om ~class_name:"rectangle" Value.Unit in
      let n0 = sys.cluster.Cluster.compute_nodes.(0) in
      ignore
        (direct_invoke sys ~node:n0 rect "size"
           (Value.Pair (Value.Int 5, Value.Int 6)));
      (* dispatching to our own node must skip RaTP: no new frames on
         the wire (the object is already resident), and the bypass
         counter ticks *)
      let before_frames =
        Net.Ethernet.frames_sent sys.cluster.Cluster.ether
      in
      let before_local = Object_manager.local_invocations sys.om in
      let v =
        Object_manager.invoke_remote sys.om ~from:n0 ~target:n0.Ra.Node.id
          ~thread_id:1 ~origin:None ~txn:None ~obj:rect ~entry:"area"
          Value.Unit
      in
      check_int "bypass result" 30 (Value.to_int v);
      check_int "one bypass counted" (before_local + 1)
        (Object_manager.local_invocations sys.om);
      check_int "no frames on the wire" before_frames
        (Net.Ethernet.frames_sent sys.cluster.Cluster.ether);
      (* failures keep remote semantics: Invoke_error, not raw raise *)
      check_bool "bypass error matches remote path" true
        (try
           ignore
             (Object_manager.invoke_remote sys.om ~from:n0
                ~target:n0.Ra.Node.id ~thread_id:1 ~origin:None ~txn:None
                ~obj:rect ~entry:"nonesuch" Value.Unit);
           false
         with Ctx.Invoke_error _ -> true))

let test_warm_vs_cold_invocation () =
  with_system (fun sys ->
      Cluster.register_class sys.cluster rectangle;
      let rect = Object_manager.create_object sys.om ~class_name:"rectangle" Value.Unit in
      let n1 = sys.cluster.Cluster.compute_nodes.(1) in
      (* cold: n1 has never seen this object *)
      let t0 = Sim.now () in
      ignore (direct_invoke sys ~node:n1 rect "area" Value.Unit);
      let cold = Time.to_ms_f (Time.diff (Sim.now ()) t0) in
      let t1 = Sim.now () in
      ignore (direct_invoke sys ~node:n1 rect "area" Value.Unit);
      let warm = Time.to_ms_f (Time.diff (Sim.now ()) t1) in
      check_bool
        (Printf.sprintf "warm %.1fms in [4, 12]" warm)
        true
        (warm >= 4.0 && warm <= 12.0);
      check_bool
        (Printf.sprintf "cold %.1fms much slower" cold)
        true
        (cold > 5.0 *. warm))

(* ------------------------------------------------------------------ *)
(* Per-invocation and per-thread memory *)

let scratch_probe =
  Obj_class.define ~name:"scratch"
    [
      Obj_class.entry "set_thread_mem" (fun ctx arg ->
          Hashtbl.replace ctx.Ctx.per_thread "k" arg;
          Value.Unit);
      Obj_class.entry "get_thread_mem" (fun ctx _ ->
          match Hashtbl.find_opt ctx.Ctx.per_thread "k" with
          | Some v -> v
          | None -> Value.Unit);
      Obj_class.entry "per_invocation_is_fresh" (fun ctx _ ->
          let fresh = not (Hashtbl.mem ctx.Ctx.per_invocation "k") in
          Hashtbl.replace ctx.Ctx.per_invocation "k" Value.Unit;
          Value.Bool fresh);
    ]

let test_memory_lifetimes () =
  with_system (fun sys ->
      Cluster.register_class sys.cluster scratch_probe;
      let obj = Object_manager.create_object sys.om ~class_name:"scratch" Value.Unit in
      (* per-thread memory persists across invocations of one thread *)
      ignore (direct_invoke sys ~thread_id:1 obj "set_thread_mem" (Value.Int 5));
      check_int "same thread sees it" 5
        (Value.to_int (direct_invoke sys ~thread_id:1 obj "get_thread_mem" Value.Unit));
      check_bool "other thread does not" true
        (direct_invoke sys ~thread_id:2 obj "get_thread_mem" Value.Unit = Value.Unit);
      (* per-invocation memory is fresh every time *)
      check_bool "fresh 1" true
        (Value.to_bool
           (direct_invoke sys ~thread_id:1 obj "per_invocation_is_fresh" Value.Unit));
      check_bool "fresh 2" true
        (Value.to_bool
           (direct_invoke sys ~thread_id:1 obj "per_invocation_is_fresh" Value.Unit)))

(* ------------------------------------------------------------------ *)
(* Threads *)

let test_thread_run_and_join () =
  with_system (fun sys ->
      Cluster.register_class sys.cluster rectangle;
      let rect = Object_manager.create_object sys.om ~class_name:"rectangle" Value.Unit in
      let t1 =
        Thread.start sys.om ~obj:rect ~entry:"size"
          (Value.Pair (Value.Int 9, Value.Int 9))
      in
      (match Thread.join t1 with Value.Unit -> () | _ -> Alcotest.fail "size reply");
      let t2 = Thread.start sys.om ~obj:rect ~entry:"area" Value.Unit in
      check_int "area via thread" 81 (Value.to_int (Thread.join t2));
      check_bool "visited recorded" true
        (List.exists (Ra.Sysname.equal rect) (Thread.visited sys.om t2)))

let test_thread_failure_surfaces () =
  with_system (fun sys ->
      let bomb =
        Obj_class.define ~name:"bomb"
          [ Obj_class.entry "go" (fun _ _ -> failwith "boom") ]
      in
      Cluster.register_class sys.cluster bomb;
      let obj = Object_manager.create_object sys.om ~class_name:"bomb" Value.Unit in
      let t = Thread.start sys.om ~obj ~entry:"go" Value.Unit in
      check_bool "failure propagates" true
        (match Thread.try_join t with
        | Error (Failure msg) -> String.equal msg "boom"
        | Ok _ | Error _ -> false))

let test_thread_kill () =
  with_system (fun sys ->
      let slow =
        Obj_class.define ~name:"slowpoke"
          [
            Obj_class.entry "spin" (fun ctx _ ->
                ctx.Ctx.compute (Time.sec 30);
                Value.Unit);
          ]
      in
      Cluster.register_class sys.cluster slow;
      let obj = Object_manager.create_object sys.om ~class_name:"slowpoke" Value.Unit in
      let t = Thread.start sys.om ~obj ~entry:"spin" Value.Unit in
      Sim.sleep (Time.ms 100);
      Thread.kill t;
      (match Thread.try_join t with
      | Error Thread.Cancelled -> ()
      | Ok _ | Error _ -> Alcotest.fail "killed thread must report Cancelled");
      check_bool "killed well before completion" true (Sim.now () < Time.sec 1))

let test_thread_node_crash_resolves_join () =
  (* the thread's machine crashes: joiners must not hang forever *)
  with_system (fun sys ->
      let slow =
        Obj_class.define ~name:"slowpoke2"
          [
            Obj_class.entry "spin" (fun ctx _ ->
                ctx.Ctx.compute (Time.sec 30);
                Value.Unit);
          ]
      in
      Cluster.register_class sys.cluster slow;
      let obj = Object_manager.create_object sys.om ~class_name:"slowpoke2" Value.Unit in
      let t = Thread.start sys.om ~obj ~entry:"spin" Value.Unit in
      Sim.sleep (Time.ms 100);
      (match Cluster.node_by_id sys.cluster (Thread.node t) with
      | Some node -> Ra.Node.crash node
      | None -> Alcotest.fail "node missing");
      match Thread.try_join t with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "thread on a crashed machine cannot succeed")

let test_thread_scheduling_round_robin () =
  with_system ~compute:2 (fun sys ->
      Cluster.register_class sys.cluster rectangle;
      let rect = Object_manager.create_object sys.om ~class_name:"rectangle" Value.Unit in
      let t1 = Thread.start sys.om ~obj:rect ~entry:"area" Value.Unit in
      let t2 = Thread.start sys.om ~obj:rect ~entry:"area" Value.Unit in
      check_bool "spread over servers" true (Thread.node t1 <> Thread.node t2);
      ignore (Thread.join t1);
      ignore (Thread.join t2);
      let pinned =
        Thread.start sys.om ~on:(Thread.node t1) ~obj:rect ~entry:"area" Value.Unit
      in
      check_int "pinned placement" (Thread.node t1) (Thread.node pinned);
      ignore (Thread.join pinned))

let test_least_loaded_scheduling () =
  with_system ~compute:3 (fun sys ->
      sys.cluster.Cluster.scheduler <- `Least_loaded;
      let slow =
        Obj_class.define ~name:"hog"
          [
            Obj_class.entry "spin" (fun ctx _ ->
                ctx.Ctx.compute (Time.sec 2);
                Value.Unit);
            Obj_class.entry "quick" (fun _ _ -> Value.Unit);
          ]
      in
      Cluster.register_class sys.cluster slow;
      let obj = Object_manager.create_object sys.om ~class_name:"hog" Value.Unit in
      (* load up the first two compute servers *)
      let busy1 =
        Thread.start sys.om
          ~on:sys.cluster.Cluster.compute_nodes.(0).Ra.Node.id
          ~obj ~entry:"spin" Value.Unit
      in
      let busy2 =
        Thread.start sys.om
          ~on:sys.cluster.Cluster.compute_nodes.(1).Ra.Node.id
          ~obj ~entry:"spin" Value.Unit
      in
      Sim.sleep (Time.ms 300);
      (* the scheduler must route new work to the idle third server *)
      let t = Thread.start sys.om ~obj ~entry:"quick" Value.Unit in
      check_int "placed on the idle server"
        sys.cluster.Cluster.compute_nodes.(2).Ra.Node.id (Thread.node t);
      ignore (Thread.join t);
      ignore (Thread.join busy1);
      ignore (Thread.join busy2))

let test_terminal_output_routing () =
  with_system (fun sys ->
      let greeter =
        Obj_class.define ~name:"greeter"
          [
            Obj_class.entry "hello" (fun ctx arg ->
                ctx.Ctx.print ("hello " ^ Value.to_string arg);
                Value.Unit);
          ]
      in
      Cluster.register_class sys.cluster greeter;
      let obj = Object_manager.create_object sys.om ~class_name:"greeter" Value.Unit in
      let wk, term = sys.cluster.Cluster.workstations.(0) in
      let t =
        Thread.start sys.om ~origin:wk.Ra.Node.id ~obj ~entry:"hello"
          (Value.Str "world")
      in
      ignore (Thread.join t);
      (* output lands at the originating workstation, wherever the
         thread executed *)
      Sim.sleep (Time.ms 50);
      Alcotest.(check (list string))
        "terminal got it" [ "hello world" ] (Terminal.output term))

let test_object_concurrency_control () =
  with_system ~compute:1 (fun sys ->
      let counter =
        Obj_class.define ~name:"sync-counter"
          [
            Obj_class.entry "incr" (fun ctx _ ->
                let m = ctx.Ctx.obj_mutex "lock" in
                Sim.Mutex.with_lock m (fun () ->
                    let v = Memory.get_int ctx.Ctx.mem 0 in
                    ctx.Ctx.compute (Time.ms 1);
                    Memory.set_int ctx.Ctx.mem 0 (v + 1));
                Value.Unit);
            Obj_class.entry "get" (fun ctx _ ->
                Value.Int (Memory.get_int ctx.Ctx.mem 0));
          ]
      in
      Cluster.register_class sys.cluster counter;
      let obj =
        Object_manager.create_object sys.om ~class_name:"sync-counter" Value.Unit
      in
      let threads =
        List.init 5 (fun _ -> Thread.start sys.om ~obj ~entry:"incr" Value.Unit)
      in
      List.iter (fun t -> ignore (Thread.join t)) threads;
      check_int "no lost updates" 5
        (Value.to_int (direct_invoke sys obj "get" Value.Unit)))

(* ------------------------------------------------------------------ *)
(* Name server *)

let test_name_server () =
  with_system (fun sys ->
      Cluster.register_class sys.cluster rectangle;
      let rect = Object_manager.create_object sys.om ~class_name:"rectangle" Value.Unit in
      Name_server.bind sys.om ~name:"Rect01" rect;
      (match Name_server.lookup sys.om "Rect01" with
      | Some s -> check_bool "bound" true (Ra.Sysname.equal s rect)
      | None -> Alcotest.fail "lookup failed");
      check_bool "missing name" true (Name_server.lookup sys.om "nope" = None);
      (* rebinding replaces *)
      let rect2 = Object_manager.create_object sys.om ~class_name:"rectangle" Value.Unit in
      Name_server.bind sys.om ~name:"Rect01" rect2;
      (match Name_server.lookup sys.om "Rect01" with
      | Some s -> check_bool "rebound" true (Ra.Sysname.equal s rect2)
      | None -> Alcotest.fail "rebind lost");
      check_int "one binding listed" 1 (List.length (Name_server.bindings sys.om));
      Name_server.unbind sys.om "Rect01";
      check_bool "unbound" true (Name_server.lookup sys.om "Rect01" = None))

let test_bind_then_invoke_like_the_paper () =
  (* rect.bind("Rect01"); rect.size(5,10); print rect.area() = 50 *)
  with_system (fun sys ->
      Cluster.register_class sys.cluster rectangle;
      let rect = Object_manager.create_object sys.om ~class_name:"rectangle" Value.Unit in
      Name_server.bind sys.om ~name:"Rect01" rect;
      match Name_server.lookup sys.om "Rect01" with
      | None -> Alcotest.fail "bind/lookup"
      | Some bound ->
          ignore
            (direct_invoke sys bound "size" (Value.Pair (Value.Int 5, Value.Int 10)));
          check_int "prints 50" 50
            (Value.to_int (direct_invoke sys bound "area" Value.Unit)))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "clouds"
    [
      qsuite "value-props" [ prop_value_roundtrip; prop_value_size_matches ];
      ( "value",
        [ Alcotest.test_case "accessors" `Quick test_value_accessors ] );
      ( "memory",
        [
          Alcotest.test_case "typed access" `Quick test_object_memory;
          Alcotest.test_case "pheap alloc/free/reuse" `Quick
            test_pheap_alloc_free_reuse;
          Alcotest.test_case "pheap exhaustion" `Quick test_pheap_exhaustion;
          Alcotest.test_case "volatile heap per node" `Quick
            test_volatile_heap_not_shared_across_nodes;
          Alcotest.test_case "memory lifetimes" `Quick test_memory_lifetimes;
        ] );
      ( "objects",
        [
          Alcotest.test_case "rectangle (paper example)" `Quick
            test_rectangle_paper_example;
          Alcotest.test_case "persistence across nodes" `Quick
            test_persistence_across_nodes;
          Alcotest.test_case "instances independent" `Quick
            test_two_instances_are_independent;
          Alcotest.test_case "constructor" `Quick test_constructor_runs;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "delete" `Quick test_delete_object;
          Alcotest.test_case "nested invocation" `Quick test_nested_invocation;
          Alcotest.test_case "remote invocation" `Quick test_remote_invocation;
          Alcotest.test_case "same-node bypass" `Quick test_same_node_bypass;
          Alcotest.test_case "warm vs cold invocation" `Quick
            test_warm_vs_cold_invocation;
        ] );
      ( "threads",
        [
          Alcotest.test_case "run and join" `Quick test_thread_run_and_join;
          Alcotest.test_case "failure surfaces" `Quick
            test_thread_failure_surfaces;
          Alcotest.test_case "kill" `Quick test_thread_kill;
          Alcotest.test_case "node crash resolves join" `Quick
            test_thread_node_crash_resolves_join;
          Alcotest.test_case "scheduling" `Quick
            test_thread_scheduling_round_robin;
          Alcotest.test_case "least-loaded scheduling" `Quick
            test_least_loaded_scheduling;
          Alcotest.test_case "terminal routing" `Quick
            test_terminal_output_routing;
          Alcotest.test_case "concurrency control" `Quick
            test_object_concurrency_control;
        ] );
      ( "names",
        [
          Alcotest.test_case "bind/lookup/unbind" `Quick test_name_server;
          Alcotest.test_case "paper workflow" `Quick
            test_bind_then_invoke_like_the_paper;
        ] );
    ]
