(* Tests for the application objects: distributed sorter, bank,
   kv-store, file and port simulation, and the active sensor. *)

open Sim
open Clouds

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

type env = { sys : Clouds.system; mgr : Atomicity.Manager.t }

let with_env ?(compute = 4) ?(data = 2) f =
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let sys = Clouds.boot eng ~compute ~data ~workstations:1 () in
      let mgr =
        Atomicity.Manager.install sys.om ~deadlock_timeout:(Time.ms 300)
          ~max_retries:8 ()
      in
      f { sys; mgr })

(* ------------------------------------------------------------------ *)
(* Sorter *)

let test_sorter_correctness () =
  with_env (fun env ->
      let obj = Apps.Sorter.create env.sys.om ~capacity:4096 () in
      Apps.Sorter.fill env.sys.om ~obj ~n:4096 ~seed:7;
      let sum_before = Apps.Sorter.checksum env.sys.om ~obj in
      check_bool "unsorted initially" false (Apps.Sorter.is_sorted env.sys.om ~obj);
      let run = Apps.Sorter.distributed_sort env.sys.om ~obj ~workers:4 in
      check_bool "sorted" true (Apps.Sorter.is_sorted env.sys.om ~obj);
      check_int "same multiset" sum_before (Apps.Sorter.checksum env.sys.om ~obj);
      check_bool "pages moved between nodes" true (run.Apps.Sorter.remote_page_moves > 0))

let test_sorter_single_worker () =
  with_env (fun env ->
      let obj = Apps.Sorter.create env.sys.om ~capacity:1024 () in
      Apps.Sorter.fill env.sys.om ~obj ~n:1024 ~seed:3;
      let _run = Apps.Sorter.distributed_sort env.sys.om ~obj ~workers:1 in
      check_bool "sorted" true (Apps.Sorter.is_sorted env.sys.om ~obj))

let test_sorter_parallel_sort_phase_speedup () =
  (* the parallel phase must speed up with workers; total speedup is
     bounded by the sequential merge (the paper's
     computation-vs-communication trade-off) *)
  let sort_phase workers =
    with_env (fun env ->
        let obj = Apps.Sorter.create env.sys.om ~capacity:16384 () in
        Apps.Sorter.fill env.sys.om ~obj ~n:16384 ~seed:11;
        let run = Apps.Sorter.distributed_sort env.sys.om ~obj ~workers in
        check_bool "sorted" true (Apps.Sorter.is_sorted env.sys.om ~obj);
        run.Apps.Sorter.sort_ms)
  in
  let t1 = sort_phase 1 and t4 = sort_phase 4 in
  check_bool
    (Printf.sprintf "sort phase speeds up (%.0fms -> %.0fms)" t1 t4)
    true (t4 < t1)

let test_sorter_odd_sizes () =
  with_env (fun env ->
      let obj = Apps.Sorter.create env.sys.om ~capacity:1000 () in
      Apps.Sorter.fill env.sys.om ~obj ~n:777 ~seed:5;
      ignore (Apps.Sorter.distributed_sort env.sys.om ~obj ~workers:3);
      check_bool "sorted" true (Apps.Sorter.is_sorted env.sys.om ~obj))

(* ------------------------------------------------------------------ *)
(* Bank *)

let test_bank_deposit_modes () =
  with_env (fun env ->
      let acct = Apps.Bank.open_account env.sys.om ~balance:10 () in
      check_int "initial (constructor arg)" 10 (Apps.Bank.balance env.sys.om acct);
      check_int "gcp" 15 (Apps.Bank.deposit env.sys.om ~mode:Obj_class.Gcp acct 5);
      check_int "lcp" 20 (Apps.Bank.deposit env.sys.om ~mode:Obj_class.Lcp acct 5);
      check_int "s" 25 (Apps.Bank.deposit env.sys.om ~mode:Obj_class.S acct 5);
      check_int "final" 25 (Apps.Bank.balance env.sys.om acct))

let test_bank_transfer () =
  with_env (fun env ->
      let a = Apps.Bank.open_account env.sys.om ~home:1 ~balance:100 () in
      let b = Apps.Bank.open_account env.sys.om ~home:2 ~balance:0 () in
      let office = Apps.Bank.create_office env.sys.om in
      Apps.Bank.transfer env.sys.om ~office ~from_acct:a ~to_acct:b 40;
      check_int "debited" 60 (Apps.Bank.balance env.sys.om a);
      check_int "credited" 40 (Apps.Bank.balance env.sys.om b))

let test_bank_insufficient_rolls_back () =
  with_env (fun env ->
      let a = Apps.Bank.open_account env.sys.om ~balance:10 () in
      let b = Apps.Bank.open_account env.sys.om ~balance:0 () in
      let office = Apps.Bank.create_office env.sys.om in
      check_bool "raises" true
        (try
           Apps.Bank.transfer env.sys.om ~office ~from_acct:a ~to_acct:b 50;
           false
         with Apps.Bank.Insufficient -> true);
      check_int "a unchanged" 10 (Apps.Bank.balance env.sys.om a);
      check_int "b unchanged" 0 (Apps.Bank.balance env.sys.om b))

let test_bank_concurrent_transfers_conserve_money () =
  with_env (fun env ->
      let a = Apps.Bank.open_account env.sys.om ~home:1 ~balance:100 () in
      let b = Apps.Bank.open_account env.sys.om ~home:2 ~balance:100 () in
      let office = Apps.Bank.create_office env.sys.om in
      let mk from_acct to_acct amount =
        Thread.start env.sys.om ~obj:office ~entry:"transfer"
          (Value.List
             [ Value.of_sysname from_acct; Value.of_sysname to_acct;
               Value.Int amount ])
      in
      let threads =
        [ mk a b 10; mk b a 20; mk a b 5; mk b a 15; mk a b 25 ]
      in
      List.iter
        (fun th ->
          match Thread.try_join th with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "transfer failed: %s" (Printexc.to_string e))
        threads;
      let total =
        Apps.Bank.balance env.sys.om a + Apps.Bank.balance env.sys.om b
      in
      check_int "money conserved" 200 total)

(* ------------------------------------------------------------------ *)
(* KV store *)

let test_kv_basic () =
  with_env (fun env ->
      let kv = Apps.Kv_store.create env.sys.om in
      check_bool "missing" true (Apps.Kv_store.get env.sys.om kv "x" = None);
      Apps.Kv_store.put env.sys.om kv "x" (Value.Int 1);
      Apps.Kv_store.put env.sys.om kv "y" (Value.Str "hello");
      check_bool "x" true
        (Apps.Kv_store.get env.sys.om kv "x" = Some (Value.Int 1));
      check_bool "y" true
        (Apps.Kv_store.get env.sys.om kv "y" = Some (Value.Str "hello"));
      check_int "count" 2 (Apps.Kv_store.count env.sys.om kv);
      (* overwrite *)
      Apps.Kv_store.put env.sys.om kv "x" (Value.Int 2);
      check_bool "overwritten" true
        (Apps.Kv_store.get env.sys.om kv "x" = Some (Value.Int 2));
      check_int "count stable" 2 (Apps.Kv_store.count env.sys.om kv);
      check_bool "delete" true (Apps.Kv_store.delete env.sys.om kv "x");
      check_bool "delete missing" false (Apps.Kv_store.delete env.sys.om kv "x");
      check_int "count after delete" 1 (Apps.Kv_store.count env.sys.om kv))

let test_kv_many_keys () =
  with_env (fun env ->
      let kv = Apps.Kv_store.create env.sys.om in
      for i = 1 to 100 do
        Apps.Kv_store.put env.sys.om kv
          (Printf.sprintf "key-%d" i)
          (Value.Int (i * i))
      done;
      check_int "all present" 100 (Apps.Kv_store.count env.sys.om kv);
      check_bool "sample" true
        (Apps.Kv_store.get env.sys.om kv "key-37" = Some (Value.Int 1369));
      check_int "keys listed" 100 (List.length (Apps.Kv_store.keys env.sys.om kv)))

let test_kv_durable_put () =
  with_env (fun env ->
      let kv = Apps.Kv_store.create env.sys.om in
      Apps.Kv_store.put_durable env.sys.om kv "critical" (Value.Int 99);
      check_bool "readable" true
        (Apps.Kv_store.get env.sys.om kv "critical" = Some (Value.Int 99));
      check_bool "committed" true (Atomicity.Manager.commits env.mgr >= 1))

let test_kv_visible_across_nodes () =
  with_env (fun env ->
      let kv = Apps.Kv_store.create env.sys.om in
      let n0 = env.sys.cluster.Cluster.compute_nodes.(0) in
      let n1 = env.sys.cluster.Cluster.compute_nodes.(1) in
      let put_on node k v =
        ignore
          (Object_manager.invoke env.sys.om ~node ~thread_id:0 ~origin:None
             ~txn:None ~obj:kv ~entry:"put"
             (Value.Pair (Value.Str k, v)))
      in
      let get_on node k =
        match
          Object_manager.invoke env.sys.om ~node ~thread_id:0 ~origin:None
            ~txn:None ~obj:kv ~entry:"get" (Value.Str k)
        with
        | Value.Pair (Value.Bool true, v) -> Some v
        | _ -> None
      in
      put_on n0 "shared" (Value.Int 42);
      check_bool "other node sees it" true
        (get_on n1 "shared" = Some (Value.Int 42)))

(* ------------------------------------------------------------------ *)
(* File objects *)

let test_file_read_write () =
  with_env (fun env ->
      let f = Apps.File_obj.create env.sys.om ~capacity:65536 in
      check_int "empty" 0 (Apps.File_obj.size env.sys.om f);
      Apps.File_obj.write env.sys.om f ~off:0 "hello world";
      check_int "size" 11 (Apps.File_obj.size env.sys.om f);
      Alcotest.(check string)
        "read back" "hello world"
        (Apps.File_obj.read env.sys.om f ~off:0 ~len:11);
      Alcotest.(check string)
        "partial" "world"
        (Apps.File_obj.read env.sys.om f ~off:6 ~len:100);
      Apps.File_obj.append env.sys.om f "!";
      check_int "appended" 12 (Apps.File_obj.size env.sys.om f);
      Apps.File_obj.truncate env.sys.om f 5;
      Alcotest.(check string)
        "truncated" "hello"
        (Apps.File_obj.read env.sys.om f ~off:0 ~len:100))

let test_file_large_spans_pages () =
  with_env (fun env ->
      let f = Apps.File_obj.create env.sys.om ~capacity:65536 in
      let big = String.init 20_000 (fun i -> Char.chr (65 + (i mod 26))) in
      Apps.File_obj.write env.sys.om f ~off:0 big;
      Alcotest.(check string)
        "page-spanning roundtrip" big
        (Apps.File_obj.read env.sys.om f ~off:0 ~len:20_000))

(* ------------------------------------------------------------------ *)
(* Ports *)

let test_port_fifo () =
  with_env (fun env ->
      let p = Apps.Port.create env.sys.om in
      Apps.Port.send env.sys.om p (Value.Int 1);
      Apps.Port.send env.sys.om p (Value.Int 2);
      check_int "pending" 2 (Apps.Port.pending env.sys.om p);
      check_bool "first" true (Apps.Port.receive env.sys.om p = Value.Int 1);
      check_bool "second" true (Apps.Port.receive env.sys.om p = Value.Int 2);
      check_bool "empty" true (Apps.Port.try_receive env.sys.om p = None))

let test_port_blocking_receive () =
  with_env (fun env ->
      let p = Apps.Port.create env.sys.om in
      let node = env.sys.cluster.Cluster.compute_nodes.(0).Ra.Node.id in
      let got = Ivar.create () in
      ignore
        (Sim.spawn "receiver" (fun () ->
             Ivar.fill got (Apps.Port.receive env.sys.om ~on:node p)));
      Sim.sleep (Time.ms 50);
      check_bool "still blocked" true (Ivar.peek got = None);
      (* the sender must share the receiver's compute server *)
      ignore
        (Object_manager.invoke env.sys.om
           ~node:env.sys.cluster.Cluster.compute_nodes.(0)
           ~thread_id:0 ~origin:None ~txn:None ~obj:p ~entry:"send"
           (Value.Str "ping"));
      check_bool "woken with the message" true (Ivar.read got = Value.Str "ping"))

(* ------------------------------------------------------------------ *)
(* Sensor (active object) *)

(* ------------------------------------------------------------------ *)
(* Persistent Lisp environment *)

let test_lisp_basics () =
  with_env (fun env ->
      let l = Apps.Lisp_env.create env.sys.om in
      Alcotest.(check string) "arith" "6" (Apps.Lisp_env.eval env.sys.om l "(+ 1 2 3)");
      Alcotest.(check string) "nesting" "14"
        (Apps.Lisp_env.eval env.sys.om l "(+ 2 (* 3 4))");
      Alcotest.(check string) "quote" "(1 2 3)"
        (Apps.Lisp_env.eval env.sys.om l "'(1 2 3)");
      Alcotest.(check string) "let" "30"
        (Apps.Lisp_env.eval env.sys.om l "(let ((x 10) (y 20)) (+ x y))");
      Alcotest.(check string) "lists" "(1 2 3 4)"
        (Apps.Lisp_env.eval env.sys.om l "(append (list 1 2) (list 3 4))"))

let test_lisp_persistence_and_recursion () =
  with_env (fun env ->
      let l = Apps.Lisp_env.create env.sys.om in
      (* the definition persists in object memory between invocations *)
      ignore
        (Apps.Lisp_env.eval env.sys.om l
           "(define (fact n) (if (<= n 1) 1 (* n (fact (- n 1)))))");
      Alcotest.(check string) "recursion over persisted definition" "3628800"
        (Apps.Lisp_env.eval env.sys.om l "(fact 10)");
      ignore (Apps.Lisp_env.eval env.sys.om l "(define counter 0)");
      ignore (Apps.Lisp_env.eval env.sys.om l "(set! counter (+ counter 1))");
      ignore (Apps.Lisp_env.eval env.sys.om l "(set! counter (+ counter 1))");
      Alcotest.(check string) "state accumulates" "2"
        (Apps.Lisp_env.eval env.sys.om l "counter");
      check_bool "bindings listed" true
        (List.mem "fact" (Apps.Lisp_env.bindings env.sys.om l)))

let test_lisp_closures () =
  with_env (fun env ->
      let l = Apps.Lisp_env.create env.sys.om in
      ignore
        (Apps.Lisp_env.eval env.sys.om l
           "(define make-adder (lambda (x) (lambda (y) (+ x y))))");
      ignore (Apps.Lisp_env.eval env.sys.om l "(define add5 (make-adder 5))");
      (* the closure - captured x included - survived persistence *)
      Alcotest.(check string) "closure applies" "12"
        (Apps.Lisp_env.eval env.sys.om l "(add5 7)"))

let test_lisp_environment_spans_nodes () =
  with_env (fun env ->
      let l = Apps.Lisp_env.create env.sys.om in
      let invoke_on node src =
        Clouds.Value.to_string
          (Object_manager.invoke env.sys.om ~node ~thread_id:0 ~origin:None
             ~txn:None ~obj:l ~entry:"eval" (Clouds.Value.Str src))
      in
      let n0 = env.sys.cluster.Cluster.compute_nodes.(0) in
      let n1 = env.sys.cluster.Cluster.compute_nodes.(1) in
      ignore (invoke_on n0 "(define greeting \"hello from node A\")");
      Alcotest.(check string)
        "environment is the same everywhere" "\"hello from node A\""
        (invoke_on n1 "greeting"))

let test_lisp_remote_eval () =
  with_env (fun env ->
      let a = Apps.Lisp_env.create env.sys.om in
      let b = Apps.Lisp_env.create env.sys.om in
      ignore (Apps.Lisp_env.eval env.sys.om a "(define (square n) (* n n))");
      (* inter-environment operation: B asks A to evaluate *)
      let src =
        Printf.sprintf "(remote \"%s\" \"(square 9)\")" (Ra.Sysname.to_string a)
      in
      Alcotest.(check string) "remote evaluation" "81"
        (Apps.Lisp_env.eval env.sys.om b src);
      (* and B's own environment is untouched *)
      check_bool "b has no square" true
        (not (List.mem "square" (Apps.Lisp_env.bindings env.sys.om b))))

let test_lisp_errors () =
  with_env (fun env ->
      let l = Apps.Lisp_env.create env.sys.om in
      let raises src =
        try
          ignore (Apps.Lisp_env.eval env.sys.om l src);
          false
        with Apps.Lisp_env.Lisp_error _ -> true
      in
      check_bool "unbound" true (raises "nonexistent");
      check_bool "unterminated" true (raises "(+ 1 2");
      check_bool "division by zero" true (raises "(/ 1 0)");
      check_bool "arity" true (raises "((lambda (x) x))");
      (* a failed evaluation must not corrupt the environment *)
      ignore (Apps.Lisp_env.eval env.sys.om l "(define ok 42)");
      check_bool "env intact after errors" true
        (String.equal (Apps.Lisp_env.eval env.sys.om l "ok") "42"))

let test_lisp_durable_eval () =
  with_env (fun env ->
      let l = Apps.Lisp_env.create env.sys.om in
      let commits0 = Atomicity.Manager.commits env.mgr in
      ignore (Apps.Lisp_env.eval_durable env.sys.om l "(define vital 7)");
      check_bool "committed" true (Atomicity.Manager.commits env.mgr > commits0);
      Alcotest.(check string) "readable" "7"
        (Apps.Lisp_env.eval env.sys.om l "vital"))

let alarm_cls =
  Obj_class.define ~name:"alarm"
    [
      Obj_class.entry "notify" (fun ctx _arg ->
          Memory.set_int ctx.Ctx.mem 0 (Memory.get_int ctx.Ctx.mem 0 + 1);
          Value.Unit);
      Obj_class.entry "alarms" (fun ctx _ -> Value.Int (Memory.get_int ctx.Ctx.mem 0));
    ]

let test_sensor_samples () =
  with_env (fun env ->
      Apps.Sensor.register env.sys.om ~interval:(Time.ms 20) ~threshold:60 ();
      Cluster.register_class env.sys.cluster alarm_cls;
      let alarm = Object_manager.create_object env.sys.om ~class_name:"alarm" Value.Unit in
      let sensor = Apps.Sensor.create env.sys.om ~alarm () in
      Sim.sleep (Time.ms 500);
      let n = Apps.Sensor.sample_count env.sys.om sensor in
      check_bool (Printf.sprintf "daemon sampled (%d)" n) true (n >= 20);
      check_bool "latest available" true (Apps.Sensor.latest env.sys.om sensor <> None);
      let hist = Apps.Sensor.history env.sys.om sensor ~n:10 in
      check_int "history length" 10 (List.length hist);
      check_bool "readings in range" true (List.for_all (fun r -> r >= 0 && r <= 100) hist);
      (* readings above the threshold notified the alarm object *)
      let alarms =
        Value.to_int
          (Object_manager.invoke env.sys.om
             ~node:env.sys.cluster.Cluster.compute_nodes.(0)
             ~thread_id:0 ~origin:None ~txn:None ~obj:alarm ~entry:"alarms"
             Value.Unit)
      in
      check_bool (Printf.sprintf "alarms raised (%d)" alarms) true (alarms > 0);
      (* stop the daemon so the simulation can drain *)
      ignore
        (Object_manager.invoke env.sys.om
           ~node:env.sys.cluster.Cluster.compute_nodes.(0)
           ~thread_id:0 ~origin:None ~txn:None ~obj:sensor ~entry:"stop"
           Value.Unit);
      let n1 = Apps.Sensor.sample_count env.sys.om sensor in
      Sim.sleep (Time.ms 200);
      let n2 = Apps.Sensor.sample_count env.sys.om sensor in
      check_bool "stopped" true (n2 <= n1 + 1))

let () =
  Alcotest.run "apps"
    [
      ( "sorter",
        [
          Alcotest.test_case "correctness" `Quick test_sorter_correctness;
          Alcotest.test_case "single worker" `Quick test_sorter_single_worker;
          Alcotest.test_case "parallel phase speedup" `Slow
            test_sorter_parallel_sort_phase_speedup;
          Alcotest.test_case "odd sizes" `Quick test_sorter_odd_sizes;
        ] );
      ( "bank",
        [
          Alcotest.test_case "deposit modes" `Quick test_bank_deposit_modes;
          Alcotest.test_case "transfer" `Quick test_bank_transfer;
          Alcotest.test_case "insufficient rolls back" `Quick
            test_bank_insufficient_rolls_back;
          Alcotest.test_case "concurrent transfers conserve money" `Quick
            test_bank_concurrent_transfers_conserve_money;
        ] );
      ( "kv",
        [
          Alcotest.test_case "basic" `Quick test_kv_basic;
          Alcotest.test_case "many keys" `Quick test_kv_many_keys;
          Alcotest.test_case "durable put" `Quick test_kv_durable_put;
          Alcotest.test_case "visible across nodes" `Quick
            test_kv_visible_across_nodes;
        ] );
      ( "files",
        [
          Alcotest.test_case "read write" `Quick test_file_read_write;
          Alcotest.test_case "page spanning" `Quick test_file_large_spans_pages;
        ] );
      ( "ports",
        [
          Alcotest.test_case "fifo" `Quick test_port_fifo;
          Alcotest.test_case "blocking receive" `Quick
            test_port_blocking_receive;
        ] );
      ( "sensor",
        [ Alcotest.test_case "active sampling" `Quick test_sensor_samples ] );
      ( "lisp",
        [
          Alcotest.test_case "basics" `Quick test_lisp_basics;
          Alcotest.test_case "persistence and recursion" `Quick
            test_lisp_persistence_and_recursion;
          Alcotest.test_case "closures" `Quick test_lisp_closures;
          Alcotest.test_case "environment spans nodes" `Quick
            test_lisp_environment_spans_nodes;
          Alcotest.test_case "remote evaluation" `Quick test_lisp_remote_eval;
          Alcotest.test_case "errors" `Quick test_lisp_errors;
          Alcotest.test_case "durable eval" `Quick test_lisp_durable_eval;
        ] );
    ]
