(* Tests for distributed shared memory: coherence (one-copy
   semantics), the segment lock service, and two-phase commit. *)

open Sim
module P = Dsm.Protocol

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Fast RaTP config so crash-timeout tests finish quickly. *)
let fast_ratp =
  {
    Ratp.Endpoint.default_config with
    retry_initial = Time.ms 20;
    max_attempts = 3;
  }

type cluster = {
  eng : Engine.t;
  ether : Net.Ethernet.t;
  nd : Ra.Node.t;
  server : Dsm.Dsm_server.t;
  n1 : Ra.Node.t;
  c1 : Dsm.Dsm_client.t;
  n2 : Ra.Node.t;
  c2 : Dsm.Dsm_client.t;
}

let with_cluster ?(presume_abort_after = Time.sec 60) ?batch_io
    ?prefetch_window f =
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let ether = Net.Ethernet.create eng () in
      let nd =
        Ra.Node.create ether ~id:1 ~kind:Ra.Node.Data ~ratp_config:fast_ratp ()
      in
      let server = Dsm.Dsm_server.create nd ~presume_abort_after () in
      let locate _ = 1 in
      let n1 =
        Ra.Node.create ether ~id:2 ~kind:Ra.Node.Compute ~ratp_config:fast_ratp ()
      in
      let c1 = Dsm.Dsm_client.create n1 ~locate ?batch_io ?prefetch_window () in
      let n2 =
        Ra.Node.create ether ~id:3 ~kind:Ra.Node.Compute ~ratp_config:fast_ratp ()
      in
      let c2 = Dsm.Dsm_client.create n2 ~locate ?batch_io ?prefetch_window () in
      f { eng; ether; nd; server; n1; c1; n2; c2 })

let new_seg cl ~pages =
  let seg = Ra.Sysname.fresh cl.nd.Ra.Node.names in
  Store.Segment_store.create_segment
    (Dsm.Dsm_server.store cl.server)
    seg
    ~size:(pages * Ra.Page.size);
  seg

let vspace_for seg ~pages =
  let vs = Ra.Virtual_space.create () in
  Ra.Virtual_space.map vs ~base:0 ~len:(pages * Ra.Page.size)
    ~prot:Ra.Virtual_space.Read_write seg;
  vs

let read node vs ~addr ~len =
  Bytes.to_string (Ra.Mmu.read node.Ra.Node.mmu vs ~addr ~len)

let write node vs ~addr s =
  Ra.Mmu.write node.Ra.Node.mmu vs ~addr (Bytes.of_string s)

(* ------------------------------------------------------------------ *)
(* Coherence *)

let test_shared_read () =
  with_cluster (fun cl ->
      let seg = new_seg cl ~pages:1 in
      let page = Bytes.make Ra.Page.size 'a' in
      Store.Segment_store.write_page (Dsm.Dsm_server.store cl.server) seg 0 page;
      let vs = vspace_for seg ~pages:1 in
      Alcotest.(check string) "c1 sees store" "aaaa" (read cl.n1 vs ~addr:0 ~len:4);
      Alcotest.(check string) "c2 sees store" "aaaa" (read cl.n2 vs ~addr:0 ~len:4);
      Alcotest.(check (list int))
        "both in copyset" [ 2; 3 ]
        (Dsm.Dsm_server.copyset_of cl.server seg 0);
      check_bool "no owner" true (Dsm.Dsm_server.owner_of cl.server seg 0 = None))

let test_write_then_remote_read () =
  with_cluster (fun cl ->
      let seg = new_seg cl ~pages:1 in
      let vs = vspace_for seg ~pages:1 in
      write cl.n1 vs ~addr:0 "hello";
      check_bool "c1 owns" true
        (Dsm.Dsm_server.owner_of cl.server seg 0 = Some 2);
      Alcotest.(check string)
        "c2 reads c1's write" "hello"
        (read cl.n2 vs ~addr:0 ~len:5);
      check_bool "ownership returned" true
        (Dsm.Dsm_server.owner_of cl.server seg 0 = None);
      check_int "one downgrade" 1 (Dsm.Dsm_server.downgrades_sent cl.server))

let test_write_write_invalidation () =
  with_cluster (fun cl ->
      let seg = new_seg cl ~pages:1 in
      let vs = vspace_for seg ~pages:1 in
      write cl.n1 vs ~addr:0 "first";
      write cl.n2 vs ~addr:5 "second";
      check_bool "c2 owns now" true
        (Dsm.Dsm_server.owner_of cl.server seg 0 = Some 3);
      check_bool "c1 frame invalidated" true
        (Ra.Mmu.resident cl.n1.Ra.Node.mmu seg 0 = None);
      check_bool "c1 received invalidation" true
        (Dsm.Dsm_client.invalidations_received cl.c1 >= 1);
      (* c2's write copy carried c1's bytes: both writes visible *)
      Alcotest.(check string)
        "merged contents" "firstsecond"
        (read cl.n2 vs ~addr:0 ~len:11);
      (* and c1 re-reading sees everything *)
      Alcotest.(check string)
        "c1 rereads coherently" "firstsecond"
        (read cl.n1 vs ~addr:0 ~len:11))

let test_read_copies_invalidated_on_write () =
  with_cluster (fun cl ->
      let seg = new_seg cl ~pages:1 in
      let vs = vspace_for seg ~pages:1 in
      ignore (read cl.n1 vs ~addr:0 ~len:1);
      ignore (read cl.n2 vs ~addr:0 ~len:1);
      write cl.n1 vs ~addr:0 "z";
      check_bool "c2 read copy dropped" true
        (Ra.Mmu.resident cl.n2.Ra.Node.mmu seg 0 = None);
      Alcotest.(check string) "c2 refetches" "z" (read cl.n2 vs ~addr:0 ~len:1))

let test_write_contention_converges () =
  (* three nodes hammering writes on one page: the backoff must break
     the invalidation/reply livelock and let everyone finish *)
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let ether = Net.Ethernet.create eng () in
      let nd = Ra.Node.create ether ~id:1 ~kind:Ra.Node.Data ~ratp_config:fast_ratp () in
      let server = Dsm.Dsm_server.create nd () in
      let locate _ = 1 in
      let nodes =
        List.map
          (fun id ->
            let n = Ra.Node.create ether ~id ~kind:Ra.Node.Compute ~ratp_config:fast_ratp () in
            ignore (Dsm.Dsm_client.create n ~locate ());
            n)
          [ 2; 3; 4 ]
      in
      let seg = Ra.Sysname.fresh nd.Ra.Node.names in
      Store.Segment_store.create_segment (Dsm.Dsm_server.store server) seg
        ~size:Ra.Page.size;
      let vs = vspace_for seg ~pages:1 in
      let done_ = Semaphore.create 0 in
      List.iteri
        (fun i node ->
          ignore
            (Sim.spawn "writer" (fun () ->
                 for k = 0 to 9 do
                   Ra.Mmu.write node.Ra.Node.mmu vs ~addr:(8 * ((10 * i) + k))
                     (Bytes.make 8 (Char.chr (65 + i)))
                 done;
                 Semaphore.release done_)))
        nodes;
      for _ = 1 to 3 do
        Semaphore.acquire done_
      done;
      (* all thirty writes present, each node's region intact *)
      let final = read (List.hd nodes) vs ~addr:0 ~len:(8 * 30) in
      List.iteri
        (fun i _node ->
          let expected = String.make 80 (Char.chr (65 + i)) in
          Alcotest.(check string)
            (Printf.sprintf "region %d intact" i)
            expected
            (String.sub final (80 * i) 80))
        nodes;
      check_bool "converged promptly" true (Sim.now () < Time.sec 30))

let prop_one_copy_semantics =
  QCheck.Test.make ~name:"one-copy semantics vs sequential model" ~count:30
    QCheck.(
      pair small_nat
        (list_of_size Gen.(5 -- 40)
           (triple bool (int_range 0 (2 * 8192 - 1)) (int_range 0 255))))
    (fun (seed, ops) ->
      let ok = ref true in
      with_cluster (fun cl ->
          ignore seed;
          let pages = 2 in
          let seg = new_seg cl ~pages in
          let vs = vspace_for seg ~pages in
          let model = Bytes.make (pages * Ra.Page.size) '\000' in
          List.iter
            (fun (use_c1, off, v) ->
              let node = if use_c1 then cl.n1 else cl.n2 in
              if v mod 2 = 0 then begin
                (* write one byte *)
                let b = Bytes.make 1 (Char.chr v) in
                Ra.Mmu.write node.Ra.Node.mmu vs ~addr:off b;
                Bytes.set model off (Char.chr v)
              end
              else begin
                let got = Ra.Mmu.read node.Ra.Node.mmu vs ~addr:off ~len:1 in
                if Bytes.get got 0 <> Bytes.get model off then ok := false
              end)
            ops);
      !ok)

(* ------------------------------------------------------------------ *)
(* Fast path: fault-ahead prefetch, batched flush, byte accounting *)

let fill_pages cl seg ~pages =
  for p = 0 to pages - 1 do
    Store.Segment_store.write_page
      (Dsm.Dsm_server.store cl.server)
      seg p
      (Bytes.make Ra.Page.size (Char.chr (97 + p)))
  done

let test_prefetch_sequential_scan () =
  with_cluster ~prefetch_window:8 (fun cl ->
      let pages = 8 in
      let seg = new_seg cl ~pages in
      fill_pages cl seg ~pages;
      let vs = vspace_for seg ~pages in
      for p = 0 to pages - 1 do
        Alcotest.(check string)
          (Printf.sprintf "page %d contents" p)
          (String.make 4 (Char.chr (97 + p)))
          (read cl.n1 vs ~addr:(p * Ra.Page.size) ~len:4)
      done;
      (* the doubling window turns 8 demand faults into 3 RPCs:
         page 0 ships [1], page 2 ships [3;4], page 5 ships [6;7] *)
      check_int "three fetch RPCs" 3 (Dsm.Dsm_client.remote_fetches cl.c1);
      check_int "five pages prefetched" 5
        (Dsm.Dsm_server.pages_prefetched cl.server);
      check_int "five prefetch installs" 5
        (Ra.Mmu.prefetches cl.n1.Ra.Node.mmu);
      (* every shipped page is registered in its copyset *)
      for p = 0 to pages - 1 do
        check_bool
          (Printf.sprintf "page %d copyset has c1" p)
          true
          (List.mem 2 (Dsm.Dsm_server.copyset_of cl.server seg p))
      done;
      (* the location cache resolved the home once *)
      check_int "one location miss" 1 (Dsm.Dsm_client.location_misses cl.c1);
      check_int "rest were hits" 2 (Dsm.Dsm_client.location_hits cl.c1))

let test_prefetch_random_scan_stops_speculating () =
  with_cluster ~prefetch_window:8 (fun cl ->
      let pages = 8 in
      let seg = new_seg cl ~pages in
      fill_pages cl seg ~pages;
      let vs = vspace_for seg ~pages in
      List.iter
        (fun p -> ignore (read cl.n1 vs ~addr:(p * Ra.Page.size) ~len:1))
        [ 6; 1; 4; 0; 3 ];
      (* only the first fault speculates (window 1); the jumps reset
         the window, so no further pages ship *)
      check_int "one speculative page" 1
        (Dsm.Dsm_server.pages_prefetched cl.server))

(* The acceptance test for copyset registration: a page that reached
   a node ONLY as a prefetched extra must still be invalidated by
   another node's write fault. *)
let test_write_fault_invalidates_prefetched_copy () =
  with_cluster ~prefetch_window:8 (fun cl ->
      let pages = 4 in
      let seg = new_seg cl ~pages in
      fill_pages cl seg ~pages;
      let vs = vspace_for seg ~pages in
      (* c1 demand-reads page 0; page 1 arrives only via prefetch *)
      ignore (read cl.n1 vs ~addr:0 ~len:1);
      check_int "single fetch RPC" 1 (Dsm.Dsm_client.remote_fetches cl.c1);
      check_bool "page 1 resident via prefetch" true
        (Ra.Mmu.resident cl.n1.Ra.Node.mmu seg 1 = Some Ra.Partition.Read);
      (* c2 write-faults page 1: c1's speculative copy must die *)
      write cl.n2 vs ~addr:Ra.Page.size "overwrite";
      check_bool "prefetched copy invalidated" true
        (Ra.Mmu.resident cl.n1.Ra.Node.mmu seg 1 = None);
      check_bool "c1 saw the invalidation" true
        (Dsm.Dsm_client.invalidations_received cl.c1 >= 1);
      (* and c1 rereads the fresh bytes, not the stale image *)
      Alcotest.(check string)
        "c1 rereads coherently" "overwrite"
        (read cl.n1 vs ~addr:Ra.Page.size ~len:9))

let test_batched_flush () =
  let store_bytes batched =
    with_cluster ~batch_io:batched (fun cl ->
        let pages = 3 in
        let seg = new_seg cl ~pages in
        let vs = vspace_for seg ~pages in
        for p = 0 to pages - 1 do
          write cl.n1 vs
            ~addr:(p * Ra.Page.size)
            (Printf.sprintf "page-%d" p)
        done;
        let rpcs0 = Dsm.Dsm_client.put_rpcs cl.c1 in
        Dsm.Dsm_client.flush_segment cl.c1 seg;
        check_int
          (if batched then "one batched RPC" else "one RPC per page")
          (if batched then 1 else pages)
          (Dsm.Dsm_client.put_rpcs cl.c1 - rpcs0);
        check_bool "frames clean" true
          (Ra.Mmu.dirty_pages cl.n1.Ra.Node.mmu seg = []);
        List.init pages (fun p ->
            match
              Store.Segment_store.read_page
                (Dsm.Dsm_server.store cl.server)
                seg p
            with
            | Ra.Partition.Data d -> Bytes.to_string (Bytes.sub d 0 6)
            | Ra.Partition.Zeroed -> "ZEROED"))
  in
  let serial = store_bytes false and batched = store_bytes true in
  Alcotest.(check (list string))
    "serial and batched flush store the same bytes" serial batched;
  Alcotest.(check (list string))
    "flushed contents" [ "page-0"; "page-1"; "page-2" ] batched

(* Pin the wire-size model for every batch-carrying message: 24-byte
   per-entry headers, 48/64-byte envelopes. *)
let test_request_bytes_accounting () =
  let seg = Ra.Sysname.fresh (Ra.Sysname.make_gen ~node:99) in
  let ws =
    [ (seg, 0, Bytes.create 8192); (seg, 1, Bytes.create 100) ]
  in
  let ws_bytes = 24 + 8192 + (24 + 100) in
  check_int "Put_batch" (48 + ws_bytes) (P.request_bytes (P.Put_batch ws));
  check_int "Overwrite" (48 + ws_bytes) (P.request_bytes (P.Overwrite ws));
  check_int "Prepare" (64 + ws_bytes)
    (P.request_bytes (P.Prepare { txn = { P.tnode = 1; tseq = 1 }; writes = ws }));
  check_int "Got_pages"
    (48 + 8192 + (24 + 8192) + (24 + 8192))
    (P.request_bytes
       (P.Got_pages
          {
            main = Ra.Partition.Data (Bytes.create 8192);
            extras = [ (1, Bytes.create 8192); (2, Bytes.create 8192) ];
          }));
  check_int "Got_pages zero main" (48 + 24 + 10)
    (P.request_bytes
       (P.Got_pages
          { main = Ra.Partition.Zeroed; extras = [ (1, Bytes.create 10) ] }));
  (* sysname lists charge the same 24-byte entries as descriptors *)
  check_int "Objects" (32 + (24 * 3))
    (P.request_bytes (P.Objects [ seg; seg; seg ]));
  check_int "Get_page carries no payload" 48
    (P.request_bytes
       (P.Get_page { seg; page = 0; mode = Ra.Partition.Read; window = 8 }))

let test_flush_and_drop () =
  with_cluster (fun cl ->
      let seg = new_seg cl ~pages:1 in
      let vs = vspace_for seg ~pages:1 in
      write cl.n1 vs ~addr:0 "durable";
      Dsm.Dsm_client.flush_segment cl.c1 seg;
      (match
         Store.Segment_store.read_page (Dsm.Dsm_server.store cl.server) seg 0
       with
      | Ra.Partition.Data d ->
          Alcotest.(check string)
            "flushed to store" "durable"
            (Bytes.to_string (Bytes.sub d 0 7))
      | Ra.Partition.Zeroed -> Alcotest.fail "flush did not reach store");
      (* now dirty local changes dropped on abort *)
      write cl.n1 vs ~addr:0 "garbage";
      Dsm.Dsm_client.drop_segment cl.c1 seg;
      Alcotest.(check string)
        "refetch sees flushed version" "durable"
        (read cl.n1 vs ~addr:0 ~len:7))

let test_missing_segment_error () =
  with_cluster (fun cl ->
      let bogus = Ra.Sysname.fresh cl.n1.Ra.Node.names in
      let vs = vspace_for bogus ~pages:1 in
      let raised =
        try
          ignore (read cl.n1 vs ~addr:0 ~len:1);
          false
        with Ra.Partition.No_segment _ -> true
      in
      check_bool "missing segment raises" true raised)

let test_segment_rpc_lifecycle () =
  with_cluster (fun cl ->
      let seg = Ra.Sysname.fresh cl.n1.Ra.Node.names in
      let create =
        P.Create_segment
          { seg; size = Ra.Page.size; mode = Ra.Partition.One_copy }
      in
      (match
         Ratp.Endpoint.call cl.n1.Ra.Node.endpoint ~dst:1 ~service:P.service
           ~size:(P.request_bytes create) create
       with
      | Ok P.Segment_ok -> ()
      | Ok _ | Error _ -> Alcotest.fail "create failed");
      (match
         Ratp.Endpoint.call cl.n1.Ra.Node.endpoint ~dst:1 ~service:P.service
           ~size:(P.request_bytes create) create
       with
      | Ok P.Segment_error -> ()
      | Ok _ | Error _ -> Alcotest.fail "duplicate create not rejected");
      let vs = vspace_for seg ~pages:1 in
      write cl.n1 vs ~addr:0 "x";
      let del = P.Delete_segment seg in
      (match
         Ratp.Endpoint.call cl.n1.Ra.Node.endpoint ~dst:1 ~service:P.service
           ~size:(P.request_bytes del) del
       with
      | Ok P.Segment_ok -> ()
      | Ok _ | Error _ -> Alcotest.fail "delete failed"))

let test_owner_crash_recovers_stored_state () =
  with_cluster (fun cl ->
      let seg = new_seg cl ~pages:1 in
      let vs = vspace_for seg ~pages:1 in
      write cl.n1 vs ~addr:0 "committedA";
      Dsm.Dsm_client.flush_segment cl.c1 seg;
      write cl.n1 vs ~addr:0 "uncommitted";
      Ra.Node.crash cl.n1;
      (* c2's read recalls from the dead owner, times out, and falls
         back to the stored copy: the uncommitted write is lost *)
      Alcotest.(check string)
        "pre-crash stored contents" "committedA"
        (read cl.n2 vs ~addr:0 ~len:10))

(* ------------------------------------------------------------------ *)
(* Lock table (direct) *)

let txn n = { P.tnode = n; tseq = 0 }

let test_locks_shared_and_exclusive () =
  Sim.exec (fun () ->
      let lt = Dsm.Lock_table.create () in
      let seg = Ra.Sysname.fresh (Ra.Sysname.make_gen ~node:0) in
      check_bool "r1 granted" true
        (Dsm.Lock_table.acquire lt seg (txn 1) P.R = `Granted);
      check_bool "r2 granted" true
        (Dsm.Lock_table.acquire lt seg (txn 2) P.R = `Granted);
      (* writer must wait *)
      let w_granted = ref false in
      ignore
        (Sim.spawn "w" (fun () ->
             (match Dsm.Lock_table.acquire lt seg (txn 3) P.W with
             | `Granted -> w_granted := true
             | `Cancelled -> ())));
      Sim.sleep (Time.ms 1);
      check_bool "writer waits" false !w_granted;
      check_int "queued" 1 (Dsm.Lock_table.queue_length lt seg);
      Dsm.Lock_table.release_txn lt (txn 1);
      Sim.sleep (Time.ms 1);
      check_bool "still waits for second reader" false !w_granted;
      Dsm.Lock_table.release_txn lt (txn 2);
      Sim.sleep (Time.ms 1);
      check_bool "writer granted" true !w_granted;
      check_bool "holds W" true
        (Dsm.Lock_table.holds lt seg (txn 3) = Some P.W))

let test_locks_fifo_blocks_later_readers () =
  Sim.exec (fun () ->
      let lt = Dsm.Lock_table.create () in
      let seg = Ra.Sysname.fresh (Ra.Sysname.make_gen ~node:0) in
      ignore (Dsm.Lock_table.acquire lt seg (txn 1) P.R);
      let order = ref [] in
      ignore
        (Sim.spawn "w" (fun () ->
             ignore (Dsm.Lock_table.acquire lt seg (txn 2) P.W);
             order := "w" :: !order;
             Dsm.Lock_table.release_txn lt (txn 2)));
      Sim.sleep (Time.ms 1);
      ignore
        (Sim.spawn "r" (fun () ->
             ignore (Dsm.Lock_table.acquire lt seg (txn 3) P.R);
             order := "r" :: !order));
      Sim.sleep (Time.ms 1);
      Dsm.Lock_table.release_txn lt (txn 1);
      Sim.sleep (Time.ms 1);
      Alcotest.(check (list string))
        "writer first (fifo)" [ "w"; "r" ] (List.rev !order))

let test_locks_upgrade () =
  Sim.exec (fun () ->
      let lt = Dsm.Lock_table.create () in
      let seg = Ra.Sysname.fresh (Ra.Sysname.make_gen ~node:0) in
      ignore (Dsm.Lock_table.acquire lt seg (txn 1) P.R);
      (* sole reader upgrades immediately *)
      check_bool "upgrade granted" true
        (Dsm.Lock_table.acquire lt seg (txn 1) P.W = `Granted);
      check_bool "holds W" true (Dsm.Lock_table.holds lt seg (txn 1) = Some P.W);
      (* idempotent re-acquire *)
      check_bool "W again" true
        (Dsm.Lock_table.acquire lt seg (txn 1) P.W = `Granted);
      check_bool "R while W" true
        (Dsm.Lock_table.acquire lt seg (txn 1) P.R = `Granted))

let test_locks_cancellation () =
  Sim.exec (fun () ->
      let lt = Dsm.Lock_table.create () in
      let seg = Ra.Sysname.fresh (Ra.Sysname.make_gen ~node:0) in
      ignore (Dsm.Lock_table.acquire lt seg (txn 1) P.W);
      let outcome = ref None in
      ignore
        (Sim.spawn "w2" (fun () ->
             outcome := Some (Dsm.Lock_table.acquire lt seg (txn 2) P.W)));
      Sim.sleep (Time.ms 1);
      (* cancelling txn2 wakes its queued request with `Cancelled` *)
      Dsm.Lock_table.release_txn lt (txn 2);
      Sim.sleep (Time.ms 1);
      check_bool "cancelled" true (!outcome = Some `Cancelled);
      check_bool "holder unchanged" true
        (Dsm.Lock_table.holds lt seg (txn 1) = Some P.W))

(* ------------------------------------------------------------------ *)
(* Lock service over RaTP + 2PC *)

let rpc cl node body =
  Ratp.Endpoint.call node.Ra.Node.endpoint ~dst:cl.nd.Ra.Node.id
    ~service:P.service ~size:(P.request_bytes body) body

let test_lock_service_and_abort_release () =
  with_cluster (fun cl ->
      let seg = new_seg cl ~pages:1 in
      let t1 = { P.tnode = 2; tseq = 1 } and t2 = { P.tnode = 3; tseq = 1 } in
      (match rpc cl cl.n1 (P.Lock_segment { seg; kind = P.W; txn = t1 }) with
      | Ok P.Lock_granted -> ()
      | Ok _ | Error _ -> Alcotest.fail "t1 lock failed");
      let t2_granted_at = ref None in
      ignore
        (Sim.spawn "t2-locker" (fun () ->
             match rpc cl cl.n2 (P.Lock_segment { seg; kind = P.W; txn = t2 }) with
             | Ok P.Lock_granted -> t2_granted_at := Some (Sim.now ())
             | Ok _ | Error _ -> ()));
      Sim.sleep (Time.ms 50);
      check_bool "t2 still waiting" true (!t2_granted_at = None);
      (match rpc cl cl.n1 (P.Abort { txn = t1 }) with
      | Ok P.Txn_done -> ()
      | Ok _ | Error _ -> Alcotest.fail "abort failed");
      Sim.sleep (Time.ms 50);
      check_bool "t2 granted after abort released locks" true
        (!t2_granted_at <> None))

let test_two_phase_commit_applies () =
  with_cluster (fun cl ->
      let seg = new_seg cl ~pages:1 in
      let t1 = { P.tnode = 2; tseq = 7 } in
      let page = Bytes.make Ra.Page.size 'c' in
      (match rpc cl cl.n1 (P.Prepare { txn = t1; writes = [ (seg, 0, page) ] }) with
      | Ok (P.Vote true) -> ()
      | Ok _ | Error _ -> Alcotest.fail "prepare failed");
      (* not yet applied *)
      (match Store.Segment_store.read_page (Dsm.Dsm_server.store cl.server) seg 0 with
      | Ra.Partition.Zeroed -> ()
      | Ra.Partition.Data _ -> Alcotest.fail "applied before commit");
      (match rpc cl cl.n1 (P.Commit { txn = t1 }) with
      | Ok P.Txn_done -> ()
      | Ok _ | Error _ -> Alcotest.fail "commit failed");
      (match Store.Segment_store.read_page (Dsm.Dsm_server.store cl.server) seg 0 with
      | Ra.Partition.Data d -> check_bool "applied" true (Bytes.get d 0 = 'c')
      | Ra.Partition.Zeroed -> Alcotest.fail "commit did not apply");
      check_int "one commit" 1 (Dsm.Dsm_server.commits cl.server);
      (* WAL has prepare + commit *)
      check_bool "wal recorded" true
        (List.length (Store.Wal.records (Dsm.Dsm_server.wal cl.server)) >= 2))

let test_two_phase_abort_discards () =
  with_cluster (fun cl ->
      let seg = new_seg cl ~pages:1 in
      let t1 = { P.tnode = 2; tseq = 8 } in
      let page = Bytes.make Ra.Page.size 'x' in
      (match rpc cl cl.n1 (P.Prepare { txn = t1; writes = [ (seg, 0, page) ] }) with
      | Ok (P.Vote true) -> ()
      | Ok _ | Error _ -> Alcotest.fail "prepare failed");
      (match rpc cl cl.n1 (P.Abort { txn = t1 }) with
      | Ok P.Txn_done -> ()
      | Ok _ | Error _ -> Alcotest.fail "abort failed");
      (match Store.Segment_store.read_page (Dsm.Dsm_server.store cl.server) seg 0 with
      | Ra.Partition.Zeroed -> ()
      | Ra.Partition.Data _ -> Alcotest.fail "abort leaked writes");
      check_int "one abort" 1 (Dsm.Dsm_server.aborts cl.server))

let test_prepare_unknown_segment_votes_no () =
  with_cluster (fun cl ->
      let bogus = Ra.Sysname.fresh cl.n1.Ra.Node.names in
      let t1 = { P.tnode = 2; tseq = 9 } in
      match
        rpc cl cl.n1
          (P.Prepare { txn = t1; writes = [ (bogus, 0, Bytes.create 8) ] })
      with
      | Ok (P.Vote false) -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected no vote")

let test_presumed_abort_times_out () =
  with_cluster ~presume_abort_after:(Time.sec 2) (fun cl ->
      let seg = new_seg cl ~pages:1 in
      let t1 = { P.tnode = 2; tseq = 10 } in
      (match rpc cl cl.n1 (P.Lock_segment { seg; kind = P.W; txn = t1 }) with
      | Ok P.Lock_granted -> ()
      | Ok _ | Error _ -> Alcotest.fail "lock failed");
      let page = Bytes.make Ra.Page.size 'p' in
      (match rpc cl cl.n1 (P.Prepare { txn = t1; writes = [ (seg, 0, page) ] }) with
      | Ok (P.Vote true) -> ()
      | Ok _ | Error _ -> Alcotest.fail "prepare failed");
      (* coordinator goes silent; participant must self-abort and
         release the lock *)
      Sim.sleep (Time.sec 3);
      check_int "aborted" 1 (Dsm.Dsm_server.aborts cl.server);
      (match Store.Segment_store.read_page (Dsm.Dsm_server.store cl.server) seg 0 with
      | Ra.Partition.Zeroed -> ()
      | Ra.Partition.Data _ -> Alcotest.fail "leaked");
      let t2 = { P.tnode = 3; tseq = 1 } in
      match rpc cl cl.n2 (P.Lock_segment { seg; kind = P.W; txn = t2 }) with
      | Ok P.Lock_granted -> ()
      | Ok _ | Error _ -> Alcotest.fail "lock not released by presumed abort")

let test_server_crash_recovery () =
  with_cluster (fun cl ->
      let seg = new_seg cl ~pages:1 in
      let vs = vspace_for seg ~pages:1 in
      write cl.n1 vs ~addr:0 "persisted";
      Dsm.Dsm_client.flush_segment cl.c1 seg;
      Dsm.Dsm_client.drop_segment cl.c1 seg;
      Ra.Node.crash cl.nd;
      Sim.sleep (Time.ms 100);
      Ra.Node.restart cl.nd;
      Dsm.Dsm_server.recover cl.server;
      (* stable storage survived; coherence state was rebuilt *)
      Alcotest.(check string)
        "store contents survive crash" "persisted"
        (read cl.n2 vs ~addr:0 ~len:9))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

(* ------------------------------------------------------------------ *)
(* Concurrent coherence fan-out *)

type fanout_obs = {
  fo_owner : Net.Address.t option;
  fo_copyset : Net.Address.t list;
  fo_invals : int;
  fo_downs : int;
  fo_stale : int;  (** readers still holding a frame after the write *)
  fo_retrans : int;  (** server-endpoint retransmissions *)
  fo_end_ms : float;  (** simulated completion time *)
}

(* [k] readers pull a read copy of page 0 through their MMUs, then a
   separate writer faults it for write; optionally the first reader
   reads again afterwards (recall/downgrade path).  [drop] installs
   uniform frame loss for the duration of the write fault. *)
let fanout_scenario ?(seed = 42) ?(drop = 0.0) ?(reread = false) ~parallel
    ~readers:k () =
  Sim.exec ~seed (fun () ->
      let eng = Sim.engine () in
      let ether = Net.Ethernet.create eng () in
      (* default RaTP config: under loss the retransmission budget,
         not the test, is what makes invalidations reliable *)
      let nd = Ra.Node.create ether ~id:1 ~kind:Ra.Node.Data () in
      let server = Dsm.Dsm_server.create nd ~parallel_coherence:parallel () in
      let locate _ = 1 in
      let mk id =
        let n = Ra.Node.create ether ~id ~kind:Ra.Node.Compute () in
        ignore (Dsm.Dsm_client.create n ~locate ());
        n
      in
      let rnodes = List.init k (fun i -> mk (10 + i)) in
      let wn = mk 9 in
      let seg = Ra.Sysname.fresh nd.Ra.Node.names in
      Store.Segment_store.create_segment
        (Dsm.Dsm_server.store server)
        seg ~size:Ra.Page.size;
      let vs = vspace_for seg ~pages:1 in
      List.iter (fun n -> ignore (read n vs ~addr:0 ~len:4)) rnodes;
      Net.Fault.set_drop_probability (Net.Ethernet.fault ether) drop;
      write wn vs ~addr:0 "fresh";
      Net.Fault.set_drop_probability (Net.Ethernet.fault ether) 0.0;
      if reread then
        Alcotest.(check string)
          "reader sees committed write" "fresh"
          (read (List.hd rnodes) vs ~addr:0 ~len:5);
      let fo_stale =
        List.length
          (List.filter
             (fun n ->
               (not (reread && n == List.hd rnodes))
               && Ra.Mmu.resident n.Ra.Node.mmu seg 0 <> None)
             rnodes)
      in
      {
        fo_owner = Dsm.Dsm_server.owner_of server seg 0;
        fo_copyset = Dsm.Dsm_server.copyset_of server seg 0;
        fo_invals = Dsm.Dsm_server.invalidations_sent server;
        fo_downs = Dsm.Dsm_server.downgrades_sent server;
        fo_stale;
        fo_retrans = Ratp.Endpoint.retransmissions nd.Ra.Node.endpoint;
        fo_end_ms = Sim.Time.to_ms_f (Sim.now ());
      })

let test_fanout_serial_parallel_equivalent () =
  List.iter
    (fun reread ->
      let s = fanout_scenario ~parallel:false ~readers:4 ~reread () in
      let p = fanout_scenario ~parallel:true ~readers:4 ~reread () in
      check_bool "same owner" true (s.fo_owner = p.fo_owner);
      Alcotest.(check (list int)) "same copyset" s.fo_copyset p.fo_copyset;
      check_int "same invalidations" s.fo_invals p.fo_invals;
      check_int "same downgrades" s.fo_downs p.fo_downs;
      check_int "no stale reader either way" 0 (s.fo_stale + p.fo_stale);
      check_bool "parallel is no slower" true (p.fo_end_ms <= s.fo_end_ms))
    [ false; true ];
  (* and the expected absolute state after the plain write *)
  let p = fanout_scenario ~parallel:true ~readers:4 () in
  check_bool "writer owns" true (p.fo_owner = Some 9);
  Alcotest.(check (list int)) "copyset cleared" [] p.fo_copyset;
  check_int "one invalidation per reader" 4 p.fo_invals

let test_fanout_same_seed_deterministic () =
  (* identical seeds must replay the identical simulation, including
     the loss schedule and every retransmission, even with the
     concurrent fan-out in play *)
  let a = fanout_scenario ~seed:7 ~drop:0.25 ~parallel:true ~readers:3 () in
  let b = fanout_scenario ~seed:7 ~drop:0.25 ~parallel:true ~readers:3 () in
  check_bool "same owner" true (a.fo_owner = b.fo_owner);
  Alcotest.(check (list int)) "same copyset" a.fo_copyset b.fo_copyset;
  check_int "same invalidations" a.fo_invals b.fo_invals;
  check_int "same retransmissions" a.fo_retrans b.fo_retrans;
  Alcotest.(check (float 0.0)) "same completion time" a.fo_end_ms b.fo_end_ms

let test_fanout_invalidation_survives_loss () =
  (* frame loss during the invalidation burst: RaTP retransmission
     must still deliver every invalidation before the write is
     granted — no reader may keep a stale frame *)
  let r =
    fanout_scenario ~seed:11 ~drop:0.25 ~parallel:true ~readers:4 ~reread:true
      ()
  in
  check_int "no stale reader survives the write" 0 r.fo_stale;
  check_int "every reader was invalidated" 4 r.fo_invals;
  check_bool "loss forced retransmissions" true (r.fo_retrans > 0)

(* ------------------------------------------------------------------ *)
(* Consistency modes (DESIGN.md §17) *)

(* One data server, [clients] compute clients, one segment of [pages]
   pages in [mode]. *)
let with_mode_cluster ?(seed = 42) ?ratp_config ~mode ~pages ~clients f =
  Sim.exec ~seed (fun () ->
      let eng = Sim.engine () in
      let ether = Net.Ethernet.create eng () in
      let nd = Ra.Node.create ether ~id:1 ~kind:Ra.Node.Data ?ratp_config () in
      let server = Dsm.Dsm_server.create nd () in
      let locate _ = 1 in
      let consistency _ = mode in
      let cs =
        List.init clients (fun i ->
            let n =
              Ra.Node.create ether ~id:(2 + i) ~kind:Ra.Node.Compute
                ?ratp_config ()
            in
            (n, Dsm.Dsm_client.create n ~locate ~consistency ()))
      in
      let seg = Ra.Sysname.fresh nd.Ra.Node.names in
      Store.Segment_store.create_segment
        (Dsm.Dsm_server.store server)
        seg
        ~size:(pages * Ra.Page.size);
      Dsm.Dsm_server.set_consistency server seg mode;
      f ~ether ~server ~seg ~cs)

let put_word n vs ~addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Ra.Mmu.write n.Ra.Node.mmu vs ~addr b

let get_word n vs ~addr =
  Int64.to_int
    (Bytes.get_int64_le (Ra.Mmu.read n.Ra.Node.mmu vs ~addr ~len:8) 0)

let test_release_defers_and_batches () =
  let pages = 4 in
  with_mode_cluster ~ratp_config:fast_ratp ~mode:Ra.Partition.Release ~pages
    ~clients:2 (fun ~ether:_ ~server ~seg ~cs ->
      let (wn, wc), (rn, _) =
        match cs with [ w; r ] -> (w, r) | _ -> assert false
      in
      let vs = vspace_for seg ~pages in
      (* the reader holds a copy of every page *)
      for p = 0 to pages - 1 do
        ignore (read rn vs ~addr:(p * Ra.Page.size) ~len:1)
      done;
      (* N writes inside the scope: no invalidation traffic at all *)
      for p = 0 to pages - 1 do
        put_word wn vs ~addr:(p * Ra.Page.size) (p + 1)
      done;
      check_int "no invalidations at fault time" 0
        (Dsm.Dsm_server.invalidations_sent server);
      check_int "per-copy invalidations deferred" pages
        (Dsm.Dsm_server.deferred_invals server);
      check_int "no flush burst yet" 0
        (Dsm.Dsm_server.release_flush_bursts server);
      (* the scope ends: ONE batched invalidation RPC to the reader *)
      Dsm.Dsm_client.flush_segment wc seg;
      check_int "one flush burst" 1
        (Dsm.Dsm_server.release_flush_bursts server);
      check_int "one invalidation RPC for the whole scope" 1
        (Dsm.Dsm_server.invalidations_sent server);
      (* release semantics: after the release, the reader sees every
         write of the scope *)
      for p = 0 to pages - 1 do
        check_bool
          (Printf.sprintf "reader copy of page %d dropped" p)
          true
          (Ra.Mmu.resident rn.Ra.Node.mmu seg p = None)
      done;
      for p = 0 to pages - 1 do
        check_int
          (Printf.sprintf "reader sees write to page %d" p)
          (p + 1)
          (get_word rn vs ~addr:(p * Ra.Page.size))
      done)

(* The headline A/B: the same scoped workload under one-copy pays one
   invalidation RPC per (write fault x copy); release pays one per
   copyset member per scope.  With 4 writes and 1 reader: 4 vs 1. *)
let test_release_cuts_invalidation_rpcs () =
  let measure mode =
    let pages = 4 in
    with_mode_cluster ~ratp_config:fast_ratp ~mode ~pages ~clients:2
      (fun ~ether:_ ~server ~seg ~cs ->
        let (wn, wc), (rn, _) =
          match cs with [ w; r ] -> (w, r) | _ -> assert false
        in
        let vs = vspace_for seg ~pages in
        for p = 0 to pages - 1 do
          ignore (read rn vs ~addr:(p * Ra.Page.size) ~len:1)
        done;
        for p = 0 to pages - 1 do
          put_word wn vs ~addr:(p * Ra.Page.size) (p + 1)
        done;
        Dsm.Dsm_client.flush_segment wc seg;
        Dsm.Dsm_server.invalidations_sent server)
  in
  let one_copy = measure Ra.Partition.One_copy in
  let release = measure Ra.Partition.Release in
  check_int "one-copy pays per write fault" 4 one_copy;
  check_int "release pays per scope" 1 release;
  check_bool "at least 2x reduction" true (one_copy >= 2 * release)

let test_release_diffs_preserve_concurrent_writes () =
  (* two scopes write disjoint bytes of the SAME page concurrently;
     diff-based flushing must land both at the home *)
  with_mode_cluster ~ratp_config:fast_ratp ~mode:Ra.Partition.Release ~pages:1
    ~clients:2 (fun ~ether:_ ~server:_ ~seg ~cs ->
      let (n1, c1), (n2, c2) =
        match cs with [ a; b ] -> (a, b) | _ -> assert false
      in
      let vs = vspace_for seg ~pages:1 in
      put_word n1 vs ~addr:0 111;
      put_word n2 vs ~addr:64 222;
      (* c1's flush ends its scope; c2 still holds unflushed writes *)
      Dsm.Dsm_client.flush_segment c1 seg;
      Dsm.Dsm_client.flush_segment c2 seg;
      (* a fresh read (either client) sees both writes *)
      check_int "c2's write survived c1's flush" 222 (get_word n1 vs ~addr:64);
      check_int "c1's write survived c2's flush" 111 (get_word n1 vs ~addr:0);
      check_int "c2 sees c1's write too" 111 (get_word n2 vs ~addr:0);
      check_int "c2 keeps its own write" 222 (get_word n2 vs ~addr:64))

let test_commutative_converges_under_loss () =
  (* both clients blindly increment the SAME word; frame loss and
     reordering force RaTP retransmissions, and the server's
     exactly-once call cache must keep Add deltas from double-applying *)
  let n = 10 in
  with_mode_cluster ~seed:11
    ~mode:(Ra.Partition.Commutative Ra.Partition.Add)
    ~pages:1 ~clients:2
    (fun ~ether ~server ~seg ~cs ->
      let (n1, c1), (n2, c2) =
        match cs with [ a; b ] -> (a, b) | _ -> assert false
      in
      let vs = vspace_for seg ~pages:1 in
      let fault = Net.Ethernet.fault ether in
      Net.Fault.set_default fault
        {
          Net.Fault.pristine with
          drop = 0.2;
          reorder = 0.2;
          reorder_by = Time.ms 5;
        };
      for _ = 1 to n do
        put_word n1 vs ~addr:0 (get_word n1 vs ~addr:0 + 1);
        put_word n2 vs ~addr:0 (get_word n2 vs ~addr:0 + 1)
      done;
      Dsm.Dsm_client.flush_segment c1 seg;
      Dsm.Dsm_client.flush_segment c2 seg;
      Net.Fault.set_default fault Net.Fault.pristine;
      check_bool "loss actually happened" true (Net.Fault.drops fault > 0);
      (* no coherence traffic at all: the home never arbitrated *)
      check_int "no invalidations" 0
        (Dsm.Dsm_server.invalidations_sent server);
      check_int "no downgrades" 0 (Dsm.Dsm_server.downgrades_sent server);
      check_int "two merges applied" 2 (Dsm.Dsm_server.merges_applied server);
      (* convergence: every replica reads the sum of both increment
         streams *)
      Dsm.Dsm_client.drop_segment c1 seg;
      Dsm.Dsm_client.drop_segment c2 seg;
      check_int "c1 converged" (2 * n) (get_word n1 vs ~addr:0);
      check_int "c2 converged" (2 * n) (get_word n2 vs ~addr:0))

let test_one_copy_same_seed_identical () =
  (* the control arm must stay byte-identical run to run: same final
     page image, same counter values, same simulated clock *)
  let run () =
    with_mode_cluster ~seed:23 ~ratp_config:fast_ratp
      ~mode:Ra.Partition.One_copy ~pages:2 ~clients:2
      (fun ~ether:_ ~server ~seg ~cs ->
        let (n1, c1), (n2, _) =
          match cs with [ a; b ] -> (a, b) | _ -> assert false
        in
        let vs = vspace_for seg ~pages:2 in
        for i = 0 to 9 do
          put_word n1 vs ~addr:(8 * i) i;
          check_int "coherent" i (get_word n2 vs ~addr:(8 * i))
        done;
        Dsm.Dsm_client.flush_segment c1 seg;
        let image =
          match
            Store.Segment_store.read_page (Dsm.Dsm_server.store server) seg 0
          with
          | Ra.Partition.Data b -> Bytes.to_string b
          | Ra.Partition.Zeroed -> ""
        in
        ( image,
          Dsm.Dsm_server.invalidations_sent server,
          Dsm.Dsm_server.downgrades_sent server,
          Dsm.Dsm_server.pages_served server,
          Sim.Time.to_ms_f (Sim.now ()) ))
  in
  let i1, inv1, down1, served1, t1 = run () in
  let i2, inv2, down2, served2, t2 = run () in
  Alcotest.(check string) "same page image" i1 i2;
  check_int "same invalidations" inv1 inv2;
  check_int "same downgrades" down1 down2;
  check_int "same pages served" served1 served2;
  Alcotest.(check (float 0.0)) "same clock" t1 t2

(* ------------------------------------------------------------------ *)
(* Exact copyset membership (no conservative over-registration) *)

let test_drop_segment_releases_copyset () =
  with_cluster (fun cl ->
      let seg = new_seg cl ~pages:1 in
      let vs = vspace_for seg ~pages:1 in
      ignore (read cl.n2 vs ~addr:0 ~len:1);
      check_bool "c2 registered" true
        (List.mem 3 (Dsm.Dsm_server.copyset_of cl.server seg 0));
      (* dropping the frames releases the registration at the home *)
      Dsm.Dsm_client.drop_segment cl.c2 seg;
      check_bool "c2 deregistered" false
        (List.mem 3 (Dsm.Dsm_server.copyset_of cl.server seg 0));
      check_int "one release RPC" 1 (Dsm.Dsm_client.copy_releases cl.c2);
      (* the regression this pins: c1's write fault must not pay an
         invalidation for the copy c2 no longer holds *)
      write cl.n1 vs ~addr:0 "x";
      check_int "no redundant invalidation" 0
        (Dsm.Dsm_server.invalidations_sent cl.server))

let test_declined_prefetch_releases_copyset () =
  (* a frame-budget-limited client declines prefetched extras; the
     server must not keep it registered for pages it never installed *)
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let ether = Net.Ethernet.create eng () in
      let nd =
        Ra.Node.create ether ~id:1 ~kind:Ra.Node.Data ~ratp_config:fast_ratp ()
      in
      let server = Dsm.Dsm_server.create nd () in
      let locate _ = 1 in
      let n1 =
        Ra.Node.create ether ~id:2 ~kind:Ra.Node.Compute
          ~ratp_config:fast_ratp ~max_frames:2 ()
      in
      let c1 =
        Dsm.Dsm_client.create n1 ~locate ~prefetch_window:8 ()
      in
      let n2 =
        Ra.Node.create ether ~id:3 ~kind:Ra.Node.Compute
          ~ratp_config:fast_ratp ()
      in
      ignore (Dsm.Dsm_client.create n2 ~locate ());
      let pages = 6 in
      let seg = Ra.Sysname.fresh nd.Ra.Node.names in
      Store.Segment_store.create_segment
        (Dsm.Dsm_server.store server)
        seg
        ~size:(pages * Ra.Page.size);
      for p = 0 to pages - 1 do
        Store.Segment_store.write_page
          (Dsm.Dsm_server.store server)
          seg p
          (Bytes.make Ra.Page.size (Char.chr (97 + p)))
      done;
      let vs = vspace_for seg ~pages in
      (* sequential scan: the adaptive window ships extras, but the
         2-frame budget forces declines.  Track which pages the MMU
         ever actually held (extras install before the fault
         returns). *)
      let ever_held = Array.make pages false in
      let snapshot () =
        for p = 0 to pages - 1 do
          if Ra.Mmu.resident n1.Ra.Node.mmu seg p <> None then
            ever_held.(p) <- true
        done
      in
      for p = 0 to pages - 1 do
        ignore (read n1 vs ~addr:(p * Ra.Page.size) ~len:1);
        snapshot ()
      done;
      (* let the fire-and-forget Release_copies land *)
      Sim.sleep (Time.ms 100);
      check_bool "some installs were declined" true
        (Dsm.Dsm_client.copy_releases c1 > 0);
      for p = 0 to pages - 1 do
        let registered = List.mem 2 (Dsm.Dsm_server.copyset_of server seg p) in
        (* a copy the MMU holds must be registered (no lost
           invalidations)... *)
        if Ra.Mmu.resident n1.Ra.Node.mmu seg p <> None then
          check_bool (Printf.sprintf "page %d held => registered" p) true
            registered;
        (* ...and a declined extra must NOT be: only pages the client
           actually installed at some point may appear (the satellite
           regression — before Release_copies, declines left phantom
           registrations) *)
        if registered then
          check_bool
            (Printf.sprintf "page %d registered => once held" p)
            true ever_held.(p)
      done;
      (* the writer's sweep pays one invalidation per registered copy
         — phantom registrations would inflate this fan-out *)
      let registered =
        List.length
          (List.filter
             (fun p -> List.mem 2 (Dsm.Dsm_server.copyset_of server seg p))
             (List.init pages Fun.id))
      in
      let invals0 = Dsm.Dsm_server.invalidations_sent server in
      for p = 0 to pages - 1 do
        let b = Bytes.make 1 'z' in
        Ra.Mmu.write n2.Ra.Node.mmu vs ~addr:(p * Ra.Page.size) b
      done;
      check_int "fan-out matches registered copies" registered
        (Dsm.Dsm_server.invalidations_sent server - invals0))

let test_resident_extra_decline_keeps_registration () =
  (* streaming prefetch re-ships a page the client already holds (a
     scan that jumps back re-enters a stretch it has resident).  The
     declined install keeps a live copy whose copyset entry at the
     home is the same single registration the extra made — it must
     NOT be released, or the next writer's invalidation skips this
     client and it serves stale data forever *)
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let ether = Net.Ethernet.create eng () in
      let nd =
        Ra.Node.create ether ~id:1 ~kind:Ra.Node.Data ~ratp_config:fast_ratp ()
      in
      let server = Dsm.Dsm_server.create nd () in
      let locate _ = 1 in
      let n2 =
        Ra.Node.create ether ~id:2 ~kind:Ra.Node.Compute
          ~ratp_config:fast_ratp ()
      in
      let c2 = Dsm.Dsm_client.create n2 ~locate ~prefetch_window:8 () in
      let n3 =
        Ra.Node.create ether ~id:3 ~kind:Ra.Node.Compute
          ~ratp_config:fast_ratp ()
      in
      ignore (Dsm.Dsm_client.create n3 ~locate ());
      let pages = 4 in
      let seg = Ra.Sysname.fresh nd.Ra.Node.names in
      Store.Segment_store.create_segment
        (Dsm.Dsm_server.store server)
        seg
        ~size:(pages * Ra.Page.size);
      for p = 0 to pages - 1 do
        Store.Segment_store.write_page
          (Dsm.Dsm_server.store server)
          seg p
          (Bytes.make Ra.Page.size (Char.chr (97 + p)))
      done;
      let vs = vspace_for seg ~pages in
      (* page 2 becomes resident by demand fetch... *)
      ignore (read n2 vs ~addr:(2 * Ra.Page.size) ~len:1);
      (* ...then a sequential run from page 0 re-ships it as an extra,
         whose install declines because the page is already resident *)
      ignore (read n2 vs ~addr:0 ~len:1);
      ignore (read n2 vs ~addr:Ra.Page.size ~len:1);
      check_bool "page 2 resident" true
        (Ra.Mmu.resident n2.Ra.Node.mmu seg 2 <> None);
      (* give any (buggy) fire-and-forget release time to land *)
      Sim.sleep (Time.ms 100);
      check_int "no release for a retained copy" 0
        (Dsm.Dsm_client.copy_releases c2);
      check_bool "still registered" true
        (List.mem 2 (Dsm.Dsm_server.copyset_of server seg 2));
      (* so the writer's invalidation reaches the retained copy *)
      write n3 vs ~addr:(2 * Ra.Page.size) "Z";
      Alcotest.(check string)
        "reader sees the write, not the stale frame" "Z"
        (read n2 vs ~addr:(2 * Ra.Page.size) ~len:1))

let test_merge_delta_resend_applies_once () =
  (* a Merge_delta re-sent after a client-visible timeout is a FRESH
     call, so the transport's exactly-once cache cannot dedup it; the
     repeated twin-stamp must make the home apply only the difference
     against what it already combined *)
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let ether = Net.Ethernet.create eng () in
      let nd =
        Ra.Node.create ether ~id:1 ~kind:Ra.Node.Data ~ratp_config:fast_ratp ()
      in
      let server = Dsm.Dsm_server.create nd () in
      let n2 =
        Ra.Node.create ether ~id:2 ~kind:Ra.Node.Compute
          ~ratp_config:fast_ratp ()
      in
      let seg = Ra.Sysname.fresh nd.Ra.Node.names in
      Store.Segment_store.create_segment
        (Dsm.Dsm_server.store server)
        seg ~size:Ra.Page.size;
      Dsm.Dsm_server.set_consistency server seg
        (Ra.Partition.Commutative Ra.Partition.Add);
      let word0 () =
        match
          Store.Segment_store.read_page (Dsm.Dsm_server.store server) seg 0
        with
        | Ra.Partition.Data b -> Int64.to_int (Bytes.get_int64_le b 0)
        | Ra.Partition.Zeroed -> 0
      in
      let send body =
        Ratp.Endpoint.call n2.Ra.Node.endpoint ~dst:1 ~service:P.service
          ~size:(P.request_bytes body) body
      in
      let delta v =
        let b = Bytes.make Ra.Page.size '\000' in
        Bytes.set_int64_le b 0 (Int64.of_int v);
        b
      in
      (* the first flush lands but (say) its reply is lost *)
      ignore (send (P.Merge_delta [ (seg, 0, 7, delta 5) ]));
      check_int "applied once" 5 (word0 ());
      (* the re-sent flush repeats stamp 7; its delta grew by 3 (new
         writes since, diffed against the same unchanged twin) *)
      ignore (send (P.Merge_delta [ (seg, 0, 7, delta 8) ]));
      check_int "difference applied, not the sum" 8 (word0 ());
      (* the next scope flushes under a fresh stamp: full apply *)
      ignore (send (P.Merge_delta [ (seg, 0, 8, delta 2) ]));
      check_int "fresh stamp applies fully" 10 (word0 ());
      (* a missing segment fails the whole batch instead of silently
         dropping entries while replying success *)
      let ghost = Ra.Sysname.fresh nd.Ra.Node.names in
      (match send (P.Merge_delta [ (ghost, 0, 9, delta 1) ]) with
      | Ok P.Segment_error -> ()
      | _ -> Alcotest.fail "Merge_delta to a missing segment must error");
      match send (P.Put_diffs [ (ghost, 0, [ (0, Bytes.make 8 'x') ]) ]) with
      | Ok P.Segment_error -> ()
      | _ -> Alcotest.fail "Put_diffs to a missing segment must error")

let () =
  Alcotest.run "dsm"
    [
      ( "coherence",
        [
          Alcotest.test_case "shared read" `Quick test_shared_read;
          Alcotest.test_case "write then remote read" `Quick
            test_write_then_remote_read;
          Alcotest.test_case "write-write invalidation" `Quick
            test_write_write_invalidation;
          Alcotest.test_case "read copies invalidated on write" `Quick
            test_read_copies_invalidated_on_write;
          Alcotest.test_case "flush and drop" `Quick test_flush_and_drop;
          Alcotest.test_case "missing segment" `Quick
            test_missing_segment_error;
          Alcotest.test_case "segment rpc lifecycle" `Quick
            test_segment_rpc_lifecycle;
          Alcotest.test_case "owner crash falls back to store" `Quick
            test_owner_crash_recovers_stored_state;
          Alcotest.test_case "prefetch sequential scan" `Quick
            test_prefetch_sequential_scan;
          Alcotest.test_case "prefetch stops on random access" `Quick
            test_prefetch_random_scan_stops_speculating;
          Alcotest.test_case "write fault invalidates prefetched copy" `Quick
            test_write_fault_invalidates_prefetched_copy;
          Alcotest.test_case "batched flush" `Quick test_batched_flush;
          Alcotest.test_case "request byte accounting" `Quick
            test_request_bytes_accounting;
          Alcotest.test_case "write contention converges" `Quick
            test_write_contention_converges;
        ] );
      ( "fanout",
        [
          Alcotest.test_case "serial/parallel equivalent" `Quick
            test_fanout_serial_parallel_equivalent;
          Alcotest.test_case "same seed deterministic" `Quick
            test_fanout_same_seed_deterministic;
          Alcotest.test_case "invalidation survives loss" `Quick
            test_fanout_invalidation_survives_loss;
        ] );
      qsuite "coherence-props" [ prop_one_copy_semantics ];
      ( "modes",
        [
          Alcotest.test_case "release defers and batches" `Quick
            test_release_defers_and_batches;
          Alcotest.test_case "release cuts invalidation rpcs" `Quick
            test_release_cuts_invalidation_rpcs;
          Alcotest.test_case "release diffs preserve concurrent writes" `Quick
            test_release_diffs_preserve_concurrent_writes;
          Alcotest.test_case "commutative converges under loss" `Quick
            test_commutative_converges_under_loss;
          Alcotest.test_case "one-copy same seed identical" `Quick
            test_one_copy_same_seed_identical;
          Alcotest.test_case "merge delta resend applies once" `Quick
            test_merge_delta_resend_applies_once;
        ] );
      ( "copyset",
        [
          Alcotest.test_case "drop segment releases copyset" `Quick
            test_drop_segment_releases_copyset;
          Alcotest.test_case "declined prefetch releases copyset" `Quick
            test_declined_prefetch_releases_copyset;
          Alcotest.test_case "resident extra keeps registration" `Quick
            test_resident_extra_decline_keeps_registration;
        ] );
      ( "locks",
        [
          Alcotest.test_case "shared and exclusive" `Quick
            test_locks_shared_and_exclusive;
          Alcotest.test_case "fifo blocks later readers" `Quick
            test_locks_fifo_blocks_later_readers;
          Alcotest.test_case "upgrade" `Quick test_locks_upgrade;
          Alcotest.test_case "cancellation" `Quick test_locks_cancellation;
        ] );
      ( "commit",
        [
          Alcotest.test_case "lock service and abort release" `Quick
            test_lock_service_and_abort_release;
          Alcotest.test_case "2pc commit applies" `Quick
            test_two_phase_commit_applies;
          Alcotest.test_case "2pc abort discards" `Quick
            test_two_phase_abort_discards;
          Alcotest.test_case "prepare unknown segment votes no" `Quick
            test_prepare_unknown_segment_votes_no;
          Alcotest.test_case "presumed abort" `Quick
            test_presumed_abort_times_out;
          Alcotest.test_case "server crash recovery" `Quick
            test_server_crash_recovery;
        ] );
    ]
