(* Integration tests over the evaluation experiments: the paper's
   quantitative claims, checked as shapes and calibrated values. *)

let check_bool = Alcotest.(check bool)

let within pct target v =
  Float.abs (v -. target) /. target <= pct /. 100.0

(* ------------------------------------------------------------------ *)

let test_t1_matches_paper () =
  let r = Experiments.T1_kernel.run ~samples:30 () in
  check_bool
    (Printf.sprintf "context switch %.3f ~ 0.14" r.Experiments.T1_kernel.context_switch_ms)
    true
    (within 5.0 0.14 r.Experiments.T1_kernel.context_switch_ms);
  check_bool "zero fill ~ 1.5" true
    (within 5.0 1.5 r.Experiments.T1_kernel.fault_zero_fill_ms);
  check_bool "data fault ~ 0.629" true
    (within 5.0 0.629 r.Experiments.T1_kernel.fault_data_ms);
  (* emergent ratio, not directly calibrated *)
  let ratio =
    r.Experiments.T1_kernel.fault_zero_fill_ms
    /. r.Experiments.T1_kernel.fault_data_ms
  in
  check_bool
    (Printf.sprintf "zero/data ratio %.2f ~ 2.4" ratio)
    true
    (ratio > 2.0 && ratio < 2.9)

let test_t2_matches_paper () =
  let r = Experiments.T2_network.run ~samples:10 () in
  let open Experiments.T2_network in
  check_bool "eth rtt ~ 2.4" true (within 10.0 2.4 r.eth_rtt_ms);
  check_bool "ratp rtt ~ 4.8" true (within 10.0 4.8 r.ratp_rtt_ms);
  check_bool "page ~ 11.9" true (within 15.0 11.9 r.page_ratp_ms);
  (* the orderings and factors are emergent from protocol structure *)
  check_bool "ratp rtt ~ 2x eth" true
    (r.ratp_rtt_ms /. r.eth_rtt_ms > 1.7 && r.ratp_rtt_ms /. r.eth_rtt_ms < 2.4);
  check_bool "ratp < nfs < ftp" true
    (r.page_ratp_ms < r.page_nfs_ms && r.page_nfs_ms < r.page_ftp_ms);
  check_bool "ftp factor in [4, 9]" true
    (r.page_ftp_ms /. r.page_ratp_ms > 4.0 && r.page_ftp_ms /. r.page_ratp_ms < 9.0)

let test_t3_matches_paper () =
  let r = Experiments.T3_invocation.run ~invocations:100 () in
  let open Experiments.T3_invocation in
  check_bool
    (Printf.sprintf "warm %.1f ~ 8" r.warm_ms)
    true (within 10.0 8.0 r.warm_ms);
  check_bool
    (Printf.sprintf "cold %.0f ~ 103" r.cold_ms)
    true (within 10.0 103.0 r.cold_ms);
  check_bool "locality average near the minimum" true
    (r.locality_avg_ms < r.warm_ms *. 2.0);
  check_bool "min < avg < max" true
    (r.warm_ms < r.locality_avg_ms && r.locality_avg_ms < r.cold_ms)

let test_f1_shape () =
  let r =
    Experiments.F1_sort.run ~elements:8192 ~worker_counts:[ 1; 2; 8 ] ()
  in
  match r.Experiments.F1_sort.points with
  | [ p1; p2; p8 ] ->
      let open Experiments.F1_sort in
      (* two workers beat one; the parallel phase keeps shrinking *)
      check_bool "2 workers faster overall" true (p2.total_ms < p1.total_ms);
      check_bool "parallel phase shrinks" true (p2.sort_ms < p1.sort_ms);
      (* communication grows with distribution *)
      check_bool "page moves grow" true (p8.page_moves > p1.page_moves);
      (* and the merge bound keeps 8 workers from scaling linearly *)
      check_bool "no linear scaling at 8" true (p8.speedup < 4.0)
  | _ -> Alcotest.fail "expected three points"

let test_f2_shape () =
  let r = Experiments.F2_consistency.run ~samples:9 () in
  (match r.Experiments.F2_consistency.modes with
  | [ s; lcp; gcp ] ->
      let open Experiments.F2_consistency in
      check_bool "s < lcp" true (s.mean_ms < lcp.mean_ms);
      check_bool "lcp < gcp" true (lcp.mean_ms < gcp.mean_ms);
      check_bool "s pays no locking" true (s.lock_rpcs = 0);
      check_bool "lcp locks locally only" true (lcp.lock_rpcs = 0);
      check_bool "gcp pays global locking" true (gcp.lock_rpcs > 0)
  | _ -> Alcotest.fail "expected three modes");
  let spans = r.Experiments.F2_consistency.spans in
  let latencies = List.map (fun s -> s.Experiments.F2_consistency.mean_ms) spans in
  let rec monotone = function
    | a :: b :: rest -> a < b && monotone (b :: rest)
    | _ -> true
  in
  check_bool "commit cost grows with span" true (monotone latencies)

let test_f3_shape () =
  let r = Experiments.F3_pet.run ~trials:10 ~parallel_counts:[ 1; 3 ] () in
  match r.Experiments.F3_pet.points with
  | [ p1; p3 ] ->
      let open Experiments.F3_pet in
      (* identical failure schedules: more PETs can only help *)
      check_bool "resilience does not decrease" true
        (p3.completion_rate >= p1.completion_rate);
      check_bool "resources grow with parallelism" true
        (p3.mean_thread_ms > p1.mean_thread_ms)
  | _ -> Alcotest.fail "expected two points"

let test_fanout_latency () =
  let r = Experiments.Write_fault_fanout.run ~sizes:[ 8 ] () in
  let open Experiments.Write_fault_fanout in
  match (r.healthy, r.suspected) with
  | [ h ], [ s ] ->
      check_bool
        (Printf.sprintf "parallel overhead %.2f <= 2 rtt (%.2f)"
           (h.parallel_ms -. r.baseline_ms)
           (2.0 *. r.rtt_ms))
        true
        (h.parallel_ms -. r.baseline_ms <= 2.0 *. r.rtt_ms);
      check_bool "serial pays ~ one rtt per copy" true
        (h.serial_ms -. r.baseline_ms >= 6.0 *. r.rtt_ms);
      check_bool "two suspects cost two timeouts serially, one in parallel"
        true
        (s.serial_ms >= 1.8 *. s.parallel_ms)
  | _ -> Alcotest.fail "expected exactly one point per variant"

let test_fanout_deterministic () =
  (* the whole experiment is a fixed-seed simulation: byte-identical
     metrics on every run *)
  let a = Experiments.Write_fault_fanout.run ~sizes:[ 4 ] () in
  let b = Experiments.Write_fault_fanout.run ~sizes:[ 4 ] () in
  check_bool "identical results" true (a = b)

let test_batching_acceptance () =
  let r =
    Experiments.Page_batching.run ~windows:[ 0; 8 ] ~flush_sizes:[ 16 ] ()
  in
  let open Experiments.Page_batching in
  let seq w =
    List.find (fun p -> p.window = w && p.sequential) r.scans
  in
  let w0 = seq 0 and w8 = seq 8 in
  (* window 0 faults once per page; a window of 8 must cut the
     sequential scan to at most a quarter of those RPCs *)
  check_bool "window 0 faults every page" true (w0.fetch_rpcs = 16);
  check_bool
    (Printf.sprintf "window 8 rpcs %d <= %d/4" w8.fetch_rpcs w0.fetch_rpcs)
    true
    (w8.fetch_rpcs * 4 <= w0.fetch_rpcs);
  check_bool "prefetch also speeds up the scan" true
    (w8.scan_ms < w0.scan_ms);
  (* random access must not leave the adaptive window speculating *)
  let rnd8 = List.find (fun p -> p.window = 8 && not p.sequential) r.scans in
  check_bool "random scan wastes few prefetches" true (rnd8.prefetched <= 2);
  match r.flushes with
  | [ f ] ->
      check_bool "one rpc per dirty page serially" true (f.serial_rpcs = 16);
      check_bool "one rpc for the whole batch" true (f.batched_rpcs = 1);
      check_bool
        (Printf.sprintf "batched %.2f <= serial %.2f / 3" f.batched_ms
           f.serial_ms)
        true
        (f.batched_ms *. 3.0 <= f.serial_ms)
  | _ -> Alcotest.fail "expected one flush point"

let test_batching_deterministic () =
  let a = Experiments.Page_batching.run ~windows:[ 0; 2 ] ~flush_sizes:[ 4 ] () in
  let b = Experiments.Page_batching.run ~windows:[ 0; 2 ] ~flush_sizes:[ 4 ] () in
  check_bool "identical results" true (a = b)

let test_transport_acceptance () =
  let r =
    Experiments.Transport.run ~losses:[ 0; 5 ] ~sizes:[ 65536 ] ~calls:3
      ~invocations:10 ()
  in
  let open Experiments.Transport in
  let point ~loss_pct ~selective ~adaptive =
    List.find
      (fun p ->
        p.loss_pct = loss_pct && p.selective = selective
        && p.adaptive = adaptive)
      r.points
  in
  (* loss-free: no arm retransmits anything, and all four arms report
     identical timing (the flags must be invisible without loss) *)
  List.iter
    (fun p ->
      if p.loss_pct = 0 then begin
        check_bool "loss-free arm resends nothing" true (p.retrans_bytes = 0);
        check_bool "loss-free arm all ok" true (p.oks = p.calls)
      end)
    r.points;
  let clean = point ~loss_pct:0 ~selective:true ~adaptive:false in
  let clean_full = point ~loss_pct:0 ~selective:false ~adaptive:false in
  check_bool "loss-free timing identical across arms" true
    (clean.elapsed_ms = clean_full.elapsed_ms);
  (* at 5% loss selective must resend far fewer bytes *)
  let sel = point ~loss_pct:5 ~selective:true ~adaptive:false in
  let full = point ~loss_pct:5 ~selective:false ~adaptive:false in
  check_bool "full-burst resends under loss" true (full.retrans_bytes > 0);
  check_bool
    (Printf.sprintf "selective %dB vs full-burst %dB" sel.retrans_bytes
       full.retrans_bytes)
    true
    (sel.retrans_bytes * 2 <= full.retrans_bytes);
  check_bool "selective path sent nacks or probes" true
    (sel.nacks > 0 || sel.retrans > 0);
  (* the bypass must beat a real transport round trip *)
  let b = r.bypass in
  check_bool "every local dispatch took the bypass" true
    (b.local_invokes = b.invocations);
  check_bool
    (Printf.sprintf "bypass %.2fms < remote %.2fms" b.local_ms b.remote_ms)
    true
    (b.local_ms < b.remote_ms)

let quick_consistency () =
  Experiments.Consistency.run ~pages:4 ~copysets:[ 2 ] ~counter_clients:2
    ~increments:8 ~elements:1024 ~workers:2 ()

let test_consistency_acceptance () =
  let r = quick_consistency () in
  let open Experiments.Consistency in
  (* grid shape: one-copy and release at each copyset, two counter
     modes, two sort arms *)
  check_bool "two scoped points" true (List.length r.scoped = 2);
  check_bool "two counter points" true (List.length r.counters = 2);
  check_bool "two sort arms" true (List.length r.sort = 2);
  let scoped m =
    List.find (fun (p : scoped_point) -> p.mode = m) r.scoped
  in
  let oc = scoped "one-copy" and rel = scoped "release" in
  (* one-copy pays an invalidation RPC per (write fault x copy);
     release defers them all into one burst per copyset member *)
  check_bool "one-copy invalidates at fault time" true (oc.deferred = 0);
  check_bool "release defers every per-copy invalidation" true
    (rel.deferred = oc.inval_rpcs);
  check_bool
    (Printf.sprintf "release cuts invalidation RPCs %d -> %d (>= 2x)"
       oc.inval_rpcs rel.inval_rpcs)
    true
    (rel.inval_rpcs > 0 && oc.inval_rpcs >= 2 * rel.inval_rpcs);
  let counter m =
    List.find (fun (p : counter_point) -> p.mode = m) r.counters
  in
  let c_oc = counter "one-copy" and c_add = counter "commutative(add)" in
  (* both arms must converge; only commutative does it without any
     coherence traffic, paying one merge RPC per client flush *)
  check_bool "one-copy counters converge" true c_oc.converged;
  check_bool "commutative counters converge" true c_add.converged;
  check_bool "one-copy ping-pongs ownership" true (c_oc.stalls > 0);
  check_bool "commutative has zero coherence stalls" true (c_add.stalls = 0);
  check_bool "one merge rpc per client" true
    (c_add.merge_rpcs = c_add.clients);
  (* the sort is correct under both modes (asserted inside sort_point)
     and release must not pay more invalidation RPCs than one-copy *)
  let sort m = List.find (fun (p : sort_point) -> p.mode = m) r.sort in
  check_bool "release sort invalidates no more than one-copy" true
    ((sort "release").inval_rpcs <= (sort "one-copy").inval_rpcs)

let test_consistency_deterministic () =
  (* fixed-seed simulations end to end: byte-identical grids *)
  check_bool "identical results" true
    (quick_consistency () = quick_consistency ())

let test_transport_deterministic () =
  let run () =
    Experiments.Transport.run ~losses:[ 5 ] ~sizes:[ 8192; 65536 ] ~calls:2
      ~invocations:5 ()
  in
  check_bool "identical results" true (run () = run ())

let () =
  Alcotest.run "experiments"
    [
      ( "calibration",
        [
          Alcotest.test_case "T1 kernel" `Quick test_t1_matches_paper;
          Alcotest.test_case "T2 network" `Quick test_t2_matches_paper;
          Alcotest.test_case "T3 invocation" `Quick test_t3_matches_paper;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "F1 sort trade-off" `Slow test_f1_shape;
          Alcotest.test_case "F2 consistency costs" `Quick test_f2_shape;
          Alcotest.test_case "F3 PET trade-off" `Quick test_f3_shape;
        ] );
      ( "fanout",
        [
          Alcotest.test_case "write-fault latency" `Quick test_fanout_latency;
          Alcotest.test_case "deterministic" `Quick test_fanout_deterministic;
        ] );
      ( "batching",
        [
          Alcotest.test_case "prefetch and flush acceptance" `Quick
            test_batching_acceptance;
          Alcotest.test_case "deterministic" `Quick
            test_batching_deterministic;
        ] );
      ( "transport",
        [
          Alcotest.test_case "selective and bypass acceptance" `Quick
            test_transport_acceptance;
          Alcotest.test_case "deterministic" `Quick
            test_transport_deterministic;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "mode A/B acceptance" `Quick
            test_consistency_acceptance;
          Alcotest.test_case "deterministic" `Quick
            test_consistency_deterministic;
        ] );
    ]
