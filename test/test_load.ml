(* Tests for the sharded name/placement service and the open-loop
   load harness: ring determinism and bounded key movement, shard
   routing equivalence with the centralized server, arc-precise
   location-cache eviction on a membership remap, hash-index rebind
   semantics, load-harness determinism, the sharded-vs-central A/B,
   and the wall-clock budget the flattened engine is pinned to. *)

module Cl = Clouds.Cluster
module Ns = Clouds.Name_server
module Ring = Clouds.Ring
module Load = Experiments.Load
module M = Membership.Monitor

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sample_keys n = List.init n Ring.key_of_int

(* ------------------------------------------------------------------ *)
(* Ring *)

(* Placement is a pure function of the member set: two rings built
   from the same members (in any order) agree on every owner. *)
let test_ring_deterministic () =
  let a = Ring.make [ 1; 2; 3; 4; 5 ] in
  let b = Ring.make [ 5; 3; 1; 4; 2 ] in
  List.iter
    (fun k -> check_int "same owner" (Ring.owner a k) (Ring.owner b k))
    (sample_keys 2048);
  check_bool "members sorted and deduped" true
    (Ring.members (Ring.make [ 2; 1; 2; 3 ]) = [ 1; 2; 3 ])

(* Adding a member moves only keys that land on the newcomer, and no
   more than ~K/n of them; removing a member moves only the keys it
   owned.  These are the defining consistent-hashing properties. *)
let test_ring_bounded_movement () =
  let keys = sample_keys 4096 in
  let base = List.init 8 (fun i -> i + 1) in
  let before = Ring.make base in
  (* join: 9 enters *)
  let joined = Ring.make (9 :: base) in
  let moved_j =
    List.filter (fun k -> Ring.moved ~before ~after:joined k) keys
  in
  List.iter
    (fun k -> check_int "moved keys land on the newcomer" 9 (Ring.owner joined k))
    moved_j;
  let bound = 2 * List.length keys / 9 in
  check_bool
    (Printf.sprintf "join moves %d keys <= %d" (List.length moved_j) bound)
    true
    (List.length moved_j <= bound);
  check_bool "join moves a non-trivial arc" true (List.length moved_j > 0);
  (* leave: 3 departs *)
  let left = Ring.make (List.filter (fun m -> m <> 3) base) in
  List.iter
    (fun k ->
      if Ring.owner before k <> 3 then
        check_int "unowned keys do not move on leave" (Ring.owner before k)
          (Ring.owner left k))
    keys;
  let moved_l = List.filter (fun k -> Ring.moved ~before ~after:left k) keys in
  let bound = 2 * List.length keys / 8 in
  check_bool
    (Printf.sprintf "leave moves %d keys <= %d" (List.length moved_l) bound)
    true
    (List.length moved_l <= bound)

(* ------------------------------------------------------------------ *)
(* Shard routing *)

let names n = List.init n (fun i -> Printf.sprintf "svc-%03d" i)

(* The same bind/lookup script against a sharded and a centralized
   cluster must resolve every name identically: sharding changes
   where a binding lives, never what it says. *)
let bind_and_resolve ~sharded n =
  Sim.exec ~seed:11 (fun () ->
      let eng = Sim.engine () in
      let sys = Clouds.boot eng ~compute:3 ~data:4 ~workstations:0 () in
      let cl = sys.Clouds.cluster in
      Cl.set_name_sharding cl sharded;
      let om = sys.Clouds.om in
      List.iteri
        (fun i name -> Ns.bind om ~name (Ra.Sysname.well_known (i + 1)))
        (names n);
      let resolved =
        List.map
          (fun name ->
            match Ns.lookup om name with
            | Some s -> (name, Ra.Sysname.to_string s)
            | None -> (name, "<none>"))
          (names n)
      in
      let listed =
        Ns.bindings om |> List.map fst |> List.sort String.compare
      in
      (resolved, listed))

let test_shard_routing_equivalence () =
  let n = 48 in
  let sharded, listed_s = bind_and_resolve ~sharded:true n in
  let central, listed_c = bind_and_resolve ~sharded:false n in
  List.iter2
    (fun (name, a) (_, b) ->
      Alcotest.(check string) (name ^ " resolves identically") b a)
    sharded central;
  check_bool "no lookup missed" true
    (List.for_all (fun (_, s) -> s <> "<none>") sharded);
  Alcotest.(check (list string))
    "bindings enumerate the same names" listed_c listed_s;
  check_int "rebinds never duplicate" n (List.length listed_s)

(* Rebinding replaces, unbinding removes — through the hash-indexed
   fast path (second lookup of each name is an index hit). *)
let test_rebind_unbind () =
  Sim.exec ~seed:5 (fun () ->
      let eng = Sim.engine () in
      let sys = Clouds.boot eng ~compute:2 ~data:3 ~workstations:0 () in
      let om = sys.Clouds.om in
      let s1 = Ra.Sysname.well_known 1 and s2 = Ra.Sysname.well_known 2 in
      Ns.bind om ~name:"x" s1;
      check_bool "first binding" true (Ns.lookup om "x" = Some s1);
      check_bool "index hit repeats the answer" true
        (Ns.lookup om "x" = Some s1);
      Ns.bind om ~name:"x" s2;
      check_bool "rebind replaces" true (Ns.lookup om "x" = Some s2);
      check_int "rebind leaves one binding" 1 (List.length (Ns.bindings om));
      Ns.unbind om "x";
      check_bool "unbind removes" true (Ns.lookup om "x" = None);
      check_bool "unknown name misses" true (Ns.lookup om "nope" = None))

(* ------------------------------------------------------------------ *)
(* Remap on view change *)

(* A view condemning one data server rebuilds the ring over the
   survivors and evicts exactly the moved arc: one client takes some
   evictions but strictly fewer than a full location-cache flush
   (measured on a second, identically warmed client). *)
let test_remap_evicts_arc () =
  Sim.exec ~seed:23 (fun () ->
      let eng = Sim.engine () in
      let sys = Clouds.boot eng ~compute:2 ~data:4 ~workstations:0 () in
      let cl = sys.Clouds.cluster in
      let om = sys.Clouds.om in
      let nm = names 64 in
      List.iteri
        (fun i name -> Ns.bind om ~name (Ra.Sysname.well_known (i + 1)))
        nm;
      (* warm both clients' location caches identically *)
      Array.iter
        (fun node ->
          List.iter (fun name -> ignore (Ns.lookup ~on:node om name)) nm)
        cl.Cl.compute_nodes;
      let full_flush =
        Dsm.Dsm_client.evict_where cl.Cl.clients.(1) (fun _ _ -> true)
      in
      check_bool "caches were warm" true (full_flush > 0);
      let before = cl.Cl.ring in
      let dead = cl.Cl.data_nodes.(3).Ra.Node.id in
      Cl.remap_ring cl
        { M.epoch = 1; members = [ { M.addr = dead; status = M.Dead } ] };
      check_bool "ring dropped the condemned member" true
        (Cl.(cl.ring) |> Ring.members |> List.mem dead |> not);
      check_bool "previous ring retained for fallback" true
        (match Cl.(cl.prev_ring) with
        | Some p -> Ring.members p = Ring.members before
        | None -> false);
      let evicted = Dsm.Dsm_client.location_evictions cl.Cl.clients.(0) in
      check_bool
        (Printf.sprintf "remap evicted an arc: 0 < %d < %d" evicted full_flush)
        true
        (evicted > 0 && evicted < full_flush);
      (* the service still answers across the remap *)
      List.iteri
        (fun i name ->
          check_bool (name ^ " survives the remap") true
            (Ns.lookup om name = Some (Ra.Sysname.well_known (i + 1))))
        nm)

(* ------------------------------------------------------------------ *)
(* Load harness *)

let same_point (a : Load.point) (b : Load.point) =
  a.Load.completed = b.Load.completed
  && a.misses = b.misses && a.retries = b.retries
  && a.p50_ms = b.p50_ms && a.p95_ms = b.p95_ms && a.p99_ms = b.p99_ms
  && a.mean_ms = b.mean_ms && a.sim_ms = b.sim_ms

(* Same seed, same cell -> byte-identical simulated metrics
   (wall-clock excluded, it is a host property). *)
let test_load_deterministic () =
  let c = List.hd Load.smoke_cells in
  let a = Load.run_cell ~seed:42 c and b = Load.run_cell ~seed:42 c in
  check_bool "identical simulated metrics at a fixed seed" true
    (same_point a b);
  check_int "every arrival completed" c.Load.invocations a.Load.completed;
  check_int "no lookup missed" 0 a.Load.misses

(* The acceptance A/B: on the same grid cell, the sharded service's
   p95 beats the centralized one (whose single bind leader and DSM
   invalidation traffic queue). *)
let test_sharded_beats_central () =
  let points = Load.run ~cells:Load.smoke_cells () in
  let find lbl =
    List.find (fun p -> p.Load.cell.Load.label = lbl) points
  in
  let shard = find "smoke-shard" and central = find "smoke-central" in
  check_bool
    (Printf.sprintf "sharded p95 %.1fms < central p95 %.1fms"
       shard.Load.p95_ms central.Load.p95_ms)
    true
    (shard.Load.p95_ms < central.Load.p95_ms)

(* The largest grid cell (56 nodes, 2000 clients, 100k invocations)
   must stay under the pinned wall-clock budget: this is the
   regression gate on the flattened engine hot paths.  Measured ~8 s
   on the reference container; the budget leaves headroom for slower
   CI hosts without letting an O(n log n)-per-event regression
   hide. *)
let wall_budget_s = 30.0

let test_big_cell_wall_budget () =
  let p = Load.run_cell Load.big_cell in
  let c = p.Load.cell in
  check_bool "grid is >= 50 nodes" true (c.Load.data + c.Load.compute >= 50);
  check_bool "grid is >= 100k invocations" true (c.Load.invocations >= 100_000);
  check_int "every arrival completed" c.Load.invocations p.Load.completed;
  check_int "no lookup missed" 0 p.Load.misses;
  check_bool
    (Printf.sprintf "big cell wall %.2fs under %.0fs budget" p.Load.wall_s
       wall_budget_s)
    true
    (p.Load.wall_s < wall_budget_s)

let () =
  Alcotest.run "load"
    [
      ( "ring",
        [
          Alcotest.test_case "deterministic placement" `Quick
            test_ring_deterministic;
          Alcotest.test_case "bounded key movement" `Quick
            test_ring_bounded_movement;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "routing equivalence" `Quick
            test_shard_routing_equivalence;
          Alcotest.test_case "rebind and unbind" `Quick test_rebind_unbind;
          Alcotest.test_case "remap evicts the moved arc" `Quick
            test_remap_evicts_arc;
        ] );
      ( "harness",
        [
          Alcotest.test_case "deterministic" `Quick test_load_deterministic;
          Alcotest.test_case "sharded beats central" `Quick
            test_sharded_beats_central;
          Alcotest.test_case "big-cell wall budget" `Slow
            test_big_cell_wall_budget;
        ] );
    ]
