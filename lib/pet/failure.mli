(** Failure injection schedules for resilience experiments.

    Static failures exist before the computation starts; dynamic
    failures strike while it runs. *)

val crash_at : Clouds.Cluster.t -> Net.Address.t -> Sim.Time.span -> unit
(** Schedule a machine crash [span] from now.  The address is
    resolved when the callback fires; an unknown node raises
    [Invalid_argument] at that point. *)

val crash_now : Clouds.Cluster.t -> Net.Address.t -> unit
(** Raises [Invalid_argument] on an unknown node. *)

val restart_at : Clouds.Cluster.t -> Net.Address.t -> Sim.Time.span -> unit
(** Schedule the machine's restart (NIC + RaTP receive loop; a data
    server also needs {!Dsm.Dsm_server.recover}, which this performs
    when the node is one).  Like {!crash_at}, the address is resolved
    at fire time and an unknown node raises [Invalid_argument] —
    matching [crash_now] instead of silently doing nothing. *)

val alive : Clouds.Cluster.t -> Net.Address.t -> bool
