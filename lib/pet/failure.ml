module Cl = Clouds.Cluster

let crash_now cl addr =
  match Cl.node_by_id cl addr with
  | Some node -> Ra.Node.crash node
  | None -> invalid_arg "Failure.crash_now: unknown node"

let crash_at cl addr span =
  let eng = cl.Cl.eng in
  Sim.Engine.at eng
    (Sim.Time.add (Sim.Engine.now eng) span)
    (fun () -> crash_now cl addr)

let restart_at cl addr span =
  let eng = cl.Cl.eng in
  Sim.Engine.at eng
    (Sim.Time.add (Sim.Engine.now eng) span)
    (fun () ->
      (* resolved at fire time, like [crash_at]: a node registered
         between scheduling and firing restarts; an address that is
         still unknown raises instead of silently doing nothing *)
      match Cl.node_by_id cl addr with
      | Some node ->
          Ra.Node.restart node;
          (match Cl.server_at cl addr with
          | Some server -> Dsm.Dsm_server.recover server
          | None -> ())
      | None -> invalid_arg "Failure.restart_at: unknown node")

let alive cl addr =
  match Cl.node_by_id cl addr with
  | Some node -> node.Ra.Node.alive
  | None -> false
