module Cl = Clouds.Cluster

type outcome = {
  value : Clouds.Value.t option;
  winner : int option;
  completed : int;
  killed : int;
  quorum_ok : bool;
  replicas_updated : int;
  thread_ms : float;
}

type pet_status = Running | Done of Clouds.Value.t | Failed

type pet = {
  index : int;
  thread : Clouds.Thread.t;
  started : Sim.Time.t;
  mutable finished : Sim.Time.t option;
  mutable status : pet_status;
}

(* Choose a live compute server for PET [i], spreading threads over
   distinct machines so one crash takes out at most one PET. *)
let compute_for cl i =
  (* a membership view, when one is running, vetoes nodes already
     condemned — no pet is scheduled onto a corpse that merely has
     not been garbage-collected from [alive] yet *)
  let usable n =
    n.Ra.Node.alive
    &&
    match cl.Cl.membership with
    | Some m -> Membership.Monitor.usable m n.Ra.Node.id
    | None -> true
  in
  let nodes = Array.to_list cl.Cl.compute_nodes |> List.filter usable in
  match nodes with
  | [] -> None
  | _ :: _ -> Some (List.nth nodes (i mod List.length nodes)).Ra.Node.id

let run mgr ~group ~entry ~parallel ~quorum arg =
  if parallel < 1 then invalid_arg "Pet.run: parallel must be positive";
  if quorum < 1 || quorum > Replica.degree group then
    invalid_arg "Pet.run: quorum out of range";
  let om = Atomicity.Manager.object_manager mgr in
  let cl = Clouds.Object_manager.cluster om in
  let first_result : (int * Clouds.Value.t) option Sim.Ivar.t =
    Sim.Ivar.create ()
  in
  let failures = ref 0 in
  let start_failures = ref 0 in
  let pets =
    List.init parallel (fun i ->
        match compute_for cl i with
        | None ->
            incr start_failures;
            None
        | Some addr ->
            let obj = Replica.pick group i in
            let thread =
              Clouds.Thread.start om ~on:addr ~obj ~entry arg
            in
            Some { index = i; thread; started = Sim.now (); finished = None; status = Running })
    |> List.filter_map Fun.id
  in
  let launched = List.length pets in
  if launched = 0 then
    {
      value = None;
      winner = None;
      completed = 0;
      killed = 0;
      quorum_ok = false;
      replicas_updated = 0;
      thread_ms = 0.0;
    }
  else begin
    (* watchers: resolve on the first completion, or when everyone
       has failed *)
    List.iter
      (fun pet ->
        ignore
          (Sim.spawn "pet-watcher" (fun () ->
               match Clouds.Thread.try_join pet.thread with
               | Ok v ->
                   pet.status <- Done v;
                   pet.finished <- Some (Sim.now ());
                   ignore (Sim.Ivar.try_fill first_result (Some (pet.index, v)))
               | Error _ ->
                   pet.status <- Failed;
                   pet.finished <- Some (Sim.now ());
                   incr failures;
                   if !failures = launched then
                     ignore (Sim.Ivar.try_fill first_result None))))
      pets;
    match Sim.Ivar.read first_result with
    | None ->
        let thread_ms =
          List.fold_left
            (fun acc pet ->
              let fin = match pet.finished with Some f -> f | None -> Sim.now () in
              acc +. Sim.Time.to_ms_f (Sim.Time.diff fin pet.started))
            0.0 pets
        in
        {
          value = None;
          winner = None;
          completed = 0;
          killed = 0;
          quorum_ok = false;
          replicas_updated = 0;
          thread_ms;
        }
    | Some (_, _) ->
        (* abort the still-running threads before propagating so a
           laggard cannot scribble on a replica we just updated *)
        let killed = ref 0 in
        List.iter
          (fun pet ->
            if pet.status = Running then begin
              Clouds.Thread.kill pet.thread;
              Atomicity.Manager.abort_thread mgr
                ~thread_id:(Clouds.Thread.id pet.thread);
              pet.status <- Failed;
              pet.finished <- Some (Sim.now ());
              incr killed
            end)
          pets;
        (* choose a terminating thread among the completed ones;
           propagate its replica's state to a quorum *)
        let completed =
          List.filter (fun p -> match p.status with Done _ -> true | _ -> false) pets
        in
        let try_commit pet =
          let wi = pet.index mod Replica.degree group in
          let updated = ref 1 (* the winner's own replica *) in
          for j = 0 to Replica.degree group - 1 do
            if j <> wi && Replica.copy_state om group ~from_index:wi ~to_index:j
            then incr updated
          done;
          (!updated, !updated >= quorum)
        in
        let rec choose = function
          | [] -> (None, 0, false)
          | pet :: rest -> (
              let updated, ok = try_commit pet in
              if ok then (Some pet, updated, true)
              else
                match rest with
                | [] -> (Some pet, updated, false)
                | _ :: _ -> choose rest)
        in
        let chosen, replicas_updated, quorum_ok = choose completed in
        let thread_ms =
          List.fold_left
            (fun acc pet ->
              let fin = match pet.finished with Some f -> f | None -> Sim.now () in
              acc +. Sim.Time.to_ms_f (Sim.Time.diff fin pet.started))
            0.0 pets
        in
        {
          value =
            (match chosen with
            | Some { status = Done v; _ } -> Some v
            | Some _ | None -> None);
          winner = (match chosen with Some p -> Some p.index | None -> None);
          completed = List.length completed;
          killed = !killed;
          quorum_ok;
          replicas_updated;
          thread_ms;
        }
  end
