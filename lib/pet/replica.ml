module P = Dsm.Protocol
module Cl = Clouds.Cluster

type t = {
  class_name : string;
  members : Ra.Sysname.t array;
  homes : Net.Address.t array;
}

let create om ~class_name ~degree arg =
  let cl = Clouds.Object_manager.cluster om in
  let ndata = Array.length cl.Cl.data_nodes in
  if degree < 1 || degree > ndata then
    invalid_arg
      "Replica.create: degree must be within the number of data servers";
  let homes =
    Array.init degree (fun i -> cl.Cl.data_nodes.(i mod ndata).Ra.Node.id)
  in
  let members =
    Array.map
      (fun home ->
        Clouds.Object_manager.create_object om ~home ~class_name arg)
      homes
  in
  { class_name; members; homes }

let degree t = Array.length t.members

let pick t i = t.members.(i mod Array.length t.members)

let live_node cl =
  match
    Array.to_list cl.Cl.compute_nodes |> List.find_opt (fun n -> n.Ra.Node.alive)
  with
  | Some n -> n
  | None -> invalid_arg "Replica: no live compute server"

let rpc node ~dst body =
  Ratp.Endpoint.call node.Ra.Node.endpoint ~dst ~service:P.service
    ~size:(P.request_bytes body) body

let descriptor_of om node obj =
  let cl = Clouds.Object_manager.cluster om in
  let home =
    match Ra.Sysname.Table.find_opt cl.Cl.obj_home obj with
    | Some h -> h
    | None -> raise (Clouds.Object_manager.No_object obj)
  in
  match rpc node ~dst:home (P.Get_descriptor obj) with
  | Ok (P.Descriptor (Some d)) -> Some (home, d)
  | Ok _ | Error Ratp.Endpoint.Timeout -> None

let persistent_entries d =
  List.filter
    (fun e -> not (String.equal e.Store.Directory.role "code"))
    d.Store.Directory.entries

let copy_state om t ~from_index ~to_index =
  let cl = Clouds.Object_manager.cluster om in
  let node = live_node cl in
  match
    ( descriptor_of om node t.members.(from_index),
      descriptor_of om node t.members.(to_index) )
  with
  | None, _ | _, None -> false
  | Some (src_home, src_desc), Some (dst_home, dst_desc) -> (
      let pairs =
        List.filter_map
          (fun src_e ->
            List.find_opt
              (fun dst_e ->
                String.equal dst_e.Store.Directory.role
                  src_e.Store.Directory.role)
              (persistent_entries dst_desc)
            |> Option.map (fun dst_e -> (src_e, dst_e)))
          (persistent_entries src_desc)
      in
      let ok = ref true in
      let writes = ref [] in
      List.iter
        (fun (src_e, dst_e) ->
          let pages = Ra.Page.count_for src_e.Store.Directory.size in
          for page = 0 to pages - 1 do
            match
              rpc node ~dst:src_home
                (P.Get_page
                   {
                     seg = src_e.Store.Directory.seg;
                     page;
                     mode = Ra.Partition.Read;
                     window = 0;
                   })
            with
            | Ok (P.Got_page (Ra.Partition.Data data)) ->
                writes := (dst_e.Store.Directory.seg, page, data) :: !writes
            | Ok (P.Got_page Ra.Partition.Zeroed) ->
                writes :=
                  (dst_e.Store.Directory.seg, page, Ra.Page.zero ()) :: !writes
            | Ok _ | Error Ratp.Endpoint.Timeout -> ok := false
          done)
        pairs;
      if not !ok then false
      else
        match rpc node ~dst:dst_home (P.Overwrite (List.rev !writes)) with
        | Ok P.Batch_ok -> true
        | Ok _ | Error Ratp.Endpoint.Timeout -> false)

let live_members om t =
  let cl = Clouds.Object_manager.cluster om in
  Array.to_list t.homes
  |> List.mapi (fun i home -> (i, home))
  |> List.filter_map (fun (i, home) ->
         match Cl.node_by_id cl home with
         | Some n when n.Ra.Node.alive -> Some i
         | Some _ | None -> None)
