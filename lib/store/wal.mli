(** Write-ahead log for two-phase commit on data servers.

    Participants log [Prepared] with the transaction's page images
    (and, under group commit, the before-images needed to undo a
    crash-window apply) before voting yes; [Committed]/[Aborted] seal
    the outcome; [Checkpoint] records carry the in-doubt transaction
    table so the log before them can be truncated.

    {2 Group commit}

    Created with [~group_commit], the log keeps an in-memory buffer:
    {!enqueue} puts a record in the buffer and returns its LSN;
    a log daemon forces everything pending in one sequential
    {!Disk.append} when the oldest buffered record has waited
    [window], or immediately once [max_batch] records are buffered.
    One disk positioning delay is amortized over the whole batch, and
    back-to-back flushes keep the head parked at the log tail.
    {!wait_durable} blocks until a given LSN has been forced.

    The buffer is volatile: records past the last completed flush are
    lost in a crash.  Flushes publish in LSN order, so the loss is
    always a clean suffix of the log — {!recover} discards it and
    undoes any page image it finds tagged past the durable horizon.

    Without [~group_commit], {!append} forces each record with its
    own synchronous {!Disk.write}, the historical cost model, and
    every record is durable the moment it is logged. *)

type write = Ra.Sysname.t * int * bytes
(** (segment, page, data) *)

type undo = Ra.Sysname.t * int * bytes option
(** (segment, page, before-image); [None] = the page had never been
    written (undo clears it back to zeroed). *)

type prep = {
  txn : int * int;  (** (coordinator node, sequence) *)
  writes : write list;
  undo : undo list;
}

type record =
  | Prepared of prep
  | Committed of (int * int)
  | Aborted of (int * int)
  | Checkpoint of prep list
      (** fuzzy checkpoint: the prepared-undecided transactions at the
          instant the record was cut (no quiescing — commits keep
          flowing around it) *)

type group_commit = { window : Sim.Time.span; max_batch : int }

val trim_image : bytes -> bytes
(** Log encoding for before-images: drop the page's trailing zeros
    (data pages are sparse, so this is what the undo side of a
    prepare actually costs on disk).  {!recover} pads restored images
    back out to a full page. *)

type t

val create :
  ?group_commit:group_commit ->
  ?spawn:(string -> (unit -> unit) -> unit) ->
  Disk.t ->
  t
(** [spawn] is how the log daemon's flusher processes are started; a
    data server passes [Ra.Node.spawn] so they die with the machine.
    With [~group_commit] the WAL must be created in simulation
    context (it captures the engine for window timers). *)

val group_commit : t -> bool

val append : t -> record -> unit
(** Durably append: returns once the record is on disk.  Without a
    daemon this is a synchronous {!Disk.write} charged to the caller;
    with one it is {!enqueue} + {!wait_durable} — the caller rides
    the next group flush. *)

val enqueue : t -> record -> int
(** Put a record in the log buffer and return its LSN without waiting
    for durability (commit pipelining: locks can be released at
    commit-record-in-buffer).  Without a daemon the record is durable
    immediately and no disk time is charged. *)

val wait_durable : t -> int -> unit
(** Block until the given LSN has been forced. *)

val flushed_lsn : t -> int
(** Highest LSN the disk has seen (0 initially). *)

val append_nowait : t -> record -> unit
(** [enqueue] with the LSN ignored — for engine-context callers
    (timer-driven resolution) that cannot block. *)

val records : t -> record list
(** Non-truncated log contents in append order (tests, recovery). *)

val checkpoint : t -> active:prep list -> int
(** Cut a fuzzy checkpoint carrying the in-doubt table, wait for it
    to become durable, then truncate every record before it (the
    checkpoint's LSN is the new low-water mark).  Returns that LSN. *)

val recover :
  t ->
  Segment_store.t ->
  decide:((int * int) -> [ `Commit | `Abort | `Keep ]) ->
  applied:(int * int) list ref ->
  prep list
(** ARIES-style replay into the store.  First the volatile suffix
    (records past the last flush) is discarded.  Analysis collects
    outcomes and the freshest prepare per transaction, seeding from
    [Checkpoint] records when the original [Prepared] was truncated.
    Undecided transactions are settled by [decide] — the recovering
    participant asks the coordinator: [`Commit]/[`Abort] are logged
    and acted on; [`Keep] leaves the transaction in doubt.  Losers'
    crash-window page images (tagged past the durable horizon) are
    restored from their before-images.  Committed prepares are then
    redone in log order under the page-LSN guard, so recovering twice
    applies each write once.  [applied] reports every txn that had at
    least one write replayed; the return value is the in-doubt
    transactions the caller must re-install. *)

val truncate : t -> unit
(** Discard the whole log unconditionally (tests). *)

(** {1 Metrics} *)

val flushes : t -> int
val checkpoints : t -> int
val truncated : t -> int

val records_counter : t -> Sim.Stats.counter
val flushes_counter : t -> Sim.Stats.counter

val batch_hist : t -> Sim.Stats.hist
(** Records per group flush. *)

val checkpoints_counter : t -> Sim.Stats.counter
val truncated_counter : t -> Sim.Stats.counter
