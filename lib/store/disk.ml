type config = {
  seek : Sim.Time.span;
  transfer_per_8k : Sim.Time.span;
  rot : Sim.Time.span;
}

let default_config =
  {
    seek = Sim.Time.of_ms_f 12.0;
    transfer_per_8k = Sim.Time.of_ms_f 2.5;
    rot = Sim.Time.of_ms_f 4.0;
  }

type t = {
  label : string;
  cfg : config;
  lock : Sim.Mutex.t;
  mutable queued : int;
  mutable at_tail : bool;
      (* head parked just past the log tail: the previous operation
         was an append and nothing has moved the arm since *)
  ops_c : Sim.Stats.counter;
  bytes_c : Sim.Stats.counter;
  busy_us : Sim.Stats.counter;
  qdepth : Sim.Stats.hist;
}

let create ?(config = default_config) label =
  {
    label;
    cfg = config;
    lock = Sim.Mutex.create ~label ();
    queued = 0;
    at_tail = false;
    ops_c = Sim.Stats.counter (label ^ ".ops");
    bytes_c = Sim.Stats.counter (label ^ ".bytes");
    busy_us = Sim.Stats.counter (label ^ ".busy_us");
    qdepth = Sim.Stats.hist (label ^ ".queue_depth");
  }

(* [positioning] is charged under the device lock, at service time,
   and updates the head-position state for the operation after it. *)
let io_positioned t ~positioning ~bytes =
  t.queued <- t.queued + 1;
  Sim.Stats.hadd t.qdepth (float_of_int t.queued);
  Fun.protect
    ~finally:(fun () -> t.queued <- t.queued - 1)
    (fun () ->
      Sim.Mutex.with_lock t.lock (fun () ->
          Sim.Stats.incr t.ops_c;
          Sim.Stats.incr_by t.bytes_c bytes;
          let transfer =
            int_of_float
              (float_of_int t.cfg.transfer_per_8k
              *. (float_of_int (max bytes 512) /. 8192.0))
          in
          let cost = positioning t + transfer in
          Sim.Stats.incr_by t.busy_us (cost / 1000);
          Sim.sleep cost))

let io t ~bytes =
  io_positioned t ~bytes ~positioning:(fun t ->
      t.at_tail <- false;
      t.cfg.seek)

let write = io
let read = io

(* A log append: if the head is still parked at the tail (the
   previous operation was also an append), the arm does not move and
   only the rotational wait to the next free sector is paid; any
   intervening read or write costs the append a full seek again. *)
let append t ~bytes =
  io_positioned t ~bytes ~positioning:(fun t ->
      let pos = if t.at_tail then t.cfg.rot else t.cfg.seek in
      t.at_tail <- true;
      pos)

let ops t = Sim.Stats.value t.ops_c
let ops_counter t = t.ops_c
let bytes_counter t = t.bytes_c
let busy_counter t = t.busy_us
let queue_hist t = t.qdepth
