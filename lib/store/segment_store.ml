type t = {
  label : string;
  pages : (Ra.Sysname.t * int, bytes) Hashtbl.t;
  lsns : (Ra.Sysname.t * int, int) Hashtbl.t;
      (* page-LSN: the log sequence number of the commit record whose
         write produced this page image; absent (0) for pages written
         outside the commit path.  Recovery's redo pass uses it to
         replay a committed write at most once. *)
  sizes : int Ra.Sysname.Table.t;
}

let create label =
  {
    label;
    pages = Hashtbl.create 256;
    lsns = Hashtbl.create 256;
    sizes = Ra.Sysname.Table.create 32;
  }

let create_segment t seg ~size =
  if Ra.Sysname.Table.mem t.sizes seg then
    invalid_arg "Segment_store.create_segment: exists";
  if size < 0 then invalid_arg "Segment_store.create_segment: negative size";
  Ra.Sysname.Table.replace t.sizes seg size

let delete_segment t seg =
  Ra.Sysname.Table.remove t.sizes seg;
  let keys =
    Hashtbl.fold
      (fun (s, p) _ acc ->
        if Ra.Sysname.equal s seg then (s, p) :: acc else acc)
      t.pages []
  in
  List.iter
    (fun k ->
      Hashtbl.remove t.pages k;
      Hashtbl.remove t.lsns k)
    keys

let exists t seg = Ra.Sysname.Table.mem t.sizes seg

let size t seg =
  match Ra.Sysname.Table.find_opt t.sizes seg with
  | Some s -> s
  | None -> raise (Ra.Partition.No_segment seg)

let read_page t seg page =
  if not (exists t seg) then raise (Ra.Partition.No_segment seg);
  match Hashtbl.find_opt t.pages (seg, page) with
  | Some data -> Ra.Partition.Data (Ra.Page.copy data)
  | None -> Ra.Partition.Zeroed

let write_page ?lsn t seg page data =
  if not (exists t seg) then raise (Ra.Partition.No_segment seg);
  Hashtbl.replace t.pages (seg, page) (Ra.Page.copy data);
  match lsn with
  | Some l -> Hashtbl.replace t.lsns (seg, page) l
  | None -> ()

let clear_page t seg page =
  Hashtbl.remove t.pages (seg, page);
  Hashtbl.remove t.lsns (seg, page)

let page_lsn t seg page =
  match Hashtbl.find_opt t.lsns (seg, page) with Some l -> l | None -> 0

let segments t =
  Ra.Sysname.Table.fold (fun seg _ acc -> seg :: acc) t.sizes []
  |> List.sort Ra.Sysname.compare

let local_partition t =
  {
    Ra.Partition.name = t.label ^ "-local";
    fetch = (fun ~seg ~page ~mode:_ -> read_page t seg page);
    writeback = (fun ~seg ~page data -> write_page t seg page data);
  }
