(** Stable page storage for segments on a data server.

    Contents survive node crashes (they model disk-backed Unix files
    kept hot in the buffer cache).  Pages that were never written
    read back as {!Ra.Partition.Zeroed}, which is what makes the
    zero-fill fault path observable end to end. *)

type t

val create : string -> t

val create_segment : t -> Ra.Sysname.t -> size:int -> unit
(** Declare a segment of [size] bytes.  Raises [Invalid_argument] if
    it already exists. *)

val delete_segment : t -> Ra.Sysname.t -> unit

val exists : t -> Ra.Sysname.t -> bool

val size : t -> Ra.Sysname.t -> int
(** Raises {!Ra.Partition.No_segment} if absent. *)

val read_page : t -> Ra.Sysname.t -> int -> Ra.Partition.fetch_data
(** Raises {!Ra.Partition.No_segment} if the segment is absent. *)

val write_page : ?lsn:int -> t -> Ra.Sysname.t -> int -> bytes -> unit
(** [write_page ?lsn t seg page data] installs a page image.  [lsn]
    tags the page with the commit record that produced it (the
    page-LSN recovery redo is guarded by); omitted, the existing tag
    is left in place — an unlogged write over a committed page must
    not look older than the commit it replaced, or recovery redo
    would clobber it. *)

val clear_page : t -> Ra.Sysname.t -> int -> unit
(** Forget a page: it reads back as {!Ra.Partition.Zeroed} again.
    Recovery undo uses it when a crash-window write landed on a page
    that had never been written. *)

val page_lsn : t -> Ra.Sysname.t -> int -> int
(** The page's tag; 0 for pages never written by the commit path. *)

val segments : t -> Ra.Sysname.t list

val local_partition : t -> Ra.Partition.t
(** A partition serving this store directly (same-machine access on a
    data server): no network, no disk — the calibrated fault costs in
    the MMU are the whole story, matching the paper's local fault
    measurements. *)
