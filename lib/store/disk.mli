(** A simulated disk.

    Requests serialize on the device; each costs a positioning delay
    plus a size-proportional transfer.  Page reads on data servers are
    normally served from the in-memory segment store (the prototype
    kept objects in Unix files, hot in the buffer cache); the disk is
    what makes write-ahead logging and commits cost something.

    The device tracks its head position just enough to model a
    dedicated log zone: {!append} operations that follow each other
    with no intervening {!read}/{!write} keep the head at the log tail
    and pay only the (cheaper) rotational delay [rot] instead of a
    full seek.  This is what a group-commit daemon exploits — a batch
    of log records forced in one sequential append costs one
    positioning delay total. *)

type config = {
  seek : Sim.Time.span;  (** average positioning cost, arm + rotation *)
  transfer_per_8k : Sim.Time.span;
  rot : Sim.Time.span;
      (** rotational wait for a forced sequential append when the head
          is already parked at the log tail (no arm movement) *)
}

val default_config : config

type t

val create : ?config:config -> string -> t
(** [create label] is an idle disk. *)

val write : t -> bytes:int -> unit
(** Synchronous write of [bytes]; blocks through queueing, seek and
    transfer.  Moves the head away from the log tail. *)

val read : t -> bytes:int -> unit
(** Synchronous read timing (contents are tracked by the caller).
    Moves the head away from the log tail. *)

val append : t -> bytes:int -> unit
(** Sequential write at the log tail.  Costs [rot] instead of [seek]
    when the previous operation was also an append, plus the same
    size-proportional transfer as {!write}. *)

val ops : t -> int
(** Total operations performed. *)

(** {1 Device metrics}

    Live [Sim.Stats] handles for registry wiring (the store library
    cannot depend on the observability layer; the data server wraps
    these into its own registry entries). *)

val ops_counter : t -> Sim.Stats.counter
val bytes_counter : t -> Sim.Stats.counter

val busy_counter : t -> Sim.Stats.counter
(** Accumulated device busy time, in microseconds. *)

val queue_hist : t -> Sim.Stats.hist
(** Queue depth sampled at each request arrival (including the
    arriving request and any in service). *)
