type write = Ra.Sysname.t * int * bytes
type undo = Ra.Sysname.t * int * bytes option
type prep = { txn : int * int; writes : write list; undo : undo list }

type record =
  | Prepared of prep
  | Committed of (int * int)
  | Aborted of (int * int)
  | Checkpoint of prep list

type group_commit = { window : Sim.Time.span; max_batch : int }

type entry = { lsn : int; rec_ : record }

type t = {
  disk : Disk.t;
  mutable entries : entry array;
  mutable start : int;  (* index of the first live entry *)
  mutable len : int;  (* live entries, from [start] *)
  mutable next_lsn : int;
  mutable durable : int;  (* highest LSN the disk has seen *)
  gc : group_commit option;
  eng : Sim.Engine.t option;  (* captured at create when [gc] is set *)
  spawn : string -> (unit -> unit) -> unit;
  (* --- daemon state, meaningful only with [gc] --- *)
  mutable pend_bytes : int;  (* bytes enqueued since the last flush claim *)
  mutable gen : int;  (* incarnation; bumped at crash recovery *)
  mutable armed : bool;  (* a window timer is pending *)
  mutable flushing : bool;  (* a flusher process is active *)
  mutable waiters : (int * (unit -> bool)) list;
  (* --- metrics --- *)
  appended_c : Sim.Stats.counter;
  flushes_c : Sim.Stats.counter;
  batch_h : Sim.Stats.hist;
  checkpoints_c : Sim.Stats.counter;
  truncated_c : Sim.Stats.counter;
}

let dummy_entry = { lsn = -1; rec_ = Aborted (0, 0) }

let create ?group_commit ?spawn disk =
  let eng =
    (* the daemon schedules window timers and flusher processes, so a
       group-commit WAL must be created in simulation context *)
    match group_commit with Some _ -> Some (Sim.engine ()) | None -> None
  in
  let spawn =
    match (spawn, eng) with
    | Some f, _ -> f
    | None, Some eng -> fun name f -> ignore (Sim.Engine.spawn eng name f)
    | None, None -> fun _ f -> f ()
  in
  {
    disk;
    entries = Array.make 64 dummy_entry;
    start = 0;
    len = 0;
    next_lsn = 1;
    durable = 0;
    gc = group_commit;
    eng;
    spawn;
    pend_bytes = 0;
    gen = 0;
    armed = false;
    flushing = false;
    waiters = [];
    appended_c = Sim.Stats.counter "wal.records";
    flushes_c = Sim.Stats.counter "wal.flushes";
    batch_h = Sim.Stats.hist "wal.flush_batch";
    checkpoints_c = Sim.Stats.counter "wal.checkpoints";
    truncated_c = Sim.Stats.counter "wal.truncated";
  }

let group_commit t = t.gc <> None

(* Before-images are logged physiologically: the page's trailing
   zeros are dropped, and restore pads the image back out to a full
   page.  Data pages are sparse in practice (an account page carries
   a few words), so the undo side of a prepare record costs bytes
   proportional to what the page actually holds — without this,
   steal/no-force would double every prepare's transfer time for
   8 KB of zeros. *)
let trim_image b =
  let n = ref (Bytes.length b) in
  while !n > 0 && Bytes.get b (!n - 1) = '\000' do
    decr n
  done;
  Bytes.sub b 0 !n

let pad_image b =
  if Bytes.length b >= Ra.Page.size then b
  else begin
    let full = Bytes.make Ra.Page.size '\000' in
    Bytes.blit b 0 full 0 (Bytes.length b);
    full
  end

let prep_bytes p =
  64
  + List.fold_left (fun acc (_, _, b) -> acc + Bytes.length b) 0 p.writes
  + List.fold_left
      (fun acc (_, _, b) ->
        acc + match b with Some b -> Bytes.length b | None -> 0)
      0 p.undo

let record_bytes = function
  | Prepared p -> prep_bytes p
  | Committed _ | Aborted _ -> 64
  | Checkpoint active ->
      64 + List.fold_left (fun acc p -> acc + prep_bytes p) 0 active

(* --- the growable log ------------------------------------------------ *)

let push t r =
  let cap = Array.length t.entries in
  if t.start + t.len = cap then
    if t.len * 2 <= cap then begin
      (* plenty of truncated slack at the front: slide instead of grow *)
      Array.blit t.entries t.start t.entries 0 t.len;
      Array.fill t.entries t.len (cap - t.len) dummy_entry;
      t.start <- 0
    end
    else begin
      let bigger = Array.make (cap * 2) dummy_entry in
      Array.blit t.entries t.start bigger 0 t.len;
      t.entries <- bigger;
      t.start <- 0
    end;
  let lsn = t.next_lsn in
  t.next_lsn <- lsn + 1;
  t.entries.(t.start + t.len) <- { lsn; rec_ = r };
  t.len <- t.len + 1;
  Sim.Stats.incr t.appended_c;
  lsn

let records t = List.init t.len (fun i -> t.entries.(t.start + i).rec_)

(* --- the group-commit daemon ---------------------------------------- *)

let pending t = t.next_lsn - 1 - t.durable

let wake_waiters t =
  let ready, rest = List.partition (fun (l, _) -> l <= t.durable) t.waiters in
  t.waiters <- rest;
  (* reverse insertion order = arrival order: deterministic wakeups *)
  List.iter (fun (_, wake) -> ignore (wake ())) (List.rev ready)

(* One flusher at a time drains the buffer: claim everything pending,
   force it in a single sequential append (one positioning delay for
   the whole batch), publish durability, and go again if more arrived
   during the force.  Under sustained load the flushes run
   back-to-back, which also keeps the disk head parked at the log
   tail.  The incarnation check makes a flusher that survived into a
   recovered log (or whose force completed after a crash was declared)
   drop its claim instead of publishing a stale watermark. *)
let rec flush_loop t gen =
  if t.gen = gen then
    if pending t = 0 then t.flushing <- false
    else begin
      let from = t.durable in
      let upto = t.next_lsn - 1 in
      let bytes = t.pend_bytes in
      t.pend_bytes <- 0;
      Disk.append t.disk ~bytes;
      if t.gen = gen then begin
        t.durable <- upto;
        Sim.Stats.incr t.flushes_c;
        Sim.Stats.hadd t.batch_h (float_of_int (upto - from));
        wake_waiters t;
        flush_loop t gen
      end
    end

let start_flusher t =
  t.flushing <- true;
  let gen = t.gen in
  t.spawn "wal-flush" (fun () -> flush_loop t gen)

let maybe_flush t g =
  if not t.flushing then
    if pending t >= g.max_batch then start_flusher t
    else if not t.armed then begin
      t.armed <- true;
      let gen = t.gen in
      let eng = Option.get t.eng in
      Sim.Engine.at eng
        (Sim.Time.add (Sim.Engine.now eng) g.window)
        (fun () ->
          if t.gen = gen then begin
            t.armed <- false;
            if pending t > 0 && not t.flushing then start_flusher t
          end)
    end

(* --- appending ------------------------------------------------------- *)

let enqueue t r =
  let lsn = push t r in
  (match t.gc with
  | None ->
      (* no daemon: records are durable the instant they are logged
         (the caller pays the disk charge, or is an engine-context
         path that historically skipped it) *)
      t.durable <- lsn
  | Some g ->
      t.pend_bytes <- t.pend_bytes + record_bytes r;
      maybe_flush t g);
  lsn

let wait_durable t lsn =
  if t.durable < lsn then
    Sim.suspend "wal-durable" (fun wake ->
        t.waiters <- (lsn, wake) :: t.waiters)

let flushed_lsn t = t.durable

let append t r =
  match t.gc with
  | None ->
      Disk.write t.disk ~bytes:(record_bytes r);
      ignore (enqueue t r)
  | Some _ ->
      let lsn = enqueue t r in
      wait_durable t lsn

let append_nowait t r = ignore (enqueue t r)

(* --- checkpoints and truncation -------------------------------------- *)

let truncate_before t lsn =
  while t.len > 0 && t.entries.(t.start).lsn < lsn do
    t.entries.(t.start) <- dummy_entry;
    t.start <- t.start + 1;
    t.len <- t.len - 1;
    Sim.Stats.incr t.truncated_c
  done

let checkpoint t ~active =
  let lsn = enqueue t (Checkpoint active) in
  wait_durable t lsn;
  (* the checkpoint record carries everything still in doubt, so once
     it is durable the log before it is dead weight: [lsn] is the new
     low-water mark *)
  truncate_before t lsn;
  Sim.Stats.incr t.checkpoints_c;
  lsn

let truncate t =
  Sim.Stats.incr_by t.truncated_c t.len;
  Array.fill t.entries t.start t.len dummy_entry;
  t.start <- 0;
  t.len <- 0

(* --- recovery -------------------------------------------------------- *)

(* Crash semantics: the group-commit buffer is volatile memory.  Any
   record past the last completed flush died with the node, and
   because flushes publish in order the lost records are exactly a
   suffix of the log.  LSNs are never reused — a page tagged by a
   lost commit keeps a tag above the durable horizon, which is how
   the undo pass recognizes it. *)
let crash_reset t =
  match t.gc with
  | None -> ()
  | Some _ ->
      while t.len > 0 && t.entries.(t.start + t.len - 1).lsn > t.durable do
        t.entries.(t.start + t.len - 1) <- dummy_entry;
        t.len <- t.len - 1
      done;
      t.pend_bytes <- 0;
      t.gen <- t.gen + 1;
      t.armed <- false;
      t.flushing <- false;
      t.waiters <- []

let recover t store ~decide ~applied =
  crash_reset t;
  let horizon = t.durable in
  (* stable snapshot: the settle pass below appends to the live log *)
  let entries = Array.sub t.entries t.start t.len in
  (* analysis: outcomes, plus the freshest prepare image per txn —
     seeded from checkpoint records for transactions whose original
     Prepared record was truncated away *)
  let committed = Hashtbl.create 8 in
  let aborted = Hashtbl.create 8 in
  let preps = Hashtbl.create 8 in
  let order = ref [] in
  let note_prep lsn p =
    if not (Hashtbl.mem preps p.txn) then order := p.txn :: !order;
    Hashtbl.replace preps p.txn (lsn, p)
  in
  Array.iter
    (fun e ->
      match e.rec_ with
      | Committed txn ->
          if not (Hashtbl.mem committed txn) then
            Hashtbl.replace committed txn e.lsn
      | Aborted txn -> Hashtbl.replace aborted txn ()
      | Prepared p -> note_prep e.lsn p
      | Checkpoint active -> List.iter (note_prep e.lsn) active)
    entries;
  let order = List.rev !order in
  (* settle undecided prepares: ask the coordinator (decide);
     unreachable coordinators mean presumed abort *)
  List.iter
    (fun txn ->
      if (not (Hashtbl.mem committed txn)) && not (Hashtbl.mem aborted txn)
      then
        match decide txn with
        | `Commit ->
            let lsn = enqueue t (Committed txn) in
            Hashtbl.replace committed txn lsn
        | `Abort ->
            ignore (enqueue t (Aborted txn));
            Hashtbl.replace aborted txn ()
        | `Keep -> ())
    order;
  (* undo of losers: a page tagged past the durable horizon got its
     image from a commit record that never reached the disk.  The
     in-order flush makes that page's writer the only transaction
     that can be in this state (any later writer's prepare could not
     have become durable either, so it never voted, never applied),
     so restoring the loser's before-image is exact. *)
  List.iter
    (fun txn ->
      if Hashtbl.mem aborted txn then
        match Hashtbl.find_opt preps txn with
        | Some (_, p) ->
            List.iter
              (fun (seg, page, before) ->
                if
                  Segment_store.exists store seg
                  && Segment_store.page_lsn store seg page > horizon
                then
                  match before with
                  | Some b ->
                      Segment_store.write_page store seg page (pad_image b)
                        ~lsn:0
                  | None -> Segment_store.clear_page store seg page)
              p.undo
        | None -> ())
    order;
  (* redo committed prepares in log order, page-LSN guarded: a page
     already carrying the commit's tag (or a later one) is skipped,
     so replaying the log twice applies each write once *)
  List.iter
    (fun txn ->
      match (Hashtbl.find_opt committed txn, Hashtbl.find_opt preps txn) with
      | Some clsn, Some (_, p) ->
          let did = ref false in
          List.iter
            (fun (seg, page, data) ->
              if
                Segment_store.exists store seg
                && Segment_store.page_lsn store seg page < clsn
              then begin
                Segment_store.write_page store seg page data ~lsn:clsn;
                did := true
              end)
            p.writes;
          if !did then applied := txn :: !applied
      | _ -> ())
    order;
  (* survivors the caller must re-install as in-doubt *)
  List.filter_map
    (fun txn ->
      if (not (Hashtbl.mem committed txn)) && not (Hashtbl.mem aborted txn)
      then Option.map snd (Hashtbl.find_opt preps txn)
      else None)
    order

(* --- metrics --------------------------------------------------------- *)

let flushes t = Sim.Stats.value t.flushes_c
let checkpoints t = Sim.Stats.value t.checkpoints_c
let truncated t = Sim.Stats.value t.truncated_c
let records_counter t = t.appended_c
let flushes_counter t = t.flushes_c
let batch_hist t = t.batch_h
let checkpoints_counter t = t.checkpoints_c
let truncated_counter t = t.truncated_c
