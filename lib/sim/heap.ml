(* The backing array is [Obj.t] with an immediate unit filler so that
   vacated slots can actually drop their references: a plain ['a
   array] has no value to overwrite freed slots with, and both the
   old [pop] (which left the moved element's copy at [data.(size)],
   pinning popped event closures until overwritten) and [grow] (whose
   [Array.make] filled every fresh slot with the pushed element)
   retained elements long after they left the heap.

   Soundness: the array is always created with the immediate [dummy],
   so it is a regular (non-flat-float) array; element values — boxed
   or immediate — are stored and read back through [Obj.repr]/
   [Obj.obj] without ever letting [Array.make] specialize on them. *)

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : Obj.t array;
  mutable size : int;
}

let dummy = Obj.repr ()

let create ~cmp = { cmp; data = [||]; size = 0 }

let length h = h.size
let is_empty h = h.size = 0

let grow h =
  let capacity = Array.length h.data in
  if h.size >= capacity then begin
    let next = if capacity = 0 then 16 else capacity * 2 in
    let data = Array.make next dummy in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

let elt (h : 'a t) i : 'a = Obj.obj h.data.(i)

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp (elt h i) (elt h parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.size && h.cmp (elt h left) (elt h !smallest) < 0 then
    smallest := left;
  if right < h.size && h.cmp (elt h right) (elt h !smallest) < 0 then
    smallest := right;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h x =
  grow h;
  h.data.(h.size) <- Obj.repr x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop (h : 'a t) : 'a option =
  if h.size = 0 then None
  else begin
    let root = elt h 0 in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      h.data.(h.size) <- dummy;
      sift_down h 0
    end
    else h.data.(0) <- dummy;
    Some root
  end

let peek (h : 'a t) : 'a option = if h.size = 0 then None else Some (elt h 0)

let clear h =
  Array.fill h.data 0 h.size dummy;
  h.size <- 0
