(** Measurement collection for experiments.

    A [series] accumulates scalar samples (typically durations in
    milliseconds) and reports summary statistics.  A [counter] counts
    discrete events (page faults, messages, retransmissions). *)

type series

val series : string -> series
(** A fresh, empty series with a display name. *)

val add : series -> float -> unit
(** Record one sample. *)

val add_span : series -> Time.span -> unit
(** Record a duration sample, converted to milliseconds. *)

val n : series -> int

val mean : series -> float
(** 0.0 on an empty series. *)

val min_v : series -> float
(** Smallest sample; 0.0 on an empty series (never [infinity], which
    would serialize as invalid JSON). *)

val max_v : series -> float
(** Largest sample; 0.0 on an empty series (never [neg_infinity]). *)

val total : series -> float

val percentile : series -> float -> float
(** [percentile s p] with [p] in [0,100]; linear interpolation on the
    sorted samples.  Raises [Invalid_argument] on an empty series. *)

val stddev : series -> float

val name : series -> string

type counter

val counter : string -> counter
val incr : counter -> unit
val incr_by : counter -> int -> unit
val value : counter -> int
val counter_name : counter -> string
