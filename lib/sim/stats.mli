(** Measurement collection for experiments.

    A [series] accumulates scalar samples (typically durations in
    milliseconds) and reports summary statistics.  A [counter] counts
    discrete events (page faults, messages, retransmissions). *)

type series

val series : string -> series
(** A fresh, empty series with a display name. *)

val add : series -> float -> unit
(** Record one sample. *)

val add_span : series -> Time.span -> unit
(** Record a duration sample, converted to milliseconds. *)

val n : series -> int

val mean : series -> float
(** 0.0 on an empty series. *)

val min_v : series -> float
(** Smallest sample; 0.0 on an empty series (never [infinity], which
    would serialize as invalid JSON). *)

val max_v : series -> float
(** Largest sample; 0.0 on an empty series (never [neg_infinity]). *)

val total : series -> float

val percentile : series -> float -> float
(** [percentile s p] with [p] in [0,100]; linear interpolation on the
    sorted samples.  0.0 on an empty series, like [mean]. *)

val stddev : series -> float

val name : series -> string

type counter

val counter : string -> counter
val incr : counter -> unit
val incr_by : counter -> int -> unit
val value : counter -> int
val counter_name : counter -> string

type keyed
(** A family of counters keyed by a small integer key — typically a
    peer address, so per-destination costs (retransmissions, NACKs,
    timeout estimates) can be attributed to the peer that caused
    them. *)

val keyed : string -> keyed
(** A fresh, empty keyed counter family with a display name. *)

val kincr : keyed -> int -> unit
val kadd : keyed -> int -> int -> unit
val kset : keyed -> int -> int -> unit
(** [kset k key v] overwrites the value for [key] (used for gauges
    such as a current timeout estimate, rather than event counts). *)

val kvalue : keyed -> int -> int
(** 0 for a key never touched. *)

val kitems : keyed -> (int * int) list
(** All (key, value) pairs, sorted by key (deterministic). *)

val keyed_name : keyed -> string

type hist
(** A streaming histogram: HDR-style logarithmic buckets over
    non-negative samples.  O(1) memory regardless of stream length
    (one fixed bucket array), exact count/sum/min/max, and any
    percentile within 1% relative error of the exact sorted-series
    answer.  Use it where a [series] would hold millions of
    samples. *)

val hist : string -> hist
(** A fresh, empty histogram with a display name. *)

val hadd : hist -> float -> unit
(** Record one sample.  Negative or zero samples land in the lowest
    bucket (min/max stay exact). *)

val hadd_span : hist -> Time.span -> unit
(** Record a duration sample, converted to milliseconds. *)

val hist_n : hist -> int
val hist_total : hist -> float

val hist_mean : hist -> float
(** Exact (tracked sum / count); 0.0 on an empty histogram. *)

val hist_min : hist -> float
(** Exact smallest sample; 0.0 on an empty histogram. *)

val hist_max : hist -> float
(** Exact largest sample; 0.0 on an empty histogram. *)

val hist_percentile : hist -> float -> float
(** [hist_percentile h p] with [p] in [0,100]: the geometric midpoint
    of the bucket holding the rank-[p] sample (same rank convention
    as {!percentile}), clamped into [[min, max]]; ≤1% relative error
    vs the exact series.  0.0 on an empty histogram. *)

val hist_name : hist -> string

val hist_items : hist -> (float * int) list
(** Non-empty buckets as (representative value, count) pairs in
    increasing value order — the export-friendly view. *)
