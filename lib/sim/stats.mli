(** Measurement collection for experiments.

    A [series] accumulates scalar samples (typically durations in
    milliseconds) and reports summary statistics.  A [counter] counts
    discrete events (page faults, messages, retransmissions). *)

type series

val series : string -> series
(** A fresh, empty series with a display name. *)

val add : series -> float -> unit
(** Record one sample. *)

val add_span : series -> Time.span -> unit
(** Record a duration sample, converted to milliseconds. *)

val n : series -> int

val mean : series -> float
(** 0.0 on an empty series. *)

val min_v : series -> float
(** Smallest sample; 0.0 on an empty series (never [infinity], which
    would serialize as invalid JSON). *)

val max_v : series -> float
(** Largest sample; 0.0 on an empty series (never [neg_infinity]). *)

val total : series -> float

val percentile : series -> float -> float
(** [percentile s p] with [p] in [0,100]; linear interpolation on the
    sorted samples.  Raises [Invalid_argument] on an empty series. *)

val stddev : series -> float

val name : series -> string

type counter

val counter : string -> counter
val incr : counter -> unit
val incr_by : counter -> int -> unit
val value : counter -> int
val counter_name : counter -> string

type keyed
(** A family of counters keyed by a small integer key — typically a
    peer address, so per-destination costs (retransmissions, NACKs,
    timeout estimates) can be attributed to the peer that caused
    them. *)

val keyed : string -> keyed
(** A fresh, empty keyed counter family with a display name. *)

val kincr : keyed -> int -> unit
val kadd : keyed -> int -> int -> unit
val kset : keyed -> int -> int -> unit
(** [kset k key v] overwrites the value for [key] (used for gauges
    such as a current timeout estimate, rather than event counts). *)

val kvalue : keyed -> int -> int
(** 0 for a key never touched. *)

val kitems : keyed -> (int * int) list
(** All (key, value) pairs, sorted by key (deterministic). *)

val keyed_name : keyed -> string
