(* Concurrent fan-out with a deterministic join.

   Workers are spawned in list order, so their first events enter the
   engine queue in list order; the join reads their ivars in the same
   order.  Both orders are fixed by the input list, which makes a
   fan-out exactly as reproducible as the serial loop it replaces:
   two runs with the same engine seed interleave identically.

   Workers inherit the caller's group, so a machine crash
   (kill_group) takes the whole fan-out down with the process that
   started it.  A worker killed from a *different* group would leave
   the join suspended forever, surfacing as an engine deadlock —
   callers fanning out across groups should not exist in this
   codebase (RPC timeouts, not process death, are how peer failure is
   reported). *)

let map ?(label = "fanout") xs ~f =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ] (* nothing to overlap; skip the spawn *)
  | xs ->
      let cells =
        List.map
          (fun x ->
            let cell = Ivar.create () in
            ignore
              (Engine.Process.spawn label (fun () ->
                   let r =
                     match f x with
                     | v -> Ok v
                     | exception Engine.Killed -> raise Engine.Killed
                     | exception e -> Error e
                   in
                   Ivar.fill cell r));
            cell)
          xs
      in
      List.map
        (fun cell ->
          match Ivar.read cell with Ok v -> v | Error e -> raise e)
        cells

let iter ?label xs ~f = ignore (map ?label xs ~f:(fun x : unit -> f x))
