(* Samples live in a growable float array (amortized O(1) add, no
   per-sample boxing).  Order statistics (percentile, min, max) read
   a sorted copy that is computed once and cached until the next
   [add]: a report that asks for several percentiles of a 10k-sample
   series pays for one sort, not one per call. *)

type series = {
  s_name : string;
  mutable data : float array;  (* samples live in data.[0 .. count-1] *)
  mutable count : int;
  mutable sorted : float array option;  (* cache; invalidated by add *)
}

let series s_name = { s_name; data = [||]; count = 0; sorted = None }

let add s x =
  if s.count = Array.length s.data then begin
    let grown = Array.make (max 16 (2 * s.count)) 0.0 in
    Array.blit s.data 0 grown 0 s.count;
    s.data <- grown
  end;
  s.data.(s.count) <- x;
  s.count <- s.count + 1;
  s.sorted <- None

let add_span s span = add s (Time.to_ms_f span)

let n s = s.count

let fold f init s =
  let acc = ref init in
  for i = 0 to s.count - 1 do
    acc := f !acc s.data.(i)
  done;
  !acc

let total s = fold ( +. ) 0.0 s

let mean s = if s.count = 0 then 0.0 else total s /. float_of_int s.count

let sorted s =
  match s.sorted with
  | Some a -> a
  | None ->
      let a = Array.sub s.data 0 s.count in
      Array.sort Float.compare a;
      s.sorted <- Some a;
      a

(* Like [mean], an empty series reports 0.0 rather than an infinity
   that would leak into reports (and serialize as invalid JSON). *)
let min_v s = if s.count = 0 then 0.0 else (sorted s).(0)
let max_v s = if s.count = 0 then 0.0 else (sorted s).(s.count - 1)

let percentile s p =
  if s.count = 0 then invalid_arg "Stats.percentile: empty series";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: bad percentile";
  let arr = sorted s in
  let idx = p /. 100.0 *. float_of_int (s.count - 1) in
  let lo = int_of_float idx in
  let hi = min (lo + 1) (s.count - 1) in
  let frac = idx -. float_of_int lo in
  arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))

let stddev s =
  if s.count < 2 then 0.0
  else begin
    let m = mean s in
    let sq = fold (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 s in
    sqrt (sq /. float_of_int (s.count - 1))
  end

let name s = s.s_name

type counter = { c_name : string; mutable v : int }

let counter c_name = { c_name; v = 0 }
let incr c = c.v <- c.v + 1
let incr_by c k = c.v <- c.v + k
let value c = c.v
let counter_name c = c.c_name

(* Counters keyed by a small integer key — in practice a peer address,
   so a transport can attribute retransmissions or timeouts to the
   destination that caused them.  Reads are sorted by key so reports
   and JSON stay deterministic regardless of hash order. *)

type keyed = { k_name : string; tbl : (int, int) Hashtbl.t }

let keyed k_name = { k_name; tbl = Hashtbl.create 8 }

let kadd k key n =
  let v = match Hashtbl.find_opt k.tbl key with Some v -> v | None -> 0 in
  Hashtbl.replace k.tbl key (v + n)

let kincr k key = kadd k key 1
let kset k key v = Hashtbl.replace k.tbl key v

let kvalue k key =
  match Hashtbl.find_opt k.tbl key with Some v -> v | None -> 0

let kitems k =
  Hashtbl.fold (fun key v acc -> (key, v) :: acc) k.tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let keyed_name k = k.k_name
