(* Samples live in a growable float array (amortized O(1) add, no
   per-sample boxing).  Order statistics (percentile, min, max) read
   a sorted copy that is computed once and cached until the next
   [add]: a report that asks for several percentiles of a 10k-sample
   series pays for one sort, not one per call. *)

type series = {
  s_name : string;
  mutable data : float array;  (* samples live in data.[0 .. count-1] *)
  mutable count : int;
  mutable sorted : float array option;  (* cache; invalidated by add *)
}

let series s_name = { s_name; data = [||]; count = 0; sorted = None }

let add s x =
  if s.count = Array.length s.data then begin
    let grown = Array.make (max 16 (2 * s.count)) 0.0 in
    Array.blit s.data 0 grown 0 s.count;
    s.data <- grown
  end;
  s.data.(s.count) <- x;
  s.count <- s.count + 1;
  s.sorted <- None

let add_span s span = add s (Time.to_ms_f span)

let n s = s.count

let fold f init s =
  let acc = ref init in
  for i = 0 to s.count - 1 do
    acc := f !acc s.data.(i)
  done;
  !acc

let total s = fold ( +. ) 0.0 s

let mean s = if s.count = 0 then 0.0 else total s /. float_of_int s.count

let sorted s =
  match s.sorted with
  | Some a -> a
  | None ->
      let a = Array.sub s.data 0 s.count in
      Array.sort Float.compare a;
      s.sorted <- Some a;
      a

(* Like [mean], an empty series reports 0.0 rather than an infinity
   that would leak into reports (and serialize as invalid JSON). *)
let min_v s = if s.count = 0 then 0.0 else (sorted s).(0)
let max_v s = if s.count = 0 then 0.0 else (sorted s).(s.count - 1)

(* Like [mean]/[min_v]/[max_v], an empty series reports 0.0: an empty
   load cell must not crash a bench run. *)
let percentile s p =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: bad percentile";
  if s.count = 0 then 0.0
  else
  let arr = sorted s in
  let idx = p /. 100.0 *. float_of_int (s.count - 1) in
  let lo = int_of_float idx in
  let hi = min (lo + 1) (s.count - 1) in
  let frac = idx -. float_of_int lo in
  arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))

let stddev s =
  if s.count < 2 then 0.0
  else begin
    let m = mean s in
    let sq = fold (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 s in
    sqrt (sq /. float_of_int (s.count - 1))
  end

let name s = s.s_name

type counter = { c_name : string; mutable v : int }

let counter c_name = { c_name; v = 0 }
let incr c = c.v <- c.v + 1
let incr_by c k = c.v <- c.v + k
let value c = c.v
let counter_name c = c.c_name

(* Counters keyed by a small integer key — in practice a peer address,
   so a transport can attribute retransmissions or timeouts to the
   destination that caused them.  Reads are sorted by key so reports
   and JSON stay deterministic regardless of hash order. *)

type keyed = { k_name : string; tbl : (int, int) Hashtbl.t }

let keyed k_name = { k_name; tbl = Hashtbl.create 8 }

let kadd k key n =
  let v = match Hashtbl.find_opt k.tbl key with Some v -> v | None -> 0 in
  Hashtbl.replace k.tbl key (v + n)

let kincr k key = kadd k key 1
let kset k key v = Hashtbl.replace k.tbl key v

let kvalue k key =
  match Hashtbl.find_opt k.tbl key with Some v -> v | None -> 0

let kitems k =
  Hashtbl.fold (fun key v acc -> (key, v) :: acc) k.tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let keyed_name k = k.k_name

(* ------------------------------------------------------------------ *)
(* Streaming histogram: HDR-style logarithmic buckets.

   A [hist] summarizes an unbounded stream of non-negative samples in
   O(1) memory: a fixed array of geometric buckets (ratio [1 + 2e]
   between bucket boundaries) plus exact count/sum/min/max.  A sample
   lands in the bucket whose boundaries bracket it and is later
   reported as the bucket's geometric midpoint, so any percentile is
   off by at most a factor of [sqrt (1 + 2e)] — under 1% relative
   error for the default e = 1% — while a million-sample series costs
   the same 28 KB as a ten-sample one.  p0 and p100 are exact (they
   read the tracked min/max), as are [hist_mean] and [hist_total]. *)

(* Buckets span [lo_edge, hi_edge); values outside are clamped into
   the first/last bucket (and min/max stay exact, so the clamp only
   matters for mid percentiles, where such outliers are negligible). *)
let h_lo_edge = 1e-6 (* 1 ns expressed in ms, the usual sample unit *)
let h_hi_edge = 1e9
let h_ratio = 1.02 (* bucket boundary growth: <=1% midpoint error *)
let h_log_ratio = log h_ratio

(* bucket index for v in [lo_edge, hi_edge): floor (log (v/lo) / log r) *)
let h_buckets =
  int_of_float (ceil (log (h_hi_edge /. h_lo_edge) /. h_log_ratio)) + 1

type hist = {
  h_name : string;
  buckets : int array; (* buckets.(0) also holds samples <= lo_edge *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

let hist h_name =
  {
    h_name;
    buckets = Array.make h_buckets 0;
    h_count = 0;
    h_sum = 0.0;
    h_min = infinity;
    h_max = neg_infinity;
  }

let h_index v =
  if v <= h_lo_edge then 0
  else
    let i = int_of_float (log (v /. h_lo_edge) /. h_log_ratio) in
    if i < 0 then 0 else if i >= h_buckets then h_buckets - 1 else i

(* geometric midpoint of bucket i: lo * r^(i + 1/2) *)
let h_value i = h_lo_edge *. exp (h_log_ratio *. (float_of_int i +. 0.5))

let hadd h v =
  h.buckets.(h_index v) <- h.buckets.(h_index v) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let hadd_span h span = hadd h (Time.to_ms_f span)

let hist_n h = h.h_count
let hist_total h = h.h_sum
let hist_mean h = if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count
let hist_min h = if h.h_count = 0 then 0.0 else h.h_min
let hist_max h = if h.h_count = 0 then 0.0 else h.h_max

let hist_percentile h p =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.hist_percentile";
  if h.h_count = 0 then 0.0
  else if p = 0.0 then h.h_min (* exact: tracked outside the buckets *)
  else if p = 100.0 then h.h_max
  else begin
    (* same rank convention as [percentile] on the exact series *)
    let rank = p /. 100.0 *. float_of_int (h.h_count - 1) in
    let target = int_of_float rank in
    let seen = ref 0 and i = ref 0 and ans = ref h.h_max in
    (try
       while !i < h_buckets do
         let c = h.buckets.(!i) in
         if c > 0 then begin
           seen := !seen + c;
           if !seen > target then begin
             ans := h_value !i;
             raise Exit
           end
         end;
         i := !i + 1
       done
     with Exit -> ());
    (* exact extremes beat the bucket midpoint at the edges *)
    if !ans < h.h_min then h.h_min
    else if !ans > h.h_max then h.h_max
    else !ans
  end

let hist_name h = h.h_name

let hist_items h =
  let acc = ref [] in
  for i = h_buckets - 1 downto 0 do
    if h.buckets.(i) > 0 then acc := (h_value i, h.buckets.(i)) :: !acc
  done;
  !acc
