type series = { s_name : string; mutable samples : float list; mutable count : int }

let series s_name = { s_name; samples = []; count = 0 }

let add s x =
  s.samples <- x :: s.samples;
  s.count <- s.count + 1

let add_span s span = add s (Time.to_ms_f span)

let n s = s.count

let fold f init s = List.fold_left f init s.samples

let total s = fold ( +. ) 0.0 s

let mean s = if s.count = 0 then 0.0 else total s /. float_of_int s.count

(* Like [mean], an empty series reports 0.0 rather than an infinity
   that would leak into reports (and serialize as invalid JSON). *)
let min_v s = if s.count = 0 then 0.0 else fold Float.min Float.infinity s
let max_v s = if s.count = 0 then 0.0 else fold Float.max Float.neg_infinity s

let percentile s p =
  if s.count = 0 then invalid_arg "Stats.percentile: empty series";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: bad percentile";
  let sorted = List.sort Float.compare s.samples in
  let arr = Array.of_list sorted in
  let idx = p /. 100.0 *. float_of_int (s.count - 1) in
  let lo = int_of_float idx in
  let hi = min (lo + 1) (s.count - 1) in
  let frac = idx -. float_of_int lo in
  arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))

let stddev s =
  if s.count < 2 then 0.0
  else begin
    let m = mean s in
    let sq = fold (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 s in
    sqrt (sq /. float_of_int (s.count - 1))
  end

let name s = s.s_name

type counter = { c_name : string; mutable v : int }

let counter c_name = { c_name; v = 0 }
let incr c = c.v <- c.v + 1
let incr_by c k = c.v <- c.v + k
let value c = c.v
let counter_name c = c.c_name
