(* Entries live in a growable array (amortized O(1) record, no list
   cells): [entries] materializes a list without re-reversing, [pp]
   iterates in place, and [count ()] is O(1).  An optional capacity
   turns the array into a ring that keeps the most recent entries —
   a long run can stay traced without unbounded memory. *)

type entry = { at : Time.t; tag : string; detail : string }

let dummy = { at = 0; tag = ""; detail = "" }

type t = {
  mutable on : bool;
  capacity : int; (* 0 = unbounded *)
  mutable data : entry array;
  mutable count : int; (* stored entries *)
  mutable next : int; (* ring write position when capacity > 0 *)
}

let create ?(enabled = true) ?(capacity = 0) () =
  if capacity < 0 then invalid_arg "Trace.create: negative capacity";
  { on = enabled; capacity; data = [||]; count = 0; next = 0 }

let enabled t = t.on
let set_enabled t v = t.on <- v

let record t at tag detail =
  if t.on then begin
    let e = { at; tag; detail } in
    if t.capacity > 0 then begin
      if Array.length t.data = 0 then t.data <- Array.make t.capacity dummy;
      t.data.(t.next) <- e;
      t.next <- (t.next + 1) mod t.capacity;
      if t.count < t.capacity then t.count <- t.count + 1
    end
    else begin
      if t.count = Array.length t.data then begin
        let grown = Array.make (max 64 (2 * t.count)) dummy in
        Array.blit t.data 0 grown 0 t.count;
        t.data <- grown
      end;
      t.data.(t.count) <- e;
      t.count <- t.count + 1
    end
  end

(* index of the i-th stored entry in chronological order *)
let nth t i =
  if t.capacity > 0 && t.count = t.capacity then
    t.data.((t.next + i) mod t.capacity)
  else t.data.(i)

let iter t f =
  for i = 0 to t.count - 1 do
    f (nth t i)
  done

let entries t =
  let acc = ref [] in
  for i = t.count - 1 downto 0 do
    acc := nth t i :: !acc
  done;
  !acc

let count t ?tag () =
  match tag with
  | None -> t.count
  | Some tag ->
      let k = ref 0 in
      iter t (fun e -> if String.equal e.tag tag then incr k);
      !k

let clear t =
  t.count <- 0;
  t.next <- 0

let pp fmt t =
  iter t (fun e ->
      Format.fprintf fmt "%a %-12s %s@." Time.pp e.at e.tag e.detail)
