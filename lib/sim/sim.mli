(** Deterministic discrete-event simulation toolkit.

    This is the root module of the [sim] library; it re-exports the
    submodules and the direct-style process operations.  A typical
    client creates an {!Engine.t}, spawns processes that communicate
    through {!Mailbox}/{!Ivar} and synchronize with
    {!Semaphore}/{!Mutex}/{!Rwlock}, and drives everything with
    {!Engine.run}. *)

module Time = Time
module Heap = Heap
module Rng = Rng
module Engine = Engine
module Ivar = Ivar
module Mailbox = Mailbox
module Semaphore = Semaphore
module Mutex = Mutex
module Condition = Condition
module Rwlock = Rwlock
module Stats = Stats
module Trace = Trace
module Fanout = Fanout

exception Killed
(** Alias of {!Engine.Killed}. *)

(** {1 Process operations}

    Usable only inside a process spawned on an engine. *)

val engine : unit -> Engine.t
val now : unit -> Time.t
val self : unit -> Engine.pid
val sleep : Time.span -> unit
val yield : unit -> unit
val suspend : string -> (('a -> bool) -> unit) -> 'a
val spawn : ?group:int -> string -> (unit -> unit) -> Engine.pid

val after : Time.span -> (unit -> unit) -> unit
(** [after span thunk] schedules [thunk] to run in engine context
    [span] from now. *)

(** {1 Running} *)

val exec : ?seed:int -> (unit -> 'a) -> 'a
(** [exec f] creates an engine, runs [f] as a process to completion,
    and returns its result.  Raises [Failure] if the event queue
    drains before [f] finishes (deadlock). *)

val exec_on : Engine.t -> (unit -> 'a) -> 'a
(** Like {!exec} on an existing engine: spawns [f], runs the engine
    until idle, and returns [f]'s result or raises on deadlock. *)
