module Time = Time
module Heap = Heap
module Rng = Rng
module Engine = Engine
module Ivar = Ivar
module Mailbox = Mailbox
module Semaphore = Semaphore
module Mutex = Mutex
module Condition = Condition
module Rwlock = Rwlock
module Stats = Stats
module Trace = Trace
module Fanout = Fanout

exception Killed = Engine.Killed

let engine = Engine.Process.engine
let now = Engine.Process.now
let self = Engine.Process.self
let sleep = Engine.Process.sleep
let yield = Engine.Process.yield
let suspend = Engine.Process.suspend
let spawn = Engine.Process.spawn

let after span thunk =
  let eng = engine () in
  Engine.at eng (Time.add (Engine.now eng) span) thunk

let exec_on eng f =
  let result = Ivar.create () in
  let _pid =
    Engine.spawn eng "exec" (fun () -> Ivar.fill result (f ()))
  in
  Engine.run eng;
  match Ivar.peek result with
  | Some v -> v
  | None -> failwith "Sim.exec: deadlock (event queue drained before completion)"

let exec ?seed f =
  let eng = Engine.create ?seed () in
  exec_on eng f
