(** Concurrent fan-out with a deterministic join.

    The building block for protocol steps that talk to many peers at
    once — coherence invalidation, two-phase-commit prepare/commit —
    where the serial cost O(peers × RTT) is pure waste: the protocol
    needs every peer's answer, not any ordering between peers. *)

val map : ?label:string -> 'a list -> f:('a -> 'b) -> 'b list
(** [map xs ~f] runs [f x] for every element concurrently, each in a
    freshly spawned process (inheriting the caller's group), and
    waits for all of them; results are returned in input order.
    Workers are spawned, and joined, in list order, so a fan-out is
    deterministic for a fixed input list and engine seed.  An
    exception raised by a worker is re-raised at the join (the first
    failing element in list order wins).  A singleton or empty list
    runs inline without spawning.

    Must be called from within a process.  Total elapsed time is the
    maximum over the workers, not the sum — with [n] suspects each
    costing a full RPC-retry timeout, the fan-out costs one timeout,
    not [n]. *)

val iter : ?label:string -> 'a list -> f:('a -> unit) -> unit
(** [map], for effects only. *)
