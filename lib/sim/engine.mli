(** The discrete-event simulation engine.

    The engine owns a virtual clock and a priority queue of pending
    work.  Simulated activities are {e processes}: ordinary OCaml
    functions that use the direct-style operations of {!Process}
    (re-exported by {!Sim}), implemented with effect handlers.
    Events scheduled for the same instant run in scheduling order, so
    the whole simulation is deterministic.

    A process belongs to at most one {e group} (in practice, the node
    it runs on); {!kill_group} terminates every process of a group,
    modelling a machine crash. *)

type t

type pid = int
(** Process identifier, unique within an engine. *)

exception Killed
(** Raised inside a process when it is killed.  Processes must not
    swallow this exception. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] is a fresh engine with its clock at
    {!Time.zero}.  The default seed is 42. *)

val now : t -> Time.t
(** Current virtual time. *)

val rng : t -> Rng.t
(** The engine's root random stream. *)

val spawn : t -> ?group:int -> string -> (unit -> unit) -> pid
(** [spawn t name f] schedules process [f] to start at the current
    instant.  [name] appears in error reports. *)

val at : t -> Time.t -> (unit -> unit) -> unit
(** [at t time thunk] runs [thunk] in engine context at [time] (or
    now, if [time] is in the past).  The thunk must not use the
    process operations of {!Process}; it may wake suspended processes
    (fill ivars, send to mailboxes, ...). *)

val kill : t -> pid -> unit
(** Terminate a process.  If it is suspended it receives {!Killed}
    immediately; if it is running it dies at its next suspension
    point.  Killing a finished or already-dead process is a no-op. *)

val kill_group : t -> int -> unit
(** Kill every live process of a group, in pid order. *)

val on_terminate : t -> pid -> (unit -> unit) -> unit
(** Run a callback (in engine context) when the process finishes,
    fails, or is killed; runs immediately if it is already gone.
    Used to observe processes that may die without producing a
    result (machine crashes). *)

val alive : t -> pid -> bool
(** [alive t pid] is true while the process has neither finished nor
    been killed. *)

val procs : t -> (pid * string) list
(** Live processes, in pid order.  For debugging and tests (e.g.
    asserting that a restart did not leak a duplicate daemon). *)

val run : ?until:Time.t -> t -> unit
(** Drain the event queue, advancing the clock, until it is empty or
    the clock would pass [until].  Uncaught exceptions from processes
    propagate out of [run]. *)

val step : t -> bool
(** Execute the single next event.  Returns false if the queue was
    empty. *)

val pending : t -> int
(** Number of queued events (for tests). *)

(** Direct-style operations available inside a process.  Calling them
    outside a process raises [Effect.Unhandled]. *)
module Process : sig
  val engine : unit -> t
  (** The engine running the current process. *)

  val now : unit -> Time.t
  (** Current virtual time. *)

  val self : unit -> pid
  (** Pid of the current process. *)

  val sleep : Time.span -> unit
  (** Suspend for a virtual duration. *)

  val yield : unit -> unit
  (** Let every other runnable process scheduled at this instant run
      first. *)

  val suspend : string -> (('a -> bool) -> unit) -> 'a
  (** [suspend label register] parks the process and calls
      [register wake] in engine context.  The process resumes with
      [v] when [wake v] is first called and returns true; a false
      return means the process is already woken or dead and the
      caller should hand the wakeup to someone else (crash safety
      for lock handoffs).  [register] must not use process
      operations. *)

  val spawn : ?group:int -> string -> (unit -> unit) -> pid
  (** Spawn a sibling process.  It inherits no state; [group]
      defaults to the spawning process's group. *)
end
