(* Waiters are callbacks returning true when they consumed the value;
   a waiter whose timeout already fired (or whose process died) is
   marked dead and skipped, letting the value go to the next waiter
   or back to the queue.  Dead waiters are compacted out of the queue
   lazily: a timeout only rotates the queue once dead entries
   outnumber live ones, so a mailbox polled with [recv_timeout] in a
   retry loop keeps a bounded waiter queue at amortized O(1) per
   timeout instead of O(queue) each. *)

type 'a waiter = { wake : 'a -> bool; mutable dead : bool }

type 'a t = {
  label : string;
  values : 'a Queue.t;
  waiters : 'a waiter Queue.t;
  mutable dead_count : int;  (* dead waiters still in [waiters] *)
}

let create label =
  { label; values = Queue.create (); waiters = Queue.create (); dead_count = 0 }

let rec offer t v =
  match Queue.take_opt t.waiters with
  | None -> Queue.add v t.values
  | Some w ->
      if w.dead then begin
        t.dead_count <- t.dead_count - 1;
        offer t v
      end
      else if w.wake v then w.dead <- true
      else begin
        w.dead <- true;
        offer t v
      end

let send t v = offer t v

let purge_dead t =
  for _ = 1 to Queue.length t.waiters do
    let w = Queue.pop t.waiters in
    if not w.dead then Queue.add w t.waiters
  done;
  t.dead_count <- 0

(* Called when a queued waiter dies in place (timeout fired).  Keeps
   the invariant that live waiters are at least half the queue, which
   bounds the queue at 2× the live waiters and makes each purge pay
   for the timeouts that preceded it. *)
let note_dead t =
  t.dead_count <- t.dead_count + 1;
  if 2 * t.dead_count > Queue.length t.waiters then purge_dead t

let recv t =
  match Queue.take_opt t.values with
  | Some v -> v
  | None ->
      Engine.Process.suspend t.label (fun wake ->
          Queue.add { wake = (fun v -> wake v); dead = false } t.waiters)

let recv_timeout t span =
  match Queue.take_opt t.values with
  | Some v -> Some v
  | None ->
      let eng = Engine.Process.engine () in
      let deadline = Time.add (Engine.now eng) span in
      Engine.Process.suspend t.label (fun wake ->
          let state = ref `Waiting in
          let w =
            {
              dead = false;
              wake =
                (fun v ->
                  if !state = `Waiting && wake (Some v) then begin
                    state := `Got;
                    true
                  end
                  else false);
            }
          in
          Queue.add w t.waiters;
          Engine.at eng deadline (fun () ->
              if !state = `Waiting then begin
                state := `Timeout;
                w.dead <- true;
                note_dead t;
                ignore (wake None)
              end))

let try_recv t = Queue.take_opt t.values
let length t = Queue.length t.values

let waiters t =
  Queue.fold (fun acc w -> if w.dead then acc else acc + 1) 0 t.waiters
