type pid = int

exception Killed

type proc = {
  pid : int;
  name : string;
  group : int option;
  mutable alive : bool;
  mutable cancel : (unit -> unit) option;
  mutable on_term : (unit -> unit) list;
}

type event = {
  time : Time.t;
  order : int;
  mutable live : bool;
  thunk : unit -> unit;
}

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  events : event Heap.t;
  procs : (int, proc) Hashtbl.t;
  mutable next_pid : int;
  root_rng : Rng.t;
}

type _ Effect.t +=
  | E_engine : t Effect.t
  | E_self : pid Effect.t
  | E_sleep : Time.span -> unit Effect.t
  | E_suspend : string * (('a -> bool) -> unit) -> 'a Effect.t
  | E_spawn : string * int option * (unit -> unit) -> pid Effect.t

let cmp_event a b =
  match Time.compare a.time b.time with
  | 0 -> Int.compare a.order b.order
  | c -> c

let create ?(seed = 42) () =
  {
    clock = Time.zero;
    seq = 0;
    events = Heap.create ~cmp:cmp_event;
    procs = Hashtbl.create 64;
    next_pid = 1;
    root_rng = Rng.create ~seed;
  }

let now t = t.clock
let rng t = t.root_rng
let pending t = Heap.length t.events

(* Cancelled events stay in the heap but are skipped without
   advancing the clock, so a killed sleeper does not drag the
   simulation clock to its original wake-up time. *)
let schedule_cancellable t time thunk =
  t.seq <- t.seq + 1;
  let time = max time t.clock in
  let ev = { time; order = t.seq; live = true; thunk } in
  Heap.push t.events ev;
  ev

let schedule_at t time thunk = ignore (schedule_cancellable t time thunk)
let schedule t thunk = schedule_at t t.clock thunk
let at = schedule_at

let rec drop_dead t =
  match Heap.peek t.events with
  | Some ev when not ev.live ->
      ignore (Heap.pop t.events);
      drop_dead t
  | Some _ | None -> ()

let finish t proc =
  Hashtbl.remove t.procs proc.pid;
  let callbacks = proc.on_term in
  proc.on_term <- [];
  List.iter (fun f -> f ()) (List.rev callbacks)

(* Each process runs under its own deep handler.  Wakers and timers
   always resume continuations from engine context (either directly
   inside an event thunk, or by scheduling a fresh event), never from
   inside another process, so at most one process executes at a
   time. *)
let rec run_proc : t -> proc -> (unit -> unit) -> unit =
 fun t proc f ->
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> finish t proc);
      exnc =
        (fun e ->
          finish t proc;
          match e with
          | Killed -> ()
          | e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_engine ->
              Some (fun (k : (a, _) continuation) -> continue k t)
          | E_self -> Some (fun (k : (a, _) continuation) -> continue k proc.pid)
          | E_spawn (name, group, body) ->
              Some
                (fun (k : (a, _) continuation) ->
                  let group =
                    match group with Some _ as g -> g | None -> proc.group
                  in
                  let pid = spawn t ?group name body in
                  continue k pid)
          | E_sleep span ->
              Some
                (fun (k : (a, _) continuation) ->
                  if not proc.alive then discontinue k Killed
                  else begin
                    let state = ref `Waiting in
                    let timer = ref None in
                    proc.cancel <-
                      Some
                        (fun () ->
                          if !state = `Waiting then begin
                            state := `Cancelled;
                            (match !timer with
                            | Some ev -> ev.live <- false
                            | None -> ());
                            schedule t (fun () -> discontinue k Killed)
                          end);
                    timer :=
                      Some
                        (schedule_cancellable t (Time.add t.clock span)
                           (fun () ->
                             if !state = `Waiting then begin
                               state := `Fired;
                               proc.cancel <- None;
                               continue k ()
                             end))
                  end)
          | E_suspend (_label, register) ->
              Some
                (fun (k : (a, _) continuation) ->
                  if not proc.alive then discontinue k Killed
                  else begin
                    let state = ref `Waiting in
                    proc.cancel <-
                      Some
                        (fun () ->
                          if !state = `Waiting then begin
                            state := `Cancelled;
                            schedule t (fun () -> discontinue k Killed)
                          end);
                    let wake v =
                      if !state = `Waiting && proc.alive then begin
                        state := `Woken;
                        proc.cancel <- None;
                        schedule t (fun () -> continue k v);
                        true
                      end
                      else false
                    in
                    register wake
                  end)
          | _ -> None);
    }

and spawn : t -> ?group:int -> string -> (unit -> unit) -> pid =
 fun t ?group name f ->
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let proc = { pid; name; group; alive = true; cancel = None; on_term = [] } in
  Hashtbl.replace t.procs pid proc;
  schedule t (fun () -> if proc.alive then run_proc t proc f else finish t proc);
  pid

let kill t pid =
  match Hashtbl.find_opt t.procs pid with
  | None -> ()
  | Some proc ->
      if proc.alive then begin
        proc.alive <- false;
        match proc.cancel with
        | Some c ->
            proc.cancel <- None;
            c ()
        | None -> ()
      end

let kill_group t group =
  let victims =
    Hashtbl.fold
      (fun pid proc acc -> if proc.group = Some group then pid :: acc else acc)
      t.procs []
  in
  List.iter (kill t) (List.sort Int.compare victims)

let on_terminate t pid f =
  match Hashtbl.find_opt t.procs pid with
  | Some proc -> proc.on_term <- f :: proc.on_term
  | None -> f ()

let alive t pid =
  match Hashtbl.find_opt t.procs pid with
  | None -> false
  | Some proc -> proc.alive

let procs t =
  Hashtbl.fold
    (fun pid proc acc -> if proc.alive then (pid, proc.name) :: acc else acc)
    t.procs []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let step t =
  drop_dead t;
  match Heap.pop t.events with
  | None -> false
  | Some ev ->
      t.clock <- max t.clock ev.time;
      ev.thunk ();
      true

let run ?until t =
  let running = ref true in
  while !running do
    drop_dead t;
    match Heap.peek t.events with
    | None -> running := false
    | Some ev -> (
        match until with
        | Some u when Time.compare ev.time u > 0 ->
            t.clock <- u;
            running := false
        | Some _ | None -> ignore (step t))
  done

module Process = struct
  let engine () = Effect.perform E_engine
  let now () = now (engine ())
  let self () = Effect.perform E_self
  let sleep span = Effect.perform (E_sleep span)
  let yield () = sleep 0
  let suspend label register = Effect.perform (E_suspend (label, register))
  let spawn ?group name f = Effect.perform (E_spawn (name, group, f))
end
