type pid = int

exception Killed

type proc = {
  pid : int;
  name : string;
  group : int option;
  mutable alive : bool;
  mutable cancel : (unit -> unit) option;
  mutable on_term : (unit -> unit) list;
}

type event = {
  time : Time.t;
  order : int;
  mutable live : bool;
  thunk : unit -> unit;
}

(* The event queue is a binary heap specialized to events: the
   (time, order) comparison is two inline int compares instead of a
   call through a comparator closure, and the hot operations return
   events directly (guarded by [is_empty]) rather than allocating an
   option per peek/pop.  Vacated slots are overwritten with a shared
   dummy so popped event closures stay collectable (the concern the
   generic [Heap] solves with an [Obj.t] backing array). *)
module Evq = struct
  let dummy = { time = min_int; order = 0; live = false; thunk = ignore }

  type t = { mutable arr : event array; mutable n : int }

  let create () = { arr = [||]; n = 0 }
  let length q = q.n
  let is_empty q = q.n = 0

  let[@inline] before a b =
    a.time < b.time || (a.time = b.time && a.order < b.order)

  let push q ev =
    let cap = Array.length q.arr in
    if q.n >= cap then begin
      let arr = Array.make (if cap = 0 then 256 else 2 * cap) dummy in
      Array.blit q.arr 0 arr 0 q.n;
      q.arr <- arr
    end;
    let arr = q.arr in
    let i = ref q.n in
    q.n <- q.n + 1;
    arr.(!i) <- ev;
    let sifting = ref true in
    while !sifting && !i > 0 do
      let parent = (!i - 1) / 2 in
      if before arr.(!i) arr.(parent) then begin
        let tmp = arr.(!i) in
        arr.(!i) <- arr.(parent);
        arr.(parent) <- tmp;
        i := parent
      end
      else sifting := false
    done

  (* Precondition for [min_elt] and [pop]: not empty. *)
  let min_elt q = q.arr.(0)

  let pop q =
    let arr = q.arr in
    let root = arr.(0) in
    q.n <- q.n - 1;
    let n = q.n in
    if n > 0 then begin
      arr.(0) <- arr.(n);
      arr.(n) <- dummy;
      let i = ref 0 in
      let sifting = ref true in
      while !sifting do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let s = ref !i in
        if l < n && before arr.(l) arr.(!s) then s := l;
        if r < n && before arr.(r) arr.(!s) then s := r;
        if !s <> !i then begin
          let tmp = arr.(!i) in
          arr.(!i) <- arr.(!s);
          arr.(!s) <- tmp;
          i := !s
        end
        else sifting := false
      done
    end
    else arr.(0) <- dummy;
    root
end

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  events : Evq.t;
  procs : (int, proc) Hashtbl.t;
  mutable next_pid : int;
  (* the process currently executing, if any: set around every entry
     into process code (initial run and each continuation resume) so
     spawn/self need no dedicated effect round-trip *)
  mutable cur : proc option;
  root_rng : Rng.t;
}

type _ Effect.t +=
  | E_engine : t Effect.t
  | E_sleep : Time.span -> unit Effect.t
  | E_suspend : string * (('a -> bool) -> unit) -> 'a Effect.t

let create ?(seed = 42) () =
  {
    clock = Time.zero;
    seq = 0;
    events = Evq.create ();
    procs = Hashtbl.create 64;
    next_pid = 1;
    cur = None;
    root_rng = Rng.create ~seed;
  }

let now t = t.clock
let rng t = t.root_rng
let pending t = Evq.length t.events

(* Cancelled events stay in the heap but are skipped without
   advancing the clock, so a killed sleeper does not drag the
   simulation clock to its original wake-up time. *)
let schedule_cancellable t time thunk =
  t.seq <- t.seq + 1;
  let time = if time < t.clock then t.clock else time in
  let ev = { time; order = t.seq; live = true; thunk } in
  Evq.push t.events ev;
  ev

let schedule_at t time thunk = ignore (schedule_cancellable t time thunk)
let schedule t thunk = schedule_at t t.clock thunk
let at = schedule_at

let rec drop_dead t =
  if (not (Evq.is_empty t.events)) && not (Evq.min_elt t.events).live then begin
    ignore (Evq.pop t.events);
    drop_dead t
  end

let finish t proc =
  Hashtbl.remove t.procs proc.pid;
  let callbacks = proc.on_term in
  proc.on_term <- [];
  List.iter (fun f -> f ()) (List.rev callbacks)

(* Each process runs under its own deep handler.  Wakers and timers
   always resume continuations from engine context (either directly
   inside an event thunk, or by scheduling a fresh event), never from
   inside another process, so at most one process executes at a time
   — which is what lets [t.cur] stand in for the old E_self/E_spawn
   effects: it is set around every entry into process code and
   cleared when control returns to the engine. *)
let rec run_proc : t -> proc -> (unit -> unit) -> unit =
 fun t proc f ->
  let open Effect.Deep in
  t.cur <- Some proc;
  (match_with f ()
     {
       retc = (fun () -> finish t proc);
       exnc =
         (fun e ->
           finish t proc;
           match e with
           | Killed -> ()
           | e -> raise e);
       effc =
         (fun (type a) (eff : a Effect.t) ->
           match eff with
           | E_engine -> Some (fun (k : (a, _) continuation) -> continue k t)
           | E_sleep span ->
               Some
                 (fun (k : (a, _) continuation) ->
                   if not proc.alive then discontinue k Killed
                   else begin
                     let state = ref `Waiting in
                     let timer = ref None in
                     proc.cancel <-
                       Some
                         (fun () ->
                           if !state = `Waiting then begin
                             state := `Cancelled;
                             (match !timer with
                             | Some ev -> ev.live <- false
                             | None -> ());
                             schedule t (fun () ->
                                 t.cur <- Some proc;
                                 discontinue k Killed;
                                 t.cur <- None)
                           end);
                     timer :=
                       Some
                         (schedule_cancellable t (Time.add t.clock span)
                            (fun () ->
                              if !state = `Waiting then begin
                                state := `Fired;
                                proc.cancel <- None;
                                t.cur <- Some proc;
                                continue k ();
                                t.cur <- None
                              end))
                   end)
           | E_suspend (_label, register) ->
               Some
                 (fun (k : (a, _) continuation) ->
                   if not proc.alive then discontinue k Killed
                   else begin
                     let state = ref `Waiting in
                     proc.cancel <-
                       Some
                         (fun () ->
                           if !state = `Waiting then begin
                             state := `Cancelled;
                             schedule t (fun () ->
                                 t.cur <- Some proc;
                                 discontinue k Killed;
                                 t.cur <- None)
                           end);
                     let wake v =
                       if !state = `Waiting && proc.alive then begin
                         state := `Woken;
                         proc.cancel <- None;
                         schedule t (fun () ->
                             t.cur <- Some proc;
                             continue k v;
                             t.cur <- None);
                         true
                       end
                       else false
                     in
                     register wake
                   end)
           | _ -> None);
     });
  t.cur <- None

(* [spawn] is an ordinary function call: a process spawning a sibling
   pays no effect round-trip (the old E_spawn), and callers that hold
   the engine — packet delivery, RaTP tx loops, load generators — can
   spawn straight from engine context.  Group inheritance follows the
   spawner when one is executing. *)
and spawn : t -> ?group:int -> string -> (unit -> unit) -> pid =
 fun t ?group name f ->
  let group =
    match group with
    | Some _ as g -> g
    | None -> ( match t.cur with Some p -> p.group | None -> None)
  in
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let proc = { pid; name; group; alive = true; cancel = None; on_term = [] } in
  Hashtbl.replace t.procs pid proc;
  schedule t (fun () -> if proc.alive then run_proc t proc f else finish t proc);
  pid

let kill t pid =
  match Hashtbl.find_opt t.procs pid with
  | None -> ()
  | Some proc ->
      if proc.alive then begin
        proc.alive <- false;
        match proc.cancel with
        | Some c ->
            proc.cancel <- None;
            c ()
        | None -> ()
      end

let kill_group t group =
  let victims =
    Hashtbl.fold
      (fun pid proc acc -> if proc.group = Some group then pid :: acc else acc)
      t.procs []
  in
  List.iter (kill t) (List.sort Int.compare victims)

let on_terminate t pid f =
  match Hashtbl.find_opt t.procs pid with
  | Some proc -> proc.on_term <- f :: proc.on_term
  | None -> f ()

let alive t pid =
  match Hashtbl.find_opt t.procs pid with
  | None -> false
  | Some proc -> proc.alive

let procs t =
  Hashtbl.fold
    (fun pid proc acc -> if proc.alive then (pid, proc.name) :: acc else acc)
    t.procs []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let step t =
  drop_dead t;
  if Evq.is_empty t.events then false
  else begin
    let ev = Evq.pop t.events in
    if ev.time > t.clock then t.clock <- ev.time;
    ev.thunk ();
    true
  end

(* The drain loop pops at most once per iteration and never allocates
   (no options, no double peek): at a million-event load run this loop
   and the Evq sifts are the whole simulator. *)
let run ?until t =
  let limit = match until with Some u -> u | None -> max_int in
  let running = ref true in
  while !running do
    if Evq.is_empty t.events then running := false
    else begin
      let ev = Evq.min_elt t.events in
      if not ev.live then ignore (Evq.pop t.events)
      else if ev.time > limit then begin
        t.clock <- limit;
        running := false
      end
      else begin
        ignore (Evq.pop t.events);
        if ev.time > t.clock then t.clock <- ev.time;
        ev.thunk ()
      end
    end
  done

module Process = struct
  let engine () = Effect.perform E_engine
  let now () = now (engine ())

  let self () =
    match (engine ()).cur with
    | Some p -> p.pid
    | None -> invalid_arg "Engine.Process.self: no current process"

  let sleep span = Effect.perform (E_sleep span)
  let yield () = sleep 0
  let suspend label register = Effect.perform (E_suspend (label, register))
  let spawn ?group name f = spawn (engine ()) ?group name f
end
