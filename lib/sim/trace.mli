(** Lightweight event tracing.

    A trace is an append-only sequence of timestamped tagged records,
    attached to an engine by the caller, stored in a growable array
    (amortized O(1) record; [count ()] is O(1)).  Disabled traces
    cost one branch per event.  Tests assert on trace contents;
    benches leave tracing off. *)

type t

type entry = { at : Time.t; tag : string; detail : string }

val create : ?enabled:bool -> ?capacity:int -> unit -> t
(** [capacity] (default 0 = unbounded) bounds storage to the most
    recent [capacity] entries — a ring, so long traced runs keep the
    recent past without unbounded memory. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val record : t -> Time.t -> string -> string -> unit
(** [record t time tag detail] appends an entry when enabled. *)

val entries : t -> entry list
(** Entries in chronological (append) order. *)

val count : t -> ?tag:string -> unit -> int
(** Number of stored entries — O(1) without [tag], one array walk
    with it. *)

val iter : t -> (entry -> unit) -> unit
(** Visit stored entries in chronological order without building a
    list. *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
