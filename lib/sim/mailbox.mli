(** Unbounded FIFO mailboxes between processes.

    The building block for everything message-shaped in the
    simulation: NIC receive queues, server request queues, reply
    slots.  Senders never block; receivers suspend until a value is
    available (optionally bounded by a timeout). *)

type 'a t

val create : string -> 'a t
(** [create label] is an empty mailbox; [label] aids debugging. *)

val send : 'a t -> 'a -> unit
(** Enqueue a value, waking one waiting receiver if any.  Callable
    from engine context or from a process. *)

val recv : 'a t -> 'a
(** Dequeue a value, suspending while the mailbox is empty.  Multiple
    waiting receivers are served in FIFO order. *)

val recv_timeout : 'a t -> Time.span -> 'a option
(** [recv_timeout t span] is like {!recv} but returns [None] if
    nothing arrives within [span].  A timed-out waiter is purged from
    the mailbox, so repeated polling does not accumulate state. *)

val try_recv : 'a t -> 'a option
(** Dequeue without suspending. *)

val length : 'a t -> int
(** Values currently queued. *)

val waiters : 'a t -> int
(** Receivers currently waiting (excluding waiters whose timeout
    already fired).  Exposed so tests can assert the waiter queue
    stays bounded. *)
