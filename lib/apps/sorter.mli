(** Distributed sorting over a single persistent object (§5.1).

    The data lives in one Clouds object; multiple threads, executing
    on different compute servers, sort disjoint ranges in parallel
    and then merge.  The parts of the array in use at a node migrate
    there automatically through DSM — the paper's demonstration that
    a centralized algorithm can be run as a distributed computation.

    Element [i] is an 8-byte integer at byte offset [64 + 8*i] of the
    object's persistent data segment. *)

val register : Clouds.Object_manager.t -> capacity:int -> string
(** Register (once) a sorter class sized for [capacity] elements and
    return its class name. *)

val create :
  Clouds.Object_manager.t ->
  ?consistency:Ra.Partition.consistency ->
  capacity:int ->
  unit ->
  Ra.Sysname.t
(** Create a sorter instance (registering the class as needed).
    [consistency] sets the coherence mode of the instance's data and
    heap segments (default: the cluster's default, normally
    [One_copy]). *)

val fill :
  Clouds.Object_manager.t -> obj:Ra.Sysname.t -> n:int -> seed:int -> unit
(** Populate the array with [n] pseudo-random elements. *)

val checksum : Clouds.Object_manager.t -> obj:Ra.Sysname.t -> int
(** Order-independent checksum, for validating that sorting permutes
    rather than corrupts. *)

val is_sorted : Clouds.Object_manager.t -> obj:Ra.Sysname.t -> bool

type run = {
  workers : int;
  elapsed_ms : float;
  sort_ms : float;  (** parallel phase *)
  merge_ms : float;  (** merge phase *)
  remote_page_moves : int;  (** DSM transfers observed during the run *)
}

val distributed_sort :
  Clouds.Object_manager.t -> obj:Ra.Sysname.t -> workers:int -> run
(** Sort with [workers] threads spread round robin over the compute
    servers, then merge pairwise (merge rounds also run as threads).
    Call from a process. *)

val compare_cost_ns : int
(** CPU cost charged per element comparison (calibration constant). *)
