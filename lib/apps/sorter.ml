module Cl = Clouds.Cluster
module V = Clouds.Value
module Mem = Clouds.Memory

let compare_cost_ns = 4000 (* compare + exchange on a Sun-3 class CPU *)

let header = 64

let read_ints ctx lo hi =
  let m = hi - lo in
  let b = Mem.read ctx.Clouds.Ctx.mem (header + (8 * lo)) ~len:(8 * m) in
  Array.init m (fun i -> Int64.to_int (Bytes.get_int64_le b (8 * i)))

let write_ints ctx lo arr =
  let b = Bytes.create (8 * Array.length arr) in
  Array.iteri (fun i v -> Bytes.set_int64_le b (8 * i) (Int64.of_int v)) arr;
  Mem.write ctx.Clouds.Ctx.mem (header + (8 * lo)) b

let log2 m =
  let rec go acc m = if m <= 1 then acc else go (acc + 1) (m / 2) in
  go 0 m

let charge_compares ctx m = ctx.Clouds.Ctx.compute (compare_cost_ns * m)

let entries =
  [
    Clouds.Obj_class.entry "fill" (fun ctx arg ->
        let n_v, seed_v = V.to_pair arg in
        let n = V.to_int n_v and seed = V.to_int seed_v in
        Mem.set_int ctx.Clouds.Ctx.mem 0 n;
        let arr = Array.make n 0 in
        let x = ref (seed lor 1) in
        for i = 0 to n - 1 do
          (* deterministic LCG *)
          x := (!x * 2862933555777941757) + 3037000493;
          arr.(i) <- abs (!x mod 1_000_000_007)
        done;
        write_ints ctx 0 arr;
        ctx.Clouds.Ctx.compute (200 * n);
        V.Unit);
    Clouds.Obj_class.entry "length" (fun ctx _ ->
        V.Int (Mem.get_int ctx.Clouds.Ctx.mem 0));
    Clouds.Obj_class.entry "get" (fun ctx arg ->
        let i = V.to_int arg in
        let b = Mem.read ctx.Clouds.Ctx.mem (header + (8 * i)) ~len:8 in
        V.Int (Int64.to_int (Bytes.get_int64_le b 0)));
    Clouds.Obj_class.entry "sort_range" (fun ctx arg ->
        let lo_v, hi_v = V.to_pair arg in
        let lo = V.to_int lo_v and hi = V.to_int hi_v in
        let arr = read_ints ctx lo hi in
        Array.sort Int.compare arr;
        write_ints ctx lo arr;
        let m = hi - lo in
        charge_compares ctx (m * max 1 (log2 m));
        V.Unit);
    Clouds.Obj_class.entry "merge_ranges" (fun ctx arg ->
        match V.to_list arg with
        | [ lo_v; mid_v; hi_v ] ->
            let lo = V.to_int lo_v
            and mid = V.to_int mid_v
            and hi = V.to_int hi_v in
            let left = read_ints ctx lo mid and right = read_ints ctx mid hi in
            let out = Array.make (hi - lo) 0 in
            let i = ref 0 and j = ref 0 in
            for k = 0 to hi - lo - 1 do
              if
                !i < Array.length left
                && (!j >= Array.length right || left.(!i) <= right.(!j))
              then begin
                out.(k) <- left.(!i);
                incr i
              end
              else begin
                out.(k) <- right.(!j);
                incr j
              end
            done;
            write_ints ctx lo out;
            charge_compares ctx (hi - lo);
            V.Unit
        | _ -> invalid_arg "merge_ranges");
    Clouds.Obj_class.entry "merge_kway" (fun ctx arg ->
        (* merge k sorted runs delimited by the boundary list into
           place with one pass over the data *)
        let bounds = List.map V.to_int (V.to_list arg) in
        (match bounds with
        | [] | [ _ ] -> ()
        | b0 :: _ ->
            let bounds = Array.of_list bounds in
            let k = Array.length bounds - 1 in
            let hi = bounds.(k) in
            let arr = read_ints ctx b0 hi in
            let out = Array.make (hi - b0) 0 in
            let idx = Array.init k (fun i -> bounds.(i) - b0) in
            let stop = Array.init k (fun i -> bounds.(i + 1) - b0) in
            for slot = 0 to hi - b0 - 1 do
              let best = ref (-1) in
              for r = 0 to k - 1 do
                if
                  idx.(r) < stop.(r)
                  && (!best < 0 || arr.(idx.(r)) < arr.(idx.(!best)))
                then best := r
              done;
              out.(slot) <- arr.(idx.(!best));
              idx.(!best) <- idx.(!best) + 1
            done;
            write_ints ctx b0 out;
            charge_compares ctx ((hi - b0) * max 1 (log2 k)));
        V.Unit);
    Clouds.Obj_class.entry "is_sorted" (fun ctx _ ->
        let n = Mem.get_int ctx.Clouds.Ctx.mem 0 in
        let arr = read_ints ctx 0 n in
        charge_compares ctx n;
        let ok = ref true in
        for i = 0 to n - 2 do
          if arr.(i) > arr.(i + 1) then ok := false
        done;
        V.Bool !ok);
    Clouds.Obj_class.entry "checksum" (fun ctx _ ->
        let n = Mem.get_int ctx.Clouds.Ctx.mem 0 in
        let arr = read_ints ctx 0 n in
        charge_compares ctx n;
        V.Int (Array.fold_left (fun acc x -> (acc + x) land max_int) 0 arr));
  ]

let class_name_for capacity = Printf.sprintf "sorter-%d" capacity

let register om ~capacity =
  let cl = Clouds.Object_manager.cluster om in
  let name = class_name_for capacity in
  if Cl.find_class cl name = None then begin
    let data_pages = Ra.Page.count_for (header + (8 * capacity)) in
    Cl.register_class cl
      (Clouds.Obj_class.define ~name ~data_pages ~heap_pages:1 entries)
  end;
  name

let create om ?consistency ~capacity () =
  let name = register om ~capacity in
  Clouds.Object_manager.create_object om ?consistency ~class_name:name V.Unit

let invoke0 om obj entry arg =
  let cl = Clouds.Object_manager.cluster om in
  Clouds.Object_manager.invoke om ~node:(Cl.pick_compute cl) ~thread_id:0
    ~origin:None ~txn:None ~obj ~entry arg

let fill om ~obj ~n ~seed =
  match invoke0 om obj "fill" (V.Pair (V.Int n, V.Int seed)) with
  | V.Unit -> ()
  | _ -> failwith "Sorter.fill"

let checksum om ~obj = V.to_int (invoke0 om obj "checksum" V.Unit)
let is_sorted om ~obj = V.to_bool (invoke0 om obj "is_sorted" V.Unit)

type run = {
  workers : int;
  elapsed_ms : float;
  sort_ms : float;
  merge_ms : float;
  remote_page_moves : int;
}

let pages_served cl =
  Array.fold_left (fun acc s -> acc + Dsm.Dsm_server.pages_served s) 0
    cl.Cl.servers

(* Split [0, n) into [workers] contiguous chunks. *)
let chunks n workers =
  let base = n / workers and extra = n mod workers in
  let rec go i lo acc =
    if i = workers then List.rev acc
    else begin
      let len = base + (if i < extra then 1 else 0) in
      go (i + 1) (lo + len) ((lo, lo + len) :: acc)
    end
  in
  go 0 0 []

let distributed_sort om ~obj ~workers =
  if workers < 1 then invalid_arg "distributed_sort: workers must be positive";
  let cl = Clouds.Object_manager.cluster om in
  let ncompute = Array.length cl.Cl.compute_nodes in
  let node_for i = cl.Cl.compute_nodes.(i mod ncompute).Ra.Node.id in
  let n = V.to_int (invoke0 om obj "length" V.Unit) in
  let served0 = pages_served cl in
  let t0 = Sim.now () in
  (* phase 1: parallel range sorts, one thread per worker *)
  let sort_threads =
    List.mapi
      (fun i (lo, hi) ->
        Clouds.Thread.start om ~on:(node_for i) ~obj ~entry:"sort_range"
          (V.Pair (V.Int lo, V.Int hi)))
      (chunks n workers)
  in
  List.iter (fun th -> ignore (Clouds.Thread.join th)) sort_threads;
  let t_sorted = Sim.now () in
  (* phase 2: one k-way merge pass over the whole array *)
  (if workers > 1 then begin
     let boundaries =
       V.List
         (List.map (fun (lo, _) -> V.Int lo) (chunks n workers) @ [ V.Int n ])
     in
     let th =
       Clouds.Thread.start om ~on:(node_for 0) ~obj ~entry:"merge_kway"
         boundaries
     in
     ignore (Clouds.Thread.join th)
   end);
  let t1 = Sim.now () in
  {
    workers;
    elapsed_ms = Sim.Time.to_ms_f (Sim.Time.diff t1 t0);
    sort_ms = Sim.Time.to_ms_f (Sim.Time.diff t_sorted t0);
    merge_ms = Sim.Time.to_ms_f (Sim.Time.diff t1 t_sorted);
    remote_page_moves = pages_served cl - served0;
  }
