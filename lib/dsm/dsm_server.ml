module P = Protocol

type owner_state = {
  mutable owner : Net.Address.t option;
  mutable copyset : Net.Address.t list;
}

module Txn_table = Hashtbl.Make (struct
  type t = P.txn_id

  let equal a b = P.txn_compare a b = 0
  let hash (t : t) = Hashtbl.hash (t.P.tnode, t.P.tseq)
end)

(* What a participant remembers about a prepared transaction: the
   page images to apply at commit, and (under group commit) the
   before-images recovery needs to undo a crash-window apply. *)
type prep_entry = {
  writes : P.write_set;
  undo : (Ra.Sysname.t * int * bytes option) list;
}

type t = {
  node : Ra.Node.t;
  parallel_coherence : bool;
      (* fan coherence RPCs out concurrently (one round trip per
         write fault) instead of one blocking RPC per copyset member;
         the serial mode survives for A/B experiments *)
  store : Store.Segment_store.t;
  disk : Store.Disk.t;
  wal : Store.Wal.t;
  directory : Store.Directory.t;
  mutable locks : Lock_table.t;
  page_mutexes : (Ra.Sysname.t * int, Sim.Mutex.t) Hashtbl.t;
  owners : (Ra.Sysname.t * int, owner_state) Hashtbl.t;
  suspects : (Net.Address.t, unit) Hashtbl.t;
      (* nodes whose recalls timed out, or that the membership view
         condemned; skipped until they speak again or the view turns
         them back Alive *)
  mutable mirrors : Ra.Sysname.t -> Net.Address.t list;
      (* backup data servers for a segment (replication > 1); the
         cluster wires this so only a segment's current primary
         forwards *)
  modes : Ra.Partition.consistency Ra.Sysname.Table.t;
      (* per-segment consistency mode (absent = One_copy); populated
         at Create_segment and by [set_consistency] *)
  warmed : unit Ra.Sysname.Table.t;
      (* segments whose backing file has been read at least once; the
         first touch pays a disk read (cold buffer cache) *)
  merge_applied : (Net.Address.t * Ra.Sysname.t * int, int * bytes) Hashtbl.t;
      (* last (twin-stamp, delta) combined per (client, page): a
         Merge_delta re-sent after a client-visible timeout repeats
         its stamp, and only the difference against the recorded
         delta is applied — the transport's exactly-once cache only
         dedups retransmits of the same call, not a fresh call *)
  prepared : prep_entry Txn_table.t;
  presume_abort_after : Sim.Time.span;
  checkpoint_every : Sim.Time.span option;
  mutable cp_armed : bool;
      (* checkpoints are activity-driven: the first prepare after a
         quiet period arms a one-shot timer, so an idle server leaves
         no perpetual event chain behind *)
  mutable oracle : (int * int) -> [ `Committed | `Aborted | `Pending | `Unknown ];
  served : Sim.Stats.counter;
  prefetched : Sim.Stats.counter;
  invals : Sim.Stats.counter;
  downs : Sim.Stats.counter;
  commit_count : Sim.Stats.counter;
  abort_count : Sim.Stats.counter;
  mirrored : Sim.Stats.counter;
  deferred : Sim.Stats.counter;
      (* per-copy invalidations a release-mode write fault skipped *)
  flush_bursts : Sim.Stats.counter;
      (* release flushes that sent at least one Inval_batch *)
  flush_batch : Sim.Stats.hist;
      (* pages per Inval_batch RPC: how much each burst amortizes *)
  merges : Sim.Stats.counter;  (* commutative page merges applied *)
}

let node t = t.node
let store t = t.store
let directory t = t.directory
let wal t = t.wal
let locks t = t.locks

let page_mutex t key =
  match Hashtbl.find_opt t.page_mutexes key with
  | Some m -> m
  | None ->
      let m = Sim.Mutex.create ~label:"dsm-page" () in
      Hashtbl.replace t.page_mutexes key m;
      m

let consistency_of t seg =
  match Ra.Sysname.Table.find_opt t.modes seg with
  | Some m -> m
  | None -> Ra.Partition.One_copy

let set_consistency t seg mode = Ra.Sysname.Table.replace t.modes seg mode

let owner_state t key =
  match Hashtbl.find_opt t.owners key with
  | Some s -> s
  | None ->
      let s = { owner = None; copyset = [] } in
      Hashtbl.replace t.owners key s;
      s

let call_client t ~dst body =
  Ratp.Endpoint.call t.node.Ra.Node.endpoint ~dst ~service:P.client_service
    ~size:(P.request_bytes body) body

let call_server t ~dst body =
  Ratp.Endpoint.call t.node.Ra.Node.endpoint ~dst ~service:P.service
    ~size:(P.request_bytes body) body

(* Forward committed page images to the backups of the segments they
   touch.  Fire-and-forget durability: a timed-out backup is left for
   the re-replication pass to repair, and [Mirror_writes] is applied
   without re-forwarding, so a stale mirrors table cannot loop. *)
let mirror_writes t writes =
  let writes =
    List.filter
      (fun (seg, _, _) -> Store.Segment_store.exists t.store seg)
      writes
  in
  if writes <> [] then begin
    let self = t.node.Ra.Node.id in
    let targets =
      List.concat_map (fun (seg, _, _) -> t.mirrors seg) writes
      |> List.sort_uniq Net.Address.compare
      |> List.filter (fun a ->
             (not (Net.Address.equal a self)) && not (Hashtbl.mem t.suspects a))
    in
    if targets <> [] then begin
      let send dst =
        let ws =
          List.filter
            (fun (seg, _, _) ->
              List.exists (Net.Address.equal dst) (t.mirrors seg))
            writes
        in
        Sim.Stats.incr_by t.mirrored (List.length ws);
        ignore (call_server t ~dst (P.Mirror_writes ws))
      in
      Obs.Tracer.with_span ~node:t.node.Ra.Node.id "dsm.mirror" (fun () ->
          (* fan-out workers run under fresh pids: re-bind the span *)
          let parent = Obs.Tracer.current () in
          let send dst = Obs.Tracer.under parent (fun () -> send dst) in
          if t.parallel_coherence then
            ignore (Sim.Fanout.map targets ~label:"dsm-mirror" ~f:send)
          else List.iter send targets)
    end
  end

(* Read fault: pull the current contents of a page back from its
   owner (dirty write copy) into the store, demoting the owner's
   frame to a read copy.  A single peer, so nothing to fan out.  A
   dead owner simply times out and the store copy stands (its
   unwritten updates are lost, which is correct crash semantics for
   non-committed data). *)
let recall t key =
  let seg, page = key in
  let st = owner_state t key in
  match st.owner with
  | None -> ()
  | Some w ->
      Sim.Stats.incr t.downs;
      (if not (Hashtbl.mem t.suspects w) then
         Obs.Tracer.with_span ~node:t.node.Ra.Node.id "dsm.recall" @@ fun () ->
         match call_client t ~dst:w (P.Downgrade { seg; page }) with
         | Ok (P.Downgraded { dirty = Some d }) ->
             Store.Segment_store.write_page t.store seg page d
         | Ok _ -> ()
         | Error Ratp.Endpoint.Timeout ->
             (* the owner is unreachable: remember that and stop
                waiting on it until it speaks to us again *)
             Hashtbl.replace t.suspects w ());
      st.owner <- None;
      if not (List.mem w st.copyset) then st.copyset <- w :: st.copyset

(* The write-fault path: pull back the owner's (possibly dirty) copy
   and invalidate every read copy.  The protocol needs each peer's
   answer but no ordering between peers, so all RPCs go out in one
   concurrent fan-out (Li–Hudak permits it: every target ends up
   invalid either way) and a write fault costs one round trip — or
   one retry-timeout, paid once, when suspects are present — instead
   of one per copyset member.

   Determinism: targets are fixed (sorted) before the fan-out, the
   invalidation counter is bumped before any RPC is issued, and
   replies are folded into [suspects] in target order at the join. *)
let invalidate_copies t key ~except =
  let seg, page = key in
  let st = owner_state t key in
  let owner_target =
    match st.owner with
    | Some w when not (Net.Address.equal w except) ->
        Sim.Stats.incr t.invals;
        if Hashtbl.mem t.suspects w then [] else [ w ]
    | Some _ | None -> []
  in
  let reader_targets =
    List.sort Net.Address.compare st.copyset
    |> List.filter (fun c ->
           not (Net.Address.equal c except) && not (Hashtbl.mem t.suspects c))
  in
  (* counting stays outside the predicate: filter is free to
     re-evaluate, and selection must not have side effects *)
  List.iter (fun _ -> Sim.Stats.incr t.invals) reader_targets;
  let invalidate peer = (peer, call_client t ~dst:peer (P.Invalidate { seg; page })) in
  let targets = owner_target @ reader_targets in
  let replies =
    match targets with
    | [] -> []
    | _ ->
        Obs.Tracer.with_span ~node:t.node.Ra.Node.id "dsm.inval" (fun () ->
            (* fan-out workers run under fresh pids: re-bind the span *)
            let parent = Obs.Tracer.current () in
            let invalidate p = Obs.Tracer.under parent (fun () -> invalidate p) in
            if t.parallel_coherence then
              Sim.Fanout.map targets ~label:"dsm-inval" ~f:invalidate
            else List.map invalidate targets)
  in
  List.iter
    (fun (peer, reply) ->
      match reply with
      | Ok (P.Invalidated { dirty = Some d }) ->
          Store.Segment_store.write_page t.store seg page d
      | Ok _ -> ()
      | Error Ratp.Endpoint.Timeout -> Hashtbl.replace t.suspects peer ())
    replies;
  st.owner <- None;
  st.copyset <- List.filter (Net.Address.equal except) st.copyset

(* Release-mode flush: the invalidations deferred by every write
   fault in the lock scope go out now, as the scope's dirty pages
   land at the home.  Each copyset member gets ONE Inval_batch RPC
   covering all the pages it caches, and all members are hit in a
   single concurrent fan-out — N writes under a lock cost one burst
   instead of N.  The sender of the writes keeps its (up to date)
   copy; everyone else refetches on next touch, which is the
   "acquire pulls fresh pages" half of the protocol. *)
let release_flush t writes ~except =
  let per_peer : (Net.Address.t, (Ra.Sysname.t * int) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (seg, page, _) ->
      if
        (not (Hashtbl.mem seen (seg, page)))
        && consistency_of t seg = Ra.Partition.Release
      then begin
        Hashtbl.add seen (seg, page) ();
        match Hashtbl.find_opt t.owners (seg, page) with
        | None -> ()
        | Some st ->
            List.iter
              (fun c ->
                if
                  (not (Net.Address.equal c except))
                  && not (Hashtbl.mem t.suspects c)
                then begin
                  let cell =
                    match Hashtbl.find_opt per_peer c with
                    | Some cell -> cell
                    | None ->
                        let cell = ref [] in
                        Hashtbl.replace per_peer c cell;
                        cell
                  in
                  cell := (seg, page) :: !cell
                end)
              st.copyset;
            st.owner <- None;
            st.copyset <- List.filter (Net.Address.equal except) st.copyset
      end)
    writes;
  let targets =
    Hashtbl.fold (fun peer cell acc -> (peer, List.rev !cell) :: acc) per_peer []
    |> List.sort (fun (a, _) (b, _) -> Net.Address.compare a b)
  in
  if targets <> [] then begin
    Sim.Stats.incr t.flush_bursts;
    (* counting outside the fan-out keeps the trace deterministic *)
    List.iter
      (fun (_, pages) ->
        Sim.Stats.incr t.invals;
        Sim.Stats.hadd t.flush_batch (float_of_int (List.length pages)))
      targets;
    let send (peer, pages) =
      match call_client t ~dst:peer (P.Inval_batch pages) with
      | Ok _ -> ()
      | Error Ratp.Endpoint.Timeout -> Hashtbl.replace t.suspects peer ()
    in
    Obs.Tracer.with_span ~node:t.node.Ra.Node.id "dsm.release_flush" (fun () ->
        let parent = Obs.Tracer.current () in
        let send x = Obs.Tracer.under parent (fun () -> send x) in
        if t.parallel_coherence then
          ignore (Sim.Fanout.map targets ~label:"dsm-release" ~f:send)
        else List.iter send targets)
  end

let warm_segment t seg =
  if not (Ra.Sysname.Table.mem t.warmed seg) then begin
    Ra.Sysname.Table.replace t.warmed seg ();
    (* objects are stored in files on the data server: the first
       access to a cold segment reads it from disk *)
    Store.Disk.read t.disk ~bytes:Ra.Page.size
  end

(* Fault-ahead: collect up to [window] pages following [page] to ship
   in the same reply.  The run stops at the first page that cannot be
   served from the store as-is: past the segment end, never written
   (shipping zeroes wastes wire; a local zero-fill is cheaper),
   write-owned by some node (the store copy is stale), or whose page
   mutex is busy (a write fault in flight would wipe our copyset
   registration when it completes).  Each shipped page registers [src]
   in its copyset *before* the reply leaves, so a later write fault is
   guaranteed to invalidate the speculative copy — the Li–Hudak
   invariant holds for prefetched pages exactly as for demanded ones.

   This runs without yielding (no RPC, no sleep), so the busy-mutex
   and owner checks cannot go stale before the reply is queued. *)
let collect_extras t ~src seg page window =
  let pages_in_seg =
    (Store.Segment_store.size t.store seg + Ra.Page.size - 1) / Ra.Page.size
  in
  let rec go p acc n =
    if n >= window || p >= pages_in_seg then List.rev acc
    else
      let busy =
        match Hashtbl.find_opt t.page_mutexes (seg, p) with
        | Some m -> Sim.Mutex.locked m
        | None -> false
      in
      if busy then List.rev acc
      else
        let est = owner_state t (seg, p) in
        if est.owner <> None then List.rev acc
        else
          match Store.Segment_store.read_page t.store seg p with
          | Ra.Partition.Zeroed -> List.rev acc
          | Ra.Partition.Data b ->
              if not (List.mem src est.copyset) then
                est.copyset <- src :: est.copyset;
              Sim.Stats.incr t.prefetched;
              go (p + 1) ((p, b) :: acc) (n + 1)
  in
  go (page + 1) [] 0

let handle_get t ~src seg page mode window =
  let key = (seg, page) in
  Sim.Mutex.with_lock (page_mutex t key) (fun () ->
      if not (Store.Segment_store.exists t.store seg) then P.Page_error
      else begin
        warm_segment t seg;
        let st = owner_state t key in
        (match mode with
        | Ra.Partition.Read ->
            (match st.owner with
            | Some w when not (Net.Address.equal w src) -> recall t key
            | Some _ ->
                (* the owner itself re-reads after losing its frame *)
                st.owner <- None
            | None -> ());
            if not (List.mem src st.copyset) then
              st.copyset <- src :: st.copyset
        | Ra.Partition.Write -> (
            match consistency_of t seg with
            | Ra.Partition.One_copy ->
                invalidate_copies t key ~except:src;
                st.owner <- Some src;
                st.copyset <- []
            | Ra.Partition.Release | Ra.Partition.Commutative _ ->
                (* the invalidation fan-out is deferred to the flush
                   that ends the writer's scope (or, for commutative
                   segments, never happens); the writer joins the
                   copyset like a reader and no owner is recorded, so
                   concurrent readers keep hitting the store *)
                let skipped =
                  List.length
                    (List.filter
                       (fun c -> not (Net.Address.equal c src))
                       st.copyset)
                in
                Sim.Stats.incr_by t.deferred skipped;
                if not (List.mem src st.copyset) then
                  st.copyset <- src :: st.copyset));
        Sim.Stats.incr t.served;
        let main = Store.Segment_store.read_page t.store seg page in
        let extras =
          match mode with
          | Ra.Partition.Read when window > 0 ->
              collect_extras t ~src seg page window
          | _ -> []
        in
        match extras with
        | [] -> P.Got_page main
        | extras -> P.Got_pages { main; extras }
      end)

let release_txn_everywhere t txn = Lock_table.release_txn t.locks txn

let apply_writes ?lsn t writes =
  List.iter
    (fun (seg, page, data) ->
      if Store.Segment_store.exists t.store seg then
        Store.Segment_store.write_page ?lsn t.store seg page data)
    writes

(* Cut a fuzzy checkpoint [checkpoint_every] after the first prepare
   of a busy period: the in-doubt table is snapshotted and logged
   without quiescing (commits keep enqueueing around it), and the log
   before the checkpoint record is truncated once it is durable. *)
let maybe_arm_checkpoint t =
  match t.checkpoint_every with
  | None -> ()
  | Some every ->
      if not t.cp_armed then begin
        t.cp_armed <- true;
        let eng = t.node.Ra.Node.eng in
        Sim.Engine.at eng
          (Sim.Time.add (Sim.Engine.now eng) every)
          (fun () ->
            t.cp_armed <- false;
            if t.node.Ra.Node.alive then
              ignore
                (Ra.Node.spawn t.node "wal-checkpoint" (fun () ->
                     let active =
                       Txn_table.fold
                         (fun txn e acc ->
                           {
                             Store.Wal.txn = (txn.P.tnode, txn.P.tseq);
                             writes = e.writes;
                             undo = e.undo;
                           }
                           :: acc)
                         t.prepared []
                       |> List.sort (fun a b ->
                              compare a.Store.Wal.txn b.Store.Wal.txn)
                     in
                     ignore (Store.Wal.checkpoint t.wal ~active))))
      end

let handle_prepare t txn writes =
  let valid =
    List.for_all
      (fun (seg, _, _) -> Store.Segment_store.exists t.store seg)
      writes
  in
  if not valid then P.Vote false
  else begin
    maybe_arm_checkpoint t;
    let undo =
      (* before-images are only needed under group commit: without a
         daemon the commit record is durable before any page is
         applied, so there is no crash window to undo *)
      if Store.Wal.group_commit t.wal then begin
        let seen = Hashtbl.create 8 in
        List.filter_map
          (fun (seg, page, _) ->
            if Hashtbl.mem seen (seg, page) then None
            else begin
              Hashtbl.add seen (seg, page) ();
              let before =
                match Store.Segment_store.read_page t.store seg page with
                | Ra.Partition.Data b -> Some (Store.Wal.trim_image b)
                | Ra.Partition.Zeroed -> None
              in
              Some (seg, page, before)
            end)
          writes
      end
      else []
    in
    (* the vote leaves only after the prepare record is durable —
       under group commit it rides the next group flush with every
       other concurrently-preparing transaction *)
    Store.Wal.append t.wal
      (Store.Wal.Prepared { txn = (txn.P.tnode, txn.P.tseq); writes; undo });
    Txn_table.replace t.prepared txn { writes; undo };
    (* presumed abort: if the coordinator dies before deciding, the
       participant self-aborts after a timeout *)
    let eng = t.node.Ra.Node.eng in
    Sim.Engine.at eng
      (Sim.Time.add (Sim.Engine.now eng) t.presume_abort_after)
      (fun () ->
        if Txn_table.mem t.prepared txn then
          ignore
            (Ra.Node.spawn t.node "presumed-abort" (fun () ->
                 if Txn_table.mem t.prepared txn then begin
                   Store.Wal.append t.wal
                     (Store.Wal.Aborted (txn.P.tnode, txn.P.tseq));
                   Txn_table.remove t.prepared txn;
                   Sim.Stats.incr t.abort_count;
                   release_txn_everywhere t txn
                 end)));
    P.Vote true
  end

let handle_commit t ~src txn =
  match Txn_table.find_opt t.prepared txn with
  | Some { writes; _ } when Store.Wal.group_commit t.wal ->
      (* pipelined commit: the record goes into the log buffer, the
         pages are applied (tagged with the commit LSN) and the locks
         released — all in one scheduling quantum, so no request can
         observe released locks with unapplied pages — and the reply,
         which is the coordinator's ack, leaves only once the group
         flush has made the record durable *)
      let lsn =
        Store.Wal.enqueue t.wal
          (Store.Wal.Committed (txn.P.tnode, txn.P.tseq))
      in
      apply_writes t ~lsn writes;
      Txn_table.remove t.prepared txn;
      Sim.Stats.incr t.commit_count;
      release_txn_everywhere t txn;
      (* the deferred-invalidation burst waits for durability: it
         makes remote nodes refetch these pages, and a crash before
         the group flush would un-commit writes they had already
         observed (the non-group path orders the same way — its
         synchronous append precedes the burst) *)
      Store.Wal.wait_durable t.wal lsn;
      release_flush t writes ~except:src;
      mirror_writes t writes;
      P.Txn_done
  | Some { writes; _ } ->
      Store.Wal.append t.wal (Store.Wal.Committed (txn.P.tnode, txn.P.tseq));
      apply_writes t writes;
      release_flush t writes ~except:src;
      mirror_writes t writes;
      Txn_table.remove t.prepared txn;
      Sim.Stats.incr t.commit_count;
      release_txn_everywhere t txn;
      P.Txn_done
  | None ->
      release_txn_everywhere t txn;
      P.Txn_done

let handle_abort t txn =
  (match Txn_table.find_opt t.prepared txn with
  | Some _ ->
      Store.Wal.append t.wal (Store.Wal.Aborted (txn.P.tnode, txn.P.tseq));
      Txn_table.remove t.prepared txn;
      Sim.Stats.incr t.abort_count
  | None -> ());
  release_txn_everywhere t txn;
  P.Txn_done

(* Span names for served operations — static strings, so labelling a
   traced request allocates nothing. *)
let op_label = function
  | P.Get_page _ -> "serve.get"
  | P.Put_page _ | P.Put_batch _ | P.Put_diffs _ -> "serve.put"
  | P.Merge_delta _ -> "serve.merge"
  | P.Release_copies _ -> "serve.release"
  | P.Overwrite _ | P.Mirror_writes _ | P.Backfill _ -> "serve.mirror"
  | P.Read_pages _ -> "serve.read"
  | P.Create_segment _ | P.Delete_segment _ -> "serve.seg"
  | P.Lock_segment _ -> "serve.lock"
  | P.Get_descriptor _ | P.Register_object _ | P.Unregister_object _
  | P.List_objects ->
      "serve.desc"
  | P.Prepare _ -> "serve.prepare"
  | P.Commit _ -> "serve.commit"
  | P.Abort _ -> "serve.abort"
  | _ -> "serve.other"

let handle t ~src body =
  (* any message from a node proves it is alive again *)
  Hashtbl.remove t.suspects src;
  match body with
  | P.Get_page { seg; page; mode; window } ->
      handle_get t ~src seg page mode window
  | P.Put_page { seg; page; data } ->
      if Store.Segment_store.exists t.store seg then begin
        Store.Segment_store.write_page t.store seg page data;
        release_flush t [ (seg, page, data) ] ~except:src;
        mirror_writes t [ (seg, page, data) ];
        P.Batch_ok
      end
      else P.Segment_error
  | P.Put_batch writes ->
      apply_writes t writes;
      release_flush t writes ~except:src;
      mirror_writes t writes;
      P.Batch_ok
  | P.Put_diffs entries ->
      (* release-mode writeback: apply each page's changed byte spans
         over the current store image, so concurrent lock scopes
         writing disjoint bytes of one page never clobber each other.
         A missing segment fails the whole batch up front — silently
         dropping entries would let the client mark those pages clean
         and lose the writes (Put_page parity). *)
      if
        List.exists
          (fun (seg, _, _) -> not (Store.Segment_store.exists t.store seg))
          entries
      then P.Segment_error
      else begin
        let images =
          List.map
            (fun (seg, page, spans) ->
              let cur =
                match Store.Segment_store.read_page t.store seg page with
                | Ra.Partition.Data b -> b
                | Ra.Partition.Zeroed -> Bytes.make Ra.Page.size '\000'
              in
              List.iter
                (fun (off, b) ->
                  let len =
                    min (Bytes.length b) (max 0 (Bytes.length cur - off))
                  in
                  if off >= 0 && len > 0 then Bytes.blit b 0 cur off len)
                spans;
              Store.Segment_store.write_page t.store seg page cur;
              (seg, page, cur))
            entries
        in
        release_flush t images ~except:src;
        mirror_writes t images;
        P.Batch_ok
      end
  | P.Merge_delta deltas ->
      (* commutative flush: combine each delta into the home image
         under the segment's merge operator and return the post-merge
         images so the replica refreshes.  The transport's
         exactly-once call cache absorbs retransmits of one call; the
         twin-stamp absorbs the other duplicate path — a fresh call
         re-sent after a client-visible timeout whose first copy did
         land.  On a repeated stamp only the difference against the
         recorded delta is applied ([merge_delta] computes exactly
         that: new minus recorded for Add, the absolute values
         themselves for the idempotent Max), so nothing is ever
         counted twice.  A missing segment fails the whole batch so
         the client never marks those pages clean. *)
      if
        List.exists
          (fun (seg, _, _, _) -> not (Store.Segment_store.exists t.store seg))
          deltas
      then P.Segment_error
      else begin
        let merged =
          List.map
            (fun (seg, page, stamp, delta) ->
              let op =
                match consistency_of t seg with
                | Ra.Partition.Commutative op -> op
                | Ra.Partition.One_copy | Ra.Partition.Release ->
                    Ra.Partition.Max
              in
              let effective =
                if stamp = 0 then Some delta (* no twin: never dedup *)
                else begin
                  let key = (src, seg, page) in
                  match Hashtbl.find_opt t.merge_applied key with
                  | Some (s, prev) when s = stamp ->
                      Hashtbl.replace t.merge_applied key (stamp, delta);
                      Some (Ra.Partition.merge_delta op ~base:prev ~current:delta)
                  | Some (s, _) when s > stamp ->
                      (* superseded by this client's own later flush *)
                      None
                  | Some _ | None ->
                      Hashtbl.replace t.merge_applied key (stamp, delta);
                      Some delta
                end
              in
              let into =
                match Store.Segment_store.read_page t.store seg page with
                | Ra.Partition.Data b -> b
                | Ra.Partition.Zeroed -> Bytes.make Ra.Page.size '\000'
              in
              (match effective with
              | Some d ->
                  Ra.Partition.apply_merge op ~into d;
                  Store.Segment_store.write_page t.store seg page into;
                  Sim.Stats.incr t.merges
              | None -> ());
              (seg, page, into))
            deltas
        in
        mirror_writes t merged;
        P.Merged merged
      end
  | P.Release_copies pages ->
      (* exact copyset maintenance: the client dropped these copies
         on its own, so forget it — the next write fault then skips
         the redundant Invalidate *)
      List.iter
        (fun (seg, page) ->
          match Hashtbl.find_opt t.owners (seg, page) with
          | None -> ()
          | Some st ->
              st.copyset <-
                List.filter
                  (fun c -> not (Net.Address.equal c src))
                  st.copyset;
              (match st.owner with
              | Some w when Net.Address.equal w src -> st.owner <- None
              | Some _ | None -> ()))
        pages;
      P.Batch_ok
  | P.Overwrite writes ->
      (* replica propagation: force these page images in, dropping
         every cached copy so no node can serve stale data *)
      List.iter
        (fun (seg, page, data) ->
          if Store.Segment_store.exists t.store seg then
            Sim.Mutex.with_lock
              (page_mutex t (seg, page))
              (fun () ->
                invalidate_copies t (seg, page) ~except:(-1);
                Store.Segment_store.write_page t.store seg page data))
        writes;
      mirror_writes t writes;
      P.Batch_ok
  | P.Mirror_writes writes ->
      (* primary → backup propagation; never re-forwarded *)
      apply_writes t writes;
      P.Batch_ok
  | P.Backfill writes ->
      (* re-replication catch-up: the sender enlisted this store as a
         mirror before reading these pages, so any page that is no
         longer zeroed was overwritten by a fresher mirrored write and
         must be left alone *)
      List.iter
        (fun (seg, page, data) ->
          if Store.Segment_store.exists t.store seg then
            match Store.Segment_store.read_page t.store seg page with
            | Ra.Partition.Zeroed ->
                Store.Segment_store.write_page t.store seg page data
            | Ra.Partition.Data _ -> ())
        writes;
      P.Batch_ok
  | P.Read_pages { seg; from; count } ->
      if not (Store.Segment_store.exists t.store seg) then P.Page_error
      else begin
        warm_segment t seg;
        let size = Store.Segment_store.size t.store seg in
        let pages_in_seg = (size + Ra.Page.size - 1) / Ra.Page.size in
        let last = min pages_in_seg (from + count) in
        let rec go p acc =
          if p >= last then List.rev acc
          else
            match Store.Segment_store.read_page t.store seg p with
            | Ra.Partition.Zeroed -> go (p + 1) acc
            | Ra.Partition.Data b -> go (p + 1) ((p, b) :: acc)
        in
        P.Pages { size; pages = go from [] }
      end
  | P.Create_segment { seg; size; mode } ->
      if Store.Segment_store.exists t.store seg then P.Segment_error
      else begin
        Store.Segment_store.create_segment t.store seg ~size;
        (match mode with
        | Ra.Partition.One_copy -> ()
        | m -> Ra.Sysname.Table.replace t.modes seg m);
        P.Segment_ok
      end
  | P.Delete_segment seg ->
      Store.Segment_store.delete_segment t.store seg;
      Ra.Sysname.Table.remove t.modes seg;
      let doomed =
        Hashtbl.fold
          (fun ((_, s, _) as k) _ acc ->
            if Ra.Sysname.equal s seg then k :: acc else acc)
          t.merge_applied []
      in
      List.iter (Hashtbl.remove t.merge_applied) doomed;
      Hashtbl.iter
        (fun (s, _) st ->
          if Ra.Sysname.equal s seg then begin
            st.owner <- None;
            st.copyset <- []
          end)
        t.owners;
      P.Segment_ok
  | P.Lock_segment { seg; kind; txn } -> (
      match Lock_table.acquire t.locks seg txn kind with
      | `Granted -> P.Lock_granted
      | `Cancelled -> P.Lock_cancelled)
  | P.Get_descriptor obj ->
      (* the object header lives with its segments on disk *)
      Store.Disk.read t.disk ~bytes:512;
      P.Descriptor (Store.Directory.lookup t.directory obj)
  | P.Register_object { obj; descriptor } ->
      Store.Directory.register t.directory obj descriptor;
      P.Registered
  | P.Unregister_object obj ->
      Store.Directory.remove t.directory obj;
      P.Registered
  | P.Prepare { txn; writes } -> handle_prepare t txn writes
  | P.Commit { txn } -> handle_commit t ~src txn
  | P.Abort { txn } -> handle_abort t txn
  | P.List_objects -> P.Objects (Store.Directory.objects t.directory)
  | _ -> P.Page_error

let create node ?disk_config ?(presume_abort_after = Sim.Time.sec 60)
    ?(parallel_coherence = true) ?group_commit_window ?(wal_max_batch = 64)
    ?checkpoint_every () =
  let disk =
    Store.Disk.create ?config:disk_config
      (Printf.sprintf "disk-%d" node.Ra.Node.id)
  in
  let group_commit =
    Option.map
      (fun window -> { Store.Wal.window; max_batch = wal_max_batch })
      group_commit_window
  in
  let t =
    {
      node;
      parallel_coherence;
      store =
        Store.Segment_store.create (Printf.sprintf "store-%d" node.Ra.Node.id);
      disk;
      wal =
        Store.Wal.create ?group_commit
          ~spawn:(fun name f -> ignore (Ra.Node.spawn node name f))
          disk;
      directory = Store.Directory.create ();
      locks = Lock_table.create ();
      page_mutexes = Hashtbl.create 64;
      owners = Hashtbl.create 64;
      suspects = Hashtbl.create 8;
      mirrors = (fun _ -> []);
      modes = Ra.Sysname.Table.create 16;
      warmed = Ra.Sysname.Table.create 64;
      merge_applied = Hashtbl.create 16;
      prepared = Txn_table.create 8;
      presume_abort_after;
      checkpoint_every;
      cp_armed = false;
      oracle = (fun _ -> `Unknown);
      served = Sim.Stats.counter "dsm.pages_served";
      prefetched = Sim.Stats.counter "dsm.pages_prefetched";
      invals = Sim.Stats.counter "dsm.invalidations";
      downs = Sim.Stats.counter "dsm.downgrades";
      commit_count = Sim.Stats.counter "dsm.commits";
      abort_count = Sim.Stats.counter "dsm.aborts";
      mirrored = Sim.Stats.counter "dsm.mirrored_writes";
      deferred = Sim.Stats.counter "dsm.deferred_invals";
      flush_bursts = Sim.Stats.counter "dsm.release_flush_bursts";
      flush_batch = Sim.Stats.hist "dsm.release_flush_batch";
      merges = Sim.Stats.counter "dsm.merges_applied";
    }
  in
  Ratp.Endpoint.serve node.Ra.Node.endpoint ~service:P.service
    (fun ~src body ->
      Obs.Tracer.with_span ~node:node.Ra.Node.id (op_label body) (fun () ->
          let reply = handle t ~src body in
          (reply, P.request_bytes reply)));
  t

let set_outcome_oracle t oracle = t.oracle <- oracle
let set_mirrors t f = t.mirrors <- f

(* The sticky-suspect fix: suspicion is owned by the membership view,
   not by a single RaTP timeout.  A Dead member is skipped in every
   coherence fan-out; an Alive verdict (heartbeats resumed) clears the
   suspicion even if the peer never sends this server a request.  A
   Suspect member is on probation: the local timeout evidence, if any,
   stands until heartbeats actually recover. *)
let apply_view t (v : Membership.Monitor.view) =
  List.iter
    (fun (m : Membership.Monitor.member) ->
      if not (Net.Address.equal m.addr t.node.Ra.Node.id) then
        match m.status with
        | Membership.Monitor.Dead -> Hashtbl.replace t.suspects m.addr ()
        | Membership.Monitor.Alive -> Hashtbl.remove t.suspects m.addr
        | Membership.Monitor.Suspect -> ())
    v.Membership.Monitor.members

let suspected t =
  Hashtbl.fold (fun a () acc -> a :: acc) t.suspects []
  |> List.sort Net.Address.compare

let recover t =
  Hashtbl.reset t.owners;
  Hashtbl.reset t.suspects;
  Hashtbl.reset t.page_mutexes;
  Txn_table.reset t.prepared;
  t.locks <- Lock_table.create ();
  let applied = ref [] in
  let decide txn =
    match t.oracle txn with
    | `Committed -> `Commit
    | `Aborted | `Unknown -> `Abort
    | `Pending -> `Keep
  in
  let in_doubt = Store.Wal.recover t.wal t.store ~decide ~applied in
  (* transactions kept in doubt go back into the prepared table so a
     late Commit/Abort from the coordinator still applies; a timer
     re-resolves them if the decision never arrives *)
  List.iter
    (fun (p : Store.Wal.prep) ->
      let tnode, tseq = p.Store.Wal.txn in
      let writes = p.Store.Wal.writes in
      let txn = { P.tnode; tseq } in
      Txn_table.replace t.prepared txn { writes; undo = p.Store.Wal.undo };
      (* recovery locking: the in-doubt transaction's write locks
         must be held again, or later transactions would read
         state its pending commit will overwrite *)
      List.iter
        (fun (seg, _, _) ->
          match Lock_table.acquire t.locks seg txn P.W with
          | `Granted -> ()
          | `Cancelled -> ())
        (List.sort_uniq
           (fun (a, _, _) (b, _, _) -> Ra.Sysname.compare a b)
           writes);
      let eng = t.node.Ra.Node.eng in
      Sim.Engine.at eng
        (Sim.Time.add (Sim.Engine.now eng) t.presume_abort_after)
        (fun () ->
          if Txn_table.mem t.prepared txn then begin
            match t.oracle (tnode, tseq) with
            | `Committed ->
                let lsn =
                  Store.Wal.enqueue t.wal (Store.Wal.Committed (tnode, tseq))
                in
                apply_writes t ~lsn writes;
                Txn_table.remove t.prepared txn;
                release_txn_everywhere t txn
            | `Aborted | `Unknown ->
                Store.Wal.append_nowait t.wal
                  (Store.Wal.Aborted (tnode, tseq));
                Txn_table.remove t.prepared txn;
                release_txn_everywhere t txn
            | `Pending -> ()
          end))
    in_doubt

let owner_of t seg page =
  match Hashtbl.find_opt t.owners (seg, page) with
  | Some st -> st.owner
  | None -> None

let copyset_of t seg page =
  match Hashtbl.find_opt t.owners (seg, page) with
  | Some st -> List.sort Net.Address.compare st.copyset
  | None -> []

let pages_served t = Sim.Stats.value t.served
let pages_prefetched t = Sim.Stats.value t.prefetched
let invalidations_sent t = Sim.Stats.value t.invals
let downgrades_sent t = Sim.Stats.value t.downs
let commits t = Sim.Stats.value t.commit_count
let aborts t = Sim.Stats.value t.abort_count
let mirrored_writes t = Sim.Stats.value t.mirrored
let deferred_invals t = Sim.Stats.value t.deferred
let release_flush_bursts t = Sim.Stats.value t.flush_bursts
let merges_applied t = Sim.Stats.value t.merges

let metrics t =
  [
    ("dsm/pages_served", Obs.Registry.Counter t.served);
    ("dsm/pages_prefetched", Obs.Registry.Counter t.prefetched);
    ("dsm/invalidations", Obs.Registry.Counter t.invals);
    ("dsm/downgrades", Obs.Registry.Counter t.downs);
    ("dsm/commits", Obs.Registry.Counter t.commit_count);
    ("dsm/aborts", Obs.Registry.Counter t.abort_count);
    ("dsm/mirrored_writes", Obs.Registry.Counter t.mirrored);
    ("dsm/mode/deferred_invals", Obs.Registry.Counter t.deferred);
    ("dsm/mode/release_flush_bursts", Obs.Registry.Counter t.flush_bursts);
    ("dsm/mode/release_flush_batch", Obs.Registry.Hist t.flush_batch);
    ("dsm/mode/merges_applied", Obs.Registry.Counter t.merges);
    ("disk/ops", Obs.Registry.Counter (Store.Disk.ops_counter t.disk));
    ("disk/bytes", Obs.Registry.Counter (Store.Disk.bytes_counter t.disk));
    ("disk/busy_us", Obs.Registry.Counter (Store.Disk.busy_counter t.disk));
    ("disk/queue_depth", Obs.Registry.Hist (Store.Disk.queue_hist t.disk));
    ("wal/records", Obs.Registry.Counter (Store.Wal.records_counter t.wal));
    ("wal/flushes", Obs.Registry.Counter (Store.Wal.flushes_counter t.wal));
    ("wal/flush_batch", Obs.Registry.Hist (Store.Wal.batch_hist t.wal));
    ( "wal/checkpoints",
      Obs.Registry.Counter (Store.Wal.checkpoints_counter t.wal) );
    ("wal/truncated", Obs.Registry.Counter (Store.Wal.truncated_counter t.wal));
  ]
