type txn_id = { tnode : int; tseq : int }

type lock_kind = R | W

type write_set = (Ra.Sysname.t * int * bytes) list

type Ratp.Packet.body +=
  | Get_page of {
      seg : Ra.Sysname.t;
      page : int;
      mode : Ra.Partition.mode;
      window : int;
    }
  | Got_page of Ra.Partition.fetch_data
  | Got_pages of {
      main : Ra.Partition.fetch_data;
      extras : (int * bytes) list;
    }
  | Page_error
  | Put_page of { seg : Ra.Sysname.t; page : int; data : bytes }
  | Put_batch of write_set
  | Overwrite of write_set
  | Batch_ok
  | Invalidate of { seg : Ra.Sysname.t; page : int }
  | Invalidated of { dirty : bytes option }
  | Downgrade of { seg : Ra.Sysname.t; page : int }
  | Downgraded of { dirty : bytes option }
  | Create_segment of {
      seg : Ra.Sysname.t;
      size : int;
      mode : Ra.Partition.consistency;
    }
  | Delete_segment of Ra.Sysname.t
  | Segment_ok
  | Segment_error
  | Lock_segment of { seg : Ra.Sysname.t; kind : lock_kind; txn : txn_id }
  | Lock_granted
  | Lock_cancelled
  | Get_descriptor of Ra.Sysname.t
  | Descriptor of Store.Directory.descriptor option
  | Register_object of {
      obj : Ra.Sysname.t;
      descriptor : Store.Directory.descriptor;
    }
  | Unregister_object of Ra.Sysname.t
  | Registered
  | Prepare of { txn : txn_id; writes : write_set }
  | Vote of bool
  | Commit of { txn : txn_id }
  | Abort of { txn : txn_id }
  | Txn_done
  | List_objects
  | Objects of Ra.Sysname.t list
  | Read_pages of { seg : Ra.Sysname.t; from : int; count : int }
      (** Bulk replica read for re-replication: returns up to [count]
          non-zero pages starting at [from], with no effect on the
          owner or copyset tables. *)
  | Pages of { size : int; pages : (int * bytes) list }
  | Mirror_writes of write_set
      (** Committed writes forwarded by a segment's primary to its
          backups; applied to the store without further forwarding. *)
  | Backfill of write_set
      (** Re-replication catch-up copy: each page is applied only if
          the receiving store still holds it zeroed.  The healing
          target is enlisted as a mirror before the backfill starts,
          so a page the backfill finds non-zero was written by a
          fresher mirrored write — overwriting it would lose a
          committed update. *)
  | Inval_batch of (Ra.Sysname.t * int) list
      (** Release-mode flush: the batched invalidations a lock scope
          deferred, delivered to one copyset member as a single RPC
          when the scope's dirty pages land at the home.  The copy is
          dropped without returning dirty data (an unflushed write on
          an invalidated release page was outside lock discipline). *)
  | Put_diffs of (Ra.Sysname.t * int * (int * bytes) list) list
      (** Release-mode writeback: per page, the byte spans (offset,
          bytes) that changed against the twin.  Sub-page application
          keeps concurrent writers to disjoint bytes of one page from
          clobbering each other (the classic twin/diff trick). *)
  | Merge_delta of (Ra.Sysname.t * int * int * bytes) list
      (** Commutative flush: per page, (segment, page, twin-stamp,
          delta) where the delta is the word-wise difference of the
          replica's writes against its twin and the stamp is the
          client's never-reused id for that twin.  Retransmits of one
          call are absorbed by the transport's exactly-once cache;
          the stamp covers the other duplicate path — a fresh call
          re-sent after a client-visible timeout whose first copy did
          land.  The home remembers per (client, page) the last
          (stamp, delta) applied and, on a repeated stamp, applies
          only the difference against the recorded delta, so an Add
          delta is never counted twice. *)
  | Merged of write_set
      (** Post-merge home images, returned so the flushing replica
          refreshes its copy (anti-entropy rides the flush reply). *)
  | Release_copies of (Ra.Sysname.t * int) list
      (** A client dropped these page copies without being told to
          (rejected prefetch install, stale extra, segment drop);
          the home deletes it from the copysets so the next write
          fault doesn't send it a redundant Invalidate. *)

let service = 10
let client_service = 11

let write_set_bytes ws =
  List.fold_left (fun acc (_, _, data) -> acc + 24 + Bytes.length data) 0 ws

(* Prefetched extras ride in the same reply as the faulted page: each
   entry carries a page number plus payload, charged like a write-set
   entry (24-byte header per page). *)
let extras_bytes extras =
  List.fold_left (fun acc (_, data) -> acc + 24 + Bytes.length data) 0 extras

let request_bytes = function
  | Get_page _ -> 48
  | Got_page (Ra.Partition.Data b) -> 48 + Bytes.length b
  | Got_page Ra.Partition.Zeroed -> 48
  | Got_pages { main; extras } ->
      let main_bytes =
        match main with Ra.Partition.Data b -> Bytes.length b | Zeroed -> 0
      in
      48 + main_bytes + extras_bytes extras
  | Page_error -> 32
  | Put_page { data; _ } -> 48 + Bytes.length data
  | Put_batch ws | Overwrite ws -> 48 + write_set_bytes ws
  | Batch_ok -> 32
  | Invalidate _ | Downgrade _ -> 48
  | Invalidated { dirty } | Downgraded { dirty } -> (
      match dirty with Some b -> 48 + Bytes.length b | None -> 48)
  | Create_segment _ | Delete_segment _ -> 48
  | Segment_ok | Segment_error -> 32
  | Lock_segment _ -> 48
  | Lock_granted | Lock_cancelled -> 32
  | Get_descriptor _ -> 48
  | Descriptor (Some d) -> 48 + Store.Directory.descriptor_bytes d
  | Descriptor None -> 48
  | Register_object { descriptor; _ } ->
      48 + Store.Directory.descriptor_bytes descriptor
  | Unregister_object _ -> 48
  | Registered -> 32
  | Prepare { writes; _ } -> 64 + write_set_bytes writes
  | Vote _ -> 32
  | Commit _ | Abort _ -> 48
  | Txn_done -> 32
  | List_objects -> 32
  | Objects names -> 32 + (24 * List.length names)
  | Read_pages _ -> 48
  | Pages { pages; _ } -> 48 + extras_bytes pages
  | Mirror_writes ws -> 48 + write_set_bytes ws
  | Backfill ws -> 48 + write_set_bytes ws
  | Inval_batch pages | Release_copies pages -> 32 + (24 * List.length pages)
  | Put_diffs entries ->
      List.fold_left
        (fun acc (_, _, spans) ->
          List.fold_left
            (fun acc (_, data) -> acc + 8 + Bytes.length data)
            (acc + 24) spans)
        48 entries
  | Merge_delta ds ->
      List.fold_left
        (fun acc (_, _, _, delta) -> acc + 32 + Bytes.length delta)
        48 ds
  | Merged ws -> 48 + write_set_bytes ws
  | _ -> 64

let txn_compare a b =
  match Int.compare a.tnode b.tnode with
  | 0 -> Int.compare a.tseq b.tseq
  | c -> c

let pp_txn fmt t = Format.fprintf fmt "txn-%d.%d" t.tnode t.tseq

let pp_lock_kind fmt = function
  | R -> Format.pp_print_string fmt "R"
  | W -> Format.pp_print_string fmt "W"
