(** The DSM server: the system object running on every data server.

    It is the fixed distributed manager (in the Li–Hudak sense) for
    the segments it stores: it tracks, per page, the current owner
    (a compute server holding a write copy) and the copyset (nodes
    holding read copies), and preserves one-copy semantics by
    downgrading or invalidating remote copies before granting
    conflicting access.  It also provides the synchronization support
    the paper assigns to data servers: segment-level locks for
    consistency-preserving threads, and the participant side of
    two-phase commit backed by a write-ahead log. *)

type t

val create :
  Ra.Node.t ->
  ?disk_config:Store.Disk.config ->
  ?presume_abort_after:Sim.Time.span ->
  ?parallel_coherence:bool ->
  ?group_commit_window:Sim.Time.span ->
  ?wal_max_batch:int ->
  ?checkpoint_every:Sim.Time.span ->
  unit ->
  t
(** Install the DSM service on a data-server node.  State in
    {!Store.Segment_store} and {!Store.Wal} survives crashes;
    ownership, locks and prepared-transaction tables are volatile.

    [parallel_coherence] (default [true]) issues the write-fault
    invalidations — owner recall plus every copyset member — as one
    concurrent fan-out, so a write fault costs one round trip
    regardless of copyset size; [false] keeps the historical one
    blocking RPC per member, for A/B latency experiments
    ({!Experiments.Write_fault_fanout}).  Both modes leave identical
    owner/copyset state and identical counters.

    [group_commit_window] turns on the WAL's group-commit daemon:
    prepare votes and commit acks ride batched log flushes (at most
    [window] of added latency, or sooner once [wal_max_batch] records
    are buffered), the commit path pipelines — locks release at
    commit-record-in-buffer, the ack waits for the flush — and
    prepares capture before-images so recovery can undo a
    crash-window apply.  Left unset (the default), every WAL record
    is forced with its own synchronous disk write, the historical
    behaviour.

    [checkpoint_every] arms a fuzzy checkpoint that interval after
    the first prepare of a busy period: the in-doubt transaction
    table is logged without quiescing and the WAL is truncated up to
    the checkpoint once it is durable. *)

val node : t -> Ra.Node.t
val store : t -> Store.Segment_store.t
val directory : t -> Store.Directory.t
val wal : t -> Store.Wal.t
val locks : t -> Lock_table.t

val set_outcome_oracle :
  t -> ((int * int) -> [ `Committed | `Aborted | `Pending | `Unknown ]) -> unit
(** How a recovering participant learns the fate of a transaction it
    prepared but never saw decided: ask the coordinator (the
    atomicity manager installs this).  [`Pending] — the coordinator
    is alive but has not decided — keeps the participant's promise to
    commit (the transaction stays prepared); [`Unknown] — coordinator
    crashed or forgot — means presumed abort. *)

val recover : t -> unit
(** Run after {!Ra.Node.restart}: clear volatile coherence and lock
    state and replay the write-ahead log into the segment store,
    resolving in-doubt transactions through the outcome oracle
    (presumed abort without one). *)

val apply_view : t -> Membership.Monitor.view -> unit
(** Fold a membership view into the suspect table: [Dead] members are
    skipped by coherence fan-outs, an [Alive] verdict clears the
    suspicion — even if the peer never sends this server a request —
    and [Suspect] leaves any local timeout evidence standing
    (probation).  This replaces the old behaviour where one RaTP
    timeout marked a peer suspect forever. *)

val suspected : t -> Net.Address.t list
(** Peers currently skipped by coherence fan-outs; sorted (tests). *)

val set_consistency : t -> Ra.Sysname.t -> Ra.Partition.consistency -> unit
(** Override a segment's consistency mode (normally set by the
    [Create_segment] RPC).  [Release] defers write-fault invalidation
    to the flush that lands the scope's dirty pages, batching one
    [Inval_batch] RPC per copyset member in a single fan-out;
    [Commutative] segments never invalidate and combine flushed
    deltas under their merge operator. *)

val consistency_of : t -> Ra.Sysname.t -> Ra.Partition.consistency
(** A segment's consistency mode ([One_copy] when never set). *)

val set_mirrors : t -> (Ra.Sysname.t -> Net.Address.t list) -> unit
(** Wire the backup map for replicated segments: committed writes
    ([Put_page]/[Put_batch]/[Overwrite]/2PC commit application) are
    forwarded as [Mirror_writes] to each listed backup.  The cluster
    arranges that only a segment's current primary has backups listed,
    and backups apply without re-forwarding, so forwarding cannot
    loop. *)

val owner_of : t -> Ra.Sysname.t -> int -> Net.Address.t option
(** Current write owner of a page (tests). *)

val copyset_of : t -> Ra.Sysname.t -> int -> Net.Address.t list
(** Nodes holding read copies (tests); sorted. *)

val pages_served : t -> int

val pages_prefetched : t -> int
(** Adjacent pages shipped speculatively alongside demand fetches
    (fault-ahead).  Each one was registered in its page's copyset
    before the carrying reply left, so invalidation reaches it. *)

val invalidations_sent : t -> int
val downgrades_sent : t -> int
val commits : t -> int
val aborts : t -> int

val mirrored_writes : t -> int
(** Page images forwarded to backups over this server's lifetime. *)

val deferred_invals : t -> int
(** Per-copy invalidations skipped by relaxed-mode write faults. *)

val release_flush_bursts : t -> int
(** Release flushes that sent at least one [Inval_batch] fan-out. *)

val merges_applied : t -> int
(** Commutative page merges combined into the store. *)

val metrics : t -> (string * Obs.Registry.metric) list
(** Live metric handles under ["dsm/"] paths, for a per-node
    {!Obs.Registry}. *)
