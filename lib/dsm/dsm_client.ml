module P = Protocol

exception Unavailable of Ra.Sysname.t

(* Per-segment fault-ahead state: [next_expected] is the page a
   sequential scan would fault next (last faulted page + 1 + extras
   shipped with it); [win] is the current window, doubled on every
   fault that lands on [next_expected] and reset to zero on a random
   jump, so sparse workloads stop paying for speculation after one
   wasted reply. *)
type stream = { mutable next_expected : int; mutable win : int }

type t = {
  node : Ra.Node.t;
  locate : Ra.Sysname.t -> Net.Address.t;
  local_store : Store.Segment_store.t option;
  batch_io : bool;
  prefetch_window : int;
  loc_cache : Net.Address.t Ra.Sysname.Table.t;
  streams : stream Ra.Sysname.Table.t;
  mutable inval_epoch : int;
  page_epochs : (Ra.Sysname.t * int, int) Hashtbl.t;
      (* epoch of the last invalidation seen per page: a prefetched
         extra is dropped instead of installed when its page was
         invalidated while the carrying reply was in flight *)
  fetches : Sim.Stats.counter;
  puts : Sim.Stats.counter;
  invals : Sim.Stats.counter;
  downs : Sim.Stats.counter;
  loc_hits : Sim.Stats.counter;
  loc_misses : Sim.Stats.counter;
  loc_evictions : Sim.Stats.counter;
}

let node t = t.node

(* Location cache: segment-to-home bindings are stable between
   failures, so steady-state faults skip name resolution.  Entries
   are dropped when the home stops answering (it may have moved on
   restart) and never cached on failure. *)
let locate_cached t seg =
  match Ra.Sysname.Table.find_opt t.loc_cache seg with
  | Some home ->
      Sim.Stats.incr t.loc_hits;
      home
  | None ->
      let home = t.locate seg in
      Sim.Stats.incr t.loc_misses;
      Ra.Sysname.Table.replace t.loc_cache seg home;
      home

let forget_location t seg = Ra.Sysname.Table.remove t.loc_cache seg
let reset_location_cache t = Ra.Sysname.Table.reset t.loc_cache

(* Selective eviction for placement-ring remaps: only the bindings the
   predicate condemns (the moved arc) are dropped; everything else
   keeps its warm location. *)
let evict_where t pred =
  let doomed =
    Ra.Sysname.Table.fold
      (fun seg home acc -> if pred seg home then seg :: acc else acc)
      t.loc_cache []
  in
  List.iter
    (fun seg ->
      Sim.Stats.incr t.loc_evictions;
      Ra.Sysname.Table.remove t.loc_cache seg)
    doomed;
  List.length doomed

(* The stale-location fix: when the membership view condemns a node,
   drop every cached binding pointing at it immediately, so the next
   fault re-resolves through the locate path (which the cluster has
   already repointed at a surviving replica) instead of burning a full
   RaTP retry ladder against the corpse. *)
let apply_view t (v : Membership.Monitor.view) =
  let dead =
    List.filter_map
      (fun (m : Membership.Monitor.member) ->
        match m.status with
        | Membership.Monitor.Dead -> Some m.addr
        | Membership.Monitor.Alive | Membership.Monitor.Suspect -> None)
      v.Membership.Monitor.members
  in
  if dead <> [] then begin
    let doomed =
      Ra.Sysname.Table.fold
        (fun seg home acc ->
          if List.exists (Net.Address.equal home) dead then seg :: acc
          else acc)
        t.loc_cache []
    in
    List.iter
      (fun seg ->
        Sim.Stats.incr t.loc_evictions;
        Ra.Sysname.Table.remove t.loc_cache seg)
      doomed
  end

let stream_for t seg =
  match Ra.Sysname.Table.find_opt t.streams seg with
  | Some s -> s
  | None ->
      let s = { next_expected = -1; win = 0 } in
      Ra.Sysname.Table.replace t.streams seg s;
      s

let call t ~dst body =
  Ratp.Endpoint.call t.node.Ra.Node.endpoint ~dst ~service:P.service
    ~size:(P.request_bytes body) body

(* Install the speculative read copies that rode a demand reply.  A
   page whose invalidation epoch advanced past [epoch0] (snapshotted
   before the request went out) was written while the reply was in
   flight: its image is stale and is dropped.  The server keeps us in
   that page's copyset either way, which is harmlessly conservative —
   the next write fault sends one redundant Invalidate. *)
let install_extras t ~seg ~epoch0 extras =
  let mmu = t.node.Ra.Node.mmu in
  List.iter
    (fun (p, data) ->
      let stale =
        match Hashtbl.find_opt t.page_epochs (seg, p) with
        | Some e -> e > epoch0
        | None -> false
      in
      if not stale then ignore (Ra.Mmu.install_read mmu seg p data))
    extras

let remote_fetch t ~seg ~page ~mode =
 Obs.Tracer.with_span ~node:t.node.Ra.Node.id "dsm.fetch" @@ fun () ->
  let home = locate_cached t seg in
  Sim.Stats.incr t.fetches;
  let use_stream = t.prefetch_window > 0 && mode = Ra.Partition.Read in
  let window =
    if not use_stream then 0
    else begin
      let s = stream_for t seg in
      if page = s.next_expected then
        s.win <- min t.prefetch_window (max 1 (2 * s.win))
      else if s.next_expected < 0 then s.win <- 1
      else s.win <- 0;
      s.win
    end
  in
  let epoch0 = t.inval_epoch in
  let body = P.Get_page { seg; page; mode; window } in
  match call t ~dst:home body with
  | Ok (P.Got_page data) ->
      if use_stream then (stream_for t seg).next_expected <- page + 1;
      data
  | Ok (P.Got_pages { main; extras }) ->
      install_extras t ~seg ~epoch0 extras;
      if use_stream then
        (stream_for t seg).next_expected <- page + 1 + List.length extras;
      main
  | Ok P.Page_error ->
      forget_location t seg;
      raise (Ra.Partition.No_segment seg)
  | Ok _ -> raise (Unavailable seg)
  | Error Ratp.Endpoint.Timeout ->
      forget_location t seg;
      raise (Unavailable seg)

let remote_writeback t ~seg ~page data =
 Obs.Tracer.with_span ~node:t.node.Ra.Node.id "dsm.put" @@ fun () ->
  let home = locate_cached t seg in
  Sim.Stats.incr t.puts;
  match call t ~dst:home (P.Put_page { seg; page; data }) with
  | Ok P.Batch_ok -> ()
  | Ok P.Segment_error ->
      forget_location t seg;
      raise (Ra.Partition.No_segment seg)
  | Ok _ -> raise (Unavailable seg)
  | Error Ratp.Endpoint.Timeout ->
      forget_location t seg;
      raise (Unavailable seg)

let remote_write_batch t ~seg writes =
 Obs.Tracer.with_span ~node:t.node.Ra.Node.id "dsm.put" @@ fun () ->
  let home = locate_cached t seg in
  Sim.Stats.incr t.puts;
  match call t ~dst:home (P.Put_batch writes) with
  | Ok P.Batch_ok -> ()
  | Ok _ -> raise (Unavailable seg)
  | Error Ratp.Endpoint.Timeout ->
      forget_location t seg;
      raise (Unavailable seg)

let is_local t seg =
  match t.local_store with
  | Some store ->
      Net.Address.equal (locate_cached t seg) t.node.Ra.Node.id
      && Store.Segment_store.exists store seg
  | None -> false

let partition t =
  {
    Ra.Partition.name = Printf.sprintf "dsm-client-%d" t.node.Ra.Node.id;
    fetch =
      (fun ~seg ~page ~mode ->
        match t.local_store with
        | Some store when is_local t seg ->
            Store.Segment_store.read_page store seg page
        | Some _ | None -> remote_fetch t ~seg ~page ~mode);
    writeback =
      (fun ~seg ~page data ->
        match t.local_store with
        | Some store when is_local t seg ->
            Store.Segment_store.write_page store seg page data
        | Some _ | None -> remote_writeback t ~seg ~page data);
  }

let create node ~locate ?local_store ?(batch_io = true) ?(prefetch_window = 0)
    () =
  let t =
    {
      node;
      locate;
      local_store;
      batch_io;
      prefetch_window;
      loc_cache = Ra.Sysname.Table.create 32;
      streams = Ra.Sysname.Table.create 32;
      inval_epoch = 0;
      page_epochs = Hashtbl.create 64;
      fetches = Sim.Stats.counter "dsmc.fetches";
      puts = Sim.Stats.counter "dsmc.puts";
      invals = Sim.Stats.counter "dsmc.invals";
      downs = Sim.Stats.counter "dsmc.downs";
      loc_hits = Sim.Stats.counter "dsmc.loc_hits";
      loc_misses = Sim.Stats.counter "dsmc.loc_misses";
      loc_evictions = Sim.Stats.counter "dsmc.loc_evictions";
    }
  in
  Ra.Mmu.set_resolver node.Ra.Node.mmu (fun _seg -> partition t);
  Ratp.Endpoint.serve node.Ra.Node.endpoint ~service:P.client_service
    (fun ~src:_ body ->
      let reply =
        match body with
        | P.Invalidate { seg; page } ->
            Sim.Stats.incr t.invals;
            t.inval_epoch <- t.inval_epoch + 1;
            Hashtbl.replace t.page_epochs (seg, page) t.inval_epoch;
            P.Invalidated { dirty = Ra.Mmu.invalidate node.Ra.Node.mmu seg page }
        | P.Downgrade { seg; page } ->
            Sim.Stats.incr t.downs;
            P.Downgraded { dirty = Ra.Mmu.downgrade node.Ra.Node.mmu seg page }
        | _ -> P.Page_error
      in
      (reply, P.request_bytes reply));
  t

(* Writeback of a segment's dirty pages: one Put_batch carrying all
   of them (RaTP fragments it on the wire) instead of one Put_page
   round trip per page.  [~batch_io:false] keeps the historical
   serial loop for A/B comparison ({!Experiments.Page_batching}). *)
let flush_segment t seg =
  let mmu = t.node.Ra.Node.mmu in
  match Ra.Mmu.dirty_pages mmu seg with
  | [] -> ()
  | dirty when t.batch_io && not (is_local t seg) ->
      remote_write_batch t ~seg
        (List.map (fun (page, data) -> (seg, page, data)) dirty);
      List.iter (fun (page, _) -> Ra.Mmu.mark_clean mmu seg page) dirty
  | dirty ->
      List.iter
        (fun (page, data) ->
          (partition t).Ra.Partition.writeback ~seg ~page data;
          Ra.Mmu.mark_clean mmu seg page)
        dirty

let drop_segment t seg = Ra.Mmu.drop_segment t.node.Ra.Node.mmu seg

let remote_fetches t = Sim.Stats.value t.fetches
let put_rpcs t = Sim.Stats.value t.puts
let invalidations_received t = Sim.Stats.value t.invals
let downgrades_received t = Sim.Stats.value t.downs
let location_hits t = Sim.Stats.value t.loc_hits
let location_misses t = Sim.Stats.value t.loc_misses
let location_evictions t = Sim.Stats.value t.loc_evictions

let metrics t =
  [
    ("dsmc/fetches", Obs.Registry.Counter t.fetches);
    ("dsmc/puts", Obs.Registry.Counter t.puts);
    ("dsmc/invals", Obs.Registry.Counter t.invals);
    ("dsmc/downs", Obs.Registry.Counter t.downs);
    ("dsmc/loc_hits", Obs.Registry.Counter t.loc_hits);
    ("dsmc/loc_misses", Obs.Registry.Counter t.loc_misses);
    ("dsmc/loc_evictions", Obs.Registry.Counter t.loc_evictions);
  ]
