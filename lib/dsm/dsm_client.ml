module P = Protocol

exception Unavailable of Ra.Sysname.t

(* Per-segment fault-ahead state: [next_expected] is the page a
   sequential scan would fault next (last faulted page + 1 + extras
   shipped with it); [win] is the current window, doubled on every
   fault that lands on [next_expected] and reset to zero on a random
   jump, so sparse workloads stop paying for speculation after one
   wasted reply. *)
type stream = { mutable next_expected : int; mutable win : int }

type t = {
  node : Ra.Node.t;
  locate : Ra.Sysname.t -> Net.Address.t;
  mutable mode_of : Ra.Sysname.t -> Ra.Partition.consistency;
  local_store : Store.Segment_store.t option;
  batch_io : bool;
  prefetch_window : int;
  loc_cache : Net.Address.t Ra.Sysname.Table.t;
  streams : stream Ra.Sysname.Table.t;
  mutable inval_epoch : int;
  page_epochs : (Ra.Sysname.t * int, int) Hashtbl.t;
      (* epoch of the last invalidation seen per page: a prefetched
         extra is dropped instead of installed when its page was
         invalidated while the carrying reply was in flight *)
  stale_dirty : (Ra.Sysname.t * int, unit) Hashtbl.t;
      (* release-mode pages we kept through an Inval_batch because
         they held unflushed local writes; their unmodified bytes are
         stale, so our own flush drops the frame instead of rebasing *)
  releasing : (Ra.Sysname.t * int, unit Sim.Ivar.t) Hashtbl.t;
      (* pages with a Release_copies RPC in flight: a fault on one of
         them waits for the release to land first, because the home
         keeps ONE registration per client — a release arriving after
         a re-fault re-registered would deregister the new live copy
         and it would miss every later invalidation *)
  fetches : Sim.Stats.counter;
  puts : Sim.Stats.counter;
  invals : Sim.Stats.counter;
  downs : Sim.Stats.counter;
  loc_hits : Sim.Stats.counter;
  loc_misses : Sim.Stats.counter;
  loc_evictions : Sim.Stats.counter;
  merge_rpcs : Sim.Stats.counter;
  releases : Sim.Stats.counter;
      (* Release_copies RPCs: copies this client dropped on its own
         and told the home to forget, keeping copysets exact *)
}

let node t = t.node

let set_consistency t f =
  t.mode_of <- f;
  Ra.Mmu.set_consistency t.node.Ra.Node.mmu f

let consistency_of t seg = t.mode_of seg

(* Location cache: segment-to-home bindings are stable between
   failures, so steady-state faults skip name resolution.  Entries
   are dropped when the home stops answering (it may have moved on
   restart) and never cached on failure. *)
let locate_cached t seg =
  match Ra.Sysname.Table.find_opt t.loc_cache seg with
  | Some home ->
      Sim.Stats.incr t.loc_hits;
      home
  | None ->
      let home = t.locate seg in
      Sim.Stats.incr t.loc_misses;
      Ra.Sysname.Table.replace t.loc_cache seg home;
      home

let forget_location t seg = Ra.Sysname.Table.remove t.loc_cache seg
let reset_location_cache t = Ra.Sysname.Table.reset t.loc_cache

(* Selective eviction for placement-ring remaps: only the bindings the
   predicate condemns (the moved arc) are dropped; everything else
   keeps its warm location. *)
let evict_where t pred =
  let doomed =
    Ra.Sysname.Table.fold
      (fun seg home acc -> if pred seg home then seg :: acc else acc)
      t.loc_cache []
  in
  List.iter
    (fun seg ->
      Sim.Stats.incr t.loc_evictions;
      Ra.Sysname.Table.remove t.loc_cache seg)
    doomed;
  List.length doomed

(* The stale-location fix: when the membership view condemns a node,
   drop every cached binding pointing at it immediately, so the next
   fault re-resolves through the locate path (which the cluster has
   already repointed at a surviving replica) instead of burning a full
   RaTP retry ladder against the corpse. *)
let apply_view t (v : Membership.Monitor.view) =
  let dead =
    List.filter_map
      (fun (m : Membership.Monitor.member) ->
        match m.status with
        | Membership.Monitor.Dead -> Some m.addr
        | Membership.Monitor.Alive | Membership.Monitor.Suspect -> None)
      v.Membership.Monitor.members
  in
  if dead <> [] then begin
    let doomed =
      Ra.Sysname.Table.fold
        (fun seg home acc ->
          if List.exists (Net.Address.equal home) dead then seg :: acc
          else acc)
        t.loc_cache []
    in
    List.iter
      (fun seg ->
        Sim.Stats.incr t.loc_evictions;
        Ra.Sysname.Table.remove t.loc_cache seg)
      doomed
  end

let stream_for t seg =
  match Ra.Sysname.Table.find_opt t.streams seg with
  | Some s -> s
  | None ->
      let s = { next_expected = -1; win = 0 } in
      Ra.Sysname.Table.replace t.streams seg s;
      s

let call t ~dst body =
  Ratp.Endpoint.call t.node.Ra.Node.endpoint ~dst ~service:P.service
    ~size:(P.request_bytes body) body

(* Send Release_copies for [pages], none of which this client holds a
   copy of any more, and gate later faults on the same pages until the
   home has processed it (see [releasing]).  [wait] keeps the caller
   blocked until the release lands; [false] runs it in a spawned
   fiber, off the fault's critical path. *)
let send_release t ~home ~wait pages =
  if pages <> [] then begin
    Sim.Stats.incr t.releases;
    let iv = Sim.Ivar.create () in
    List.iter (fun k -> Hashtbl.replace t.releasing k iv) pages;
    let send () =
      Fun.protect
        ~finally:(fun () ->
          List.iter
            (fun k ->
              match Hashtbl.find_opt t.releasing k with
              | Some iv' when iv' == iv -> Hashtbl.remove t.releasing k
              | Some _ | None -> ())
            pages;
          Sim.Ivar.fill iv ())
        (fun () ->
          (* pure bookkeeping: a timed-out release leaves a phantom
             registration behind, which only costs the next write
             fault one redundant Invalidate *)
          try ignore (call t ~dst:home (P.Release_copies pages))
          with _ -> ())
    in
    if wait then send ()
    else ignore (Ra.Node.spawn t.node "dsm-release-copies" (fun () -> send ()))
  end

(* Install the speculative read copies that rode a demand reply.  A
   page whose invalidation epoch advanced past [epoch0] (snapshotted
   before the request went out) was written while the reply was in
   flight: its image is stale and is dropped — and needs no release,
   because the invalidation that outran it already deregistered us at
   the home.  Of the MMU's declines, only the frame-budget one leaves
   no copy on this node; a decline because the page is resident (or a
   demand fault on it is in flight) keeps a live copy whose copyset
   entry at the home is the same single registration the extra made —
   releasing it would let the next writer skip this client and leave
   it serving stale data forever.  So exactly the no-copy declines go
   out in one Release_copies RPC, keeping the membership exact. *)
let install_extras t ~home ~seg ~epoch0 extras =
  let mmu = t.node.Ra.Node.mmu in
  let no_copy =
    List.filter_map
      (fun (p, data) ->
        let stale =
          match Hashtbl.find_opt t.page_epochs (seg, p) with
          | Some e -> e > epoch0
          | None -> false
        in
        if stale then None
        else if Hashtbl.mem t.releasing (seg, p) then
          (* an older release for this page is still in flight and
             could undo an install when it lands, so decline and fold
             the reply's fresh registration into a new release *)
          Some (seg, p)
        else
          match Ra.Mmu.install_read mmu seg p data with
          | Ra.Mmu.Installed | Ra.Mmu.Retained -> None
          | Ra.Mmu.No_copy -> Some (seg, p))
      extras
  in
  send_release t ~home ~wait:false no_copy

let remote_fetch t ~seg ~page ~mode =
 Obs.Tracer.with_span ~node:t.node.Ra.Node.id "dsm.fetch" @@ fun () ->
  (* a Release_copies covering this page may still be in flight; let
     it land before this fetch re-registers us, or it would wipe the
     new registration when it arrives *)
  let rec drain () =
    match Hashtbl.find_opt t.releasing (seg, page) with
    | Some iv ->
        Sim.Ivar.read iv;
        drain ()
    | None -> ()
  in
  drain ();
  let home = locate_cached t seg in
  Sim.Stats.incr t.fetches;
  let mode =
    (* commutative pages are never owned: a local write upgrade
       fetches the current image like a read and the home stays
       arbitration-free (no invalidation, no recall, ever) *)
    match (mode, t.mode_of seg) with
    | Ra.Partition.Write, Ra.Partition.Commutative _ -> Ra.Partition.Read
    | m, _ -> m
  in
  let use_stream = t.prefetch_window > 0 && mode = Ra.Partition.Read in
  let window =
    if not use_stream then 0
    else begin
      let s = stream_for t seg in
      if page = s.next_expected then
        s.win <- min t.prefetch_window (max 1 (2 * s.win))
      else if s.next_expected < 0 then s.win <- 1
      else s.win <- 0;
      s.win
    end
  in
  let epoch0 = t.inval_epoch in
  let body = P.Get_page { seg; page; mode; window } in
  match call t ~dst:home body with
  | Ok (P.Got_page data) ->
      if use_stream then (stream_for t seg).next_expected <- page + 1;
      data
  | Ok (P.Got_pages { main; extras }) ->
      install_extras t ~home ~seg ~epoch0 extras;
      if use_stream then
        (stream_for t seg).next_expected <- page + 1 + List.length extras;
      main
  | Ok P.Page_error ->
      forget_location t seg;
      raise (Ra.Partition.No_segment seg)
  | Ok _ -> raise (Unavailable seg)
  | Error Ratp.Endpoint.Timeout ->
      forget_location t seg;
      raise (Unavailable seg)

let remote_writeback t ~seg ~page data =
 Obs.Tracer.with_span ~node:t.node.Ra.Node.id "dsm.put" @@ fun () ->
  let home = locate_cached t seg in
  Sim.Stats.incr t.puts;
  match call t ~dst:home (P.Put_page { seg; page; data }) with
  | Ok P.Batch_ok -> ()
  | Ok P.Segment_error ->
      forget_location t seg;
      raise (Ra.Partition.No_segment seg)
  | Ok _ -> raise (Unavailable seg)
  | Error Ratp.Endpoint.Timeout ->
      forget_location t seg;
      raise (Unavailable seg)

let remote_write_batch t ~seg writes =
 Obs.Tracer.with_span ~node:t.node.Ra.Node.id "dsm.put" @@ fun () ->
  let home = locate_cached t seg in
  Sim.Stats.incr t.puts;
  match call t ~dst:home (P.Put_batch writes) with
  | Ok P.Batch_ok -> ()
  | Ok _ -> raise (Unavailable seg)
  | Error Ratp.Endpoint.Timeout ->
      forget_location t seg;
      raise (Unavailable seg)

let is_local t seg =
  match t.local_store with
  | Some store ->
      Net.Address.equal (locate_cached t seg) t.node.Ra.Node.id
      && Store.Segment_store.exists store seg
  | None -> false

let partition t =
  {
    Ra.Partition.name = Printf.sprintf "dsm-client-%d" t.node.Ra.Node.id;
    fetch =
      (fun ~seg ~page ~mode ->
        match t.local_store with
        | Some store when is_local t seg ->
            Store.Segment_store.read_page store seg page
        | Some _ | None -> remote_fetch t ~seg ~page ~mode);
    writeback =
      (fun ~seg ~page data ->
        match t.local_store with
        | Some store when is_local t seg ->
            Store.Segment_store.write_page store seg page data
        | Some _ | None -> remote_writeback t ~seg ~page data);
  }

let create node ~locate ?(consistency = fun _ -> Ra.Partition.One_copy)
    ?local_store ?(batch_io = true) ?(prefetch_window = 0) () =
  let t =
    {
      node;
      locate;
      mode_of = consistency;
      local_store;
      batch_io;
      prefetch_window;
      loc_cache = Ra.Sysname.Table.create 32;
      streams = Ra.Sysname.Table.create 32;
      inval_epoch = 0;
      page_epochs = Hashtbl.create 64;
      stale_dirty = Hashtbl.create 16;
      releasing = Hashtbl.create 8;
      fetches = Sim.Stats.counter "dsmc.fetches";
      puts = Sim.Stats.counter "dsmc.puts";
      invals = Sim.Stats.counter "dsmc.invals";
      downs = Sim.Stats.counter "dsmc.downs";
      loc_hits = Sim.Stats.counter "dsmc.loc_hits";
      loc_misses = Sim.Stats.counter "dsmc.loc_misses";
      loc_evictions = Sim.Stats.counter "dsmc.loc_evictions";
      merge_rpcs = Sim.Stats.counter "dsmc.merge_rpcs";
      releases = Sim.Stats.counter "dsmc.copy_releases";
    }
  in
  Ra.Mmu.set_resolver node.Ra.Node.mmu (fun _seg -> partition t);
  Ra.Mmu.set_consistency node.Ra.Node.mmu consistency;
  Ratp.Endpoint.serve node.Ra.Node.endpoint ~service:P.client_service
    (fun ~src:_ body ->
      let reply =
        match body with
        | P.Invalidate { seg; page } ->
            Sim.Stats.incr t.invals;
            t.inval_epoch <- t.inval_epoch + 1;
            Hashtbl.replace t.page_epochs (seg, page) t.inval_epoch;
            P.Invalidated { dirty = Ra.Mmu.invalidate node.Ra.Node.mmu seg page }
        | P.Downgrade { seg; page } ->
            Sim.Stats.incr t.downs;
            P.Downgraded { dirty = Ra.Mmu.downgrade node.Ra.Node.mmu seg page }
        | P.Inval_batch pages ->
            (* a release-mode lock scope ended: clean copies drop at
               once.  A frame holding OUR unflushed writes survives —
               its diff must still reach the home — but is marked
               stale so our own flush drops it instead of rebasing
               (its unmodified bytes predate the other scope). *)
            List.iter
              (fun (seg, page) ->
                Sim.Stats.incr t.invals;
                t.inval_epoch <- t.inval_epoch + 1;
                Hashtbl.replace t.page_epochs (seg, page) t.inval_epoch;
                if Ra.Mmu.is_dirty node.Ra.Node.mmu seg page then
                  Hashtbl.replace t.stale_dirty (seg, page) ()
                else ignore (Ra.Mmu.invalidate node.Ra.Node.mmu seg page))
              pages;
            P.Batch_ok
        | _ -> P.Page_error
      in
      (reply, P.request_bytes reply));
  t

(* Maximal runs of bytes that differ from the twin.  Pages are
   always Page.size, so only the common length matters. *)
let diff_spans ~base ~current =
  let n = min (Bytes.length base) (Bytes.length current) in
  let spans = ref [] in
  let i = ref 0 in
  while !i < n do
    if Bytes.get base !i <> Bytes.get current !i then begin
      let j = ref (!i + 1) in
      while !j < n && Bytes.get base !j <> Bytes.get current !j do
        incr j
      done;
      spans := (!i, Bytes.sub current !i (!j - !i)) :: !spans;
      i := !j
    end
    else incr i
  done;
  List.rev !spans

(* Release-mode writeback: ship only the byte spans changed against
   each page's twin, in one Put_diffs RPC.  Sub-page application at
   the home means two lock scopes writing disjoint bytes of the same
   page cannot clobber each other, and the home's apply triggers the
   deferred invalidation burst that ends this scope. *)
let flush_release t seg dirty =
 Obs.Tracer.with_span ~node:t.node.Ra.Node.id "dsm.put" @@ fun () ->
  let mmu = t.node.Ra.Node.mmu in
  let home = locate_cached t seg in
  Sim.Stats.incr t.puts;
  let entries =
    List.map
      (fun (page, data) ->
        match Ra.Mmu.page_base mmu seg page with
        | Some base -> (seg, page, diff_spans ~base ~current:data)
        | None -> (seg, page, [ (0, data) ]))
      dirty
  in
  match call t ~dst:home (P.Put_diffs entries) with
  | Ok P.Batch_ok ->
      List.iter
        (fun (page, _) ->
          if Hashtbl.mem t.stale_dirty (seg, page) then begin
            (* another scope flushed under us: our diff is home, but
               the frame's unmodified bytes are stale — refetch on
               next touch *)
            Hashtbl.remove t.stale_dirty (seg, page);
            ignore (Ra.Mmu.invalidate mmu seg page)
          end
          else begin
            Ra.Mmu.mark_clean mmu seg page;
            Ra.Mmu.rebase mmu seg page
          end)
        dirty
  | Ok P.Segment_error ->
      forget_location t seg;
      raise (Ra.Partition.No_segment seg)
  | Ok _ -> raise (Unavailable seg)
  | Error Ratp.Endpoint.Timeout ->
      forget_location t seg;
      raise (Unavailable seg)

(* Commutative flush: encode the local writes as merge deltas against
   each page's twin and let the home combine them; the reply carries
   the post-merge images, so anti-entropy (pulling everyone else's
   merged counters) rides the same round trip.  Each delta carries its
   twin's stamp as an idempotency key: on a timeout the pages stay
   dirty against an unchanged twin, so the re-sent flush repeats the
   stamp and the home applies only what its first application missed
   — a lost reply cannot double-count an Add delta.  Only success
   refreshes the twin (and thus allocates a fresh stamp). *)
let flush_merges t seg op dirty =
 Obs.Tracer.with_span ~node:t.node.Ra.Node.id "dsm.merge" @@ fun () ->
  let mmu = t.node.Ra.Node.mmu in
  let home = locate_cached t seg in
  Sim.Stats.incr t.merge_rpcs;
  let deltas =
    List.map
      (fun (page, data) ->
        let base =
          match Ra.Mmu.page_base mmu seg page with
          | Some b -> b
          | None -> Bytes.make (Bytes.length data) '\000'
        in
        ( seg,
          page,
          Ra.Mmu.twin_stamp mmu seg page,
          Ra.Partition.merge_delta op ~base ~current:data ))
      dirty
  in
  match call t ~dst:home (P.Merge_delta deltas) with
  | Ok (P.Merged images) ->
      List.iter
        (fun (s, page, img) -> Ra.Mmu.merge_refresh mmu s page img)
        images
  | Ok P.Segment_error ->
      forget_location t seg;
      raise (Ra.Partition.No_segment seg)
  | Ok _ -> raise (Unavailable seg)
  | Error Ratp.Endpoint.Timeout ->
      forget_location t seg;
      raise (Unavailable seg)

(* Writeback of a segment's dirty pages: one Put_batch carrying all
   of them (RaTP fragments it on the wire) instead of one Put_page
   round trip per page.  [~batch_io:false] keeps the historical
   serial loop for A/B comparison ({!Experiments.Page_batching}).
   Relaxed-consistency segments always flush as one RPC: diffs for
   release mode, merge deltas for commutative. *)
let flush_segment t seg =
  let mmu = t.node.Ra.Node.mmu in
  match Ra.Mmu.dirty_pages mmu seg with
  | [] -> ()
  | dirty
    when t.mode_of seg = Ra.Partition.Release && not (is_local t seg) ->
      flush_release t seg dirty
  | dirty
    when (match t.mode_of seg with
         | Ra.Partition.Commutative _ -> true
         | _ -> false)
         && not (is_local t seg) -> (
      match t.mode_of seg with
      | Ra.Partition.Commutative op -> flush_merges t seg op dirty
      | _ -> assert false)
  | dirty when t.batch_io && not (is_local t seg) ->
      remote_write_batch t ~seg
        (List.map (fun (page, data) -> (seg, page, data)) dirty);
      List.iter (fun (page, _) -> Ra.Mmu.mark_clean mmu seg page) dirty
  | dirty ->
      List.iter
        (fun (page, data) ->
          (partition t).Ra.Partition.writeback ~seg ~page data;
          Ra.Mmu.mark_clean mmu seg page)
        dirty

(* Dropping a segment's frames also drops our copyset registrations
   at the home; telling it (one RPC, errors swallowed — this is pure
   bookkeeping) keeps the copysets exact so no later write fault pays
   a redundant Invalidate for copies we no longer hold.  The release
   completes before this returns, so a refetch cannot race it. *)
let drop_segment t seg =
  let mmu = t.node.Ra.Node.mmu in
  let pages = Ra.Mmu.segment_pages mmu seg in
  List.iter (fun p -> Hashtbl.remove t.stale_dirty (seg, p)) pages;
  Ra.Mmu.drop_segment mmu seg;
  if pages <> [] && not (is_local t seg) then
    try
      send_release t ~home:(locate_cached t seg) ~wait:true
        (List.map (fun p -> (seg, p)) pages)
    with _ -> ()

let remote_fetches t = Sim.Stats.value t.fetches
let put_rpcs t = Sim.Stats.value t.puts
let invalidations_received t = Sim.Stats.value t.invals
let downgrades_received t = Sim.Stats.value t.downs
let location_hits t = Sim.Stats.value t.loc_hits
let location_misses t = Sim.Stats.value t.loc_misses
let location_evictions t = Sim.Stats.value t.loc_evictions
let merge_flushes t = Sim.Stats.value t.merge_rpcs
let copy_releases t = Sim.Stats.value t.releases

let metrics t =
  [
    ("dsmc/fetches", Obs.Registry.Counter t.fetches);
    ("dsmc/puts", Obs.Registry.Counter t.puts);
    ("dsmc/invals", Obs.Registry.Counter t.invals);
    ("dsmc/downs", Obs.Registry.Counter t.downs);
    ("dsmc/loc_hits", Obs.Registry.Counter t.loc_hits);
    ("dsmc/loc_misses", Obs.Registry.Counter t.loc_misses);
    ("dsmc/loc_evictions", Obs.Registry.Counter t.loc_evictions);
    ("dsm/mode/merge_rpcs", Obs.Registry.Counter t.merge_rpcs);
    ("dsm/mode/copy_releases", Obs.Registry.Counter t.releases);
  ]
