(** DSM wire protocol.

    All coherence, locking, directory and commit traffic between
    compute servers (DSM clients) and data servers (DSM servers) uses
    these RaTP message bodies.  Sizes model an 8K page plus headers
    where page data is carried. *)

(** Transactions are named by their coordinating node and a per-node
    sequence number. *)
type txn_id = { tnode : int; tseq : int }

type lock_kind = R | W

type write_set = (Ra.Sysname.t * int * bytes) list
(** (segment, page index, page image) triples. *)

type Ratp.Packet.body +=
  | Get_page of {
      seg : Ra.Sysname.t;
      page : int;
      mode : Ra.Partition.mode;
      window : int;
          (** fault-ahead hint: ship up to [window] adjacent resident
              pages in the reply (0 disables prefetch) *)
    }
  | Got_page of Ra.Partition.fetch_data
  | Got_pages of {
      main : Ra.Partition.fetch_data;
      extras : (int * bytes) list;
          (** prefetched (page, image) pairs following the faulted
              page; the server has already registered the requester in
              each page's copyset *)
    }
  | Page_error
  | Put_page of { seg : Ra.Sysname.t; page : int; data : bytes }
  | Put_batch of write_set
  | Overwrite of write_set
      (** server-side overwrite with invalidation of every cached
          copy (replica propagation) *)
  | Batch_ok
  | Invalidate of { seg : Ra.Sysname.t; page : int }
  | Invalidated of { dirty : bytes option }
  | Downgrade of { seg : Ra.Sysname.t; page : int }
  | Downgraded of { dirty : bytes option }
  | Create_segment of {
      seg : Ra.Sysname.t;
      size : int;
      mode : Ra.Partition.consistency;
    }
  | Delete_segment of Ra.Sysname.t
  | Segment_ok
  | Segment_error
  | Lock_segment of { seg : Ra.Sysname.t; kind : lock_kind; txn : txn_id }
  | Lock_granted
  | Lock_cancelled
  | Get_descriptor of Ra.Sysname.t
  | Descriptor of Store.Directory.descriptor option
  | Register_object of {
      obj : Ra.Sysname.t;
      descriptor : Store.Directory.descriptor;
    }
  | Unregister_object of Ra.Sysname.t
  | Registered
  | Prepare of { txn : txn_id; writes : write_set }
  | Vote of bool
  | Commit of { txn : txn_id }
  | Abort of { txn : txn_id }
  | Txn_done
  | List_objects
  | Objects of Ra.Sysname.t list
  | Read_pages of { seg : Ra.Sysname.t; from : int; count : int }
      (** bulk replica read for re-replication: up to [count] non-zero
          pages starting at [from]; no owner/copyset side effects *)
  | Pages of { size : int; pages : (int * bytes) list }
  | Mirror_writes of write_set
      (** committed writes forwarded by a segment's primary to its
          backups; applied to the store, never re-forwarded *)
  | Backfill of write_set
      (** re-replication catch-up copy: a page is applied only if the
          receiving store still holds it zeroed, so it can never
          clobber a fresher mirrored write *)
  | Inval_batch of (Ra.Sysname.t * int) list
      (** release-mode flush: one batched invalidation RPC per copyset
          member, sent when a lock scope's dirty pages land at the
          home; the copy is dropped without returning dirty data *)
  | Put_diffs of (Ra.Sysname.t * int * (int * bytes) list) list
      (** release-mode writeback: per page, the (offset, bytes) spans
          changed against the twin, applied sub-page at the home *)
  | Merge_delta of (Ra.Sysname.t * int * int * bytes) list
      (** commutative flush: per page (segment, page, twin-stamp,
          delta) — word-wise deltas against the twin, combined at the
          home under the segment's merge operator.  The twin-stamp is
          the idempotency key: a flush re-sent after a client-visible
          timeout repeats the stamp, and the home applies only the
          difference against what it already recorded for it, so Add
          deltas are never applied twice *)
  | Merged of write_set
      (** post-merge home images returned to the flushing replica *)
  | Release_copies of (Ra.Sysname.t * int) list
      (** exact copyset maintenance: the client dropped these page
          copies on its own (budget-rejected prefetch install, segment
          drop), so the home deletes it from the copysets *)

val service : int
(** RaTP service id of DSM servers. *)

val client_service : int
(** RaTP service id of DSM clients (server-initiated invalidation and
    downgrade). *)

val request_bytes : Ratp.Packet.body -> int
(** Wire size of a message body. *)

val txn_compare : txn_id -> txn_id -> int
val pp_txn : Format.formatter -> txn_id -> unit
val pp_lock_kind : Format.formatter -> lock_kind -> unit
