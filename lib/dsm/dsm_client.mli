(** The DSM client: the partition compute servers page through.

    Page faults on a compute server become [Get_page] transactions to
    the data server that stores the segment; the client also answers
    the server-initiated invalidation and downgrade calls that keep
    every copy coherent.  Together with {!Dsm_server} this gives each
    node the illusion that every object logically resides locally —
    the paper's distributed shared memory.

    The fast path adds three mechanisms (DESIGN.md §11), each gated
    for A/B comparison: batched writeback of dirty pages, adaptive
    fault-ahead prefetch, and a location cache that memoises
    segment-to-home resolution. *)

exception Unavailable of Ra.Sysname.t
(** The segment's data server did not answer (crashed or
    partitioned). *)

type t

val create :
  Ra.Node.t ->
  locate:(Ra.Sysname.t -> Net.Address.t) ->
  ?consistency:(Ra.Sysname.t -> Ra.Partition.consistency) ->
  ?local_store:Store.Segment_store.t ->
  ?batch_io:bool ->
  ?prefetch_window:int ->
  unit ->
  t
(** Install the DSM client on a node and point the node's MMU at it.
    [locate] maps a segment to its data server.  When the node is
    itself a data server, [local_store] serves its own segments
    without network traffic (a machine with a disk is both a compute
    and data server).

    [batch_io] (default [true]) makes {!flush_segment} send one
    [Put_batch] with every dirty page instead of a [Put_page] round
    trip per page; [false] keeps the serial loop for A/B experiments.

    [prefetch_window] (default [0], off) caps the fault-ahead window:
    read faults ask the server to ship up to that many adjacent
    resident pages in the same reply, installed locally as clean read
    copies.  The window adapts per segment — it doubles while faults
    land sequentially and resets on a random jump.  Off by default
    because prefetch changes fault counts and timings, which the
    calibrated experiments pin down.

    [consistency] maps a segment to its coherence mode (default: all
    [One_copy]); it is also installed as the MMU's consistency
    resolver so relaxed-mode frames keep twins.  Write faults on
    [Commutative] segments go out as reads (the home never arbitrates
    them), and {!flush_segment} ships diffs or merge deltas instead
    of page images for relaxed modes. *)

val set_consistency : t -> (Ra.Sysname.t -> Ra.Partition.consistency) -> unit
(** Replace the consistency resolver (also re-points the MMU's). *)

val consistency_of : t -> Ra.Sysname.t -> Ra.Partition.consistency

val partition : t -> Ra.Partition.t

val node : t -> Ra.Node.t

val flush_segment : t -> Ra.Sysname.t -> unit
(** Write every dirty resident page of the segment back to its data
    server and mark the frames clean (used by s-threads that want
    their updates stored, and by examples).  One batched RPC per
    segment when [batch_io] is set. *)

val drop_segment : t -> Ra.Sysname.t -> unit
(** Locally invalidate all frames of a segment without writing them
    back (transaction abort), and release the matching copyset
    registrations at the home so no later write fault invalidates
    copies that are already gone. *)

val reset_location_cache : t -> unit
(** Drop every cached segment-to-home binding (placement may change
    across restarts).  Individual entries are already dropped
    whenever their home stops answering. *)

val evict_where : t -> (Ra.Sysname.t -> Net.Address.t -> bool) -> int
(** Drop exactly the cached locations the predicate condemns (segment,
    cached home) and return how many were evicted — used on a
    placement-ring remap to invalidate the moved arc and nothing
    else. *)

val apply_view : t -> Membership.Monitor.view -> unit
(** Evict cached locations that point at members the view declares
    [Dead], so the next fault re-resolves against a surviving replica
    instead of waiting out the RaTP retry ladder. *)

val remote_fetches : t -> int
(** Fetch RPCs issued (prefetch hits avoid these entirely). *)

val put_rpcs : t -> int
(** Writeback RPCs issued ([Put_page] and [Put_batch] both count 1). *)

val invalidations_received : t -> int
val downgrades_received : t -> int

val location_hits : t -> int
(** Faults whose home resolution was served from the location cache. *)

val location_misses : t -> int

val location_evictions : t -> int
(** Cached bindings dropped because the membership view condemned
    their home. *)

val merge_flushes : t -> int
(** [Merge_delta] RPCs sent for commutative segments. *)

val copy_releases : t -> int
(** [Release_copies] RPCs sent to keep copysets exact: only for
    copies this node truly no longer holds (budget-rejected prefetch
    installs, segment drops) — never for a decline that keeps a live
    copy resident.  Faults on a page with a release in flight wait
    for it to land, so a release can never erase a newer
    registration. *)

val metrics : t -> (string * Obs.Registry.metric) list
(** Live metric handles under ["dsmc/"] paths, for a per-node
    {!Obs.Registry}. *)
