(** Cluster membership: heartbeat failure detection and epoch-numbered
    views (ROADMAP item 2; DESIGN.md §13). *)

module Monitor = Monitor
