(* Heartbeat failure detector.  See monitor.mli for the protocol.

   The monitor is deliberately pull-free: watched nodes push
   [Heartbeat] datagrams on a fixed period and the monitor condemns by
   silence.  Senders live in the global process group, guarded by the
   watched node's [alive] flag, so a machine crash silences its
   heartbeats (the detector's whole signal) without killing the sender
   — when the machine restarts, beats resume and the member is moved
   back to [Alive] under a fresh epoch. *)

type status = Alive | Suspect | Dead

type member = { addr : Net.Address.t; status : status }
type view = { epoch : int; members : member list }

type config = {
  period : Sim.Time.span;
  suspect_after : Sim.Time.span;
  dead_after : Sim.Time.span;
}

let default_config =
  {
    period = Sim.Time.ms 25;
    suspect_after = Sim.Time.ms 75;
    dead_after = Sim.Time.ms 200;
  }

type Ratp.Packet.body += Heartbeat of Net.Address.t | Heartbeat_ack

let service = 40
let heartbeat_bytes = 24

type entry = {
  mutable last_seen : Sim.Time.t;
  mutable e_status : status;
  mutable died_at : Sim.Time.t option;
}

type t = {
  host : Ra.Node.t;
  config : config;
  entries : (Net.Address.t, entry) Hashtbl.t;
  mutable order : Net.Address.t list;  (* watched addresses, sorted *)
  mutable epoch : int;
  mutable subscribers : (view -> unit) list;  (* reversed *)
  mutable stopped : bool;
  beats : Sim.Stats.counter;
  trans : Sim.Stats.counter;
}

let host t = t.host

let view t =
  {
    epoch = t.epoch;
    members =
      List.map
        (fun a ->
          let e = Hashtbl.find t.entries a in
          { addr = a; status = e.e_status })
        t.order;
  }

let epoch t = t.epoch

let status_of t a =
  match Hashtbl.find_opt t.entries a with
  | Some e -> e.e_status
  | None -> Alive

let is_dead t a = status_of t a = Dead
let usable t a = status_of t a <> Dead

let last_death t a =
  match Hashtbl.find_opt t.entries a with
  | Some e -> e.died_at
  | None -> None

let subscribe t f = t.subscribers <- f :: t.subscribers
let heartbeats t = Sim.Stats.value t.beats
let transitions t = Sim.Stats.value t.trans
let stop t = t.stopped <- true

let notify t =
  let v = view t in
  List.iter (fun f -> f v) (List.rev t.subscribers)

let bump t =
  t.epoch <- t.epoch + 1;
  Sim.Stats.incr t.trans

(* A beat arrived from [a]: refresh its clock and, if it had been
   condemned or suspected, announce the rejoin. *)
let record_beat t a =
  match Hashtbl.find_opt t.entries a with
  | None -> ()
  | Some e ->
      Sim.Stats.incr t.beats;
      e.last_seen <- Sim.Engine.now t.host.Ra.Node.eng;
      if e.e_status <> Alive then begin
        e.e_status <- Alive;
        bump t;
        notify t
      end

(* Condemn by silence.  Runs on the monitor's period; one epoch bump
   covers all transitions found in a single sweep. *)
let sweep t =
  let now = Sim.Engine.now t.host.Ra.Node.eng in
  let changed = ref false in
  List.iter
    (fun a ->
      let e = Hashtbl.find t.entries a in
      let silence = Sim.Time.diff now e.last_seen in
      match e.e_status with
      | Dead -> ()
      | Alive | Suspect ->
          if silence > t.config.dead_after then begin
            e.e_status <- Dead;
            e.died_at <- Some now;
            changed := true
          end
          else if silence > t.config.suspect_after && e.e_status = Alive
          then begin
            e.e_status <- Suspect;
            changed := true
          end)
    t.order;
  if !changed then begin
    bump t;
    notify t
  end

let create ?(config = default_config) host =
  let t =
    {
      host;
      config;
      entries = Hashtbl.create 16;
      order = [];
      epoch = 0;
      subscribers = [];
      stopped = false;
      beats = Sim.Stats.counter "mbr.heartbeats";
      trans = Sim.Stats.counter "mbr.transitions";
    }
  in
  Ratp.Endpoint.serve host.Ra.Node.endpoint ~service (fun ~src:_ body ->
      (match body with Heartbeat a -> record_beat t a | _ -> ());
      (Heartbeat_ack, 16));
  let checker () =
    let rec loop () =
      if not t.stopped then begin
        Sim.sleep t.config.period;
        if not t.stopped then begin
          if t.host.Ra.Node.alive then sweep t;
          loop ()
        end
      end
    in
    loop ()
  in
  ignore
    (Sim.Engine.spawn host.Ra.Node.eng ~group:host.Ra.Node.id
       (Printf.sprintf "mbr-check-%d" host.Ra.Node.id)
       checker);
  t

let watch t node =
  let a = node.Ra.Node.id in
  if not (Hashtbl.mem t.entries a) then begin
    let e =
      {
        last_seen = Sim.Engine.now t.host.Ra.Node.eng;
        e_status = Alive;
        died_at = None;
      }
    in
    Hashtbl.replace t.entries a e;
    t.order <- List.sort Net.Address.compare (a :: t.order);
    let sender () =
      let rec loop () =
        if not t.stopped then begin
          Sim.sleep t.config.period;
          if not t.stopped then begin
            (if node.Ra.Node.alive && t.host.Ra.Node.alive then
               match
                 Ratp.Endpoint.call node.Ra.Node.endpoint
                   ~dst:t.host.Ra.Node.id ~service ~size:heartbeat_bytes
                   (Heartbeat a)
               with
               | Ok _ | Error Ratp.Endpoint.Timeout -> ());
            loop ()
          end
        end
      in
      loop ()
    in
    (* Global group: survives the watched machine's crash so beats can
       resume after restart; the [alive] guard keeps it quiet while the
       machine is down. *)
    ignore
      (Sim.Engine.spawn t.host.Ra.Node.eng
         (Printf.sprintf "mbr-beat-%d" a)
         sender)
  end
