(** Heartbeat failure detection and cluster membership views.

    One node hosts a monitor; every other node of interest is enrolled
    with {!watch}, which starts a lightweight heartbeat sender on the
    watched node (a [Heartbeat] RaTP datagram every [period]).  The
    monitor classifies each member by how long it has been silent:

    {v  Alive --silence > suspect_after--> Suspect
        Suspect --silence > dead_after--> Dead
        Suspect/Dead --heartbeat received--> Alive  v}

    Every transition bumps the view {e epoch} and synchronously
    notifies subscribers with the new view.  A [Dead] verdict is not
    final: a restarted node whose heartbeats resume is moved back to
    [Alive] (and a fresh epoch announces the rejoin) — this is what
    lets a recovered peer re-enter DSM copysets without a server
    restart.

    The sender and checker processes re-arm themselves forever, so a
    simulation that starts a monitor must call {!stop} before its main
    process finishes; otherwise {!Sim.exec} never drains the event
    queue. *)

type status = Alive | Suspect | Dead

type member = { addr : Net.Address.t; status : status }

type view = {
  epoch : int;  (** bumped on every status transition *)
  members : member list;  (** sorted by address *)
}

type config = {
  period : Sim.Time.span;  (** heartbeat send / check interval *)
  suspect_after : Sim.Time.span;  (** silence before [Suspect] *)
  dead_after : Sim.Time.span;  (** silence before [Dead] *)
}

val default_config : config
(** 25 ms period, 75 ms suspect, 200 ms dead. *)

type t

val create : ?config:config -> Ra.Node.t -> t
(** [create host] hosts a monitor on [host]: registers the heartbeat
    service on its endpoint and spawns the periodic checker (in
    [host]'s process group, so it dies with the machine). *)

val watch : t -> Ra.Node.t -> unit
(** Enroll a node.  Spawns its heartbeat sender in the global process
    group so a crash of the watched machine silences it (the [alive]
    guard) without killing it — heartbeats resume after restart.
    Idempotent per address. *)

val host : t -> Ra.Node.t
(** The node hosting the monitor. *)

val subscribe : t -> (view -> unit) -> unit
(** [subscribe t f] calls [f] with the new view after every epoch
    bump, in subscription order, synchronously from the transition
    site. *)

val view : t -> view
val epoch : t -> int

val status_of : t -> Net.Address.t -> status
(** [Alive] for addresses never enrolled. *)

val is_dead : t -> Net.Address.t -> bool

val usable : t -> Net.Address.t -> bool
(** Not [Dead] — suspects stay usable until condemned, matching the
    paper's optimistic use of a node until it is known lost. *)

val last_death : t -> Net.Address.t -> Sim.Time.t option
(** Instant of the most recent [Dead] verdict for this member, if
    any; survives a later rejoin (used to measure detection time). *)

val stop : t -> unit
(** Stop the checker and all heartbeat senders after their next
    wake-up; no further epoch bumps.  Required before the end of the
    simulation. *)

val heartbeats : t -> int
(** Heartbeats received over the monitor's lifetime. *)

val transitions : t -> int
(** Status transitions (epoch bumps) observed. *)
