(** Named, reproducible fault-injection scenarios.

    Each scenario boots a fresh simulated system, installs a fault
    plan through {!Net.Fault} (loss profiles, scripted filters, timed
    partitions, scheduled node crash/restart), drives a workload, and
    checks the recovery invariants: committed data survives, handler
    effects are at-most-once per transaction id, every call completes
    or times out, and retransmission counters line up with the
    injected loss.

    Outcomes are pure functions of (scenario, seed): running a
    scenario twice with the same seed yields identical statistics and
    trace, which the test suite asserts. *)

type outcome = {
  scenario : string;
  seed : int;
  calls : int;
  oks : int;
  timeouts : int;
  aborts : int;  (** transaction aborts surfaced to the caller *)
  commits : int;  (** handler/transaction effects committed *)
  duplicate_commits : int;  (** calls whose effect committed twice *)
  lost_commits : int;  (** acknowledged calls missing from the store *)
  retransmissions : int;
  drops : int;
  duplicates : int;
  violations : string list;  (** empty iff every invariant holds *)
  trace : string;  (** canonical per-call trace for determinism checks *)
}

val scenarios : string list
(** The scenario names, in execution order: fragment-loss,
    reply-loss, ack-loss, burst-loss, jitter-dup-reorder,
    mid-call-partition, server-crash-restart, mid-commit-partition
    (bank over 2PC), pet-crash-quorum. *)

val run : ?seed:int -> string -> outcome
(** Run one scenario (default seed 42).  Raises [Invalid_argument]
    for an unknown name. *)

val run_all : ?seed:int -> unit -> outcome list
(** Run every scenario. *)

val summary : outcome -> string
(** One-line canonical rendering of every field; equal strings mean
    equal outcomes (used for determinism checks). *)

val report : outcome list -> string
(** Human-readable table for the experiment driver. *)
