(** The paper's evaluation, reproduced.

    One module per table/figure of the reproduction (see DESIGN.md's
    experiment index): T1 kernel costs, T2 networking, T3 invocation,
    F1 distributed sort over DSM, F2 consistency costs, F3 PET
    resilience.  Each module runs a fresh simulated cluster and
    reports paper-vs-measured. *)

module Report = Report
module T1_kernel = T1_kernel
module T2_network = T2_network
module T3_invocation = T3_invocation
module F1_sort = F1_sort
module F2_consistency = F2_consistency
module F3_pet = F3_pet
module Faults = Faults

module Membership = Membership_exp
(** [Membership_exp] rather than [Membership] on disk so the module
    does not shadow the membership library it drives. *)

module Ablations = Ablations
module Write_fault_fanout = Write_fault_fanout
module Page_batching = Page_batching
module Transport = Transport
module Load = Load
module Commit = Commit_exp
module Consistency = Consistency_exp
module Trace_run = Trace_run
