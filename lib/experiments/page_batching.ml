(* DSM fast-path A/B: batched writeback and fault-ahead prefetch
   (DESIGN.md §11).

   Scans read a 16-page segment page by page — sequentially or in a
   fixed pseudo-random order — under different prefetch windows and
   count the fetch RPCs that actually cross the wire.  Flushes dirty
   a growing number of pages and compare the serial per-page
   writeback against the single Put_batch.

   The cluster here runs a faster interconnect than the calibrated
   1988-vintage default (100 Mbit/s, light per-frame host costs):
   batching pays off most when per-RPC overhead, not raw wire time,
   dominates a transfer, which is the regime modern hardware — and
   the ROADMAP's "fast as the hardware allows" goal — lives in.  The
   calibrated experiments (T1–T3) keep the paper's network. *)

type scan_point = {
  window : int;
  sequential : bool;
  fetch_rpcs : int;
  prefetched : int;  (* pages shipped speculatively by the server *)
  scan_ms : float;
}

type flush_point = {
  pages : int;
  serial_ms : float;
  batched_ms : float;
  serial_rpcs : int;
  batched_rpcs : int;
}

type result = { scans : scan_point list; flushes : flush_point list }

let seg_pages = 16

(* A fixed permutation of 0..15: "random" access that is identical on
   every run, so the experiment stays deterministic by construction. *)
let shuffled = [ 5; 0; 11; 3; 14; 7; 1; 12; 9; 15; 2; 8; 6; 13; 4; 10 ]

let ether_config =
  {
    Net.Ethernet.default_config with
    bandwidth_bps = 100_000_000;
    send_cost_per_frame = Sim.Time.us 80;
    recv_cost_per_frame = Sim.Time.us 80;
    cost_per_byte_ns = 5;
  }

let page_image p = Bytes.make Ra.Page.size (Char.chr (97 + (p mod 26)))

type setup = {
  client : Dsm.Dsm_client.t;
  server : Dsm.Dsm_server.t;
  seg : Ra.Sysname.t;
  vs : Ra.Virtual_space.t;
  mmu : Ra.Mmu.t;
}

(* One data server holding a [seg_pages]-page segment with known
   contents, one compute server mapping it. *)
let setup ~batch_io ~prefetch_window =
  let ether = Net.Ethernet.create (Sim.engine ()) ~config:ether_config () in
  let nd = Ra.Node.create ether ~id:1 ~kind:Ra.Node.Data () in
  let server = Dsm.Dsm_server.create nd () in
  let nc = Ra.Node.create ether ~id:2 ~kind:Ra.Node.Compute () in
  let client =
    Dsm.Dsm_client.create nc ~locate:(fun _ -> 1) ~batch_io ~prefetch_window ()
  in
  let seg = Ra.Sysname.fresh nd.Ra.Node.names in
  let store = Dsm.Dsm_server.store server in
  Store.Segment_store.create_segment store seg
    ~size:(seg_pages * Ra.Page.size);
  for p = 0 to seg_pages - 1 do
    Store.Segment_store.write_page store seg p (page_image p)
  done;
  let vs = Ra.Virtual_space.create () in
  Ra.Virtual_space.map vs ~base:0 ~len:(seg_pages * Ra.Page.size)
    ~prot:Ra.Virtual_space.Read_write seg;
  { client; server; seg; vs; mmu = nc.Ra.Node.mmu }

let measure_scan ~window ~sequential =
  Sim.exec (fun () ->
      let s = setup ~batch_io:true ~prefetch_window:window in
      let order =
        if sequential then List.init seg_pages Fun.id else shuffled
      in
      let t0 = Sim.now () in
      List.iter
        (fun p ->
          let got =
            Ra.Mmu.read s.mmu s.vs ~addr:(p * Ra.Page.size) ~len:8
          in
          let want = Char.chr (97 + (p mod 26)) in
          Bytes.iter
            (fun c ->
              if c <> want then
                failwith
                  (Printf.sprintf "page_batching: page %d read %c, want %c" p
                     c want))
            got)
        order;
      {
        window;
        sequential;
        fetch_rpcs = Dsm.Dsm_client.remote_fetches s.client;
        prefetched = Dsm.Dsm_server.pages_prefetched s.server;
        scan_ms = Sim.Time.to_ms_f (Sim.Time.diff (Sim.now ()) t0);
      })

let measure_flush ~pages ~batched =
  Sim.exec (fun () ->
      let s = setup ~batch_io:batched ~prefetch_window:0 in
      for p = 0 to pages - 1 do
        Ra.Mmu.write s.mmu s.vs ~addr:(p * Ra.Page.size)
          (Bytes.make 64 'w')
      done;
      let rpcs0 = Dsm.Dsm_client.put_rpcs s.client in
      let t0 = Sim.now () in
      Dsm.Dsm_client.flush_segment s.client s.seg;
      let ms = Sim.Time.to_ms_f (Sim.Time.diff (Sim.now ()) t0) in
      (ms, Dsm.Dsm_client.put_rpcs s.client - rpcs0))

let flush_point pages =
  let serial_ms, serial_rpcs = measure_flush ~pages ~batched:false in
  let batched_ms, batched_rpcs = measure_flush ~pages ~batched:true in
  { pages; serial_ms; batched_ms; serial_rpcs; batched_rpcs }

let run ?(windows = [ 0; 2; 8 ]) ?(flush_sizes = [ 1; 4; 16 ]) () =
  let scans =
    List.concat_map
      (fun window ->
        List.map
          (fun sequential -> measure_scan ~window ~sequential)
          [ true; false ])
      windows
  in
  { scans; flushes = List.map flush_point flush_sizes }

let report r =
  let scan_rows =
    List.map
      (fun p ->
        {
          Report.label =
            Printf.sprintf "%s scan, window %d"
              (if p.sequential then "sequential" else "random")
              p.window;
          paper = "-";
          measured =
            Printf.sprintf "%d fetch RPCs, %s" p.fetch_rpcs
              (Report.ms p.scan_ms);
          note = Printf.sprintf "%d pages prefetched" p.prefetched;
        })
      r.scans
  in
  let flush_rows =
    List.map
      (fun p ->
        {
          Report.label = Printf.sprintf "flush %d dirty pages" p.pages;
          paper = "-";
          measured =
            Printf.sprintf "%s serial / %s batched" (Report.ms p.serial_ms)
              (Report.ms p.batched_ms);
          note =
            Printf.sprintf "%d vs %d RPCs, %.1fx" p.serial_rpcs p.batched_rpcs
              (if p.batched_ms > 0.0 then p.serial_ms /. p.batched_ms else 0.0);
        })
      r.flushes
  in
  Report.table
    ~title:
      "Page batching: fault-ahead prefetch and batched writeback (16-page \
       segment)"
    (scan_rows @ flush_rows)
