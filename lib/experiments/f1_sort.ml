type point = {
  workers : int;
  total_ms : float;
  sort_ms : float;
  merge_ms : float;
  speedup : float;
  page_moves : int;
}

type result = { elements : int; points : point list }

let run ?(elements = 16_384) ?(worker_counts = [ 1; 2; 4; 8 ]) () =
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let sys = Clouds.boot eng ~compute:8 ~data:1 ~workstations:0 () in
      let base = ref 0.0 in
      let points =
        List.map
          (fun workers ->
            let obj = Apps.Sorter.create sys.Clouds.om ~capacity:elements () in
            Apps.Sorter.fill sys.Clouds.om ~obj ~n:elements ~seed:42;
            let sum = Apps.Sorter.checksum sys.Clouds.om ~obj in
            let r = Apps.Sorter.distributed_sort sys.Clouds.om ~obj ~workers in
            assert (Apps.Sorter.is_sorted sys.Clouds.om ~obj);
            assert (Apps.Sorter.checksum sys.Clouds.om ~obj = sum);
            if !base = 0.0 then base := r.Apps.Sorter.elapsed_ms;
            {
              workers;
              total_ms = r.Apps.Sorter.elapsed_ms;
              sort_ms = r.Apps.Sorter.sort_ms;
              merge_ms = r.Apps.Sorter.merge_ms;
              speedup = !base /. r.Apps.Sorter.elapsed_ms;
              page_moves = r.Apps.Sorter.remote_page_moves;
            })
          worker_counts
      in
      { elements; points })

let report r =
  Report.table
    ~title:
      (Printf.sprintf
         "F1: distributed sort of %d elements in ONE object (section 5.1)"
         r.elements)
    (List.map
       (fun p ->
         {
           Report.label = Printf.sprintf "%d worker thread(s)" p.workers;
           paper = "-";
           measured =
             Printf.sprintf "%s (%.2fx)" (Report.ms p.total_ms) p.speedup;
           note =
             Printf.sprintf "sort %s | merge %s | %d page moves"
               (Report.ms p.sort_ms) (Report.ms p.merge_ms) p.page_moves;
         })
       r.points)
