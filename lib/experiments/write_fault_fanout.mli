(** Write-fault latency vs copyset size, serial vs concurrent fan-out.

    The coherence cost the paper's DSM pays on a write fault is one
    invalidation round trip per read copy.  The historical server
    issued those RPCs one blocking call at a time, so an [n]-reader
    copyset cost ~[n] round trips — and a crashed (suspected) reader
    cost a full RaTP give-up timeout {e per suspect}.  With the
    concurrent fan-out ({!Dsm.Dsm_server.create}'s
    [parallel_coherence]) the whole copyset costs one round trip and
    any number of suspects cost one timeout window.

    This experiment measures both modes on the same simulated cluster
    shape: one data server, [k] reader clients that fault the page in,
    and a separate writer whose write fault triggers the invalidation
    burst.  The suspect variant crashes two of the readers first
    (without telling the server). *)

type point = {
  copyset : int;  (** readers holding the page when the write faults *)
  suspects : int;  (** of which this many are crashed and will time out *)
  serial_ms : float;  (** write-fault latency, one blocking RPC per copy *)
  parallel_ms : float;  (** write-fault latency, concurrent fan-out *)
}

type result = {
  rtt_ms : float;  (** measured null RaTP round trip, for scale *)
  baseline_ms : float;  (** write fault with an empty copyset *)
  healthy : point list;  (** all readers alive *)
  suspected : point list;  (** two readers crashed (one when [k] = 1) *)
}

val run : ?sizes:int list -> unit -> result
(** Run every (size, health, mode) combination in its own
    deterministic simulation.  [sizes] defaults to [[1; 4; 8; 16]]. *)

val report : result -> string
