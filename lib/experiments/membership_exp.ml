(* Membership / re-replication resilience grid.

   Each arm boots a cluster with a given replication factor, starts
   the heartbeat monitor and the replicator, creates a handful of
   replicated segments, and kills k of the n data servers while a
   client workload is writing through DSM.  The client retries on
   [Unavailable], so every operation eventually lands; the arm then
   measures how the failure played out:

   - detection time: crash instant to the monitor's [Dead] verdict;
   - unavailability window: first failed operation to the first
     subsequent success on the same segment (failover latency as the
     client experiences it);
   - reheal time: crash instant to the end of the heal pass that
     restored the replication factor, and the pages it copied;
   - safety: after the dust settles, every acknowledged write must be
     present on every current replica of its segment — anything else
     counts as a lost write and a violation.

   The replication=1 arm restarts its victim (the stable store
   survives a crash), exercising the lost-segment re-adoption path;
   the others rely purely on surviving backups.  Everything runs off
   the simulation RNG, so an (arm, seed) pair reproduces the exact
   trace — the test suite asserts this. *)

module Cl = Clouds.Cluster
module M = Membership.Monitor

type arm = {
  replication : int;
  kills : int;
  restart : bool;  (** restart the victims (only sensible arm: r=1) *)
}

let full_arms =
  [
    { replication = 1; kills = 1; restart = true };
    { replication = 2; kills = 1; restart = false };
    { replication = 3; kills = 1; restart = false };
    { replication = 3; kills = 2; restart = false };
  ]

let quick_arms =
  [
    { replication = 2; kills = 1; restart = false };
    { replication = 3; kills = 1; restart = false };
  ]

type outcome = {
  arm : string;
  seed : int;
  replication : int;
  kills : int;
  restarted : bool;
  ops : int;  (** phase-B operations attempted *)
  oks : int;  (** acknowledged (possibly after retries) *)
  retried : int;  (** operations that needed at least one retry *)
  retries : int;  (** total retries across all operations *)
  failed : int;  (** operations that exhausted the retry budget *)
  detect_ms : float;  (** crash to [Dead] verdict (first victim) *)
  unavail_ms : float;
      (** worst single-operation latency, first attempt to ack — the
          client-visible stall during failover; roughly the ordinary
          op cost in arms where nothing failed *)
  reheal_ms : float;  (** crash to end of the last heal pass *)
  pages_copied : int;
  loc_evictions : int;  (** location-cache entries evicted by views *)
  lost_segments : int;
  lost_writes : int;  (** acked writes missing from a replica *)
  final_epoch : int;
  violations : string list;  (** empty iff all invariants hold *)
  trace : string;  (** canonical per-op trace, for determinism *)
}

let arm_label (a : arm) =
  Printf.sprintf "r%d-kill%d%s" a.replication a.kills
    (if a.restart then "-restart" else "")

let summary o =
  Printf.sprintf
    "%s seed=%d ops=%d ok=%d retried=%d(+%d) fail=%d detect=%.1fms \
     unavail=%.1fms reheal=%.1fms copied=%d evict=%d lost_seg=%d lost_w=%d \
     epoch=%d viol=[%s] trace=%s"
    o.arm o.seed o.ops o.oks o.retried o.retries o.failed o.detect_ms
    o.unavail_ms o.reheal_ms o.pages_copied o.loc_evictions o.lost_segments
    o.lost_writes o.final_epoch
    (String.concat "," o.violations)
    o.trace

let fast_ratp =
  {
    Ratp.Endpoint.default_config with
    retry_initial = Sim.Time.ms 20;
    max_attempts = 4;
  }

(* Tight detection bounds keep a whole arm under a simulated second:
   beats every 10 ms, suspicion after 30 ms of silence, condemnation
   after 80 ms. *)
let mon_config =
  {
    M.period = Sim.Time.ms 10;
    suspect_after = Sim.Time.ms 30;
    dead_after = Sim.Time.ms 80;
  }

let n_data = 3
let n_segs = 2
let pages_per_seg = 16
let retry_sleep = Sim.Time.ms 5
let max_retries = 400

(* Create a replicated segment homed at [primary]: materialize it on
   every replica target's store directly (configuration-time, like
   class loading) and record the copyset. *)
let make_segment cl ~primary ~pages =
  let seg = Ra.Sysname.fresh cl.Cl.data_nodes.(0).Ra.Node.names in
  let targets = Cl.replica_targets cl ~primary in
  List.iter
    (fun a ->
      match Cl.server_at cl a with
      | Some srv ->
          Store.Segment_store.create_segment
            (Dsm.Dsm_server.store srv)
            seg
            ~size:(pages * Ra.Page.size)
      | None -> ())
    targets;
  Cl.set_replicas cl seg targets;
  seg

let run_arm ~seed ~ops (a : arm) =
  Sim.exec ~seed (fun () ->
      let eng = Sim.engine () in
      let sys =
        Clouds.boot eng ~ratp_config:fast_ratp ~replication:a.replication
          ~compute:2 ~data:n_data ~workstations:0 ()
      in
      let cl = sys.Clouds.cluster in
      let mon = Cl.start_membership cl ~config:mon_config () in
      Fun.protect ~finally:(fun () -> Cl.stop_membership cl) @@ fun () ->
      let repl = Clouds.Replicator.install cl mon in
      (* segment i homes at data server i+1, so kill-1 hits seg 0's
         primary while seg 1 keeps its primary up (mixed traffic) *)
      let segs =
        Array.init n_segs (fun i ->
            make_segment cl ~primary:((i mod n_data) + 1) ~pages:pages_per_seg)
      in
      let node = cl.Cl.compute_nodes.(1) in
      let client = cl.Cl.clients.(1) in
      let vspaces =
        Array.map
          (fun seg ->
            let vs = Ra.Virtual_space.create () in
            Ra.Virtual_space.map vs ~base:0
              ~len:(pages_per_seg * Ra.Page.size)
              ~prot:Ra.Virtual_space.Read_write seg;
            vs)
          segs
      in
      let expected = Array.make_matrix n_segs pages_per_seg None in
      (* one write-and-flush; only an acknowledged flush updates
         [expected], mirroring what a client may rely on *)
      let write_op ~si ~page marker =
        Ra.Mmu.write node.Ra.Node.mmu vspaces.(si)
          ~addr:(page * Ra.Page.size)
          (Bytes.of_string marker);
        Dsm.Dsm_client.flush_segment client segs.(si);
        expected.(si).(page) <- Some marker
      in
      (* phase A: seed every page so each replica holds real bytes *)
      for si = 0 to n_segs - 1 do
        for p = 0 to pages_per_seg - 1 do
          write_op ~si ~page:p (Printf.sprintf "init-%d-%d" si p)
        done
      done;
      (* the crash lands 30 ms into phase B, mid-workload *)
      let t0 = Sim.now () in
      let t_crash = Sim.Time.add t0 (Sim.Time.ms 30) in
      let victims =
        List.init a.kills (fun i -> cl.Cl.data_nodes.(i).Ra.Node.id)
      in
      List.iter
        (fun v ->
          Pet.Failure.crash_at cl v (Sim.Time.ms 30);
          if a.restart then Pet.Failure.restart_at cl v (Sim.Time.ms 280))
        victims;
      let buf = Buffer.create ops in
      let oks = ref 0 and retried = ref 0 and retries = ref 0 in
      let failed = ref 0 in
      let unavail = ref 0.0 in
      for i = 0 to ops - 1 do
        let si = i mod n_segs in
        let page = i / n_segs mod pages_per_seg in
        let marker = Printf.sprintf "op%04d-%d-%d" i si page in
        let t_start = Sim.now () in
        let rec attempt tries =
          match write_op ~si ~page marker with
          | () ->
              incr oks;
              (* the client-visible stall: first attempt to eventual
                 acknowledgement.  Measured for every op (a transport
                 retry ladder can hide a long stall inside one
                 nominally successful call), so the no-failure arms
                 report the ordinary op cost as the baseline. *)
              let stall =
                Sim.Time.to_ms_f (Sim.Time.diff (Sim.now ()) t_start)
              in
              if stall > !unavail then unavail := stall;
              if tries > 0 then begin
                incr retried;
                retries := !retries + tries
              end;
              Buffer.add_char buf (if tries = 0 then 'o' else 'r')
          | exception Dsm.Dsm_client.Unavailable _ ->
              if tries >= max_retries then begin
                incr failed;
                retries := !retries + tries;
                Buffer.add_char buf 'x'
              end
              else begin
                Sim.sleep retry_sleep;
                attempt (tries + 1)
              end
        in
        attempt 0;
        Sim.sleep (Sim.Time.ms 1)
      done;
      (* settle: let restarts rejoin, heal passes finish, views stop
         churning *)
      let target = Sim.Time.add t_crash (Sim.Time.ms 600) in
      let nowt = Sim.now () in
      if target > nowt then Sim.sleep (Sim.Time.diff target nowt);
      Clouds.Replicator.quiesce repl;
      let violations = ref [] in
      let violate fmt =
        Printf.ksprintf (fun s -> violations := s :: !violations) fmt
      in
      (* safety: every acknowledged write on every current replica *)
      let lost_writes = ref 0 in
      let healthy =
        Array.to_list cl.Cl.data_nodes
        |> List.filter (fun n ->
               n.Ra.Node.alive && M.usable mon n.Ra.Node.id)
        |> List.length
      in
      Array.iteri
        (fun si seg ->
          let reps = Cl.replicas_of cl seg in
          let want = min a.replication healthy in
          if List.length reps < want then
            violate "seg %d under-replicated: %d copies, want %d" si
              (List.length reps) want;
          List.iter
            (fun addr ->
              match Cl.server_at cl addr with
              | None -> violate "seg %d replica %d is not a data server" si addr
              | Some srv ->
                  let store = Dsm.Dsm_server.store srv in
                  Array.iteri
                    (fun p exp ->
                      match exp with
                      | None -> ()
                      | Some marker -> (
                          match
                            Store.Segment_store.read_page store seg p
                          with
                          | Ra.Partition.Data d
                            when Bytes.length d >= String.length marker
                                 && String.sub (Bytes.to_string d) 0
                                      (String.length marker)
                                    = marker ->
                              ()
                          | _ -> incr lost_writes))
                    expected.(si))
            reps)
        segs;
      if !lost_writes > 0 then
        violate "%d acknowledged writes missing from a replica" !lost_writes;
      if !failed > 0 then violate "%d operations exhausted their retries" !failed;
      let detect_ms =
        match victims with
        | [] -> 0.0
        | v :: _ -> (
            match M.last_death mon v with
            | Some t -> Sim.Time.to_ms_f (Sim.Time.diff t t_crash)
            | None ->
                violate "victim %d was never declared dead" v;
                0.0)
      in
      let reheal_ms =
        match Clouds.Replicator.last_heal repl with
        | Some t -> Sim.Time.to_ms_f (Sim.Time.diff t t_crash)
        | None -> 0.0
      in
      let unavail_ms = !unavail in
      let lost_segments = Clouds.Replicator.lost_segments repl in
      if lost_segments > 0 then
        violate "%d segments still have no live replica" lost_segments;
      {
        arm = arm_label a;
        seed;
        replication = a.replication;
        kills = a.kills;
        restarted = a.restart;
        ops;
        oks = !oks;
        retried = !retried;
        retries = !retries;
        failed = !failed;
        detect_ms;
        unavail_ms;
        reheal_ms;
        pages_copied = Clouds.Replicator.pages_copied repl;
        loc_evictions = Dsm.Dsm_client.location_evictions client;
        lost_segments;
        lost_writes = !lost_writes;
        final_epoch = M.epoch mon;
        violations = List.rev !violations;
        trace = Buffer.contents buf;
      })

let run ?(seed = 42) ?(arms = full_arms) ?(ops = 48) () =
  List.map (run_arm ~seed ~ops) arms

let report outcomes =
  Report.table
    ~title:
      "Membership: kill k of n data servers mid-workload (reheal vs \
       replication factor)"
    (List.map
       (fun o ->
         {
           Report.label = o.arm;
           paper = "-";
           measured =
             (if o.violations = [] then
                Printf.sprintf "unavail %.0f ms" o.unavail_ms
              else "VIOLATED");
           note =
             Printf.sprintf
               "detect %.0f ms, reheal %.0f ms, %d pages copied | %d ops: %d \
                ok, %d retried, %d lost writes"
               o.detect_ms o.reheal_ms o.pages_copied o.ops o.oks o.retried
               o.lost_writes;
         })
       outcomes)
