(* RaTP transport fast-path A/B (DESIGN.md §12).

   Two measurements:

   1. Bulk transfers under loss.  A client echoes messages of 1.4 K /
      8 K / 64 K bytes off a server while a uniform per-frame loss
      probability (0 / 1 / 5 / 10 %) chews on the segment, once per
      arm of {selective retransmission, adaptive RTO}.  The headline
      metric is retransmitted payload bytes: full-burst retransmission
      resends every fragment of a 47-fragment message to recover one
      lost frame, selective resends only what the peer is missing.

   2. Same-node invocation bypass.  [Object_manager.invoke_remote]
      whose target is the invoking node skips RaTP entirely; we time
      the same warm invocation through the bypass and through a real
      transport round trip to a second compute server.

   The cluster runs the fast interconnect used by the page-batching
   experiment (100 Mbit/s, light per-frame host costs), not the
   calibrated 1988 network: retransmission policy matters most when
   messages are many fragments long and the wire is not the
   bottleneck.  The calibrated experiments (T1-T3) are untouched.
   Everything draws from the simulation RNG, so each (grid, seed)
   pair reproduces exactly. *)

module E = Ratp.Endpoint

type Ratp.Packet.body += Blob of int

type point = {
  loss_pct : int;
  size : int;  (** request bytes; the reply echoes the same size *)
  selective : bool;
  adaptive : bool;
  calls : int;
  oks : int;
  timeouts : int;
  elapsed_ms : float;  (** total time for the call sequence *)
  retrans : int;  (** client retransmission events (probes included) *)
  retrans_bytes : int;  (** payload bytes resent, both directions *)
  nacks : int;  (** server bitmap replies *)
  rto_ms : float;  (** client's final RTO estimate for the server *)
}

type bypass = {
  invocations : int;
  local_ms : float;  (** mean warm invocation, same-node bypass *)
  remote_ms : float;  (** mean warm invocation, RaTP round trip *)
  local_invokes : int;  (** bypass counter after the local loop *)
}

type result = { points : point list; bypass : bypass }

let transfer_service = 31

let ether_config =
  {
    Net.Ethernet.default_config with
    bandwidth_bps = 100_000_000;
    send_cost_per_frame = Sim.Time.us 80;
    recv_cost_per_frame = Sim.Time.us 80;
    cost_per_byte_ns = 5;
  }

(* Generous attempt budget: at 10 % loss the point of the experiment
   is how much each policy spends to finish, not whether it gives up. *)
let ratp_config ~selective ~adaptive =
  {
    E.default_config with
    selective_retransmit = selective;
    adaptive_rto = adaptive;
    max_attempts = 12;
  }

let measure_point ~loss_pct ~size ~selective ~adaptive ~calls =
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let ether = Net.Ethernet.create eng ~config:ether_config () in
      let cfg = ratp_config ~selective ~adaptive in
      let server =
        Ra.Node.create ether ~id:1 ~kind:Ra.Node.Data ~ratp_config:cfg ()
      in
      let client =
        Ra.Node.create ether ~id:2 ~kind:Ra.Node.Compute ~ratp_config:cfg ()
      in
      E.serve server.Ra.Node.endpoint ~service:transfer_service
        (fun ~src:_ body ->
          match body with Blob n -> (Blob n, n) | _ -> (Ratp.Packet.Empty, 0));
      Net.Fault.set_drop_probability
        (Net.Ethernet.fault ether)
        (float_of_int loss_pct /. 100.0);
      let oks = ref 0 and timeouts = ref 0 in
      let t0 = Sim.now () in
      for _ = 1 to calls do
        match
          E.call client.Ra.Node.endpoint ~dst:1 ~service:transfer_service
            ~size (Blob size)
        with
        | Ok _ -> incr oks
        | Error E.Timeout -> incr timeouts
      done;
      let elapsed_ms = Sim.Time.to_ms_f (Sim.Time.diff (Sim.now ()) t0) in
      let rto_ms =
        match
          List.find_opt
            (fun p -> p.E.peer = 1)
            (E.peer_stats client.Ra.Node.endpoint)
        with
        | Some p -> p.E.rto_ms
        | None -> 0.0
      in
      {
        loss_pct;
        size;
        selective;
        adaptive;
        calls;
        oks = !oks;
        timeouts = !timeouts;
        elapsed_ms;
        retrans = E.retransmissions client.Ra.Node.endpoint;
        retrans_bytes =
          E.retransmitted_bytes client.Ra.Node.endpoint
          + E.retransmitted_bytes server.Ra.Node.endpoint;
        nacks = E.nacks_sent server.Ra.Node.endpoint;
        rto_ms;
      })

let null_class =
  Clouds.Obj_class.define ~name:"transport-null"
    [ Clouds.Obj_class.entry "null" (fun _ctx _ -> Clouds.Value.Unit) ]

let measure_bypass ~invocations =
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let sys = Clouds.boot eng ~compute:2 ~data:1 ~workstations:0 () in
      Clouds.Cluster.register_class sys.Clouds.cluster null_class;
      let n0 = sys.Clouds.cluster.Clouds.Cluster.compute_nodes.(0) in
      let n1 = sys.Clouds.cluster.Clouds.Cluster.compute_nodes.(1) in
      let obj =
        Clouds.Object_manager.create_object sys.Clouds.om ~on:n0
          ~class_name:"transport-null" Clouds.Value.Unit
      in
      let dispatch ~target =
        ignore
          (Clouds.Object_manager.invoke_remote sys.Clouds.om ~from:n0
             ~target ~thread_id:0 ~origin:None ~txn:None ~obj ~entry:"null"
             Clouds.Value.Unit)
      in
      (* warm both compute servers so neither loop pays activation *)
      dispatch ~target:n0.Ra.Node.id;
      dispatch ~target:n1.Ra.Node.id;
      let time_loop ~target =
        let t0 = Sim.now () in
        for _ = 1 to invocations do
          dispatch ~target
        done;
        Sim.Time.to_ms_f (Sim.Time.diff (Sim.now ()) t0)
        /. float_of_int invocations
      in
      let before = Clouds.Object_manager.local_invocations sys.Clouds.om in
      let local_ms = time_loop ~target:n0.Ra.Node.id in
      let local_invokes =
        Clouds.Object_manager.local_invocations sys.Clouds.om - before
      in
      let remote_ms = time_loop ~target:n1.Ra.Node.id in
      { invocations; local_ms; remote_ms; local_invokes })

let run ?(losses = [ 0; 1; 5; 10 ]) ?(sizes = [ 1400; 8192; 65536 ])
    ?(calls = 5) ?(invocations = 50) () =
  let arms =
    [ (false, false); (false, true); (true, false); (true, true) ]
  in
  let points =
    List.concat_map
      (fun loss_pct ->
        List.concat_map
          (fun size ->
            List.map
              (fun (selective, adaptive) ->
                measure_point ~loss_pct ~size ~selective ~adaptive ~calls)
              arms)
          sizes)
      losses
  in
  { points; bypass = measure_bypass ~invocations }

let arm_name p =
  Printf.sprintf "%s/%s"
    (if p.selective then "selective" else "full-burst")
    (if p.adaptive then "adaptive" else "fixed")

let report r =
  let point_rows =
    List.map
      (fun p ->
        {
          Report.label =
            Printf.sprintf "loss %2d%%, %5d B, %s" p.loss_pct p.size
              (arm_name p);
          paper = "-";
          measured =
            Printf.sprintf "%d B resent, %s" p.retrans_bytes
              (Report.ms p.elapsed_ms);
          note =
            Printf.sprintf "%d/%d ok, %d retrans, %d nacks" p.oks p.calls
              p.retrans p.nacks;
        })
      r.points
  in
  let b = r.bypass in
  let bypass_rows =
    [
      {
        Report.label = "same-node invocation (bypass)";
        paper = "-";
        measured = Report.ms b.local_ms;
        note =
          Printf.sprintf "%d invocations, %d took the bypass" b.invocations
            b.local_invokes;
      };
      {
        Report.label = "cross-node invocation (RaTP)";
        paper = "-";
        measured = Report.ms b.remote_ms;
        note =
          Printf.sprintf "%.1fx the bypass"
            (if b.local_ms > 0.0 then b.remote_ms /. b.local_ms else 0.0);
      };
    ]
  in
  Report.table
    ~title:
      "Transport: selective retransmission, adaptive RTO, same-node bypass"
    (point_rows @ bypass_rows)
