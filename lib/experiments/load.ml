(* Open-loop load harness for the sharded name service.

   Each cell boots a cluster of [data] + [compute] servers, pre-binds
   [nkeys] names, then replays invocation traffic from [clients]
   simulated client sessions: arrivals are a Poisson process at
   [rate] per simulated second (open loop — arrivals do not wait for
   earlier requests, so queues actually build when a stage
   saturates), each request is a name-server lookup or, with
   probability [write_pct]%, a (re)bind.  Latency is measured from
   the arrival instant to completion, so it includes every queueing
   effect: CPU scheduling on the chosen compute node, DSM fetches and
   invalidation storms on the name-server heap, and the per-shard
   write serialization.

   The same cell runs with sharding on (bindings spread over all data
   servers by the placement ring, binds fanning out over per-shard
   leaders) or off (the historical single name-server object — every
   DSM fetch hits one data server and every bind funnels through one
   leader), which is the A/B the acceptance test compares.

   Everything inside the simulation is driven by the run's seed;
   wall-clock seconds are measured around [Sim.exec] purely as an
   engine-performance metric and never enter the simulated results. *)

module Cl = Clouds.Cluster

type cell = {
  label : string;
  data : int;
  compute : int;
  clients : int;
  rate : float;  (** aggregate arrivals per simulated second *)
  invocations : int;
  write_pct : int;  (** percent of arrivals that are binds *)
  nkeys : int;
  sharded : bool;
}

type point = {
  cell : cell;
  completed : int;
  misses : int;  (** lookups that found no binding (should be 0) *)
  retries : int;  (** client backoff-and-retry rounds after Unavailable *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  mean_ms : float;
  max_ms : float;
  throughput : float;  (** completions per simulated second *)
  sim_ms : float;  (** simulated makespan of the measured window *)
  wall_s : float;  (** real seconds for the whole cell, engine metric *)
}

let cell ~label ~data ~compute ~clients ~rate ~invocations ~write_pct ~nkeys
    ~sharded =
  { label; data; compute; clients; rate; invocations; write_pct; nkeys; sharded }

(* CI-sized grid: small enough to run on every push, both arms so the
   A/B path cannot rot. *)
let smoke_cells =
  [
    cell ~label:"smoke-shard" ~data:3 ~compute:4 ~clients:64 ~rate:220.0
      ~invocations:1500 ~write_pct:10 ~nkeys:64 ~sharded:true;
    cell ~label:"smoke-central" ~data:3 ~compute:4 ~clients:64 ~rate:220.0
      ~invocations:1500 ~write_pct:10 ~nkeys:64 ~sharded:false;
  ]

(* The A/B pair the acceptance test compares: enough load that the
   centralized object's bind leader and DSM invalidation traffic
   visibly queue, while the sharded arm stays comfortable. *)
let ab_cells =
  [
    cell ~label:"mid-shard" ~data:8 ~compute:16 ~clients:512 ~rate:800.0
      ~invocations:12_000 ~write_pct:10 ~nkeys:256 ~sharded:true;
    cell ~label:"mid-central" ~data:8 ~compute:16 ~clients:512 ~rate:800.0
      ~invocations:12_000 ~write_pct:10 ~nkeys:256 ~sharded:false;
  ]

(* The big cell: >= 50 nodes, >= 100k invocations.  This is the one
   the wall-clock budget in the test suite is pinned against. *)
let big_cell =
  cell ~label:"big-shard" ~data:16 ~compute:40 ~clients:2000 ~rate:1500.0
    ~invocations:100_000 ~write_pct:5 ~nkeys:1024 ~sharded:true

(* The roadmap target: hundreds of nodes, a million invocations.
   Latency lives in a streaming histogram, so the sample store stays
   O(1) no matter how many arrivals complete; run it via
   [experiments_main -- load-xl] (too big for tier-1 CI). *)
let xl_cell =
  cell ~label:"xl-shard" ~data:40 ~compute:160 ~clients:8000 ~rate:4000.0
    ~invocations:1_000_000 ~write_pct:5 ~nkeys:4096 ~sharded:true

let full_cells = smoke_cells @ ab_cells @ [ big_cell ]

(* A modern fabric rather than the paper's 10 Mbit/s bus: the
   simulated network is still a single shared medium, and at 50+
   nodes the coherence refetch traffic behind each bind would
   saturate a slow bus and drown the effect under test (same
   convention as the page-batching experiment, one notch faster). *)
let ether_config =
  {
    Net.Ethernet.default_config with
    bandwidth_bps = 1_000_000_000;
    send_cost_per_frame = Sim.Time.us 20;
    recv_cost_per_frame = Sim.Time.us 20;
    cost_per_byte_ns = 1;
  }

let key_name k = Printf.sprintf "obj-%04d" k

let run_cell ?(seed = 42) ?(atomicity = false) ?observer (c : cell) =
  let wall0 = Unix.gettimeofday () in
  let result =
    Sim.exec ~seed (fun () ->
        let eng = Sim.engine () in
        let sys =
          Clouds.boot eng ~ether_config ~compute:c.compute ~data:c.data
            ~workstations:0 ()
        in
        let cl = sys.Clouds.cluster in
        Cl.set_name_sharding cl c.sharded;
        let om = sys.Clouds.om in
        (* [atomicity] runs the cell with the transaction layer
           installed, so binds pay a real lock/commit stage — the
           configuration the traced stage breakdown decomposes.  The
           bench cells leave it off, as they always have. *)
        let atm = if atomicity then Some (Atomicity.Manager.install om ()) else None in
        (* the bound sysnames are well-known names: the harness
           measures the name service, not the objects behind it *)
        for k = 0 to c.nkeys - 1 do
          Clouds.Name_server.bind om ~name:(key_name k)
            (Ra.Sysname.well_known (k + 1))
        done;
        (* streaming histogram: O(1) memory, so the 1M-invocation
           cell carries the same footprint as the smoke cells *)
        let lat = Sim.Stats.hist "load.latency_ms" in
        let misses = ref 0 in
        let retries = ref 0 in
        let completed = ref 0 in
        (* a saturated stage (the centralized arm on purpose) can push
           a data server past the RaTP retry ladder; the open-loop
           client just backs off and retries, and the stall lands in
           the latency sample like any other queueing delay.  Under
           [atomicity], deadlock-watchdog aborts surface the same
           way. *)
        let rec with_retry tries f =
          match f () with
          | v -> v
          | exception Dsm.Dsm_client.Unavailable _ when tries < 400 ->
              incr retries;
              Sim.sleep (Sim.Time.ms 5);
              with_retry (tries + 1) f
          | exception Atomicity.Manager.Aborted _ when tries < 400 ->
              incr retries;
              Sim.sleep (Sim.Time.ms 5);
              with_retry (tries + 1) f
        in
        let done_ivar = Sim.Ivar.create () in
        let t_start = Sim.now () in
        let rng = Sim.Rng.create ~seed:(seed lxor 0x10ad) in
        let ncomp = Array.length cl.Cl.compute_nodes in
        let request i () =
         Obs.Tracer.with_span "request" @@ fun () ->
          let t_arrival = Sim.now () in
          let node = cl.Cl.compute_nodes.((i mod c.clients) mod ncomp) in
          let k = Sim.Rng.int rng c.nkeys in
          (if Sim.Rng.int rng 100 < c.write_pct then
             with_retry 0 (fun () ->
                 Clouds.Name_server.bind om ~name:(key_name k)
                   (Ra.Sysname.well_known (k + 1)))
           else
             match
               with_retry 0 (fun () ->
                   Clouds.Name_server.lookup ~on:node om (key_name k))
             with
             | Some _ -> ()
             | None -> incr misses);
          Sim.Stats.hadd lat
            (Sim.Time.to_ms_f (Sim.Time.diff (Sim.now ()) t_arrival));
          incr completed;
          if !completed = c.invocations then
            Sim.Ivar.fill done_ivar
              (Sim.Time.to_ms_f (Sim.Time.diff (Sim.now ()) t_start))
        in
        (* open-loop generator: runs in engine context (event thunks),
           so arrivals cost one event each and never block behind the
           requests they trigger *)
        let mean_gap_ms = 1000.0 /. c.rate in
        let rec arm i at =
          Sim.Engine.at eng at (fun () ->
              ignore (Sim.Engine.spawn eng "load-req" (request i));
              if i + 1 < c.invocations then begin
                let u = Sim.Rng.float rng 1.0 in
                let gap = Sim.Time.of_ms_f (-.log (1.0 -. u) *. mean_gap_ms) in
                arm (i + 1) (Sim.Time.add at gap)
              end)
        in
        arm 0 t_start;
        let sim_ms = Sim.Ivar.read done_ivar in
        (* the observer runs inside the simulation, while the cluster
           is alive — e.g. to snapshot the metrics registries *)
        (match observer with Some f -> f cl om atm | None -> ());
        (sim_ms, !misses, !retries, lat))
  in
  let sim_ms, misses, retries, lat = result in
  let wall_s = Unix.gettimeofday () -. wall0 in
  {
    cell = c;
    completed = Sim.Stats.hist_n lat;
    misses;
    retries;
    p50_ms = Sim.Stats.hist_percentile lat 50.0;
    p95_ms = Sim.Stats.hist_percentile lat 95.0;
    p99_ms = Sim.Stats.hist_percentile lat 99.0;
    mean_ms = Sim.Stats.hist_mean lat;
    max_ms = Sim.Stats.hist_max lat;
    throughput = float_of_int (Sim.Stats.hist_n lat) /. (sim_ms /. 1000.0);
    sim_ms;
    wall_s;
  }

let run ?(seed = 42) ?(cells = smoke_cells) () =
  List.map (run_cell ~seed) cells

let summary p =
  Printf.sprintf
    "%s nodes=%d clients=%d rate=%.0f/s inv=%d wr=%d%% %s: p50=%.1fms \
     p95=%.1fms p99=%.1fms mean=%.1fms tput=%.0f/s sim=%.0fms wall=%.2fs \
     miss=%d retry=%d"
    p.cell.label
    (p.cell.data + p.cell.compute)
    p.cell.clients p.cell.rate p.cell.invocations p.cell.write_pct
    (if p.cell.sharded then "sharded" else "central")
    p.p50_ms p.p95_ms p.p99_ms p.mean_ms p.throughput p.sim_ms p.wall_s
    p.misses p.retries

let report points =
  Report.table
    ~title:
      "Open-loop name-service load (nodes x clients x rate; latency from \
       arrival to completion)"
    (List.map
       (fun p ->
         {
           Report.label = p.cell.label;
           paper = "-";
           measured =
             Printf.sprintf "p50 %.1f / p95 %.1f / p99 %.1f ms" p.p50_ms
               p.p95_ms p.p99_ms;
           note =
             Printf.sprintf
               "%d nodes, %d clients, %.0f/s, %d inv (%d%% wr) %s: %.0f/s \
                sustained, %.1f s simulated, %.2f s wall"
               (p.cell.data + p.cell.compute)
               p.cell.clients p.cell.rate p.cell.invocations p.cell.write_pct
               (if p.cell.sharded then "sharded" else "central")
               p.throughput (p.sim_ms /. 1000.0) p.wall_s;
         })
       points)
