(* Group-commit / WAL pipeline experiments.

   Part A is a closed-loop write-heavy grid: [clients] concurrent
   sessions each run [txns_per_client] gcp transactions, every
   transaction crediting the session's own [footprint] accounts
   (spread round-robin over the data servers, so a footprint > 1
   transaction is a real multi-participant 2PC).  The same cell runs
   with the WAL's group-commit daemon off (the historical
   force-per-record commit path: every prepare and commit record pays
   its own seek) or on with a given window (records ride batched
   sequential appends; locks release at commit-record-in-buffer and
   the ack rides the flush).  Durability is identical in both arms —
   a client is acked only once its commit record is on disk — so the
   throughput ratio is pure pipeline.

   Accounts are private to their session, so the grid measures the
   log bottleneck, not lock contention: every arm's transactions are
   conflict-free and the only shared resource is the per-server disk.

   Part B is the deterministic crash-recovery scenario the acceptance
   test replays: deposits flowing through the group-commit pipeline,
   one data server killed mid-workload after a fuzzy checkpoint, then
   restarted through ARIES recovery on the truncated log.  Every
   session owns one account on the victim and one on the survivor, so
   each acked transaction must have credited both — zero lost
   committed writes, zero ghost writes — which the outcome record
   checks exactly. *)

module Cl = Clouds.Cluster
module V = Clouds.Value

type cell = {
  label : string;
  data : int;
  compute : int;
  clients : int;
  footprint : int;  (** accounts credited per transaction *)
  txns_per_client : int;
  window : Sim.Time.span option;  (** [None] = group commit off *)
  checkpoint_every : Sim.Time.span option;
}

type point = {
  cell : cell;
  committed : int;
  retries : int;
  p50_ms : float;
  p95_ms : float;
  mean_ms : float;
  max_ms : float;
  throughput : float;  (** commits per simulated second *)
  wal_records : int;  (** log records written, all servers *)
  wal_flushes : int;  (** group flushes (0 with the daemon off) *)
  mean_batch : float;  (** records per group flush *)
  sim_ms : float;
  wall_s : float;
}

let cell ~label ?(data = 4) ?(compute = 4) ~clients ~footprint
    ~txns_per_client ?window ?checkpoint_every () =
  {
    label;
    data;
    compute;
    clients;
    footprint;
    txns_per_client;
    window;
    checkpoint_every;
  }

(* The A/B pair the acceptance test compares: the same 64-session
   write-heavy load against the force-per-record path and a 5 ms
   group-commit window, one data server so the log disk is the only
   contended stage (each session has its own compute server — at the
   default invocation costs a shared CPU saturates long before the
   disk and would mask the pipeline). *)
let smoke_cells =
  [
    cell ~label:"c64-fp1-off" ~data:1 ~compute:64 ~clients:64 ~footprint:1
      ~txns_per_client:12 ();
    cell ~label:"c64-fp1-w5" ~data:1 ~compute:64 ~clients:64 ~footprint:1
      ~txns_per_client:12 ~window:(Sim.Time.ms 5) ();
  ]

(* clients x window x footprint, CI-sized counts per cell.  One
   compute server per session keeps the CPU stage parallel;
   footprint > 1 spreads each transaction's accounts over four data
   servers, so those cells are true multi-participant 2PCs. *)
let grid_cells =
  List.concat_map
    (fun clients ->
      List.concat_map
        (fun footprint ->
          List.map
            (fun (tag, window) ->
              {
                label = Printf.sprintf "c%d-fp%d-%s" clients footprint tag;
                data = (if footprint = 1 then 1 else 4);
                compute = clients;
                clients;
                footprint;
                txns_per_client = 12;
                window;
                checkpoint_every = None;
              })
            [
              ("off", None);
              ("w1", Some (Sim.Time.ms 1));
              ("w5", Some (Sim.Time.ms 5));
            ])
        [ 1; 4; 8 ])
    [ 1; 4; 16; 64 ]

let full_cells = grid_cells

(* A gcp entry crediting every listed account in one transaction;
   each session gets its own batcher object so sessions share nothing
   but the disks. *)
let batcher_cls =
  Clouds.Obj_class.define ~name:"commit-batcher"
    [
      Clouds.Obj_class.entry ~label:Clouds.Obj_class.Gcp "update_all"
        (fun ctx arg ->
          List.iter
            (fun acct ->
              ignore
                (ctx.Clouds.Ctx.invoke ~obj:(V.to_sysname acct)
                   ~entry:"credit_in_txn" (V.Int 1)))
            (V.to_list arg);
          V.Unit);
    ]

(* Same convention as the load and page-batching experiments: a
   modern fabric instead of the paper's 10 Mbit/s bus, so the shared
   medium does not drown the per-disk commit pipeline under test
   (every prepare ships its page images over the wire). *)
let ether_config =
  {
    Net.Ethernet.default_config with
    bandwidth_bps = 1_000_000_000;
    send_cost_per_frame = Sim.Time.us 20;
    recv_cost_per_frame = Sim.Time.us 20;
    cost_per_byte_ns = 1;
  }

let run_cell ?(seed = 42) (c : cell) =
  let wall0 = Unix.gettimeofday () in
  let lat, retries, sim_ms, wal_records, wal_flushes, mean_batch =
    Sim.exec ~seed (fun () ->
        let eng = Sim.engine () in
        let sys =
          Clouds.boot eng ~ether_config ?group_commit_window:c.window
            ?checkpoint_every:c.checkpoint_every ~compute:c.compute
            ~data:c.data ~workstations:0 ()
        in
        let cl = sys.Clouds.cluster in
        let om = sys.Clouds.om in
        let (_ : Atomicity.Manager.t) = Atomicity.Manager.install om () in
        Apps.Bank.register om;
        Cl.register_class cl batcher_cls;
        let ncomp = Array.length cl.Cl.compute_nodes in
        let sessions =
          Array.init c.clients (fun i ->
              let accounts =
                List.init c.footprint (fun j ->
                    Apps.Bank.open_account om
                      ~home:(1 + (((i * c.footprint) + j) mod c.data))
                      ~balance:0 ())
              in
              let batcher =
                Clouds.Object_manager.create_object om
                  ~class_name:"commit-batcher" V.Unit
              in
              let arg = V.List (List.map V.of_sysname accounts) in
              (cl.Cl.compute_nodes.(i mod ncomp), batcher, arg))
        in
        let lat = Sim.Stats.hist "commit.latency_ms" in
        let retries = ref 0 in
        let warmed = ref 0 in
        let finished = ref 0 in
        let go_ivar = Sim.Ivar.create () in
        let done_ivar = Sim.Ivar.create () in
        let rec with_retry tries f =
          match f () with
          | v -> v
          | exception Dsm.Dsm_client.Unavailable _ when tries < 400 ->
              incr retries;
              Sim.sleep (Sim.Time.ms 5);
              with_retry (tries + 1) f
          | exception Atomicity.Manager.Aborted _ when tries < 400 ->
              incr retries;
              Sim.sleep (Sim.Time.ms 5);
              with_retry (tries + 1) f
        in
        Array.iteri
          (fun i (node, batcher, arg) ->
            ignore
              (Sim.Engine.spawn eng
                 (Printf.sprintf "commit-client-%d" i)
                 (fun () ->
                   let txn () =
                     with_retry 0 (fun () ->
                         ignore
                           (Clouds.Object_manager.invoke om ~node ~thread_id:0
                              ~origin:None ~txn:None ~obj:batcher
                              ~entry:"update_all" arg))
                   in
                   (* unmeasured warm transaction: first touches pay
                      cold-segment disk reads, activation setup and
                      code-page faults that belong to boot, not to the
                      commit pipeline under test; stagger the starts
                      so the warm faults do not convoy either *)
                   Sim.sleep (Sim.Time.us (i * 3100));
                   txn ();
                   incr warmed;
                   if !warmed = c.clients then
                     Sim.Ivar.fill go_ivar (Sim.now ());
                   let t_start = Sim.Ivar.read go_ivar in
                   for _ = 1 to c.txns_per_client do
                     let t0 = Sim.now () in
                     txn ();
                     Sim.Stats.hadd_span lat (Sim.Time.diff (Sim.now ()) t0)
                   done;
                   incr finished;
                   if !finished = c.clients then
                     Sim.Ivar.fill done_ivar
                       (Sim.Time.to_ms_f
                          (Sim.Time.diff (Sim.now ()) t_start)))))
          sessions;
        let sim_ms = Sim.Ivar.read done_ivar in
        let sum f =
          Array.fold_left (fun acc s -> acc + f (Dsm.Dsm_server.wal s)) 0
            cl.Cl.servers
        in
        let records =
          sum (fun w -> Sim.Stats.value (Store.Wal.records_counter w))
        in
        let flushes = sum Store.Wal.flushes in
        let batched =
          Array.fold_left
            (fun acc s ->
              acc
              +. Sim.Stats.hist_total
                   (Store.Wal.batch_hist (Dsm.Dsm_server.wal s)))
            0.0 cl.Cl.servers
        in
        let mean_batch =
          if flushes = 0 then 0.0 else batched /. float_of_int flushes
        in
        (lat, !retries, sim_ms, records, flushes, mean_batch))
  in
  let wall_s = Unix.gettimeofday () -. wall0 in
  {
    cell = c;
    committed = Sim.Stats.hist_n lat;
    retries;
    p50_ms = Sim.Stats.hist_percentile lat 50.0;
    p95_ms = Sim.Stats.hist_percentile lat 95.0;
    mean_ms = Sim.Stats.hist_mean lat;
    max_ms = Sim.Stats.hist_max lat;
    throughput = float_of_int (Sim.Stats.hist_n lat) /. (sim_ms /. 1000.0);
    wal_records;
    wal_flushes;
    mean_batch;
    sim_ms;
    wall_s;
  }

let run ?(seed = 42) ?(cells = smoke_cells) () =
  List.map (run_cell ~seed) cells

(* ------------------------------------------------------------------ *)
(* Part B: kill a data server mid-commit-pipeline, recover through the
   truncated log. *)

type crash_outcome = {
  seed : int;
  sessions : int;
  deposits_per_session : int;
  acked : int;  (** transactions acknowledged committed *)
  crash_retries : int;
  lost : int;  (** acked credits missing from recovered balances *)
  ghosts : int;  (** balance credits never acknowledged *)
  checkpoints : int;  (** fuzzy checkpoints cut on the victim *)
  log_truncated : int;  (** records dropped at checkpoint low-water marks *)
  recovered_records : int;  (** victim's log length at verification *)
  violations : string list;
  trace : string;  (** canonical per-session trace, determinism check *)
}

let crash_summary o =
  Printf.sprintf
    "crash-recovery seed=%d sessions=%d acked=%d lost=%d ghost=%d ckpt=%d \
     trunc=%d viol=[%s] trace=%s"
    o.seed o.sessions o.acked o.lost o.ghosts o.checkpoints o.log_truncated
    (String.concat "," o.violations)
    o.trace

let fast_ratp =
  {
    Ratp.Endpoint.default_config with
    retry_initial = Sim.Time.ms 20;
    max_attempts = 4;
  }

let run_crash ?(seed = 42) () =
  let sessions = 4 and deposits = 40 in
  Sim.exec ~seed (fun () ->
      let eng = Sim.engine () in
      let sys =
        Clouds.boot eng ~ratp_config:fast_ratp
          ~group_commit_window:(Sim.Time.ms 2)
          ~checkpoint_every:(Sim.Time.ms 25) ~compute:3 ~data:2 ~workstations:0
          ()
      in
      let cl = sys.Clouds.cluster in
      let om = sys.Clouds.om in
      let (_ : Atomicity.Manager.t) =
        Atomicity.Manager.install om ~deadlock_timeout:(Sim.Time.ms 300)
          ~max_retries:8 ()
      in
      Apps.Bank.register om;
      Cl.register_class cl batcher_cls;
      let ncomp = Array.length cl.Cl.compute_nodes in
      (* each session owns one account on the victim (server 1) and
         one on the survivor (server 2): every transaction is a
         two-participant 2PC, and no account has two writers, so the
         recovered balances must equal the ack counts exactly *)
      let plans =
        Array.init sessions (fun i ->
            let a = Apps.Bank.open_account om ~home:1 ~balance:0 () in
            let b = Apps.Bank.open_account om ~home:2 ~balance:0 () in
            let batcher =
              Clouds.Object_manager.create_object om
                ~class_name:"commit-batcher" V.Unit
            in
            ( cl.Cl.compute_nodes.(i mod ncomp),
              batcher,
              V.List [ V.of_sysname a; V.of_sysname b ],
              a,
              b ))
      in
      let acked = Array.make sessions 0 in
      let retries = ref 0 in
      let finished = ref 0 in
      let done_ivar = Sim.Ivar.create () in
      let rec with_retry tries f =
        match f () with
        | v -> v
        | exception Dsm.Dsm_client.Unavailable _ when tries < 400 ->
            incr retries;
            Sim.sleep (Sim.Time.ms 5);
            with_retry (tries + 1) f
        | exception Atomicity.Manager.Aborted _ when tries < 400 ->
            incr retries;
            Sim.sleep (Sim.Time.ms 5);
            with_retry (tries + 1) f
      in
      Array.iteri
        (fun i (node, batcher, arg, _, _) ->
          ignore
            (Sim.Engine.spawn eng
               (Printf.sprintf "crash-client-%d" i)
               (fun () ->
                 for _ = 1 to deposits do
                   with_retry 0 (fun () ->
                       ignore
                         (Clouds.Object_manager.invoke om ~node ~thread_id:0
                            ~origin:None ~txn:None ~obj:batcher
                            ~entry:"update_all" arg));
                   acked.(i) <- acked.(i) + 1
                 done;
                 incr finished;
                 if !finished = sessions then Sim.Ivar.fill done_ivar ())))
        plans;
      (* the kill lands mid-workload, after the 25 ms checkpoint
         cadence has cut at least one fuzzy checkpoint; the restart
         runs Dsm_server.recover on the truncated log *)
      Pet.Failure.crash_at cl 1 (Sim.Time.ms 150);
      Pet.Failure.restart_at cl 1 (Sim.Time.ms 450);
      Sim.Ivar.read done_ivar;
      (* drain any commit still riding the last group flush *)
      Sim.sleep (Sim.Time.ms 50);
      let victim_wal = Dsm.Dsm_server.wal cl.Cl.servers.(0) in
      let checkpoints = Store.Wal.checkpoints victim_wal in
      let log_truncated = Store.Wal.truncated victim_wal in
      let recovered_records = List.length (Store.Wal.records victim_wal) in
      let lost = ref 0 and ghosts = ref 0 in
      let buf = Buffer.create 64 in
      Array.iteri
        (fun i (_, _, _, a, b) ->
          let bal_a = Apps.Bank.balance om a in
          let bal_b = Apps.Bank.balance om b in
          List.iter
            (fun bal ->
              if bal < acked.(i) then lost := !lost + (acked.(i) - bal);
              if bal > acked.(i) then ghosts := !ghosts + (bal - acked.(i)))
            [ bal_a; bal_b ];
          Buffer.add_string buf
            (Printf.sprintf "%s%d:%d/%d"
               (if i = 0 then "" else ",")
               acked.(i) bal_a bal_b))
        plans;
      let violations = ref [] in
      let violate fmt =
        Printf.ksprintf (fun s -> violations := s :: !violations) fmt
      in
      if !lost > 0 then
        violate "%d acknowledged credits lost across the crash" !lost;
      if !ghosts > 0 then
        violate "%d credits present that were never acknowledged" !ghosts;
      if Array.exists (fun a -> a < deposits) acked then
        violate "a session gave up before finishing its deposits";
      if checkpoints < 1 then
        violate "no fuzzy checkpoint was cut before the crash";
      if log_truncated < 1 then
        violate "checkpoints cut but the log was never truncated";
      {
        seed;
        sessions;
        deposits_per_session = deposits;
        acked = Array.fold_left ( + ) 0 acked;
        crash_retries = !retries;
        lost = !lost;
        ghosts = !ghosts;
        checkpoints;
        log_truncated;
        recovered_records;
        violations = List.rev !violations;
        trace = Buffer.contents buf;
      })

(* ------------------------------------------------------------------ *)

let summary p =
  Printf.sprintf
    "%s clients=%d fp=%d %s: %d commits p50=%.2fms p95=%.2fms mean=%.2fms \
     tput=%.0f/s recs=%d flushes=%d batch=%.1f sim=%.0fms wall=%.2fs retry=%d"
    p.cell.label p.cell.clients p.cell.footprint
    (match p.cell.window with
    | None -> "force-each"
    | Some w -> Printf.sprintf "window=%.1fms" (Sim.Time.to_ms_f w))
    p.committed p.p50_ms p.p95_ms p.mean_ms p.throughput p.wal_records
    p.wal_flushes p.mean_batch p.sim_ms p.wall_s p.retries

let report points =
  Report.table
    ~title:
      "Commit pipeline: group-commit WAL vs force-per-record (closed loop, \
       conflict-free gcp transactions)"
    (List.map
       (fun p ->
         {
           Report.label = p.cell.label;
           paper = "-";
           measured =
             Printf.sprintf "%.0f txn/s (p50 %.2f ms)" p.throughput p.p50_ms;
           note =
             Printf.sprintf
               "%d clients x %d accts, %s: %d commits, %d log recs, %d \
                flushes (%.1f recs/flush)"
               p.cell.clients p.cell.footprint
               (match p.cell.window with
               | None -> "force each record"
               | Some w ->
                   Printf.sprintf "%.0f ms window" (Sim.Time.to_ms_f w))
               p.committed p.wal_records p.wal_flushes p.mean_batch;
         })
       points)

let crash_report o =
  Report.table
    ~title:"Commit pipeline crash recovery (kill mid-commit, ARIES replay)"
    [
      {
        Report.label = "kill-mid-commit";
        paper = "-";
        measured = (if o.violations = [] then "invariants ok" else "VIOLATED");
        note =
          Printf.sprintf
            "%d acked over %d sessions: %d lost, %d ghost | %d ckpt, %d recs \
             truncated, %d live"
            o.acked o.sessions o.lost o.ghosts o.checkpoints o.log_truncated
            o.recovered_records;
      };
    ]
