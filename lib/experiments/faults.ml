(* Named, reproducible fault-injection scenarios over the
   RaTP / DSM / atomicity / PET stack.

   Each scenario boots a fresh simulated system, installs a fault
   plan (loss profiles, scripted filters, timed partitions, scheduled
   node crashes), drives a workload through it, and then checks the
   recovery invariants:

   - no committed data is lost: every call acknowledged [Ok] has its
     effect present in the server's durable state;
   - at-most-once: no handler effect is committed twice for one
     transaction id, even across retransmission, duplication,
     partition and crash/restart;
   - totality: every client call either completes or returns
     [Error Timeout] — nothing deadlocks or raises;
   - accounting: retransmission counters line up with the injected
     loss (loss implies retransmissions; a loss-free run implies
     none).

   Everything is driven by the simulation RNG, so a (scenario, seed)
   pair always produces the identical outcome — which the test suite
   asserts. *)

module E = Ratp.Endpoint
module F = Net.Fault
module V = Clouds.Value

type Ratp.Packet.body += Put of { call : int; value : int } | Stored of int

type outcome = {
  scenario : string;
  seed : int;
  calls : int;
  oks : int;
  timeouts : int;
  aborts : int;  (** transaction aborts surfaced to the caller *)
  commits : int;  (** handler/transaction effects committed *)
  duplicate_commits : int;  (** calls whose effect committed twice *)
  lost_commits : int;  (** acknowledged calls missing from the store *)
  retransmissions : int;
  drops : int;
  duplicates : int;
  violations : string list;  (** empty iff all invariants hold *)
  trace : string;  (** canonical per-call trace, for determinism checks *)
}

let summary o =
  Printf.sprintf
    "%s seed=%d calls=%d ok=%d to=%d ab=%d commit=%d dup=%d lost=%d \
     retrans=%d drops=%d dups=%d viol=[%s] trace=%s"
    o.scenario o.seed o.calls o.oks o.timeouts o.aborts o.commits
    o.duplicate_commits o.lost_commits o.retransmissions o.drops o.duplicates
    (String.concat "," o.violations)
    o.trace

(* ------------------------------------------------------------------ *)
(* RaTP client/server scenarios: a pair of machines, a store service,
   sequential calls.  The "durable store" (what survives a crash)
   lives outside the node, like the store library's stable storage. *)

type ratp_spec = {
  n_calls : int;
  size : int;  (** request bytes; > frag_payload exercises reassembly *)
  handler_work : Sim.Time.span;
  setup : Net.Ethernet.t -> unit;  (** install the fault plan *)
  crash : (Sim.Time.span * Sim.Time.span) option;
      (** crash the server at, restart it at (absolute sim times) *)
  expect_retrans : bool option;
      (** [Some true]: loss was injected on the request/reply path, so
          retransmissions must be observed; [Some false]: none may *)
  expect_all_ok : bool;
}

let store_service = 11

let run_ratp name ~seed spec =
  Sim.exec ~seed (fun () ->
      let eng = Sim.engine () in
      let ether = Net.Ethernet.create eng () in
      let server = Ra.Node.create ether ~id:1 ~kind:Ra.Node.Data () in
      let client = Ra.Node.create ether ~id:2 ~kind:Ra.Node.Compute () in
      let committed = Array.make spec.n_calls None in
      let commit_count = Array.make spec.n_calls 0 in
      let serve () =
        E.serve server.Ra.Node.endpoint ~service:store_service
          (fun ~src:_ body ->
            match body with
            | Put { call; value } ->
                (* work first, then commit: a crash mid-handler loses
                   uncommitted work, which the retry re-executes *)
                if spec.handler_work > 0 then Sim.sleep spec.handler_work;
                commit_count.(call) <- commit_count.(call) + 1;
                committed.(call) <- Some value;
                (Stored value, 16)
            | _ -> (Stored (-1), 16))
      in
      serve ();
      spec.setup ether;
      (match spec.crash with
      | None -> ()
      | Some (down_at, up_at) ->
          Sim.Engine.at eng down_at (fun () -> Ra.Node.crash server);
          Sim.Engine.at eng up_at (fun () ->
              Ra.Node.restart server;
              serve ()));
      let acked = Array.make spec.n_calls false in
      let buf = Buffer.create (4 * spec.n_calls) in
      let oks = ref 0 and timeouts = ref 0 in
      for call = 0 to spec.n_calls - 1 do
        match
          E.call client.Ra.Node.endpoint ~dst:1 ~service:store_service
            ~size:spec.size
            (Put { call; value = 1000 + call })
        with
        | Ok _ ->
            incr oks;
            acked.(call) <- true;
            Buffer.add_string buf "o"
        | Error E.Timeout ->
            incr timeouts;
            Buffer.add_string buf "t"
      done;
      let fault = Net.Ethernet.fault ether in
      let retrans = E.retransmissions client.Ra.Node.endpoint in
      let lost = ref 0 and dup = ref 0 and commits = ref 0 in
      for call = 0 to spec.n_calls - 1 do
        if commit_count.(call) > 0 then incr commits;
        if commit_count.(call) > 1 then incr dup;
        if acked.(call) && committed.(call) <> Some (1000 + call) then
          incr lost
      done;
      let violations = ref [] in
      let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
      if !lost > 0 then violate "%d acknowledged calls lost from the store" !lost;
      if !dup > 0 then violate "%d calls committed more than once" !dup;
      if !oks + !timeouts <> spec.n_calls then violate "calls went missing";
      if spec.expect_all_ok && !timeouts > 0 then
        violate "%d calls timed out under a recoverable fault plan" !timeouts;
      (match spec.expect_retrans with
      | Some true when retrans = 0 ->
          violate "loss was injected but no retransmissions happened"
      | Some false when retrans > 0 ->
          violate "%d retransmissions despite a loss-free request/reply path"
            retrans
      | _ -> ());
      {
        scenario = name;
        seed;
        calls = spec.n_calls;
        oks = !oks;
        timeouts = !timeouts;
        aborts = 0;
        commits = !commits;
        duplicate_commits = !dup;
        lost_commits = !lost;
        retransmissions = retrans;
        drops = F.drops fault;
        duplicates = F.duplicates fault;
        violations = List.rev !violations;
        trace = Buffer.contents buf;
      })

(* ------------------------------------------------------------------ *)
(* Fault plans for the RaTP scenarios *)

let lossy p = { F.pristine with F.drop = p }

let fragment_loss =
  {
    n_calls = 12;
    size = 4000 (* 3 fragments *);
    handler_work = 0;
    setup =
      (fun ether ->
        (* client -> server: request fragments get dropped; the reply
           path stays clean so only reassembly is under stress *)
        F.set_link (Net.Ethernet.fault ether) 2 1 (lossy 0.2));
    crash = None;
    expect_retrans = Some true;
    expect_all_ok = true;
  }

let reply_loss =
  {
    n_calls = 12;
    size = 64;
    handler_work = 0;
    setup = (fun ether -> F.set_link (Net.Ethernet.fault ether) 1 2 (lossy 0.25));
    crash = None;
    expect_retrans = Some true;
    expect_all_ok = true;
  }

let ack_loss =
  {
    n_calls = 10;
    size = 64;
    handler_work = 0;
    setup =
      (fun ether ->
        (* drop every RaTP ack: the server must fall back on its
           cache TTL, and no handler may re-execute *)
        F.set_filter (Net.Ethernet.fault ether) (fun ~src:_ ~dst:_ frame ->
            match frame.Net.Frame.payload with
            | Ratp.Packet.Ratp { Ratp.Packet.kind = Ratp.Packet.Ack; _ } ->
                false
            | _ -> true));
    crash = None;
    expect_retrans = Some false;
    expect_all_ok = true;
  }

let burst_loss =
  {
    n_calls = 15;
    size = 3000;
    handler_work = 0;
    setup =
      (fun ether ->
        F.set_link_both (Net.Ethernet.fault ether) 1 2
          { F.pristine with F.burst = 0.04; burst_len = 4 });
    crash = None;
    expect_retrans = Some true;
    expect_all_ok = true;
  }

let jitter_dup_reorder =
  {
    n_calls = 15;
    size = 4000;
    handler_work = 0;
    setup =
      (fun ether ->
        F.set_link_both (Net.Ethernet.fault ether) 1 2
          {
            F.pristine with
            F.dup = 0.25;
            delay = Sim.Time.ms 2;
            reorder = 0.25;
            reorder_by = Sim.Time.ms 2;
          });
    crash = None;
    (* nothing is lost and jitter stays under the retry interval, so
       duplicate suppression must cope without any retransmission *)
    expect_retrans = Some false;
    expect_all_ok = true;
  }

let mid_call_partition =
  {
    n_calls = 8;
    size = 2000;
    handler_work = Sim.Time.ms 5;
    setup =
      (fun ether ->
        (* the wire vanishes in both directions while calls are in
           flight, then heals well inside the retry budget *)
        F.partition_between (Net.Ethernet.fault ether) [ 1 ] [ 2 ]
          ~after:(Sim.Time.ms 30) ~for_:(Sim.Time.ms 300));
    crash = None;
    expect_retrans = Some true;
    expect_all_ok = true;
  }

let server_crash_restart =
  {
    n_calls = 8;
    size = 2000;
    handler_work = Sim.Time.ms 30;
    setup = (fun _ether -> ());
    (* the crash lands mid-handler (calls take ~36 ms each), before
       the in-flight call commits; the restart wipes the transaction
       cache and the retry must re-execute exactly once *)
    crash = Some (Sim.Time.ms 120, Sim.Time.ms 400);
    expect_retrans = Some true;
    expect_all_ok = true;
  }

(* ------------------------------------------------------------------ *)
(* Mid-commit partition over the full bank / atomicity / DSM stack:
   distributed transfers between accounts on two data servers, with
   the compute servers partitioned from one data server mid-run.
   Two-phase commit with presumed abort must keep money conserved. *)

let fast_ratp =
  { E.default_config with retry_initial = Sim.Time.ms 20; max_attempts = 4 }

let run_bank_partition name ~seed =
  Sim.exec ~seed (fun () ->
      let eng = Sim.engine () in
      let sys =
        Clouds.boot eng ~ratp_config:fast_ratp ~compute:2 ~data:2
          ~workstations:0 ()
      in
      (* installing the manager hooks the cluster's entry wrapper, so
         the bank's gcp transfers run as 2PC transactions *)
      let (_ : Atomicity.Manager.t) =
        Atomicity.Manager.install sys.Clouds.om
          ~deadlock_timeout:(Sim.Time.ms 300) ~max_retries:8 ()
      in
      Apps.Bank.register sys.Clouds.om;
      let a = Apps.Bank.open_account sys.Clouds.om ~home:1 ~balance:1000 () in
      let b = Apps.Bank.open_account sys.Clouds.om ~home:2 ~balance:1000 () in
      let office = Apps.Bank.create_office sys.Clouds.om in
      let ether = sys.Clouds.cluster.Clouds.Cluster.ether in
      let fault = Net.Ethernet.fault ether in
      (* compute servers are ids 3-4, data servers 1-2: cut both
         compute servers off data server 2 while transfers run *)
      F.partition_between fault [ 3; 4 ] [ 2 ] ~after:(Sim.Time.ms 40)
        ~for_:(Sim.Time.ms 400);
      let n_calls = 6 in
      let amount = 10 in
      let buf = Buffer.create 16 in
      let oks = ref 0 and aborts = ref 0 in
      for _ = 1 to n_calls do
        match
          Apps.Bank.transfer sys.Clouds.om ~office ~from_acct:a ~to_acct:b
            amount
        with
        | () ->
            incr oks;
            Buffer.add_string buf "o"
        | exception Atomicity.Manager.Aborted _ ->
            incr aborts;
            Buffer.add_string buf "a"
        | exception Dsm.Dsm_client.Unavailable _ ->
            (* the partition outlived the transport's retry budget;
               the transaction rolled back before the exception
               surfaced, which the conservation check verifies *)
            incr aborts;
            Buffer.add_string buf "u"
      done;
      (* let the partition heal and in-flight recovery settle *)
      Sim.sleep (Sim.Time.ms 600);
      let bal_a = Apps.Bank.balance sys.Clouds.om a in
      let bal_b = Apps.Bank.balance sys.Clouds.om b in
      let committed = (bal_b - 1000) / amount in
      let violations = ref [] in
      let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
      if bal_a + bal_b <> 2000 then
        violate "money not conserved: %d + %d (partial commit)" bal_a bal_b;
      if (bal_b - 1000) mod amount <> 0 then
        violate "balance moved by a non-multiple of the transfer amount";
      if committed < !oks then
        violate "%d transfers acknowledged but only %d committed" !oks
          committed;
      if committed > n_calls then violate "more commits than transfers";
      if !oks + !aborts <> n_calls then violate "calls went missing";
      {
        scenario = name;
        seed;
        calls = n_calls;
        oks = !oks;
        timeouts = 0;
        aborts = !aborts;
        commits = committed;
        duplicate_commits = max 0 (committed - !oks - !aborts);
        lost_commits = 0;
        retransmissions = 0;
        drops = F.drops fault;
        duplicates = F.duplicates fault;
        violations = List.rev !violations;
        trace = Printf.sprintf "%s|a=%d,b=%d" (Buffer.contents buf) bal_a bal_b;
      })

(* ------------------------------------------------------------------ *)
(* PET under a compute-server crash: three parallel consistency-
   preserving threads, one machine dies mid-computation, the quorum
   commit must still land on enough replicas. *)

let ledger_cls =
  Clouds.Obj_class.define ~name:"fault-ledger"
    [
      Clouds.Obj_class.entry ~label:Clouds.Obj_class.Gcp "work" (fun ctx arg ->
          let v = Clouds.Memory.get_int ctx.Clouds.Ctx.mem 0 in
          ctx.Clouds.Ctx.compute (Sim.Time.ms 250);
          Clouds.Memory.set_int ctx.Clouds.Ctx.mem 0 (v + V.to_int arg);
          V.Int (v + V.to_int arg));
    ]

let run_pet_crash name ~seed =
  Sim.exec ~seed (fun () ->
      let eng = Sim.engine () in
      let sys =
        Clouds.boot eng ~ratp_config:fast_ratp ~compute:3 ~data:3
          ~workstations:0 ()
      in
      let mgr =
        Atomicity.Manager.install sys.Clouds.om
          ~deadlock_timeout:(Sim.Time.ms 400) ~max_retries:4 ()
      in
      Clouds.Cluster.register_class sys.Clouds.cluster ledger_cls;
      let group =
        Pet.Replica.create sys.Clouds.om ~class_name:"fault-ledger" ~degree:3
          V.Unit
      in
      let parallel = 3 and quorum = 2 in
      (* one compute server dies while every thread is mid-compute *)
      let victim = sys.Clouds.cluster.Clouds.Cluster.compute_nodes.(0) in
      Pet.Failure.crash_at sys.Clouds.cluster victim.Ra.Node.id
        (Sim.Time.ms 100);
      let o = Pet.Runner.run mgr ~group ~entry:"work" ~parallel ~quorum (V.Int 1) in
      let violations = ref [] in
      let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
      if not o.Pet.Runner.quorum_ok then
        violate "quorum commit failed despite %d surviving threads"
          (parallel - 1);
      (match (o.Pet.Runner.quorum_ok, o.Pet.Runner.value) with
      | true, None -> violate "quorum ok but no value propagated"
      | _ -> ());
      if o.Pet.Runner.quorum_ok && o.Pet.Runner.replicas_updated < quorum then
        violate "quorum reported ok with only %d replicas updated"
          o.Pet.Runner.replicas_updated;
      if o.Pet.Runner.completed + o.Pet.Runner.killed > parallel then
        violate "more thread outcomes than threads";
      {
        scenario = name;
        seed;
        calls = parallel;
        oks = o.Pet.Runner.completed;
        timeouts = 0;
        aborts = o.Pet.Runner.killed;
        commits = o.Pet.Runner.replicas_updated;
        duplicate_commits = 0;
        lost_commits = 0;
        retransmissions = 0;
        drops = F.drops (Net.Ethernet.fault sys.Clouds.cluster.Clouds.Cluster.ether);
        duplicates = 0;
        violations = List.rev !violations;
        trace =
          Printf.sprintf "completed=%d killed=%d quorum=%b updated=%d"
            o.Pet.Runner.completed o.Pet.Runner.killed o.Pet.Runner.quorum_ok
            o.Pet.Runner.replicas_updated;
      })

(* ------------------------------------------------------------------ *)

let table =
  [
    ("fragment-loss", `Ratp fragment_loss);
    ("reply-loss", `Ratp reply_loss);
    ("ack-loss", `Ratp ack_loss);
    ("burst-loss", `Ratp burst_loss);
    ("jitter-dup-reorder", `Ratp jitter_dup_reorder);
    ("mid-call-partition", `Ratp mid_call_partition);
    ("server-crash-restart", `Ratp server_crash_restart);
    ("mid-commit-partition", `Bank);
    ("pet-crash-quorum", `Pet);
  ]

let scenarios = List.map fst table

let run ?(seed = 42) name =
  match List.assoc_opt name table with
  | None -> invalid_arg (Printf.sprintf "Faults.run: unknown scenario %S" name)
  | Some (`Ratp spec) -> run_ratp name ~seed spec
  | Some `Bank -> run_bank_partition name ~seed
  | Some `Pet -> run_pet_crash name ~seed

let run_all ?seed () = List.map (fun name -> run ?seed name) scenarios

let report outcomes =
  Report.table ~title:"Fault scenarios (deterministic; seed-reproducible)"
    (List.map
       (fun o ->
         {
           Report.label = o.scenario;
           paper = "-";
           measured =
             (if o.violations = [] then "invariants ok" else "VIOLATED");
           note =
             Printf.sprintf
               "%d calls: %d ok, %d to, %d ab | %d retrans, %d drops"
               o.calls o.oks o.timeouts o.aborts o.retransmissions o.drops;
         })
       outcomes)
