(* The traced load run: install a tracer around one load cell — with
   the atomicity layer on, so binds pay a real lock/commit stage —
   and export everything the observability layer produces: the
   Chrome trace, the critical-path report, and a snapshot of every
   node's metrics registry.

   The tracer only reads the sim clock, so the traced cell's
   simulated metrics are identical to an untraced run of the same
   cell and seed; the span tree itself is equally deterministic
   (pinned by the trace-determinism test). *)

type result = {
  point : Load.point;
  tracer : Obs.Tracer.t;
  chrome : string;  (* Chrome trace-event JSON *)
  report : string;  (* text critical-path report *)
  summary : Obs.Export.summary;  (* machine-readable stage breakdown *)
  registries_json : string;  (* metrics-registry snapshot *)
  totals : (string * int) list;  (* cluster-wide counter rollup *)
}

let default_cell = List.hd Load.ab_cells (* mid-shard *)

let run ?(seed = 42) ?(cell = default_cell) () =
  let tracer = Obs.Tracer.create () in
  let registries_json = ref "[]" in
  let totals = ref [] in
  Obs.Tracer.install tracer;
  let point =
    Fun.protect ~finally:Obs.Tracer.uninstall (fun () ->
        Load.run_cell ~seed ~atomicity:true
          ~observer:(fun cl om atm ->
            let extra =
              match atm with
              | Some a -> Atomicity.Manager.metrics a
              | None -> []
            in
            let regs = Clouds.Telemetry.registries ~om ~extra cl in
            registries_json := Obs.Registry.snapshot_json regs;
            totals := Obs.Registry.totals regs)
          cell)
  in
  {
    point;
    tracer;
    chrome = Obs.Export.chrome_json tracer;
    report = Obs.Export.report tracer;
    summary = Obs.Export.summarize tracer;
    registries_json = !registries_json;
    totals = !totals;
  }
