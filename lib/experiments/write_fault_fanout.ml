type point = {
  copyset : int;
  suspects : int;
  serial_ms : float;
  parallel_ms : float;
}

type result = {
  rtt_ms : float;
  baseline_ms : float;
  healthy : point list;
  suspected : point list;
}

(* Short retransmission budget so the suspect variants give up after
   20 + 40 + 80 = 140 ms instead of RaTP's default 12.75 s.  The same
   config is used everywhere (including the RTT probe) so all the
   numbers in one report share a scale. *)
let ratp_config =
  {
    Ratp.Endpoint.default_config with
    retry_initial = Sim.Time.ms 20;
    max_attempts = 3;
  }

let measure_rtt () =
  Sim.exec (fun () ->
      let ether = Net.Ethernet.create (Sim.engine ()) () in
      let a = Ratp.Endpoint.create ether ~addr:1 ~config:ratp_config () in
      let b = Ratp.Endpoint.create ether ~addr:2 ~config:ratp_config () in
      Ratp.Endpoint.serve b ~service:1 (fun ~src:_ _ ->
          (Ratp.Packet.Ping "ok", 32));
      let t0 = Sim.now () in
      (match
         Ratp.Endpoint.call a ~dst:2 ~service:1 ~size:32
           (Ratp.Packet.Ping "x")
       with
      | Ok _ -> ()
      | Error Ratp.Endpoint.Timeout -> failwith "rtt probe timed out");
      Sim.Time.to_ms_f (Sim.Time.diff (Sim.now ()) t0))

(* One data server, [copyset] reader clients that pull a read copy of
   page 0, then a separate writer node whose write fault forces the
   server to invalidate every copy.  Returns the writer's fault
   latency in simulated milliseconds. *)
let measure_write_fault ~parallel ~copyset ~suspects =
  Sim.exec (fun () ->
      let ether = Net.Ethernet.create (Sim.engine ()) () in
      let nd =
        Ra.Node.create ether ~id:1 ~kind:Ra.Node.Data ~ratp_config ()
      in
      let server =
        Dsm.Dsm_server.create nd ~parallel_coherence:parallel ()
      in
      let locate _ = 1 in
      let make_client id =
        let n = Ra.Node.create ether ~id ~kind:Ra.Node.Compute ~ratp_config () in
        ignore (Dsm.Dsm_client.create n ~locate ());
        n
      in
      let readers = List.init copyset (fun i -> make_client (10 + i)) in
      let writer = make_client 9 in
      let seg = Ra.Sysname.fresh nd.Ra.Node.names in
      Store.Segment_store.create_segment
        (Dsm.Dsm_server.store server)
        seg ~size:Ra.Page.size;
      let rpc (n : Ra.Node.t) body =
        match
          Ratp.Endpoint.call n.Ra.Node.endpoint ~dst:1
            ~service:Dsm.Protocol.service
            ~size:(Dsm.Protocol.request_bytes body)
            body
        with
        | Ok (Dsm.Protocol.Got_page _) -> ()
        | Ok _ | Error Ratp.Endpoint.Timeout -> failwith "page fault failed"
      in
      List.iter
        (fun n ->
          rpc n
            (Dsm.Protocol.Get_page { seg; page = 0; mode = Ra.Partition.Read; window = 0 }))
        readers;
      (* the writer reads the page too, so every variant — including
         the empty-copyset baseline — measures a warm write fault; the
         server never invalidates the faulting node itself *)
      rpc writer
        (Dsm.Protocol.Get_page { seg; page = 0; mode = Ra.Partition.Read; window = 0 });
      (* crash the first [suspects] readers; the server still lists
         them in the copyset and will have to time out on each *)
      List.iteri (fun i n -> if i < suspects then Ra.Node.crash n) readers;
      let t0 = Sim.now () in
      rpc writer
        (Dsm.Protocol.Get_page { seg; page = 0; mode = Ra.Partition.Write; window = 0 });
      Sim.Time.to_ms_f (Sim.Time.diff (Sim.now ()) t0))

let point ~copyset ~suspects =
  {
    copyset;
    suspects;
    serial_ms = measure_write_fault ~parallel:false ~copyset ~suspects;
    parallel_ms = measure_write_fault ~parallel:true ~copyset ~suspects;
  }

let run ?(sizes = [ 1; 4; 8; 16 ]) () =
  let rtt_ms = measure_rtt () in
  let baseline_ms = measure_write_fault ~parallel:true ~copyset:0 ~suspects:0 in
  let healthy = List.map (fun k -> point ~copyset:k ~suspects:0) sizes in
  let suspected =
    List.map (fun k -> point ~copyset:k ~suspects:(min 2 k)) sizes
  in
  { rtt_ms; baseline_ms; healthy; suspected }

let report r =
  let rows_of tag points =
    List.map
      (fun p ->
        {
          Report.label =
            Printf.sprintf "write fault, copyset %d%s" p.copyset
              (if p.suspects > 0 then
                 Printf.sprintf " (%d crashed)" p.suspects
               else "");
          paper = "-";
          measured =
            Printf.sprintf "%s serial / %s parallel" (Report.ms p.serial_ms)
              (Report.ms p.parallel_ms);
          note =
            Printf.sprintf "%s, %.1fx" tag
              (if p.parallel_ms > 0.0 then p.serial_ms /. p.parallel_ms
               else 0.0);
        })
      points
  in
  Report.table ~title:"Write-fault fan-out: serial vs concurrent invalidation"
    ({
       Report.label = "null RaTP round trip";
       paper = "4.8 ms";
       measured = Report.ms r.rtt_ms;
       note = "scale for the rows below";
     }
     :: {
          Report.label = "write fault, empty copyset";
          paper = "-";
          measured = Report.ms r.baseline_ms;
          note = "no invalidations; both modes identical";
        }
     :: (rows_of "healthy" r.healthy @ rows_of "suspects" r.suspected))
