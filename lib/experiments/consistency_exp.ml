(* Relaxed-consistency DSM modes A/B'd against the one-copy
   baseline (DESIGN.md §17).

   Three workloads:

   - Scoped writes (one-copy vs release): one writer updates N pages
     per lock scope while R readers hold copies of every page.
     One-copy pays R invalidation RPCs per write fault (N*R per
     scope); release defers them and pays R batched invalidation
     RPCs per flush, independent of N.

   - Shared counters (one-copy vs commutative): C clients each bump
     their own 64-bit slot of ONE page, round robin.  One-copy
     ping-pongs ownership (a recall + invalidations per turn);
     commutative keeps every client on a local copy and merges Add
     deltas at the home — zero coherence stalls.

   - F1 sort (one-copy vs release): the section 5.1 distributed sort
     on a full cluster, with the sorter object's segments in each
     mode.  Commutative is excluded: sorting writes are positional,
     not commutative, so a merge operator would corrupt the array. *)

type scoped_point = {
  mode : string;
  copyset : int;  (** readers holding copies of every page *)
  writes : int;  (** pages written inside the scope *)
  inval_rpcs : int;
  deferred : int;  (** per-copy invalidations skipped at fault time *)
  page_moves : int;
  elapsed_ms : float;
}

type counter_point = {
  mode : string;
  clients : int;
  increments : int;  (** per client *)
  stalls : int;  (** invalidations + recalls/downgrades sent by the server *)
  page_moves : int;
  merge_rpcs : int;
  converged : bool;  (** every slot ended at exactly [increments] *)
  elapsed_ms : float;
}

type sort_point = {
  mode : string;
  workers : int;
  total_ms : float;
  page_moves : int;
  inval_rpcs : int;
}

type result = {
  scoped : scoped_point list;
  counters : counter_point list;
  sort : sort_point list;
}

let fast_ratp =
  {
    Ratp.Endpoint.default_config with
    retry_initial = Sim.Time.ms 20;
    max_attempts = 3;
  }

let mode_name = function
  | Ra.Partition.One_copy -> "one-copy"
  | Ra.Partition.Release -> "release"
  | Ra.Partition.Commutative Ra.Partition.Add -> "commutative(add)"
  | Ra.Partition.Commutative Ra.Partition.Max -> "commutative(max)"

(* A one-server micro-cluster with [clients] compute nodes, every
   segment in [mode].  Returns whatever [f] computes alongside the
   server so callers can diff its counters. *)
let with_micro ~mode ~clients f =
  Sim.exec (fun () ->
      let ether = Net.Ethernet.create (Sim.engine ()) () in
      let nd =
        Ra.Node.create ether ~id:1 ~kind:Ra.Node.Data ~ratp_config:fast_ratp ()
      in
      let server = Dsm.Dsm_server.create nd () in
      let locate _ = 1 in
      let consistency _ = mode in
      let cs =
        List.init clients (fun i ->
            let n =
              Ra.Node.create ether ~id:(2 + i) ~kind:Ra.Node.Compute
                ~ratp_config:fast_ratp ()
            in
            (n, Dsm.Dsm_client.create n ~locate ~consistency ()))
      in
      let seg = Ra.Sysname.fresh nd.Ra.Node.names in
      f ~server ~seg ~cs)

let vspace_for seg ~pages =
  let vs = Ra.Virtual_space.create () in
  Ra.Virtual_space.map vs ~base:0 ~len:(pages * Ra.Page.size)
    ~prot:Ra.Virtual_space.Read_write seg;
  vs

(* --- workload 1: N writes per scope, R standing readers ------------ *)

let scoped_point ~mode ~pages ~readers =
  with_micro ~mode ~clients:(readers + 1) (fun ~server ~seg ~cs ->
      Store.Segment_store.create_segment
        (Dsm.Dsm_server.store server)
        seg ~size:(pages * Ra.Page.size);
      Dsm.Dsm_server.set_consistency server seg mode;
      let vs = vspace_for seg ~pages in
      let (wn, wc), rs =
        match cs with [] -> assert false | w :: rs -> (w, rs)
      in
      (* every reader pulls a read copy of every page *)
      List.iter
        (fun (n, _) ->
          for p = 0 to pages - 1 do
            ignore
              (Ra.Mmu.read n.Ra.Node.mmu vs ~addr:(p * Ra.Page.size) ~len:1)
          done)
        rs;
      let invals0 = Dsm.Dsm_server.invalidations_sent server in
      let served0 = Dsm.Dsm_server.pages_served server in
      let deferred0 = Dsm.Dsm_server.deferred_invals server in
      let t0 = Sim.now () in
      (* the scope: write one word in each page, then release *)
      for p = 0 to pages - 1 do
        let b = Bytes.create 8 in
        Bytes.set_int64_le b 0 (Int64.of_int (p + 1));
        Ra.Mmu.write wn.Ra.Node.mmu vs ~addr:(p * Ra.Page.size) b
      done;
      Dsm.Dsm_client.flush_segment wc seg;
      let elapsed_ms = Sim.Time.to_ms_f (Sim.Time.diff (Sim.now ()) t0) in
      (* release semantics: a reader re-reading after the flush sees
         every write of the scope *)
      (match rs with
      | [] -> ()
      | (rn, _) :: _ ->
          for p = 0 to pages - 1 do
            let b =
              Ra.Mmu.read rn.Ra.Node.mmu vs ~addr:(p * Ra.Page.size) ~len:8
            in
            assert (Int64.to_int (Bytes.get_int64_le b 0) = p + 1)
          done);
      {
        mode = mode_name mode;
        copyset = readers;
        writes = pages;
        inval_rpcs = Dsm.Dsm_server.invalidations_sent server - invals0;
        deferred = Dsm.Dsm_server.deferred_invals server - deferred0;
        page_moves = Dsm.Dsm_server.pages_served server - served0;
        elapsed_ms;
      })

(* --- workload 2: counter slots on one shared page ------------------ *)

let counter_point ~mode ~clients ~increments =
  with_micro ~mode ~clients (fun ~server ~seg ~cs ->
      Store.Segment_store.create_segment
        (Dsm.Dsm_server.store server)
        seg ~size:Ra.Page.size;
      Dsm.Dsm_server.set_consistency server seg mode;
      let vs = vspace_for seg ~pages:1 in
      let invals0 = Dsm.Dsm_server.invalidations_sent server in
      let downs0 = Dsm.Dsm_server.downgrades_sent server in
      let served0 = Dsm.Dsm_server.pages_served server in
      let merges0 =
        List.fold_left
          (fun acc (_, c) -> acc + Dsm.Dsm_client.merge_flushes c)
          0 cs
      in
      let t0 = Sim.now () in
      (* round robin: client [i] bumps slot [i] of the shared page *)
      for _round = 1 to increments do
        List.iteri
          (fun i (n, _) ->
            let cur =
              Ra.Mmu.read n.Ra.Node.mmu vs ~addr:(8 * i) ~len:8
            in
            let v = Int64.to_int (Bytes.get_int64_le cur 0) in
            let b = Bytes.create 8 in
            Bytes.set_int64_le b 0 (Int64.of_int (v + 1));
            Ra.Mmu.write n.Ra.Node.mmu vs ~addr:(8 * i) b)
          cs
      done;
      List.iter (fun (_, c) -> Dsm.Dsm_client.flush_segment c seg) cs;
      let elapsed_ms = Sim.Time.to_ms_f (Sim.Time.diff (Sim.now ()) t0) in
      (* convergence: the store's page holds exactly [increments] in
         every client's slot *)
      let final =
        match
          Store.Segment_store.read_page (Dsm.Dsm_server.store server) seg 0
        with
        | Ra.Partition.Data b -> b
        | Ra.Partition.Zeroed -> Bytes.make Ra.Page.size '\000'
      in
      let converged = ref true in
      List.iteri
        (fun i _ ->
          if Int64.to_int (Bytes.get_int64_le final (8 * i)) <> increments
          then converged := false)
        cs;
      {
        mode = mode_name mode;
        clients;
        increments;
        stalls =
          Dsm.Dsm_server.invalidations_sent server
          - invals0
          + Dsm.Dsm_server.downgrades_sent server
          - downs0;
        page_moves = Dsm.Dsm_server.pages_served server - served0;
        merge_rpcs =
          List.fold_left
            (fun acc (_, c) -> acc + Dsm.Dsm_client.merge_flushes c)
            0 cs
          - merges0;
        converged = !converged;
        elapsed_ms;
      })

(* --- workload 3: F1 sort under one-copy and release ---------------- *)

let sort_point ~mode ~elements ~workers =
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let sys = Clouds.boot eng ~compute:4 ~data:1 ~workstations:0 () in
      let cl = sys.Clouds.cluster in
      let obj =
        Apps.Sorter.create sys.Clouds.om ~consistency:mode ~capacity:elements
          ()
      in
      Apps.Sorter.fill sys.Clouds.om ~obj ~n:elements ~seed:42;
      let sum = Apps.Sorter.checksum sys.Clouds.om ~obj in
      let invals0 =
        Array.fold_left
          (fun acc s -> acc + Dsm.Dsm_server.invalidations_sent s)
          0 cl.Clouds.Cluster.servers
      in
      let r = Apps.Sorter.distributed_sort sys.Clouds.om ~obj ~workers in
      assert (Apps.Sorter.is_sorted sys.Clouds.om ~obj);
      assert (Apps.Sorter.checksum sys.Clouds.om ~obj = sum);
      {
        mode = mode_name mode;
        workers;
        total_ms = r.Apps.Sorter.elapsed_ms;
        page_moves = r.Apps.Sorter.remote_page_moves;
        inval_rpcs =
          Array.fold_left
            (fun acc s -> acc + Dsm.Dsm_server.invalidations_sent s)
            0 cl.Clouds.Cluster.servers
          - invals0;
      })

(* ------------------------------------------------------------------ *)

let run ?(pages = 8) ?(copysets = [ 1; 2; 4; 8 ]) ?(counter_clients = 4)
    ?(increments = 32) ?(elements = 4096) ?(workers = 4) () =
  let scoped =
    List.concat_map
      (fun readers ->
        [
          scoped_point ~mode:Ra.Partition.One_copy ~pages ~readers;
          scoped_point ~mode:Ra.Partition.Release ~pages ~readers;
        ])
      copysets
  in
  let counters =
    [
      counter_point ~mode:Ra.Partition.One_copy ~clients:counter_clients
        ~increments;
      counter_point
        ~mode:(Ra.Partition.Commutative Ra.Partition.Add)
        ~clients:counter_clients ~increments;
    ]
  in
  let sort =
    [
      sort_point ~mode:Ra.Partition.One_copy ~elements ~workers;
      sort_point ~mode:Ra.Partition.Release ~elements ~workers;
    ]
  in
  { scoped; counters; sort }

(* The tentpole's headline number: invalidation RPCs for the same
   scoped workload, one-copy over release (>= 2 expected whenever the
   scope holds >= 2 writes). *)
let inval_reduction r ~copyset =
  let find m =
    List.find_opt (fun (p : scoped_point) -> p.mode = m && p.copyset = copyset) r.scoped
  in
  match (find "one-copy", find "release") with
  | Some oc, Some rel when rel.inval_rpcs > 0 ->
      float_of_int oc.inval_rpcs /. float_of_int rel.inval_rpcs
  | _ -> 0.0

let report r =
  let scoped_rows =
    List.map
      (fun (p : scoped_point) ->
        {
          Report.label =
            Printf.sprintf "%d writes/scope, %d readers (%s)" p.writes
              p.copyset p.mode;
          paper = "-";
          measured = Printf.sprintf "%d inval RPCs" p.inval_rpcs;
          note =
            Printf.sprintf "%d deferred | %d page moves | %s" p.deferred
              p.page_moves (Report.ms p.elapsed_ms);
        })
      r.scoped
  in
  let counter_rows =
    List.map
      (fun (p : counter_point) ->
        {
          Report.label =
            Printf.sprintf "%d clients x %d increments (%s)" p.clients
              p.increments p.mode;
          paper = "-";
          measured = Printf.sprintf "%d coherence stalls" p.stalls;
          note =
            Printf.sprintf "%d page moves | %d merge RPCs | %s%s" p.page_moves
              p.merge_rpcs (Report.ms p.elapsed_ms)
              (if p.converged then "" else " | DIVERGED");
        })
      r.counters
  in
  let sort_rows =
    List.map
      (fun (p : sort_point) ->
        {
          Report.label = Printf.sprintf "F1 sort, %d workers (%s)" p.workers p.mode;
          paper = "-";
          measured = Report.ms p.total_ms;
          note =
            Printf.sprintf "%d page moves | %d inval RPCs" p.page_moves
              p.inval_rpcs;
        })
      r.sort
  in
  Report.table
    ~title:"Consistency modes: one-copy vs release vs commutative (DESIGN §17)"
    (scoped_rows @ counter_rows @ sort_rows)
