type config = {
  frag_payload : int;
  retry_initial : Sim.Time.span;
  retry_backoff : float;
  max_attempts : int;
  server_cache_ttl : Sim.Time.span;
  proc_cost : Sim.Time.span;
}

let default_config =
  {
    frag_payload = 1400;
    retry_initial = Sim.Time.ms 50;
    retry_backoff = 2.0;
    max_attempts = 8;
    server_cache_ttl = Sim.Time.sec 5;
    proc_cost = Sim.Time.us 590;
  }

type error = Timeout

type handler = src:Net.Address.t -> Packet.body -> Packet.body * int

type client_pending = {
  complete : Packet.body Sim.Mailbox.t;
  mutable reply_got : bool array;  (* sized on first reply fragment *)
  mutable reply_missing : int;  (* -1 until sized *)
  mutable busy : bool;  (* server said it is working; be patient *)
}

type server_state =
  | Accumulating of { got : bool array; mutable missing : int }
  | In_progress
  | Done of { reply : Packet.body; reply_size : int }

module Tid_table = Hashtbl.Make (struct
  type t = Packet.tid

  let equal (a : t) b = a.Packet.seq = b.Packet.seq && a.origin = b.origin
  let hash (t : t) = Hashtbl.hash (t.origin, t.seq)
end)

type t = {
  ether : Net.Ethernet.t;
  nic : Net.Nic.t;
  address : Net.Address.t;
  group : int option;
  cfg : config;
  mutable next_seq : int;
  clients : client_pending Tid_table.t;
  servers : server_state Tid_table.t;
  services : (int, handler) Hashtbl.t;
  retrans : Sim.Stats.counter;
  completed : Sim.Stats.counter;
  mutable rx_pid : Sim.Engine.pid;
}

let addr t = t.address
let config t = t.cfg
let retransmissions t = Sim.Stats.value t.retrans
let transactions t = Sim.Stats.value t.completed

let send_fragments t ~dst ~service ~tid ~kind ~total_size body =
  let n = Packet.nfrags_of ~frag_payload:t.cfg.frag_payload total_size in
  let frame_for i =
    let frag_size =
      Packet.frag_bytes ~frag_payload:t.cfg.frag_payload ~total_size i
    in
    let pkt =
      { Packet.tid; service; kind; frag = i; nfrags = n; total_size; body }
    in
    Net.Frame.make ~src:t.address ~dst:(Net.Frame.Unicast dst)
      ~payload_bytes:(frag_size + Packet.header_bytes)
      (Packet.Ratp pkt)
  in
  (* One tx process per *message*, not per fragment: a single loop
     pushes every fragment, overlapping the host (DMA setup) cost of
     fragment [i] with the wire time of fragments [0..i-1] as the old
     process-per-fragment path did, without paying an effect-handler
     setup per fragment (an 8 K transfer used to spawn six). *)
  ignore
    (Sim.spawn ?group:t.group "ratp-tx" (fun () ->
         let cfg = Net.Ethernet.config t.ether in
         let t0 = Sim.now () in
         for i = 0 to n - 1 do
           let frame = frame_for i in
           (* the host is ready to hand fragment [i] to the wire once
              its own driver cost has elapsed from the start of the
              burst; by then the bus is usually still busy with the
              previous fragment, so the cost is hidden *)
           let ready =
             Sim.Time.add t0 (Net.Ethernet.host_send_cost cfg frame)
           in
           let now = Sim.now () in
           if Sim.Time.compare ready now > 0 then
             Sim.sleep (Sim.Time.diff ready now);
           Net.Ethernet.transmit_prepared t.ether frame
         done))

let send_ack t ~dst ~tid ~service =
  let pkt =
    {
      Packet.tid;
      service;
      kind = Packet.Ack;
      frag = 0;
      nfrags = 1;
      total_size = 0;
      body = Packet.Ping "ack";
    }
  in
  let frame =
    Net.Frame.make ~src:t.address ~dst:(Net.Frame.Unicast dst)
      ~payload_bytes:Packet.header_bytes (Packet.Ratp pkt)
  in
  ignore
    (Sim.spawn ?group:t.group "ratp-ack" (fun () ->
         Net.Ethernet.transmit t.ether frame))

(* --- server side ---------------------------------------------------- *)

let schedule_cache_expiry t tid =
  let eng = Net.Ethernet.engine t.ether in
  Sim.Engine.at eng
    (Sim.Time.add (Sim.Engine.now eng) t.cfg.server_cache_ttl)
    (fun () ->
      match Tid_table.find_opt t.servers tid with
      | Some (Done _) -> Tid_table.remove t.servers tid
      | Some (Accumulating _ | In_progress) | None -> ())

let run_handler t ~(src : Net.Address.t) ~tid ~service body =
  ignore
    (Sim.spawn ?group:t.group "ratp-handler" (fun () ->
         match Hashtbl.find_opt t.services service with
         | None ->
             (* unknown service: drop; the client will time out *)
             Tid_table.remove t.servers tid
         | Some handler ->
             Sim.sleep t.cfg.proc_cost;
             let reply, reply_size = handler ~src body in
             Tid_table.replace t.servers tid (Done { reply; reply_size });
             schedule_cache_expiry t tid;
             Sim.sleep t.cfg.proc_cost;
             send_fragments t ~dst:src ~service ~tid ~kind:Packet.Reply
               ~total_size:reply_size reply))

let handle_request t ~src (pkt : Packet.t) =
  match Tid_table.find_opt t.servers pkt.tid with
  | Some (Done { reply; reply_size }) ->
      (* duplicate request: retransmit the cached reply once per
         request burst (triggered by fragment 0) *)
      if pkt.frag = 0 then
        send_fragments t ~dst:src ~service:pkt.service ~tid:pkt.tid
          ~kind:Packet.Reply ~total_size:reply_size reply
  | Some In_progress ->
      (* tell the retransmitting client the handler is still running
         so it does not give up on a long operation *)
      if pkt.frag = 0 then
        send_fragments t ~dst:src ~service:pkt.service ~tid:pkt.tid
          ~kind:Packet.Busy ~total_size:0 pkt.body
  | Some (Accumulating acc) ->
      if not acc.got.(pkt.frag) then begin
        acc.got.(pkt.frag) <- true;
        acc.missing <- acc.missing - 1;
        if acc.missing = 0 then begin
          Tid_table.replace t.servers pkt.tid In_progress;
          run_handler t ~src ~tid:pkt.tid ~service:pkt.service pkt.body
        end
      end
  | None ->
      if pkt.nfrags = 1 then begin
        Tid_table.replace t.servers pkt.tid In_progress;
        run_handler t ~src ~tid:pkt.tid ~service:pkt.service pkt.body
      end
      else begin
        let got = Array.make pkt.nfrags false in
        got.(pkt.frag) <- true;
        Tid_table.replace t.servers pkt.tid
          (Accumulating { got; missing = pkt.nfrags - 1 })
      end

(* --- client side ---------------------------------------------------- *)

let handle_reply t (pkt : Packet.t) =
  match Tid_table.find_opt t.clients pkt.tid with
  | None -> () (* transaction already completed or abandoned *)
  | Some pc ->
      if pc.reply_missing = -1 then begin
        pc.reply_got <- Array.make pkt.nfrags false;
        pc.reply_missing <- pkt.nfrags
      end;
      if not pc.reply_got.(pkt.frag) then begin
        pc.reply_got.(pkt.frag) <- true;
        pc.reply_missing <- pc.reply_missing - 1;
        if pc.reply_missing = 0 then Sim.Mailbox.send pc.complete pkt.body
      end

let handle_packet t ~src (pkt : Packet.t) =
  match pkt.kind with
  | Packet.Request -> handle_request t ~src pkt
  | Packet.Reply -> handle_reply t pkt
  | Packet.Ack -> Tid_table.remove t.servers pkt.tid
  | Packet.Busy -> (
      match Tid_table.find_opt t.clients pkt.tid with
      | Some pc -> pc.busy <- true
      | None -> ())

let rec rx_loop t =
  let frame = Net.Nic.recv t.nic in
  (match frame.Net.Frame.payload with
  | Packet.Ratp pkt -> handle_packet t ~src:frame.Net.Frame.src pkt
  | _ -> ());
  rx_loop t

let create ether ~addr ?group ?(config = default_config) () =
  let nic = Net.Ethernet.attach ether addr in
  let t =
    {
      ether;
      nic;
      address = addr;
      group;
      cfg = config;
      next_seq = 0;
      clients = Tid_table.create 16;
      servers = Tid_table.create 16;
      services = Hashtbl.create 8;
      retrans = Sim.Stats.counter "ratp.retrans";
      completed = Sim.Stats.counter "ratp.transactions";
      rx_pid = 0;
    }
  in
  let eng = Net.Ethernet.engine ether in
  t.rx_pid <-
    Sim.Engine.spawn eng ?group
      (Printf.sprintf "ratp-rx-%d" addr)
      (fun () -> rx_loop t);
  t

let serve t ~service handler = Hashtbl.replace t.services service handler

let restart t =
  Tid_table.reset t.clients;
  Tid_table.reset t.servers;
  let eng = Net.Ethernet.engine t.ether in
  (* the previous rx loop is usually already dead (group-killed by the
     machine crash), but when [restart] is called on its own we must
     not leave two rx loops racing on the NIC *)
  Sim.Engine.kill eng t.rx_pid;
  t.rx_pid <-
    Sim.Engine.spawn eng ?group:t.group
      (Printf.sprintf "ratp-rx-%d" t.address)
      (fun () -> rx_loop t)

let call t ~dst ~service ~size body =
  Sim.sleep t.cfg.proc_cost;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let tid = { Packet.origin = t.address; seq } in
  let pc =
    {
      complete = Sim.Mailbox.create "ratp-reply";
      reply_got = [||];
      reply_missing = -1;
      busy = false;
    }
  in
  Tid_table.replace t.clients tid pc;
  Fun.protect
    ~finally:(fun () -> Tid_table.remove t.clients tid)
    (fun () ->
      (* [n] counts attempts against the give-up budget; [sends]
         counts wire sends, so Busy-path probes register as
         retransmissions without burning attempts *)
      let rec attempt ~sends n interval =
        if n > t.cfg.max_attempts then Error Timeout
        else begin
          if sends > 0 then Sim.Stats.incr t.retrans;
          send_fragments t ~dst ~service ~tid ~kind:Packet.Request
            ~total_size:size body;
          match Sim.Mailbox.recv_timeout pc.complete interval with
          | Some reply ->
              Sim.sleep t.cfg.proc_cost;
              send_ack t ~dst ~tid ~service;
              Sim.Stats.incr t.completed;
              Ok reply
          | None ->
              if pc.busy then begin
                (* the server is working on it: keep waiting without
                   burning attempts (deadlock breaking is the
                   caller's job, e.g. abort-after-timeout) *)
                pc.busy <- false;
                attempt ~sends:(sends + 1) n interval
              end
              else
                attempt ~sends:(sends + 1) (n + 1)
                  (int_of_float (float_of_int interval *. t.cfg.retry_backoff))
        end
      in
      attempt ~sends:0 1 t.cfg.retry_initial)
