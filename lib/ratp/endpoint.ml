type config = {
  frag_payload : int;
  retry_initial : Sim.Time.span;
  retry_backoff : float;
  max_attempts : int;
  server_cache_ttl : Sim.Time.span;
  proc_cost : Sim.Time.span;
  selective_retransmit : bool;
  adaptive_rto : bool;
  rto_min : Sim.Time.span;
  rto_max : Sim.Time.span;
}

let default_config =
  {
    frag_payload = 1400;
    retry_initial = Sim.Time.ms 50;
    retry_backoff = 2.0;
    max_attempts = 8;
    server_cache_ttl = Sim.Time.sec 5;
    proc_cost = Sim.Time.us 590;
    selective_retransmit = true;
    adaptive_rto = false;
    rto_min = Sim.Time.ms 2;
    rto_max = Sim.Time.sec 4;
  }

type error = Timeout

type handler = src:Net.Address.t -> Packet.body -> Packet.body * int

type client_pending = {
  complete : Packet.body Sim.Mailbox.t;
  mutable reply_got : bool array;  (* sized on first reply fragment *)
  mutable reply_missing : int;  (* -1 until sized *)
  mutable busy : bool;  (* server said it is working; be patient *)
  mutable heard : bool;
      (* any feedback (reply fragment, Nack, Busy) since the last
         retransmission: silence means control packets are dying too,
         so the next retry escalates from a probe to the full burst *)
  dst : Net.Address.t;
  service : int;
  req_body : Packet.body;
  req_size : int;
  mutable retransmitted : bool;  (* Karn: poisons the RTT sample *)
}

type server_state =
  | Accumulating of {
      got : bool array;
      mutable missing : int;
      mutable touched : Sim.Time.t;
          (* last fragment or probe seen; an abandoned partial burst
             is reaped [server_cache_ttl] after it goes quiet *)
    }
  | In_progress
  | Done of { reply : Packet.body; reply_size : int }

(* Per-destination round-trip estimator (Jacobson/Karels).  Always
   maintained — the current estimate is surfaced through the
   per-peer [ratp.rto_us] gauge either way — but only consulted for
   the retry timer when [adaptive_rto] is on. *)
type rto_state = {
  mutable srtt : float;  (* ns *)
  mutable rttvar : float;  (* ns *)
  mutable rto : Sim.Time.span;
  mutable samples : int;
}

module Tid_table = Hashtbl.Make (struct
  type t = Packet.tid

  let equal (a : t) b = a.Packet.seq = b.Packet.seq && a.origin = b.origin
  let hash (t : t) = Hashtbl.hash (t.origin, t.seq)
end)

type t = {
  ether : Net.Ethernet.t;
  nic : Net.Nic.t;
  address : Net.Address.t;
  group : int option;
  cfg : config;
  mutable next_seq : int;
  clients : client_pending Tid_table.t;
  servers : server_state Tid_table.t;
  services : (int, handler) Hashtbl.t;
  rto : (Net.Address.t, rto_state) Hashtbl.t;
  retrans : Sim.Stats.counter;
  retrans_bytes : Sim.Stats.counter;
  nacks : Sim.Stats.counter;
  completed : Sim.Stats.counter;
  retrans_by : Sim.Stats.keyed;
  nacks_by : Sim.Stats.keyed;
  rto_by : Sim.Stats.keyed;
  mutable rx_pid : Sim.Engine.pid;
}

let addr t = t.address
let config t = t.cfg
let retransmissions t = Sim.Stats.value t.retrans
let retransmitted_bytes t = Sim.Stats.value t.retrans_bytes
let nacks_sent t = Sim.Stats.value t.nacks
let transactions t = Sim.Stats.value t.completed
let server_cache_size t = Tid_table.length t.servers

let metrics t =
  [
    ("ratp/retrans", Obs.Registry.Counter t.retrans);
    ("ratp/retrans_bytes", Obs.Registry.Counter t.retrans_bytes);
    ("ratp/nacks", Obs.Registry.Counter t.nacks);
    ("ratp/transactions", Obs.Registry.Counter t.completed);
    ("ratp/retrans_by", Obs.Registry.Keyed t.retrans_by);
    ("ratp/nacks_by", Obs.Registry.Keyed t.nacks_by);
    ("ratp/rto_ms_by", Obs.Registry.Keyed t.rto_by);
  ]

(* --- adaptive retransmission timeout -------------------------------- *)

let rto_state_for t dst =
  match Hashtbl.find_opt t.rto dst with
  | Some st -> st
  | None ->
      let st =
        { srtt = 0.0; rttvar = 0.0; rto = t.cfg.retry_initial; samples = 0 }
      in
      Hashtbl.replace t.rto dst st;
      st

(* One clean (never-retransmitted: Karn's rule) transaction sample.
   Standard Jacobson/Karels constants: alpha 1/8, beta 1/4, RTO =
   SRTT + 4 RTTVAR, clamped to [rto_min, rto_max]. *)
let note_rtt t ~dst span =
  let st = rto_state_for t dst in
  let rtt = float_of_int span in
  if st.samples = 0 then begin
    st.srtt <- rtt;
    st.rttvar <- rtt /. 2.0
  end
  else begin
    st.rttvar <- (0.75 *. st.rttvar) +. (0.25 *. Float.abs (st.srtt -. rtt));
    st.srtt <- (0.875 *. st.srtt) +. (0.125 *. rtt)
  end;
  st.samples <- st.samples + 1;
  let rto = int_of_float (st.srtt +. (4.0 *. st.rttvar)) in
  st.rto <- max t.cfg.rto_min (min t.cfg.rto_max rto);
  Sim.Stats.kset t.rto_by dst (st.rto / 1_000)

let rto_for t dst =
  if not t.cfg.adaptive_rto then t.cfg.retry_initial
  else begin
    match Hashtbl.find_opt t.rto dst with
    | Some st when st.samples > 0 -> st.rto
    | Some _ | None -> t.cfg.retry_initial
  end

type peer_stats = {
  peer : Net.Address.t;
  retrans : int;
  nacks : int;
  rto_ms : float;
}

let peer_stats t =
  let keys = Hashtbl.create 8 in
  let note (k, _) = Hashtbl.replace keys k () in
  List.iter note (Sim.Stats.kitems t.retrans_by);
  List.iter note (Sim.Stats.kitems t.nacks_by);
  List.iter note (Sim.Stats.kitems t.rto_by);
  Hashtbl.fold (fun k () acc -> k :: acc) keys []
  |> List.sort Net.Address.compare
  |> List.map (fun peer ->
         {
           peer;
           retrans = Sim.Stats.kvalue t.retrans_by peer;
           nacks = Sim.Stats.kvalue t.nacks_by peer;
           rto_ms =
             (match Hashtbl.find_opt t.rto peer with
             | Some st when st.samples > 0 -> Sim.Time.to_ms_f st.rto
             | Some _ | None -> Sim.Time.to_ms_f t.cfg.retry_initial);
         })

(* --- transmission --------------------------------------------------- *)

(* One tx process per *message*, not per fragment: a single loop
   pushes every listed fragment, overlapping the host (DMA setup)
   cost of fragment [i] with the wire time of fragments [0..i-1] as
   the old process-per-fragment path did, without paying an
   effect-handler setup per fragment (an 8 K transfer used to spawn
   six).  [frags] is the fragment indices to put on the wire — the
   full burst on first transmission, only the missing ones on a
   selective retransmission. *)
let send_frag_list t ~dst ~service ~tid ~kind ~total_size body frags =
  let n = Packet.nfrags_of ~frag_payload:t.cfg.frag_payload total_size in
  let frame_for i =
    let frag_size =
      Packet.frag_bytes ~frag_payload:t.cfg.frag_payload ~total_size i
    in
    let pkt =
      { Packet.tid; service; kind; frag = i; nfrags = n; total_size; body }
    in
    Net.Frame.make ~src:t.address ~dst:(Net.Frame.Unicast dst)
      ~payload_bytes:(frag_size + Packet.header_bytes)
      (Packet.Ratp pkt)
  in
  ignore
    (Sim.Engine.spawn
       (Net.Ethernet.engine t.ether)
       ?group:t.group "ratp-tx"
       (fun () ->
         let cfg = Net.Ethernet.config t.ether in
         let t0 = Sim.now () in
         List.iter
           (fun i ->
             let frame = frame_for i in
             (* the host is ready to hand fragment [i] to the wire once
                its own driver cost has elapsed from the start of the
                burst; by then the bus is usually still busy with the
                previous fragment, so the cost is hidden *)
             let ready =
               Sim.Time.add t0 (Net.Ethernet.host_send_cost cfg frame)
             in
             let now = Sim.now () in
             if Sim.Time.compare ready now > 0 then
               Sim.sleep (Sim.Time.diff ready now);
             Net.Ethernet.transmit_prepared t.ether frame)
           frags))

let send_fragments t ~dst ~service ~tid ~kind ~total_size body =
  let n = Packet.nfrags_of ~frag_payload:t.cfg.frag_payload total_size in
  send_frag_list t ~dst ~service ~tid ~kind ~total_size body
    (List.init n Fun.id)

(* Acks ride the same prepared-transmit path as every other packet
   (one "ratp-tx" process with identical timing) instead of a
   dedicated "ratp-ack" process calling the blocking transmit. *)
let send_ack t ~dst ~tid ~service =
  send_fragments t ~dst ~service ~tid ~kind:Packet.Ack ~total_size:0
    Packet.Empty

let send_control t ~dst ~tid ~service ~kind bits =
  send_frag_list t ~dst ~service ~tid ~kind
    ~total_size:(Packet.bitmap_bytes (Array.length bits))
    (Packet.Bitmap (Array.copy bits))
    [ 0 ]

(* --- server side ---------------------------------------------------- *)

let schedule_cache_expiry t tid =
  let eng = Net.Ethernet.engine t.ether in
  Sim.Engine.at eng
    (Sim.Time.add (Sim.Engine.now eng) t.cfg.server_cache_ttl)
    (fun () ->
      match Tid_table.find_opt t.servers tid with
      | Some (Done _) -> Tid_table.remove t.servers tid
      | Some (Accumulating _ | In_progress) | None -> ())

(* A request burst whose tail was lost and never retried must not pin
   its [Accumulating] entry forever: reap it once it has been quiet
   for [server_cache_ttl].  Fragments and probes refresh [touched],
   so a transaction the client is still retrying (even across long
   backoff intervals) survives. *)
let rec schedule_accumulation_expiry t tid =
  let eng = Net.Ethernet.engine t.ether in
  Sim.Engine.at eng
    (Sim.Time.add (Sim.Engine.now eng) t.cfg.server_cache_ttl)
    (fun () ->
      match Tid_table.find_opt t.servers tid with
      | Some (Accumulating acc) ->
          let idle = Sim.Time.diff (Sim.Engine.now eng) acc.touched in
          if Sim.Time.compare idle t.cfg.server_cache_ttl >= 0 then
            Tid_table.remove t.servers tid
          else schedule_accumulation_expiry t tid
      | Some (In_progress | Done _) | None -> ())

let run_handler t ~(src : Net.Address.t) ~tid ~service body =
  ignore
    (Sim.Engine.spawn
       (Net.Ethernet.engine t.ether)
       ?group:t.group "ratp-handler"
       (fun () ->
         match Hashtbl.find_opt t.services service with
         | None ->
             (* unknown service: drop; the client will time out *)
             Tid_table.remove t.servers tid
         | Some handler ->
             (* run under the caller's span so server-side spans
                join the client's trace *)
             Obs.Tracer.accept ~origin:tid.Packet.origin ~seq:tid.Packet.seq
               (fun () ->
                 Sim.sleep t.cfg.proc_cost;
                 let reply, reply_size = handler ~src body in
                 Tid_table.replace t.servers tid (Done { reply; reply_size });
                 schedule_cache_expiry t tid;
                 Sim.sleep t.cfg.proc_cost;
                 send_fragments t ~dst:src ~service ~tid ~kind:Packet.Reply
                   ~total_size:reply_size reply)))

let handle_request t ~src (pkt : Packet.t) =
  match Tid_table.find_opt t.servers pkt.tid with
  | Some (Done { reply; reply_size }) ->
      (* duplicate request: retransmit the cached reply once per
         request burst (triggered by fragment 0) *)
      if pkt.frag = 0 then begin
        Sim.Stats.incr_by t.retrans_bytes reply_size;
        Sim.Stats.kincr t.retrans_by src;
        send_fragments t ~dst:src ~service:pkt.service ~tid:pkt.tid
          ~kind:Packet.Reply ~total_size:reply_size reply
      end
  | Some In_progress ->
      (* tell the retransmitting client the handler is still running
         so it does not give up on a long operation; a Busy carries
         no payload *)
      if pkt.frag = 0 then
        send_fragments t ~dst:src ~service:pkt.service ~tid:pkt.tid
          ~kind:Packet.Busy ~total_size:0 Packet.Empty
  | Some (Accumulating acc) ->
      acc.touched <- Sim.Engine.now (Net.Ethernet.engine t.ether);
      if not acc.got.(pkt.frag) then begin
        acc.got.(pkt.frag) <- true;
        acc.missing <- acc.missing - 1;
        if acc.missing = 0 then begin
          Tid_table.replace t.servers pkt.tid In_progress;
          run_handler t ~src ~tid:pkt.tid ~service:pkt.service pkt.body
        end
      end
  | None ->
      if pkt.nfrags = 1 then begin
        Tid_table.replace t.servers pkt.tid In_progress;
        run_handler t ~src ~tid:pkt.tid ~service:pkt.service pkt.body
      end
      else begin
        let got = Array.make pkt.nfrags false in
        got.(pkt.frag) <- true;
        Tid_table.replace t.servers pkt.tid
          (Accumulating
             {
               got;
               missing = pkt.nfrags - 1;
               touched = Sim.Engine.now (Net.Ethernet.engine t.ether);
             });
        schedule_accumulation_expiry t pkt.tid
      end

(* A retransmit probe asks "what are you missing?".  The answer
   depends on where the transaction stands:
   - reply cached: resend only the reply fragments the probe's bitmap
     says the client lacks (all of them if the bitmap is absent);
   - handler running: Busy, as for a duplicate request;
   - request incomplete: Nack carrying our received-fragment bitmap;
   - no state at all (whole burst lost, or reaped): Nack with an
     empty bitmap, which the client reads as "resend everything". *)
let handle_probe t ~src (pkt : Packet.t) =
  match Tid_table.find_opt t.servers pkt.tid with
  | Some (Done { reply; reply_size }) ->
      let n = Packet.nfrags_of ~frag_payload:t.cfg.frag_payload reply_size in
      let missing =
        match pkt.body with
        | Packet.Bitmap got when Array.length got = n ->
            List.filter (fun i -> not got.(i)) (List.init n Fun.id)
        | _ -> List.init n Fun.id
      in
      if missing <> [] then begin
        List.iter
          (fun i ->
            Sim.Stats.incr_by t.retrans_bytes
              (Packet.frag_bytes ~frag_payload:t.cfg.frag_payload
                 ~total_size:reply_size i))
          missing;
        Sim.Stats.kincr t.retrans_by src;
        send_frag_list t ~dst:src ~service:pkt.service ~tid:pkt.tid
          ~kind:Packet.Reply ~total_size:reply_size reply missing
      end
  | Some In_progress ->
      send_fragments t ~dst:src ~service:pkt.service ~tid:pkt.tid
        ~kind:Packet.Busy ~total_size:0 Packet.Empty
  | Some (Accumulating acc) ->
      acc.touched <- Sim.Engine.now (Net.Ethernet.engine t.ether);
      Sim.Stats.incr t.nacks;
      Sim.Stats.kincr t.nacks_by src;
      send_control t ~dst:src ~tid:pkt.tid ~service:pkt.service
        ~kind:Packet.Nack acc.got
  | None ->
      Sim.Stats.incr t.nacks;
      Sim.Stats.kincr t.nacks_by src;
      send_control t ~dst:src ~tid:pkt.tid ~service:pkt.service
        ~kind:Packet.Nack [||]

(* --- client side ---------------------------------------------------- *)

let handle_reply t (pkt : Packet.t) =
  match Tid_table.find_opt t.clients pkt.tid with
  | None -> () (* transaction already completed or abandoned *)
  | Some pc ->
      pc.heard <- true;
      if pc.reply_missing = -1 then begin
        pc.reply_got <- Array.make pkt.nfrags false;
        pc.reply_missing <- pkt.nfrags
      end;
      if not pc.reply_got.(pkt.frag) then begin
        pc.reply_got.(pkt.frag) <- true;
        pc.reply_missing <- pc.reply_missing - 1;
        if pc.reply_missing = 0 then Sim.Mailbox.send pc.complete pkt.body
      end

(* The server told us which request fragments it is missing; resend
   exactly those.  A bitmap of the wrong size (or none) means the
   server lost all state: resend the full burst. *)
let handle_nack t (pkt : Packet.t) =
  match Tid_table.find_opt t.clients pkt.tid with
  | None -> ()
  | Some pc ->
      pc.heard <- true;
      let n =
        Packet.nfrags_of ~frag_payload:t.cfg.frag_payload pc.req_size
      in
      let missing =
        match pkt.body with
        | Packet.Bitmap got when Array.length got = n ->
            List.filter (fun i -> not got.(i)) (List.init n Fun.id)
        | _ -> List.init n Fun.id
      in
      if missing <> [] then begin
        List.iter
          (fun i ->
            Sim.Stats.incr_by t.retrans_bytes
              (Packet.frag_bytes ~frag_payload:t.cfg.frag_payload
                 ~total_size:pc.req_size i))
          missing;
        send_frag_list t ~dst:pc.dst ~service:pc.service ~tid:pkt.tid
          ~kind:Packet.Request ~total_size:pc.req_size pc.req_body missing
      end

let handle_packet t ~src (pkt : Packet.t) =
  match pkt.kind with
  | Packet.Request -> handle_request t ~src pkt
  | Packet.Reply -> handle_reply t pkt
  | Packet.Ack -> Tid_table.remove t.servers pkt.tid
  | Packet.Probe -> handle_probe t ~src pkt
  | Packet.Nack -> handle_nack t pkt
  | Packet.Busy -> (
      match Tid_table.find_opt t.clients pkt.tid with
      | Some pc ->
          pc.busy <- true;
          pc.heard <- true
      | None -> ())

let rec rx_loop t =
  let frame = Net.Nic.recv t.nic in
  (match frame.Net.Frame.payload with
  | Packet.Ratp pkt -> handle_packet t ~src:frame.Net.Frame.src pkt
  | _ -> ());
  rx_loop t

let create ether ~addr ?group ?(config = default_config) () =
  let nic = Net.Ethernet.attach ether addr in
  let t =
    {
      ether;
      nic;
      address = addr;
      group;
      cfg = config;
      next_seq = 0;
      clients = Tid_table.create 16;
      servers = Tid_table.create 16;
      services = Hashtbl.create 8;
      rto = Hashtbl.create 8;
      retrans = Sim.Stats.counter "ratp.retrans";
      retrans_bytes = Sim.Stats.counter "ratp.retrans_bytes";
      nacks = Sim.Stats.counter "ratp.nacks";
      completed = Sim.Stats.counter "ratp.transactions";
      retrans_by = Sim.Stats.keyed "ratp.retrans";
      nacks_by = Sim.Stats.keyed "ratp.nacks";
      rto_by = Sim.Stats.keyed "ratp.rto_us";
      rx_pid = 0;
    }
  in
  let eng = Net.Ethernet.engine ether in
  t.rx_pid <-
    Sim.Engine.spawn eng ?group
      (Printf.sprintf "ratp-rx-%d" addr)
      (fun () -> rx_loop t);
  t

let serve t ~service handler = Hashtbl.replace t.services service handler

let restart t =
  (* transaction state dies with the machine; the sequence space and
     the RTT estimators survive — reusing a tid would defeat the
     duplicate-suppression cache of servers that remember us, and
     path round-trip times do not change because we crashed *)
  Tid_table.reset t.clients;
  Tid_table.reset t.servers;
  let eng = Net.Ethernet.engine t.ether in
  (* the previous rx loop is usually already dead (group-killed by the
     machine crash), but when [restart] is called on its own we must
     not leave two rx loops racing on the NIC *)
  Sim.Engine.kill eng t.rx_pid;
  t.rx_pid <-
    Sim.Engine.spawn eng ?group:t.group
      (Printf.sprintf "ratp-rx-%d" t.address)
      (fun () -> rx_loop t)

let call t ~dst ~service ~size body =
  Sim.sleep t.cfg.proc_cost;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let tid = { Packet.origin = t.address; seq } in
  let pc =
    {
      complete = Sim.Mailbox.create "ratp-reply";
      reply_got = [||];
      reply_missing = -1;
      busy = false;
      heard = false;
      dst;
      service;
      req_body = body;
      req_size = size;
      retransmitted = false;
    }
  in
  Tid_table.replace t.clients tid pc;
  let req_nfrags = Packet.nfrags_of ~frag_payload:t.cfg.frag_payload size in
  (* The span covers the whole blocking exchange (send, retries,
     reply); [offer] lets the server's handler process parent its
     spans under this call via the transaction id — a side-channel
     table, nothing on the wire. *)
  let span = Obs.Tracer.start ~node:t.address "rpc" in
  Obs.Tracer.offer ~origin:t.address ~seq;
  Fun.protect
    ~finally:(fun () ->
      Obs.Tracer.retract ~origin:t.address ~seq;
      Obs.Tracer.finish span;
      Tid_table.remove t.clients tid)
    (fun () ->
      let t_start = Sim.now () in
      (* Retransmission: under [selective_retransmit] a timeout sends
         a 1-frame probe and lets the server's answer drive exactly
         the missing fragments back onto the wire.  Two exceptions
         fall back to the legacy full burst: a single-fragment
         request with no reply yet (the request fragment *is* the
         cheapest possible probe, and the retried packet stream is
         bit-identical to the full-burst path), and a request-phase
         retry round that produced no feedback at all — when probes
         and Nacks are dying too (bursty loss, dead server),
         resending data is the only move that can make progress.
         Once any reply fragment has arrived the request is known
         complete, so the escalation is pointless: a resent burst
         could only trigger the server's full cached-reply resend,
         while a probe pulls exactly the missing reply fragments. *)
      let retransmit ~sends =
        let heard = pc.heard in
        pc.heard <- false;
        pc.retransmitted <- true;
        Sim.Stats.incr t.retrans;
        Sim.Stats.kincr t.retrans_by dst;
        if
          t.cfg.selective_retransmit
          && (sends = 1 || heard || pc.reply_missing >= 0)
          && not (req_nfrags = 1 && pc.reply_missing = -1)
        then send_control t ~dst ~tid ~service ~kind:Packet.Probe pc.reply_got
        else begin
          Sim.Stats.incr_by t.retrans_bytes size;
          send_fragments t ~dst ~service ~tid ~kind:Packet.Request
            ~total_size:size body
        end
      in
      (* [n] counts attempts against the give-up budget; [sends]
         counts wire sends, so Busy-path probes register as
         retransmissions without burning attempts *)
      let rec attempt ~sends n interval =
        if n > t.cfg.max_attempts then Error Timeout
        else begin
          if sends = 0 then
            send_fragments t ~dst ~service ~tid ~kind:Packet.Request
              ~total_size:size body
          else retransmit ~sends;
          match Sim.Mailbox.recv_timeout pc.complete interval with
          | Some reply ->
              if not pc.retransmitted then
                note_rtt t ~dst (Sim.Time.diff (Sim.now ()) t_start);
              Sim.sleep t.cfg.proc_cost;
              send_ack t ~dst ~tid ~service;
              Sim.Stats.incr t.completed;
              Ok reply
          | None ->
              if pc.busy then begin
                (* the server is working on it: keep waiting without
                   burning attempts (deadlock breaking is the
                   caller's job, e.g. abort-after-timeout) *)
                pc.busy <- false;
                attempt ~sends:(sends + 1) n interval
              end
              else
                attempt ~sends:(sends + 1) (n + 1)
                  (int_of_float (float_of_int interval *. t.cfg.retry_backoff))
        end
      in
      attempt ~sends:0 1 (rto_for t dst))
