type body = ..
type body += Ping of string
type body += Empty
type body += Bitmap of bool array

type tid = { origin : Net.Address.t; seq : int }

type kind = Request | Reply | Ack | Busy | Probe | Nack

let bitmap_bytes n = (n + 7) / 8

type t = {
  tid : tid;
  service : int;
  kind : kind;
  frag : int;
  nfrags : int;
  total_size : int;
  body : body;
}

type Net.Frame.payload += Ratp of t

let header_bytes = 32

let nfrags_of ~frag_payload total_size =
  if total_size <= 0 then 1
  else (total_size + frag_payload - 1) / frag_payload

let frag_bytes ~frag_payload ~total_size i =
  let n = nfrags_of ~frag_payload total_size in
  if i < 0 || i >= n then invalid_arg "Packet.frag_bytes";
  if i < n - 1 then frag_payload
  else max 0 (total_size - (frag_payload * (n - 1)))

let pp_tid fmt { origin; seq } =
  Format.fprintf fmt "%a#%d" Net.Address.pp origin seq
