(** RaTP endpoints: reliable connectionless message transactions.

    RaTP is modeled on VMTP (as in the paper): a client performs a
    {e message transaction} — a request matched by a reply — with
    at-most-once semantics.  The transport handles fragmentation to
    the MTU, retransmission with exponential backoff, duplicate
    suppression through a server-side transaction cache, and explicit
    acknowledgement of replies so servers can release state early.

    Retransmission is {e selective} by default (DESIGN.md §12): a
    retry timeout sends a one-frame probe instead of the full burst;
    the peer answers with a received-fragment bitmap ({!Packet.Nack})
    or with just the missing reply fragments, so a single lost
    fragment of a large message costs one fragment on the wire, not
    the whole burst.  The retry timer is fixed by default; with
    [adaptive_rto] it follows a per-destination Jacobson/Karels
    SRTT/RTTVAR estimate (Karn's rule: retransmitted transactions
    contribute no samples).

    Each endpoint owns the NIC of one machine and runs a receive loop
    process; server handlers run in their own processes so a slow
    handler never blocks reception. *)

type config = {
  frag_payload : int;  (** max message bytes per fragment *)
  retry_initial : Sim.Time.span;  (** first retransmission delay *)
  retry_backoff : float;  (** multiplier per retry *)
  max_attempts : int;  (** send attempts before giving up *)
  server_cache_ttl : Sim.Time.span;  (** reply retention for dedup *)
  proc_cost : Sim.Time.span;
      (** protocol processing charged per transaction step (request
          issue, request dispatch, reply issue, reply consumption) *)
  selective_retransmit : bool;
      (** on timeout, probe for the peer's received-fragment bitmap
          and resend only what is missing (default on; loss-free
          packet streams are identical to the full-burst path) *)
  adaptive_rto : bool;
      (** derive the retry timer from the per-destination SRTT/RTTVAR
          estimate instead of [retry_initial] (default off; the
          estimator is maintained and surfaced either way) *)
  rto_min : Sim.Time.span;  (** adaptive RTO clamp, lower bound *)
  rto_max : Sim.Time.span;  (** adaptive RTO clamp, upper bound *)
}

val default_config : config
(** Calibrated so that a null transaction costs about twice the raw
    72-byte Ethernet round trip, matching the paper's 4.8 ms vs
    2.4 ms.  [selective_retransmit] on, [adaptive_rto] off. *)

type error = Timeout
(** The transaction gave up after [max_attempts]. *)

type handler = src:Net.Address.t -> Packet.body -> Packet.body * int
(** A service: receives the request body, returns the reply body and
    its size in bytes.  Runs in a dedicated process; may block. *)

type t

val create :
  Net.Ethernet.t ->
  addr:Net.Address.t ->
  ?group:int ->
  ?config:config ->
  unit ->
  t
(** Attach to the Ethernet at [addr] and start the receive loop.
    [group] tags the endpoint's processes for {!Sim.Engine.kill_group}
    (machine crash). *)

val addr : t -> Net.Address.t
val config : t -> config

val serve : t -> service:int -> handler -> unit
(** Register the handler for a service id.  Replaces any previous
    handler for that id. *)

val call :
  t ->
  dst:Net.Address.t ->
  service:int ->
  size:int ->
  Packet.body ->
  (Packet.body, error) result
(** Perform a message transaction from the current process: fragment
    and send the request, await the complete reply, acknowledge it.
    Returns [Error Timeout] if no reply after [max_attempts]. *)

val restart : t -> unit
(** After a machine crash ({!Sim.Engine.kill_group} plus NIC detach),
    bring the endpoint back up: discard all transaction state (client
    table and server cache) and spawn a fresh receive loop.  The
    sequence space and RTT estimators are kept — reusing a tid would
    defeat peers' duplicate suppression.  The NIC must be reattached
    by the caller. *)

val retransmissions : t -> int
(** Request retransmissions performed by this endpoint (all
    transactions; probes included). *)

val retransmitted_bytes : t -> int
(** Message payload bytes this endpoint has put on the wire more than
    once — request fragments resent by the client side plus reply
    fragments resent by the server side.  The headline metric of the
    selective-retransmission A/B ({!Experiments.Transport}). *)

val nacks_sent : t -> int
(** Selective-retransmission bitmaps ({!Packet.Nack}) sent by the
    server side of this endpoint. *)

val transactions : t -> int
(** Completed client transactions. *)

val server_cache_size : t -> int
(** Entries in the server-side transaction table (accumulating
    bursts, running handlers, cached replies).  Introspection for
    tests: abandoned bursts and acknowledged replies must not pin
    entries past [server_cache_ttl]. *)

type peer_stats = {
  peer : Net.Address.t;
  retrans : int;  (** retransmission events toward this peer *)
  nacks : int;  (** Nacks sent to this peer *)
  rto_ms : float;  (** current RTO estimate for this peer *)
}

val peer_stats : t -> peer_stats list
(** Per-destination transport counters ([ratp.retrans], [ratp.nacks],
    [ratp.rto_us] — backed by {!Sim.Stats.keyed}), sorted by peer.
    Lets an experiment attribute retransmissions to the peer that
    caused them. *)

val metrics : t -> (string * Obs.Registry.metric) list
(** Live metric handles under ["ratp/"] paths, for a per-node
    {!Obs.Registry}. *)
