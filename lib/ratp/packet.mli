(** RaTP packets.

    A {e message transaction} is a send/reply pair identified by a
    transaction id (origin address + sequence number).  Large
    messages are fragmented to fit the Ethernet MTU; every fragment
    carries the transaction id and its index.  The [body] is an
    extensible variant so that each client of the transport (DSM, the
    object manager, the data servers...) ships structured OCaml
    values while sizes stay explicit for timing. *)

type body = ..

type body += Ping of string
(** Simple test/diagnostic body. *)

type body += Empty
(** No payload: acks, busy notifications, bitmap-less probes. *)

type body += Bitmap of bool array
(** Received-fragment bitmap carried by {!Probe} (the reply fragments
    the client already holds) and {!Nack} (the request fragments the
    server already holds).  [bit.(i)] is true when fragment [i] has
    been received; an empty array means "nothing received / state
    unknown".  On the wire it costs {!bitmap_bytes} of payload. *)

type tid = { origin : Net.Address.t; seq : int }

type kind =
  | Request
  | Reply
  | Ack
  | Busy
      (** server-to-client: the transaction is being processed; be
          patient (VMTP-style busy notification) *)
  | Probe
      (** client-to-server retransmit probe: "what are you missing?"
        Carries the client's received-reply bitmap so a server whose
        reply was partially lost resends only the missing reply
        fragments. *)
  | Nack
      (** server-to-client selective-retransmission request: carries
        the server's received-request bitmap so the client resends
        only the missing request fragments. *)

type t = {
  tid : tid;
  service : int;  (** server-side dispatch key *)
  kind : kind;
  frag : int;  (** fragment index, 0-based *)
  nfrags : int;  (** total fragments in this message *)
  total_size : int;  (** size in bytes of the whole message *)
  body : body;  (** full message body (carried on every fragment) *)
}

type Net.Frame.payload += Ratp of t

val header_bytes : int
(** RaTP header size added to every fragment. *)

val frag_bytes : frag_payload:int -> total_size:int -> int -> int
(** [frag_bytes ~frag_payload ~total_size i] is the payload size of
    fragment [i]. *)

val nfrags_of : frag_payload:int -> int -> int
(** Number of fragments needed for a message of the given size
    (at least 1). *)

val bitmap_bytes : int -> int
(** Wire size of an [n]-fragment bitmap: one bit per fragment,
    rounded up to whole bytes. *)

val pp_tid : Format.formatter -> tid -> unit
