type mode = Read | Write

type fetch_data = Zeroed | Data of bytes

exception No_segment of Sysname.t

type t = {
  name : string;
  fetch : seg:Sysname.t -> page:int -> mode:mode -> fetch_data;
  writeback : seg:Sysname.t -> page:int -> bytes -> unit;
}

let pp_mode fmt = function
  | Read -> Format.pp_print_string fmt "read"
  | Write -> Format.pp_print_string fmt "write"

type merge = Add | Max

type consistency = One_copy | Release | Commutative of merge

let pp_merge fmt = function
  | Add -> Format.pp_print_string fmt "add"
  | Max -> Format.pp_print_string fmt "max"

let pp_consistency fmt = function
  | One_copy -> Format.pp_print_string fmt "one-copy"
  | Release -> Format.pp_print_string fmt "release"
  | Commutative m -> Format.fprintf fmt "commutative(%a)" pp_merge m

(* Merge-operator contract: pages are arrays of 64-bit little-endian
   words.  A replica's delta against its base image is combined into
   the home copy word by word; [Add] deltas are differences (so
   concurrent increments sum), [Max] deltas are absolute values (so
   the largest write wins per word).  Both operators are commutative
   and associative, which is what makes the mode arbitration-free. *)

let words b = Bytes.length b / 8

let merge_delta op ~base ~current =
  let n = min (words base) (words current) in
  let out = Bytes.copy current in
  (match op with
  | Add ->
      for i = 0 to n - 1 do
        let o = i * 8 in
        Bytes.set_int64_le out o
          (Int64.sub (Bytes.get_int64_le current o) (Bytes.get_int64_le base o))
      done
  | Max -> ());
  out

let apply_merge op ~into delta =
  let n = min (words into) (words delta) in
  for i = 0 to n - 1 do
    let o = i * 8 in
    let a = Bytes.get_int64_le into o and d = Bytes.get_int64_le delta o in
    let v =
      match op with
      | Add -> Int64.add a d
      | Max -> if Int64.compare d a > 0 then d else a
    in
    Bytes.set_int64_le into o v
  done
