exception Segv of int
exception Write_protect of int

type frame = {
  mutable mode : Partition.mode;
  data : bytes;  (* always Page.size long *)
  mutable dirty : bool;
  mutable last_used : int;  (* logical access clock, for LRU *)
  mutable base : bytes option;
      (* twin: snapshot of [data] as fetched, kept only for segments
         in a relaxed consistency mode.  Release-mode flushes diff
         against it so concurrent writers to disjoint bytes of one
         page don't clobber each other; commutative flushes encode
         their merge delta against it. *)
  mutable base_stamp : int;
      (* node-unique id of the twin snapshot, never reused (a fresh
         one per [snapshot_base]).  Commutative flushes send it as the
         idempotency key for their delta: a re-sent flush repeats the
         stamp only while the twin it diffed against is unchanged. *)
}

type install =
  | Installed
  | Retained
      (* declined, but this node holds a registered copy (resident) or
         a demand fault in flight will register one *)
  | No_copy  (* declined with nothing kept: frame budget *)

type t = {
  params : Params.t;
  cpu : Cpu.t;
  max_frames : int;
  mutable access_clock : int;
  mutable resolver : Sysname.t -> Partition.t;
  mutable consistency : Sysname.t -> Partition.consistency;
  frames : (Sysname.t * int, frame) Hashtbl.t;
  inflight : (Sysname.t * int, unit Sim.Ivar.t) Hashtbl.t;
  poisoned : (Sysname.t * int, unit) Hashtbl.t;
  mutable hook : (Sysname.t -> int -> Partition.mode -> unit) option;
  mutable twin_clock : int;  (* allocator for [base_stamp] *)
  mutable faults : int;
  mutable zero_fills : int;
  mutable upgrades : int;
  mutable evictions : int;
  mutable prefetches : int;
}

let create ?(max_frames = max_int) ~params ~cpu () =
  if max_frames < 1 then invalid_arg "Mmu.create: max_frames must be positive";
  {
    params;
    cpu;
    max_frames;
    access_clock = 0;
    resolver = (fun seg -> raise (Partition.No_segment seg));
    consistency = (fun _ -> Partition.One_copy);
    frames = Hashtbl.create 256;
    inflight = Hashtbl.create 8;
    poisoned = Hashtbl.create 8;
    hook = None;
    twin_clock = 0;
    faults = 0;
    zero_fills = 0;
    upgrades = 0;
    evictions = 0;
    prefetches = 0;
  }

let set_resolver t resolver = t.resolver <- resolver
let set_consistency t f = t.consistency <- f
let set_access_hook t hook = t.hook <- hook

(* Only relaxed-mode segments keep twins; one-copy frames stay
   exactly as before so the default protocol's footprint (and traces)
   are unchanged. *)
let snapshot_base t seg frame =
  match t.consistency seg with
  | Partition.One_copy -> ()
  | Partition.Release | Partition.Commutative _ ->
      t.twin_clock <- t.twin_clock + 1;
      frame.base <- Some (Page.copy frame.data);
      frame.base_stamp <- t.twin_clock

let touch_frame t frame =
  t.access_clock <- t.access_clock + 1;
  frame.last_used <- t.access_clock

(* Evict the least recently used frame to make room, writing it back
   through its partition if dirty (the data server keeps the bytes;
   the next touch refetches). *)
let evict_one t =
  let victim =
    Hashtbl.fold
      (fun key frame acc ->
        match acc with
        | Some (_, best) when best.last_used <= frame.last_used -> acc
        | _ -> Some (key, frame))
      t.frames None
  in
  match victim with
  | None -> ()
  | Some ((seg, page), frame) ->
      Hashtbl.remove t.frames (seg, page);
      t.evictions <- t.evictions + 1;
      if frame.dirty then begin
        let partition = t.resolver seg in
        partition.Partition.writeback ~seg ~page frame.data
      end

let make_room t =
  while Hashtbl.length t.frames >= t.max_frames do
    evict_one t
  done

let mode_sufficient have need =
  match (have, need) with
  | Partition.Write, _ -> true
  | Partition.Read, Partition.Read -> true
  | Partition.Read, Partition.Write -> false

(* Fault a page in (or upgrade its mode), serializing concurrent
   faults on the same page so the partition sees one request.

   [backoff] breaks write-contention livelock: when several nodes
   fight over one page, the coherence manager's invalidation (a tiny
   frame) can overtake the page data still in flight to us, poisoning
   fetch after fetch.  Retrying after a randomized, growing delay
   lets the current owner finish before we steal the page back. *)
let rec ensure_resident ?(backoff = Sim.Time.of_ms_f 4.0) t seg page need =
  let key = (seg, page) in
  match Hashtbl.find_opt t.frames key with
  | Some f when mode_sufficient f.mode need ->
      touch_frame t f;
      f
  | existing -> (
      match Hashtbl.find_opt t.inflight key with
      | Some iv ->
          Sim.Ivar.read iv;
          ensure_resident t seg page need
      | None ->
          let iv = Sim.Ivar.create () in
          Hashtbl.replace t.inflight key iv;
          Fun.protect
            ~finally:(fun () ->
              Hashtbl.remove t.inflight key;
              Sim.Ivar.fill iv ())
            (fun () ->
              let self = Sim.self () in
              Cpu.consume t.cpu ~key:self t.params.Params.fault_trap;
              t.faults <- t.faults + 1;
              if existing <> None then t.upgrades <- t.upgrades + 1;
              let partition = t.resolver seg in
              let fetched = partition.Partition.fetch ~seg ~page ~mode:need in
              let frame =
                match fetched with
                | Partition.Zeroed ->
                    t.zero_fills <- t.zero_fills + 1;
                    Cpu.consume t.cpu ~key:self t.params.Params.fault_zero_fill;
                    {
                      mode = need;
                      data = Page.zero ();
                      dirty = false;
                      last_used = 0;
                      base = None;
                      base_stamp = 0;
                    }
                | Partition.Data b ->
                    Cpu.consume t.cpu ~key:self t.params.Params.fault_copy;
                    let data = Page.zero () in
                    Bytes.blit b 0 data 0 (min (Bytes.length b) Page.size);
                    {
                      mode = need;
                      data;
                      dirty = false;
                      last_used = 0;
                      base = None;
                      base_stamp = 0;
                    }
              in
              snapshot_base t seg frame;
              touch_frame t frame;
              if existing = None then make_room t;
              if Hashtbl.mem t.poisoned key then begin
                (* invalidated while the fetch was in flight: discard
                   and fault again against the server's newer state *)
                Hashtbl.remove t.poisoned key;
                Hashtbl.remove t.frames key;
                None
              end
              else begin
                Hashtbl.replace t.frames key frame;
                Some frame
              end)
          |> function
          | Some frame -> frame
          | None ->
              let rng = Sim.Engine.rng (Sim.engine ()) in
              Sim.sleep (backoff + Sim.Rng.int rng (2 * backoff));
              ensure_resident
                ~backoff:(min (8 * backoff) (Sim.Time.ms 64))
                t seg page need)

(* Walk [addr, addr+len) chunk by chunk, where a chunk never crosses
   a page or mapping boundary, and apply [f frame ~page_off ~buf_off
   ~n] to each piece. *)
let access t vs ~addr ~len ~need f =
  if len < 0 then invalid_arg "Mmu: negative length";
  let self = Sim.self () in
  let pos = ref 0 in
  while !pos < len do
    let va = addr + !pos in
    match Virtual_space.translate vs va with
    | None -> raise (Segv va)
    | Some (m, seg_off) ->
        (match (need, m.Virtual_space.prot) with
        | Partition.Write, Virtual_space.Read_only -> raise (Write_protect va)
        | (Partition.Read | Partition.Write), _ -> ());
        let page = seg_off / Page.size in
        let page_off = seg_off mod Page.size in
        let until_page_end = Page.size - page_off in
        let until_map_end = m.Virtual_space.base + m.Virtual_space.len - va in
        let n = min (len - !pos) (min until_page_end until_map_end) in
        (match t.hook with
        | Some hook -> hook m.Virtual_space.seg page need
        | None -> ());
        let frame = ensure_resident t m.Virtual_space.seg page need in
        if t.params.Params.mem_access_byte_ns > 0 then
          Cpu.consume t.cpu ~key:self (t.params.Params.mem_access_byte_ns * n);
        f frame ~page_off ~buf_off:!pos ~n;
        pos := !pos + n
  done

let read t vs ~addr ~len =
  let out = Bytes.create len in
  access t vs ~addr ~len ~need:Partition.Read
    (fun frame ~page_off ~buf_off ~n ->
      Bytes.blit frame.data page_off out buf_off n);
  out

let write t vs ~addr src =
  let len = Bytes.length src in
  access t vs ~addr ~len ~need:Partition.Write
    (fun frame ~page_off ~buf_off ~n ->
      Bytes.blit src buf_off frame.data page_off n;
      frame.dirty <- true)

let resident t seg page =
  match Hashtbl.find_opt t.frames (seg, page) with
  | Some f -> Some f.mode
  | None -> None

let page_data t seg page =
  match Hashtbl.find_opt t.frames (seg, page) with
  | Some f -> Some (Page.copy f.data)
  | None -> None

let dirty_pages t seg =
  Hashtbl.fold
    (fun (s, page) f acc ->
      if Sysname.equal s seg && f.dirty then (page, Page.copy f.data) :: acc
      else acc)
    t.frames []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let invalidate t seg page =
  if Hashtbl.mem t.inflight (seg, page) then
    Hashtbl.replace t.poisoned (seg, page) ();
  match Hashtbl.find_opt t.frames (seg, page) with
  | None -> None
  | Some f ->
      Hashtbl.remove t.frames (seg, page);
      if f.dirty then Some (Page.copy f.data) else None

let downgrade t seg page =
  if Hashtbl.mem t.inflight (seg, page) then
    Hashtbl.replace t.poisoned (seg, page) ();
  match Hashtbl.find_opt t.frames (seg, page) with
  | None -> None
  | Some f ->
      let dirty = f.dirty in
      f.mode <- Partition.Read;
      f.dirty <- false;
      if dirty then Some (Page.copy f.data) else None

(* Install a speculative read copy shipped alongside a demand fetch.
   Speculation must never displace demand-loaded frames or race a
   fault already in flight, so the install is declined when the page
   is resident, being fetched, poisoned by a concurrent invalidation,
   or the node is at its frame budget.  The result says what the
   decline left behind: [Retained] when this node still holds (or the
   in-flight fault will install and register) a copy, [No_copy] when
   nothing was kept — the caller releases its copyset registration
   only in the latter case.  No CPU is charged: the copy rode an
   existing reply. *)
let install_read t seg page data =
  let key = (seg, page) in
  if
    Hashtbl.mem t.frames key
    || Hashtbl.mem t.inflight key
    || Hashtbl.mem t.poisoned key
  then Retained
  else if Hashtbl.length t.frames >= t.max_frames then No_copy
  else begin
    let page_data = Page.zero () in
    Bytes.blit data 0 page_data 0 (min (Bytes.length data) Page.size);
    let frame =
      {
        mode = Partition.Read;
        data = page_data;
        dirty = false;
        last_used = 0;
        base = None;
        base_stamp = 0;
      }
    in
    snapshot_base t seg frame;
    touch_frame t frame;
    Hashtbl.replace t.frames key frame;
    t.prefetches <- t.prefetches + 1;
    Installed
  end

let mark_clean t seg page =
  match Hashtbl.find_opt t.frames (seg, page) with
  | Some f -> f.dirty <- false
  | None -> ()

let is_dirty t seg page =
  match Hashtbl.find_opt t.frames (seg, page) with
  | Some f -> f.dirty
  | None -> false

let page_base t seg page =
  match Hashtbl.find_opt t.frames (seg, page) with
  | Some { base = Some b; _ } -> Some (Page.copy b)
  | _ -> None

let twin_stamp t seg page =
  match Hashtbl.find_opt t.frames (seg, page) with
  | Some { base = Some _; base_stamp; _ } -> base_stamp
  | _ -> 0

(* After a relaxed-mode flush: the home now holds this image, so it
   becomes the frame's new twin (and, for commutative refresh, its
   contents). *)
let merge_refresh t seg page data =
  match Hashtbl.find_opt t.frames (seg, page) with
  | None -> ()
  | Some f ->
      Bytes.blit data 0 f.data 0 (min (Bytes.length data) Page.size);
      f.dirty <- false;
      snapshot_base t seg f

let rebase t seg page =
  match Hashtbl.find_opt t.frames (seg, page) with
  | None -> ()
  | Some f -> snapshot_base t seg f

let segment_pages t seg =
  Hashtbl.fold
    (fun (s, page) _ acc -> if Sysname.equal s seg then page :: acc else acc)
    t.frames []
  |> List.sort Int.compare

let drop_segment t seg =
  let keys =
    Hashtbl.fold
      (fun (s, page) _ acc ->
        if Sysname.equal s seg then (s, page) :: acc else acc)
      t.frames []
  in
  List.iter (Hashtbl.remove t.frames) keys

let clear t =
  Hashtbl.reset t.frames;
  Hashtbl.reset t.inflight;
  Hashtbl.reset t.poisoned

let faults t = t.faults
let zero_fills t = t.zero_fills
let upgrades t = t.upgrades
let evictions t = t.evictions
let prefetches t = t.prefetches
let resident_frames t = Hashtbl.length t.frames
