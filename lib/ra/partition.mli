(** Partitions: Ra's interface to non-volatile segment storage.

    Ra only defines the interface; implementations are system
    objects.  The [store] library provides a local-disk partition for
    data servers; the [dsm] library provides the DSM client partition
    that compute servers use to demand-page segments over the network
    with coherence. *)

type mode = Read | Write

type fetch_data =
  | Zeroed  (** the page has never been written; zero-fill a frame *)
  | Data of bytes  (** page contents *)

exception No_segment of Sysname.t
(** Raised by partition operations when the segment does not exist
    (deleted or never created). *)

type t = {
  name : string;
  fetch : seg:Sysname.t -> page:int -> mode:mode -> fetch_data;
      (** Obtain a page in the given mode; blocks (disk or network).
          Fetching in [Write] mode acquires ownership under the
          coherence protocol. *)
  writeback : seg:Sysname.t -> page:int -> bytes -> unit;
      (** Push a dirty page back to stable storage. *)
}

val pp_mode : Format.formatter -> mode -> unit

(** {1 Consistency modes}

    Per-segment coherence policy, threaded from segment creation down
    through the DSM client/server and the MMU.  [One_copy] is the
    paper's Li–Hudak write-invalidate protocol and the default.
    [Release] defers copyset invalidation to the flush that ends a
    lock scope (writes upgrade locally; the home batches one
    invalidation burst when the dirty pages land).  [Commutative]
    segments declare a word-wise merge operator; writes apply locally
    with no coherence traffic and replicas exchange deltas on flush
    boundaries. *)

type merge = Add | Max

type consistency = One_copy | Release | Commutative of merge

val pp_merge : Format.formatter -> merge -> unit
val pp_consistency : Format.formatter -> consistency -> unit

val merge_delta : merge -> base:bytes -> current:bytes -> bytes
(** [merge_delta op ~base ~current] encodes a replica's local writes
    as a delta page: word-wise [current - base] for [Add], the
    absolute [current] words for [Max].  Operates on the common
    prefix of whole 64-bit little-endian words. *)

val apply_merge : merge -> into:bytes -> bytes -> unit
(** [apply_merge op ~into delta] combines a delta page into a home
    copy in place: word-wise addition for [Add], word-wise maximum
    for [Max]. *)
