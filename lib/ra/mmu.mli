(** Per-node memory management.

    The MMU tracks which segment pages are resident on this node and
    in what mode, services page faults through the partition that
    owns each segment, and charges the calibrated fault costs: a
    fixed trap overhead plus either a data-copy or a zero-fill cost
    (the paper's 0.629 ms vs 1.5 ms for an 8K page).

    All data access by simulated programs goes through {!read} and
    {!write}, which walk the virtual space, fault pages in as needed
    and move real bytes, so coherence bugs surface as wrong data in
    tests. *)

type t

exception Segv of int
(** Access to an unmapped address. *)

exception Write_protect of int
(** Write through a read-only mapping. *)

val create : ?max_frames:int -> params:Params.t -> cpu:Cpu.t -> unit -> t
(** The partition resolver must be set before the first fault.
    [max_frames] bounds physical memory: when the node holds that
    many page frames, faulting another page evicts the least recently
    used frame (writing it back through its partition if dirty).  The
    default is effectively unbounded. *)

val set_resolver : t -> (Sysname.t -> Partition.t) -> unit
(** [resolver seg] is the partition that stores [seg]; it should
    raise {!Partition.No_segment} for unknown segments. *)

val set_consistency : t -> (Sysname.t -> Partition.consistency) -> unit
(** [consistency seg] is the coherence mode of [seg] (default: every
    segment is {!Partition.One_copy}).  Frames of [Release] and
    [Commutative] segments keep a twin — a snapshot of the page as
    fetched — so flushes can diff or delta against it. *)

val set_access_hook : t -> (Sysname.t -> int -> Partition.mode -> unit) option -> unit
(** Hook called before every page access with (segment, page, mode);
    used by the atomicity layer to acquire segment locks and record
    read/write sets.  The hook runs in the accessing process. *)

val read : t -> Virtual_space.t -> addr:int -> len:int -> bytes
(** Read [len] bytes at virtual address [addr], faulting pages in as
    needed. *)

val write : t -> Virtual_space.t -> addr:int -> bytes -> unit
(** Write bytes at [addr]; pages are faulted in write mode. *)

val resident : t -> Sysname.t -> int -> Partition.mode option
(** Residency and mode of a page frame on this node. *)

val page_data : t -> Sysname.t -> int -> bytes option
(** Copy of the resident frame's contents (tests, commit processing). *)

val dirty_pages : t -> Sysname.t -> (int * bytes) list
(** Dirty resident pages of a segment, sorted by page index. *)

val invalidate : t -> Sysname.t -> int -> bytes option
(** Drop the frame, returning its data if it was dirty (the caller
    forwards it to the requesting node or discards it to abort). *)

val downgrade : t -> Sysname.t -> int -> bytes option
(** Demote a write frame to read mode, returning the data if dirty. *)

type install =
  | Installed  (** the image is now a clean resident read copy *)
  | Retained
      (** declined, but this node keeps a live claim on the page: it
          is already resident, or a demand fault in flight will
          install (and register) a copy when it completes.  The
          copyset registration at the server is still needed. *)
  | No_copy
      (** declined with nothing kept (frame budget): the caller
          should release its copyset registration for the page. *)

val install_read : t -> Sysname.t -> int -> bytes -> install
(** Install a prefetched page image as a clean read copy without
    charging fault costs.  Declines ([Retained]) if the page is
    already resident or a fault on it is in flight, and ([No_copy])
    at the frame budget — speculation never evicts demand-loaded
    frames.  The caller must already hold a copyset registration for
    the page at its server, and should keep it exactly when the
    result is not [No_copy]. *)

val mark_clean : t -> Sysname.t -> int -> unit
(** Clear the dirty bit after a successful writeback/commit. *)

val is_dirty : t -> Sysname.t -> int -> bool
(** Whether the page is resident with unwritten-back writes. *)

val page_base : t -> Sysname.t -> int -> bytes option
(** Copy of the frame's twin (the page as fetched), if the segment's
    consistency mode keeps one. *)

val twin_stamp : t -> Sysname.t -> int -> int
(** Node-unique id of the frame's current twin snapshot (0 when the
    frame is gone or keeps no twin).  Stamps are never reused, so a
    commutative flush can use them as the idempotency key for its
    deltas: the stamp repeats exactly when a flush is re-sent against
    an unchanged twin after a client-visible timeout. *)

val merge_refresh : t -> Sysname.t -> int -> bytes -> unit
(** Overwrite a resident frame with the post-flush home image, mark
    it clean and make the image the new twin.  No-op if the frame is
    gone (invalidated meanwhile). *)

val rebase : t -> Sysname.t -> int -> unit
(** Re-snapshot a resident frame's twin from its current contents
    (after a flush pushed those contents home). *)

val segment_pages : t -> Sysname.t -> int list
(** Resident page indices of a segment, sorted. *)

val drop_segment : t -> Sysname.t -> unit
(** Invalidate every frame of a segment (abort path / deletion). *)

val clear : t -> unit
(** Drop all frames (machine crash: volatile contents are lost). *)

val faults : t -> int
val zero_fills : t -> int
val upgrades : t -> int

val evictions : t -> int
(** Frames evicted to make room (see [max_frames]). *)

val prefetches : t -> int
(** Read copies installed via {!install_read}. *)

val resident_frames : t -> int
(** Frames currently held. *)
