(** A shared-bus 10 Mbit Ethernet.

    One segment connects every machine in the cluster, as in the
    paper's prototype.  Transmissions serialize on the bus (CSMA/CD
    modeled as FIFO arbitration); a frame occupies the wire for its
    size divided by the bandwidth plus a fixed gap, then arrives at
    the destination NIC(s) after the propagation delay, unless the
    fault model drops it.  Host-side costs are charged on the sending
    process (here) and the receiving process ({!Nic.recv}), so bulk
    transfers naturally pipeline sender processing with wire time. *)

type config = {
  bandwidth_bps : int;  (** wire speed; 10 Mbit/s in the paper *)
  propagation : Sim.Time.span;  (** end-to-end signal delay *)
  frame_gap : Sim.Time.span;  (** preamble + interframe gap *)
  mtu_payload : int;  (** max payload bytes per frame *)
  send_cost_per_frame : Sim.Time.span;  (** host driver cost, sending *)
  recv_cost_per_frame : Sim.Time.span;  (** host driver cost, receiving *)
  cost_per_byte_ns : int;  (** host copy cost per byte, each side *)
}

val default_config : config
(** Calibrated so that a 72-byte round trip costs about 2.4 ms, as
    measured in the paper (§4.3). *)

type t

val create : Sim.Engine.t -> ?config:config -> unit -> t

val config : t -> config
val fault : t -> Fault.t
val engine : t -> Sim.Engine.t

val attach : t -> Address.t -> Nic.t
(** Join the segment.  Raises [Invalid_argument] if the address is
    taken. *)

val nic : t -> Address.t -> Nic.t option

val detach : t -> Address.t -> unit
(** Take the NIC offline (machine crash).  Frames to it are dropped. *)

val reattach : t -> Address.t -> unit

val transmit : t -> Frame.t -> unit
(** Send a frame from a process: charges the sender's host cost,
    waits for the bus, occupies it for the wire time, and schedules
    delivery.  Raises [Invalid_argument] if the payload exceeds the
    MTU. *)

val transmit_prepared : t -> Frame.t -> unit
(** Like {!transmit} but without charging the sender's host cost: for
    tx loops that overlap the driver cost of fragment [i+1] with the
    wire time of fragment [i] and account for it themselves
    ({!host_send_cost}). *)

val host_send_cost : config -> Frame.t -> Sim.Time.span
(** Sender-side driver cost {!transmit} charges for a frame. *)

val wire_time : config -> int -> Sim.Time.span
(** [wire_time cfg bytes] is bus occupancy for a frame of that size. *)

val frames_sent : t -> int
val bytes_sent : t -> int
