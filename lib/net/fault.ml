(* Faults are decided per frame per destination at delivery time.
   Every random draw comes from one stream split off the engine's
   root RNG, and draws happen in event order, so a given seed always
   produces the same fault schedule. *)

type profile = {
  drop : float;
  dup : float;
  delay : Sim.Time.span;
  reorder : float;
  reorder_by : Sim.Time.span;
  burst : float;
  burst_len : int;
}

let pristine =
  {
    drop = 0.0;
    dup = 0.0;
    delay = 0;
    reorder = 0.0;
    reorder_by = 0;
    burst = 0.0;
    burst_len = 0;
  }

let check_profile p =
  let prob name v =
    if v < 0.0 || v > 1.0 then
      invalid_arg (Printf.sprintf "Fault: %s not a probability" name)
  in
  prob "drop" p.drop;
  prob "dup" p.dup;
  prob "reorder" p.reorder;
  prob "burst" p.burst;
  if p.delay < 0 || p.reorder_by < 0 then invalid_arg "Fault: negative span";
  if p.burst_len < 0 then invalid_arg "Fault: negative burst_len"

type filter = src:Address.t -> dst:Address.t -> Frame.t -> bool

type t = {
  eng : Sim.Engine.t;
  rng : Sim.Rng.t;
  mutable default_profile : profile;
  links : (Address.t * Address.t, profile) Hashtbl.t;
  bursts : (Address.t * Address.t, int ref) Hashtbl.t;
  cuts : (Address.t * Address.t, unit) Hashtbl.t;
  mutable filter : filter option;
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
}

let create eng rng =
  {
    eng;
    rng;
    default_profile = pristine;
    links = Hashtbl.create 8;
    bursts = Hashtbl.create 8;
    cuts = Hashtbl.create 8;
    filter = None;
    dropped = 0;
    duplicated = 0;
    reordered = 0;
  }

let set_default t p =
  check_profile p;
  t.default_profile <- p

let set_link t a b p =
  check_profile p;
  Hashtbl.replace t.links (a, b) p

let set_link_both t a b p =
  set_link t a b p;
  set_link t b a p

let clear_link t a b = Hashtbl.remove t.links (a, b)

let set_drop_probability t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Fault.set_drop_probability";
  t.default_profile <- { t.default_profile with drop = p }

let set_filter t f = t.filter <- Some f
let clear_filter t = t.filter <- None

let cut t a b = Hashtbl.replace t.cuts (a, b) ()

let cut_both t a b =
  cut t a b;
  cut t b a

let heal t a b = Hashtbl.remove t.cuts (a, b)

let heal_both t a b =
  heal t a b;
  heal t b a

let partition_for t a b span =
  cut_both t a b;
  Sim.Engine.at t.eng
    (Sim.Time.add (Sim.Engine.now t.eng) span)
    (fun () -> heal_both t a b)

let partition_between t left right ~after ~for_ =
  let each f = List.iter (fun a -> List.iter (fun b -> f a b) right) left in
  let start = Sim.Time.add (Sim.Engine.now t.eng) after in
  Sim.Engine.at t.eng start (fun () -> each (cut_both t));
  Sim.Engine.at t.eng (Sim.Time.add start for_) (fun () -> each (heal_both t))

let profile_for t key =
  match Hashtbl.find_opt t.links key with
  | Some p -> p
  | None -> t.default_profile

let burst_state t key =
  match Hashtbl.find_opt t.bursts key with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace t.bursts key r;
      r

(* The delays (in extra time past normal arrival) of every copy of
   the frame to deliver; [] means the frame is lost.  [frame] is
   [None] when called through the legacy {!deliverable} probe, which
   bypasses the payload filter. *)
let decide t ~src ~dst frame =
  let key = (src, dst) in
  let drop () =
    t.dropped <- t.dropped + 1;
    []
  in
  if Hashtbl.mem t.cuts key then drop ()
  else
    let filtered =
      match (t.filter, frame) with
      | Some f, Some frame -> not (f ~src ~dst frame)
      | _ -> false
    in
    if filtered then drop ()
    else
      let p = profile_for t key in
      let b = burst_state t key in
      if !b > 0 then begin
        decr b;
        drop ()
      end
      else if p.burst > 0.0 && Sim.Rng.chance t.rng p.burst then begin
        b := max 0 (p.burst_len - 1);
        drop ()
      end
      else if p.drop > 0.0 && Sim.Rng.chance t.rng p.drop then drop ()
      else begin
        let jitter () =
          if p.delay > 0 then Sim.Rng.int t.rng (p.delay + 1) else 0
        in
        let extra =
          let base = jitter () in
          if p.reorder > 0.0 && Sim.Rng.chance t.rng p.reorder then begin
            t.reordered <- t.reordered + 1;
            base + p.reorder_by
          end
          else base
        in
        if p.dup > 0.0 && Sim.Rng.chance t.rng p.dup then begin
          t.duplicated <- t.duplicated + 1;
          [ extra; extra + jitter () ]
        end
        else [ extra ]
      end

let plan t ~src ~dst frame = decide t ~src ~dst (Some frame)
let deliverable t ~src ~dst = decide t ~src ~dst None <> []

let drops t = t.dropped
let duplicates t = t.duplicated
let reorders t = t.reordered
