type config = {
  bandwidth_bps : int;
  propagation : Sim.Time.span;
  frame_gap : Sim.Time.span;
  mtu_payload : int;
  send_cost_per_frame : Sim.Time.span;
  recv_cost_per_frame : Sim.Time.span;
  cost_per_byte_ns : int;
}

let default_config =
  {
    bandwidth_bps = 10_000_000;
    propagation = Sim.Time.us 5;
    frame_gap = Sim.Time.us 10;
    mtu_payload = 1482;
    send_cost_per_frame = Sim.Time.us 550;
    recv_cost_per_frame = Sim.Time.us 550;
    cost_per_byte_ns = 20;
  }

type t = {
  eng : Sim.Engine.t;
  cfg : config;
  fault : Fault.t;
  nics : (Address.t, Nic.t) Hashtbl.t;
  bus : Sim.Mutex.t;
  frames : Sim.Stats.counter;
  bytes : Sim.Stats.counter;
}

let create eng ?(config = default_config) () =
  {
    eng;
    cfg = config;
    fault = Fault.create eng (Sim.Rng.split (Sim.Engine.rng eng));
    nics = Hashtbl.create 16;
    bus = Sim.Mutex.create ~label:"ether-bus" ();
    frames = Sim.Stats.counter "ether.frames";
    bytes = Sim.Stats.counter "ether.bytes";
  }

let config t = t.cfg
let fault t = t.fault
let engine t = t.eng

let attach t addr =
  if Hashtbl.mem t.nics addr then
    invalid_arg "Ethernet.attach: address in use";
  let nic =
    Nic.create ~addr ~recv_cost_per_frame:t.cfg.recv_cost_per_frame
      ~recv_cost_per_byte_ns:t.cfg.cost_per_byte_ns
  in
  Hashtbl.replace t.nics addr nic;
  nic

let nic t addr = Hashtbl.find_opt t.nics addr

let detach t addr =
  match nic t addr with Some n -> Nic.set_attached n false | None -> ()

let reattach t addr =
  match nic t addr with Some n -> Nic.set_attached n true | None -> ()

let wire_time cfg bytes =
  let bits = bytes * 8 in
  let ns = int_of_float (float_of_int bits /. float_of_int cfg.bandwidth_bps *. 1e9) in
  ns + cfg.frame_gap

(* Delivery happens [propagation] after the wire time ends; faults
   are evaluated per destination at delivery time.  The fault plan
   may suppress the frame, deliver extra copies, or push a copy
   later (jitter / reordering). *)
let deliver t (frame : Frame.t) =
  let deliver_to addr =
    let push () =
      match Hashtbl.find_opt t.nics addr with
      | Some n -> Nic.deliver n frame
      | None -> ()
    in
    List.iter
      (fun extra ->
        if extra <= 0 then push ()
        else
          Sim.Engine.at t.eng
            (Sim.Time.add (Sim.Engine.now t.eng) extra)
            push)
      (Fault.plan t.fault ~src:frame.src ~dst:addr frame)
  in
  match frame.dst with
  | Frame.Unicast addr -> deliver_to addr
  | Frame.Broadcast ->
      let addrs =
        Hashtbl.fold
          (fun addr _ acc ->
            if Address.equal addr frame.src then acc else addr :: acc)
          t.nics []
      in
      List.iter deliver_to (List.sort Address.compare addrs)

let host_send_cost cfg (frame : Frame.t) =
  cfg.send_cost_per_frame + (cfg.cost_per_byte_ns * frame.bytes)

let transmit_prepared t (frame : Frame.t) =
  if frame.bytes - Frame.header_bytes > t.cfg.mtu_payload then
    invalid_arg "Ethernet.transmit: payload exceeds MTU";
  Sim.Mutex.with_lock t.bus (fun () ->
      Sim.sleep (wire_time t.cfg frame.bytes);
      Sim.Stats.incr t.frames;
      Sim.Stats.incr_by t.bytes frame.bytes;
      let arrival = Sim.Time.add (Sim.now ()) t.cfg.propagation in
      Sim.Engine.at t.eng arrival (fun () -> deliver t frame))

let transmit t (frame : Frame.t) =
  if frame.bytes - Frame.header_bytes > t.cfg.mtu_payload then
    invalid_arg "Ethernet.transmit: payload exceeds MTU";
  Sim.sleep (host_send_cost t.cfg frame);
  transmit_prepared t frame

let frames_sent t = Sim.Stats.value t.frames
let bytes_sent t = Sim.Stats.value t.bytes
