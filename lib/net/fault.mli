(** Deterministic network fault injection.

    Faults are applied at delivery time, per frame and per
    destination.  A {!profile} describes a link's misbehaviour —
    probabilistic loss, duplication, delivery jitter, reordering, and
    bursty loss — and may be installed as the segment-wide default or
    per directed link.  On top of profiles sit hard link cuts
    (optionally timed: partitions that heal themselves) and an
    arbitrary payload filter for protocol-aware scripting (e.g. "drop
    every RaTP ack").

    All randomness is drawn from one stream split off the engine's
    root RNG, and draws happen in deterministic event order, so the
    whole fault schedule is reproducible from the simulation seed.
    Tests and experiments drive these to exercise RaTP
    retransmission, DSM recovery, transaction recovery, and PET
    failure tolerance. *)

type t

type profile = {
  drop : float;  (** per-frame loss probability *)
  dup : float;  (** per-frame duplication probability *)
  delay : Sim.Time.span;
      (** max extra delivery delay, uniform in [0, delay] *)
  reorder : float;
      (** probability a frame is additionally held back by
          [reorder_by], overtaking later traffic *)
  reorder_by : Sim.Time.span;
  burst : float;  (** probability a frame opens a loss burst *)
  burst_len : int;  (** frames lost per burst (including the opener) *)
}

val pristine : profile
(** Delivers everything, immediately, exactly once. *)

val create : Sim.Engine.t -> Sim.Rng.t -> t
(** A fault model that initially delivers everything. *)

val set_default : t -> profile -> unit
(** Profile applied to links without an override. *)

val set_link : t -> Address.t -> Address.t -> profile -> unit
(** Override the profile for one directed link. *)

val set_link_both : t -> Address.t -> Address.t -> profile -> unit

val clear_link : t -> Address.t -> Address.t -> unit
(** Remove a per-link override (back to the default profile). *)

val set_drop_probability : t -> float -> unit
(** Uniform loss probability applied to every frame: shorthand for
    updating the default profile's [drop]. *)

val set_filter : t -> (src:Address.t -> dst:Address.t -> Frame.t -> bool) -> unit
(** Install a payload-aware filter consulted before the profile; a
    [false] return drops the frame (counted in {!drops}).  Used by
    scenarios to target specific protocol messages. *)

val clear_filter : t -> unit

val cut : t -> Address.t -> Address.t -> unit
(** Drop all frames from the first address to the second (one
    direction). *)

val cut_both : t -> Address.t -> Address.t -> unit
(** Cut both directions. *)

val heal : t -> Address.t -> Address.t -> unit
(** Undo {!cut} for that direction. *)

val heal_both : t -> Address.t -> Address.t -> unit

val partition_for : t -> Address.t -> Address.t -> Sim.Time.span -> unit
(** [partition_for t a b span] cuts both directions now and heals
    them [span] later. *)

val partition_between :
  t ->
  Address.t list ->
  Address.t list ->
  after:Sim.Time.span ->
  for_:Sim.Time.span ->
  unit
(** [partition_between t left right ~after ~for_] schedules a full
    bidirectional partition between the two sets of machines,
    starting [after] from now and healing [for_] later. *)

val plan : t -> src:Address.t -> dst:Address.t -> Frame.t -> Sim.Time.span list
(** Decide the fate of one frame for one destination: the extra
    delivery delay of each surviving copy ([[0]] for a normal
    delivery, [[]] for a loss, two elements for a duplication). *)

val deliverable : t -> src:Address.t -> dst:Address.t -> bool
(** Legacy probe: would a frame on this link survive right now?
    Draws randomness like {!plan} but ignores the payload filter. *)

val drops : t -> int
(** Total frames dropped so far (cuts, filter, loss, bursts). *)

val duplicates : t -> int
(** Total frames duplicated so far. *)

val reorders : t -> int
(** Total frames held back for reordering so far. *)
