(* Causal spans over the simulation.

   A tracer records a forest of named spans: each client invocation
   roots a trace, and every mechanism layer it touches (transport
   call, DSM fault, coherence fan-out, 2PC round) opens a child span
   under whatever span its process is currently inside.  Context is
   ambient — a table keyed by sim pid, the same discipline as
   [Atomicity.Manager]'s per-pid transaction table — so layers need
   no extra parameters.  Two explicit bridges carry context across
   the places where causality leaves the current process:

   - RPC: all simulated nodes live in one OCaml process, so a
     side-channel table keyed by the RaTP transaction id (origin,
     seq) links the client's call span to the server's handler
     process ([offer]/[accept]/[retract]); nothing is added to the
     wire format, so packet sizes and timing are untouched.
   - Fan-out: [Sim.Fanout] workers run under fresh pids; the caller
     captures [current ()] and re-binds it in each worker with
     [under].

   Tracing only ever reads the sim clock — it never sleeps, spawns
   or schedules — so an enabled tracer cannot perturb simulated
   results: traced and untraced runs of the same seed produce
   byte-identical metrics.  With no tracer installed every hook is
   one branch ([!active] match against [None]). *)

type span = {
  id : int; (* creation order, unique per tracer *)
  trace : int; (* trace (root-span family) id *)
  parent : int; (* parent span id, -1 for roots *)
  name : string;
  node : int; (* originating node address, -1 if unknown *)
  start : Sim.Time.t;
  mutable stop : Sim.Time.t; (* = start until finished *)
}

type t = {
  mutable spans : span array;
  mutable count : int;
  mutable next_trace : int;
  current : (Sim.Engine.pid, span) Hashtbl.t; (* innermost open span *)
  cross : (int * int, span) Hashtbl.t; (* rpc (origin, seq) -> caller *)
}

let create () =
  {
    spans = [||];
    count = 0;
    next_trace = 0;
    current = Hashtbl.create 64;
    cross = Hashtbl.create 64;
  }

(* The installed tracer; [None] (the default) disables every hook. *)
let active : t option ref = ref None

let install t = active := Some t
let uninstall () = active := None
let on () = !active <> None

let push tr sp =
  if tr.count = Array.length tr.spans then begin
    let grown = Array.make (max 256 (2 * tr.count)) sp in
    Array.blit tr.spans 0 grown 0 tr.count;
    tr.spans <- grown
  end;
  tr.spans.(tr.count) <- sp;
  tr.count <- tr.count + 1

type handle =
  | No_span
  | Started of { tr : t; sp : span; prev : span option; pid : Sim.Engine.pid }

let start ?(node = -1) name =
  match !active with
  | None -> No_span
  | Some tr ->
      let pid = Sim.self () in
      let prev = Hashtbl.find_opt tr.current pid in
      let trace, parent =
        match prev with
        | Some p -> (p.trace, p.id)
        | None ->
            let tid = tr.next_trace in
            tr.next_trace <- tid + 1;
            (tid, -1)
      in
      let now = Sim.now () in
      let sp =
        { id = tr.count; trace; parent; name; node; start = now; stop = now }
      in
      push tr sp;
      Hashtbl.replace tr.current pid sp;
      Started { tr; sp; prev; pid }

let finish = function
  | No_span -> ()
  | Started { tr; sp; prev; pid } ->
      sp.stop <- Sim.now ();
      (match prev with
      | Some p -> Hashtbl.replace tr.current pid p
      | None -> Hashtbl.remove tr.current pid)

let with_span ?node name f =
  match !active with
  | None -> f ()
  | Some _ ->
      let h = start ?node name in
      Fun.protect ~finally:(fun () -> finish h) f

type ctx = span option

let current () =
  match !active with
  | None -> None
  | Some tr -> Hashtbl.find_opt tr.current (Sim.self ())

let under ctx f =
  match (!active, ctx) with
  | Some tr, Some sp ->
      let pid = Sim.self () in
      let prev = Hashtbl.find_opt tr.current pid in
      Hashtbl.replace tr.current pid sp;
      Fun.protect f ~finally:(fun () ->
          match prev with
          | Some p -> Hashtbl.replace tr.current pid p
          | None -> Hashtbl.remove tr.current pid)
  | _ -> f ()

let offer ~origin ~seq =
  match !active with
  | None -> ()
  | Some tr -> (
      match Hashtbl.find_opt tr.current (Sim.self ()) with
      | Some sp -> Hashtbl.replace tr.cross (origin, seq) sp
      | None -> ())

let retract ~origin ~seq =
  match !active with
  | None -> ()
  | Some tr -> Hashtbl.remove tr.cross (origin, seq)

let accept ~origin ~seq f =
  match !active with
  | None -> f ()
  | Some tr -> under (Hashtbl.find_opt tr.cross (origin, seq)) f

let span_count t = t.count
let get t i = t.spans.(i)

let iter t f =
  for i = 0 to t.count - 1 do
    f t.spans.(i)
  done

let spans t = List.init t.count (fun i -> t.spans.(i))

let duration_ms sp = Sim.Time.(to_ms_f (diff sp.stop sp.start))

let reset t =
  t.spans <- [||];
  t.count <- 0;
  t.next_trace <- 0;
  Hashtbl.reset t.current;
  Hashtbl.reset t.cross
