(** Exports over a finished tracer.

    Deterministic renderings: Chrome trace-event JSON (Perfetto /
    chrome://tracing), a per-trace transport/fault/commit stage
    breakdown, a text critical-path report, and a dependency-free
    JSON reader used to validate our own exports. *)

type stage = Transport | Fault | Commit | Other

val stage_of : string -> stage
(** Map a span name onto its mechanism layer: ["rpc"] is transport;
    DSM fault, coherence and page-serving spans are fault; locking
    and commit-protocol spans are commit; the rest (request/invoke
    envelopes, compute) are other. *)

val stage_label : stage -> string

type stages = {
  mutable transport_ms : float;
  mutable fault_ms : float;
  mutable commit_ms : float;
  mutable other_ms : float;
}

type trace_sum = {
  trace : int;
  root : string;  (** root span name *)
  total_ms : float;  (** root span duration *)
  mutable nspans : int;
  st : stages;  (** per-stage self time (duration minus children) *)
}

val per_trace : Tracer.t -> trace_sum list
(** One stage decomposition per trace, in trace-creation order.
    Self time clamps at 0 for parents of concurrent fan-out
    children, so the stage sums are a cost decomposition rather than
    a wall-clock partition. *)

val report : ?root:string -> Tracer.t -> string
(** Text critical-path report over traces rooted at [root] (default
    ["request"]): mean stage decomposition plus the actual traces at
    p50/p95/p99 of total latency. *)

type summary = {
  traces : int;
  spans : int;
  s_mean : stages;
  p50 : trace_sum option;
  p95 : trace_sum option;
  p99 : trace_sum option;
}

val summarize : ?root:string -> Tracer.t -> summary
(** The report's numbers in machine-readable form (bench "obs"
    section). *)

val chrome_json : Tracer.t -> string
(** Chrome trace-event JSON: one complete ("X") event per span,
    ts/dur in microseconds, tid = trace id, pid = node address. *)

(** Minimal JSON values, for validating exports without a JSON
    dependency. *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val parse : string -> (json, string) result
(** Strict parse of one JSON document (non-ASCII [\u] escapes are
    replaced, not decoded). *)

val member : string -> json -> json option

val validate_chrome : string -> (int, string) result
(** Check a string is valid JSON with a non-empty [traceEvents]
    array of well-formed complete events; returns the event count. *)
