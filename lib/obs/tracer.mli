(** Causal tracing: per-invocation trace ids with parent/child spans.

    A span names one stage of one invocation (an RPC, a DSM fault, a
    2PC round).  Context is ambient per sim process; [offer]/[accept]
    bridge it across RPC boundaries (keyed by the RaTP transaction
    id, nothing added to the wire) and [current]/[under] across
    fan-out workers.  With no tracer installed every hook costs one
    branch; an installed tracer only reads the sim clock, so it
    cannot change simulated results. *)

type span = {
  id : int;  (** creation order, unique per tracer *)
  trace : int;  (** trace (root family) id *)
  parent : int;  (** parent span id, -1 for roots *)
  name : string;
  node : int;  (** originating node address, -1 if unknown *)
  start : Sim.Time.t;
  mutable stop : Sim.Time.t;  (** = [start] until finished *)
}

type t

val create : unit -> t

val install : t -> unit
(** Make [t] the ambient tracer every instrumentation hook records
    into.  One tracer at a time. *)

val uninstall : unit -> unit

val on : unit -> bool
(** Is a tracer installed?  For guarding trace-only work. *)

type handle
(** An open span.  [No_span] when tracing is off — [finish] on it is
    free. *)

val start : ?node:int -> string -> handle
(** Open a span under the current process's innermost open span (a
    fresh trace root if there is none).  Must run inside a sim
    process. *)

val finish : handle -> unit
(** Close the span at the current sim time and restore the previous
    context.  Close spans LIFO per process. *)

val with_span : ?node:int -> string -> (unit -> 'a) -> 'a
(** [start]/[finish] around [f], exception-safe — use wherever the
    body can raise ([Unavailable], abort signals). *)

type ctx

val current : unit -> ctx
(** The calling process's innermost open span, to re-bind in workers
    running under other pids. *)

val under : ctx -> (unit -> 'a) -> 'a
(** Run [f] with the given span as the calling process's context:
    spans [f] opens become its children.  No-op context when tracing
    is off. *)

val offer : origin:int -> seq:int -> unit
(** Publish the caller's context under an RPC transaction id, before
    the request is sent. *)

val retract : origin:int -> seq:int -> unit
(** Drop a published context (pair with [offer], after the call). *)

val accept : origin:int -> seq:int -> (unit -> 'a) -> 'a
(** Run an RPC handler under the caller's published context, so
    server-side spans parent under the client's call span. *)

val span_count : t -> int
val get : t -> int -> span
val iter : t -> (span -> unit) -> unit
val spans : t -> span list

val duration_ms : span -> float

val reset : t -> unit
