(* Exports over a finished tracer: Chrome trace-event JSON (loadable
   in Perfetto / chrome://tracing), a per-trace stage breakdown, and
   a text critical-path report.  All output is deterministic: spans
   render in creation order with fixed float formatting. *)

(* ------------------------------------------------------------------ *)
(* Stage classification.

   Span names map onto the paper's mechanism layers: [transport] is
   RaTP call time, [fault] is DSM page movement and coherence,
   [commit] is locking and commit protocol work, everything else
   (activation, user compute, queueing inside the request) is
   [other].  A span's *self time* — its duration minus the durations
   of its children — is charged to its own stage, so an RPC issued
   by a 2PC round counts as transport, not commit. *)

type stage = Transport | Fault | Commit | Other

let stage_of = function
  | "rpc" -> Transport
  | "2pc.prepare" | "2pc.commit" | "2pc.abort" | "lcp.commit" | "txn.lock"
  | "serve.prepare" | "serve.commit" | "serve.abort" | "serve.lock" ->
      Commit
  | name
    when String.length name >= 4 && String.equal (String.sub name 0 4) "dsm."
    ->
      Fault
  | name
    when String.length name >= 6 && String.equal (String.sub name 0 6) "serve."
    ->
      Fault
  | _ -> Other

let stage_label = function
  | Transport -> "transport"
  | Fault -> "fault"
  | Commit -> "commit"
  | Other -> "other"

(* ------------------------------------------------------------------ *)
(* Per-trace stage breakdown *)

type stages = {
  mutable transport_ms : float;
  mutable fault_ms : float;
  mutable commit_ms : float;
  mutable other_ms : float;
}

type trace_sum = {
  trace : int;
  root : string;  (* root span name *)
  total_ms : float;  (* root span duration *)
  mutable nspans : int;
  st : stages;
}

let bump st stage v =
  match stage with
  | Transport -> st.transport_ms <- st.transport_ms +. v
  | Fault -> st.fault_ms <- st.fault_ms +. v
  | Commit -> st.commit_ms <- st.commit_ms +. v
  | Other -> st.other_ms <- st.other_ms +. v

(* Self time clamps at 0: fan-out children run concurrently, so
   their summed durations can exceed the parent's wall time — the
   breakdown is a cost decomposition, not a wall-clock partition. *)
let per_trace (t : Tracer.t) =
  let n = Tracer.span_count t in
  let child_sum = Array.make (max n 1) 0.0 in
  Tracer.iter t (fun sp ->
      if sp.Tracer.parent >= 0 then
        child_sum.(sp.Tracer.parent) <-
          child_sum.(sp.Tracer.parent) +. Tracer.duration_ms sp);
  let traces = Hashtbl.create 256 in
  let order = ref [] in
  Tracer.iter t (fun sp ->
      let ts =
        match Hashtbl.find_opt traces sp.Tracer.trace with
        | Some ts -> ts
        | None ->
            let ts =
              {
                trace = sp.Tracer.trace;
                root = sp.Tracer.name;
                total_ms = Tracer.duration_ms sp;
                nspans = 0;
                st =
                  {
                    transport_ms = 0.0;
                    fault_ms = 0.0;
                    commit_ms = 0.0;
                    other_ms = 0.0;
                  };
              }
            in
            Hashtbl.add traces sp.Tracer.trace ts;
            order := sp.Tracer.trace :: !order;
            ts
      in
      let self =
        Float.max 0.0 (Tracer.duration_ms sp -. child_sum.(sp.Tracer.id))
      in
      bump ts.st (stage_of sp.Tracer.name) self;
      ts.nspans <- ts.nspans + 1);
  List.rev_map (fun tid -> Hashtbl.find traces tid) !order

(* ------------------------------------------------------------------ *)
(* Critical-path report *)

let mean l =
  match l with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let line b tag (ts : trace_sum) =
  Buffer.add_string b
    (Printf.sprintf
       "  %-5s %9.3f ms = %8.3f transport + %8.3f fault + %8.3f commit + \
        %8.3f other  (trace %d, %d spans)\n"
       tag ts.total_ms ts.st.transport_ms ts.st.fault_ms ts.st.commit_ms
       ts.st.other_ms ts.trace ts.nspans)

(* The report reads the traces whose root span has the given name
   (default "request", the load harness's root) and prints the mean
   stage decomposition plus the actual traces at p50/p95/p99 of
   total latency: "p99 invocation = X ms transport + Y ms fault +
   Z ms commit". *)
let report ?(root = "request") (t : Tracer.t) =
  let all = per_trace t in
  let reqs =
    List.filter (fun ts -> String.equal ts.root root) all
    |> List.sort (fun a b -> Float.compare a.total_ms b.total_ms)
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "critical path: %d %s traces of %d total, %d spans recorded\n"
       (List.length reqs) root (List.length all) (Tracer.span_count t));
  (match reqs with
  | [] -> Buffer.add_string b "  (no traces with that root)\n"
  | _ ->
      let arr = Array.of_list reqs in
      let n = Array.length arr in
      let at p = arr.(int_of_float (p /. 100.0 *. float_of_int (n - 1))) in
      let mean_ts =
        {
          trace = -1;
          root;
          total_ms = mean (List.map (fun ts -> ts.total_ms) reqs);
          nspans =
            List.fold_left (fun a ts -> a + ts.nspans) 0 reqs
            / max 1 (List.length reqs);
          st =
            {
              transport_ms = mean (List.map (fun ts -> ts.st.transport_ms) reqs);
              fault_ms = mean (List.map (fun ts -> ts.st.fault_ms) reqs);
              commit_ms = mean (List.map (fun ts -> ts.st.commit_ms) reqs);
              other_ms = mean (List.map (fun ts -> ts.st.other_ms) reqs);
            };
        }
      in
      line b "mean" mean_ts;
      line b "p50" (at 50.0);
      line b "p95" (at 95.0);
      line b "p99" (at 99.0));
  Buffer.contents b

(* Aggregate stage means and tail picks for machine-readable output
   (the bench "obs" section). *)
type summary = {
  traces : int;
  spans : int;
  s_mean : stages;
  p50 : trace_sum option;
  p95 : trace_sum option;
  p99 : trace_sum option;
}

let summarize ?(root = "request") (t : Tracer.t) =
  let reqs =
    List.filter (fun ts -> String.equal ts.root root) (per_trace t)
    |> List.sort (fun a b -> Float.compare a.total_ms b.total_ms)
  in
  let arr = Array.of_list reqs in
  let n = Array.length arr in
  let at p =
    if n = 0 then None
    else Some arr.(int_of_float (p /. 100.0 *. float_of_int (n - 1)))
  in
  {
    traces = n;
    spans = Tracer.span_count t;
    s_mean =
      {
        transport_ms = mean (List.map (fun ts -> ts.st.transport_ms) reqs);
        fault_ms = mean (List.map (fun ts -> ts.st.fault_ms) reqs);
        commit_ms = mean (List.map (fun ts -> ts.st.commit_ms) reqs);
        other_ms = mean (List.map (fun ts -> ts.st.other_ms) reqs);
      };
    p50 = at 50.0;
    p95 = at 95.0;
    p99 = at 99.0;
  }

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON *)

(* One complete event (ph "X") per span; ts/dur in microseconds as
   the format requires, tid = trace id so Perfetto lays each
   invocation out on its own track, pid = node address. *)
let chrome_json (t : Tracer.t) =
  let b = Buffer.create (256 * max 1 (Tracer.span_count t)) in
  Buffer.add_string b "{\"traceEvents\": [";
  let first = ref true in
  Tracer.iter t (fun sp ->
      if !first then first := false else Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"ts\": %.3f, \
            \"dur\": %.3f, \"pid\": %d, \"tid\": %d, \"args\": {\"span\": \
            %d, \"parent\": %d}}"
           sp.Tracer.name
           (stage_label (stage_of sp.Tracer.name))
           (Sim.Time.to_us_f sp.Tracer.start)
           (Sim.Time.to_us_f (Sim.Time.diff sp.Tracer.stop sp.Tracer.start))
           sp.Tracer.node sp.Tracer.trace sp.Tracer.id sp.Tracer.parent));
  Buffer.add_string b "], \"displayTimeUnit\": \"ms\"}";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Minimal JSON reader — enough to validate our own exports without
   a JSON dependency: full value grammar, string escapes, numbers. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.equal (String.sub s !pos l) word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              if !pos + 4 >= n then fail "short \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
              | Some _ -> Buffer.add_char b '?' (* non-ASCII: placeholder *)
              | None -> fail "bad \\u escape");
              pos := !pos + 4
          | _ -> fail "bad escape");
          incr pos;
          go ()
      | c when Char.code c < 0x20 -> fail "control char in string"
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let digits () =
      let d = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        incr pos
      done;
      if !pos = d then fail "expected digit"
    in
    if peek () = Some '-' then incr pos;
    digits ();
    if peek () = Some '.' then begin
      incr pos;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ()
            | Some '}' -> incr pos
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else begin
          let elts = ref [] in
          let rec elements () =
            let v = parse_value () in
            elts := v :: !elts;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elements ()
            | Some ']' -> incr pos
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !elts)
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* A valid non-empty Chrome trace export: parses, has a traceEvents
   array with at least one complete event carrying name/ts/dur. *)
let validate_chrome s =
  match parse s with
  | Error msg -> Error ("invalid JSON: " ^ msg)
  | Ok v -> (
      match member "traceEvents" v with
      | Some (Arr []) -> Error "traceEvents is empty"
      | Some (Arr evs) ->
          let ok_event e =
            match (member "name" e, member "ts" e, member "dur" e) with
            | Some (Str _), Some (Num _), Some (Num _) -> true
            | _ -> false
          in
          if List.for_all ok_event evs then Ok (List.length evs)
          else Error "traceEvents contains a malformed event"
      | _ -> Error "missing traceEvents array")
