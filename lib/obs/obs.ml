(** Observability: causal tracing, the metrics registry, and trace
    exports.  See DESIGN.md §15. *)

module Tracer = Tracer
module Registry = Registry
module Export = Export
