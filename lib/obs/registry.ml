(* A named tree of live metric handles.

   Components keep updating their own [Sim.Stats] counters exactly as
   before; a registry just holds (path -> handle) so one snapshot can
   walk everything a node exposes.  Snapshots render to JSON with
   sorted keys and fixed float formatting, so fixed-seed runs are
   byte-identical. *)

type metric =
  | Counter of Sim.Stats.counter
  | Keyed of Sim.Stats.keyed
  | Series of Sim.Stats.series
  | Hist of Sim.Stats.hist

type t = { label : string; tbl : (string, metric) Hashtbl.t }

let create label = { label; tbl = Hashtbl.create 32 }
let label t = t.label
let register t path m = Hashtbl.replace t.tbl path m
let register_all t ms = List.iter (fun (path, m) -> register t path m) ms
let find t path = Hashtbl.find_opt t.tbl path

let items t =
  Hashtbl.fold (fun path m acc -> (path, m) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Sum of integer-valued metrics (counters and keyed families) by
   path across registries — the cluster-wide rollup bench reports. *)
let totals regs =
  let acc = Hashtbl.create 32 in
  let bump path v =
    let cur = Option.value ~default:0 (Hashtbl.find_opt acc path) in
    Hashtbl.replace acc path (cur + v)
  in
  List.iter
    (fun r ->
      List.iter
        (fun (path, m) ->
          match m with
          | Counter c -> bump path (Sim.Stats.value c)
          | Keyed k ->
              List.iter (fun (_, v) -> bump path v) (Sim.Stats.kitems k)
          | Series _ | Hist _ -> ())
        (items r))
    regs;
  Hashtbl.fold (fun path v l -> (path, v) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ---- JSON rendering (hand-rolled, same conventions as bench) ---- *)

let j_str b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let j_num b f = Buffer.add_string b (Printf.sprintf "%.6f" f)

let summary_json b ~n ~mean ~p50 ~p95 ~p99 ~max =
  Buffer.add_string b "{\"n\": ";
  Buffer.add_string b (string_of_int n);
  Buffer.add_string b ", \"mean_ms\": ";
  j_num b mean;
  Buffer.add_string b ", \"p50_ms\": ";
  j_num b p50;
  Buffer.add_string b ", \"p95_ms\": ";
  j_num b p95;
  Buffer.add_string b ", \"p99_ms\": ";
  j_num b p99;
  Buffer.add_string b ", \"max_ms\": ";
  j_num b max;
  Buffer.add_char b '}'

let metric_json b = function
  | Counter c -> Buffer.add_string b (string_of_int (Sim.Stats.value c))
  | Keyed k ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (key, v) ->
          if i > 0 then Buffer.add_string b ", ";
          j_str b (string_of_int key);
          Buffer.add_string b ": ";
          Buffer.add_string b (string_of_int v))
        (Sim.Stats.kitems k);
      Buffer.add_char b '}'
  | Series s ->
      let p = Sim.Stats.percentile s in
      summary_json b ~n:(Sim.Stats.n s) ~mean:(Sim.Stats.mean s)
        ~p50:(p 50.0) ~p95:(p 95.0) ~p99:(p 99.0) ~max:(Sim.Stats.max_v s)
  | Hist h ->
      let p = Sim.Stats.hist_percentile h in
      summary_json b ~n:(Sim.Stats.hist_n h) ~mean:(Sim.Stats.hist_mean h)
        ~p50:(p 50.0) ~p95:(p 95.0) ~p99:(p 99.0) ~max:(Sim.Stats.hist_max h)

let to_buffer b t =
  Buffer.add_string b "{\"node\": ";
  j_str b t.label;
  Buffer.add_string b ", \"metrics\": {";
  List.iteri
    (fun i (path, m) ->
      if i > 0 then Buffer.add_string b ", ";
      j_str b path;
      Buffer.add_string b ": ";
      metric_json b m)
    (items t);
  Buffer.add_string b "}}"

let to_json t =
  let b = Buffer.create 512 in
  to_buffer b t;
  Buffer.contents b

let snapshot_json regs =
  let b = Buffer.create 4096 in
  Buffer.add_char b '[';
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ", ";
      to_buffer b r)
    regs;
  Buffer.add_char b ']';
  Buffer.contents b
