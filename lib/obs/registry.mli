(** Per-node metrics registry.

    Unifies the [Sim.Stats] counters, keyed families, series and
    histograms scattered across components into one named tree: each
    component exposes its live handles as [(path, metric)] pairs, a
    registry per node collects them, and a snapshot renders the
    whole forest as deterministic JSON (sorted keys, fixed float
    format).  Registration is cheap and snapshot-time only reads —
    the hot paths keep bumping the same [Sim.Stats] values they
    always did. *)

type metric =
  | Counter of Sim.Stats.counter
  | Keyed of Sim.Stats.keyed
  | Series of Sim.Stats.series
  | Hist of Sim.Stats.hist

type t

val create : string -> t
(** A registry labelled with its owner, e.g. ["data-3"]. *)

val label : t -> string

val register : t -> string -> metric -> unit
(** [register t path m] adds (or replaces) the metric at a
    slash-separated path, e.g. ["ratp/retrans"]. *)

val register_all : t -> (string * metric) list -> unit
val find : t -> string -> metric option

val items : t -> (string * metric) list
(** All (path, metric) pairs sorted by path. *)

val totals : t list -> (string * int) list
(** Integer metrics (counters; keyed families summed over keys)
    rolled up across registries by path, sorted — the cluster-wide
    view bench snapshots. *)

val to_json : t -> string
(** [{"node": label, "metrics": {path: value, ...}}] with sorted
    paths; counters render as integers, keyed families as objects,
    series/histograms as summary objects. *)

val snapshot_json : t list -> string
(** JSON array of {!to_json} objects, in list order. *)
