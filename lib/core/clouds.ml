(** Clouds: a persistent object / thread distributed operating
    system, reproduced in simulation.

    The programming model is the paper's: define classes
    ({!Obj_class}), load them onto a cluster ({!Cluster}), create
    object instances and invoke their entry points with threads
    ({!Object_manager}, {!Thread}).  Objects are persistent virtual
    address spaces demand-paged through DSM; threads traverse objects
    carrying only values ({!Value}); names are translated by a name
    server that is itself a Clouds object ({!Name_server}). *)

module Value = Value
module Memory = Memory
module Pheap = Pheap
module Ctx = Ctx
module Obj_class = Obj_class
module Terminal = Terminal
module User_io = User_io
module Ring = Ring
module Cluster = Cluster
module Object_manager = Object_manager
module Thread = Thread
module Name_server = Name_server
module Replicator = Replicator
module Telemetry = Telemetry

type system = {
  cluster : Cluster.t;
  om : Object_manager.t;
}

let boot eng ?params ?ratp_config ?ether_config ?replication
    ?group_commit_window ?wal_max_batch ?checkpoint_every ?default_consistency
    ~compute ~data ~workstations () =
  let cluster =
    Cluster.create eng ?params ?ratp_config ?ether_config ?replication
      ?group_commit_window ?wal_max_batch ?checkpoint_every
      ?default_consistency ~compute ~data ~workstations ()
  in
  let om = Object_manager.create cluster in
  { cluster; om }
