exception No_object of Ra.Sysname.t
exception No_class of string
exception No_entry of Ra.Sysname.t * string

(* Standard layout of an object's virtual space. *)
let code_base = 0x0400_0000
let data_base = 0x0800_0000
let heap_base = 0x0C00_0000
let vheap_base = 0x1000_0000

type activation = {
  act_vs : Ra.Virtual_space.t;
  act_cls : Obj_class.t;
  act_mem : Memory.t;
  code_seg : Ra.Sysname.t;
  data_seg : Ra.Sysname.t;
  heap_seg : Ra.Sysname.t;
  vheap_seg : Ra.Sysname.t;
  semaphores : (string, Sim.Semaphore.t) Hashtbl.t;
  mutexes : (string, Sim.Mutex.t) Hashtbl.t;
}

type Ratp.Packet.body +=
  | Invoke of {
      obj : Ra.Sysname.t;
      entry : string;
      arg : Value.t;
      thread_id : int;
      origin : int option;
      txn : (int * int) option;
    }
  | Invoke_ok of Value.t
  | Invoke_failed of string

let invoke_service = 30

type t = {
  cl : Cluster.t;
  activations : ((int * Ra.Sysname.t), activation) Hashtbl.t;
  activating : ((int * Ra.Sysname.t), unit Sim.Ivar.t) Hashtbl.t;
  daemons_started : unit Ra.Sysname.Table.t;
  per_thread : ((int * Ra.Sysname.t), (string, Value.t) Hashtbl.t) Hashtbl.t;
  visits : (int, Ra.Sysname.t list ref) Hashtbl.t;
  invoke_count : Sim.Stats.counter;
  local_invokes : Sim.Stats.counter;
}

let cluster t = t.cl

let dsm_rpc node ~dst body =
  let size = Dsm.Protocol.request_bytes body in
  Ratp.Endpoint.call node.Ra.Node.endpoint ~dst ~service:Dsm.Protocol.service
    ~size body

(* ------------------------------------------------------------------ *)
(* Activation *)

let usable_server t addr =
  match t.cl.Cluster.membership with
  | Some m -> Membership.Monitor.usable m addr
  | None -> true

let fetch_descriptor t node obj =
  let ask home =
    match dsm_rpc node ~dst:home (Dsm.Protocol.Get_descriptor obj) with
    | Ok (Dsm.Protocol.Descriptor d) -> d
    | Ok _ | Error Ratp.Endpoint.Timeout -> None
  in
  (* ask every data server in turn, skipping members the view has
     condemned (a replicated object's descriptor lives on each of its
     replicas, so a survivor answers) *)
  let scan () =
    Array.fold_left
      (fun acc dn ->
        match acc with
        | Some _ -> acc
        | None ->
            if dn.Ra.Node.alive && usable_server t dn.Ra.Node.id then
              ask dn.Ra.Node.id
            else None)
      None t.cl.Cluster.data_nodes
  in
  match Ra.Sysname.Table.find_opt t.cl.Cluster.obj_home obj with
  | Some home when usable_server t home -> (
      match ask home with Some d -> Some d | None -> scan ())
  | Some _ | None -> scan ()

let find_entry_seg entries role =
  match
    List.find_opt (fun e -> String.equal e.Store.Directory.role role) entries
  with
  | Some e -> (e.Store.Directory.seg, e.Store.Directory.size)
  | None -> raise Not_found

let rec activate t node obj =
  let key = (node.Ra.Node.id, obj) in
  match Hashtbl.find_opt t.activations key with
  | Some a -> a
  | None when Hashtbl.mem t.activating key ->
      (* another thread is activating this object here; wait for it *)
      Sim.Ivar.read (Hashtbl.find t.activating key);
      activate t node obj
  | None ->
      let iv = Sim.Ivar.create () in
      Hashtbl.replace t.activating key iv;
      Fun.protect
        ~finally:(fun () ->
          Hashtbl.remove t.activating key;
          Sim.Ivar.fill iv ())
      @@ fun () ->
      let desc =
        match fetch_descriptor t node obj with
        | Some d -> d
        | None -> raise (No_object obj)
      in
      let cls =
        match Cluster.find_class t.cl desc.Store.Directory.class_name with
        | Some c -> c
        | None -> raise (No_class desc.Store.Directory.class_name)
      in
      let code_seg, code_size = find_entry_seg desc.Store.Directory.entries "code" in
      let data_seg, data_size = find_entry_seg desc.Store.Directory.entries "data" in
      let heap_seg, heap_size = find_entry_seg desc.Store.Directory.entries "pheap" in
      let vs = Ra.Virtual_space.create () in
      Ra.Virtual_space.map vs ~base:code_base ~len:code_size
        ~prot:Ra.Virtual_space.Read_only code_seg;
      Ra.Virtual_space.map vs ~base:data_base ~len:data_size
        ~prot:Ra.Virtual_space.Read_write data_seg;
      Ra.Virtual_space.map vs ~base:heap_base ~len:heap_size
        ~prot:Ra.Virtual_space.Read_write heap_seg;
      let vheap_seg = Ra.Sysname.fresh node.Ra.Node.names in
      let vheap_len = cls.Obj_class.vheap_pages * Ra.Page.size in
      Cluster.register_volatile t.cl node vheap_seg;
      Ra.Virtual_space.map vs ~base:vheap_base ~len:vheap_len
        ~prot:Ra.Virtual_space.Read_write vheap_seg;
      let mem =
        Memory.make ~mmu:node.Ra.Node.mmu ~vs ~data_base ~data_len:data_size
          ~heap_base ~heap_len:heap_size ~vheap_base ~vheap_len
      in
      let a =
        {
          act_vs = vs;
          act_cls = cls;
          act_mem = mem;
          code_seg;
          data_seg;
          heap_seg;
          vheap_seg;
          semaphores = Hashtbl.create 4;
          mutexes = Hashtbl.create 4;
        }
      in
      (* building the object space costs kernel work, and the first
         dispatch pulls in the code segment plus the heads of the
         persistent data (entry vector and object header) *)
      Ra.Isiba.compute node t.cl.Cluster.params.Ra.Params.activation_setup;
      for page = 0 to cls.Obj_class.code_pages - 1 do
        ignore
          (Ra.Mmu.read node.Ra.Node.mmu vs
             ~addr:(code_base + (page * Ra.Page.size))
             ~len:8)
      done;
      ignore (Ra.Mmu.read node.Ra.Node.mmu vs ~addr:data_base ~len:8);
      Hashtbl.replace t.activations key a;
      a

(* ------------------------------------------------------------------ *)
(* Invocation *)

let per_thread_table t thread_id obj =
  let key = (thread_id, obj) in
  match Hashtbl.find_opt t.per_thread key with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 4 in
      Hashtbl.replace t.per_thread key tbl;
      tbl

let record_visit t thread_id obj =
  let log =
    match Hashtbl.find_opt t.visits thread_id with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.replace t.visits thread_id l;
        l
  in
  log := obj :: !log

(* Touch the code pages the dispatch path executes: the entry
   trampoline on page 0 and the entry's own page.  Cold objects fault
   these in through DSM, which is most of the paper's 103 ms
   worst-case null invocation. *)
let touch_code node (a : activation) entry_name =
  let mmu = node.Ra.Node.mmu in
  ignore (Ra.Mmu.read mmu a.act_vs ~addr:code_base ~len:8);
  let pages = a.act_cls.Obj_class.code_pages in
  if pages > 1 then begin
    let page = 1 + (Hashtbl.hash entry_name mod (pages - 1)) in
    ignore
      (Ra.Mmu.read mmu a.act_vs ~addr:(code_base + (page * Ra.Page.size)) ~len:8)
  end

(* Build the execution context an entry point (or constructor, or
   daemon) sees.  The nested-invocation closure reads [ctx.txn] at
   call time so a transaction begun by the entry wrapper propagates
   inward. *)
let rec make_ctx t node (a : activation) ~obj ~thread_id ~origin ~txn =
  let lazy_heap region =
    let cell = ref None in
    fun () ->
      match !cell with
      | Some h -> h
      | None ->
          let h = Pheap.attach a.act_mem region in
          cell := Some h;
          h
  in
  let rec ctx =
    {
      Ctx.self = obj;
      class_name = a.act_cls.Obj_class.c_name;
      node;
      thread_id;
      origin;
      mem = a.act_mem;
      pheap = lazy_heap Memory.Heap;
      vheap = lazy_heap Memory.Volatile;
      invoke =
        (fun ~obj ~entry arg ->
          invoke t ~node ~thread_id ~origin ~txn:ctx.Ctx.txn ~obj ~entry arg);
      print =
        (match origin with
        | Some w -> fun line -> User_io.remote_print node ~workstation:w line
        | None -> fun line -> print_endline line);
      compute = (fun span -> Ra.Isiba.compute node span);
      semaphore =
        (fun name count ->
          match Hashtbl.find_opt a.semaphores name with
          | Some s -> s
          | None ->
              let s = Sim.Semaphore.create ~label:name count in
              Hashtbl.replace a.semaphores name s;
              s);
      obj_mutex =
        (fun name ->
          match Hashtbl.find_opt a.mutexes name with
          | Some m -> m
          | None ->
              let m = Sim.Mutex.create ~label:name () in
              Hashtbl.replace a.mutexes name m;
              m);
      per_invocation = Hashtbl.create 4;
      per_thread = per_thread_table t thread_id obj;
      membership = (fun () -> Cluster.membership_view t.cl);
      txn;
    }
  in
  ctx

(* An active object's daemons start with its first activation
   anywhere and run until their machine dies. *)
and start_daemons t node (a : activation) obj =
  if
    a.act_cls.Obj_class.daemons <> []
    && not (Ra.Sysname.Table.mem t.daemons_started obj)
  then begin
    Ra.Sysname.Table.replace t.daemons_started obj ();
    List.iter
      (fun (name, body) ->
        ignore
          (Ra.Node.spawn node
             (Printf.sprintf "daemon-%s" name)
             (fun () ->
               let ctx =
                 make_ctx t node a ~obj ~thread_id:(-1) ~origin:None ~txn:None
               in
               body ctx)))
      a.act_cls.Obj_class.daemons
  end

and invoke t ~node ~thread_id ~origin ~txn ~obj ~entry arg =
 Obs.Tracer.with_span ~node:node.Ra.Node.id "invoke" @@ fun () ->
  if not node.Ra.Node.alive then failwith "Object_manager.invoke: dead node";
  let a = activate t node obj in
  let e =
    match Obj_class.find_entry a.act_cls entry with
    | Some e -> e
    | None -> raise (No_entry (obj, entry))
  in
  start_daemons t node a obj;
  Sim.Stats.incr t.invoke_count;
  record_visit t thread_id obj;
  Ra.Isiba.compute node t.cl.Cluster.params.Ra.Params.invoke_setup;
  touch_code node a entry;
  let ctx = make_ctx t node a ~obj ~thread_id ~origin ~txn in
  let result =
    t.cl.Cluster.entry_wrapper e.Obj_class.label ctx (fun () ->
        e.Obj_class.fn ctx arg)
  in
  (* Release-consistency scope boundary for non-transactional
     entries: ship the dirty pages home so the batched invalidation
     burst fires and later readers see every write.  Transactional
     entries already flush through commit. *)
  (if ctx.Ctx.txn = None then
     match Cluster.client_of t.cl node.Ra.Node.id with
     | None -> ()
     | Some client ->
         List.iter
           (fun seg ->
             match Cluster.consistency_of t.cl seg with
             | Ra.Partition.Release | Ra.Partition.Commutative _ ->
                 Dsm.Dsm_client.flush_segment client seg
             | Ra.Partition.One_copy -> ())
           [ a.data_seg; a.heap_seg ]);
  Ra.Isiba.compute node t.cl.Cluster.params.Ra.Params.invoke_return;
  result

(* Same-node fast lane: dispatching an invocation to the node we are
   already on skips RaTP entirely — no serialization, fragmentation,
   transport processing, or wire time; only the local invocation cost
   (activation, dispatch, page touches) is paid.  Failures surface
   exactly as the remote path reports them: any handler exception
   becomes [Ctx.Invoke_error] carrying the printed exception, so
   callers cannot tell the two paths apart semantically. *)
let invoke_remote t ~from ~target ~thread_id ~origin ~txn ~obj ~entry arg =
  if Net.Address.equal target from.Ra.Node.id then begin
    Sim.Stats.incr t.local_invokes;
    match invoke t ~node:from ~thread_id ~origin ~txn ~obj ~entry arg with
    | v -> v
    | exception e -> raise (Ctx.Invoke_error (Printexc.to_string e))
  end
  else begin
    (* fast failover: a target the membership view already condemned
       fails immediately instead of burning the RaTP retry ladder *)
    if not (usable_server t target) then
      raise (Ctx.Invoke_error "compute server unreachable");
    let body = Invoke { obj; entry; arg; thread_id; origin; txn } in
    let size = 64 + String.length entry + Value.size arg in
    match
      Ratp.Endpoint.call from.Ra.Node.endpoint ~dst:target
        ~service:invoke_service ~size body
    with
    | Ok (Invoke_ok v) -> v
    | Ok (Invoke_failed msg) -> raise (Ctx.Invoke_error msg)
    | Ok _ -> raise (Ctx.Invoke_error "bad invocation reply")
    | Error Ratp.Endpoint.Timeout ->
        raise (Ctx.Invoke_error "compute server unreachable")
  end

let create cl =
  let t =
    {
      cl;
      activations = Hashtbl.create 64;
      per_thread = Hashtbl.create 64;
      visits = Hashtbl.create 32;
      activating = Hashtbl.create 8;
      daemons_started = Ra.Sysname.Table.create 8;
      invoke_count = Sim.Stats.counter "om.invocations";
      local_invokes = Sim.Stats.counter "om.local_invokes";
    }
  in
  Array.iter
    (fun node ->
      Ratp.Endpoint.serve node.Ra.Node.endpoint ~service:invoke_service
        (fun ~src:_ body ->
          match body with
          | Invoke { obj; entry; arg; thread_id; origin; txn } -> (
              match invoke t ~node ~thread_id ~origin ~txn ~obj ~entry arg with
              | v -> (Invoke_ok v, 48 + Value.size v)
              | exception e ->
                  let msg = Printexc.to_string e in
                  (Invoke_failed msg, 48 + String.length msg))
          | _ -> (Invoke_failed "bad invocation request", 64)))
    cl.Cluster.compute_nodes;
  t

(* ------------------------------------------------------------------ *)
(* Creation and deletion *)

let create_object t ?home ?on ?(thread_id = 0) ?origin ?consistency ~class_name
    arg =
  let node = match on with Some n -> n | None -> Cluster.pick_compute t.cl in
  let cls =
    match Cluster.find_class t.cl class_name with
    | Some c -> c
    | None -> raise (No_class class_name)
  in
  let code_seg =
    match Hashtbl.find_opt t.cl.Cluster.class_code class_name with
    | Some s -> s
    | None -> raise (No_class class_name)
  in
  let obj = Ra.Sysname.fresh node.Ra.Node.names in
  (* placement is a pure function of the object's sysname (the ring),
     so any node can later re-derive the home without a directory
     round trip; an explicit [home] (e.g. a name-server shard) wins *)
  let home =
    match home with Some h -> h | None -> Cluster.place_object t.cl obj
  in
  let targets = Cluster.replica_targets t.cl ~primary:home in
  let data_seg = Ra.Sysname.fresh node.Ra.Node.names in
  let heap_seg = Ra.Sysname.fresh node.Ra.Node.names in
  let mode =
    match consistency with
    | Some m -> m
    | None -> t.cl.Cluster.default_consistency
  in
  (* each segment is created on the primary and every backup; the
     primary forwards committed writes from then on *)
  let mk seg pages =
    List.iter
      (fun dst ->
        match
          dsm_rpc node ~dst
            (Dsm.Protocol.Create_segment
               { seg; size = pages * Ra.Page.size; mode })
        with
        | Ok Dsm.Protocol.Segment_ok -> ()
        | Ok _ | Error Ratp.Endpoint.Timeout ->
            failwith "create_object: segment creation failed")
      targets;
    Cluster.set_replicas t.cl seg targets;
    Cluster.set_consistency t.cl seg mode
  in
  mk data_seg cls.Obj_class.data_pages;
  mk heap_seg cls.Obj_class.heap_pages;
  let descriptor =
    {
      Store.Directory.class_name;
      home;
      entries =
        [
          {
            Store.Directory.role = "code";
            seg = code_seg;
            size = cls.Obj_class.code_pages * Ra.Page.size;
          };
          {
            Store.Directory.role = "data";
            seg = data_seg;
            size = cls.Obj_class.data_pages * Ra.Page.size;
          };
          {
            Store.Directory.role = "pheap";
            seg = heap_seg;
            size = cls.Obj_class.heap_pages * Ra.Page.size;
          };
        ];
    }
  in
  List.iter
    (fun dst ->
      match
        dsm_rpc node ~dst (Dsm.Protocol.Register_object { obj; descriptor })
      with
      | Ok Dsm.Protocol.Registered -> ()
      | Ok _ | Error Ratp.Endpoint.Timeout ->
          failwith "create_object: descriptor registration failed")
    targets;
  Ra.Sysname.Table.replace t.cl.Cluster.obj_home obj home;
  (match cls.Obj_class.constructor with
  | None -> ()
  | Some ctor ->
      (* run the constructor as a pseudo-entry *)
      let entry_name = "__constructor__" in
      let wrapped =
        Obj_class.entry entry_name (fun ctx v ->
            ctor ctx v;
            Value.Unit)
      in
      ignore entry_name;
      let a = activate t node obj in
      start_daemons t node a obj;
      Ra.Isiba.compute node t.cl.Cluster.params.Ra.Params.invoke_setup;
      touch_code node a "constructor";
      let ctx = make_ctx t node a ~obj ~thread_id ~origin ~txn:None in
      ignore (wrapped.Obj_class.fn ctx arg);
      Ra.Isiba.compute node t.cl.Cluster.params.Ra.Params.invoke_return);
  obj

let delete_object t ?on obj =
  let node = match on with Some n -> n | None -> Cluster.pick_compute t.cl in
  let desc =
    match fetch_descriptor t node obj with
    | Some d -> d
    | None -> raise (No_object obj)
  in
  let home = desc.Store.Directory.home in
  (* every replica holds the segments and the descriptor *)
  let targets =
    List.sort_uniq Net.Address.compare
      (home
      :: List.concat_map
           (fun e ->
             if String.equal e.Store.Directory.role "code" then []
             else Cluster.replicas_of t.cl e.Store.Directory.seg)
           desc.Store.Directory.entries)
  in
  List.iter
    (fun e ->
      if not (String.equal e.Store.Directory.role "code") then begin
        List.iter
          (fun dst ->
            match
              dsm_rpc node ~dst
                (Dsm.Protocol.Delete_segment e.Store.Directory.seg)
            with
            | Ok _ | Error Ratp.Endpoint.Timeout -> ())
          (Cluster.replicas_of t.cl e.Store.Directory.seg);
        Cluster.remove_segment t.cl e.Store.Directory.seg
      end)
    desc.Store.Directory.entries;
  List.iter
    (fun dst ->
      match dsm_rpc node ~dst (Dsm.Protocol.Unregister_object obj) with
      | Ok _ | Error Ratp.Endpoint.Timeout -> ())
    targets;
  Ra.Sysname.Table.remove t.cl.Cluster.obj_home obj;
  (* drop activations everywhere *)
  Array.iter
    (fun cnode ->
      let key = (cnode.Ra.Node.id, obj) in
      match Hashtbl.find_opt t.activations key with
      | Some a ->
          List.iter
            (fun seg -> Ra.Mmu.drop_segment cnode.Ra.Node.mmu seg)
            [ a.data_seg; a.heap_seg; a.vheap_seg ];
          Hashtbl.remove t.activations key
      | None -> ())
    t.cl.Cluster.compute_nodes

let visited t thread_id =
  match Hashtbl.find_opt t.visits thread_id with
  | Some l -> !l
  | None -> []

let end_thread t thread_id =
  Hashtbl.remove t.visits thread_id;
  let stale =
    Hashtbl.fold
      (fun (tid, obj) _ acc ->
        if tid = thread_id then (tid, obj) :: acc else acc)
      t.per_thread []
  in
  List.iter (Hashtbl.remove t.per_thread) stale

let invocations t = Sim.Stats.value t.invoke_count
let local_invocations t = Sim.Stats.value t.local_invokes

let metrics t =
  [
    ("om/invocations", Obs.Registry.Counter t.invoke_count);
    ("om/local_invokes", Obs.Registry.Counter t.local_invokes);
  ]
