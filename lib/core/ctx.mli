(** The execution context an entry point receives.

    This is the whole world visible to code inside a Clouds object:
    its own memory image (persistent data, persistent heap, volatile
    heap), heap allocators, synchronization, terminal I/O routed to
    the invoking user's workstation, nested invocation of other
    objects by sysname, and the three extra memory lifetimes the
    Clouds project added (per-object is the image itself;
    per-invocation and per-thread are value tables). *)

type t = {
  self : Ra.Sysname.t;  (** the object being executed *)
  class_name : string;
  node : Ra.Node.t;  (** compute server running this invocation *)
  thread_id : int;
  origin : int option;  (** workstation that started the thread *)
  mem : Memory.t;
  pheap : unit -> Pheap.t;
      (** persistent-heap allocator, attached on first use (an object
          that never allocates never touches its heap header) *)
  vheap : unit -> Pheap.t;
      (** volatile-heap allocator; note that attaching it writes an
          allocator header at the start of the volatile region, so an
          object should either use raw volatile memory or the
          allocator, not both *)
  invoke : obj:Ra.Sysname.t -> entry:string -> Value.t -> Value.t;
      (** nested synchronous invocation; raises {!Invoke_error} *)
  print : string -> unit;
      (** write a line to the user's terminal, wherever the thread
          runs *)
  compute : Sim.Time.span -> unit;  (** charge CPU work *)
  semaphore : string -> int -> Sim.Semaphore.t;
      (** named per-activation semaphore with an initial count (the
          system-supplied synchronization primitive) *)
  obj_mutex : string -> Sim.Mutex.t;  (** named per-activation lock *)
  per_invocation : (string, Value.t) Hashtbl.t;
      (** scratch living for this invocation only *)
  per_thread : (string, Value.t) Hashtbl.t;
      (** scratch shared by this thread's invocations of this object *)
  membership : unit -> Membership.Monitor.view option;
      (** current cluster membership view, if a heartbeat monitor is
          running ([None] otherwise) — object code can ask who is
          alive before fanning work out *)
  mutable txn : (int * int) option;
      (** consistency-preserving transaction token, threaded through
          nested and remote invocations by the atomicity layer *)
}

exception Invoke_error of string
(** A nested invocation failed (no such object/entry, remote error,
    unreachable server). *)
