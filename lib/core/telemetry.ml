(* Build the cluster's metric registries: one per node (transport
   plus its DSM role) and one cluster-wide (object manager and
   whatever extra handles the caller wires in, e.g. the atomicity
   layer's — a layer above this library).  Registries hold live
   handles, so build them once and snapshot whenever. *)

let node_registry label (node : Ra.Node.t) role_metrics =
  let r = Obs.Registry.create label in
  Obs.Registry.register_all r (Ratp.Endpoint.metrics node.Ra.Node.endpoint);
  Obs.Registry.register_all r role_metrics;
  r

let registries ?om ?(extra = []) (cl : Cluster.t) =
  let data =
    Array.to_list
      (Array.mapi
         (fun i node ->
           node_registry
             (Printf.sprintf "data-%d" node.Ra.Node.id)
             node
             (Dsm.Dsm_server.metrics cl.Cluster.servers.(i)))
         cl.Cluster.data_nodes)
  in
  let compute =
    Array.to_list
      (Array.mapi
         (fun i node ->
           node_registry
             (Printf.sprintf "compute-%d" node.Ra.Node.id)
             node
             (Dsm.Dsm_client.metrics cl.Cluster.clients.(i)))
         cl.Cluster.compute_nodes)
  in
  let cluster = Obs.Registry.create "cluster" in
  (match om with
  | Some om -> Obs.Registry.register_all cluster (Object_manager.metrics om)
  | None -> ());
  Obs.Registry.register_all cluster extra;
  (cluster :: data) @ compute

let snapshot_json ?om ?extra cl =
  Obs.Registry.snapshot_json (registries ?om ?extra cl)
