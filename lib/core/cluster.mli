(** Cluster assembly: the Clouds system configuration.

    A cluster wires together data servers (segment stores + DSM
    servers), diskless compute servers (DSM clients), and user
    workstations on one Ethernet — Figure 3 of the paper.  It also
    holds the system-wide configuration knowledge: which classes are
    loaded, where segments and objects live, and the entry wrapper
    the atomicity layer installs around labelled entry points.

    Addresses: data servers get 1..d, compute servers d+1..d+c,
    workstations d+c+1 onward. *)

type t = {
  eng : Sim.Engine.t;
  ether : Net.Ethernet.t;
  params : Ra.Params.t;
  replication : int;
      (** target copies per segment (1 = the historical single-home
          configuration; no mirror traffic at all) *)
  compute_nodes : Ra.Node.t array;
  clients : Dsm.Dsm_client.t array;  (** parallel to [compute_nodes] *)
  data_nodes : Ra.Node.t array;
  servers : Dsm.Dsm_server.t array;  (** parallel to [data_nodes] *)
  workstations : (Ra.Node.t * Terminal.t) array;
  classes : (string, Obj_class.t) Hashtbl.t;
  class_code : (string, Ra.Sysname.t) Hashtbl.t;
      (** instances of a class share one code segment *)
  seg_home : Net.Address.t Ra.Sysname.Table.t;
  seg_replicas : Net.Address.t list Ra.Sysname.Table.t;
      (** full replica list per segment, primary first; segments with
          no entry live only at their [seg_home] *)
  seg_modes : Ra.Partition.consistency Ra.Sysname.Table.t;
      (** per-segment consistency mode; absent = [One_copy] *)
  default_consistency : Ra.Partition.consistency;
      (** mode given to object segments created without an explicit
          [?consistency] *)
  obj_home : Net.Address.t Ra.Sysname.Table.t;
  volatile : (int, unit Ra.Sysname.Table.t) Hashtbl.t;
  mutable scheduler : [ `Round_robin | `Least_loaded ];
      (** thread-placement policy (the paper's "scheduling decision
          may depend on scheduling policies and the load at each
          compute server") *)
  mutable rr_compute : int;
  mutable rr_data : int;
  mutable next_thread : int;
  mutable next_txn : int;
  mutable entry_wrapper :
    Obj_class.consistency -> Ctx.t -> (unit -> Value.t) -> Value.t;
      (** installed by the atomicity layer; default runs the body *)
  mutable ring : Ring.t;
      (** consistent-hash placement ring over the usable data servers;
          rebuilt (and the moved arc evicted from location caches) on
          every membership view change *)
  mutable prev_ring : Ring.t option;
      (** the ring one view-change ago — the fallback generation a
          lookup consults for bindings made before a remap *)
  mutable name_sharding : bool;
      (** route name bindings to the ring owner of the name (default);
          [false] funnels everything through one shard — the
          historical centralized server kept as the A/B baseline *)
  name_shards : (Net.Address.t, Ra.Sysname.t) Hashtbl.t;
      (** lazily created name-server object per data-server shard *)
  ns_locks : (Net.Address.t, Sim.Rwlock.t) Hashtbl.t;
      (** per-shard reader–writer lock: lookups share it, binds hold
          it exclusively, so readers never observe a half-rebound
          name *)
  mutable membership : Membership.Monitor.t option;
      (** set by {!start_membership}; [None] keeps all failure
          handling purely timeout-driven as before *)
}

val create :
  Sim.Engine.t ->
  ?params:Ra.Params.t ->
  ?ratp_config:Ratp.Endpoint.config ->
  ?ether_config:Net.Ethernet.config ->
  ?batch_io:bool ->
  ?prefetch_window:int ->
  ?replication:int ->
  ?group_commit_window:Sim.Time.span ->
  ?wal_max_batch:int ->
  ?checkpoint_every:Sim.Time.span ->
  ?default_consistency:Ra.Partition.consistency ->
  compute:int ->
  data:int ->
  workstations:int ->
  unit ->
  t
(** Build and boot a cluster.  Requires at least one compute and one
    data server.  [batch_io] and [prefetch_window] are forwarded to
    every {!Dsm.Dsm_client.create} (batched segment flush; fault-ahead
    window); [group_commit_window], [wal_max_batch] and
    [checkpoint_every] to every {!Dsm.Dsm_server.create} (batched WAL
    flushes, pipelined commits and fuzzy checkpoints — default off,
    keeping the historical force-per-record commit path).
    [replication] (default 1) is the target
    number of data servers holding each segment: primaries forward
    committed writes to the backups, and the replicator re-creates
    lost copies when membership condemns a server.
    [default_consistency] (default [One_copy]) is the mode new object
    segments get when {!Object_manager.create_object} is not given an
    explicit one. *)

val consistency_of : t -> Ra.Sysname.t -> Ra.Partition.consistency
(** A segment's consistency mode ([One_copy] when never set); every
    DSM client resolves through this. *)

val set_consistency : t -> Ra.Sysname.t -> Ra.Partition.consistency -> unit
(** Record a segment's mode cluster-wide and mirror it onto every
    data server.  Change modes only while the segment has no cached
    remote copies (normally set once at creation). *)

val pick_compute : t -> Ra.Node.t
(** Scheduling decision for a new thread, according to
    [t.scheduler]: round robin over live compute servers, or the
    least-loaded live compute server (CPU queue length, ties to the
    lowest address). *)

val pick_data : t -> Net.Address.t
(** Round robin over live data servers (legacy placement; ring
    placement below is what object creation uses). *)

val place_data : t -> int -> Net.Address.t
(** Ring placement for a hashed key: the owner of the key's arc, or
    the next usable member along the ring when the owner is down. *)

val place_object : t -> Ra.Sysname.t -> Net.Address.t
(** [place_data] on the object's sysname hash. *)

val name_shard : t -> string -> Net.Address.t
(** The data-server shard owning a name binding: the ring owner of
    the name's hash, or the lowest-addressed data server when
    sharding is off. *)

val set_name_sharding : t -> bool -> unit
(** Toggle name sharding (default on).  Flip only before the first
    binding: existing bindings stay in the shard they were routed
    to. *)

val bind_leader : t -> Net.Address.t -> Ra.Node.t
(** The deterministic compute node that serializes writes to the
    given shard. *)

val ns_lock : t -> Net.Address.t -> Sim.Rwlock.t
(** The shard's reader–writer lock (created on first use). *)

val node_by_id : t -> int -> Ra.Node.t option
(** Any node (data, compute or workstation) by address. *)

val client_of : t -> int -> Dsm.Dsm_client.t option
(** The DSM client of a compute node. *)

val server_at : t -> Net.Address.t -> Dsm.Dsm_server.t option

val terminal_of : t -> int -> Terminal.t option

val register_class : t -> Obj_class.t -> unit
(** "Compile and load" a class: record it in the system-wide registry
    and materialize its shared code segment on a data server.  This
    is a configuration-time action, like the prototype's compiler
    loading classes from the Unix workstation. *)

val find_class : t -> string -> Obj_class.t option

val locate_segment : t -> Ra.Sysname.t -> Net.Address.t
(** Raises {!Ra.Partition.No_segment} for unknown segments. *)

val add_segment : t -> Ra.Sysname.t -> Net.Address.t -> unit

val replicas_of : t -> Ra.Sysname.t -> Net.Address.t list
(** Full replica list of a segment, primary first; [[home]] for
    unreplicated segments and [[]] for unknown ones. *)

val set_replicas : t -> Ra.Sysname.t -> Net.Address.t list -> unit
(** Record a segment's replica list; the head becomes the primary
    that {!locate_segment} resolves to.  Raises [Invalid_argument] on
    an empty list. *)

val remove_segment : t -> Ra.Sysname.t -> unit
(** Drop a segment from the placement tables (object deletion). *)

val replica_targets : t -> primary:Net.Address.t -> Net.Address.t list
(** Placement for a fresh segment: [primary] plus the next
    [replication - 1] healthy data servers by address, wrapping. *)

val start_membership :
  t -> ?config:Membership.Monitor.config -> unit -> Membership.Monitor.t
(** Host a heartbeat monitor on the first compute server, watching
    every other node, and push each new view into all DSM servers
    (suspect lifetime) and clients (location-cache eviction).
    Idempotent.  The caller must {!stop_membership} before the end of
    the simulation or the periodic processes keep the engine alive
    forever. *)

val stop_membership : t -> unit

val membership_view : t -> Membership.Monitor.view option

val remap_ring : t -> Membership.Monitor.view -> unit
(** Fold a membership view into the placement ring: rebuild it over
    the data servers the view does not condemn and, if the member set
    changed, evict exactly the moved arc from every client's location
    cache.  Called automatically by the {!start_membership}
    subscriber; exposed for tests and for externally-fed views. *)

val register_volatile : t -> Ra.Node.t -> Ra.Sysname.t -> unit
val is_volatile : t -> Ra.Node.t -> Ra.Sysname.t -> bool

val fresh_txn : t -> Ra.Node.t -> int * int
(** A cluster-unique transaction id minted at the given node. *)
