(** The cluster's unified metrics registry.

    Collects every node's scattered [Sim.Stats] handles — transport
    counters from its RaTP endpoint plus its DSM role (server on
    data nodes, client on compute nodes) — into one {!Obs.Registry}
    per node, with a ["cluster"] registry for node-independent
    metrics (the object manager's, plus any [extra] handles a layer
    above this library wires in, e.g. atomicity). *)

val registries :
  ?om:Object_manager.t ->
  ?extra:(string * Obs.Registry.metric) list ->
  Cluster.t ->
  Obs.Registry.t list
(** The cluster registry first, then data nodes, then compute nodes
    (address order).  Registries hold live handles: build once,
    snapshot at any point. *)

val snapshot_json :
  ?om:Object_manager.t ->
  ?extra:(string * Obs.Registry.metric) list ->
  Cluster.t ->
  string
(** {!Obs.Registry.snapshot_json} over {!registries}. *)
