(* Bindings are a singly linked list in the object's persistent heap;
   the head offset lives at byte 0 of the persistent data segment.
   Node layout: [next:8][name:4+n][sysname:4+m].

   The list is the durable form.  Lookups go through a volatile
   hash-indexed directory (name -> heap offset) kept per shard object:
   a hit reads one node instead of walking the list, a miss falls back
   to the walk (which refills the index as it goes).  Index entries
   are verified against the heap before being trusted, so a stale
   entry can only cost a walk, never a wrong answer.

   The service is sharded: each data server owns one name-server
   object holding the arc of the name space the cluster's placement
   ring assigns it.  Reads run on the caller's compute node; writes
   are routed to the shard's bind leader under the shard write lock,
   so the persistent list is only ever mutated from one node at a
   time. *)

let head_off = 0

let get_next ctx node = Memory.get_int ctx.Ctx.mem ~region:Memory.Heap node

let get_name ctx node =
  Memory.get_string ctx.Ctx.mem ~region:Memory.Heap (node + 8)

let get_sys ctx node =
  let name = get_name ctx node in
  Memory.get_string ctx.Ctx.mem ~region:Memory.Heap
    (node + 8 + Memory.string_footprint name)

let charge ctx =
  ctx.Ctx.compute ctx.Ctx.node.Ra.Node.params.Ra.Params.name_lookup

(* volatile directory, one per shard object.  It models the shard's
   in-core hash table: shared by every compute node because DSM keeps
   the underlying heap coherent and writes are serialized by the bind
   leader.  Dropped (fresh table) whenever the shard object is
   created, so no state leaks between simulation runs that mint the
   same sysnames. *)
let indexes : (string, int) Hashtbl.t Ra.Sysname.Table.t =
  Ra.Sysname.Table.create 8

let index_of obj =
  match Ra.Sysname.Table.find_opt indexes obj with
  | Some h -> h
  | None ->
      let h = Hashtbl.create 64 in
      Ra.Sysname.Table.replace indexes obj h;
      h

let fold ctx f init =
  let rec walk acc node =
    if node = 0 then acc else walk (f acc node) (get_next ctx node)
  in
  walk init (Memory.get_int ctx.Ctx.mem head_off)

(* O(1) find via the directory; the durable list is the fallback and
   the authority.  A directory hit is verified by reading the node's
   name from the heap — [Memory] accessors are bounds-checked, so a
   dangling offset raises and we just take the walk. *)
let find ctx name =
  let idx = index_of ctx.Ctx.self in
  let verified =
    match Hashtbl.find_opt idx name with
    | None -> None
    | Some node -> (
        match get_name ctx node with
        | n when String.equal n name -> Some node
        | _ | (exception _) ->
            Hashtbl.remove idx name;
            None)
  in
  match verified with
  | Some _ as hit -> hit
  | None ->
      let rec walk node =
        if node = 0 then None
        else begin
          let n = get_name ctx node in
          if not (Hashtbl.mem idx n) then Hashtbl.replace idx n node;
          if String.equal n name then Some node else walk (get_next ctx node)
        end
      in
      walk (Memory.get_int ctx.Ctx.mem head_off)

(* Unlink the first node bearing [name], skipping [keep].  The node
   is unlinked but NOT freed: a concurrent reader walking the list may
   still be standing on it, and an unlinked-but-intact node lets that
   walk finish with the old (recent, well-formed) answer instead of
   reading recycled heap bytes.  The leaked cell is the price of
   lock-free readers; a real system reclaims it with the recoverable
   heap's commit machinery. *)
let unlink ctx ?(keep = -1) name =
  let rec walk prev node =
    if node = 0 then false
    else begin
      let next = get_next ctx node in
      if node <> keep && String.equal (get_name ctx node) name then begin
        (if prev = 0 then Memory.set_int ctx.Ctx.mem head_off next
         else Memory.set_int ctx.Ctx.mem ~region:Memory.Heap prev next);
        (match Hashtbl.find_opt (index_of ctx.Ctx.self) name with
        | Some n when n = node -> Hashtbl.remove (index_of ctx.Ctx.self) name
        | _ -> ());
        true
      end
      else walk node next
    end
  in
  walk 0 (Memory.get_int ctx.Ctx.mem head_off)

let insert ctx name sys =
  let size = 8 + Memory.string_footprint name + Memory.string_footprint sys in
  let node = Pheap.alloc (ctx.Ctx.pheap ()) size in
  Memory.set_int ctx.Ctx.mem ~region:Memory.Heap node
    (Memory.get_int ctx.Ctx.mem head_off);
  Memory.set_string ctx.Ctx.mem ~region:Memory.Heap (node + 8) name;
  Memory.set_string ctx.Ctx.mem ~region:Memory.Heap
    (node + 8 + Memory.string_footprint name)
    sys;
  Memory.set_int ctx.Ctx.mem head_off node;
  Hashtbl.replace (index_of ctx.Ctx.self) name node;
  node

let cls =
  Obj_class.define ~name:"nameserver" ~heap_pages:64
    [
      (* binds are local consistency preserving: with the atomicity
         manager installed they commit to the data server, so names
         survive compute-server crashes; without it they degrade to
         s-thread semantics *)
      Obj_class.entry ~label:Obj_class.Lcp "bind" (fun ctx arg ->
          charge ctx;
          let name_v, sys_v = Value.to_pair arg in
          let name = Value.to_string name_v in
          let sys = Value.to_string sys_v in
          (* insert first, then unlink any older binding: a reader
             racing the rebind sees the old node or the new one, never
             a window where the name is absent *)
          let fresh = insert ctx name sys in
          ignore (unlink ctx ~keep:fresh name);
          Value.Unit);
      Obj_class.entry "lookup" (fun ctx arg ->
          charge ctx;
          let name = Value.to_string arg in
          match find ctx name with
          | Some node -> Value.Str (get_sys ctx node)
          | None -> Value.Unit);
      Obj_class.entry ~label:Obj_class.Lcp "unbind" (fun ctx arg ->
          charge ctx;
          Value.Bool (unlink ctx (Value.to_string arg)));
      Obj_class.entry "list" (fun ctx _arg ->
          charge ctx;
          Value.List
            (fold ctx
               (fun acc node ->
                 Value.Pair
                   (Value.Str (get_name ctx node), Value.Str (get_sys ctx node))
                 :: acc)
               []));
    ]

let ensure_class cl =
  if Cluster.find_class cl "nameserver" = None then Cluster.register_class cl cls

(* One name-server object per shard, created lazily with its segments
   homed on the owning data server. *)
let shard_object om shard =
  let cl = Object_manager.cluster om in
  match Hashtbl.find_opt cl.Cluster.name_shards shard with
  | Some s -> s
  | None ->
      ensure_class cl;
      let obj =
        Object_manager.create_object om ~home:shard ~class_name:"nameserver"
          Value.Unit
      in
      Hashtbl.replace cl.Cluster.name_shards shard obj;
      (* fresh object: no bindings, so no directory either *)
      Ra.Sysname.Table.remove indexes obj;
      obj

let boot om =
  let cl = Object_manager.cluster om in
  shard_object om cl.Cluster.data_nodes.(0).Ra.Node.id

let shard_of om name = Cluster.name_shard (Object_manager.cluster om) name

let invoke_shard om ~node ~shard entry arg =
  Object_manager.invoke om ~node ~thread_id:0 ~origin:None ~txn:None
    ~obj:(shard_object om shard) ~entry arg

(* Lookups are lock-free: the bind path's insert-then-unlink ordering
   guarantees a racing reader sees either the old binding or the new
   one, never a gap, so readers pay no synchronization at all.  Only
   mutations serialize, exclusively per shard, so two clients can
   never interleave list surgery on the same persistent heap. *)
let with_write cl shard f =
  let l = Cluster.ns_lock cl shard in
  Sim.Rwlock.lock_write l;
  Fun.protect ~finally:(fun () -> Sim.Rwlock.unlock_write l) f

(* reads run wherever the caller sits (or a scheduled compute node) *)
let read_invoke ?on om ~name entry arg =
  let cl = Object_manager.cluster om in
  let node = match on with Some n -> n | None -> Cluster.pick_compute cl in
  invoke_shard om ~node ~shard:(shard_of om name) entry arg

(* writes are serialized per shard: routed to the shard's bind leader
   and run under the exclusive side of the shard lock *)
let write_invoke om ~name entry arg =
  let cl = Object_manager.cluster om in
  let shard = shard_of om name in
  let node = Cluster.bind_leader cl shard in
  with_write cl shard (fun () -> invoke_shard om ~node ~shard entry arg)

let bind om ~name sys =
  match
    write_invoke om ~name "bind"
      (Value.Pair (Value.Str name, Value.Str (Ra.Sysname.to_string sys)))
  with
  | Value.Unit -> ()
  | _ -> failwith "name server: bad bind reply"

let lookup_at ?on om ~name = read_invoke ?on om ~name "lookup" (Value.Str name)

let lookup ?on om name =
  match lookup_at ?on om ~name with
  | Value.Str s -> Ra.Sysname.of_string s
  | Value.Unit -> (
      (* remap fallback: a binding made before the last ring change
         may still live in the shard the previous ring assigned it *)
      let cl = Object_manager.cluster om in
      match cl.Cluster.prev_ring with
      | Some prev when cl.Cluster.name_sharding ->
          let old_shard = Ring.owner_of_string prev name in
          if
            old_shard <> shard_of om name
            && Hashtbl.mem cl.Cluster.name_shards old_shard
          then begin
            let node = Cluster.pick_compute cl in
            match
              invoke_shard om ~node ~shard:old_shard "lookup" (Value.Str name)
            with
            | Value.Str s -> Ra.Sysname.of_string s
            | _ -> None
          end
          else None
      | _ -> None)
  | _ -> failwith "name server: bad lookup reply"

let unbind om name =
  ignore (write_invoke om ~name "unbind" (Value.Str name));
  (* after a remap the binding may (also) live in the previous owner *)
  let cl = Object_manager.cluster om in
  match cl.Cluster.prev_ring with
  | Some prev when cl.Cluster.name_sharding ->
      let old_shard = Ring.owner_of_string prev name in
      if
        old_shard <> shard_of om name
        && Hashtbl.mem cl.Cluster.name_shards old_shard
      then begin
        let node = Cluster.bind_leader cl old_shard in
        ignore
          (with_write cl old_shard (fun () ->
               invoke_shard om ~node ~shard:old_shard "unbind" (Value.Str name)))
      end
  | _ -> ()

let bindings om =
  let cl = Object_manager.cluster om in
  let shards =
    Hashtbl.fold (fun shard _ acc -> shard :: acc) cl.Cluster.name_shards []
    |> List.sort Net.Address.compare
  in
  List.concat_map
    (fun shard ->
      let node = Cluster.pick_compute cl in
      match invoke_shard om ~node ~shard "list" Value.Unit with
      | Value.List l ->
          List.filter_map
            (fun v ->
              match v with
              | Value.Pair (Value.Str n, Value.Str s) -> (
                  match Ra.Sysname.of_string s with
                  | Some sys -> Some (n, sys)
                  | None -> None)
              | _ -> None)
            l
      | _ -> [])
    shards
