(** Consistent-hash ring over data-server addresses with virtual
    nodes.  Placement is a pure function of the member set, so every
    node that holds the same membership view computes the same owner
    for a key without coordination, and adding or removing one member
    moves only the arcs adjacent to its virtual nodes (expected K/n of
    the keys). *)

type t

(** [make ?vnodes members] builds a ring over the given addresses
    (deduplicated, order-insensitive).  [vnodes] virtual nodes per
    member (default 64) smooth the arc distribution.
    @raise Invalid_argument if [members] is empty. *)
val make : ?vnodes:int -> Net.Address.t list -> t

val members : t -> Net.Address.t list
val vnodes : t -> int

(** Hashes, exposed so callers (and tests) can agree on key
    derivation. *)
val key_of_int : int -> int

val key_of_string : string -> int
val key_of_sysname : Ra.Sysname.t -> int

(** Owner of the arc containing [key]. *)
val owner : t -> int -> Net.Address.t

val owner_of_string : t -> string -> Net.Address.t
val owner_of_sysname : t -> Ra.Sysname.t -> Net.Address.t

(** Distinct members in arc order starting at [key]'s slot — the
    preference list to walk when the primary owner is down. *)
val successors : t -> int -> Net.Address.t list

(** Did [key]'s owner change between two rings? *)
val moved : before:t -> after:t -> int -> bool
