(** The user object manager (a system object in the paper).

    Creates and deletes objects, activates them on compute servers
    (fetching the descriptor from the object's data server and
    building the virtual space), and implements invocation: mapping
    the thread into the object's address space, dispatching the entry
    point, and unmapping on return — locally, or on a remote compute
    server via a RaTP transaction. *)

exception No_object of Ra.Sysname.t
exception No_class of string
exception No_entry of Ra.Sysname.t * string

type t

val create : Cluster.t -> t
(** Install the object manager: registers the invocation service on
    every compute server. *)

val cluster : t -> Cluster.t

val create_object :
  t ->
  ?home:Net.Address.t ->
  ?on:Ra.Node.t ->
  ?thread_id:int ->
  ?origin:int ->
  ?consistency:Ra.Partition.consistency ->
  class_name:string ->
  Value.t ->
  Ra.Sysname.t
(** Instantiate a class: allocate and create the instance's segments
    on a data server ([home], default round robin), register the
    descriptor, and run the constructor (if any) on [on] (default:
    scheduler's choice).  Returns the new object's sysname.

    [consistency] (default {!Cluster.t.default_consistency}) is the
    coherence mode of the instance's data and heap segments; the
    shared code segment always stays [One_copy]. *)

val delete_object : t -> ?on:Ra.Node.t -> Ra.Sysname.t -> unit
(** Remove the object: delete its segments, unregister it, and drop
    activations cluster-wide.  Deleting a missing object raises
    {!No_object}. *)

val invoke :
  t ->
  node:Ra.Node.t ->
  thread_id:int ->
  origin:int option ->
  txn:(int * int) option ->
  obj:Ra.Sysname.t ->
  entry:string ->
  Value.t ->
  Value.t
(** Execute an entry point on [node] (the object is demand-paged
    there).  Raises {!No_object}, {!No_entry}, or whatever the entry
    body raises. *)

val invoke_remote :
  t ->
  from:Ra.Node.t ->
  target:Net.Address.t ->
  thread_id:int ->
  origin:int option ->
  txn:(int * int) option ->
  obj:Ra.Sysname.t ->
  entry:string ->
  Value.t ->
  Value.t
(** Ship the invocation to another compute server (the paper's
    RPC-like case) and wait for the result.  Raises
    {!Ctx.Invoke_error} on remote failure.

    When [target] is [from]'s own address the transport is bypassed
    entirely — no serialization, fragmentation, or wire traffic; the
    invocation runs as a direct {!invoke} (counted by
    {!local_invocations}) and failures still surface as
    {!Ctx.Invoke_error} so the caller sees identical semantics. *)

val visited : t -> int -> Ra.Sysname.t list
(** Objects a thread has entered, most recent first (thread-manager
    bookkeeping). *)

val end_thread : t -> int -> unit
(** Release per-thread state (per-thread object memory, visit log). *)

val invocations : t -> int
(** Total entry-point executions performed through this manager. *)

val local_invocations : t -> int
(** Invocations dispatched through {!invoke_remote} that took the
    same-node bypass instead of a RaTP transaction. *)

val metrics : t -> (string * Obs.Registry.metric) list
(** Live metric handles under ["om/"] paths, for an {!Obs.Registry}. *)
