(* Consistent-hash ring over data-server addresses, with virtual
   nodes.  Placement must be a pure function of the member set: two
   nodes that build a ring from the same membership view agree on
   every owner without exchanging messages, and a run re-executed from
   the same seed reproduces the same layout.  All hashing therefore
   avoids [Hashtbl.hash] (whose value is unspecified across versions)
   in favour of explicit mixers. *)

type t = {
  vnodes : int;
  members : Net.Address.t array; (* sorted, distinct *)
  points : int array; (* sorted ring positions, one per vnode *)
  owners : Net.Address.t array; (* owners.(i) owns arc ending at points.(i) *)
}

(* splitmix-style finalizer; multiplier constants chosen to fit in
   OCaml's 63-bit native int (anything >= 2^62 would be truncated) *)
let mix x =
  let x = x land max_int in
  let x = x lxor (x lsr 31) in
  let x = x * 0x2545F4914F6CDD1D land max_int in
  let x = x lxor (x lsr 29) in
  let x = x * 0x27BB2EE687B0B0FD land max_int in
  x lxor (x lsr 32)

let key_of_int = mix

let key_of_string s =
  (* FNV-1a over bytes (offset basis truncated to 62 bits so the
     literal fits a native int), then finalized *)
  let h = ref 0x3BF29CE484222325 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x100000001B3 land max_int)
    s;
  mix !h

let key_of_sysname (s : Ra.Sysname.t) =
  mix ((s.node * 0x1000003) lxor s.local)

let point_of ~addr ~vnode = mix ((addr lsl 20) lxor (vnode * 0x9E3779B1))

let make ?(vnodes = 64) members =
  let members =
    List.sort_uniq Int.compare members |> Array.of_list
  in
  if Array.length members = 0 then invalid_arg "Ring.make: no members";
  let n = Array.length members * vnodes in
  let entries = Array.make n (0, 0) in
  let i = ref 0 in
  Array.iter
    (fun addr ->
      for v = 0 to vnodes - 1 do
        entries.(!i) <- (point_of ~addr ~vnode:v, addr);
        incr i
      done)
    members;
  (* ties on point broken by address so the layout is total order *)
  Array.sort compare entries;
  {
    vnodes;
    members;
    points = Array.map fst entries;
    owners = Array.map snd entries;
  }

let members t = Array.to_list t.members
let vnodes t = t.vnodes

(* first ring position >= key, wrapping past the top back to slot 0 *)
let slot_of t key =
  let n = Array.length t.points in
  if key > t.points.(n - 1) then 0
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    (* invariant: points.(hi) >= key; points below lo are < key *)
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.points.(mid) >= key then hi := mid else lo := mid + 1
    done;
    !lo
  end

let owner t key = t.owners.(slot_of t key)
let owner_of_string t s = owner t (key_of_string s)
let owner_of_sysname t s = owner t (key_of_sysname s)

(* distinct owners in arc order starting at the key's slot: the
   preference list used when the primary owner is unusable *)
let successors t key =
  let n = Array.length t.points in
  let start = slot_of t key in
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let i = ref 0 in
  while !i < n && Hashtbl.length seen < Array.length t.members do
    let a = t.owners.((start + !i) mod n) in
    if not (Hashtbl.mem seen a) then begin
      Hashtbl.add seen a ();
      acc := a :: !acc
    end;
    incr i
  done;
  List.rev !acc

let moved ~before ~after key = owner before key <> owner after key
