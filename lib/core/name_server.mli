(** The name server — itself a Clouds object, sharded across the
    cluster's data servers.

    Users give objects high-level names; the name server translates
    them to sysnames.  True to the paper's philosophy, the service is
    implemented {e as application objects}: each data server hosts one
    name-server object holding the arc of the name space the placement
    ring assigns it, bindings live in that object's persistent data
    and heap, and lookups are ordinary invocations routed to the
    owning shard.  Lookups are accelerated by a volatile hash-indexed
    directory per shard (the durable form stays the persistent-heap
    list).  With {!Cluster.set_name_sharding} off, everything funnels
    through a single shard — the original centralized configuration,
    kept for A/B comparison. *)

val cls : Obj_class.t
(** The "nameserver" class (entries: bind, lookup, unbind, list). *)

val boot : Object_manager.t -> Ra.Sysname.t
(** Load the class (if needed) and create the default shard's object
    (lowest-addressed data server).  Idempotent.  Other shards boot
    lazily on first use. *)

val bind : Object_manager.t -> name:string -> Ra.Sysname.t -> unit
(** Register or replace a binding.  Routed to the owning shard's bind
    leader and serialized under the shard write lock. *)

val lookup : ?on:Ra.Node.t -> Object_manager.t -> string -> Ra.Sysname.t option
(** Resolve a name at its owning shard, running the invocation on
    [on] (default: the cluster's scheduling choice).  On a miss right
    after a ring remap, falls back to the shard the previous ring
    assigned the name. *)

val unbind : Object_manager.t -> string -> unit

val bindings : Object_manager.t -> (string * Ra.Sysname.t) list
(** All bindings across every booted shard, unordered. *)
