type t = {
  self : Ra.Sysname.t;
  class_name : string;
  node : Ra.Node.t;
  thread_id : int;
  origin : int option;
  mem : Memory.t;
  pheap : unit -> Pheap.t;
  vheap : unit -> Pheap.t;
  invoke : obj:Ra.Sysname.t -> entry:string -> Value.t -> Value.t;
  print : string -> unit;
  compute : Sim.Time.span -> unit;
  semaphore : string -> int -> Sim.Semaphore.t;
  obj_mutex : string -> Sim.Mutex.t;
  per_invocation : (string, Value.t) Hashtbl.t;
  per_thread : (string, Value.t) Hashtbl.t;
  membership : unit -> Membership.Monitor.view option;
  mutable txn : (int * int) option;
}

exception Invoke_error of string
