module P = Dsm.Protocol
module M = Membership.Monitor

type t = {
  cl : Cluster.t;
  node : Ra.Node.t;  (* monitor host; heal RPCs issue from here *)
  lost : Net.Address.t Ra.Sysname.Table.t;
      (* segments with no live replica, keyed to their last home so a
         rejoin can re-adopt them (the stable store survives crashes) *)
  healing : unit Ra.Sysname.Table.t;
  mutable known_dead : Net.Address.t list;
  mutable active : int;  (* heal passes in flight *)
  mutable last_heal_at : Sim.Time.t option;
  copied : Sim.Stats.counter;
  heals : Sim.Stats.counter;
}

let rpc t ~dst body =
  Ratp.Endpoint.call t.node.Ra.Node.endpoint ~dst ~service:P.service
    ~size:(P.request_bytes body) body

let healthy_data t =
  Array.to_list t.cl.Cluster.data_nodes
  |> List.filter_map (fun n ->
         let id = n.Ra.Node.id in
         if
           n.Ra.Node.alive
           && (match t.cl.Cluster.membership with
              | Some m -> M.usable m id
              | None -> true)
         then Some id
         else None)
  |> List.sort Net.Address.compare

(* The segment's size as the source currently stores it (an empty
   Read_pages reply carries the size and nothing else). *)
let probe_size t ~src ~seg =
  match rpc t ~dst:src (P.Read_pages { seg; from = 0; count = 0 }) with
  | Ok (P.Pages { size; _ }) -> Some size
  | Ok _ | Error Ratp.Endpoint.Timeout -> None

(* Give [dst] a fresh, all-zero segment of [size] bytes; a stale copy
   left over from an earlier replica stint is deleted first. *)
let prepare_target t ~seg ~dst ~size =
  let mode = Cluster.consistency_of t.cl seg in
  match rpc t ~dst (P.Create_segment { seg; size; mode }) with
  | Ok P.Segment_ok -> true
  | Ok P.Segment_error -> (
      match rpc t ~dst (P.Delete_segment seg) with
      | Ok _ -> (
          match rpc t ~dst (P.Create_segment { seg; size; mode }) with
          | Ok P.Segment_ok -> true
          | Ok _ | Error Ratp.Endpoint.Timeout -> false)
      | Error Ratp.Endpoint.Timeout -> false)
  | Ok _ | Error Ratp.Endpoint.Timeout -> false

(* Ship [seg]'s pages from [src] to [dst] in Read_pages/Backfill
   rounds.  The caller has already enlisted [dst] as a mirror, so
   client writes race the copy; [Backfill] lands a page only where
   the target is still zeroed, which makes the race harmless — a
   non-zero page was filled by a fresher mirrored write.

   The batch is kept small on purpose: a batch of pages rides in one
   RaTP call, and a call that takes longer than the transport's whole
   retry ladder to deliver is indistinguishable from a dead peer.
   Four pages (~16 KB) stays well inside even the aggressive configs
   the experiments use.  Returns false if either side stops
   answering. *)
let backfill t ~seg ~src ~dst =
  let batch = 4 in
  let exception Fail in
  try
    let rec go from =
      match rpc t ~dst:src (P.Read_pages { seg; from; count = batch }) with
      | Ok (P.Pages { size; pages }) ->
          (if pages <> [] then
             let writes = List.map (fun (p, b) -> (seg, p, b)) pages in
             match rpc t ~dst (P.Backfill writes) with
             | Ok P.Batch_ok -> Sim.Stats.incr_by t.copied (List.length pages)
             | Ok _ | Error Ratp.Endpoint.Timeout -> raise Fail);
          let total = (size + Ra.Page.size - 1) / Ra.Page.size in
          if from + batch >= total then true else go (from + batch)
      | Ok _ | Error Ratp.Endpoint.Timeout -> raise Fail
    in
    go 0
  with Fail -> false

(* Bring one fresh copy of [seg] up on [dst]: wipe/create the target,
   enlist it in the replica list (mirroring starts immediately), then
   backfill the pages.  On failure the half-copied target is taken
   back out of the replica list — a backup with holes must never be
   promoted. *)
let copy_segment t ~seg ~src ~dst =
  match probe_size t ~src ~seg with
  | None -> false
  | Some size ->
      prepare_target t ~seg ~dst ~size
      &&
      let current = Cluster.replicas_of t.cl seg in
      Cluster.set_replicas t.cl seg (current @ [ dst ]);
      backfill t ~seg ~src ~dst
      ||
      let rolled =
        List.filter
          (fun a -> not (Net.Address.equal a dst))
          (Cluster.replicas_of t.cl seg)
      in
      (match rolled with
      | [] -> ()
      | _ :: _ -> Cluster.set_replicas t.cl seg rolled);
      false

(* A fresh backup also needs the object directory entries whose
   segments it now mirrors; descriptors are tiny, so the whole
   directory of [src] is mirrored onto [dst]. *)
let copy_directory t ~src ~dst =
  match rpc t ~dst:src P.List_objects with
  | Ok (P.Objects objs) ->
      List.iter
        (fun obj ->
          match rpc t ~dst:src (P.Get_descriptor obj) with
          | Ok (P.Descriptor (Some d)) -> (
              match rpc t ~dst (P.Register_object { obj; descriptor = d }) with
              | Ok _ | Error Ratp.Endpoint.Timeout -> ())
          | Ok _ | Error Ratp.Endpoint.Timeout -> ())
        (List.sort Ra.Sysname.compare objs)
  | Ok _ | Error Ratp.Endpoint.Timeout -> ()

(* Top up every under-replicated segment to min(factor, healthy data
   servers).  Segments are visited in sysname order and targets
   chosen by address after the primary (wrapping), so a reheal trace
   is a pure function of the seed. *)
let heal_pass t =
  let copied_any = ref false in
  let dir_pairs = ref [] in
  let segs =
    Ra.Sysname.Table.fold
      (fun seg _ acc -> seg :: acc)
      t.cl.Cluster.seg_home []
    |> List.sort Ra.Sysname.compare
  in
  List.iter
    (fun seg ->
      if
        (not (Ra.Sysname.Table.mem t.healing seg))
        && not (Ra.Sysname.Table.mem t.lost seg)
      then begin
        let healthy = healthy_data t in
        let reps =
          Cluster.replicas_of t.cl seg
          |> List.filter (fun a -> List.exists (Net.Address.equal a) healthy)
        in
        match reps with
        | [] -> ()
        | primary :: _ ->
            let want = min t.cl.Cluster.replication (List.length healthy) in
            let missing = want - List.length reps in
            if missing > 0 then begin
              Ra.Sysname.Table.replace t.healing seg ();
              Fun.protect
                ~finally:(fun () -> Ra.Sysname.Table.remove t.healing seg)
              @@ fun () ->
              let cands =
                List.filter
                  (fun a -> not (List.exists (Net.Address.equal a) reps))
                  healthy
              in
              let above, below =
                List.partition (fun a -> a > primary) cands
              in
              let rec take n = function
                | x :: tl when n > 0 -> x :: take (n - 1) tl
                | _ -> []
              in
              let targets = take missing (above @ below) in
              let added =
                List.filter
                  (fun dst -> copy_segment t ~seg ~src:primary ~dst)
                  targets
              in
              if added <> [] then begin
                (* [copy_segment] already enlisted each target in the
                   replica list (before its backfill, so mirrored
                   writes covered the copy window) *)
                copied_any := true;
                List.iter
                  (fun dst -> dir_pairs := (primary, dst) :: !dir_pairs)
                  added
              end
            end
      end)
    segs;
  List.sort_uniq compare (List.rev !dir_pairs)
  |> List.iter (fun (src, dst) -> copy_directory t ~src ~dst);
  if !copied_any then Sim.Stats.incr t.heals

(* Is any tracked segment still short of copies?  (Lost segments are
   excluded: nothing can be copied until their last home rejoins.) *)
let under_replicated t =
  let healthy = healthy_data t in
  let want_max = min t.cl.Cluster.replication (List.length healthy) in
  Ra.Sysname.Table.fold
    (fun seg _ acc ->
      acc
      ||
      if Ra.Sysname.Table.mem t.lost seg then false
      else
        let live =
          Cluster.replicas_of t.cl seg
          |> List.filter (fun a -> List.exists (Net.Address.equal a) healthy)
        in
        live <> [] && List.length live < want_max)
    t.cl.Cluster.seg_home false

(* A heal pass can fail half-way (the source of a copy can itself die,
   or a transfer can outlive the transport's patience), so one view
   change buys a bounded series of passes: keep trying while copies
   are still missing, give up after [max_rounds] so a cluster that
   cannot be healed does not loop forever. *)
let spawn_heal t =
  let max_rounds = 8 in
  t.active <- t.active + 1;
  ignore
    (Ra.Node.spawn t.node "re-replicate" (fun () ->
         Fun.protect
           ~finally:(fun () ->
             t.active <- t.active - 1;
             t.last_heal_at <-
               Some (Sim.Engine.now t.node.Ra.Node.eng))
           (fun () ->
             heal_pass t;
             let rec retry n =
               if n > 0 && under_replicated t then begin
                 Sim.sleep (Sim.Time.ms 30);
                 heal_pass t;
                 retry (n - 1)
               end
             in
             retry max_rounds)))

(* Inline metadata failover, run synchronously from the view
   transition: every client locate after this instant resolves to a
   surviving replica.  Page copies happen in the background pass. *)
let failover t dead_now =
  let is_dead a = List.exists (Net.Address.equal a) dead_now in
  let segs =
    Ra.Sysname.Table.fold
      (fun seg home acc -> (seg, home) :: acc)
      t.cl.Cluster.seg_home []
    |> List.sort (fun (a, _) (b, _) -> Ra.Sysname.compare a b)
  in
  List.iter
    (fun (seg, home) ->
      let reps = Cluster.replicas_of t.cl seg in
      let live = List.filter (fun a -> not (is_dead a)) reps in
      if List.length live < List.length reps then
        match live with
        | [] ->
            (* no survivor: remember the last primary so its rejoin
               re-adopts the segment *)
            Ra.Sysname.Table.replace t.lost seg home;
            Ra.Sysname.Table.replace t.cl.Cluster.seg_replicas seg []
        | _ -> Cluster.set_replicas t.cl seg live)
    segs;
  let doomed_objs =
    Ra.Sysname.Table.fold
      (fun obj home acc -> if is_dead home then obj :: acc else acc)
      t.cl.Cluster.obj_home []
  in
  List.iter (Ra.Sysname.Table.remove t.cl.Cluster.obj_home) doomed_objs

(* A condemned server rejoined (heartbeats resumed): its stable store
   survived, so segments that died with it come back as they were. *)
let readopt t a =
  let segs =
    Ra.Sysname.Table.fold
      (fun seg home acc -> if Net.Address.equal home a then seg :: acc else acc)
      t.lost []
    |> List.sort Ra.Sysname.compare
  in
  List.iter
    (fun seg ->
      Ra.Sysname.Table.remove t.lost seg;
      Cluster.set_replicas t.cl seg [ a ])
    segs

let on_view t (v : M.view) =
  let dead_now =
    List.filter_map
      (fun (m : M.member) ->
        match m.status with
        | M.Dead -> Some m.addr
        | M.Alive | M.Suspect -> None)
      v.M.members
  in
  let newly_dead =
    List.filter
      (fun a -> not (List.exists (Net.Address.equal a) t.known_dead))
      dead_now
  in
  let newly_alive =
    List.filter
      (fun a -> not (List.exists (Net.Address.equal a) dead_now))
      t.known_dead
  in
  t.known_dead <- dead_now;
  List.iter (readopt t) newly_alive;
  if newly_dead <> [] then failover t dead_now;
  if newly_dead <> [] || newly_alive <> [] then spawn_heal t

let install cl mon =
  let t =
    {
      cl;
      node = M.host mon;
      lost = Ra.Sysname.Table.create 16;
      healing = Ra.Sysname.Table.create 16;
      known_dead = [];
      active = 0;
      last_heal_at = None;
      copied = Sim.Stats.counter "repl.pages_copied";
      heals = Sim.Stats.counter "repl.reheals";
    }
  in
  M.subscribe mon (fun v -> on_view t v);
  t

let rec quiesce t =
  if t.active > 0 then begin
    Sim.sleep (Sim.Time.ms 5);
    quiesce t
  end

let last_heal t = t.last_heal_at
let pages_copied t = Sim.Stats.value t.copied
let reheals t = Sim.Stats.value t.heals
let lost_segments t = Ra.Sysname.Table.length t.lost
