type t = {
  eng : Sim.Engine.t;
  ether : Net.Ethernet.t;
  params : Ra.Params.t;
  replication : int;
  compute_nodes : Ra.Node.t array;
  clients : Dsm.Dsm_client.t array;
  data_nodes : Ra.Node.t array;
  servers : Dsm.Dsm_server.t array;
  workstations : (Ra.Node.t * Terminal.t) array;
  classes : (string, Obj_class.t) Hashtbl.t;
  class_code : (string, Ra.Sysname.t) Hashtbl.t;
  seg_home : Net.Address.t Ra.Sysname.Table.t;
  seg_replicas : Net.Address.t list Ra.Sysname.Table.t;
  seg_modes : Ra.Partition.consistency Ra.Sysname.Table.t;
      (* per-segment consistency mode; absent = One_copy *)
  default_consistency : Ra.Partition.consistency;
  obj_home : Net.Address.t Ra.Sysname.Table.t;
  volatile : (int, unit Ra.Sysname.Table.t) Hashtbl.t;
  mutable scheduler : [ `Round_robin | `Least_loaded ];
  mutable rr_compute : int;
  mutable rr_data : int;
  mutable next_thread : int;
  mutable next_txn : int;
  mutable entry_wrapper :
    Obj_class.consistency -> Ctx.t -> (unit -> Value.t) -> Value.t;
  mutable ring : Ring.t;
  mutable prev_ring : Ring.t option;
  mutable name_sharding : bool;
  name_shards : (Net.Address.t, Ra.Sysname.t) Hashtbl.t;
  ns_locks : (Net.Address.t, Sim.Rwlock.t) Hashtbl.t;
  mutable membership : Membership.Monitor.t option;
}

let ns_lock t shard =
  match Hashtbl.find_opt t.ns_locks shard with
  | Some m -> m
  | None ->
      let m = Sim.Rwlock.create ~label:"ns-shard" () in
      Hashtbl.replace t.ns_locks shard m;
      m

let locate_segment t seg =
  match Ra.Sysname.Table.find_opt t.seg_home seg with
  | Some addr -> addr
  | None -> raise (Ra.Partition.No_segment seg)

let add_segment t seg home = Ra.Sysname.Table.replace t.seg_home seg home

let replicas_of t seg =
  match Ra.Sysname.Table.find_opt t.seg_replicas seg with
  | Some l -> l
  | None -> (
      match Ra.Sysname.Table.find_opt t.seg_home seg with
      | Some home -> [ home ]
      | None -> [])

(* Record the full replica list of a segment; the head is the primary
   every client resolves to. *)
let set_replicas t seg replicas =
  match replicas with
  | [] -> invalid_arg "Cluster.set_replicas: empty replica list"
  | primary :: _ ->
      Ra.Sysname.Table.replace t.seg_replicas seg replicas;
      Ra.Sysname.Table.replace t.seg_home seg primary

let remove_segment t seg =
  Ra.Sysname.Table.remove t.seg_home seg;
  Ra.Sysname.Table.remove t.seg_replicas seg;
  Ra.Sysname.Table.remove t.seg_modes seg

let consistency_of t seg =
  match Ra.Sysname.Table.find_opt t.seg_modes seg with
  | Some m -> m
  | None -> Ra.Partition.One_copy

(* Record a segment's consistency mode cluster-wide (clients resolve
   through [consistency_of]) and mirror it onto every server that
   stores a replica, so the home defers/merges accordingly. *)
let set_consistency t seg mode =
  (match mode with
  | Ra.Partition.One_copy -> Ra.Sysname.Table.remove t.seg_modes seg
  | m -> Ra.Sysname.Table.replace t.seg_modes seg m);
  Array.iter
    (fun server -> Dsm.Dsm_server.set_consistency server seg mode)
    t.servers

let membership_usable t addr =
  match t.membership with
  | Some m -> Membership.Monitor.usable m addr
  | None -> true

(* Placement of a fresh replicated segment: the primary plus the next
   [replication - 1] healthy data servers by address, wrapping — a
   deterministic copyset that spreads load without a placement
   service. *)
let replica_targets t ~primary =
  let others =
    Array.to_list t.data_nodes
    |> List.filter_map (fun n ->
           let id = n.Ra.Node.id in
           if id = primary then None
           else if n.Ra.Node.alive && membership_usable t id then Some id
           else None)
    |> List.sort Net.Address.compare
  in
  let above, below = List.partition (fun a -> a > primary) others in
  let rec take n = function
    | x :: tl when n > 0 -> x :: take (n - 1) tl
    | _ -> []
  in
  primary :: take (t.replication - 1) (above @ below)

let volatile_table t node_id =
  match Hashtbl.find_opt t.volatile node_id with
  | Some tbl -> tbl
  | None ->
      let tbl = Ra.Sysname.Table.create 8 in
      Hashtbl.replace t.volatile node_id tbl;
      tbl

let register_volatile t node seg =
  Ra.Sysname.Table.replace (volatile_table t node.Ra.Node.id) seg ()

let is_volatile t node seg =
  Ra.Sysname.Table.mem (volatile_table t node.Ra.Node.id) seg

(* Volatile segments never touch the network: they always start
   zeroed and their writeback is a no-op (they die with the
   activation). *)
let volatile_partition =
  {
    Ra.Partition.name = "volatile";
    fetch = (fun ~seg:_ ~page:_ ~mode:_ -> Ra.Partition.Zeroed);
    writeback = (fun ~seg:_ ~page:_ _ -> ());
  }

let create eng ?(params = Ra.Params.default) ?ratp_config ?ether_config
    ?batch_io ?prefetch_window ?(replication = 1) ?group_commit_window
    ?wal_max_batch ?checkpoint_every
    ?(default_consistency = Ra.Partition.One_copy) ~compute ~data ~workstations
    () =
  if compute < 1 || data < 1 then
    invalid_arg "Cluster.create: need at least one compute and one data server";
  if replication < 1 then invalid_arg "Cluster.create: replication < 1";
  let ether = Net.Ethernet.create eng ?config:ether_config () in
  let t_ref = ref None in
  let locate seg =
    match !t_ref with
    | Some t -> locate_segment t seg
    | None -> assert false
  in
  let consistency seg =
    match !t_ref with
    | Some t -> consistency_of t seg
    | None -> Ra.Partition.One_copy
  in
  let data_nodes =
    Array.init data (fun i ->
        Ra.Node.create ether ~id:(i + 1) ~kind:Ra.Node.Data ~params
          ?ratp_config ())
  in
  let servers =
    Array.map
      (fun n ->
        Dsm.Dsm_server.create n ?group_commit_window ?wal_max_batch
          ?checkpoint_every ())
      data_nodes
  in
  let compute_nodes =
    Array.init compute (fun i ->
        Ra.Node.create ether ~id:(data + i + 1) ~kind:Ra.Node.Compute ~params
          ?ratp_config ())
  in
  let clients =
    Array.map
      (fun n ->
        Dsm.Dsm_client.create n ~locate ~consistency ?batch_io
          ?prefetch_window ())
      compute_nodes
  in
  let wk =
    Array.init workstations (fun i ->
        let node =
          Ra.Node.create ether ~id:(data + compute + i + 1)
            ~kind:Ra.Node.Workstation ~params ?ratp_config ()
        in
        let term = Terminal.create ~wid:node.Ra.Node.id in
        User_io.install node term;
        (node, term))
  in
  let t =
    {
      eng;
      ether;
      params;
      replication;
      compute_nodes;
      clients;
      data_nodes;
      servers;
      workstations = wk;
      classes = Hashtbl.create 16;
      class_code = Hashtbl.create 16;
      seg_home = Ra.Sysname.Table.create 64;
      seg_replicas = Ra.Sysname.Table.create 64;
      seg_modes = Ra.Sysname.Table.create 16;
      default_consistency;
      obj_home = Ra.Sysname.Table.create 64;
      volatile = Hashtbl.create 16;
      scheduler = `Round_robin;
      rr_compute = 0;
      rr_data = 0;
      next_thread = 1;
      next_txn = 1;
      entry_wrapper = (fun _label _ctx body -> body ());
      ring =
        Ring.make
          (Array.to_list (Array.map (fun n -> n.Ra.Node.id) data_nodes));
      prev_ring = None;
      name_sharding = true;
      name_shards = Hashtbl.create 8;
      ns_locks = Hashtbl.create 8;
      membership = None;
    }
  in
  t_ref := Some t;
  (* a segment's current primary forwards committed writes to its
     backups; everyone else (including the backups) forwards nothing *)
  Array.iter
    (fun server ->
      let self = (Dsm.Dsm_server.node server).Ra.Node.id in
      Dsm.Dsm_server.set_mirrors server (fun seg ->
          match Ra.Sysname.Table.find_opt t.seg_replicas seg with
          | Some (primary :: backups) when Net.Address.equal primary self ->
              backups
          | _ -> []))
    servers;
  (* compute nodes route volatile segments locally and everything
     else through DSM *)
  Array.iteri
    (fun i node ->
      let dsm_partition = Dsm.Dsm_client.partition clients.(i) in
      Ra.Mmu.set_resolver node.Ra.Node.mmu (fun seg ->
          if is_volatile t node seg then volatile_partition else dsm_partition))
    compute_nodes;
  t

let pick_round_robin t =
  let n = Array.length t.compute_nodes in
  let rec pick tries =
    if tries >= n then invalid_arg "Cluster.pick_compute: no live compute server"
    else begin
      let node = t.compute_nodes.(t.rr_compute mod n) in
      t.rr_compute <- t.rr_compute + 1;
      if node.Ra.Node.alive && membership_usable t node.Ra.Node.id then node
      else pick (tries + 1)
    end
  in
  pick 0

let pick_least_loaded t =
  let best =
    Array.fold_left
      (fun acc node ->
        if
          (not node.Ra.Node.alive)
          || not (membership_usable t node.Ra.Node.id)
        then acc
        else begin
          let load = Ra.Cpu.load node.Ra.Node.cpu + node.Ra.Node.sched_load in
          match acc with
          | Some (_, best_load) when best_load <= load -> acc
          | _ -> Some (node, load)
        end)
      None t.compute_nodes
  in
  match best with
  | Some (node, _) -> node
  | None -> invalid_arg "Cluster.pick_compute: no live compute server"

let pick_compute t =
  match t.scheduler with
  | `Round_robin -> pick_round_robin t
  | `Least_loaded -> pick_least_loaded t

let pick_data t =
  let n = Array.length t.data_nodes in
  let rec pick tries =
    if tries >= n then invalid_arg "Cluster.pick_data: no live data server"
    else begin
      let node = t.data_nodes.(t.rr_data mod n) in
      t.rr_data <- t.rr_data + 1;
      if node.Ra.Node.alive && membership_usable t node.Ra.Node.id then
        node.Ra.Node.id
      else pick (tries + 1)
    end
  in
  pick 0

(* Ring placement: the owner of the key's arc, skipping to the next
   distinct member along the ring while the candidate is down.  Falls
   back to round robin only if every ring member is unusable (the
   cluster is effectively dead anyway). *)
let place_data t key =
  let rec first = function
    | [] -> pick_data t
    | addr :: rest ->
        let node =
          Array.to_list t.data_nodes
          |> List.find_opt (fun n -> n.Ra.Node.id = addr)
        in
        let ok =
          match node with
          | Some n -> n.Ra.Node.alive && membership_usable t addr
          | None -> false
        in
        if ok then addr else first rest
  in
  first (Ring.successors t.ring key)

let place_object t obj = place_data t (Ring.key_of_sysname obj)

let set_name_sharding t flag = t.name_sharding <- flag

(* The shard that owns a name binding.  With sharding off, everything
   funnels through the lowest-addressed data server — the historical
   centralized name server, kept as the A/B baseline. *)
let name_shard t name =
  if t.name_sharding then place_data t (Ring.key_of_string name)
  else t.data_nodes.(0).Ra.Node.id

(* Writes to a shard are serialized through one deterministic compute
   node (the shard's bind leader): concurrent binds from many clients
   land on the same CPU and interleave under its object mutex instead
   of racing DSM writes to the shard's persistent heap from two nodes
   at once. *)
let bind_leader t shard =
  let n = Array.length t.compute_nodes in
  let rec pick i tries =
    if tries >= n then pick_compute t
    else begin
      let node = t.compute_nodes.(i mod n) in
      if node.Ra.Node.alive && membership_usable t node.Ra.Node.id then node
      else pick (i + 1) (tries + 1)
    end
  in
  pick (shard mod n) 0

let all_nodes t =
  Array.to_list t.data_nodes
  @ Array.to_list t.compute_nodes
  @ List.map fst (Array.to_list t.workstations)

let node_by_id t id =
  List.find_opt (fun n -> n.Ra.Node.id = id) (all_nodes t)

let client_of t id =
  let rec find i =
    if i >= Array.length t.compute_nodes then None
    else if t.compute_nodes.(i).Ra.Node.id = id then Some t.clients.(i)
    else find (i + 1)
  in
  find 0

let server_at t addr =
  let rec find i =
    if i >= Array.length t.data_nodes then None
    else if t.data_nodes.(i).Ra.Node.id = addr then Some t.servers.(i)
    else find (i + 1)
  in
  find 0

let terminal_of t id =
  let rec find i =
    if i >= Array.length t.workstations then None
    else begin
      let node, term = t.workstations.(i) in
      if node.Ra.Node.id = id then Some term else find (i + 1)
    end
  in
  find 0

(* Pseudo machine code: stable non-zero contents so that code-page
   fetches cost a data copy, not a zero fill. *)
let code_bytes class_name page =
  let b = Bytes.create Ra.Page.size in
  let seed = Hashtbl.hash (class_name, page) in
  for i = 0 to Ra.Page.size - 1 do
    Bytes.set b i (Char.chr ((seed + i) land 0xff))
  done;
  b

let register_class t (cls : Obj_class.t) =
  if Hashtbl.mem t.classes cls.Obj_class.c_name then
    invalid_arg "Cluster.register_class: already loaded";
  Hashtbl.replace t.classes cls.Obj_class.c_name cls;
  let home = place_data t (Ring.key_of_string cls.Obj_class.c_name) in
  match server_at t home with
  | None -> assert false
  | Some server ->
      let node = Dsm.Dsm_server.node server in
      let seg = Ra.Sysname.fresh node.Ra.Node.names in
      (* code segments are materialized on every replica target at
         load time (configuration-time action, so direct store writes
         rather than RPCs) *)
      let targets = replica_targets t ~primary:home in
      List.iter
        (fun addr ->
          match server_at t addr with
          | None -> assert false
          | Some server ->
              let store = Dsm.Dsm_server.store server in
              Store.Segment_store.create_segment store seg
                ~size:(cls.Obj_class.code_pages * Ra.Page.size);
              for page = 0 to cls.Obj_class.code_pages - 1 do
                Store.Segment_store.write_page store seg page
                  (code_bytes cls.Obj_class.c_name page)
              done)
        targets;
      set_replicas t seg targets;
      Hashtbl.replace t.class_code cls.Obj_class.c_name seg

let find_class t name = Hashtbl.find_opt t.classes name

let fresh_txn t node =
  let seq = t.next_txn in
  t.next_txn <- seq + 1;
  (node.Ra.Node.id, seq)

(* Membership is opt-in: without it the cluster behaves exactly as
   before (no heartbeat traffic, suspicion driven by RaTP timeouts
   alone), which keeps the calibrated experiments untouched. *)
(* Rebuild the placement ring over the data servers the view still
   admits.  When the member set actually changed, evict exactly the
   cached locations whose owner moved between the two rings — the
   affected arc — and keep every other binding warm. *)
let remap_ring t (v : Membership.Monitor.view) =
  let usable_data =
    Array.to_list t.data_nodes
    |> List.filter_map (fun n ->
           let id = n.Ra.Node.id in
           let condemned =
             List.exists
               (fun (m : Membership.Monitor.member) ->
                 Net.Address.equal m.addr id
                 && m.status = Membership.Monitor.Dead)
               v.Membership.Monitor.members
           in
           if condemned then None else Some id)
  in
  match usable_data with
  | [] -> () (* no usable data server: keep the old ring *)
  | members when members <> Ring.members t.ring ->
      let before = t.ring in
      let after = Ring.make ~vnodes:(Ring.vnodes before) members in
      t.ring <- after;
      t.prev_ring <- Some before;
      Array.iter
        (fun c ->
          ignore
            (Dsm.Dsm_client.evict_where c (fun seg _home ->
                 Ring.moved ~before ~after (Ring.key_of_sysname seg))))
        t.clients
  | _ -> ()

let start_membership t ?config () =
  match t.membership with
  | Some m -> m
  | None ->
      let host = t.compute_nodes.(0) in
      let m = Membership.Monitor.create ?config host in
      t.membership <- Some m;
      List.iter
        (fun n ->
          if n.Ra.Node.id <> host.Ra.Node.id then Membership.Monitor.watch m n)
        (all_nodes t);
      (* every DSM server and client folds each new view in: Dead
         peers leave coherence fan-outs and location caches at once *)
      Membership.Monitor.subscribe m (fun v ->
          Array.iter (fun s -> Dsm.Dsm_server.apply_view s v) t.servers;
          Array.iter (fun c -> Dsm.Dsm_client.apply_view c v) t.clients;
          remap_ring t v);
      m

let stop_membership t =
  match t.membership with
  | Some m -> Membership.Monitor.stop m
  | None -> ()

let membership_view t = Option.map Membership.Monitor.view t.membership
