type t = {
  eng : Sim.Engine.t;
  ether : Net.Ethernet.t;
  params : Ra.Params.t;
  compute_nodes : Ra.Node.t array;
  clients : Dsm.Dsm_client.t array;
  data_nodes : Ra.Node.t array;
  servers : Dsm.Dsm_server.t array;
  workstations : (Ra.Node.t * Terminal.t) array;
  classes : (string, Obj_class.t) Hashtbl.t;
  class_code : (string, Ra.Sysname.t) Hashtbl.t;
  seg_home : Net.Address.t Ra.Sysname.Table.t;
  obj_home : Net.Address.t Ra.Sysname.Table.t;
  volatile : (int, unit Ra.Sysname.Table.t) Hashtbl.t;
  mutable scheduler : [ `Round_robin | `Least_loaded ];
  mutable rr_compute : int;
  mutable rr_data : int;
  mutable next_thread : int;
  mutable next_txn : int;
  mutable entry_wrapper :
    Obj_class.consistency -> Ctx.t -> (unit -> Value.t) -> Value.t;
  mutable name_server : Ra.Sysname.t option;
}

let locate_segment t seg =
  match Ra.Sysname.Table.find_opt t.seg_home seg with
  | Some addr -> addr
  | None -> raise (Ra.Partition.No_segment seg)

let add_segment t seg home = Ra.Sysname.Table.replace t.seg_home seg home

let volatile_table t node_id =
  match Hashtbl.find_opt t.volatile node_id with
  | Some tbl -> tbl
  | None ->
      let tbl = Ra.Sysname.Table.create 8 in
      Hashtbl.replace t.volatile node_id tbl;
      tbl

let register_volatile t node seg =
  Ra.Sysname.Table.replace (volatile_table t node.Ra.Node.id) seg ()

let is_volatile t node seg =
  Ra.Sysname.Table.mem (volatile_table t node.Ra.Node.id) seg

(* Volatile segments never touch the network: they always start
   zeroed and their writeback is a no-op (they die with the
   activation). *)
let volatile_partition =
  {
    Ra.Partition.name = "volatile";
    fetch = (fun ~seg:_ ~page:_ ~mode:_ -> Ra.Partition.Zeroed);
    writeback = (fun ~seg:_ ~page:_ _ -> ());
  }

let create eng ?(params = Ra.Params.default) ?ratp_config ?ether_config
    ?batch_io ?prefetch_window ~compute ~data ~workstations () =
  if compute < 1 || data < 1 then
    invalid_arg "Cluster.create: need at least one compute and one data server";
  let ether = Net.Ethernet.create eng ?config:ether_config () in
  let t_ref = ref None in
  let locate seg =
    match !t_ref with
    | Some t -> locate_segment t seg
    | None -> assert false
  in
  let data_nodes =
    Array.init data (fun i ->
        Ra.Node.create ether ~id:(i + 1) ~kind:Ra.Node.Data ~params
          ?ratp_config ())
  in
  let servers = Array.map (fun n -> Dsm.Dsm_server.create n ()) data_nodes in
  let compute_nodes =
    Array.init compute (fun i ->
        Ra.Node.create ether ~id:(data + i + 1) ~kind:Ra.Node.Compute ~params
          ?ratp_config ())
  in
  let clients =
    Array.map
      (fun n ->
        Dsm.Dsm_client.create n ~locate ?batch_io ?prefetch_window ())
      compute_nodes
  in
  let wk =
    Array.init workstations (fun i ->
        let node =
          Ra.Node.create ether ~id:(data + compute + i + 1)
            ~kind:Ra.Node.Workstation ~params ?ratp_config ()
        in
        let term = Terminal.create ~wid:node.Ra.Node.id in
        User_io.install node term;
        (node, term))
  in
  let t =
    {
      eng;
      ether;
      params;
      compute_nodes;
      clients;
      data_nodes;
      servers;
      workstations = wk;
      classes = Hashtbl.create 16;
      class_code = Hashtbl.create 16;
      seg_home = Ra.Sysname.Table.create 64;
      obj_home = Ra.Sysname.Table.create 64;
      volatile = Hashtbl.create 16;
      scheduler = `Round_robin;
      rr_compute = 0;
      rr_data = 0;
      next_thread = 1;
      next_txn = 1;
      entry_wrapper = (fun _label _ctx body -> body ());
      name_server = None;
    }
  in
  t_ref := Some t;
  (* compute nodes route volatile segments locally and everything
     else through DSM *)
  Array.iteri
    (fun i node ->
      let dsm_partition = Dsm.Dsm_client.partition clients.(i) in
      Ra.Mmu.set_resolver node.Ra.Node.mmu (fun seg ->
          if is_volatile t node seg then volatile_partition else dsm_partition))
    compute_nodes;
  t

let pick_round_robin t =
  let n = Array.length t.compute_nodes in
  let rec pick tries =
    if tries >= n then invalid_arg "Cluster.pick_compute: no live compute server"
    else begin
      let node = t.compute_nodes.(t.rr_compute mod n) in
      t.rr_compute <- t.rr_compute + 1;
      if node.Ra.Node.alive then node else pick (tries + 1)
    end
  in
  pick 0

let pick_least_loaded t =
  let best =
    Array.fold_left
      (fun acc node ->
        if not node.Ra.Node.alive then acc
        else begin
          let load = Ra.Cpu.load node.Ra.Node.cpu + node.Ra.Node.sched_load in
          match acc with
          | Some (_, best_load) when best_load <= load -> acc
          | _ -> Some (node, load)
        end)
      None t.compute_nodes
  in
  match best with
  | Some (node, _) -> node
  | None -> invalid_arg "Cluster.pick_compute: no live compute server"

let pick_compute t =
  match t.scheduler with
  | `Round_robin -> pick_round_robin t
  | `Least_loaded -> pick_least_loaded t

let pick_data t =
  let n = Array.length t.data_nodes in
  let rec pick tries =
    if tries >= n then invalid_arg "Cluster.pick_data: no live data server"
    else begin
      let node = t.data_nodes.(t.rr_data mod n) in
      t.rr_data <- t.rr_data + 1;
      if node.Ra.Node.alive then node.Ra.Node.id else pick (tries + 1)
    end
  in
  pick 0

let all_nodes t =
  Array.to_list t.data_nodes
  @ Array.to_list t.compute_nodes
  @ List.map fst (Array.to_list t.workstations)

let node_by_id t id =
  List.find_opt (fun n -> n.Ra.Node.id = id) (all_nodes t)

let client_of t id =
  let rec find i =
    if i >= Array.length t.compute_nodes then None
    else if t.compute_nodes.(i).Ra.Node.id = id then Some t.clients.(i)
    else find (i + 1)
  in
  find 0

let server_at t addr =
  let rec find i =
    if i >= Array.length t.data_nodes then None
    else if t.data_nodes.(i).Ra.Node.id = addr then Some t.servers.(i)
    else find (i + 1)
  in
  find 0

let terminal_of t id =
  let rec find i =
    if i >= Array.length t.workstations then None
    else begin
      let node, term = t.workstations.(i) in
      if node.Ra.Node.id = id then Some term else find (i + 1)
    end
  in
  find 0

(* Pseudo machine code: stable non-zero contents so that code-page
   fetches cost a data copy, not a zero fill. *)
let code_bytes class_name page =
  let b = Bytes.create Ra.Page.size in
  let seed = Hashtbl.hash (class_name, page) in
  for i = 0 to Ra.Page.size - 1 do
    Bytes.set b i (Char.chr ((seed + i) land 0xff))
  done;
  b

let register_class t (cls : Obj_class.t) =
  if Hashtbl.mem t.classes cls.Obj_class.c_name then
    invalid_arg "Cluster.register_class: already loaded";
  Hashtbl.replace t.classes cls.Obj_class.c_name cls;
  let home = pick_data t in
  match server_at t home with
  | None -> assert false
  | Some server ->
      let store = Dsm.Dsm_server.store server in
      let node = Dsm.Dsm_server.node server in
      let seg = Ra.Sysname.fresh node.Ra.Node.names in
      Store.Segment_store.create_segment store seg
        ~size:(cls.Obj_class.code_pages * Ra.Page.size);
      for page = 0 to cls.Obj_class.code_pages - 1 do
        Store.Segment_store.write_page store seg page
          (code_bytes cls.Obj_class.c_name page)
      done;
      add_segment t seg home;
      Hashtbl.replace t.class_code cls.Obj_class.c_name seg

let find_class t name = Hashtbl.find_opt t.classes name

let fresh_txn t node =
  let seq = t.next_txn in
  t.next_txn <- seq + 1;
  (node.Ra.Node.id, seq)
