(** Automatic re-replication of under-replicated segments.

    Subscribes to the membership monitor.  When a view condemns a
    data server, the replicator immediately repairs the placement
    tables — every segment whose primary died is repointed at its
    first surviving backup, and segments with no surviving copy are
    recorded as lost — then runs a background heal pass that copies
    each under-replicated segment ([Read_pages] batches applied
    through the existing [Put_batch] path) onto healthy data servers
    until the cluster's replication factor is restored, and mirrors
    the object directory entries alongside.  When a dead server's
    heartbeats resume (its stable store survived the crash), its lost
    segments are re-adopted and topped back up.

    Invariant: a write acknowledged to a client before the crash is
    on every current replica once {!quiesce} returns — the primary
    applied it and forwarded it to the backups, and heal passes copy
    whole segments from the surviving primary. *)

type t

val install : Cluster.t -> Membership.Monitor.t -> t
(** Wire the replicator into a cluster whose monitor is running.
    Heal passes run on the monitor's host node. *)

val quiesce : t -> unit
(** Block until no heal pass is in flight. *)

val last_heal : t -> Sim.Time.t option
(** Completion instant of the most recent heal pass. *)

val pages_copied : t -> int
(** Pages shipped by heal passes over the replicator's lifetime. *)

val reheals : t -> int
(** Heal passes that copied at least one segment. *)

val lost_segments : t -> int
(** Segments that currently have no live replica (their last copy
    died and has not rejoined). *)
