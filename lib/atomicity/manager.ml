module P = Dsm.Protocol
module Cl = Clouds.Cluster

exception Aborted of string

(* Internal control-flow signal: the current transaction cannot
   continue (deadlock timeout, cancelled lock, failed vote). *)
exception Txn_abort_signal

type scope = Global | Local

type status = Active | Rolling_back | Finished

type state = {
  token : int * int;
  txn : P.txn_id;
  scope : scope;
  thread_id : int;
  coord : Ra.Node.t;  (* node where the transaction began *)
  mutable status : status;
  mutable locks : (Ra.Sysname.t * P.lock_kind) list;
  mutable lock_servers : Net.Address.t list;
  mutable write_segs : Ra.Sysname.t list;
  mutable merge_segs : (Ra.Node.t * Ra.Sysname.t) list;
      (* commutative segments written under this transaction: never
         locked, never in the 2PC write set — their deltas are merged
         at the home when the transaction commits *)
  mutable nodes : Ra.Node.t list;
  mutable rolled : bool;
}

type t = {
  om : Clouds.Object_manager.t;
  cl : Cl.t;
  parallel_commit : bool;
      (* fan 2PC prepare/commit/abort RPCs out to all participants
         concurrently; serial mode survives for A/B experiments *)
  batch_io : bool;
      (* carry a Local commit's dirty pages as one Put_batch per home
         server instead of a Put_page per page; serial mode survives
         for A/B experiments.  Global commits are unaffected: their
         writes must ride the Prepare (one per home) for atomicity *)
  txns : (int * int, state) Hashtbl.t;
  outcomes : (int * int, bool) Hashtbl.t;  (* true = committed *)
  by_pid : (int, state) Hashtbl.t;
  local_locks : (int, Dsm.Lock_table.t) Hashtbl.t;
  deadlock_timeout : Sim.Time.span;
  max_retries : int;
  code_segs : unit Ra.Sysname.Table.t;
  mutable code_segs_seen : int;
  commit_count : Sim.Stats.counter;
  abort_count : Sim.Stats.counter;
  retry_count : Sim.Stats.counter;
  lock_rpc_count : Sim.Stats.counter;
  commit_hist : Sim.Stats.hist;
}

let object_manager t = t.om
let active_txns t = Hashtbl.length t.txns
let commits t = Sim.Stats.value t.commit_count
let aborts t = Sim.Stats.value t.abort_count
let retries t = Sim.Stats.value t.retry_count
let lock_rpcs t = Sim.Stats.value t.lock_rpc_count
let commit_hist t = t.commit_hist

let metrics t =
  [
    ("atomicity/commits", Obs.Registry.Counter t.commit_count);
    ("atomicity/aborts", Obs.Registry.Counter t.abort_count);
    ("atomicity/retries", Obs.Registry.Counter t.retry_count);
    ("atomicity/lock_rpcs", Obs.Registry.Counter t.lock_rpc_count);
    ("atomicity/commit_ms", Obs.Registry.Hist t.commit_hist);
  ]

let local_table t node_id =
  match Hashtbl.find_opt t.local_locks node_id with
  | Some tbl -> tbl
  | None ->
      let tbl = Dsm.Lock_table.create () in
      Hashtbl.replace t.local_locks node_id tbl;
      tbl

(* Class code segments are read-only and shared; locking them would
   serialize unrelated transactions for no benefit. *)
let is_code t seg =
  if Hashtbl.length t.cl.Cl.class_code <> t.code_segs_seen then begin
    Ra.Sysname.Table.reset t.code_segs;
    Hashtbl.iter
      (fun _ s -> Ra.Sysname.Table.replace t.code_segs s ())
      t.cl.Cl.class_code;
    t.code_segs_seen <- Hashtbl.length t.cl.Cl.class_code
  end;
  Ra.Sysname.Table.mem t.code_segs seg

let dsm_rpc node ~dst body =
  Ratp.Endpoint.call node.Ra.Node.endpoint ~dst ~service:P.service
    ~size:(P.request_bytes body) body

(* One RPC per participant, all in flight at once: 2PC needs every
   participant's answer but no ordering between participants, so each
   phase costs one round trip (or one timeout) regardless of how many
   data servers the transaction spans.  Results come back in input
   order, so vote counting and error handling stay deterministic. *)
let participant_rpcs t node msgs =
  (* fan-out workers run under fresh pids: re-bind the caller's span
     so their RPCs stay in the transaction's trace *)
  let parent = Obs.Tracer.current () in
  let send (dst, body) = Obs.Tracer.under parent (fun () -> dsm_rpc node ~dst body) in
  if t.parallel_commit then Sim.Fanout.map msgs ~label:"2pc-rpc" ~f:send
  else List.map send msgs

(* --- rollback ------------------------------------------------------ *)

(* RPCs about a transaction must come from a live machine: the
   coordinator may be the very node whose crash we are cleaning up
   after. *)
let live_origin t st =
  if st.coord.Ra.Node.alive then st.coord
  else
    match
      Array.to_list t.cl.Cl.compute_nodes
      |> List.find_opt (fun n -> n.Ra.Node.alive)
    with
    | Some n -> n
    | None -> st.coord

let send_abort_everywhere t st =
 Obs.Tracer.with_span "2pc.abort" @@ fun () ->
  let origin = live_origin t st in
  let homes =
    List.sort_uniq Net.Address.compare
      (st.lock_servers
      @ List.filter_map
          (fun seg ->
            match Cl.locate_segment t.cl seg with
            | home -> Some home
            | exception Ra.Partition.No_segment _ -> None)
          st.write_segs)
  in
  List.iter
    (fun r -> match r with Ok _ | Error Ratp.Endpoint.Timeout -> ())
    (participant_rpcs t origin
       (List.map (fun home -> (home, P.Abort { txn = st.txn })) homes))

let rollback t st =
  if not st.rolled then begin
    st.rolled <- true;
    st.status <- Rolling_back;
    if st.scope = Global then Hashtbl.replace t.outcomes st.token false;
    (* undo: drop the dirty frames; the stores still hold the
       pre-transaction images *)
    List.iter
      (fun node ->
        List.iter
          (fun seg -> Ra.Mmu.drop_segment node.Ra.Node.mmu seg)
          st.write_segs)
      st.nodes;
    (match st.scope with
    | Global -> send_abort_everywhere t st
    | Local ->
        List.iter
          (fun node ->
            Dsm.Lock_table.release_txn (local_table t node.Ra.Node.id) st.txn)
          st.nodes);
    st.status <- Finished;
    Sim.Stats.incr t.abort_count
  end

(* --- locking ------------------------------------------------------- *)

(* Deadlock watchdogs must run the FULL rollback — dropping the
   transaction's dirty frames before releasing its locks — otherwise
   the competing transaction can grab the lock and page in our
   uncommitted data through DSM before we discard it. *)
let spawn_rollback t st =
  ignore
    (Sim.Engine.spawn t.cl.Cl.eng "deadlock-breaker" (fun () -> rollback t st))

let held_kind st seg =
  List.fold_left
    (fun acc (s, k) ->
      if Ra.Sysname.equal s seg then
        match (acc, k) with
        | Some P.W, _ | _, P.W -> Some P.W
        | _, k -> Some k
      else acc)
    None st.locks

let note_lock st seg kind =
  st.locks <- (seg, kind) :: List.filter (fun (s, _) -> not (Ra.Sysname.equal s seg)) st.locks

(* Deadlock timeouts are jittered: when several transactions block on
   each other, the one whose watchdog fires last survives the others'
   aborts and gets the lock instead of everyone giving up at once. *)
let jittered_timeout t =
  let u = Sim.Rng.float (Sim.Engine.rng t.cl.Cl.eng) 1.0 in
  t.deadlock_timeout + int_of_float (float_of_int t.deadlock_timeout *. u)

let acquire_global t st node seg kind =
  let home = Cl.locate_segment t.cl seg in
  if not (List.mem home st.lock_servers) then
    st.lock_servers <- home :: st.lock_servers;
  Sim.Stats.incr t.lock_rpc_count;
  (* deadlock watchdog: if the lock is not granted in time, abort the
     transaction server-side so the blocked request resolves *)
  let acquired = ref false in
  let eng = t.cl.Cl.eng in
  Sim.Engine.at eng
    (Sim.Time.add (Sim.Engine.now eng) (jittered_timeout t))
    (fun () ->
      if (not !acquired) && st.status = Active then begin
        st.status <- Rolling_back;
        spawn_rollback t st
      end);
  match
    Obs.Tracer.with_span "txn.lock" (fun () ->
        dsm_rpc node ~dst:home (P.Lock_segment { seg; kind; txn = st.txn }))
  with
  | Ok P.Lock_granted ->
      acquired := true;
      if st.status <> Active then raise Txn_abort_signal;
      note_lock st seg kind
  | Ok P.Lock_cancelled ->
      acquired := true;
      raise Txn_abort_signal
  | Ok _ | Error Ratp.Endpoint.Timeout ->
      acquired := true;
      st.status <- (if st.status = Active then Rolling_back else st.status);
      raise Txn_abort_signal

let acquire_local t st node seg kind =
  let tbl = local_table t node.Ra.Node.id in
  let acquired = ref false in
  let eng = t.cl.Cl.eng in
  Sim.Engine.at eng
    (Sim.Time.add (Sim.Engine.now eng) (jittered_timeout t))
    (fun () ->
      if (not !acquired) && st.status = Active then begin
        st.status <- Rolling_back;
        spawn_rollback t st
      end);
  match Dsm.Lock_table.acquire tbl seg st.txn kind with
  | `Granted ->
      acquired := true;
      if st.status <> Active then raise Txn_abort_signal;
      note_lock st seg kind
  | `Cancelled ->
      acquired := true;
      raise Txn_abort_signal

let ensure_lock t st node seg kind =
  let needed =
    match (held_kind st seg, kind) with
    | Some P.W, _ -> None
    | Some P.R, P.R -> None
    | Some P.R, P.W -> Some P.W
    | None, k -> Some k
  in
  match needed with
  | None -> ()
  | Some kind -> (
      match st.scope with
      | Global -> acquire_global t st node seg kind
      | Local -> acquire_local t st node seg kind)

(* --- the MMU access hook ------------------------------------------- *)

let hook t node seg _page mode =
  match Hashtbl.find_opt t.by_pid (Sim.self ()) with
  | None -> ()
  | Some st ->
      if st.status <> Active then raise Txn_abort_signal;
      if Cl.is_volatile t.cl node seg || is_code t seg then ()
      else begin
        match Cl.consistency_of t.cl seg with
        | Ra.Partition.Commutative _ ->
            (* arbitration-free: no locks, no 2PC write set; the
               deltas merge at the home when the transaction commits
               (and survive an abort — merges are not undoable) *)
            if
              mode = Ra.Partition.Write
              && not
                   (List.exists
                      (fun (n, s) -> n == node && Ra.Sysname.equal s seg)
                      st.merge_segs)
            then st.merge_segs <- (node, seg) :: st.merge_segs
        | Ra.Partition.One_copy | Ra.Partition.Release ->
            if not (List.memq node st.nodes) then st.nodes <- node :: st.nodes;
            let kind =
              match mode with
              | Ra.Partition.Read -> P.R
              | Ra.Partition.Write -> P.W
            in
            if
              kind = P.W
              && not (List.exists (Ra.Sysname.equal seg) st.write_segs)
            then st.write_segs <- seg :: st.write_segs;
            ensure_lock t st node seg kind
      end

(* --- commit -------------------------------------------------------- *)

(* Collect this transaction's dirty pages, grouped by home data
   server, remembering where each frame lives for mark_clean. *)
let collect_writes t st =
  let by_home : (Net.Address.t, P.write_set ref) Hashtbl.t = Hashtbl.create 4 in
  let frames = ref [] in
  List.iter
    (fun node ->
      List.iter
        (fun seg ->
          let dirty = Ra.Mmu.dirty_pages node.Ra.Node.mmu seg in
          if dirty <> [] then begin
            let home = Cl.locate_segment t.cl seg in
            let cell =
              match Hashtbl.find_opt by_home home with
              | Some c -> c
              | None ->
                  let c = ref [] in
                  Hashtbl.replace by_home home c;
                  c
            in
            List.iter
              (fun (page, data) ->
                cell := (seg, page, data) :: !cell;
                frames := (node, seg, page) :: !frames)
              dirty
          end)
        st.write_segs)
    st.nodes;
  let grouped =
    Hashtbl.fold (fun home cell acc -> (home, List.rev !cell) :: acc) by_home []
    |> List.sort (fun (a, _) (b, _) -> Net.Address.compare a b)
  in
  (grouped, !frames)

let mark_all_clean frames =
  List.iter
    (fun (node, seg, page) -> Ra.Mmu.mark_clean node.Ra.Node.mmu seg page)
    frames

(* Commutative segments ride outside the 2PC write set: their dirty
   pages become merge deltas shipped by the owning node's DSM client
   at the commit point. *)
let flush_merges t st =
  List.iter
    (fun (node, seg) ->
      match Cl.client_of t.cl node.Ra.Node.id with
      | Some client -> Dsm.Dsm_client.flush_segment client seg
      | None -> ())
    (List.rev st.merge_segs)

let commit t st =
  if st.status <> Active then raise Txn_abort_signal;
  let commit_start = Sim.now () in
  let grouped, frames = collect_writes t st in
  match st.scope with
  | Global ->
      let all_yes =
        Obs.Tracer.with_span "2pc.prepare" (fun () ->
            participant_rpcs t st.coord
              (List.map
                 (fun (home, writes) ->
                   (home, P.Prepare { txn = st.txn; writes }))
                 grouped)
            |> List.for_all (fun vote ->
                   match vote with
                   | Ok (P.Vote true) -> true
                   | Ok _ | Error Ratp.Endpoint.Timeout -> false))
      in
      if not all_yes then begin
        st.status <- Rolling_back;
        raise Txn_abort_signal
      end;
      (* the commit point: participants that crash from here on learn
         the outcome from the coordinator at recovery *)
      Hashtbl.replace t.outcomes st.token true;
      (* clean our frames NOW, while the locks are still held at the
         servers: once a Commit message releases a lock, a successor
         transaction may re-dirty these frames, and a later blanket
         mark_clean would silently discard its writes *)
      mark_all_clean frames;
      let involved =
        List.sort_uniq Net.Address.compare
          (List.map fst grouped @ st.lock_servers)
      in
      Obs.Tracer.with_span "2pc.commit" (fun () ->
          List.iter
            (fun r -> match r with Ok _ | Error Ratp.Endpoint.Timeout -> ())
            (participant_rpcs t st.coord
               (List.map
                  (fun home -> (home, P.Commit { txn = st.txn }))
                  involved)));
      flush_merges t st;
      st.status <- Finished;
      Sim.Stats.hadd_span t.commit_hist
        (Sim.Time.diff (Sim.now ()) commit_start);
      Sim.Stats.incr t.commit_count
  | Local ->
      let msgs =
        if t.batch_io then
          List.map (fun (home, writes) -> (home, P.Put_batch writes)) grouped
        else
          List.concat_map
            (fun (home, writes) ->
              List.map
                (fun (seg, page, data) ->
                  (home, P.Put_page { seg; page; data }))
                writes)
            grouped
      in
      Obs.Tracer.with_span "lcp.commit" (fun () ->
          List.iter
            (fun r ->
              match r with
              | Ok P.Batch_ok -> ()
              | Ok _ | Error Ratp.Endpoint.Timeout ->
                  st.status <- Rolling_back;
                  raise Txn_abort_signal)
            (participant_rpcs t st.coord msgs));
      mark_all_clean frames;
      List.iter
        (fun node ->
          Dsm.Lock_table.release_txn (local_table t node.Ra.Node.id) st.txn)
        st.nodes;
      flush_merges t st;
      st.status <- Finished;
      Sim.Stats.hadd_span t.commit_hist
        (Sim.Time.diff (Sim.now ()) commit_start);
      Sim.Stats.incr t.commit_count

(* --- the entry wrapper --------------------------------------------- *)

let with_pid t st f =
  let pid = Sim.self () in
  match Hashtbl.find_opt t.by_pid pid with
  | Some existing when existing == st -> f ()
  | Some _ | None ->
      let previous = Hashtbl.find_opt t.by_pid pid in
      Hashtbl.replace t.by_pid pid st;
      Fun.protect
        ~finally:(fun () ->
          match previous with
          | Some prev -> Hashtbl.replace t.by_pid pid prev
          | None -> Hashtbl.remove t.by_pid pid)
        f

let run_txn t scope (ctx : Clouds.Ctx.t) body =
  let rec attempt n =
    let token = Cl.fresh_txn t.cl ctx.Clouds.Ctx.node in
    let st =
      {
        token;
        txn = { P.tnode = fst token; tseq = snd token };
        scope;
        thread_id = ctx.Clouds.Ctx.thread_id;
        coord = ctx.Clouds.Ctx.node;
        status = Active;
        locks = [];
        lock_servers = [];
        write_segs = [];
        merge_segs = [];
        nodes = [ ctx.Clouds.Ctx.node ];
        rolled = false;
      }
    in
    Hashtbl.replace t.txns token st;
    ctx.Clouds.Ctx.txn <- Some token;
    let cleanup () =
      ctx.Clouds.Ctx.txn <- None;
      Hashtbl.remove t.txns token
    in
    let retry_or_fail () =
      if n < t.max_retries then begin
        Sim.Stats.incr t.retry_count;
        (* randomized exponential backoff to break repeated collisions *)
        let scale = 1 lsl min n 6 in
        Sim.sleep
          (Sim.Time.us
             (2000 * scale * (1 + Sim.Rng.int (Sim.Engine.rng t.cl.Cl.eng) 4)));
        attempt (n + 1)
      end
      else raise (Aborted "transaction retries exhausted")
    in
    match with_pid t st body with
    | v -> (
        match commit t st with
        | () ->
            cleanup ();
            v
        | exception Txn_abort_signal ->
            rollback t st;
            cleanup ();
            retry_or_fail ())
    | exception Txn_abort_signal ->
        rollback t st;
        cleanup ();
        retry_or_fail ()
    | exception e ->
        (* a user exception aborts the transaction and propagates *)
        rollback t st;
        cleanup ();
        raise e
  in
  attempt 1

let join_txn t st (ctx : Clouds.Ctx.t) body =
  if not (List.memq ctx.Clouds.Ctx.node st.nodes) then
    st.nodes <- ctx.Clouds.Ctx.node :: st.nodes;
  with_pid t st body

let wrapper t label (ctx : Clouds.Ctx.t) body =
  match ctx.Clouds.Ctx.txn with
  | Some token -> (
      match Hashtbl.find_opt t.txns token with
      | Some st -> join_txn t st ctx body
      | None -> body ())
  | None -> (
      match label with
      | Clouds.Obj_class.S -> body ()
      | Clouds.Obj_class.Gcp -> run_txn t Global ctx body
      | Clouds.Obj_class.Lcp -> run_txn t Local ctx body)

(* --- installation --------------------------------------------------- *)

let install om ?(deadlock_timeout = Sim.Time.sec 5) ?(max_retries = 3)
    ?(parallel_commit = true) ?(batch_io = true) () =
  let cl = Clouds.Object_manager.cluster om in
  let t =
    {
      om;
      cl;
      parallel_commit;
      batch_io;
      txns = Hashtbl.create 32;
      outcomes = Hashtbl.create 64;
      by_pid = Hashtbl.create 32;
      local_locks = Hashtbl.create 8;
      deadlock_timeout;
      max_retries;
      code_segs = Ra.Sysname.Table.create 16;
      code_segs_seen = -1;
      commit_count = Sim.Stats.counter "atomicity.commits";
      abort_count = Sim.Stats.counter "atomicity.aborts";
      retry_count = Sim.Stats.counter "atomicity.retries";
      lock_rpc_count = Sim.Stats.counter "atomicity.lock_rpcs";
      commit_hist = Sim.Stats.hist "atomicity.commit_ms";
    }
  in
  Array.iter
    (fun node ->
      Ra.Mmu.set_access_hook node.Ra.Node.mmu
        (Some (fun seg page mode -> hook t node seg page mode)))
    cl.Cl.compute_nodes;
  (* recovering data servers resolve in-doubt transactions by asking
     the coordinator: answerable only while the coordinating machine
     is up (its volatile outcome table), else presumed abort *)
  Array.iter
    (fun server ->
      Dsm.Dsm_server.set_outcome_oracle server (fun token ->
          let coordinator_alive =
            match Cl.node_by_id cl (fst token) with
            | Some n -> n.Ra.Node.alive
            | None -> false
          in
          if not coordinator_alive then `Unknown
          else
            match Hashtbl.find_opt t.outcomes token with
            | Some true -> `Committed
            | Some false -> `Aborted
            | None ->
                (* alive coordinator, no decision yet: if the
                   transaction is still running, the participant must
                   hold on; a token we never saw is presumed abort *)
                if Hashtbl.mem t.txns token then `Pending else `Unknown))
    cl.Cl.servers;
  cl.Cl.entry_wrapper <- (fun label ctx body -> wrapper t label ctx body);
  t

let abort_thread t ~thread_id =
  let victims =
    Hashtbl.fold
      (fun _ st acc ->
        if st.thread_id = thread_id && st.status = Active then st :: acc
        else acc)
      t.txns []
  in
  List.iter
    (fun st ->
      rollback t st;
      Hashtbl.remove t.txns st.token;
      let pids =
        Hashtbl.fold
          (fun pid s acc -> if s == st then pid :: acc else acc)
          t.by_pid []
      in
      List.iter (Hashtbl.remove t.by_pid) pids)
    victims
