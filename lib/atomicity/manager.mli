(** Consistency-preserving threads (§5.2.1 of the paper).

    Installing the manager hooks every compute server's MMU and the
    cluster's entry wrapper.  Entry points labelled [S] run as plain
    s-threads: no locking, no recovery.  An entry labelled [Gcp]
    (global consistency) or [Lcp] (local consistency) that is not
    already inside a transaction begins one:

    - every segment the thread {e reads} is read-locked and every
      segment it {e updates} is write-locked, automatically, at
      access time — [Gcp] locks live at the data servers (visible
      cluster-wide), [Lcp] locks are per-node;
    - updates stay in local page frames until commit;
    - on return, [Gcp] transactions run two-phase commit across the
      involved data servers (write-ahead logged, presumed abort)
      while [Lcp] transactions push their updates in one batch;
    - on failure or deadlock timeout the transaction aborts: dirty
      frames are dropped (the store still has the pre-transaction
      state), locks are released, and the body is retried a bounded
      number of times.

    Nested and remote invocations join the ambient transaction (one
    flat transaction per top-level cp entry).  Mixing s-thread access
    with cp-thread data remains possible and dangerous, exactly as
    the paper warns. *)

exception Aborted of string
(** The transaction could not commit (deadlock, server failure) and
    retries were exhausted; raised to the invoker. *)

type t

val install :
  Clouds.Object_manager.t ->
  ?deadlock_timeout:Sim.Time.span ->
  ?max_retries:int ->
  ?parallel_commit:bool ->
  ?batch_io:bool ->
  unit ->
  t
(** Hook the cluster.  [deadlock_timeout] (default 5 s simulated)
    bounds lock waits before an abort; [max_retries] (default 3)
    bounds automatic re-execution of an aborted entry body.
    [parallel_commit] (default [true]) issues each two-phase-commit
    phase — prepare, commit, abort, and local-consistency batch
    pushes — to all participant data servers concurrently, so a phase
    costs one round trip regardless of transaction span; [false]
    keeps one blocking RPC per participant, for A/B experiments.
    [batch_io] (default [true]) carries a Local commit's dirty pages
    as one [Put_batch] per home server; [false] sends a [Put_page]
    per page.  Global commits always ride their one-per-home
    [Prepare] regardless — splitting them would break atomicity. *)

val object_manager : t -> Clouds.Object_manager.t
(** The object manager this instance hooks. *)

val abort_thread : t -> thread_id:int -> unit
(** Failure-detector entry point: abort the active transaction begun
    by this thread (if any), releasing its locks everywhere.  Used
    when a thread is killed externally (e.g. PET losers, crashed
    nodes). *)

val active_txns : t -> int
val commits : t -> int
val aborts : t -> int
val retries : t -> int

val lock_rpcs : t -> int
(** Lock requests sent to data servers (global transactions). *)

val commit_hist : t -> Sim.Stats.hist
(** Commit-phase latency (ms) of successful transactions, measured
    from the start of [commit] (prepare fan-out) to the client ack —
    under group commit the ack rides a batched log flush, so this is
    where the pipeline's latency/throughput trade shows up. *)

val metrics : t -> (string * Obs.Registry.metric) list
(** Live metric handles under ["atomicity/"] paths, for an
    {!Obs.Registry}. *)
