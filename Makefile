.PHONY: all build test check faults experiments clean

all: build

build:
	dune build

test:
	dune runtest

# The tier-1 gate: everything compiles and every suite passes.
check:
	dune build
	dune runtest

faults:
	dune exec bin/experiments_main.exe -- faults

experiments:
	dune exec bin/experiments_main.exe

clean:
	dune clean
