.PHONY: all build test check faults experiments bench-json clean

all: build

build:
	dune build

test:
	dune runtest

# The tier-1 gate: everything compiles and every suite passes.
check:
	dune build
	dune runtest

faults:
	dune exec bin/experiments_main.exe -- faults

experiments:
	dune exec bin/experiments_main.exe

# Machine-readable benchmark baseline (wall-clock + simulated
# metrics); BENCH_QUICK=1 selects the reduced sizes CI uses.
bench-json:
	dune exec bench/main.exe -- --json $(if $(BENCH_QUICK),--quick,)

clean:
	dune clean
