.PHONY: all build test check faults experiments load-smoke obs-smoke commit-smoke consistency-smoke bench-json bench-diff bench-baseline clean

all: build

build:
	dune build

test:
	dune runtest

# The tier-1 gate: everything compiles and every suite passes.
check:
	dune build
	dune runtest

faults:
	dune exec bin/experiments_main.exe -- faults

experiments:
	dune exec bin/experiments_main.exe

# CI-sized open-loop load grid (both A/B arms of the sharded name
# service); the full grid is `experiments_main -- load`.
load-smoke:
	dune exec bin/experiments_main.exe -- --quick load

# Traced mid-size load cell: exports obs_trace.json (Chrome
# trace-event JSON, validated by the binary itself before it exits
# zero) and obs_metrics.json (per-node metrics registries), and
# prints the critical-path stage breakdown.
obs-smoke:
	dune exec bin/experiments_main.exe -- trace

# Group-commit A/B smoke pair (force-per-record vs 5 ms window at 64
# sessions) plus the kill-mid-commit recovery scenario; the full
# clients x window x footprint grid is `experiments_main -- commit`.
commit-smoke:
	dune exec bin/experiments_main.exe -- --quick commit

# Relaxed-consistency A/B smoke grid (one-copy vs release vs
# commutative at reduced sizes); the full grid is
# `experiments_main -- consistency`.
consistency-smoke:
	dune exec bin/experiments_main.exe -- --quick consistency

# Machine-readable benchmark baseline (wall-clock + simulated
# metrics); BENCH_QUICK=1 selects the reduced sizes CI uses.
bench-json:
	dune exec bench/main.exe -- --json $(if $(BENCH_QUICK),--quick,)

# Fail if the fixed-seed simulated metrics drift from the committed
# quick-size baseline.  The simulation is deterministic and
# machine-independent, so any diff is a real behaviour change; the
# host-specific "wall_clock" suffix is stripped from both sides.
bench-diff:
	dune exec bench/main.exe -- --json --quick
	@mkdir -p _build
	@sed 's/, "wall_clock".*$$/}/' BENCH_core.json > _build/bench_now.sim
	@sed 's/, "wall_clock".*$$/}/' bench/BENCH_baseline.json > _build/bench_base.sim
	@if cmp -s _build/bench_base.sim _build/bench_now.sim; then \
	  echo "bench-diff: simulated metrics match the committed baseline"; \
	else \
	  echo "bench-diff: simulated metrics DRIFTED from bench/BENCH_baseline.json:"; \
	  diff _build/bench_base.sim _build/bench_now.sim | head -20; \
	  echo "(intentional? refresh with: make bench-baseline)"; \
	  exit 1; \
	fi
	@if cmp -s bench/BENCH_obs_baseline.json BENCH_obs.json; then \
	  echo "bench-diff: obs section matches the committed baseline"; \
	else \
	  echo "bench-diff: obs section DRIFTED from bench/BENCH_obs_baseline.json:"; \
	  diff bench/BENCH_obs_baseline.json BENCH_obs.json | head -20; \
	  echo "(intentional? refresh with: make bench-baseline)"; \
	  exit 1; \
	fi
	@if cmp -s bench/BENCH_commit_baseline.json BENCH_commit.json; then \
	  echo "bench-diff: commit section matches the committed baseline"; \
	else \
	  echo "bench-diff: commit section DRIFTED from bench/BENCH_commit_baseline.json:"; \
	  diff bench/BENCH_commit_baseline.json BENCH_commit.json | head -20; \
	  echo "(intentional? refresh with: make bench-baseline)"; \
	  exit 1; \
	fi
	@if cmp -s bench/BENCH_consistency_baseline.json BENCH_consistency.json; then \
	  echo "bench-diff: consistency section matches the committed baseline"; \
	else \
	  echo "bench-diff: consistency section DRIFTED from bench/BENCH_consistency_baseline.json:"; \
	  diff bench/BENCH_consistency_baseline.json BENCH_consistency.json | head -20; \
	  echo "(intentional? refresh with: make bench-baseline)"; \
	  exit 1; \
	fi

# Refresh the committed baseline after an intentional perf change.
bench-baseline:
	dune exec bench/main.exe -- --json --quick
	cp BENCH_core.json bench/BENCH_baseline.json
	cp BENCH_obs.json bench/BENCH_obs_baseline.json
	cp BENCH_commit.json bench/BENCH_commit_baseline.json
	cp BENCH_consistency.json bench/BENCH_consistency_baseline.json
	@echo "updated bench/BENCH_{baseline,obs_baseline,commit_baseline,consistency_baseline}.json -- commit them"

clean:
	dune clean
