(* Distributed sorting over one persistent object — the experiment of
   §5.1 ("Distributed Programming").

   The array lives in a single Clouds object on a data server.  We run
   the same sort with 1, 2, 4 and 8 worker threads; the workers execute
   on different compute servers, and the parts of the array each one
   touches migrate to its machine automatically through DSM.  The
   numbers show the paper's trade-off between computation and
   communication: the parallel phase scales, the merge phase and page
   migration eat into the total.

   Run with:  dune exec examples/distributed_sort.exe *)

let elements = 16_384

let () =
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let sys = Clouds.boot eng ~compute:8 ~data:1 ~workstations:1 () in
      Printf.printf
        "distributed sort of %d elements held in ONE object (8 compute servers)\n\n"
        elements;
      Printf.printf "%8s %12s %12s %12s %10s %12s\n" "workers" "total(ms)"
        "sort(ms)" "merge(ms)" "speedup" "page moves";
      let base = ref 0.0 in
      List.iter
        (fun workers ->
          let obj = Apps.Sorter.create sys.om ~capacity:elements () in
          Apps.Sorter.fill sys.om ~obj ~n:elements ~seed:42;
          let sum = Apps.Sorter.checksum sys.om ~obj in
          let run = Apps.Sorter.distributed_sort sys.om ~obj ~workers in
          assert (Apps.Sorter.is_sorted sys.om ~obj);
          assert (Apps.Sorter.checksum sys.om ~obj = sum);
          if workers = 1 then base := run.Apps.Sorter.elapsed_ms;
          Printf.printf "%8d %12.1f %12.1f %12.1f %9.2fx %12d\n" workers
            run.Apps.Sorter.elapsed_ms run.Apps.Sorter.sort_ms
            run.Apps.Sorter.merge_ms
            (!base /. run.Apps.Sorter.elapsed_ms)
            run.Apps.Sorter.remote_page_moves)
        [ 1; 2; 4; 8 ];
      print_newline ();
      print_endline
        "the data never left its object: the computation was distributed, not the data structure")
