(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md's experiment index).

   Part 1 prints the reproduction tables — simulated time versus the
   paper's measurements — at full sample sizes.  Part 2 wraps each
   experiment in a Bechamel microbenchmark so the wall-clock cost of
   the simulation itself is tracked (one Test.make per table/figure).

   dune exec bench/main.exe            -- tables + bechamel
   dune exec bench/main.exe -- tables  -- reproduction tables only
   dune exec bench/main.exe -- bench   -- bechamel only
   dune exec bench/main.exe -- --json [--quick]
                                       -- machine-readable baseline:
                                          writes BENCH_core.json *)

open Bechamel
open Toolkit

let reproduction_tables () =
  print_endline "Clouds reproduction: paper vs simulation";
  print_endline "========================================\n";
  print_string (Experiments.T1_kernel.report (Experiments.T1_kernel.run ()));
  print_newline ();
  print_string (Experiments.T2_network.report (Experiments.T2_network.run ()));
  print_newline ();
  print_string
    (Experiments.T3_invocation.report (Experiments.T3_invocation.run ()));
  print_newline ();
  print_string (Experiments.F1_sort.report (Experiments.F1_sort.run ()));
  print_newline ();
  print_string
    (Experiments.F2_consistency.report (Experiments.F2_consistency.run ()));
  print_newline ();
  print_string (Experiments.F3_pet.report (Experiments.F3_pet.run ~trials:25 ()));
  print_newline ();
  print_string (Experiments.Consistency.report (Experiments.Consistency.run ()));
  print_newline ();
  print_string (Experiments.Ablations.report ());
  print_newline ()

(* One Bechamel test per table/figure; each run executes the whole
   simulated experiment at a reduced size so a benchmark iteration
   stays sub-second. *)
let bechamel_tests =
  Test.make_grouped ~name:"clouds-repro"
    [
      Test.make ~name:"T1-kernel"
        (Staged.stage (fun () ->
             ignore (Experiments.T1_kernel.run ~samples:10 ())));
      Test.make ~name:"T2-network"
        (Staged.stage (fun () ->
             ignore (Experiments.T2_network.run ~samples:5 ())));
      Test.make ~name:"T3-invoke"
        (Staged.stage (fun () ->
             ignore (Experiments.T3_invocation.run ~invocations:20 ())));
      Test.make ~name:"F1-sort"
        (Staged.stage (fun () ->
             ignore
               (Experiments.F1_sort.run ~elements:4096 ~worker_counts:[ 1; 4 ] ())));
      Test.make ~name:"F2-consistency"
        (Staged.stage (fun () ->
             ignore (Experiments.F2_consistency.run ~samples:6 ())));
      Test.make ~name:"F3-pet"
        (Staged.stage (fun () ->
             ignore (Experiments.F3_pet.run ~trials:3 ())));
      Test.make ~name:"Consistency"
        (Staged.stage (fun () ->
             ignore
               (Experiments.Consistency.run ~copysets:[ 2 ] ~increments:8
                  ~elements:1024 ~workers:2 ())));
    ]

(* Wall-clock ms/run for every table/figure, sorted by name so the
   output order is stable. *)
let bechamel_estimates ~quota_s () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second quota_s) ~stabilize:false
      ~compaction:false ()
  in
  let raw = Benchmark.all cfg instances bechamel_tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name ols_result acc ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> (name, est /. 1e6) :: acc
      | Some _ | None -> acc)
    results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let run_bechamel () =
  print_endline "Bechamel: wall-clock cost of each simulated experiment";
  print_endline "=======================================================";
  List.iter
    (fun (name, ms) -> Printf.printf "  %-28s %10.2f ms/run\n" name ms)
    (bechamel_estimates ~quota_s:2.0 ());
  print_newline ()

(* --- machine-readable baseline (BENCH_core.json) -------------------- *)

(* Hand-rolled JSON: the container has no JSON library and the format
   below is flat enough not to need one.  All simulated metrics come
   from fixed-seed simulations and are printed with a fixed precision,
   so two runs of the same binary produce a byte-identical
   ["simulated"] object; only ["wall_clock"] varies between hosts. *)

let j_num v = Printf.sprintf "%.6f" v
let j_int = string_of_int
let j_str s = Printf.sprintf "%S" s
let j_field k v = Printf.sprintf "%S: %s" k v
let j_obj fields = "{" ^ String.concat ", " fields ^ "}"
let j_arr items = "[" ^ String.concat ", " items ^ "]"

(* The "obs" section: one traced run of the CI-sized load cell.  The
   tracer only reads the sim clock, so everything here — span counts,
   the critical-path stage decomposition, the metrics-registry
   rollup — is as deterministic as the rest of ["simulated"].  The
   same object is also written alone to BENCH_obs.json so bench-diff
   can pin it against its own committed baseline. *)
let obs_section () =
  let r =
    Experiments.Trace_run.run ~cell:(List.hd Experiments.Load.smoke_cells) ()
  in
  let stage_fields (st : Obs.Export.stages) =
    [
      j_field "transport_ms" (j_num st.Obs.Export.transport_ms);
      j_field "fault_ms" (j_num st.fault_ms);
      j_field "commit_ms" (j_num st.commit_ms);
      j_field "other_ms" (j_num st.other_ms);
    ]
  in
  let pct = function
    | None -> "null"
    | Some (ts : Obs.Export.trace_sum) ->
        j_obj
          (j_field "total_ms" (j_num ts.Obs.Export.total_ms)
          :: j_field "spans" (j_int ts.nspans)
          :: stage_fields ts.st)
  in
  let s = r.Experiments.Trace_run.summary in
  j_obj
    [
      j_field "cell"
        (j_str r.Experiments.Trace_run.point.Experiments.Load.cell.label);
      j_field "traces" (j_int s.Obs.Export.traces);
      j_field "spans" (j_int s.spans);
      j_field "mean" (j_obj (stage_fields s.s_mean));
      j_field "p50" (pct s.p50);
      j_field "p95" (pct s.p95);
      j_field "p99" (pct s.p99);
      j_field "registry"
        (j_obj
           (List.map
              (fun (path, v) -> j_field path (j_int v))
              r.Experiments.Trace_run.totals));
    ]

(* The "commit" section: the A/B group-commit smoke pair plus the
   deterministic kill-mid-commit recovery scenario.  Only
   simulated-time metrics are emitted (the point's wall-clock field
   is deliberately dropped), so the object is byte-stable across
   hosts; like obs it is also written alone, to BENCH_commit.json,
   for bench-diff's third baseline. *)
let commit_section () =
  let points = Experiments.Commit.run () in
  let o = Experiments.Commit.run_crash () in
  let pt (p : Experiments.Commit.point) =
    let open Experiments.Commit in
    j_obj
      [
        j_field "label" (j_str p.cell.label);
        j_field "clients" (j_int p.cell.clients);
        j_field "footprint" (j_int p.cell.footprint);
        j_field "window_ms"
          (match p.cell.window with
          | None -> "null"
          | Some w -> j_num (Sim.Time.to_ms_f w));
        j_field "committed" (j_int p.committed);
        j_field "retries" (j_int p.retries);
        j_field "p50_ms" (j_num p.p50_ms);
        j_field "p95_ms" (j_num p.p95_ms);
        j_field "mean_ms" (j_num p.mean_ms);
        j_field "throughput" (j_num p.throughput);
        j_field "wal_records" (j_int p.wal_records);
        j_field "wal_flushes" (j_int p.wal_flushes);
        j_field "mean_batch" (j_num p.mean_batch);
        j_field "sim_ms" (j_num p.sim_ms);
      ]
  in
  let open Experiments.Commit in
  j_obj
    [
      j_field "cells" (j_arr (List.map pt points));
      j_field "crash"
        (j_obj
           [
             j_field "seed" (j_int o.seed);
             j_field "sessions" (j_int o.sessions);
             j_field "deposits_per_session" (j_int o.deposits_per_session);
             j_field "acked" (j_int o.acked);
             j_field "crash_retries" (j_int o.crash_retries);
             j_field "lost" (j_int o.lost);
             j_field "ghosts" (j_int o.ghosts);
             j_field "checkpoints" (j_int o.checkpoints);
             j_field "log_truncated" (j_int o.log_truncated);
             j_field "recovered_records" (j_int o.recovered_records);
             j_field "violations" (j_arr (List.map j_str o.violations));
             j_field "trace" (j_str o.trace);
           ]);
    ]

(* The "consistency" section: the relaxed-mode A/B grid of DESIGN
   §17 — scoped invalidation counts (one-copy vs release), shared
   counters (one-copy vs commutative) and the F1 sort under both
   arbitrated modes.  Pure fixed-seed simulated metrics, so the
   object is byte-stable across hosts; like obs and commit it is
   also written alone, to BENCH_consistency.json, for bench-diff's
   fourth baseline. *)
let consistency_section ~quick () =
  let r =
    Experiments.Consistency.run
      ~copysets:(if quick then [ 2; 4 ] else [ 1; 2; 4; 8 ])
      ~increments:(if quick then 16 else 32)
      ~elements:(if quick then 2_048 else 4_096)
      ()
  in
  let open Experiments.Consistency in
  j_obj
    [
      j_field "scoped"
        (j_arr
           (List.map
              (fun (p : scoped_point) ->
                j_obj
                  [
                    j_field "mode" (j_str p.mode);
                    j_field "copyset" (j_int p.copyset);
                    j_field "writes" (j_int p.writes);
                    j_field "inval_rpcs" (j_int p.inval_rpcs);
                    j_field "deferred" (j_int p.deferred);
                    j_field "page_moves" (j_int p.page_moves);
                    j_field "elapsed_ms" (j_num p.elapsed_ms);
                  ])
              r.scoped));
      j_field "counters"
        (j_arr
           (List.map
              (fun (p : counter_point) ->
                j_obj
                  [
                    j_field "mode" (j_str p.mode);
                    j_field "clients" (j_int p.clients);
                    j_field "increments" (j_int p.increments);
                    j_field "stalls" (j_int p.stalls);
                    j_field "page_moves" (j_int p.page_moves);
                    j_field "merge_rpcs" (j_int p.merge_rpcs);
                    j_field "converged" (string_of_bool p.converged);
                    j_field "elapsed_ms" (j_num p.elapsed_ms);
                  ])
              r.counters));
      j_field "sort"
        (j_arr
           (List.map
              (fun (p : sort_point) ->
                j_obj
                  [
                    j_field "mode" (j_str p.mode);
                    j_field "workers" (j_int p.workers);
                    j_field "total_ms" (j_num p.total_ms);
                    j_field "page_moves" (j_int p.page_moves);
                    j_field "inval_rpcs" (j_int p.inval_rpcs);
                  ])
              r.sort));
      j_field "inval_reduction_at_2" (j_num (inval_reduction r ~copyset:2));
    ]

let simulated_metrics ~quick =
  let t1 = Experiments.T1_kernel.run ~samples:(if quick then 20 else 100) () in
  let t2 = Experiments.T2_network.run ~samples:(if quick then 10 else 50) () in
  let t3 =
    Experiments.T3_invocation.run ~invocations:(if quick then 50 else 200) ()
  in
  let f1 =
    Experiments.F1_sort.run
      ~elements:(if quick then 8_192 else 16_384)
      ~worker_counts:[ 1; 2; 4; 8 ] ()
  in
  let f2 = Experiments.F2_consistency.run ~samples:(if quick then 9 else 30) () in
  let f3 = Experiments.F3_pet.run ~trials:(if quick then 8 else 25) () in
  let wf =
    Experiments.Write_fault_fanout.run
      ~sizes:(if quick then [ 1; 4; 8 ] else [ 1; 4; 8; 16 ])
      ()
  in
  let pb =
    Experiments.Page_batching.run
      ~windows:(if quick then [ 0; 8 ] else [ 0; 2; 8 ])
      ~flush_sizes:(if quick then [ 1; 16 ] else [ 1; 4; 16 ])
      ()
  in
  let tr =
    Experiments.Transport.run
      ~losses:(if quick then [ 0; 5 ] else [ 0; 1; 5; 10 ])
      ~sizes:(if quick then [ 1400; 65536 ] else [ 1400; 8192; 65536 ])
      ~calls:(if quick then 3 else 5)
      ~invocations:(if quick then 20 else 50)
      ()
  in
  let mem =
    Experiments.Membership.run
      ~arms:
        (if quick then Experiments.Membership.quick_arms
         else Experiments.Membership.full_arms)
      ~ops:(if quick then 32 else 48)
      ()
  in
  let load =
    Experiments.Load.run
      ~cells:
        (if quick then Experiments.Load.smoke_cells
         else Experiments.Load.smoke_cells @ Experiments.Load.ab_cells)
      ()
  in
  let obs = obs_section () in
  let commit = commit_section () in
  let consistency = consistency_section ~quick () in
  let simulated =
  let fanout_points ps =
    j_arr
      (List.map
         (fun p ->
           let open Experiments.Write_fault_fanout in
           j_obj
             [
               j_field "copyset" (j_int p.copyset);
               j_field "suspects" (j_int p.suspects);
               j_field "serial_ms" (j_num p.serial_ms);
               j_field "parallel_ms" (j_num p.parallel_ms);
             ])
         ps)
  in
  j_obj
    [
      j_field "t1_kernel"
        (j_obj
           [
             j_field "context_switch_ms" (j_num t1.Experiments.T1_kernel.context_switch_ms);
             j_field "fault_zero_fill_ms" (j_num t1.fault_zero_fill_ms);
             j_field "fault_data_ms" (j_num t1.fault_data_ms);
             j_field "samples" (j_int t1.samples);
           ]);
      j_field "t2_network"
        (j_obj
           [
             j_field "eth_rtt_ms" (j_num t2.Experiments.T2_network.eth_rtt_ms);
             j_field "ratp_rtt_ms" (j_num t2.ratp_rtt_ms);
             j_field "page_ratp_ms" (j_num t2.page_ratp_ms);
             j_field "page_ftp_ms" (j_num t2.page_ftp_ms);
             j_field "page_nfs_ms" (j_num t2.page_nfs_ms);
             j_field "samples" (j_int t2.samples);
           ]);
      j_field "t3_invocation"
        (j_obj
           [
             j_field "warm_ms" (j_num t3.Experiments.T3_invocation.warm_ms);
             j_field "cold_ms" (j_num t3.cold_ms);
             j_field "locality_avg_ms" (j_num t3.locality_avg_ms);
           ]);
      j_field "f1_sort"
        (j_obj
           [
             j_field "elements" (j_int f1.Experiments.F1_sort.elements);
             j_field "points"
               (j_arr
                  (List.map
                     (fun p ->
                       j_obj
                         [
                           j_field "workers" (j_int p.Experiments.F1_sort.workers);
                           j_field "total_ms" (j_num p.total_ms);
                           j_field "speedup" (j_num p.speedup);
                           j_field "page_moves" (j_int p.page_moves);
                         ])
                     f1.points));
           ]);
      j_field "f2_consistency"
        (j_obj
           [
             j_field "modes"
               (j_arr
                  (List.map
                     (fun m ->
                       j_obj
                         [
                           j_field "mode" (j_str m.Experiments.F2_consistency.mode);
                           j_field "mean_ms" (j_num m.mean_ms);
                           j_field "throughput_per_s" (j_num m.throughput_per_s);
                           j_field "lock_rpcs" (j_int m.lock_rpcs);
                         ])
                     f2.Experiments.F2_consistency.modes));
             j_field "spans"
               (j_arr
                  (List.map
                     (fun s ->
                       j_obj
                         [
                           j_field "objects_touched"
                             (j_int s.Experiments.F2_consistency.objects_touched);
                           j_field "servers_involved" (j_int s.servers_involved);
                           j_field "mean_ms" (j_num s.mean_ms);
                         ])
                     f2.spans));
           ]);
      j_field "f3_pet"
        (j_obj
           [
             j_field "replicas" (j_int f3.Experiments.F3_pet.replicas);
             j_field "quorum" (j_int f3.quorum);
             j_field "points"
               (j_arr
                  (List.map
                     (fun p ->
                       j_obj
                         [
                           j_field "parallel" (j_int p.Experiments.F3_pet.parallel);
                           j_field "completion_rate" (j_num p.completion_rate);
                           j_field "mean_thread_ms" (j_num p.mean_thread_ms);
                         ])
                     f3.points));
           ]);
      j_field "write_fault_fanout"
        (j_obj
           [
             j_field "rtt_ms" (j_num wf.Experiments.Write_fault_fanout.rtt_ms);
             j_field "baseline_ms" (j_num wf.baseline_ms);
             j_field "healthy" (fanout_points wf.healthy);
             j_field "suspected" (fanout_points wf.suspected);
           ]);
      j_field "page_batching"
        (j_obj
           [
             j_field "scans"
               (j_arr
                  (List.map
                     (fun s ->
                       let open Experiments.Page_batching in
                       j_obj
                         [
                           j_field "window" (j_int s.window);
                           j_field "sequential" (string_of_bool s.sequential);
                           j_field "fetch_rpcs" (j_int s.fetch_rpcs);
                           j_field "prefetched" (j_int s.prefetched);
                           j_field "scan_ms" (j_num s.scan_ms);
                         ])
                     pb.Experiments.Page_batching.scans));
             j_field "flushes"
               (j_arr
                  (List.map
                     (fun f ->
                       let open Experiments.Page_batching in
                       j_obj
                         [
                           j_field "pages" (j_int f.pages);
                           j_field "serial_ms" (j_num f.serial_ms);
                           j_field "batched_ms" (j_num f.batched_ms);
                           j_field "serial_rpcs" (j_int f.serial_rpcs);
                           j_field "batched_rpcs" (j_int f.batched_rpcs);
                         ])
                     pb.flushes));
           ]);
      j_field "membership"
        (j_obj
           [
             j_field "arms"
               (j_arr
                  (List.map
                     (fun o ->
                       let open Experiments.Membership in
                       j_obj
                         [
                           j_field "arm" (j_str o.arm);
                           j_field "replication" (j_int o.replication);
                           j_field "kills" (j_int o.kills);
                           j_field "ops" (j_int o.ops);
                           j_field "oks" (j_int o.oks);
                           j_field "retried" (j_int o.retried);
                           j_field "failed" (j_int o.failed);
                           j_field "detect_ms" (j_num o.detect_ms);
                           j_field "unavail_ms" (j_num o.unavail_ms);
                           j_field "reheal_ms" (j_num o.reheal_ms);
                           j_field "pages_copied" (j_int o.pages_copied);
                           j_field "lost_writes" (j_int o.lost_writes);
                           j_field "final_epoch" (j_int o.final_epoch);
                           j_field "trace" (j_str o.trace);
                         ])
                     mem));
           ]);
      j_field "transport"
        (j_obj
           [
             j_field "points"
               (j_arr
                  (List.map
                     (fun p ->
                       let open Experiments.Transport in
                       j_obj
                         [
                           j_field "loss_pct" (j_int p.loss_pct);
                           j_field "size" (j_int p.size);
                           j_field "selective" (string_of_bool p.selective);
                           j_field "adaptive" (string_of_bool p.adaptive);
                           j_field "oks" (j_int p.oks);
                           j_field "timeouts" (j_int p.timeouts);
                           j_field "elapsed_ms" (j_num p.elapsed_ms);
                           j_field "retrans" (j_int p.retrans);
                           j_field "retrans_bytes" (j_int p.retrans_bytes);
                           j_field "nacks" (j_int p.nacks);
                           j_field "rto_ms" (j_num p.rto_ms);
                         ])
                     tr.Experiments.Transport.points));
             j_field "bypass"
               (let b = tr.Experiments.Transport.bypass in
                j_obj
                  [
                    j_field "invocations"
                      (j_int b.Experiments.Transport.invocations);
                    j_field "local_ms" (j_num b.local_ms);
                    j_field "remote_ms" (j_num b.remote_ms);
                    j_field "local_invokes" (j_int b.local_invokes);
                  ]);
           ]);
      j_field "obs" obs;
      j_field "commit" commit;
      j_field "consistency" consistency;
      j_field "load"
        (j_obj
           [
             j_field "cells"
               (j_arr
                  (List.map
                     (fun p ->
                       let open Experiments.Load in
                       j_obj
                         [
                           j_field "label" (j_str p.cell.label);
                           j_field "sharded" (string_of_bool p.cell.sharded);
                           j_field "data" (j_int p.cell.data);
                           j_field "compute" (j_int p.cell.compute);
                           j_field "clients" (j_int p.cell.clients);
                           j_field "rate" (j_num p.cell.rate);
                           j_field "invocations" (j_int p.cell.invocations);
                           j_field "write_pct" (j_int p.cell.write_pct);
                           j_field "completed" (j_int p.completed);
                           j_field "misses" (j_int p.misses);
                           j_field "retries" (j_int p.retries);
                           j_field "p50_ms" (j_num p.p50_ms);
                           j_field "p95_ms" (j_num p.p95_ms);
                           j_field "p99_ms" (j_num p.p99_ms);
                           j_field "mean_ms" (j_num p.mean_ms);
                           j_field "throughput" (j_num p.throughput);
                           j_field "sim_ms" (j_num p.sim_ms);
                         ])
                     load));
           ]);
    ]
  in
  (simulated, obs, commit, consistency)

let write_json ~quick path =
  let simulated, obs, commit, consistency = simulated_metrics ~quick in
  let wall =
    bechamel_estimates ~quota_s:(if quick then 0.5 else 2.0) ()
    |> List.map (fun (name, ms) ->
           j_obj [ j_field "name" (j_str name); j_field "ms_per_run" (j_num ms) ])
  in
  let doc =
    j_obj
      [
        j_field "schema" (j_str "clouds-bench/v1");
        j_field "seed" (j_int 42);
        j_field "quick" (string_of_bool quick);
        j_field "simulated" simulated;
        j_field "wall_clock" (j_arr wall);
      ]
  in
  let dump p s =
    let oc = open_out p in
    output_string oc s;
    output_char oc '\n';
    close_out oc
  in
  dump path doc;
  (* the obs, commit and consistency sections alone, for bench-diff's
     second through fourth baselines: none has a wall_clock suffix,
     so the comparisons are straight cmps *)
  dump "BENCH_obs.json" obs;
  dump "BENCH_commit.json" commit;
  dump "BENCH_consistency.json" consistency;
  Printf.printf
    "wrote %s, BENCH_obs.json, BENCH_commit.json and BENCH_consistency.json \
     (%s sizes)\n"
    path
    (if quick then "quick" else "full")

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.exists (fun a -> a = "--quick" || a = "quick") args in
  let args = List.filter (fun a -> a <> "--quick" && a <> "quick") args in
  match args with
  | [ "tables" ] -> reproduction_tables ()
  | [ "bench" ] -> run_bechamel ()
  | [ "--json" ] | [ "json" ] -> write_json ~quick "BENCH_core.json"
  | _ ->
      reproduction_tables ();
      run_bechamel ()
