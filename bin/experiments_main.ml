(* Run the reproduction of every table and figure in the paper's
   evaluation and print paper-vs-measured.

   dune exec bin/experiments_main.exe            -- everything
   dune exec bin/experiments_main.exe -- t1 f3   -- a subset
   dune exec bin/experiments_main.exe -- --quick -- smaller samples *)

open Cmdliner

let all_ids =
  [
    "t1";
    "t2";
    "t3";
    "f1";
    "f2";
    "f3";
    "fanout";
    "batching";
    "transport";
    "faults";
    "membership";
    "load";
    "commit";
    "consistency";
    "ablations";
  ]

let run_one ~quick id =
  match id with
  | "t1" ->
      let samples = if quick then 20 else 100 in
      print_string (Experiments.T1_kernel.report (Experiments.T1_kernel.run ~samples ()))
  | "t2" ->
      let samples = if quick then 10 else 50 in
      print_string
        (Experiments.T2_network.report (Experiments.T2_network.run ~samples ()))
  | "t3" ->
      let invocations = if quick then 50 else 200 in
      print_string
        (Experiments.T3_invocation.report
           (Experiments.T3_invocation.run ~invocations ()))
  | "f1" ->
      let elements = if quick then 8_192 else 16_384 in
      print_string (Experiments.F1_sort.report (Experiments.F1_sort.run ~elements ()))
  | "f2" ->
      let samples = if quick then 9 else 30 in
      print_string
        (Experiments.F2_consistency.report
           (Experiments.F2_consistency.run ~samples ()))
  | "f3" ->
      let trials = if quick then 8 else 25 in
      print_string (Experiments.F3_pet.report (Experiments.F3_pet.run ~trials ()))
  | "fanout" | "wf" ->
      let sizes = if quick then [ 1; 4; 8 ] else [ 1; 4; 8; 16 ] in
      print_string
        (Experiments.Write_fault_fanout.report
           (Experiments.Write_fault_fanout.run ~sizes ()))
  | "batching" | "pb" ->
      let windows = if quick then [ 0; 8 ] else [ 0; 2; 8 ] in
      let flush_sizes = if quick then [ 1; 16 ] else [ 1; 4; 16 ] in
      print_string
        (Experiments.Page_batching.report
           (Experiments.Page_batching.run ~windows ~flush_sizes ()))
  | "transport" | "tr" ->
      let losses = if quick then [ 0; 5 ] else [ 0; 1; 5; 10 ] in
      let sizes = if quick then [ 1400; 65536 ] else [ 1400; 8192; 65536 ] in
      let calls = if quick then 3 else 5 in
      let invocations = if quick then 20 else 50 in
      print_string
        (Experiments.Transport.report
           (Experiments.Transport.run ~losses ~sizes ~calls ~invocations ()))
  | "faults" ->
      let outcomes = Experiments.Faults.run_all () in
      print_string (Experiments.Faults.report outcomes);
      List.iter
        (fun o -> Printf.printf "  %s\n" (Experiments.Faults.summary o))
        outcomes
  | "membership" | "mem" ->
      let arms =
        if quick then Experiments.Membership.quick_arms
        else Experiments.Membership.full_arms
      in
      let ops = if quick then 32 else 48 in
      let outcomes = Experiments.Membership.run ~arms ~ops () in
      print_string (Experiments.Membership.report outcomes);
      List.iter
        (fun o -> Printf.printf "  %s\n" (Experiments.Membership.summary o))
        outcomes
  | "load" ->
      let cells =
        if quick then Experiments.Load.smoke_cells
        else Experiments.Load.full_cells
      in
      let points = Experiments.Load.run ~cells () in
      print_string (Experiments.Load.report points);
      List.iter
        (fun p -> Printf.printf "  %s\n" (Experiments.Load.summary p))
        points
  | "commit" ->
      let cells =
        if quick then Experiments.Commit.smoke_cells
        else Experiments.Commit.full_cells
      in
      let points = Experiments.Commit.run ~cells () in
      print_string (Experiments.Commit.report points);
      List.iter
        (fun p -> Printf.printf "  %s\n" (Experiments.Commit.summary p))
        points;
      let o = Experiments.Commit.run_crash () in
      print_string (Experiments.Commit.crash_report o);
      Printf.printf "  %s\n" (Experiments.Commit.crash_summary o)
  | "consistency" | "cons" ->
      let copysets = if quick then [ 2; 4 ] else [ 1; 2; 4; 8 ] in
      let elements = if quick then 2_048 else 4_096 in
      let increments = if quick then 16 else 32 in
      let r =
        Experiments.Consistency.run ~copysets ~elements ~increments ()
      in
      print_string (Experiments.Consistency.report r);
      List.iter
        (fun k ->
          Printf.printf
            "  release cuts invalidation RPCs %.1fx at copyset %d\n"
            (Experiments.Consistency.inval_reduction r ~copyset:k)
            k)
        copysets
  | "ablations" | "ab" -> print_string (Experiments.Ablations.report ())
  | "trace" ->
      (* traced load cell: export the Chrome trace + registry
         snapshot, validate the export, print the critical path *)
      let cell =
        if quick then List.hd Experiments.Load.smoke_cells
        else Experiments.Trace_run.default_cell
      in
      let r = Experiments.Trace_run.run ~cell () in
      Printf.printf "  %s\n" (Experiments.Load.summary r.Experiments.Trace_run.point);
      print_string r.Experiments.Trace_run.report;
      let write path s =
        let oc = open_out path in
        output_string oc s;
        output_char oc '\n';
        close_out oc
      in
      write "obs_trace.json" r.Experiments.Trace_run.chrome;
      write "obs_metrics.json" r.Experiments.Trace_run.registries_json;
      (match Obs.Export.validate_chrome r.Experiments.Trace_run.chrome with
      | Ok events ->
          Printf.printf
            "wrote obs_trace.json (%d events, Perfetto-loadable) and \
             obs_metrics.json\n"
            events
      | Error msg ->
          Printf.eprintf "obs_trace.json failed validation: %s\n" msg;
          exit 1);
      (match Obs.Export.parse r.Experiments.Trace_run.registries_json with
      | Ok _ -> ()
      | Error msg ->
          Printf.eprintf "obs_metrics.json failed validation: %s\n" msg;
          exit 1)
  | "load-xl" ->
      (* the roadmap-scale cell: 200 nodes, 1M invocations; latency
         in a streaming histogram so memory stays flat *)
      let p = Experiments.Load.run_cell Experiments.Load.xl_cell in
      Printf.printf "  %s\n" (Experiments.Load.summary p)
  | other ->
      Printf.eprintf "unknown experiment %S (know: %s trace load-xl)\n" other
        (String.concat " " all_ids)

let main quick ids =
  let ids = match ids with [] -> all_ids | ids -> List.map String.lowercase_ascii ids in
  print_endline "Clouds reproduction: paper vs simulation";
  print_endline "========================================\n";
  List.iter
    (fun id ->
      run_one ~quick id;
      print_newline ())
    ids

let cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sample counts.")
  in
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT") in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Reproduce the Clouds paper's evaluation tables and figures")
    Term.(const main $ quick $ ids)

let () = exit (Cmd.eval cmd)
