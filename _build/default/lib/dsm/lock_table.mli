(** Segment-level lock service state.

    Data servers grant read/write locks on segments to
    consistency-preserving transactions (the paper's automatic
    segment-granularity locking).  Requests are granted in FIFO
    order; a transaction holds at most one lock per segment, upgraded
    from read to write on demand.  All of a transaction's locks are
    released together when it commits or aborts, and its still-queued
    requests are cancelled — deadlocks are broken by the client's
    timeout-and-abort policy. *)

type t

val create : unit -> t

val acquire :
  t -> Ra.Sysname.t -> Protocol.txn_id -> Protocol.lock_kind ->
  [ `Granted | `Cancelled ]
(** Blocks the calling process until the lock is granted or the
    transaction's pending requests are cancelled by
    {!release_txn}. *)

val holds :
  t -> Ra.Sysname.t -> Protocol.txn_id -> Protocol.lock_kind option
(** Lock currently held by the transaction on the segment. *)

val release_txn : t -> Protocol.txn_id -> unit
(** Release every lock held by the transaction, cancel its queued
    requests, and grant now-compatible waiters. *)

val queue_length : t -> Ra.Sysname.t -> int
(** Waiters queued on a segment (tests). *)
