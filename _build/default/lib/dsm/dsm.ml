(** Distributed shared memory.

    One-copy semantics for all object code and data across the
    cluster, implemented by data servers acting as per-segment
    coherence managers ({!Dsm_server}) and a client partition on every
    node ({!Dsm_client}).  Data servers also host the segment lock
    service ({!Lock_table}) and the participant side of two-phase
    commit used by consistency-preserving threads. *)

module Protocol = Protocol
module Lock_table = Lock_table
module Dsm_server = Dsm_server
module Dsm_client = Dsm_client
