lib/dsm/dsm.ml: Dsm_client Dsm_server Lock_table Protocol
