lib/dsm/dsm_client.mli: Net Ra Store
