lib/dsm/protocol.mli: Format Ra Ratp Store
