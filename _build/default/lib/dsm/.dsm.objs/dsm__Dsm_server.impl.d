lib/dsm/dsm_server.ml: Hashtbl List Lock_table Net Printf Protocol Ra Ratp Sim Store
