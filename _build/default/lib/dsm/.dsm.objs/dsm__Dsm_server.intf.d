lib/dsm/dsm_server.mli: Lock_table Net Ra Sim Store
