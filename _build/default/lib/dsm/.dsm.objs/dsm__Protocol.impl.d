lib/dsm/protocol.ml: Bytes Format Int List Ra Ratp Store
