lib/dsm/lock_table.ml: List Protocol Ra Sim
