lib/dsm/lock_table.mli: Protocol Ra
