lib/dsm/dsm_client.ml: List Net Printf Protocol Ra Ratp Sim Store
