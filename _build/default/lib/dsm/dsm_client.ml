module P = Protocol

exception Unavailable of Ra.Sysname.t

type t = {
  node : Ra.Node.t;
  locate : Ra.Sysname.t -> Net.Address.t;
  local_store : Store.Segment_store.t option;
  fetches : Sim.Stats.counter;
  invals : Sim.Stats.counter;
  downs : Sim.Stats.counter;
}

let node t = t.node

let remote_fetch t ~seg ~page ~mode =
  let home = t.locate seg in
  Sim.Stats.incr t.fetches;
  let body = P.Get_page { seg; page; mode } in
  match
    Ratp.Endpoint.call t.node.Ra.Node.endpoint ~dst:home ~service:P.service
      ~size:(P.request_bytes body) body
  with
  | Ok (P.Got_page data) -> data
  | Ok P.Page_error -> raise (Ra.Partition.No_segment seg)
  | Ok _ | Error Ratp.Endpoint.Timeout -> raise (Unavailable seg)

let remote_writeback t ~seg ~page data =
  let home = t.locate seg in
  let body = P.Put_page { seg; page; data } in
  match
    Ratp.Endpoint.call t.node.Ra.Node.endpoint ~dst:home ~service:P.service
      ~size:(P.request_bytes body) body
  with
  | Ok P.Batch_ok -> ()
  | Ok P.Segment_error -> raise (Ra.Partition.No_segment seg)
  | Ok _ | Error Ratp.Endpoint.Timeout -> raise (Unavailable seg)

let is_local t seg =
  match t.local_store with
  | Some store ->
      Net.Address.equal (t.locate seg) t.node.Ra.Node.id
      && Store.Segment_store.exists store seg
  | None -> false

let partition t =
  {
    Ra.Partition.name = Printf.sprintf "dsm-client-%d" t.node.Ra.Node.id;
    fetch =
      (fun ~seg ~page ~mode ->
        match t.local_store with
        | Some store when is_local t seg ->
            Store.Segment_store.read_page store seg page
        | Some _ | None -> remote_fetch t ~seg ~page ~mode);
    writeback =
      (fun ~seg ~page data ->
        match t.local_store with
        | Some store when is_local t seg ->
            Store.Segment_store.write_page store seg page data
        | Some _ | None -> remote_writeback t ~seg ~page data);
  }

let create node ~locate ?local_store () =
  let t =
    {
      node;
      locate;
      local_store;
      fetches = Sim.Stats.counter "dsmc.fetches";
      invals = Sim.Stats.counter "dsmc.invals";
      downs = Sim.Stats.counter "dsmc.downs";
    }
  in
  Ra.Mmu.set_resolver node.Ra.Node.mmu (fun _seg -> partition t);
  Ratp.Endpoint.serve node.Ra.Node.endpoint ~service:P.client_service
    (fun ~src:_ body ->
      let reply =
        match body with
        | P.Invalidate { seg; page } ->
            Sim.Stats.incr t.invals;
            P.Invalidated { dirty = Ra.Mmu.invalidate node.Ra.Node.mmu seg page }
        | P.Downgrade { seg; page } ->
            Sim.Stats.incr t.downs;
            P.Downgraded { dirty = Ra.Mmu.downgrade node.Ra.Node.mmu seg page }
        | _ -> P.Page_error
      in
      (reply, P.request_bytes reply));
  t

let flush_segment t seg =
  let mmu = t.node.Ra.Node.mmu in
  List.iter
    (fun (page, data) ->
      (partition t).Ra.Partition.writeback ~seg ~page data;
      Ra.Mmu.mark_clean mmu seg page)
    (Ra.Mmu.dirty_pages mmu seg)

let drop_segment t seg = Ra.Mmu.drop_segment t.node.Ra.Node.mmu seg

let remote_fetches t = Sim.Stats.value t.fetches
let invalidations_received t = Sim.Stats.value t.invals
let downgrades_received t = Sim.Stats.value t.downs
