(** The DSM client: the partition compute servers page through.

    Page faults on a compute server become [Get_page] transactions to
    the data server that stores the segment; the client also answers
    the server-initiated invalidation and downgrade calls that keep
    every copy coherent.  Together with {!Dsm_server} this gives each
    node the illusion that every object logically resides locally —
    the paper's distributed shared memory. *)

exception Unavailable of Ra.Sysname.t
(** The segment's data server did not answer (crashed or
    partitioned). *)

type t

val create :
  Ra.Node.t ->
  locate:(Ra.Sysname.t -> Net.Address.t) ->
  ?local_store:Store.Segment_store.t ->
  unit ->
  t
(** Install the DSM client on a node and point the node's MMU at it.
    [locate] maps a segment to its data server.  When the node is
    itself a data server, [local_store] serves its own segments
    without network traffic (a machine with a disk is both a compute
    and data server). *)

val partition : t -> Ra.Partition.t

val node : t -> Ra.Node.t

val flush_segment : t -> Ra.Sysname.t -> unit
(** Write every dirty resident page of the segment back to its data
    server and mark the frames clean (used by s-threads that want
    their updates stored, and by examples). *)

val drop_segment : t -> Ra.Sysname.t -> unit
(** Locally invalidate all frames of a segment without writing them
    back (transaction abort). *)

val remote_fetches : t -> int
val invalidations_received : t -> int
val downgrades_received : t -> int
