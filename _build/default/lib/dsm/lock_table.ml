type waiter = {
  w_txn : Protocol.txn_id;
  w_kind : Protocol.lock_kind;
  mutable w_active : bool;
  wake : [ `Granted | `Cancelled ] -> bool;
}

type entry = {
  mutable readers : Protocol.txn_id list;
  mutable writer : Protocol.txn_id option;
  mutable queue : waiter list;  (* FIFO; inactive entries are skipped *)
}

type t = { entries : entry Ra.Sysname.Table.t }

let create () = { entries = Ra.Sysname.Table.create 32 }

let entry_of t seg =
  match Ra.Sysname.Table.find_opt t.entries seg with
  | Some e -> e
  | None ->
      let e = { readers = []; writer = None; queue = [] } in
      Ra.Sysname.Table.replace t.entries seg e;
      e

let txn_eq a b = Protocol.txn_compare a b = 0
let is_reader e txn = List.exists (txn_eq txn) e.readers
let active_queue e = List.filter (fun w -> w.w_active) e.queue

(* Grant waiters from the head of the queue: a run of readers, or a
   single writer whose only conflicting reader is itself (upgrade). *)
let drain e =
  let rec loop () =
    match active_queue e with
    | [] -> e.queue <- []
    | w :: _ -> (
        match w.w_kind with
        | Protocol.R ->
            if e.writer = None then begin
              w.w_active <- false;
              (* a waiter that died while queued just drops out *)
              if w.wake `Granted && not (is_reader e w.w_txn) then
                e.readers <- w.w_txn :: e.readers;
              loop ()
            end
        | Protocol.W ->
            let others = List.filter (fun r -> not (txn_eq r w.w_txn)) e.readers in
            if e.writer = None && others = [] then begin
              w.w_active <- false;
              if w.wake `Granted then begin
                e.readers <- [];
                e.writer <- Some w.w_txn
              end
              else loop ()
            end)
  in
  loop ()

let acquire t seg txn kind =
  let e = entry_of t seg in
  let no_queue = active_queue e = [] in
  let holds_writer = match e.writer with Some w -> txn_eq w txn | None -> false in
  let immediate =
    match kind with
    | Protocol.R ->
        holds_writer || is_reader e txn || (e.writer = None && no_queue)
    | Protocol.W ->
        holds_writer
        || e.writer = None
           && List.for_all (txn_eq txn) e.readers
           && (e.readers <> [] (* sole-reader upgrade jumps the queue *)
              || no_queue)
  in
  if immediate then begin
    (match kind with
    | Protocol.R ->
        if (not holds_writer) && not (is_reader e txn) then
          e.readers <- txn :: e.readers
    | Protocol.W ->
        if not holds_writer then begin
          e.readers <- List.filter (fun r -> not (txn_eq r txn)) e.readers;
          e.writer <- Some txn
        end);
    `Granted
  end
  else
    Sim.suspend "seg-lock" (fun wake ->
        let w = { w_txn = txn; w_kind = kind; w_active = true; wake } in
        e.queue <- e.queue @ [ w ])

let holds t seg txn =
  match Ra.Sysname.Table.find_opt t.entries seg with
  | None -> None
  | Some e ->
      if (match e.writer with Some w -> txn_eq w txn | None -> false) then
        Some Protocol.W
      else if is_reader e txn then Some Protocol.R
      else None

let release_txn t txn =
  Ra.Sysname.Table.iter
    (fun _seg e ->
      let held =
        is_reader e txn
        || (match e.writer with Some w -> txn_eq w txn | None -> false)
      in
      e.readers <- List.filter (fun r -> not (txn_eq r txn)) e.readers;
      (match e.writer with
      | Some w when txn_eq w txn -> e.writer <- None
      | Some _ | None -> ());
      let cancelled =
        List.filter (fun w -> w.w_active && txn_eq w.w_txn txn) e.queue
      in
      List.iter
        (fun w ->
          w.w_active <- false;
          ignore (w.wake `Cancelled))
        cancelled;
      if held || cancelled <> [] then drain e)
    t.entries

let queue_length t seg =
  match Ra.Sysname.Table.find_opt t.entries seg with
  | None -> 0
  | Some e -> List.length (active_queue e)
