lib/pet/runner.ml: Array Atomicity Clouds Fun List Ra Replica Sim
