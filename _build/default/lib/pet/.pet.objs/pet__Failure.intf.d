lib/pet/failure.mli: Clouds Net Sim
