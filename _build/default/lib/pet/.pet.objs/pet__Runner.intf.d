lib/pet/runner.mli: Atomicity Clouds Replica
