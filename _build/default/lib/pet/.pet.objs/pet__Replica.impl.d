lib/pet/replica.ml: Array Clouds Dsm List Net Option Ra Ratp Store String
