lib/pet/failure.ml: Clouds Dsm Ra Sim
