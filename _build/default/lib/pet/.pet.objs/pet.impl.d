lib/pet/pet.ml: Failure Replica Runner
