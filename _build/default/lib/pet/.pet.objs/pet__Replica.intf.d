lib/pet/replica.mli: Clouds Net Ra
