(** The PET mechanism: parallel execution threads (§5.2.2, Figure 5).

    A resilient computation runs as [parallel] independent
    consistency-preserving threads, each on a different compute
    server, each invoking a different replica of the target object.
    When one completes, it becomes the {e terminating thread}: its
    updates are propagated to a quorum of replicas; the remaining
    threads are aborted.  If propagation cannot reach a quorum,
    another completed thread is tried.  The computation tolerates
    both static failures (machines already down when it starts) and
    dynamic failures (crashes while it runs), at the price of the
    extra resources the parallel threads consume — the trade-off the
    paper's Figure 5 illustrates. *)

type outcome = {
  value : Clouds.Value.t option;  (** terminating thread's result, if any *)
  winner : int option;  (** its PET index *)
  completed : int;  (** threads that finished execution *)
  killed : int;  (** threads aborted after the winner committed *)
  quorum_ok : bool;  (** updates reached the quorum *)
  replicas_updated : int;  (** members holding the committed state *)
  thread_ms : float;  (** total thread time consumed (resource cost) *)
}

val run :
  Atomicity.Manager.t ->
  group:Replica.t ->
  entry:string ->
  parallel:int ->
  quorum:int ->
  Clouds.Value.t ->
  outcome
(** Execute the resilient computation from the current process.
    [parallel] is the number of PETs (the paper's resilience
    parameter); [quorum] the number of replicas that must accept the
    updates for the commit to count. *)
