(** Replicated objects (§5.2.2).

    Critical objects are replicated on data servers with independent
    failure modes; the replication degree sets how many failures the
    data can survive.  A group is a set of instances of the same
    class, created identically, placed on distinct data servers. *)

type t = {
  class_name : string;
  members : Ra.Sysname.t array;  (** one instance per chosen data server *)
  homes : Net.Address.t array;  (** parallel: each member's data server *)
}

val create :
  Clouds.Object_manager.t ->
  class_name:string ->
  degree:int ->
  Clouds.Value.t ->
  t
(** Instantiate the class [degree] times, round robin over the data
    servers.  Raises [Invalid_argument] if [degree] exceeds the
    number of data servers (replicas must have independent failure
    modes). *)

val degree : t -> int

val pick : t -> int -> Ra.Sysname.t
(** [pick t i] is the replica thread [i] should use: spread so that
    concurrent PETs touch different replicas. *)

val copy_state :
  Clouds.Object_manager.t ->
  t ->
  from_index:int ->
  to_index:int ->
  bool
(** Copy the persistent state (data + heap segments) of one member
    onto another, page by page, through the data servers.  Returns
    false if either side is unreachable. *)

val live_members : Clouds.Object_manager.t -> t -> int list
(** Indices whose data server is currently alive. *)
