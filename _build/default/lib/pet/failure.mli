(** Failure injection schedules for resilience experiments.

    Static failures exist before the computation starts; dynamic
    failures strike while it runs. *)

val crash_at : Clouds.Cluster.t -> Net.Address.t -> Sim.Time.span -> unit
(** Schedule a machine crash [span] from now. *)

val crash_now : Clouds.Cluster.t -> Net.Address.t -> unit

val restart_at : Clouds.Cluster.t -> Net.Address.t -> Sim.Time.span -> unit
(** Schedule the machine's restart (NIC + RaTP receive loop; a data
    server also needs {!Dsm.Dsm_server.recover}, which this performs
    when the node is one). *)

val alive : Clouds.Cluster.t -> Net.Address.t -> bool
