(** Fault tolerance through Parallel Execution Threads (§5.2.2):
    object replication ({!Replica}), replicated consistency-preserving
    threads with quorum commit ({!Runner}), and failure-injection
    schedules ({!Failure}). *)

module Replica = Replica
module Runner = Runner
module Failure = Failure
