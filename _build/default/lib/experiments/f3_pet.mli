(** Experiment F3 — PET resilience vs resources (paper §5.2.2,
    Figure 5).

    A resilient computation over an object replicated on three data
    servers runs with 1, 2 or 3 parallel execution threads.  Each
    trial injects random dynamic failures (compute servers and data
    servers crashing mid-run).  More PETs buy a higher completion
    probability at the price of more thread time — the paper's
    resources/resilience trade-off. *)

type point = {
  parallel : int;
  trials : int;
  completions : int;  (** trials that committed to a quorum *)
  completion_rate : float;
  mean_thread_ms : float;  (** resource cost per trial *)
}

type result = {
  replicas : int;
  quorum : int;
  crash_profile : string;
  points : point list;
}

val run : ?trials:int -> ?parallel_counts:int list -> unit -> result
val report : result -> string
