module V = Clouds.Value

type point = {
  parallel : int;
  trials : int;
  completions : int;
  completion_rate : float;
  mean_thread_ms : float;
}

type result = {
  replicas : int;
  quorum : int;
  crash_profile : string;
  points : point list;
}

let ledger_cls =
  Clouds.Obj_class.define ~name:"pet-ledger"
    [
      Clouds.Obj_class.entry ~label:Clouds.Obj_class.Gcp "work" (fun ctx arg ->
          let v = Clouds.Memory.get_int ctx.Clouds.Ctx.mem 0 in
          ctx.Clouds.Ctx.compute (Sim.Time.ms 250);
          Clouds.Memory.set_int ctx.Clouds.Ctx.mem 0 (v + V.to_int arg);
          V.Int (v + V.to_int arg));
    ]

let fast_ratp =
  {
    Ratp.Endpoint.default_config with
    retry_initial = Sim.Time.ms 20;
    max_attempts = 3;
  }

let replicas = 3
let quorum = 2

(* One trial: boot a fresh cluster, schedule random crashes, run the
   resilient computation, report (completed, thread_ms). *)
let trial ~seed ~parallel =
  Sim.exec ~seed (fun () ->
      let eng = Sim.engine () in
      let sys =
        Clouds.boot eng ~ratp_config:fast_ratp ~compute:3 ~data:3
          ~workstations:0 ()
      in
      let mgr =
        Atomicity.Manager.install sys.Clouds.om
          ~deadlock_timeout:(Sim.Time.ms 400) ~max_retries:4 ()
      in
      Clouds.Cluster.register_class sys.Clouds.cluster ledger_cls;
      let group =
        Pet.Replica.create sys.Clouds.om ~class_name:"pet-ledger" ~degree:replicas
          V.Unit
      in
      let rng = Sim.Rng.split (Sim.Engine.rng eng) in
      (* dynamic failures: compute servers are flaky (p=0.45 each,
         mid-run) while data servers fail less often (p=0.15), so the
         quantity under study — how many parallel threads survive —
         dominates the outcome *)
      Array.iter
        (fun node ->
          if Sim.Rng.chance rng 0.45 then
            Pet.Failure.crash_at sys.Clouds.cluster node.Ra.Node.id
              (Sim.Time.ms (50 + Sim.Rng.int rng 400)))
        sys.Clouds.cluster.Clouds.Cluster.compute_nodes;
      Array.iter
        (fun node ->
          if Sim.Rng.chance rng 0.15 then
            Pet.Failure.crash_at sys.Clouds.cluster node.Ra.Node.id
              (Sim.Time.ms (50 + Sim.Rng.int rng 400)))
        sys.Clouds.cluster.Clouds.Cluster.data_nodes;
      let outcome =
        Pet.Runner.run mgr ~group ~entry:"work" ~parallel ~quorum (V.Int 1)
      in
      (outcome.Pet.Runner.quorum_ok, outcome.Pet.Runner.thread_ms))

let run ?(trials = 25) ?(parallel_counts = [ 1; 2; 3 ]) () =
  let points =
    List.map
      (fun parallel ->
        let completions = ref 0 in
        let cost = ref 0.0 in
        for i = 1 to trials do
          (* the same seed across parallel counts gives every series
             the identical failure schedule *)
          let ok, thread_ms = trial ~seed:(7000 + i) ~parallel in
          if ok then incr completions;
          cost := !cost +. thread_ms
        done;
        {
          parallel;
          trials;
          completions = !completions;
          completion_rate = float_of_int !completions /. float_of_int trials;
          mean_thread_ms = !cost /. float_of_int trials;
        })
      parallel_counts
  in
  {
    replicas;
    quorum;
    crash_profile = "compute crashes p=0.45, data crashes p=0.15, mid-run";
    points;
  }

let report r =
  Report.table
    ~title:
      (Printf.sprintf
         "F3: PET resilience vs resources (r=%d replicas, quorum=%d; %s)"
         r.replicas r.quorum r.crash_profile)
    (List.map
       (fun p ->
         {
           Report.label = Printf.sprintf "%d parallel thread(s)" p.parallel;
           paper = "-";
           measured = Printf.sprintf "%.0f%% complete" (100.0 *. p.completion_rate);
           note =
             Printf.sprintf "%d/%d trials | %.0f thread-ms/trial"
               p.completions p.trials p.mean_thread_ms;
         })
       r.points)
