type result = {
  eth_rtt_ms : float;
  ratp_rtt_ms : float;
  page_ratp_ms : float;
  page_ftp_ms : float;
  page_nfs_ms : float;
  samples : int;
}

type Net.Frame.payload += Ping_req of int | Ping_rep of int
type Ratp.Packet.body += Fetch_page | Page_body

let measure_eth_rtt ether ~samples =
  let nic1 = Net.Ethernet.attach ether 101 in
  let nic2 = Net.Ethernet.attach ether 102 in
  (* echo responder *)
  ignore
    (Sim.spawn "echo" (fun () ->
         let rec loop () =
           let frame = Net.Nic.recv nic2 in
           (match frame.Net.Frame.payload with
           | Ping_req n ->
               Net.Ethernet.transmit ether
                 (Net.Frame.make ~src:102 ~dst:(Net.Frame.Unicast 101)
                    ~payload_bytes:54 (Ping_rep n))
           | _ -> ());
           loop ()
         in
         loop ()));
  let stats = Sim.Stats.series "eth" in
  for i = 1 to samples do
    let t0 = Sim.now () in
    (* 72 bytes on the wire = 54-byte payload + 18-byte header *)
    Net.Ethernet.transmit ether
      (Net.Frame.make ~src:101 ~dst:(Net.Frame.Unicast 102) ~payload_bytes:54
         (Ping_req i));
    let rec await () =
      match (Net.Nic.recv nic1).Net.Frame.payload with
      | Ping_rep n when n = i -> ()
      | _ -> await ()
    in
    await ();
    Sim.Stats.add_span stats (Sim.Time.diff (Sim.now ()) t0)
  done;
  Sim.Stats.mean stats

let measure_ratp ether ~samples =
  let a = Ratp.Endpoint.create ether ~addr:103 () in
  let b = Ratp.Endpoint.create ether ~addr:104 () in
  Ratp.Endpoint.serve b ~service:1 (fun ~src:_ body ->
      match body with
      | Fetch_page -> (Page_body, Ra.Page.size)
      | _ -> (Ratp.Packet.Ping "ok", 32));
  let rtt = Sim.Stats.series "rtt" and page = Sim.Stats.series "page" in
  for _ = 1 to samples do
    let t0 = Sim.now () in
    (match Ratp.Endpoint.call a ~dst:104 ~service:1 ~size:32 (Ratp.Packet.Ping "x") with
    | Ok _ -> ()
    | Error _ -> failwith "ratp rtt failed");
    Sim.Stats.add_span rtt (Sim.Time.diff (Sim.now ()) t0);
    let t1 = Sim.now () in
    (match Ratp.Endpoint.call a ~dst:104 ~service:1 ~size:32 Fetch_page with
    | Ok Page_body -> ()
    | Ok _ | Error _ -> failwith "ratp page failed");
    Sim.Stats.add_span page (Sim.Time.diff (Sim.now ()) t1)
  done;
  (Sim.Stats.mean rtt, Sim.Stats.mean page)

let measure_comparators ether ~samples =
  Ratp.Ftp_sim.start_server ether ~addr:105 ();
  let ftp = Ratp.Ftp_sim.client ether ~addr:106 () in
  Ratp.Nfs_sim.start_server ether ~addr:107 ();
  let nfs = Ratp.Nfs_sim.client ether ~addr:108 () in
  let ftp_s = Sim.Stats.series "ftp" and nfs_s = Sim.Stats.series "nfs" in
  for _ = 1 to samples do
    let t0 = Sim.now () in
    Ratp.Ftp_sim.fetch ftp ~server:105 ~bytes:Ra.Page.size;
    Sim.Stats.add_span ftp_s (Sim.Time.diff (Sim.now ()) t0);
    let t1 = Sim.now () in
    Ratp.Nfs_sim.fetch nfs ~server:107 ~bytes:Ra.Page.size;
    Sim.Stats.add_span nfs_s (Sim.Time.diff (Sim.now ()) t1)
  done;
  (Sim.Stats.mean ftp_s, Sim.Stats.mean nfs_s)

let run ?(samples = 50) () =
  Sim.exec (fun () ->
      let ether = Net.Ethernet.create (Sim.engine ()) () in
      let eth_rtt_ms = measure_eth_rtt ether ~samples in
      let ratp_rtt_ms, page_ratp_ms = measure_ratp ether ~samples in
      let page_ftp_ms, page_nfs_ms = measure_comparators ether ~samples in
      { eth_rtt_ms; ratp_rtt_ms; page_ratp_ms; page_ftp_ms; page_nfs_ms; samples })

let report r =
  Report.table ~title:"T2: networking (paper section 4.3)"
    [
      {
        Report.label = "Ethernet round trip, 72 bytes";
        paper = "2.4 ms";
        measured = Report.ms r.eth_rtt_ms;
        note = "raw frames, echo server";
      };
      {
        Report.label = "RaTP reliable round trip";
        paper = "4.8 ms";
        measured = Report.ms r.ratp_rtt_ms;
        note = "null message transaction";
      };
      {
        Report.label = "8K page via RaTP";
        paper = "11.9 ms";
        measured = Report.ms r.page_ratp_ms;
        note = "fragmented + acknowledged";
      };
      {
        Report.label = "8K via FTP-like protocol";
        paper = "70 ms";
        measured = Report.ms r.page_ftp_ms;
        note = "control dialogue + stop-and-wait";
      };
      {
        Report.label = "8K via NFS-like protocol";
        paper = "50 ms";
        measured = Report.ms r.page_nfs_ms;
        note = "1K READ rpcs";
      };
    ]
