type result = {
  context_switch_ms : float;
  fault_zero_fill_ms : float;
  fault_data_ms : float;
  samples : int;
}

let measure_context_switch ~samples =
  Sim.exec (fun () ->
      let cpu = Ra.Cpu.create () in
      (* two entities ping-pong on the processor; each handoff is one
         context switch and no other cost *)
      let stats = Sim.Stats.series "cs" in
      Ra.Cpu.consume cpu ~key:1 0;
      for i = 1 to samples do
        let key = 1 + (i mod 2) in
        let t0 = Sim.now () in
        Ra.Cpu.consume cpu ~key 0;
        Sim.Stats.add_span stats (Sim.Time.diff (Sim.now ()) t0)
      done;
      Sim.Stats.mean stats)

let measure_faults ~samples =
  Sim.exec (fun () ->
      let params = Ra.Params.default in
      let cpu = Ra.Cpu.create () in
      let mmu = Ra.Mmu.create ~params ~cpu () in
      let store = Store.Segment_store.create "local" in
      Ra.Mmu.set_resolver mmu (fun _ -> Store.Segment_store.local_partition store);
      let gen = Ra.Sysname.make_gen ~node:0 in
      let zero = Sim.Stats.series "zero" and data = Sim.Stats.series "data" in
      Ra.Cpu.consume cpu ~key:(Sim.self ()) 0;
      for _ = 1 to samples do
        let seg = Ra.Sysname.fresh gen in
        Store.Segment_store.create_segment store seg ~size:(2 * Ra.Page.size);
        (* page 1 holds data; page 0 was never written (zero fill) *)
        Store.Segment_store.write_page store seg 1 (Bytes.make Ra.Page.size 'd');
        let vs = Ra.Virtual_space.create () in
        Ra.Virtual_space.map vs ~base:0 ~len:(2 * Ra.Page.size)
          ~prot:Ra.Virtual_space.Read_write seg;
        let t0 = Sim.now () in
        ignore (Ra.Mmu.read mmu vs ~addr:0 ~len:8);
        Sim.Stats.add_span zero (Sim.Time.diff (Sim.now ()) t0);
        let t1 = Sim.now () in
        ignore (Ra.Mmu.read mmu vs ~addr:Ra.Page.size ~len:8);
        Sim.Stats.add_span data (Sim.Time.diff (Sim.now ()) t1)
      done;
      (Sim.Stats.mean zero, Sim.Stats.mean data))

let run ?(samples = 100) () =
  let context_switch_ms = measure_context_switch ~samples in
  let fault_zero_fill_ms, fault_data_ms = measure_faults ~samples in
  { context_switch_ms; fault_zero_fill_ms; fault_data_ms; samples }

let report r =
  Report.table ~title:"T1: kernel performance (paper section 4.3)"
    [
      {
        Report.label = "context switch";
        paper = "0.14 ms";
        measured = Report.ms r.context_switch_ms;
        note = Printf.sprintf "mean of %d handoffs" r.samples;
      };
      {
        Report.label = "page fault, 8K zero-filled";
        paper = "1.5 ms";
        measured = Report.ms r.fault_zero_fill_ms;
        note = "local page, never written";
      };
      {
        Report.label = "page fault, 8K with data";
        paper = "0.629 ms";
        measured = Report.ms r.fault_data_ms;
        note = "local page, data present";
      };
    ]
