(** Experiment T3 — object invocation cost (paper §4.3 ¶4).

    Paper figures: a null invocation costs at most 103 ms (object
    fetched cold from its data server) and at least 8 ms (object
    resident); locality makes the average cost much closer to the
    minimum. *)

type result = {
  warm_ms : float;  (** object resident on the invoking node *)
  cold_ms : float;  (** first activation: header + code over the net *)
  locality_avg_ms : float;
      (** average over a workload with 90% repeat invocations *)
  locality_invocations : int;
}

val run : ?invocations:int -> unit -> result
val report : result -> string
