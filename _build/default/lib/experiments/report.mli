(** Table rendering for experiment reports. *)

type row = {
  label : string;
  paper : string;  (** the paper's figure, verbatim (or "-") *)
  measured : string;
  note : string;
}

val table : title:string -> row list -> string
(** Render an aligned text table with a header. *)

val ms : float -> string
(** Format a duration in ms with sensible precision. *)
