module V = Clouds.Value

type mode_point = {
  mode : string;
  mean_ms : float;
  throughput_per_s : float;
  lock_rpcs : int;
}

type span_point = {
  objects_touched : int;
  servers_involved : int;
  mean_ms : float;
}

type result = {
  modes : mode_point list;
  spans : span_point list;
  samples : int;
}

(* A gcp entry that updates [k] accounts in one transaction. *)
let batcher_cls =
  Clouds.Obj_class.define ~name:"batcher"
    [
      Clouds.Obj_class.entry ~label:Clouds.Obj_class.Gcp "update_all"
        (fun ctx arg ->
          List.iter
            (fun acct ->
              ignore
                (ctx.Clouds.Ctx.invoke ~obj:(V.to_sysname acct)
                   ~entry:"credit_in_txn" (V.Int 1)))
            (V.to_list arg);
          V.Unit);
    ]

let run ?(samples = 30) () =
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let sys = Clouds.boot eng ~compute:2 ~data:4 ~workstations:0 () in
      let mgr = Atomicity.Manager.install sys.Clouds.om () in
      Apps.Bank.register sys.Clouds.om;
      Clouds.Cluster.register_class sys.Clouds.cluster batcher_cls;
      let node = sys.Clouds.cluster.Clouds.Cluster.compute_nodes.(0) in
      let time f =
        let t0 = Sim.now () in
        f ();
        Sim.Time.to_ms_f (Sim.Time.diff (Sim.now ()) t0)
      in
      (* part A: one deposit under each consistency label *)
      let modes =
        List.map
          (fun (mode, label) ->
            let acct = Apps.Bank.open_account sys.Clouds.om ~balance:0 () in
            let entry =
              match label with
              | Clouds.Obj_class.Gcp -> "deposit"
              | Clouds.Obj_class.Lcp -> "deposit_lcp"
              | Clouds.Obj_class.S -> "deposit_s"
            in
            let deposit () =
              ignore
                (Clouds.Object_manager.invoke sys.Clouds.om ~node ~thread_id:0
                   ~origin:None ~txn:None ~obj:acct ~entry (V.Int 1))
            in
            (* warm the object on the pinned invoking node *)
            ignore
              (Clouds.Object_manager.invoke sys.Clouds.om ~node ~thread_id:0
                 ~origin:None ~txn:None ~obj:acct ~entry:"balance" V.Unit);
            let rpcs0 = Atomicity.Manager.lock_rpcs mgr in
            let stats = Sim.Stats.series mode in
            for _ = 1 to samples do
              Sim.Stats.add stats (time deposit)
            done;
            let mean_ms = Sim.Stats.mean stats in
            {
              mode;
              mean_ms;
              throughput_per_s = 1000.0 /. mean_ms;
              lock_rpcs = Atomicity.Manager.lock_rpcs mgr - rpcs0;
            })
          [
            ("s-thread", Clouds.Obj_class.S);
            ("lcp-thread", Clouds.Obj_class.Lcp);
            ("gcp-thread", Clouds.Obj_class.Gcp);
          ]
      in
      (* part B: one gcp transaction spanning k objects over the data
         servers *)
      let batcher =
        Clouds.Object_manager.create_object sys.Clouds.om ~class_name:"batcher"
          V.Unit
      in
      let ndata = Array.length sys.Clouds.cluster.Clouds.Cluster.data_nodes in
      let spans =
        List.map
          (fun k ->
            let accounts =
              List.init k (fun i ->
                  Apps.Bank.open_account sys.Clouds.om
                    ~home:(1 + (i mod ndata))
                    ~balance:0 ())
            in
            let arg = V.List (List.map V.of_sysname accounts) in
            (* warm pass *)
            ignore
              (Clouds.Object_manager.invoke sys.Clouds.om ~node ~thread_id:0
                 ~origin:None ~txn:None ~obj:batcher ~entry:"update_all" arg);
            let stats = Sim.Stats.series "span" in
            for _ = 1 to samples / 3 do
              Sim.Stats.add stats
                (time (fun () ->
                     ignore
                       (Clouds.Object_manager.invoke sys.Clouds.om ~node
                          ~thread_id:0 ~origin:None ~txn:None ~obj:batcher
                          ~entry:"update_all" arg)))
            done;
            {
              objects_touched = k;
              servers_involved = min k ndata;
              mean_ms = Sim.Stats.mean stats;
            })
          [ 1; 2; 4; 8 ]
      in
      { modes; spans; samples })

let report r =
  Report.table ~title:"F2a: consistency labels on one update (section 5.2.1)"
    (List.map
       (fun m ->
         {
           Report.label = m.mode;
           paper = "-";
           measured = Report.ms m.mean_ms;
           note =
             Printf.sprintf "%.0f updates/s | %d lock rpcs" m.throughput_per_s
               m.lock_rpcs;
         })
       r.modes)
  ^ "\n"
  ^ Report.table
      ~title:"F2b: gcp commit cost vs transaction span"
      (List.map
         (fun s ->
           {
             Report.label =
               Printf.sprintf "%d object(s), %d data server(s)"
                 s.objects_touched s.servers_involved;
             paper = "-";
             measured = Report.ms s.mean_ms;
             note = "locks + 2-phase commit + WAL";
           })
         r.spans)
