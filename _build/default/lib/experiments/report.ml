type row = { label : string; paper : string; measured : string; note : string }

let ms v =
  if v >= 100.0 then Printf.sprintf "%.0f ms" v
  else if v >= 10.0 then Printf.sprintf "%.1f ms" v
  else Printf.sprintf "%.2f ms" v

let table ~title rows =
  let buf = Buffer.create 512 in
  let width f =
    List.fold_left (fun acc r -> max acc (String.length (f r))) 0 rows
  in
  let wl = max (width (fun r -> r.label)) (String.length "quantity") in
  let wp = max (width (fun r -> r.paper)) (String.length "paper") in
  let wm = max (width (fun r -> r.measured)) (String.length "measured") in
  Buffer.add_string buf (Printf.sprintf "== %s ==\n" title);
  Buffer.add_string buf
    (Printf.sprintf "  %-*s  %*s  %*s  %s\n" wl "quantity" wp "paper" wm
       "measured" "note");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %-*s  %*s  %*s  %s\n" wl r.label wp r.paper wm
           r.measured r.note))
    rows;
  Buffer.contents buf
