lib/experiments/t3_invocation.mli:
