lib/experiments/f3_pet.mli:
