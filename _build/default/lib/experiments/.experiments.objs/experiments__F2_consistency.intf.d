lib/experiments/f2_consistency.mli:
