lib/experiments/t1_kernel.mli:
