lib/experiments/report.mli:
