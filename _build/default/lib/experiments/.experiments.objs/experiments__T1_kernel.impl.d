lib/experiments/t1_kernel.ml: Bytes Printf Ra Report Sim Store
