lib/experiments/t2_network.mli:
