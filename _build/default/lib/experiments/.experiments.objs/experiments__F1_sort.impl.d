lib/experiments/f1_sort.ml: Apps Clouds List Printf Report Sim
