lib/experiments/f3_pet.ml: Array Atomicity Clouds List Pet Printf Ra Ratp Report Sim
