lib/experiments/ablations.ml: Array Bytes Clouds Dsm List Net Printf Ra Ratp Report Sim Store String
