lib/experiments/experiments.ml: Ablations F1_sort F2_consistency F3_pet Report T1_kernel T2_network T3_invocation
