lib/experiments/t3_invocation.ml: Array Clouds Printf Report Sim
