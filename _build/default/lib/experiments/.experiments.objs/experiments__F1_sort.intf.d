lib/experiments/f1_sort.mli:
