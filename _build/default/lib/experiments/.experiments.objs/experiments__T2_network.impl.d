lib/experiments/t2_network.ml: Net Ra Ratp Report Sim
