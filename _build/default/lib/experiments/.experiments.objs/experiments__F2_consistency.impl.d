lib/experiments/f2_consistency.ml: Apps Array Atomicity Clouds List Printf Report Sim
