lib/experiments/ablations.mli:
