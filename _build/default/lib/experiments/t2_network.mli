(** Experiment T2 — networking (paper §4.3 ¶3).

    Paper figures: raw Ethernet round trip (72-byte message) 2.4 ms;
    RaTP reliable round trip 4.8 ms; reliable transfer of one 8K page
    11.9 ms with RaTP against 70 ms with Unix FTP and 50 ms with
    NFS. *)

type result = {
  eth_rtt_ms : float;
  ratp_rtt_ms : float;
  page_ratp_ms : float;
  page_ftp_ms : float;
  page_nfs_ms : float;
  samples : int;
}

val run : ?samples:int -> unit -> result
val report : result -> string
