(** Ablations: parameter sweeps over the design choices.

    Not paper tables — these vary what the paper held fixed, to show
    which costs come from where:

    - {!bandwidth}: the 10 Mbit Ethernet vs a 100 Mbit one — how much
      of a page transfer and of a cold invocation is wire time vs
      host/protocol time;
    - {!scheduler}: round-robin vs least-loaded thread placement
      under a skewed background load;
    - {!frame_cache}: bounded compute-server memory — demand paging
      with eviction (thrashing) vs unbounded frames;
    - {!loss}: RaTP under frame loss — latency and retransmissions
      versus drop probability. *)

type row = { setting : string; value : string; detail : string }

val bandwidth : unit -> row list
val scheduler : unit -> row list
val frame_cache : unit -> row list
val loss : unit -> row list

val report : unit -> string
(** Run all four sweeps and render them. *)
