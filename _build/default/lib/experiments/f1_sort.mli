(** Experiment F1 — distributed programming over DSM (paper §5.1).

    A sort over data held in a single object, run as a distributed
    computation: worker threads on different compute servers sort
    ranges in parallel, the needed pages migrating automatically.
    The paper reports that speedup is achievable and that the
    experiments expose the computation/communication trade-off and
    the granularity that warrants distribution — which is exactly the
    shape of this series. *)

type point = {
  workers : int;
  total_ms : float;
  sort_ms : float;
  merge_ms : float;
  speedup : float;
  page_moves : int;
}

type result = { elements : int; points : point list }

val run : ?elements:int -> ?worker_counts:int list -> unit -> result
val report : result -> string
