(** Experiment T1 — kernel performance (paper §4.3 ¶2).

    Paper figures: context switch 0.14 ms; page-fault service for an
    8K page resident on the same node: 1.5 ms zero-filled, 0.629 ms
    non-zero-filled. *)

type result = {
  context_switch_ms : float;
  fault_zero_fill_ms : float;
  fault_data_ms : float;
  samples : int;
}

val run : ?samples:int -> unit -> result
val report : result -> string
