module V = Clouds.Value

type row = { setting : string; value : string; detail : string }

type Ratp.Packet.body += Ask_page | A_page

(* --- wire speed ----------------------------------------------------- *)

let page_transfer_at ~bandwidth_bps =
  Sim.exec (fun () ->
      let config = { Net.Ethernet.default_config with bandwidth_bps } in
      let ether = Net.Ethernet.create (Sim.engine ()) ~config () in
      let a = Ratp.Endpoint.create ether ~addr:1 () in
      let b = Ratp.Endpoint.create ether ~addr:2 () in
      Ratp.Endpoint.serve b ~service:1 (fun ~src:_ _ -> (A_page, Ra.Page.size));
      let stats = Sim.Stats.series "page" in
      for _ = 1 to 20 do
        let t0 = Sim.now () in
        (match Ratp.Endpoint.call a ~dst:2 ~service:1 ~size:32 Ask_page with
        | Ok _ -> ()
        | Error _ -> failwith "transfer failed");
        Sim.Stats.add_span stats (Sim.Time.diff (Sim.now ()) t0)
      done;
      Sim.Stats.mean stats)

let cold_invocation_at ~bandwidth_bps =
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let sys =
        Clouds.boot eng
          ~ether_config:{ Net.Ethernet.default_config with bandwidth_bps }
          ~compute:2 ~data:1 ~workstations:0 ()
      in
      Clouds.Cluster.register_class sys.Clouds.cluster
        (Clouds.Obj_class.define ~name:"nil"
           [ Clouds.Obj_class.entry "null" (fun _ _ -> V.Unit) ]);
      let obj =
        Clouds.Object_manager.create_object sys.Clouds.om ~class_name:"nil" V.Unit
      in
      let n1 = sys.Clouds.cluster.Clouds.Cluster.compute_nodes.(1) in
      let t0 = Sim.now () in
      ignore
        (Clouds.Object_manager.invoke sys.Clouds.om ~node:n1 ~thread_id:0
           ~origin:None ~txn:None ~obj ~entry:"null" V.Unit);
      Sim.Time.to_ms_f (Sim.Time.diff (Sim.now ()) t0))

let bandwidth () =
  List.concat_map
    (fun (label, bps) ->
      [
        {
          setting = Printf.sprintf "8K page transfer @ %s" label;
          value = Report.ms (page_transfer_at ~bandwidth_bps:bps);
          detail = "RaTP, fragmented";
        };
        {
          setting = Printf.sprintf "cold invocation @ %s" label;
          value = Report.ms (cold_invocation_at ~bandwidth_bps:bps);
          detail = "whole activation path";
        };
      ])
    [ ("10 Mbit/s", 10_000_000); ("100 Mbit/s", 100_000_000) ]

(* --- scheduling policy ----------------------------------------------- *)

let makespan_under ~policy =
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let sys = Clouds.boot eng ~compute:4 ~data:1 ~workstations:0 () in
      sys.Clouds.cluster.Clouds.Cluster.scheduler <- policy;
      Clouds.Cluster.register_class sys.Clouds.cluster
        (Clouds.Obj_class.define ~name:"work"
           [
             Clouds.Obj_class.entry "hog" (fun ctx _ ->
                 ctx.Clouds.Ctx.compute (Sim.Time.sec 3);
                 V.Unit);
             Clouds.Obj_class.entry "task" (fun ctx _ ->
                 ctx.Clouds.Ctx.compute (Sim.Time.ms 60);
                 V.Unit);
           ]);
      let obj =
        Clouds.Object_manager.create_object sys.Clouds.om ~class_name:"work" V.Unit
      in
      (* warm the object everywhere so placement is the only variable *)
      Array.iter
        (fun node ->
          ignore
            (Clouds.Object_manager.invoke sys.Clouds.om ~node ~thread_id:0
               ~origin:None ~txn:None ~obj ~entry:"task" V.Unit))
        sys.Clouds.cluster.Clouds.Cluster.compute_nodes;
      (* a hog pins down the first two compute servers *)
      let hogs =
        List.map
          (fun i ->
            Clouds.Thread.start sys.Clouds.om
              ~on:sys.Clouds.cluster.Clouds.Cluster.compute_nodes.(i).Ra.Node.id
              ~obj ~entry:"hog" V.Unit)
          [ 0; 1 ]
      in
      Sim.sleep (Sim.Time.ms 50);
      (* one task at a time: each placement decision either queues
         behind a hog or picks an idle server *)
      let latencies = Sim.Stats.series "task" in
      for _ = 1 to 12 do
        let s0 = Sim.now () in
        let th = Clouds.Thread.start sys.Clouds.om ~obj ~entry:"task" V.Unit in
        ignore (Clouds.Thread.join th);
        Sim.Stats.add_span latencies (Sim.Time.diff (Sim.now ()) s0)
      done;
      List.iter (fun th -> ignore (Clouds.Thread.join th)) hogs;
      (Sim.Stats.mean latencies, Sim.Stats.percentile latencies 95.0))

let scheduler () =
  List.map
    (fun (label, policy) ->
      let mean, p95 = makespan_under ~policy in
      {
        setting = Printf.sprintf "tasks vs 2 busy of 4 servers, %s" label;
        value = Report.ms mean;
        detail = Printf.sprintf "mean task latency; p95 %s" (Report.ms p95);
      })
    [ ("round robin", `Round_robin); ("least loaded", `Least_loaded) ]

(* --- frame cache ------------------------------------------------------ *)

let sort_with_frames ~max_frames =
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let ether = Net.Ethernet.create eng () in
      let nd = Ra.Node.create ether ~id:1 ~kind:Ra.Node.Data () in
      let server = Dsm.Dsm_server.create nd () in
      let nc = Ra.Node.create ether ~id:2 ~kind:Ra.Node.Compute ?max_frames () in
      let _client = Dsm.Dsm_client.create nc ~locate:(fun _ -> 1) () in
      let seg = Ra.Sysname.fresh nd.Ra.Node.names in
      let pages = 10 in
      Store.Segment_store.create_segment (Dsm.Dsm_server.store server) seg
        ~size:(pages * Ra.Page.size);
      let vs = Ra.Virtual_space.create () in
      Ra.Virtual_space.map vs ~base:0 ~len:(pages * Ra.Page.size)
        ~prot:Ra.Virtual_space.Read_write seg;
      (* three sequential passes over all ten pages *)
      let t0 = Sim.now () in
      for _ = 1 to 3 do
        for p = 0 to pages - 1 do
          Ra.Mmu.write nc.Ra.Node.mmu vs ~addr:(p * Ra.Page.size) (Bytes.make 64 'x')
        done
      done;
      ( Sim.Time.to_ms_f (Sim.Time.diff (Sim.now ()) t0),
        Ra.Mmu.evictions nc.Ra.Node.mmu ))

let frame_cache () =
  List.map
    (fun (label, max_frames) ->
      let elapsed, evictions = sort_with_frames ~max_frames in
      {
        setting = Printf.sprintf "3 passes over 10 pages, %s" label;
        value = Report.ms elapsed;
        detail = Printf.sprintf "%d evictions" evictions;
      })
    [
      ("unbounded frames", None);
      ("12 frames", Some 12);
      ("4 frames (thrashing)", Some 4);
    ]

(* --- loss -------------------------------------------------------------- *)

let rtt_under_loss ~drop =
  Sim.exec (fun () ->
      let ether = Net.Ethernet.create (Sim.engine ()) () in
      let a =
        Ratp.Endpoint.create ether ~addr:1
          ~config:
            { Ratp.Endpoint.default_config with retry_initial = Sim.Time.ms 20 }
          ()
      in
      let b = Ratp.Endpoint.create ether ~addr:2 () in
      Ratp.Endpoint.serve b ~service:1 (fun ~src:_ body -> (body, 32));
      Net.Fault.set_drop_probability (Net.Ethernet.fault ether) drop;
      let stats = Sim.Stats.series "rtt" in
      for _ = 1 to 100 do
        let t0 = Sim.now () in
        (match
           Ratp.Endpoint.call a ~dst:2 ~service:1 ~size:32 (Ratp.Packet.Ping "x")
         with
        | Ok _ -> ()
        | Error _ -> ());
        Sim.Stats.add_span stats (Sim.Time.diff (Sim.now ()) t0)
      done;
      (Sim.Stats.mean stats, Ratp.Endpoint.retransmissions a))

let loss () =
  List.map
    (fun drop ->
      let mean, retrans = rtt_under_loss ~drop in
      {
        setting = Printf.sprintf "RaTP null rtt @ %.0f%% frame loss" (100. *. drop);
        value = Report.ms mean;
        detail = Printf.sprintf "%d retransmissions / 100 calls" retrans;
      })
    [ 0.0; 0.05; 0.20 ]

let report () =
  let render title rows =
    Report.table ~title
      (List.map
         (fun r ->
           { Report.label = r.setting; paper = "-"; measured = r.value; note = r.detail })
         rows)
  in
  String.concat "\n"
    [
      render "Ablation: wire speed (10 vs 100 Mbit)" (bandwidth ());
      render "Ablation: thread placement policy" (scheduler ());
      render "Ablation: compute-server frame cache" (frame_cache ());
      render "Ablation: RaTP under frame loss" (loss ());
    ]
