module V = Clouds.Value

type result = {
  warm_ms : float;
  cold_ms : float;
  locality_avg_ms : float;
  locality_invocations : int;
}

let null_class =
  Clouds.Obj_class.define ~name:"null-object"
    [ Clouds.Obj_class.entry "null" (fun _ctx _ -> V.Unit) ]

let run ?(invocations = 200) () =
  Sim.exec (fun () ->
      let eng = Sim.engine () in
      let sys = Clouds.boot eng ~compute:2 ~data:1 ~workstations:0 () in
      Clouds.Cluster.register_class sys.Clouds.cluster null_class;
      let invoke node obj =
        ignore
          (Clouds.Object_manager.invoke sys.Clouds.om ~node ~thread_id:0
             ~origin:None ~txn:None ~obj ~entry:"null" V.Unit)
      in
      let time f =
        let t0 = Sim.now () in
        f ();
        Sim.Time.to_ms_f (Sim.Time.diff (Sim.now ()) t0)
      in
      let n0 = sys.Clouds.cluster.Clouds.Cluster.compute_nodes.(0) in
      let n1 = sys.Clouds.cluster.Clouds.Cluster.compute_nodes.(1) in
      (* cold: created through node 0, first invocation from node 1
         pages everything over the network from a cold data server *)
      let obj =
        Clouds.Object_manager.create_object sys.Clouds.om ~on:n0
          ~class_name:"null-object" V.Unit
      in
      let cold_ms = time (fun () -> invoke n1 obj) in
      let warm_stats = Sim.Stats.series "warm" in
      for _ = 1 to 20 do
        Sim.Stats.add warm_stats (time (fun () -> invoke n1 obj))
      done;
      let warm_ms = Sim.Stats.mean warm_stats in
      (* locality workload: a pool of objects, 90% of invocations hit
         the previously used object *)
      let pool =
        Array.init 10 (fun _ ->
            Clouds.Object_manager.create_object sys.Clouds.om ~on:n0
              ~class_name:"null-object" V.Unit)
      in
      let rng = Sim.Rng.split (Sim.Engine.rng eng) in
      let stats = Sim.Stats.series "locality" in
      let current = ref pool.(0) in
      for _ = 1 to invocations do
        if Sim.Rng.chance rng 0.10 then
          current := pool.(Sim.Rng.int rng (Array.length pool));
        Sim.Stats.add stats (time (fun () -> invoke n1 !current))
      done;
      {
        warm_ms;
        cold_ms;
        locality_avg_ms = Sim.Stats.mean stats;
        locality_invocations = invocations;
      })

let report r =
  Report.table ~title:"T3: null object invocation (paper section 4.3)"
    [
      {
        Report.label = "minimum (object resident)";
        paper = "8 ms";
        measured = Report.ms r.warm_ms;
        note = "mean of 20 warm invocations";
      };
      {
        Report.label = "maximum (fetched from data server)";
        paper = "103 ms";
        measured = Report.ms r.cold_ms;
        note = "cold activation: header, code, disk";
      };
      {
        Report.label = "average under locality";
        paper = "\"closer to the minimum\"";
        measured = Report.ms r.locality_avg_ms;
        note =
          Printf.sprintf "%d invocations, 90%% repeat" r.locality_invocations;
      };
    ]
