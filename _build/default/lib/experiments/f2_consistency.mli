(** Experiment F2 — the cost of consistency (paper §5.2.1).

    The same update runs as an s-thread (no locking, no recovery), an
    lcp-thread (local locks, batched update to the store) and a
    gcp-thread (global locks, write-ahead logged two-phase commit).
    The second part grows a global transaction across more objects —
    and hence more segments and more data servers — to expose the
    commit cost curve. *)

type mode_point = {
  mode : string;
  mean_ms : float;  (** latency of one deposit *)
  throughput_per_s : float;
  lock_rpcs : int;  (** global lock traffic caused *)
}

type span_point = {
  objects_touched : int;
  servers_involved : int;
  mean_ms : float;
}

type result = {
  modes : mode_point list;
  spans : span_point list;
  samples : int;
}

val run : ?samples:int -> unit -> result
val report : result -> string
