(** Reader–writer locks with FIFO fairness.

    Requests are granted strictly in arrival order: a waiting writer
    blocks later readers, so neither side starves.  This is the local
    building block for the segment-level locking of
    consistency-preserving threads. *)

type t

val create : ?label:string -> unit -> t

val lock_read : t -> unit
(** Acquire shared; suspends while a writer holds the lock or an
    earlier writer is queued. *)

val lock_write : t -> unit
(** Acquire exclusive; suspends while any holder exists. *)

val try_lock_read : t -> bool
val try_lock_write : t -> bool

val unlock_read : t -> unit
val unlock_write : t -> unit

val holders : t -> [ `Free | `Readers of int | `Writer ]
(** Current holder set, for tests and introspection. *)
