type t = int
type span = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec n = n * 1_000_000_000
let of_ms_f x = int_of_float (Float.round (x *. 1e6))
let of_us_f x = int_of_float (Float.round (x *. 1e3))
let add t d = t + d
let diff a b = a - b
let to_ms_f t = float_of_int t /. 1e6
let to_us_f t = float_of_int t /. 1e3
let compare = Int.compare
let pp fmt t = Format.fprintf fmt "%.3fms" (to_ms_f t)
