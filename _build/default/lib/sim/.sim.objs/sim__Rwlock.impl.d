lib/sim/rwlock.ml: Engine Queue
