lib/sim/mutex.mli:
