lib/sim/heap.mli:
