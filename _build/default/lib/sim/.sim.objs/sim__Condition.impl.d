lib/sim/condition.ml: Engine List Mutex Queue
