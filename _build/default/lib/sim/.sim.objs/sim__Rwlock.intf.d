lib/sim/rwlock.mli:
