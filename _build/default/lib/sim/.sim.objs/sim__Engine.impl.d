lib/sim/engine.ml: Effect Hashtbl Heap Int List Rng Time
