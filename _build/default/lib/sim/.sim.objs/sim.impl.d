lib/sim/sim.ml: Condition Engine Heap Ivar Mailbox Mutex Rng Rwlock Semaphore Stats Time Trace
