lib/sim/ivar.mli:
