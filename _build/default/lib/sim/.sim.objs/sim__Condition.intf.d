lib/sim/condition.mli: Mutex
