lib/sim/semaphore.mli:
