lib/sim/rng.mli:
