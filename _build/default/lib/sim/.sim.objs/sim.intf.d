lib/sim/sim.mli: Condition Engine Heap Ivar Mailbox Mutex Rng Rwlock Semaphore Stats Time Trace
