lib/sim/mutex.ml: Engine Queue
