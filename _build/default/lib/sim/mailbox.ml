(* Waiters are callbacks returning true when they consumed the value;
   a waiter whose timeout already fired returns false and is
   discarded, letting the value go to the next waiter or back to the
   queue. *)

type 'a t = {
  label : string;
  values : 'a Queue.t;
  waiters : ('a -> bool) Queue.t;
}

let create label = { label; values = Queue.create (); waiters = Queue.create () }

let rec offer t v =
  match Queue.take_opt t.waiters with
  | None -> Queue.add v t.values
  | Some waiter -> if not (waiter v) then offer t v

let send t v = offer t v

let recv t =
  match Queue.take_opt t.values with
  | Some v -> v
  | None ->
      Engine.Process.suspend t.label (fun wake ->
          Queue.add (fun v -> wake v) t.waiters)

let recv_timeout t span =
  match Queue.take_opt t.values with
  | Some v -> Some v
  | None ->
      let eng = Engine.Process.engine () in
      let deadline = Time.add (Engine.now eng) span in
      Engine.Process.suspend t.label (fun wake ->
          let state = ref `Waiting in
          Queue.add
            (fun v ->
              if !state = `Waiting && wake (Some v) then begin
                state := `Got;
                true
              end
              else false)
            t.waiters;
          Engine.at eng deadline (fun () ->
              if !state = `Waiting then begin
                state := `Timeout;
                ignore (wake None)
              end))

let try_recv t = Queue.take_opt t.values
let length t = Queue.length t.values
