(** A polymorphic binary min-heap on a growable array.

    Used by the event queue; generic so that tests can exercise it on
    arbitrary ordered elements. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp]. *)

val length : 'a t -> int
(** Number of elements currently in the heap. *)

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** [push h x] inserts [x]. *)

val pop : 'a t -> 'a option
(** [pop h] removes and returns a minimal element, or [None] if the
    heap is empty. *)

val peek : 'a t -> 'a option
(** [peek h] returns a minimal element without removing it. *)

val clear : 'a t -> unit
(** Remove every element. *)
