type t = {
  label : string;
  mutable count : int;
  waiters : (unit -> bool) Queue.t;
}

let create ?(label = "sem") n =
  if n < 0 then invalid_arg "Semaphore.create: negative count";
  { label; count = n; waiters = Queue.create () }

let acquire t =
  if t.count > 0 then t.count <- t.count - 1
  else
    Engine.Process.suspend t.label (fun wake -> Queue.add wake t.waiters)

let try_acquire t =
  if t.count > 0 then begin
    t.count <- t.count - 1;
    true
  end
  else false

let rec release t =
  match Queue.take_opt t.waiters with
  | Some wake -> if not (wake ()) then release t
  | None -> t.count <- t.count + 1

let count t = t.count
