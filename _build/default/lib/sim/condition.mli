(** Condition variables paired with {!Mutex}. *)

type t

val create : ?label:string -> unit -> t

val wait : t -> Mutex.t -> unit
(** Atomically release the mutex and suspend; reacquire before
    returning. *)

val signal : t -> unit
(** Wake one waiter, if any. *)

val broadcast : t -> unit
(** Wake every waiter. *)
