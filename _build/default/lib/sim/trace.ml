type entry = { at : Time.t; tag : string; detail : string }

type t = { mutable on : bool; mutable rev_entries : entry list }

let create ?(enabled = true) () = { on = enabled; rev_entries = [] }

let enabled t = t.on
let set_enabled t v = t.on <- v

let record t at tag detail =
  if t.on then t.rev_entries <- { at; tag; detail } :: t.rev_entries

let entries t = List.rev t.rev_entries

let count t ?tag () =
  match tag with
  | None -> List.length t.rev_entries
  | Some tag ->
      List.fold_left
        (fun acc e -> if String.equal e.tag tag then acc + 1 else acc)
        0 t.rev_entries

let clear t = t.rev_entries <- []

let pp fmt t =
  List.iter
    (fun e -> Format.fprintf fmt "%a %-12s %s@." Time.pp e.at e.tag e.detail)
    (entries t)
