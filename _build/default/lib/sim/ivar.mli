(** Write-once synchronization variables.

    An ivar starts empty; {!fill} sets it exactly once and wakes every
    reader.  Reading an empty ivar suspends the calling process. *)

type 'a t

val create : unit -> 'a t

val fill : 'a t -> 'a -> unit
(** [fill t v] sets the value.  Raises [Invalid_argument] if already
    full.  May be called from engine context or from a process. *)

val try_fill : 'a t -> 'a -> bool
(** Like {!fill} but returns false instead of raising when full. *)

val read : 'a t -> 'a
(** [read t] returns the value, suspending until it is available.
    Must be called from a process. *)

val peek : 'a t -> 'a option
(** [peek t] is the value if available, without suspending. *)

val is_full : 'a t -> bool
