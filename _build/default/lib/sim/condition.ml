type t = { label : string; waiters : (unit -> bool) Queue.t }

let create ?(label = "cond") () = { label; waiters = Queue.create () }

let wait t mutex =
  Engine.Process.suspend t.label (fun wake ->
      Mutex.unlock mutex;
      Queue.add wake t.waiters);
  Mutex.lock mutex

let rec signal t =
  match Queue.take_opt t.waiters with
  | Some wake -> if not (wake ()) then signal t
  | None -> ()

let broadcast t =
  let wakes = Queue.fold (fun acc w -> w :: acc) [] t.waiters in
  Queue.clear t.waiters;
  List.iter (fun wake -> ignore (wake ())) (List.rev wakes)
