(** Simulated time.

    Time is an integer count of nanoseconds since the start of the
    simulation.  Using integers keeps the simulation deterministic:
    two events scheduled from the same history always compare the
    same way on every run. *)

type t = int
(** An absolute instant, in nanoseconds from simulation start. *)

type span = int
(** A duration in nanoseconds.  Spans are non-negative in all public
    constructors. *)

val zero : t
(** The simulation epoch. *)

val ns : int -> span
(** [ns n] is a span of [n] nanoseconds. *)

val us : int -> span
(** [us n] is a span of [n] microseconds. *)

val ms : int -> span
(** [ms n] is a span of [n] milliseconds. *)

val sec : int -> span
(** [sec n] is a span of [n] seconds. *)

val of_ms_f : float -> span
(** [of_ms_f x] is a span of [x] milliseconds, rounded to the nearest
    nanosecond. *)

val of_us_f : float -> span
(** [of_us_f x] is a span of [x] microseconds, rounded to the nearest
    nanosecond. *)

val add : t -> span -> t
(** [add t d] is the instant [d] after [t]. *)

val diff : t -> t -> span
(** [diff a b] is [a - b]. *)

val to_ms_f : t -> float
(** [to_ms_f t] is [t] expressed in milliseconds, for reporting. *)

val to_us_f : t -> float
(** [to_us_f t] is [t] expressed in microseconds, for reporting. *)

val compare : t -> t -> int
(** Total order on instants. *)

val pp : Format.formatter -> t -> unit
(** Pretty-print an instant as milliseconds with three decimals. *)
