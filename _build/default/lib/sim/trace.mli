(** Lightweight event tracing.

    A trace is an append-only list of timestamped tagged records,
    attached to an engine by the caller.  Disabled traces cost one
    branch per event.  Tests assert on trace contents; benches leave
    tracing off. *)

type t

type entry = { at : Time.t; tag : string; detail : string }

val create : ?enabled:bool -> unit -> t

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val record : t -> Time.t -> string -> string -> unit
(** [record t time tag detail] appends an entry when enabled. *)

val entries : t -> entry list
(** Entries in chronological (append) order. *)

val count : t -> ?tag:string -> unit -> int
(** Number of entries, optionally restricted to one tag. *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
