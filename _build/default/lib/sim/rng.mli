(** Seeded, splittable pseudo-random numbers.

    Every source of randomness in the simulation flows from a single
    seed so that runs are reproducible.  [split] derives an
    independent stream, used to give each subsystem its own source
    without coupling their consumption order. *)

type t

val create : seed:int -> t
(** [create ~seed] is a fresh deterministic stream. *)

val split : t -> t
(** [split t] derives a new stream from [t]; [t] advances. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
