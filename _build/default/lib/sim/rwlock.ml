type request = Read of (unit -> bool) | Write of (unit -> bool)

type t = {
  label : string;
  mutable readers : int;
  mutable writer : bool;
  queue : request Queue.t;
}

let create ?(label = "rwlock") () =
  { label; readers = 0; writer = false; queue = Queue.create () }

(* Grant queued requests in FIFO order: a run of readers at the head
   is granted together; a writer is granted only when alone. *)
let rec drain t =
  match Queue.peek_opt t.queue with
  | None -> ()
  | Some (Read wake) ->
      if not t.writer then begin
        ignore (Queue.pop t.queue);
        if wake () then t.readers <- t.readers + 1;
        drain t
      end
  | Some (Write wake) ->
      if (not t.writer) && t.readers = 0 then begin
        ignore (Queue.pop t.queue);
        if wake () then t.writer <- true else drain t
      end

let lock_read t =
  if (not t.writer) && Queue.is_empty t.queue then t.readers <- t.readers + 1
  else
    Engine.Process.suspend t.label (fun wake ->
        Queue.add (Read wake) t.queue)

let lock_write t =
  if (not t.writer) && t.readers = 0 && Queue.is_empty t.queue then
    t.writer <- true
  else
    Engine.Process.suspend t.label (fun wake ->
        Queue.add (Write wake) t.queue)

let try_lock_read t =
  if (not t.writer) && Queue.is_empty t.queue then begin
    t.readers <- t.readers + 1;
    true
  end
  else false

let try_lock_write t =
  if (not t.writer) && t.readers = 0 && Queue.is_empty t.queue then begin
    t.writer <- true;
    true
  end
  else false

let unlock_read t =
  if t.readers <= 0 then invalid_arg "Rwlock.unlock_read: no readers";
  t.readers <- t.readers - 1;
  if t.readers = 0 then drain t

let unlock_write t =
  if not t.writer then invalid_arg "Rwlock.unlock_write: no writer";
  t.writer <- false;
  drain t

let holders t =
  if t.writer then `Writer
  else if t.readers > 0 then `Readers t.readers
  else `Free
