(** Mutual-exclusion locks for simulated processes. *)

type t

val create : ?label:string -> unit -> t

val lock : t -> unit
(** Acquire, suspending while held.  FIFO handoff. *)

val try_lock : t -> bool

val unlock : t -> unit
(** Release; raises [Invalid_argument] if not locked. *)

val with_lock : t -> (unit -> 'a) -> 'a
(** [with_lock t f] runs [f] holding the lock, releasing it on return
    or exception. *)

val locked : t -> bool
