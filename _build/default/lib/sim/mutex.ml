type t = { label : string; mutable held : bool; waiters : (unit -> bool) Queue.t }

let create ?(label = "mutex") () =
  { label; held = false; waiters = Queue.create () }

let lock t =
  if not t.held then t.held <- true
  else Engine.Process.suspend t.label (fun wake -> Queue.add wake t.waiters)

let try_lock t =
  if t.held then false
  else begin
    t.held <- true;
    true
  end

let rec unlock t =
  if not t.held then invalid_arg "Mutex.unlock: not locked";
  match Queue.take_opt t.waiters with
  | Some wake ->
      (* ownership hands off directly (stays held) unless the waiter
         died while queued, in which case try the next one *)
      if not (wake ()) then begin
        t.held <- true;
        unlock t
      end
  | None -> t.held <- false

let with_lock t f =
  lock t;
  match f () with
  | v ->
      unlock t;
      v
  | exception e ->
      unlock t;
      raise e

let locked t = t.held
