(** Counting semaphores with FIFO wakeup.

    These are also the user-visible synchronization primitive the
    Clouds layer offers to object programmers (the paper's
    "system supported synchronization primitives such as locks or
    semaphores"). *)

type t

val create : ?label:string -> int -> t
(** [create n] is a semaphore with initial count [n >= 0]. *)

val acquire : t -> unit
(** Decrement the count, suspending while it is zero.  Waiters are
    served in FIFO order. *)

val try_acquire : t -> bool
(** Decrement without suspending; false if the count was zero. *)

val release : t -> unit
(** Increment the count, waking the longest-waiting acquirer. *)

val count : t -> int
(** Current count (waiting processes imply zero). *)
