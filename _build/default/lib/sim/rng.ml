type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x6c6f7564; 0x636c |]

let split t =
  Random.State.make
    [| Random.State.bits t; Random.State.bits t; Random.State.bits t |]

let int t bound = Random.State.int t bound
let float t bound = Random.State.float t bound
let bool t = Random.State.bool t
let chance t p = Random.State.float t 1.0 < p

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
