type prot = Read_only | Read_write

type mapping = {
  base : int;
  len : int;
  seg : Sysname.t;
  seg_off : int;
  prot : prot;
}

type t = { mutable maps : mapping list (* sorted by base *) }

let create () = { maps = [] }

let aligned n = n mod Page.size = 0

let overlaps a b =
  a.base < b.base + b.len && b.base < a.base + a.len

let map t ~base ~len ?(seg_off = 0) ~prot seg =
  if len <= 0 then invalid_arg "Virtual_space.map: empty mapping";
  if not (aligned base && aligned len) then
    invalid_arg "Virtual_space.map: unaligned mapping";
  if seg_off < 0 || not (aligned seg_off) then
    invalid_arg "Virtual_space.map: bad segment offset";
  let m = { base; len; seg; seg_off; prot } in
  if List.exists (overlaps m) t.maps then
    invalid_arg "Virtual_space.map: overlapping mapping";
  t.maps <- List.sort (fun a b -> Int.compare a.base b.base) (m :: t.maps)

let unmap t ~base =
  if not (List.exists (fun m -> m.base = base) t.maps) then raise Not_found;
  t.maps <- List.filter (fun m -> m.base <> base) t.maps

let translate t addr =
  let rec find = function
    | [] -> None
    | m :: rest ->
        if addr >= m.base && addr < m.base + m.len then
          Some (m, m.seg_off + (addr - m.base))
        else find rest
  in
  find t.maps

let mappings t = t.maps

let segments t =
  List.fold_left
    (fun acc m -> if List.exists (Sysname.equal m.seg) acc then acc else m.seg :: acc)
    [] t.maps
  |> List.rev
