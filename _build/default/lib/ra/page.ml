let size = 8192

let zero () = Bytes.make size '\000'

let copy b = Bytes.copy b

let index_of off =
  if off < 0 then invalid_arg "Page.index_of: negative offset";
  off / size

let count_for n = if n <= 0 then 1 else (n + size - 1) / size
