(** Pages: the unit of residency, coherence and locking granularity
    underneath segments. *)

val size : int
(** 8192 bytes, as on the Sun-3. *)

val zero : unit -> bytes
(** A fresh zero-filled page. *)

val copy : bytes -> bytes

val index_of : int -> int
(** Page index containing a byte offset. *)

val count_for : int -> int
(** Number of pages needed to hold [n] bytes (at least 1 for empty
    segments). *)
