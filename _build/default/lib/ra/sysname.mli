(** System names.

    Every segment and object in Clouds has a sysname: a bit string
    unique across the whole distributed system, forming a flat
    system-wide name space.  We build uniqueness structurally from
    the generating node's id plus a per-node counter, which also
    keeps runs deterministic. *)

type t = private { node : int; local : int }

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

type gen
(** A per-node sysname generator. *)

val make_gen : node:int -> gen
(** Generator for names minted at [node].  Distinct nodes yield
    disjoint names. *)

val fresh : gen -> t

val well_known : int -> t
(** [well_known k] is a reserved name (node = -1) agreed on by every
    node at configuration time, e.g. the name server's own sysname. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : string -> t option
(** Parse the {!to_string} form.  Sysnames cross machine boundaries
    as strings (names, never addresses). *)

(** Hash tables keyed by sysname. *)
module Table : Hashtbl.S with type key = t
