type stack = Kernel | User | Interrupt

type t = { pid : Sim.Engine.pid; stack : stack; node : Node.t }

let spawn node ?(stack = Kernel) name f =
  let pid = Node.spawn node name f in
  { pid; stack; node }

let compute node span = Cpu.consume node.Node.cpu ~key:(Sim.self ()) span

let pp_stack fmt = function
  | Kernel -> Format.pp_print_string fmt "kernel"
  | User -> Format.pp_print_string fmt "user"
  | Interrupt -> Format.pp_print_string fmt "interrupt"
