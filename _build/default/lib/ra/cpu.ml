type t = {
  lock : Sim.Mutex.t;
  cs_cost : Sim.Time.span;
  quantum : Sim.Time.span;
  mutable last : int option;
  mutable switches : int;
  mutable busy : Sim.Time.span;
  mutable active : int;
}

let create ?context_switch ?(quantum = Sim.Time.ms 10) () =
  let cs_cost =
    match context_switch with
    | Some c -> c
    | None -> Params.default.Params.context_switch
  in
  {
    lock = Sim.Mutex.create ~label:"cpu" ();
    cs_cost;
    quantum;
    last = None;
    switches = 0;
    busy = 0;
    active = 0;
  }

(* Work longer than a scheduling quantum is split so other
   schedulable entities interleave (preemptive round robin); the
   context-switch cost is charged only when occupancy actually passes
   to a different entity. *)
let rec consume_slices t ~key span =
  let this_slice = min span t.quantum in
  Sim.Mutex.with_lock t.lock (fun () ->
      let switching = match t.last with Some k -> k <> key | None -> true in
      if switching then begin
        t.switches <- t.switches + 1;
        t.busy <- t.busy + t.cs_cost;
        Sim.sleep t.cs_cost
      end;
      t.last <- Some key;
      t.busy <- t.busy + this_slice;
      if this_slice > 0 then Sim.sleep this_slice);
  let rest = span - this_slice in
  if rest > 0 then begin
    Sim.yield ();
    consume_slices t ~key rest
  end

let consume t ~key span =
  t.active <- t.active + 1;
  Fun.protect
    ~finally:(fun () -> t.active <- t.active - 1)
    (fun () -> consume_slices t ~key span)

let switches t = t.switches
let busy t = t.busy
let load t = t.active
