type mode = Read | Write

type fetch_data = Zeroed | Data of bytes

exception No_segment of Sysname.t

type t = {
  name : string;
  fetch : seg:Sysname.t -> page:int -> mode:mode -> fetch_data;
  writeback : seg:Sysname.t -> page:int -> bytes -> unit;
}

let pp_mode fmt = function
  | Read -> Format.pp_print_string fmt "read"
  | Write -> Format.pp_print_string fmt "write"
