(** Machines.

    A node is one computer in the cluster: compute server, data
    server or user workstation (the paper's three logical machine
    categories; a physical machine may host several roles, which the
    cluster layer models with a node of kind [Data] that also accepts
    invocations).  Each node owns a CPU, an MMU, and a RaTP endpoint;
    every process belonging to the node is tagged with its id so a
    crash kills them all. *)

type kind = Compute | Data | Workstation

type t = {
  id : int;  (** also the node's network address *)
  kind : kind;
  eng : Sim.Engine.t;
  ether : Net.Ethernet.t;
  params : Params.t;
  cpu : Cpu.t;
  mmu : Mmu.t;
  endpoint : Ratp.Endpoint.t;
  names : Sysname.gen;
  mutable alive : bool;
  mutable sched_load : int;
      (** threads currently assigned here by the thread manager; a
          load-based scheduler reads CPU occupancy plus this *)
}

val create :
  Net.Ethernet.t ->
  id:int ->
  kind:kind ->
  ?params:Params.t ->
  ?ratp_config:Ratp.Endpoint.config ->
  ?max_frames:int ->
  unit ->
  t
(** [max_frames] bounds the machine's physical page frames (LRU
    eviction through the MMU); unbounded by default. *)

val crash : t -> unit
(** Take the machine down: kill its processes, detach its NIC, and
    drop all volatile memory (MMU frames).  Stable storage on data
    servers survives — that lives in the [store] library. *)

val restart : t -> unit
(** Bring the machine back: reattach the NIC and restart the RaTP
    receive loop.  Memory starts cold; services must be
    re-registered by the owning subsystem. *)

val spawn : t -> string -> (unit -> unit) -> Sim.Engine.pid
(** Spawn a process belonging to this node (dies with it). *)

val pp_kind : Format.formatter -> kind -> unit
