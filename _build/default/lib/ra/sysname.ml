type t = { node : int; local : int }

let equal a b = a.node = b.node && a.local = b.local

let compare a b =
  match Int.compare a.node b.node with
  | 0 -> Int.compare a.local b.local
  | c -> c

let hash t = Hashtbl.hash (t.node, t.local)

type gen = { g_node : int; mutable g_next : int }

let make_gen ~node = { g_node = node; g_next = 0 }

let fresh g =
  let local = g.g_next in
  g.g_next <- local + 1;
  { node = g.g_node; local }

let well_known k = { node = -1; local = k }

let pp fmt t = Format.fprintf fmt "SYS-%d.%d" t.node t.local
let to_string t = Printf.sprintf "SYS-%d.%d" t.node t.local

let of_string s =
  match Scanf.sscanf s "SYS-%d.%d%!" (fun node local -> { node; local }) with
  | t -> Some t
  | exception (Scanf.Scan_failure _ | End_of_file | Failure _) -> None

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
