(** Kernel cost calibration.

    Every simulated cost in the Ra kernel comes from this record, so
    experiments can sweep or ablate them.  Defaults are calibrated to
    the measurements in §4.3 of the paper (Sun-3/60 class hardware):
    context switch 0.14 ms; local page fault 0.629 ms for a data page
    and 1.5 ms for a zero-filled page; null object invocation about
    8 ms warm. *)

type t = {
  context_switch : Sim.Time.span;
      (** charged when the CPU switches between schedulable entities *)
  fault_trap : Sim.Time.span;
      (** fixed page-fault overhead: trap, table walk, map *)
  fault_copy : Sim.Time.span;
      (** copying one 8K page of available data into a frame *)
  fault_zero_fill : Sim.Time.span;
      (** zero-filling a fresh 8K frame *)
  mem_access_byte_ns : int;
      (** CPU cost per byte read or written on resident pages *)
  activation_setup : Sim.Time.span;
      (** object manager: build the virtual space and object
          bookkeeping when an object first activates on a node *)
  invoke_setup : Sim.Time.span;
      (** object manager: map thread stack into the object space,
          locate the entry point, dispatch *)
  invoke_return : Sim.Time.span;
      (** unmap the stack and return to the calling object *)
  thread_create : Sim.Time.span;
      (** thread manager bookkeeping for a new thread *)
  name_lookup : Sim.Time.span;
      (** name-server processing per lookup, excluding transport *)
}

val default : t

val pp : Format.formatter -> t -> unit
