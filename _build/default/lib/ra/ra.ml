(** The Ra kernel model: the minimal native kernel Clouds runs on.

    Ra provides segments (named in a flat sysname space), virtual
    spaces, isibas (light-weight activity), partitions (the interface
    to non-volatile storage) and per-node processor and memory
    management with calibrated costs. *)

module Params = Params
module Sysname = Sysname
module Page = Page
module Virtual_space = Virtual_space
module Cpu = Cpu
module Partition = Partition
module Mmu = Mmu
module Node = Node
module Isiba = Isiba
