type t = {
  context_switch : Sim.Time.span;
  fault_trap : Sim.Time.span;
  fault_copy : Sim.Time.span;
  fault_zero_fill : Sim.Time.span;
  mem_access_byte_ns : int;
  activation_setup : Sim.Time.span;
  invoke_setup : Sim.Time.span;
  invoke_return : Sim.Time.span;
  thread_create : Sim.Time.span;
  name_lookup : Sim.Time.span;
}

let default =
  {
    context_switch = Sim.Time.us 140;
    fault_trap = Sim.Time.us 200;
    fault_copy = Sim.Time.us 429;
    fault_zero_fill = Sim.Time.us 1300;
    mem_access_byte_ns = 0;
    activation_setup = Sim.Time.of_ms_f 8.0;
    invoke_setup = Sim.Time.of_ms_f 4.3;
    invoke_return = Sim.Time.of_ms_f 3.5;
    thread_create = Sim.Time.of_ms_f 1.2;
    name_lookup = Sim.Time.of_ms_f 0.8;
  }

let pp fmt t =
  Format.fprintf fmt
    "@[<v>context_switch=%a@ fault_trap=%a@ fault_copy=%a@ \
     fault_zero_fill=%a@ activation_setup=%a@ invoke_setup=%a@ \
     invoke_return=%a@ thread_create=%a@ name_lookup=%a@]"
    Sim.Time.pp t.context_switch Sim.Time.pp t.fault_trap Sim.Time.pp
    t.fault_copy Sim.Time.pp t.fault_zero_fill Sim.Time.pp t.activation_setup
    Sim.Time.pp t.invoke_setup Sim.Time.pp t.invoke_return Sim.Time.pp
    t.thread_create Sim.Time.pp t.name_lookup
