(** Partitions: Ra's interface to non-volatile segment storage.

    Ra only defines the interface; implementations are system
    objects.  The [store] library provides a local-disk partition for
    data servers; the [dsm] library provides the DSM client partition
    that compute servers use to demand-page segments over the network
    with coherence. *)

type mode = Read | Write

type fetch_data =
  | Zeroed  (** the page has never been written; zero-fill a frame *)
  | Data of bytes  (** page contents *)

exception No_segment of Sysname.t
(** Raised by partition operations when the segment does not exist
    (deleted or never created). *)

type t = {
  name : string;
  fetch : seg:Sysname.t -> page:int -> mode:mode -> fetch_data;
      (** Obtain a page in the given mode; blocks (disk or network).
          Fetching in [Write] mode acquires ownership under the
          coherence protocol. *)
  writeback : seg:Sysname.t -> page:int -> bytes -> unit;
      (** Push a dirty page back to stable storage. *)
}

val pp_mode : Format.formatter -> mode -> unit
