lib/ra/page.ml: Bytes
