lib/ra/sysname.ml: Format Hashtbl Int Printf Scanf
