lib/ra/partition.ml: Format Sysname
