lib/ra/isiba.ml: Cpu Format Node Sim
