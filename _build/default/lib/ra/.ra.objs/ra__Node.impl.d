lib/ra/node.ml: Cpu Format Mmu Net Params Ratp Sim Sysname
