lib/ra/page.mli:
