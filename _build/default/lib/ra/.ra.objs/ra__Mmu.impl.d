lib/ra/mmu.ml: Bytes Cpu Fun Hashtbl Int List Page Params Partition Sim Sysname Virtual_space
