lib/ra/node.mli: Cpu Format Mmu Net Params Ratp Sim Sysname
