lib/ra/isiba.mli: Format Node Sim
