lib/ra/params.mli: Format Sim
