lib/ra/virtual_space.ml: Int List Page Sysname
