lib/ra/virtual_space.mli: Sysname
