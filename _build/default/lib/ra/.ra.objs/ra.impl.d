lib/ra/ra.ml: Cpu Isiba Mmu Node Page Params Partition Sysname Virtual_space
