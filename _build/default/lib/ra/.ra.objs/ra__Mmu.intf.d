lib/ra/mmu.mli: Cpu Params Partition Sysname Virtual_space
