lib/ra/sysname.mli: Format Hashtbl
