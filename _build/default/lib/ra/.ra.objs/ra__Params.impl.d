lib/ra/params.ml: Format Sim
