lib/ra/partition.mli: Format Sysname
