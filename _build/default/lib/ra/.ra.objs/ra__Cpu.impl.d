lib/ra/cpu.ml: Fun Params Sim
