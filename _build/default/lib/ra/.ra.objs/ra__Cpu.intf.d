lib/ra/cpu.mli: Sim
