type kind = Compute | Data | Workstation

type t = {
  id : int;
  kind : kind;
  eng : Sim.Engine.t;
  ether : Net.Ethernet.t;
  params : Params.t;
  cpu : Cpu.t;
  mmu : Mmu.t;
  endpoint : Ratp.Endpoint.t;
  names : Sysname.gen;
  mutable alive : bool;
  mutable sched_load : int;
}

let create ether ~id ~kind ?(params = Params.default) ?ratp_config ?max_frames
    () =
  let eng = Net.Ethernet.engine ether in
  let cpu = Cpu.create ~context_switch:params.Params.context_switch () in
  let mmu = Mmu.create ?max_frames ~params ~cpu () in
  let endpoint =
    Ratp.Endpoint.create ether ~addr:id ~group:id ?config:ratp_config ()
  in
  {
    id;
    kind;
    eng;
    ether;
    params;
    cpu;
    mmu;
    endpoint;
    names = Sysname.make_gen ~node:id;
    alive = true;
    sched_load = 0;
  }

let crash t =
  t.alive <- false;
  Net.Ethernet.detach t.ether t.id;
  Sim.Engine.kill_group t.eng t.id;
  Mmu.clear t.mmu

let restart t =
  t.alive <- true;
  Net.Ethernet.reattach t.ether t.id;
  Ratp.Endpoint.restart t.endpoint

let spawn t name f = Sim.Engine.spawn t.eng ~group:t.id name f

let pp_kind fmt = function
  | Compute -> Format.pp_print_string fmt "compute"
  | Data -> Format.pp_print_string fmt "data"
  | Workstation -> Format.pp_print_string fmt "workstation"
