(** A node's processor.

    At most one schedulable entity computes at a time; work is
    expressed as [consume] calls that occupy the CPU for a simulated
    duration.  Arbitration is FIFO.  When occupancy passes from one
    entity to another the configured context-switch cost is charged,
    which is exactly the quantity the paper reports as 0.14 ms. *)

type t

val create : ?context_switch:Sim.Time.span -> ?quantum:Sim.Time.span -> unit -> t
(** [context_switch] defaults to {!Params.default}'s value.
    [quantum] (default 10 ms) is the preemption slice: longer work is
    interleaved with other entities' requests. *)

val consume : t -> key:int -> Sim.Time.span -> unit
(** [consume t ~key span] runs [span] of work on behalf of the
    schedulable entity [key] (thread or isiba id), waiting for the
    CPU first.  Charges a context switch when [key] differs from the
    previous occupant. *)

val switches : t -> int
(** Context switches charged so far. *)

val busy : t -> Sim.Time.span
(** Total occupied time, including switch costs. *)

val load : t -> int
(** Schedulable entities currently running on or waiting for this
    processor — the quantity a load-based scheduling policy compares
    (the paper's "load at each compute server"). *)
