(** Virtual spaces: Ra's addressing domains.

    A virtual space is a range of virtual addresses with holes; each
    contiguous mapped range is a window onto (a portion of) a
    segment.  Clouds builds an object's address space by mapping its
    code segment, persistent data segments, heaps and — per
    invocation — the thread's stack. *)

type prot = Read_only | Read_write

type mapping = {
  base : int;  (** first virtual address; page-aligned *)
  len : int;  (** bytes; page-aligned *)
  seg : Sysname.t;
  seg_off : int;  (** offset of the window within the segment *)
  prot : prot;
}

type t

val create : unit -> t

val map :
  t -> base:int -> len:int -> ?seg_off:int -> prot:prot -> Sysname.t -> unit
(** Add a mapping.  Raises [Invalid_argument] on overlap or
    misalignment. *)

val unmap : t -> base:int -> unit
(** Remove the mapping starting at [base].  Raises [Not_found] if
    there is none. *)

val translate : t -> int -> (mapping * int) option
(** [translate t addr] is the mapping containing [addr] together with
    the corresponding byte offset within the segment, or [None] for a
    hole. *)

val mappings : t -> mapping list
(** Current mappings, sorted by base address. *)

val segments : t -> Sysname.t list
(** Distinct segments mapped, in first-mapped order. *)
