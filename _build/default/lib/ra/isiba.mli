(** IsiBas: Ra's abstraction of activity.

    An isiba is a light-weight kernel resource that becomes a
    schedulable entity when paired with a stack.  Clouds processes
    are isibas with user stacks; system objects use kernel and
    interrupt stacks for services, event notification and
    watchdogs.  In the simulation an isiba is a process tagged with
    its node (so crashes kill it) whose computation is charged to the
    node's CPU. *)

type stack = Kernel | User | Interrupt

type t = {
  pid : Sim.Engine.pid;
  stack : stack;
  node : Node.t;
}

val spawn : Node.t -> ?stack:stack -> string -> (unit -> unit) -> t
(** Start an isiba on a node.  Default stack type is [Kernel]. *)

val compute : Node.t -> Sim.Time.span -> unit
(** Charge CPU work for the calling process on the node's
    processor. *)

val pp_stack : Format.formatter -> stack -> unit
