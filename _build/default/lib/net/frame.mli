(** Ethernet frames.

    The payload is an extensible variant: each protocol above the
    wire (RaTP, the FTP/NFS comparators) adds its own constructors,
    so the network layer stays ignorant of protocol contents while
    frames still carry structured data.  The [bytes] field is the
    simulated on-wire size, which is what timing is computed from. *)

type payload = ..
(** Protocols extend this with their packet types. *)

type payload += Raw of string
(** Opaque test payload. *)

type dst = Unicast of Address.t | Broadcast

type t = {
  src : Address.t;
  dst : dst;
  bytes : int;  (** total on-wire size including headers *)
  payload : payload;
}

val header_bytes : int
(** Simulated Ethernet header + CRC size (18 bytes). *)

val make : src:Address.t -> dst:dst -> payload_bytes:int -> payload -> t
(** Build a frame; [bytes] is [payload_bytes + header_bytes], clamped
    below by the 64-byte Ethernet minimum. *)

val pp : Format.formatter -> t -> unit
