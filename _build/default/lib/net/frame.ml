type payload = ..
type payload += Raw of string

type dst = Unicast of Address.t | Broadcast

type t = { src : Address.t; dst : dst; bytes : int; payload : payload }

let header_bytes = 18
let min_frame = 64

let make ~src ~dst ~payload_bytes payload =
  if payload_bytes < 0 then invalid_arg "Frame.make: negative payload";
  { src; dst; bytes = max min_frame (payload_bytes + header_bytes); payload }

let pp_dst fmt = function
  | Unicast a -> Address.pp fmt a
  | Broadcast -> Format.pp_print_string fmt "broadcast"

let pp fmt t =
  Format.fprintf fmt "frame[%a -> %a, %db]" Address.pp t.src pp_dst t.dst
    t.bytes
