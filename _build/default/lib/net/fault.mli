(** Network fault injection.

    Faults are applied at delivery time: probabilistic frame loss, cut
    links (directional pairs), and detached destinations.  Tests and
    experiments drive these to exercise RaTP retransmission, DSM
    recovery and PET failure tolerance. *)

type t

val create : Sim.Rng.t -> t
(** A fault model that initially delivers everything. *)

val set_drop_probability : t -> float -> unit
(** Uniform loss probability applied to every frame. *)

val cut : t -> Address.t -> Address.t -> unit
(** Drop all frames from the first address to the second (one
    direction). *)

val cut_both : t -> Address.t -> Address.t -> unit
(** Cut both directions. *)

val heal : t -> Address.t -> Address.t -> unit
(** Undo {!cut} for that direction. *)

val heal_both : t -> Address.t -> Address.t -> unit

val deliverable : t -> src:Address.t -> dst:Address.t -> bool
(** Decide (possibly randomly) whether a frame survives. *)

val drops : t -> int
(** Total frames dropped so far. *)
