type t = {
  rng : Sim.Rng.t;
  mutable drop_prob : float;
  cuts : (Address.t * Address.t, unit) Hashtbl.t;
  mutable dropped : int;
}

let create rng = { rng; drop_prob = 0.0; cuts = Hashtbl.create 8; dropped = 0 }

let set_drop_probability t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Fault.set_drop_probability";
  t.drop_prob <- p

let cut t a b = Hashtbl.replace t.cuts (a, b) ()

let cut_both t a b =
  cut t a b;
  cut t b a

let heal t a b = Hashtbl.remove t.cuts (a, b)

let heal_both t a b =
  heal t a b;
  heal t b a

let deliverable t ~src ~dst =
  let ok =
    (not (Hashtbl.mem t.cuts (src, dst)))
    && ((t.drop_prob = 0.0) || not (Sim.Rng.chance t.rng t.drop_prob))
  in
  if not ok then t.dropped <- t.dropped + 1;
  ok

let drops t = t.dropped
