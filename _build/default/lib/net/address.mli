(** Network addresses.

    Every machine on the simulated Ethernet has one address; the
    simulation uses small integers, unique per cluster. *)

type t = int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
