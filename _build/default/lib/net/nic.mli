(** Network interfaces.

    A NIC owns the receive queue for one address.  Receiving charges
    the simulated host-side cost of taking the interrupt and copying
    the frame, so protocol stacks above see realistic per-frame
    processing time.  A detached NIC (crashed machine) silently drops
    deliveries. *)

type t = {
  addr : Address.t;
  rx : Frame.t Sim.Mailbox.t;
  recv_cost_per_frame : Sim.Time.span;
  recv_cost_per_byte_ns : int;
  mutable attached : bool;
}

val create :
  addr:Address.t ->
  recv_cost_per_frame:Sim.Time.span ->
  recv_cost_per_byte_ns:int ->
  t

val deliver : t -> Frame.t -> unit
(** Enqueue a frame if attached; drop otherwise.  Engine context is
    fine. *)

val recv : t -> Frame.t
(** Dequeue the next frame (suspending as needed) and charge the
    receive cost. *)

val try_recv : t -> Frame.t option
(** Dequeue without suspending and without charging cost (tests). *)

val set_attached : t -> bool -> unit
val attached : t -> bool
