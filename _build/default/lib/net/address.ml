type t = int

let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let pp fmt t = Format.fprintf fmt "node-%d" t
let to_string t = Printf.sprintf "node-%d" t
