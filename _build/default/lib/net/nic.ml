type t = {
  addr : Address.t;
  rx : Frame.t Sim.Mailbox.t;
  recv_cost_per_frame : Sim.Time.span;
  recv_cost_per_byte_ns : int;
  mutable attached : bool;
}

let create ~addr ~recv_cost_per_frame ~recv_cost_per_byte_ns =
  {
    addr;
    rx = Sim.Mailbox.create (Printf.sprintf "nic-%d-rx" addr);
    recv_cost_per_frame;
    recv_cost_per_byte_ns;
    attached = true;
  }

let deliver t frame = if t.attached then Sim.Mailbox.send t.rx frame

let recv t =
  let frame = Sim.Mailbox.recv t.rx in
  Sim.sleep
    (t.recv_cost_per_frame + (t.recv_cost_per_byte_ns * frame.Frame.bytes));
  frame

let try_recv t = Sim.Mailbox.try_recv t.rx
let set_attached t v = t.attached <- v
let attached t = t.attached
