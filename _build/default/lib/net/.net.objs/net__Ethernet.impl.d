lib/net/ethernet.ml: Address Fault Frame Hashtbl List Nic Sim
