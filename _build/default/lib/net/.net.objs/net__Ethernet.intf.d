lib/net/ethernet.mli: Address Fault Frame Nic Sim
