lib/net/frame.mli: Address Format
