lib/net/nic.ml: Address Frame Printf Sim
