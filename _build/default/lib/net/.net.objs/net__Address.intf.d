lib/net/address.mli: Format
