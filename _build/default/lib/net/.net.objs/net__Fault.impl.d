lib/net/fault.ml: Address Hashtbl Sim
