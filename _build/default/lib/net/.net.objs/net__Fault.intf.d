lib/net/fault.mli: Address Sim
