lib/net/address.ml: Format Hashtbl Int Printf
