lib/net/frame.ml: Address Format
