lib/net/net.ml: Address Ethernet Fault Frame Nic
