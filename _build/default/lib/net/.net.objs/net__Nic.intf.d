lib/net/nic.mli: Address Frame Sim
