(** Simulated local-area network: addresses, frames, a shared-bus
    Ethernet with calibrated timing, NICs and fault injection. *)

module Address = Address
module Frame = Frame
module Fault = Fault
module Nic = Nic
module Ethernet = Ethernet
