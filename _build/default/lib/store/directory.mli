(** The object directory on a data server.

    Maps an object's sysname to its descriptor: which class it
    instantiates, which segments make up its address space and where
    it lives.  Descriptors are stable (they survive crashes); the
    object manager fetches them when activating an object on a
    compute server. *)

type entry = {
  role : string;  (** "code", "data", "pheap", ... *)
  seg : Ra.Sysname.t;
  size : int;  (** bytes *)
}

type descriptor = {
  class_name : string;
  home : Net.Address.t;  (** data server storing the segments *)
  entries : entry list;
}

type t

val create : unit -> t

val register : t -> Ra.Sysname.t -> descriptor -> unit
val remove : t -> Ra.Sysname.t -> unit
val lookup : t -> Ra.Sysname.t -> descriptor option
val objects : t -> Ra.Sysname.t list

val descriptor_bytes : descriptor -> int
(** Approximate wire size of a descriptor, for transfer timing. *)
