type entry = { role : string; seg : Ra.Sysname.t; size : int }

type descriptor = {
  class_name : string;
  home : Net.Address.t;
  entries : entry list;
}

type t = { table : descriptor Ra.Sysname.Table.t }

let create () = { table = Ra.Sysname.Table.create 32 }

let register t name d = Ra.Sysname.Table.replace t.table name d
let remove t name = Ra.Sysname.Table.remove t.table name
let lookup t name = Ra.Sysname.Table.find_opt t.table name

let objects t =
  Ra.Sysname.Table.fold (fun k _ acc -> k :: acc) t.table []
  |> List.sort Ra.Sysname.compare

let descriptor_bytes d =
  64 + String.length d.class_name + (List.length d.entries * 32)
