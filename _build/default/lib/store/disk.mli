(** A simulated disk.

    Requests serialize on the device; each costs a seek plus a
    size-proportional transfer.  Page reads on data servers are
    normally served from the in-memory segment store (the prototype
    kept objects in Unix files, hot in the buffer cache); the disk is
    what makes write-ahead logging and commits cost something. *)

type config = {
  seek : Sim.Time.span;
  transfer_per_8k : Sim.Time.span;
}

val default_config : config

type t

val create : ?config:config -> string -> t
(** [create label] is an idle disk. *)

val write : t -> bytes:int -> unit
(** Synchronous write of [bytes]; blocks through queueing, seek and
    transfer. *)

val read : t -> bytes:int -> unit
(** Synchronous read timing (contents are tracked by the caller). *)

val ops : t -> int
(** Total operations performed. *)
