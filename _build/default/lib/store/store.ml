(** Stable storage on data servers: a simulated disk, the page-level
    segment store, the write-ahead log used by two-phase commit, and
    the object directory. *)

module Disk = Disk
module Segment_store = Segment_store
module Wal = Wal
module Directory = Directory
