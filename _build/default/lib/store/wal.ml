type record =
  | Prepared of { txn : int * int; writes : (Ra.Sysname.t * int * bytes) list }
  | Committed of (int * int)
  | Aborted of (int * int)

type t = { disk : Disk.t; mutable log : record list (* reverse order *) }

let create disk = { disk; log = [] }

let record_bytes = function
  | Prepared { writes; _ } ->
      64 + List.fold_left (fun acc (_, _, b) -> acc + Bytes.length b) 0 writes
  | Committed _ | Aborted _ -> 64

let append t r =
  Disk.write t.disk ~bytes:(record_bytes r);
  t.log <- r :: t.log

let append_nowait t r = t.log <- r :: t.log

let records t = List.rev t.log

let recover t store ~decide ~applied =
  let committed = Hashtbl.create 8 in
  let aborted = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match r with
      | Committed txn -> Hashtbl.replace committed txn ()
      | Aborted txn -> Hashtbl.replace aborted txn ()
      | Prepared _ -> ())
    t.log;
  (* settle undecided prepares first: ask the coordinator (decide);
     unreachable coordinators mean presumed abort *)
  List.iter
    (fun r ->
      match r with
      | Prepared { txn; _ }
        when (not (Hashtbl.mem committed txn)) && not (Hashtbl.mem aborted txn)
        -> (
          match decide txn with
          | `Commit ->
              Hashtbl.replace committed txn ();
              t.log <- Committed txn :: t.log
          | `Abort ->
              Hashtbl.replace aborted txn ();
              t.log <- Aborted txn :: t.log
          | `Keep -> ())
      | Prepared _ | Committed _ | Aborted _ -> ())
    (records t);
  (* apply committed prepares in append order *)
  List.iter
    (fun r ->
      match r with
      | Prepared { txn; writes } when Hashtbl.mem committed txn ->
          List.iter
            (fun (seg, page, data) ->
              if Segment_store.exists store seg then
                Segment_store.write_page store seg page data)
            writes;
          applied := txn :: !applied
      | Prepared _ | Committed _ | Aborted _ -> ())
    (records t)

let truncate t = t.log <- []
