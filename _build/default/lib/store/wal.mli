(** Write-ahead log for two-phase commit on data servers.

    Participants log [Prepared] with the transaction's page images
    before voting yes; [Committed]/[Aborted] seal the outcome.  The
    log survives crashes; {!recover} replays it into the segment
    store under presumed-abort semantics: committed transactions are
    (re)applied, prepared-but-undecided transactions are discarded. *)

type record =
  | Prepared of {
      txn : int * int;  (** (coordinator node, sequence) *)
      writes : (Ra.Sysname.t * int * bytes) list;  (** (segment, page, data) *)
    }
  | Committed of (int * int)
  | Aborted of (int * int)

type t

val create : Disk.t -> t

val append : t -> record -> unit
(** Durably append (charges disk time proportional to the record's
    payload). *)

val append_nowait : t -> record -> unit
(** Append without charging disk time — for engine-context callers
    (timer-driven resolution); the record is still durable. *)

val records : t -> record list
(** Log contents in append order (tests, recovery). *)

val recover :
  t ->
  Segment_store.t ->
  decide:((int * int) -> [ `Commit | `Abort | `Keep ]) ->
  applied:(int * int) list ref ->
  unit
(** Replay into the store: every [Prepared] whose txn has a matching
    [Committed] is applied.  A prepared transaction with no recorded
    outcome is decided by [decide] — the recovering participant asks
    the transaction's coordinator: [`Commit]/[`Abort] are logged and
    acted on; [`Keep] leaves the transaction in doubt (coordinator
    alive but still undecided — the participant must hold its promise
    to commit).  [applied] reports every txn whose writes reached the
    store. *)

val truncate : t -> unit
(** Discard the log (checkpoint). *)
