type config = { seek : Sim.Time.span; transfer_per_8k : Sim.Time.span }

let default_config =
  { seek = Sim.Time.of_ms_f 12.0; transfer_per_8k = Sim.Time.of_ms_f 2.5 }

type t = {
  label : string;
  cfg : config;
  lock : Sim.Mutex.t;
  mutable ops : int;
}

let create ?(config = default_config) label =
  { label; cfg = config; lock = Sim.Mutex.create ~label (); ops = 0 }

let io t ~bytes =
  Sim.Mutex.with_lock t.lock (fun () ->
      t.ops <- t.ops + 1;
      let transfer =
        int_of_float
          (float_of_int t.cfg.transfer_per_8k
          *. (float_of_int (max bytes 512) /. 8192.0))
      in
      Sim.sleep (t.cfg.seek + transfer))

let write = io
let read = io
let ops t = t.ops
