(** Stable page storage for segments on a data server.

    Contents survive node crashes (they model disk-backed Unix files
    kept hot in the buffer cache).  Pages that were never written
    read back as {!Ra.Partition.Zeroed}, which is what makes the
    zero-fill fault path observable end to end. *)

type t

val create : string -> t

val create_segment : t -> Ra.Sysname.t -> size:int -> unit
(** Declare a segment of [size] bytes.  Raises [Invalid_argument] if
    it already exists. *)

val delete_segment : t -> Ra.Sysname.t -> unit

val exists : t -> Ra.Sysname.t -> bool

val size : t -> Ra.Sysname.t -> int
(** Raises {!Ra.Partition.No_segment} if absent. *)

val read_page : t -> Ra.Sysname.t -> int -> Ra.Partition.fetch_data
(** Raises {!Ra.Partition.No_segment} if the segment is absent. *)

val write_page : t -> Ra.Sysname.t -> int -> bytes -> unit

val segments : t -> Ra.Sysname.t list

val local_partition : t -> Ra.Partition.t
(** A partition serving this store directly (same-machine access on a
    data server): no network, no disk — the calibrated fault costs in
    the MMU are the whole story, matching the paper's local fault
    measurements. *)
