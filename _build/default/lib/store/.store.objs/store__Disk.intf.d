lib/store/disk.mli: Sim
