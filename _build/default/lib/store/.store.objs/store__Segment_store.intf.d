lib/store/segment_store.mli: Ra
