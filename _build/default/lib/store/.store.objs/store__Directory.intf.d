lib/store/directory.mli: Net Ra
