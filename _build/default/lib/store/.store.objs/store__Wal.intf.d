lib/store/wal.mli: Disk Ra Segment_store
