lib/store/store.ml: Directory Disk Segment_store Wal
