lib/store/segment_store.ml: Hashtbl List Ra
