lib/store/wal.ml: Bytes Disk Hashtbl List Ra Segment_store
