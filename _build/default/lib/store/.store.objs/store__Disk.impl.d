lib/store/disk.ml: Sim
