lib/store/directory.ml: List Net Ra String
