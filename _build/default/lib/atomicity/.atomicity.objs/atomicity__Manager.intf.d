lib/atomicity/manager.mli: Clouds Sim
