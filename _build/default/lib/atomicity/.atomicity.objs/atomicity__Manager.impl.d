lib/atomicity/manager.ml: Array Clouds Dsm Fun Hashtbl List Net Ra Ratp Sim
