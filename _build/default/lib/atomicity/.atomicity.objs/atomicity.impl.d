lib/atomicity/atomicity.ml: Manager
