(** Consistency preservation for Clouds threads: automatic
    segment-level locking, local and global consistency-preserving
    transactions, and two-phase commit — §5.2.1 of the paper. *)

module Manager = Manager
