(** The Ra Transport Protocol and its evaluation comparators.

    RaTP ({!Endpoint}) provides reliable, connectionless message
    transactions over the simulated Ethernet, modeled on VMTP as in
    the paper.  {!Ftp_sim} and {!Nfs_sim} reproduce the structure of
    the Unix FTP and Sun NFS transfers the paper compares against. *)

module Packet = Packet
module Endpoint = Endpoint
module Ftp_sim = Ftp_sim
module Nfs_sim = Nfs_sim
