(** A Sun-NFS-like comparator protocol.

    The paper's 50 ms figure for an 8K transfer over NFS reflects
    NFS's structure at the time: a LOOKUP/GETATTR preamble and then
    synchronous READ RPCs of small blocks (1 KB), each a full request/
    reply round trip with per-RPC server-side overhead.  This module
    reproduces that structure over the simulated Ethernet. *)

type config = {
  rsize : int;  (** bytes per READ rpc *)
  preamble_rpcs : int;  (** LOOKUP + GETATTR *)
  per_rpc_server_cost : Sim.Time.span;
}

val default_config : config

val start_server :
  Net.Ethernet.t -> addr:Net.Address.t -> ?group:int -> ?config:config -> unit -> unit

type client

val client : Net.Ethernet.t -> addr:Net.Address.t -> ?config:config -> unit -> client

val fetch : client -> server:Net.Address.t -> bytes:int -> unit
(** Fetch [bytes] through sequential READ RPCs from the current
    process. *)
