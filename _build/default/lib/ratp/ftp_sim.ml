type config = {
  block_size : int;
  control_round_trips : int;
  session_setup : Sim.Time.span;
  per_block_server_cost : Sim.Time.span;
}

let default_config =
  {
    block_size = 512;
    control_round_trips = 5;
    session_setup = Sim.Time.ms 8;
    per_block_server_cost = Sim.Time.us 200;
  }

type Net.Frame.payload +=
  | F_ctl of int
  | F_ctl_ok of int
  | F_get of int  (* requested byte count *)
  | F_data of { seq : int; last : bool }
  | F_ack of int

let ctl_bytes = 48

let send ether ~src ~dst ~payload_bytes payload =
  Net.Ethernet.transmit ether
    (Net.Frame.make ~src ~dst:(Net.Frame.Unicast dst) ~payload_bytes payload)

let start_server ether ~addr ?group ?(config = default_config) () =
  let nic = Net.Ethernet.attach ether addr in
  let eng = Net.Ethernet.engine ether in
  let serve_transfer ~client bytes =
    Sim.sleep config.session_setup;
    let nblocks = max 1 ((bytes + config.block_size - 1) / config.block_size) in
    let rec block seq =
      Sim.sleep config.per_block_server_cost;
      let last = seq = nblocks - 1 in
      let size =
        if last then bytes - (config.block_size * (nblocks - 1))
        else config.block_size
      in
      send ether ~src:addr ~dst:client ~payload_bytes:(size + 40)
        (F_data { seq; last });
      let rec await_ack () =
        match (Net.Nic.recv nic).Net.Frame.payload with
        | F_ack n when n = seq -> ()
        | _ -> await_ack ()
      in
      await_ack ();
      if not last then block (seq + 1)
    in
    block 0
  in
  ignore
    (Sim.Engine.spawn eng ?group
       (Printf.sprintf "ftp-server-%d" addr)
       (fun () ->
         let rec loop () =
           let frame = Net.Nic.recv nic in
           let client = frame.Net.Frame.src in
           (match frame.Net.Frame.payload with
           | F_ctl n ->
               send ether ~src:addr ~dst:client ~payload_bytes:ctl_bytes
                 (F_ctl_ok n)
           | F_get bytes -> serve_transfer ~client bytes
           | _ -> ());
           loop ()
         in
         loop ()))

type client = {
  ether : Net.Ethernet.t;
  nic : Net.Nic.t;
  addr : Net.Address.t;
  cfg : config;
}

let client ether ~addr ?(config = default_config) () =
  { ether; nic = Net.Ethernet.attach ether addr; addr; cfg = config }

let fetch t ~server ~bytes =
  (* control dialogue: connect + USER/PASS/PORT/RETR, one round trip
     each *)
  for i = 1 to t.cfg.control_round_trips do
    send t.ether ~src:t.addr ~dst:server ~payload_bytes:ctl_bytes (F_ctl i);
    let rec await () =
      match (Net.Nic.recv t.nic).Net.Frame.payload with
      | F_ctl_ok n when n = i -> ()
      | _ -> await ()
    in
    await ()
  done;
  send t.ether ~src:t.addr ~dst:server ~payload_bytes:ctl_bytes (F_get bytes);
  let rec receive () =
    match (Net.Nic.recv t.nic).Net.Frame.payload with
    | F_data { seq; last } ->
        send t.ether ~src:t.addr ~dst:server ~payload_bytes:ctl_bytes
          (F_ack seq);
        if not last then receive ()
    | _ -> receive ()
  in
  receive ()
