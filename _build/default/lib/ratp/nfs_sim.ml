type config = {
  rsize : int;
  preamble_rpcs : int;
  per_rpc_server_cost : Sim.Time.span;
}

let default_config =
  { rsize = 1024; preamble_rpcs = 2; per_rpc_server_cost = Sim.Time.of_ms_f 1.5 }

type Net.Frame.payload +=
  | N_rpc of int  (* small rpc, sequence-numbered *)
  | N_rpc_ok of int
  | N_read of { xid : int; len : int }
  | N_read_ok of { xid : int; len : int }

let rpc_bytes = 96

let send ether ~src ~dst ~payload_bytes payload =
  Net.Ethernet.transmit ether
    (Net.Frame.make ~src ~dst:(Net.Frame.Unicast dst) ~payload_bytes payload)

let start_server ether ~addr ?group ?(config = default_config) () =
  let nic = Net.Ethernet.attach ether addr in
  let eng = Net.Ethernet.engine ether in
  ignore
    (Sim.Engine.spawn eng ?group
       (Printf.sprintf "nfs-server-%d" addr)
       (fun () ->
         let rec loop () =
           let frame = Net.Nic.recv nic in
           let client = frame.Net.Frame.src in
           (match frame.Net.Frame.payload with
           | N_rpc n ->
               Sim.sleep config.per_rpc_server_cost;
               send ether ~src:addr ~dst:client ~payload_bytes:rpc_bytes
                 (N_rpc_ok n)
           | N_read { xid; len } ->
               Sim.sleep config.per_rpc_server_cost;
               send ether ~src:addr ~dst:client ~payload_bytes:(len + 112)
                 (N_read_ok { xid; len })
           | _ -> ());
           loop ()
         in
         loop ()))

type client = {
  ether : Net.Ethernet.t;
  nic : Net.Nic.t;
  addr : Net.Address.t;
  cfg : config;
  mutable xid : int;
}

let client ether ~addr ?(config = default_config) () =
  { ether; nic = Net.Ethernet.attach ether addr; addr; cfg = config; xid = 0 }

let fetch t ~server ~bytes =
  for i = 1 to t.cfg.preamble_rpcs do
    send t.ether ~src:t.addr ~dst:server ~payload_bytes:rpc_bytes (N_rpc i);
    let rec await () =
      match (Net.Nic.recv t.nic).Net.Frame.payload with
      | N_rpc_ok n when n = i -> ()
      | _ -> await ()
    in
    await ()
  done;
  let remaining = ref bytes in
  while !remaining > 0 do
    let len = min t.cfg.rsize !remaining in
    t.xid <- t.xid + 1;
    let xid = t.xid in
    send t.ether ~src:t.addr ~dst:server ~payload_bytes:rpc_bytes
      (N_read { xid; len });
    let rec await () =
      match (Net.Nic.recv t.nic).Net.Frame.payload with
      | N_read_ok r when r.xid = xid -> ()
      | _ -> await ()
    in
    await ();
    remaining := !remaining - len
  done
