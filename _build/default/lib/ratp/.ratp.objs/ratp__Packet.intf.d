lib/ratp/packet.mli: Format Net
