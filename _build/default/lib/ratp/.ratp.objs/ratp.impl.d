lib/ratp/ratp.ml: Endpoint Ftp_sim Nfs_sim Packet
