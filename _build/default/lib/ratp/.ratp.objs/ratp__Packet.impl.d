lib/ratp/packet.ml: Format Net
