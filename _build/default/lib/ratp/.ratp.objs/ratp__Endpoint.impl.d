lib/ratp/endpoint.ml: Array Fun Hashtbl Net Packet Printf Sim
