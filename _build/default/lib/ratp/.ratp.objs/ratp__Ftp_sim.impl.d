lib/ratp/ftp_sim.ml: Net Printf Sim
