lib/ratp/nfs_sim.mli: Net Sim
