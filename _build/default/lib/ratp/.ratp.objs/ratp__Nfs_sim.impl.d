lib/ratp/nfs_sim.ml: Net Printf Sim
