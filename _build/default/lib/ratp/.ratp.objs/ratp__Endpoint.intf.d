lib/ratp/endpoint.mli: Net Packet Sim
