lib/ratp/ftp_sim.mli: Net Sim
