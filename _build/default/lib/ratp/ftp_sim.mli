(** A Unix-FTP-like comparator protocol.

    The paper (§4.3) compares an 8K page transfer over RaTP (11.9 ms)
    with Unix FTP (70 ms).  The difference is structural: FTP runs a
    chatty control dialogue (connect, USER, PASS, PORT, RETR) and then
    ships data in small stop-and-wait blocks, each synchronously
    acknowledged, with per-session server overhead.  This module
    reproduces that structure over the same simulated Ethernet so the
    comparison measures protocol shape, not implementation tricks. *)

type config = {
  block_size : int;  (** data bytes per block (early-TCP-like) *)
  control_round_trips : int;  (** handshake + FTP command dialogue *)
  session_setup : Sim.Time.span;  (** server-side session/auth cost *)
  per_block_server_cost : Sim.Time.span;
}

val default_config : config

val start_server :
  Net.Ethernet.t -> addr:Net.Address.t -> ?group:int -> ?config:config -> unit -> unit
(** Attach a NIC at [addr] and serve fetches forever. *)

type client

val client : Net.Ethernet.t -> addr:Net.Address.t -> ?config:config -> unit -> client
(** Attach a client NIC. *)

val fetch : client -> server:Net.Address.t -> bytes:int -> unit
(** Run a full FTP session from the current process, transferring
    [bytes] of data.  Returns when the transfer completes. *)
